// Package repro is a from-scratch Go reproduction of "GraphNER: Using
// Corpus Level Similarities and Graph Propagation for Named Entity
// Recognition" (Sheikhshab, Starks, Karsan, Chiu, Sarkar, Birol — IPPS
// 2018).
//
// The library lives under internal/: the paper's contribution in
// internal/graphner (Algorithm 1: CRF + 3-gram similarity graph + label
// propagation), with every substrate it depends on built from the standard
// library alone — a linear-chain CRF (internal/crf), BANNER-style feature
// extraction (internal/features), Brown clustering (internal/brown),
// word2vec embeddings (internal/word2vec), the k-NN PPMI similarity graph
// (internal/graph), label propagation (internal/propagate), BiLSTM-CRF
// neural baselines (internal/neural), BioCreative II evaluation
// (internal/eval), approximate-randomization significance testing
// (internal/sigf), and synthetic substitute corpora (internal/corpus/synth).
//
// See README.md for a guided tour, DESIGN.md for the system inventory and
// experiment mapping, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation section; cmd/benchtables does the same from the
// command line at configurable scales.
package repro
