// Feature-set ablation for graph construction (the paper's Table III):
// compare All-features, Lexical-features, and MI-thresholded vertex
// representations, plus K=10 vs K=5, all over one trained base CRF.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/corpus"
	"repro/internal/corpus/synth"
	"repro/internal/crf"
	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/graphner"
)

func main() {
	sentences := flag.Int("sentences", 2500, "corpus size")
	seed := flag.Int64("seed", 7, "corpus seed")
	flag.Parse()

	cfg := synth.DefaultConfig(synth.BC2GM, *seed)
	cfg.Sentences = *sentences
	train, test := synth.GenerateSplit(cfg)

	gcfg := graphner.Default()
	gcfg.Order = crf.Order1
	gcfg.CRFIterations = 50
	fmt.Println("training base CRF once (shared across all graph variants)...")
	sys, err := graphner.Train(train, gcfg)
	if err != nil {
		log.Fatal(err)
	}

	baseRes := score(test, sys.BaselineTags(test))
	fmt.Printf("\n%-28s %3s %10s %10s %10s\n", "Vertex representation", "K", "Precision", "Recall", "F-Score")
	pm := baseRes.Metrics()
	fmt.Printf("%-28s %3s %9.2f%% %9.2f%% %9.2f%%\n", "(baseline, no graph)", "-", 100*pm.Precision, 100*pm.Recall, 100*pm.F1)

	variants := []struct {
		name string
		mode graph.FeatureMode
		mi   float64
		k    int
	}{
		{"All-features", graph.AllFeatures, 0, 10},
		{"Lexical-features", graph.LexicalFeatures, 0, 10},
		{"MI > 0.002", graph.MIFeatures, 0.002, 10},
		{"MI > 0.005", graph.MIFeatures, 0.005, 10},
		{"MI > 0.01", graph.MIFeatures, 0.01, 10},
		{"All-features", graph.AllFeatures, 0, 5},
	}
	for _, v := range variants {
		c2 := sys.Config()
		c2.Mode = v.mode
		c2.MIThreshold = v.mi
		c2.K = v.k
		vs := sys.WithConfig(c2)
		g, err := vs.BuildGraph(test)
		if err != nil {
			log.Fatal(err)
		}
		out, err := vs.TestWithGraph(test, g)
		if err != nil {
			log.Fatal(err)
		}
		m := score(test, out.Tags).Metrics()
		fmt.Printf("%-28s %3d %9.2f%% %9.2f%% %9.2f%%\n", v.name, v.k, 100*m.Precision, 100*m.Recall, 100*m.F1)
	}
}

func score(test *corpus.Corpus, tags [][]corpus.Tag) *eval.Result {
	preds, err := eval.PredictionsFromTags(test, tags)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eval.Evaluate(test, preds)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
