// Quickstart: train GraphNER on a small synthetic gene-mention corpus and
// tag new sentences. This is the smallest end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"repro/internal/corpus"
	"repro/internal/corpus/synth"
	"repro/internal/crf"
	"repro/internal/graphner"
	"repro/internal/tokenize"
)

func main() {
	// 1. A labelled corpus. Here we synthesize one; real corpora in the
	// BioCreative II format load via corpus.ReadSentences/ReadAnnotations.
	cfg := synth.DefaultConfig(synth.BC2GM, 42)
	cfg.Sentences = 800
	train, test := synth.GenerateSplit(cfg)

	// 2. Train the base CRF and the reference distributions (Algorithm 1,
	// TRAIN).
	gcfg := graphner.Default()
	gcfg.Order = crf.Order1 // order 1 is faster; order 2 is the paper's default
	gcfg.CRFIterations = 40
	sys, err := graphner.Train(train, gcfg)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Run the semi-supervised TEST procedure over unlabelled data: the
	// similarity graph is built over train ∪ test and label distributions
	// are propagated before the final Viterbi re-decode.
	out, err := sys.Test(test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices (%.0f%% labelled)\n",
		out.Graph.NumVertices(), 100*out.LabelledVertexFraction)

	// 4. Inspect a few tagged sentences.
	for i := 0; i < 3 && i < len(test.Sentences); i++ {
		s := test.Sentences[i]
		fmt.Printf("\n%s\n  ", s.Text)
		for j, tok := range s.Tokens {
			fmt.Printf("%s/%s ", tok.Text, out.Tags[i][j])
		}
		fmt.Println()
	}

	// 5. The plain supervised CRF can also tag arbitrary text directly.
	raw := "Expression of FLT3 was significantly higher in these patients ."
	s := &corpus.Sentence{Text: raw, Tokens: tokenize.Sentence(raw)}
	tags := sys.Model().Decode(sys.Compiler().CompileSentence(s))
	fmt.Printf("\nsupervised tagging of new text:\n  ")
	for j, tok := range s.Tokens {
		fmt.Printf("%s/%s ", tok.Text, tags[j])
	}
	fmt.Println()
}
