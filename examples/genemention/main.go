// Gene-mention detection end to end: the headline experiment of the paper
// (Table I rows for BANNER and GraphNER) on a BC2GM-profile corpus, with
// BioCreative-II-style evaluation (alternative annotations honoured) and
// an approximate-randomization significance test of the F difference.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/corpus"
	"repro/internal/corpus/synth"
	"repro/internal/crf"
	"repro/internal/eval"
	"repro/internal/graphner"
	"repro/internal/sigf"
)

func main() {
	sentences := flag.Int("sentences", 2500, "corpus size")
	seed := flag.Int64("seed", 7, "corpus seed")
	order := flag.Int("order", 1, "CRF order (order 1 is the difficulty-matched default for the synthetic corpora; see EXPERIMENTS.md)")
	flag.Parse()

	cfg := synth.DefaultConfig(synth.BC2GM, *seed)
	cfg.Sentences = *sentences
	train, test := synth.GenerateSplit(cfg)
	fmt.Printf("BC2GM-profile corpus: %d train / %d test sentences, %d/%d gold mentions\n",
		len(train.Sentences), len(test.Sentences), train.NumMentions(), test.NumMentions())

	gcfg := graphner.Default()
	gcfg.Order = crf.Order(*order)
	gcfg.CRFIterations = 40
	fmt.Println("training BANNER-style base CRF...")
	sys, err := graphner.Train(train, gcfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("running Algorithm 1 (graph construction + propagation + re-decode)...")
	out, err := sys.Test(test)
	if err != nil {
		log.Fatal(err)
	}

	scoreOf := func(tags [][]corpus.Tag) *eval.Result {
		preds, err := eval.PredictionsFromTags(test, tags)
		if err != nil {
			log.Fatal(err)
		}
		res, err := eval.Evaluate(test, preds)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	baseline := scoreOf(out.BaselineTags)
	gnr := scoreOf(out.Tags)

	fmt.Printf("\n%-24s %10s %10s %10s\n", "Method", "Precision", "Recall", "F-Score")
	bm, gm := baseline.Metrics(), gnr.Metrics()
	fmt.Printf("%-24s %9.2f%% %9.2f%% %9.2f%%\n", "BANNER (base CRF)", 100*bm.Precision, 100*bm.Recall, 100*bm.F1)
	fmt.Printf("%-24s %9.2f%% %9.2f%% %9.2f%%\n", "GraphNER", 100*gm.Precision, 100*gm.Recall, 100*gm.F1)

	fmt.Printf("\ngraph statistics (§III-D): %d vertices, %d edges, %.1f%% labelled, %.2f%% positive\n",
		out.Graph.NumVertices(), out.Graph.NumEdges(),
		100*out.LabelledVertexFraction, 100*out.PositiveVertexFraction)

	for _, m := range []sigf.Metric{sigf.FScore, sigf.Precision, sigf.Recall} {
		r, err := sigf.Test(sigf.FromResults(baseline), sigf.FromResults(gnr), m,
			sigf.Options{Repetitions: 10000, Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "not significant"
		if r.PValue < 0.05 {
			verdict = "significant"
		}
		fmt.Printf("sigf %-9v difference %.4f  p=%.4g  (%s)\n", m, r.Observed, r.PValue, verdict)
	}
}
