// Abundant unlabelled data: the paper's conclusion anticipates "even
// higher performance when the tool is provided abundant unlabelled data",
// beyond the transductive setting where the only unlabelled text is the
// test set. This example runs GraphNER three ways — supervised baseline,
// transductive, and with an extra unlabelled corpus joining graph
// construction — and reports the scores side by side.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/corpus"
	"repro/internal/corpus/synth"
	"repro/internal/crf"
	"repro/internal/eval"
	"repro/internal/graphner"
)

func main() {
	sentences := flag.Int("sentences", 2000, "labelled corpus size")
	extraN := flag.Int("extra", 3000, "extra unlabelled sentences")
	seed := flag.Int64("seed", 7, "seed")
	flag.Parse()

	cfg := synth.DefaultConfig(synth.BC2GM, *seed)
	cfg.Sentences = *sentences
	train, test := synth.GenerateSplit(cfg)

	extraCfg := synth.DefaultConfig(synth.BC2GM, *seed+1000)
	extraCfg.Sentences = *extraN
	extra := synth.NewGenerator(extraCfg).Generate().StripLabels()

	gcfg := graphner.Default()
	gcfg.Order = crf.Order1
	gcfg.CRFIterations = 50
	fmt.Println("training base CRF...")
	sys, err := graphner.Train(train, gcfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("transductive pass (unlabelled data = test set only)...")
	plain, err := sys.Test(test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with %d extra unlabelled sentences...\n", *extraN)
	more, err := sys.TestWithExtra(test, extra)
	if err != nil {
		log.Fatal(err)
	}

	row := func(name string, tags [][]corpus.Tag) {
		preds, err := eval.PredictionsFromTags(test, tags)
		if err != nil {
			log.Fatal(err)
		}
		res, err := eval.Evaluate(test, preds)
		if err != nil {
			log.Fatal(err)
		}
		m := res.Metrics()
		fmt.Printf("%-28s %9.2f%% %9.2f%% %9.2f%%\n", name, 100*m.Precision, 100*m.Recall, 100*m.F1)
	}
	fmt.Printf("\n%-28s %10s %10s %10s\n", "System", "Precision", "Recall", "F-Score")
	row("baseline CRF", plain.BaselineTags)
	row("GraphNER (transductive)", plain.Tags)
	row(fmt.Sprintf("GraphNER (+%d unlabelled)", *extraN), more.Tags)
	fmt.Printf("\ngraph grew from %d to %d vertices (labelled fraction %.1f%% → %.1f%%)\n",
		plain.Graph.NumVertices(), more.Graph.NumVertices(),
		100*plain.LabelledVertexFraction, 100*more.LabelledVertexFraction)
}
