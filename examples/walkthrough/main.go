// Walkthrough reproduces the paper's Figure 1 worked example: the labelled
// data contains "wilms tumor - 1" as a gene and "'s tumor - 1 subclone" as
// background, which misleads the base CRF about "-" inside gene mentions;
// graph propagation over shared 3-gram contexts corrects the labels of the
// unlabelled sentences. The program prints the CRF posteriors, the vertex
// beliefs before and after propagation, the α-combination, and the final
// Viterbi labels, mirroring the figure's narration.
package main

import (
	"fmt"
	"log"

	"repro/internal/corpus"
	"repro/internal/crf"
	"repro/internal/graphner"
	"repro/internal/tokenize"
)

func main() {
	labelled := corpus.New()
	mk := func(c *corpus.Corpus, id, text string, tags []corpus.Tag) {
		s := &corpus.Sentence{ID: id, Text: text, Tokens: tokenize.Sentence(text)}
		if tags != nil && len(tags) != len(s.Tokens) {
			log.Fatalf("%s: %d tags for %d tokens", id, len(tags), len(s.Tokens))
		}
		s.Tags = tags
		c.Sentences = append(c.Sentences, s)
	}
	T := func(ts ...corpus.Tag) []corpus.Tag { return ts }
	const (
		B = corpus.B
		I = corpus.I
		O = corpus.O
	)
	// The labelled data of Figure 1 (expanded with a few more sentences so
	// the CRF has enough signal to train).
	mk(labelled, "L1", "drug response was significant in wilms tumor - 1 positive patients .",
		T(O, O, O, O, O, B, I, I, I, O, O, O))
	mk(labelled, "L2", "we observed the following mutations in wilms tumor - 1 .",
		T(O, O, O, O, O, O, B, I, I, I, O))
	mk(labelled, "L3", "we did not observe this mutation in the patient 's tumor - 1 subclone .",
		T(O, O, O, O, O, O, O, O, O, O, O, O, O, O, O, O))
	mk(labelled, "L4", "expression of wilms tumor - 1 was high in these samples .",
		T(O, O, B, I, I, I, O, O, O, O, O, O))
	mk(labelled, "L5", "mutations of wilms tumor - 1 were frequent .",
		T(O, O, B, I, I, I, O, O, O))
	mk(labelled, "L6", "the patient 's tumor - 1 subclone was sequenced .",
		T(O, O, O, O, O, O, O, O, O, O, O))

	unlabelled := corpus.New()
	mk(unlabelled, "U1", "wilms tumor - 1 ( wt1 ) gene was highly expressed .", nil)
	mk(unlabelled, "U2", "we did not observe this mutation in the patient 's tumor - 2 subclone .", nil)

	cfg := graphner.Default()
	cfg.Alpha = 0.1 // the figure's walkthrough value
	cfg.Order = crf.Order1
	cfg.CRFIterations = 50
	cfg.K = 5
	cfg.Mu = 0.5
	cfg.Nu = 0.01
	cfg.Iterations = 3

	fmt.Println("== TRAIN: fit base CRF, record reference distributions over V_l ==")
	sys, err := graphner.Train(labelled, cfg)
	if err != nil {
		log.Fatal(err)
	}
	refs := graphner.ReferenceDistributions(labelled)
	show := func(words []string, i int) {
		g := corpus.Trigram(words, i)
		if d, ok := refs[g]; ok {
			fmt.Printf("  X_ref%v = (B=%.2f, I=%.2f, O=%.2f)\n", g, d[B], d[I], d[O])
		} else {
			fmt.Printf("  X_ref%v: not in labelled data\n", g)
		}
	}
	w := []string{"wilms", "tumor", "-", "1"}
	show(w, 2) // [tumor - 1]
	show(w, 1) // [wilms tumor -]

	fmt.Println("\n== TEST line 5: CRF posteriors on the unlabelled data ==")
	post := sys.Posteriors(unlabelled)
	printDash := func(tag string, si int, posts [][]float64) {
		s := unlabelled.Sentences[si]
		for i, tok := range s.Tokens {
			if tok.Text == "-" {
				fmt.Printf("  %s %q token %d: (B=%.2f, I=%.2f, O=%.2f)\n",
					tag, s.ID, i, posts[i][B], posts[i][I], posts[i][O])
			}
		}
	}
	printDash("posterior of '-':", 0, post[0])
	printDash("posterior of '-':", 1, post[1])

	fmt.Println("\n== TEST lines 6-7: averaged beliefs, propagated on the graph ==")
	out, err := sys.Test(unlabelled)
	if err != nil {
		log.Fatal(err)
	}
	g := out.Graph
	for _, words := range [][]string{{"wilms", "tumor", "-", "1"}, {"tumor", "-", "2"}} {
		idx := 2
		if len(words) == 3 {
			idx = 1
		}
		tri := corpus.Trigram(words, idx)
		if vi := g.Lookup(tri); vi >= 0 {
			x := out.VertexBeliefs[vi]
			fmt.Printf("  after propagation X%v = (B=%.2f, I=%.2f, O=%.2f)\n", tri, x[B], x[I], x[O])
		}
	}

	fmt.Println("\n== TEST lines 8-9: α-combination and final Viterbi labels ==")
	for si, s := range unlabelled.Sentences {
		fmt.Printf("  %s: ", s.ID)
		for i, tok := range s.Tokens {
			fmt.Printf("%s/%s ", tok.Text, out.Tags[si][i])
		}
		fmt.Println()
	}

	// Confirm the figure's claims programmatically.
	u1 := out.Tags[0]
	if u1[0] == B && u1[1] == I && u1[2] == I && u1[3] == I {
		fmt.Println("\nOK: 'wilms tumor - 1' in U1 is labelled B I I I, as in Figure 1(d).")
	} else {
		fmt.Println("\nUNEXPECTED: U1 gene labels are", u1[:4])
	}
	u2 := out.Tags[1]
	clean := true
	for _, t := range u2 {
		if t != O {
			clean = false
		}
	}
	if clean {
		fmt.Println("OK: U2 ('... tumor - 2 subclone') stays all-O, as in Figure 1.")
	} else {
		fmt.Println("UNEXPECTED: U2 labels are", u2)
	}
}
