package word2vec

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// topicCorpus: words co-occur only within their topic, so embeddings of
// same-topic words should end up more similar.
func topicCorpus(rng *rand.Rand, n int) [][]string {
	topics := [][]string{
		{"gene", "mutation", "expression", "variant", "allele", "promoter"},
		{"january", "february", "march", "april", "may", "june"},
		{"red", "green", "blue", "yellow", "purple", "orange"},
	}
	var out [][]string
	for i := 0; i < n; i++ {
		pool := topics[i%len(topics)]
		ln := 5 + rng.Intn(6)
		s := make([]string, ln)
		for j := range s {
			s[j] = pool[rng.Intn(len(pool))]
		}
		out = append(out, s)
	}
	return out
}

func trainSmall(t *testing.T, seed int64) *Model {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	m, err := Train(topicCorpus(rng, 600), Config{
		Dim: 16, Epochs: 5, MinCount: 1, Seed: seed, Clusters: 3, Window: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTrainBasics(t *testing.T) {
	m := trainSmall(t, 1)
	if m.VocabSize() != 18 {
		t.Errorf("vocab size %d, want 18", m.VocabSize())
	}
	if m.Dim() != 16 {
		t.Errorf("dim %d", m.Dim())
	}
	if v := m.Vector("gene"); len(v) != 16 {
		t.Errorf("Vector length %d", len(v))
	}
	if m.Vector("unknown") != nil {
		t.Error("Vector for unknown word")
	}
}

func TestSameTopicMoreSimilar(t *testing.T) {
	m := trainSmall(t, 1)
	cos := func(a, b string) float64 {
		va, vb := m.Vector(a), m.Vector(b)
		return dot(va, vb) / math.Sqrt(dot(va, va)*dot(vb, vb))
	}
	intra := cos("gene", "mutation")
	inter := cos("gene", "january")
	if intra <= inter {
		t.Errorf("cos(gene,mutation)=%.3f not greater than cos(gene,january)=%.3f", intra, inter)
	}
}

func TestNeighbors(t *testing.T) {
	m := trainSmall(t, 1)
	ns := m.Neighbors("gene", 5)
	if len(ns) != 5 {
		t.Fatalf("got %d neighbors", len(ns))
	}
	// The nearest neighbours of "gene" should be dominated by its topic.
	topic := map[string]bool{"mutation": true, "expression": true, "variant": true, "allele": true, "promoter": true}
	inTopic := 0
	for _, n := range ns[:3] {
		if topic[n.Word] {
			inTopic++
		}
	}
	if inTopic < 2 {
		t.Errorf("top-3 neighbours of gene: %v (want mostly same topic)", ns[:3])
	}
	for i := 1; i < len(ns); i++ {
		if ns[i-1].Sim < ns[i].Sim {
			t.Error("neighbors not sorted")
		}
	}
	if m.Neighbors("unknown", 3) != nil {
		t.Error("neighbors of unknown word")
	}
}

func TestClassesClusterTopics(t *testing.T) {
	m := trainSmall(t, 1)
	c := m.Classes("gene")
	if len(c) != 1 {
		t.Fatalf("Classes = %v", c)
	}
	if m.Classes("unknown") != nil {
		t.Error("Classes for unknown word")
	}
	// Count how often same-topic pairs share a cluster vs cross-topic.
	topics := [][]string{
		{"gene", "mutation", "expression", "variant", "allele", "promoter"},
		{"january", "february", "march", "april", "may", "june"},
	}
	same, cross := 0, 0
	sameN, crossN := 0, 0
	for i, ta := range topics {
		for _, a := range ta {
			for j, tb := range topics {
				for _, b := range tb {
					if a == b {
						continue
					}
					match := 0
					if m.Classes(a)[0] == m.Classes(b)[0] {
						match = 1
					}
					if i == j {
						same += match
						sameN++
					} else {
						cross += match
						crossN++
					}
				}
			}
		}
	}
	if float64(same)/float64(sameN) <= float64(cross)/float64(crossN) {
		t.Errorf("same-topic cluster agreement %.2f not above cross-topic %.2f",
			float64(same)/float64(sameN), float64(cross)/float64(crossN))
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	a := trainSmall(t, 9)
	b := trainSmall(t, 9)
	va, vb := a.Vector("gene"), b.Vector("gene")
	for i := range va {
		if va[i] != vb[i] {
			t.Fatal("same seed, different vectors")
		}
	}
}

func TestErrors(t *testing.T) {
	if _, err := Train(nil, Config{}); err == nil {
		t.Error("want error for empty corpus")
	}
	if _, err := Train([][]string{{"a"}}, Config{MinCount: 1}); err == nil {
		t.Error("want error when no sentence has 2+ known tokens")
	}
}

func TestKMeansDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// k > V clamps; k = 1 assigns all zero.
	vecs := []float64{0, 0, 1, 1, 2, 2}
	a := kmeans(vecs, 3, 2, 10, rng)
	if len(a) != 3 {
		t.Fatal("bad assign length")
	}
	a = kmeans(vecs, 3, 2, 1, rng)
	for _, c := range a {
		if c != 0 {
			t.Error("k=1 must assign cluster 0")
		}
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	m := trainSmall(t, 5)
	var buf strings.Builder
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadFrom(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if m2.VocabSize() != m.VocabSize() || m2.Dim() != m.Dim() {
		t.Fatal("header mismatch")
	}
	for _, w := range []string{"gene", "january", "red"} {
		v1, v2 := m.Vector(w), m2.Vector(w)
		if len(v1) != len(v2) {
			t.Fatalf("vector length mismatch for %q", w)
		}
		for i := range v1 {
			if math.Abs(v1[i]-v2[i]) > 1e-5 {
				t.Fatalf("vector of %q changed at %d: %g vs %g", w, i, v1[i], v2[i])
			}
		}
		c1, c2 := m.Classes(w), m2.Classes(w)
		if c1[0] != c2[0] {
			t.Errorf("cluster of %q changed: %v vs %v", w, c1, c2)
		}
	}
}

func TestReadFromMalformed(t *testing.T) {
	for _, bad := range []string{
		"",
		"bogus header\n",
		"w2v -1 4\n",
		"w2v 1 2\nword 0 1.0\n",     // missing vector component
		"w2v 2 2\nword 0 1.0 2.0\n", // fewer words than promised
		"w2v 1 2\nword x 1.0 2.0\n", // bad cluster
		"w2v 1 2\nword 0 a 2.0\n",   // bad float
	} {
		if _, err := ReadFrom(strings.NewReader(bad)); err == nil {
			t.Errorf("want error for %q", bad)
		}
	}
}

func BenchmarkTrain(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	corpus := topicCorpus(rng, 200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Train(corpus, Config{Dim: 16, Epochs: 2, MinCount: 1, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
