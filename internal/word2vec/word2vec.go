// Package word2vec implements skip-gram word embeddings with negative
// sampling (Mikolov et al. 2013) and a k-means quantizer over the learned
// vectors. BANNER-ChemDNER uses word2vec-derived word classes as CRF
// features; this package supplies the equivalent "w2v=<cluster>" features
// through the features.WordClasser interface, and cosine-similarity
// neighbour queries for inspection.
package word2vec

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Config controls training. Zero values select defaults.
type Config struct {
	Dim       int     // embedding dimensionality (default 32)
	Window    int     // max context offset (default 5)
	Negatives int     // negative samples per positive (default 5)
	Epochs    int     // passes over the corpus (default 3)
	MinCount  int     // drop words rarer than this (default 2)
	Rate      float64 // initial learning rate (default 0.025)
	Seed      int64   // RNG seed (default 1)
	Clusters  int     // k-means clusters for Classes (default 32)
}

func (c *Config) defaults() {
	if c.Dim <= 0 {
		c.Dim = 32
	}
	if c.Window <= 0 {
		c.Window = 5
	}
	if c.Negatives <= 0 {
		c.Negatives = 5
	}
	if c.Epochs <= 0 {
		c.Epochs = 3
	}
	if c.MinCount <= 0 {
		c.MinCount = 2
	}
	if c.Rate <= 0 {
		c.Rate = 0.025
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Clusters <= 0 {
		c.Clusters = 32
	}
}

// Model holds trained embeddings and the k-means assignment per word.
type Model struct {
	dim     int
	words   []string
	index   map[string]int
	vecs    []float64 // row-major words×dim (input vectors)
	cluster []int     // k-means cluster per word
}

// Train learns embeddings from tokenized sentences.
func Train(sentences [][]string, cfg Config) (*Model, error) {
	cfg.defaults()

	counts := make(map[string]int)
	total := 0
	for _, s := range sentences {
		for _, w := range s {
			counts[w]++
			total++
		}
	}
	var words []string
	for w, c := range counts {
		if c >= cfg.MinCount {
			words = append(words, w)
		}
	}
	if len(words) == 0 {
		return nil, fmt.Errorf("word2vec: empty vocabulary (min count %d)", cfg.MinCount)
	}
	sort.Strings(words) // deterministic ids
	index := make(map[string]int, len(words))
	for i, w := range words {
		index[w] = i
	}
	V, D := len(words), cfg.Dim

	rng := rand.New(rand.NewSource(cfg.Seed))

	// Negative sampling table: unigram^(3/4) distribution.
	const tableSize = 1 << 17
	table := make([]int32, tableSize)
	var z float64
	pows := make([]float64, V)
	for i, w := range words {
		pows[i] = math.Pow(float64(counts[w]), 0.75)
		z += pows[i]
	}
	idx, cum := 0, pows[0]/z
	for i := range table {
		if t := float64(i) / tableSize; t > cum && idx < V-1 {
			idx++
			cum += pows[idx] / z
		}
		table[i] = int32(idx)
	}

	// Parameters: input vectors (the embeddings) and output vectors.
	in := make([]float64, V*D)
	out := make([]float64, V*D)
	for i := range in {
		in[i] = (rng.Float64() - 0.5) / float64(D)
	}

	// Compile sentences to ids once.
	compiled := make([][]int32, 0, len(sentences))
	for _, s := range sentences {
		ids := make([]int32, 0, len(s))
		for _, w := range s {
			if id, ok := index[w]; ok {
				ids = append(ids, int32(id))
			}
		}
		if len(ids) > 1 {
			compiled = append(compiled, ids)
		}
	}
	if len(compiled) == 0 {
		return nil, fmt.Errorf("word2vec: no trainable sentences")
	}

	steps := 0
	totalSteps := cfg.Epochs * total
	grad := make([]float64, D)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, sent := range compiled {
			for pos, center := range sent {
				rate := cfg.Rate * (1 - float64(steps)/float64(totalSteps+1))
				if rate < cfg.Rate*1e-4 {
					rate = cfg.Rate * 1e-4
				}
				steps++
				win := 1 + rng.Intn(cfg.Window)
				for off := -win; off <= win; off++ {
					cp := pos + off
					if off == 0 || cp < 0 || cp >= len(sent) {
						continue
					}
					ctx := sent[cp]
					ci := int(center) * D
					for d := range grad {
						grad[d] = 0
					}
					// One positive and cfg.Negatives negative updates.
					for k := 0; k <= cfg.Negatives; k++ {
						var target int
						var label float64
						if k == 0 {
							target, label = int(ctx), 1
						} else {
							target = int(table[rng.Intn(tableSize)])
							if target == int(ctx) {
								continue
							}
							label = 0
						}
						ti := target * D
						var dot float64
						for d := 0; d < D; d++ {
							dot += in[ci+d] * out[ti+d]
						}
						g := (label - sigmoid(dot)) * rate
						for d := 0; d < D; d++ {
							grad[d] += g * out[ti+d]
							out[ti+d] += g * in[ci+d]
						}
					}
					for d := 0; d < D; d++ {
						in[ci+d] += grad[d]
					}
				}
			}
		}
	}

	m := &Model{dim: D, words: words, index: index, vecs: in}
	m.cluster = kmeans(in, V, D, cfg.Clusters, rng)
	return m, nil
}

func sigmoid(x float64) float64 {
	switch {
	case x > 30:
		return 1
	case x < -30:
		return 0
	}
	return 1 / (1 + math.Exp(-x))
}

// kmeans clusters V row vectors of dimension D into k groups (k-means++
// seeding, 20 Lloyd iterations) and returns the assignment.
func kmeans(vecs []float64, V, D, k int, rng *rand.Rand) []int {
	if k > V {
		k = V
	}
	assign := make([]int, V)
	if k <= 1 {
		return assign
	}
	row := func(i int) []float64 { return vecs[i*D : (i+1)*D] }

	// k-means++ seeding.
	centers := make([]float64, k*D)
	copy(centers[:D], row(rng.Intn(V)))
	minDist := make([]float64, V)
	for i := range minDist {
		minDist[i] = math.Inf(1)
	}
	for c := 1; c < k; c++ {
		var sum float64
		for i := 0; i < V; i++ {
			if d := sqDist(row(i), centers[(c-1)*D:c*D]); d < minDist[i] {
				minDist[i] = d
			}
			sum += minDist[i]
		}
		target := rng.Float64() * sum
		pick := V - 1
		var acc float64
		for i := 0; i < V; i++ {
			acc += minDist[i]
			if acc >= target {
				pick = i
				break
			}
		}
		copy(centers[c*D:(c+1)*D], row(pick))
	}

	sizes := make([]int, k)
	for iter := 0; iter < 20; iter++ {
		changed := false
		for i := 0; i < V; i++ {
			best, bd := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				if d := sqDist(row(i), centers[c*D:(c+1)*D]); d < bd {
					best, bd = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		for i := range centers {
			centers[i] = 0
		}
		for i := range sizes {
			sizes[i] = 0
		}
		for i := 0; i < V; i++ {
			c := assign[i]
			sizes[c]++
			r := row(i)
			for d := 0; d < D; d++ {
				centers[c*D+d] += r[d]
			}
		}
		for c := 0; c < k; c++ {
			if sizes[c] > 0 {
				for d := 0; d < D; d++ {
					centers[c*D+d] /= float64(sizes[c])
				}
			}
		}
	}
	return assign
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Vector returns the embedding for word, or nil if unknown. The returned
// slice aliases model memory; callers must not modify it.
func (m *Model) Vector(word string) []float64 {
	i, ok := m.index[word]
	if !ok {
		return nil
	}
	return m.vecs[i*m.dim : (i+1)*m.dim]
}

// Dim returns the embedding dimensionality.
func (m *Model) Dim() int { return m.dim }

// VocabSize returns the number of embedded words.
func (m *Model) VocabSize() int { return len(m.words) }

// Classes implements features.WordClasser: a single k-means cluster
// identity feature per known word.
func (m *Model) Classes(word string) []string {
	i, ok := m.index[word]
	if !ok {
		return nil
	}
	return []string{"w2v=" + strconv.Itoa(m.cluster[i])}
}

// WriteTo serializes the model as a text header "w2v <vocab> <dim>"
// followed by one "word cluster v0 v1 ..." line per word.
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	cw := bufio.NewWriter(w)
	var n int64
	k, err := fmt.Fprintf(cw, "w2v %d %d\n", len(m.words), m.dim)
	n += int64(k)
	if err != nil {
		return n, err
	}
	for i, word := range m.words {
		k, err = fmt.Fprintf(cw, "%s %d", word, m.cluster[i])
		n += int64(k)
		if err != nil {
			return n, err
		}
		for _, v := range m.vecs[i*m.dim : (i+1)*m.dim] {
			k, err = fmt.Fprintf(cw, " %.6g", v)
			n += int64(k)
			if err != nil {
				return n, err
			}
		}
		k, err = fmt.Fprintln(cw)
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, cw.Flush()
}

// ReadFrom deserializes a model written by WriteTo.
func ReadFrom(r io.Reader) (*Model, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	if !sc.Scan() {
		return nil, fmt.Errorf("word2vec: empty stream")
	}
	var vocab, dim int
	if _, err := fmt.Sscanf(sc.Text(), "w2v %d %d", &vocab, &dim); err != nil {
		return nil, fmt.Errorf("word2vec: bad header %q: %w", sc.Text(), err)
	}
	if vocab < 0 || dim <= 0 {
		return nil, fmt.Errorf("word2vec: bad header values %d %d", vocab, dim)
	}
	m := &Model{
		dim:     dim,
		words:   make([]string, 0, vocab),
		index:   make(map[string]int, vocab),
		vecs:    make([]float64, 0, vocab*dim),
		cluster: make([]int, 0, vocab),
	}
	line := 1
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 2+dim {
			return nil, fmt.Errorf("word2vec: line %d: %d fields, want %d", line, len(fields), 2+dim)
		}
		cl, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("word2vec: line %d: %w", line, err)
		}
		m.index[fields[0]] = len(m.words)
		m.words = append(m.words, fields[0])
		m.cluster = append(m.cluster, cl)
		for _, f := range fields[2:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("word2vec: line %d: %w", line, err)
			}
			m.vecs = append(m.vecs, v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(m.words) != vocab {
		return nil, fmt.Errorf("word2vec: header promised %d words, got %d", vocab, len(m.words))
	}
	return m, nil
}

// Neighbor is a cosine-similarity match.
type Neighbor struct {
	Word string
	Sim  float64
}

// Neighbors returns the n most cosine-similar words to word, excluding the
// word itself. It returns nil for unknown words.
func (m *Model) Neighbors(word string, n int) []Neighbor {
	qi, ok := m.index[word]
	if !ok {
		return nil
	}
	q := m.vecs[qi*m.dim : (qi+1)*m.dim]
	qn := math.Sqrt(dot(q, q))
	if qn == 0 {
		return nil
	}
	out := make([]Neighbor, 0, len(m.words)-1)
	for i, w := range m.words {
		if i == qi {
			continue
		}
		v := m.vecs[i*m.dim : (i+1)*m.dim]
		vn := math.Sqrt(dot(v, v))
		if vn == 0 {
			continue
		}
		out = append(out, Neighbor{Word: w, Sim: dot(q, v) / (qn * vn)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sim != out[j].Sim { // lint:checked exact tie-break keeps neighbor order deterministic
			return out[i].Sim > out[j].Sim
		}
		return out[i].Word < out[j].Word
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
