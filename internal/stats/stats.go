// Package stats provides the statistical utilities used by the paper's
// qualitative analysis (§III-E): the chi-square two-sample test for
// equality of proportions with Yates continuity correction (R's
// prop.test), the chi-square distribution tail via the regularized
// incomplete gamma function, and simple timing summaries for the
// train/test cost measurements of Figure 2.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// ChiSquareProportions performs the two-sample test for equality of
// proportions x1/n1 vs x2/n2 with continuity correction, returning the
// chi-square statistic (df = 1) and its p-value. It mirrors R's
// prop.test(c(x1,x2), c(n1,n2)).
func ChiSquareProportions(x1, n1, x2, n2 int) (chi2, p float64, err error) {
	if n1 <= 0 || n2 <= 0 {
		return 0, 0, fmt.Errorf("stats: empty sample (n1=%d, n2=%d)", n1, n2)
	}
	if x1 < 0 || x1 > n1 || x2 < 0 || x2 > n2 {
		return 0, 0, fmt.Errorf("stats: counts out of range")
	}
	// 2x2 table: rows = samples, cols = success/failure.
	o := [2][2]float64{
		{float64(x1), float64(n1 - x1)},
		{float64(x2), float64(n2 - x2)},
	}
	rowSum := [2]float64{o[0][0] + o[0][1], o[1][0] + o[1][1]}
	colSum := [2]float64{o[0][0] + o[1][0], o[0][1] + o[1][1]}
	total := rowSum[0] + rowSum[1]
	if colSum[0] == 0 || colSum[1] == 0 {
		// Degenerate: all successes or all failures; no evidence of a
		// difference.
		return 0, 1, nil
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			e := rowSum[i] * colSum[j] / total
			d := math.Abs(o[i][j]-e) - 0.5 // Yates continuity correction
			if d < 0 {
				d = 0
			}
			chi2 += d * d / e
		}
	}
	return chi2, ChiSquareTail(chi2, 1), nil
}

// ChiSquareTail returns P(X ≥ x) for a chi-square distribution with df
// degrees of freedom.
func ChiSquareTail(x float64, df int) float64 {
	if x <= 0 {
		return 1
	}
	return 1 - gammaIncReg(float64(df)/2, x/2)
}

// gammaIncReg is the regularized lower incomplete gamma function P(a, x),
// computed by series expansion for x < a+1 and by continued fraction
// otherwise (Numerical Recipes gammp).
func gammaIncReg(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		return math.NaN()
	case x == 0:
		return 0
	case x < a+1:
		// Series: P(a,x) = e^{-x} x^a / Γ(a) Σ x^n / (a(a+1)...(a+n)).
		ap := a
		sum := 1 / a
		del := sum
		for n := 0; n < 500; n++ {
			ap++
			del *= x / ap
			sum += del
			if math.Abs(del) < math.Abs(sum)*1e-15 {
				break
			}
		}
		lg, _ := math.Lgamma(a)
		return sum * math.Exp(-x+a*math.Log(x)-lg)
	default:
		// Continued fraction for Q(a,x) = 1 − P(a,x).
		const tiny = 1e-300
		b := x + 1 - a
		c := 1 / tiny
		d := 1 / b
		h := d
		for i := 1; i < 500; i++ {
			an := -float64(i) * (float64(i) - a)
			b += 2
			d = an*d + b
			if math.Abs(d) < tiny {
				d = tiny
			}
			c = b + an/c
			if math.Abs(c) < tiny {
				c = tiny
			}
			d = 1 / d
			del := d * c
			h *= del
			if math.Abs(del-1) < 1e-15 {
				break
			}
		}
		lg, _ := math.Lgamma(a)
		q := math.Exp(-x+a*math.Log(x)-lg) * h
		return 1 - q
	}
}

// Timing summarizes repeated duration measurements.
type Timing struct {
	N                  int
	Mean, Min, Max, SD time.Duration
}

// Summarize computes a Timing from samples. It panics on empty input.
func Summarize(samples []time.Duration) Timing {
	if len(samples) == 0 {
		panic("stats: no samples")
	}
	t := Timing{N: len(samples), Min: samples[0], Max: samples[0]}
	var sum, sumSq float64
	for _, s := range samples {
		if s < t.Min {
			t.Min = s
		}
		if s > t.Max {
			t.Max = s
		}
		f := float64(s)
		sum += f
		sumSq += f * f
	}
	mean := sum / float64(len(samples))
	t.Mean = time.Duration(mean)
	if len(samples) > 1 {
		v := (sumSq - sum*mean) / float64(len(samples)-1)
		if v > 0 {
			t.SD = time.Duration(math.Sqrt(v))
		}
	}
	return t
}

// String renders a Timing compactly.
func (t Timing) String() string {
	return fmt.Sprintf("n=%d mean=%v sd=%v min=%v max=%v", t.N, t.Mean.Round(time.Millisecond),
		t.SD.Round(time.Millisecond), t.Min.Round(time.Millisecond), t.Max.Round(time.Millisecond))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of values by linear
// interpolation. It panics on empty input.
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		panic("stats: no values")
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}
