package stats

import (
	"math"
	"testing"
	"time"
)

func TestChiSquareProportions(t *testing.T) {
	// R: prop.test(c(80, 60), c(100, 100)) gives X² ≈ 8.6027, p ≈ 0.00335.
	chi2, p, err := ChiSquareProportions(80, 100, 60, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(chi2-8.6027) > 0.01 {
		t.Errorf("chi2 = %g, want ≈ 8.6027", chi2)
	}
	if math.Abs(p-0.00335) > 0.0005 {
		t.Errorf("p = %g, want ≈ 0.00335", p)
	}
}

func TestChiSquareEqualProportionsNotSignificant(t *testing.T) {
	_, p, err := ChiSquareProportions(50, 100, 52, 100)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.5 {
		t.Errorf("p = %g for nearly equal proportions", p)
	}
}

func TestChiSquareDegenerate(t *testing.T) {
	// All successes in both samples: p = 1.
	_, p, err := ChiSquareProportions(10, 10, 20, 20)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Errorf("p = %g, want 1", p)
	}
}

func TestChiSquareErrors(t *testing.T) {
	if _, _, err := ChiSquareProportions(1, 0, 1, 10); err == nil {
		t.Error("want error for empty sample")
	}
	if _, _, err := ChiSquareProportions(11, 10, 1, 10); err == nil {
		t.Error("want error for count > n")
	}
	if _, _, err := ChiSquareProportions(-1, 10, 1, 10); err == nil {
		t.Error("want error for negative count")
	}
}

func TestChiSquareTail(t *testing.T) {
	// Known values: P(X ≥ 3.841 | df=1) ≈ 0.05, P(X ≥ 6.635 | df=1) ≈ 0.01.
	if p := ChiSquareTail(3.841, 1); math.Abs(p-0.05) > 0.001 {
		t.Errorf("tail(3.841, 1) = %g", p)
	}
	if p := ChiSquareTail(6.635, 1); math.Abs(p-0.01) > 0.001 {
		t.Errorf("tail(6.635, 1) = %g", p)
	}
	// df=2: P(X ≥ 5.991) ≈ 0.05.
	if p := ChiSquareTail(5.991, 2); math.Abs(p-0.05) > 0.001 {
		t.Errorf("tail(5.991, 2) = %g", p)
	}
	if p := ChiSquareTail(0, 1); p != 1 {
		t.Errorf("tail(0) = %g", p)
	}
	if p := ChiSquareTail(-1, 1); p != 1 {
		t.Errorf("tail(-1) = %g", p)
	}
	// Large x: tail approaches 0.
	if p := ChiSquareTail(100, 1); p > 1e-20 {
		t.Errorf("tail(100,1) = %g", p)
	}
}

func TestGammaIncRegIdentities(t *testing.T) {
	// P(1, x) = 1 − e^{-x} (exponential distribution CDF).
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		want := 1 - math.Exp(-x)
		if got := gammaIncReg(1, x); math.Abs(got-want) > 1e-12 {
			t.Errorf("P(1,%g) = %g, want %g", x, got, want)
		}
	}
	if got := gammaIncReg(2, 0); got != 0 {
		t.Errorf("P(2,0) = %g", got)
	}
	if !math.IsNaN(gammaIncReg(-1, 1)) || !math.IsNaN(gammaIncReg(1, -1)) {
		t.Error("invalid arguments should give NaN")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]time.Duration{time.Second, 3 * time.Second})
	if s.N != 2 || s.Mean != 2*time.Second || s.Min != time.Second || s.Max != 3*time.Second {
		t.Errorf("summary = %+v", s)
	}
	if s.SD == 0 {
		t.Error("SD should be nonzero")
	}
	if s.String() == "" {
		t.Error("empty render")
	}
	one := Summarize([]time.Duration{5 * time.Second})
	if one.SD != 0 {
		t.Error("single sample should have zero SD")
	}
}

func TestSummarizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	Summarize(nil)
}

func TestQuantile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	if q := Quantile(vals, 0.5); q != 3 {
		t.Errorf("median = %g", q)
	}
	if q := Quantile(vals, 0); q != 1 {
		t.Errorf("q0 = %g", q)
	}
	if q := Quantile(vals, 1); q != 5 {
		t.Errorf("q1 = %g", q)
	}
	if q := Quantile(vals, 0.25); q != 2 {
		t.Errorf("q25 = %g", q)
	}
	// Input must not be mutated (sorted copy).
	unsorted := []float64{3, 1, 2}
	Quantile(unsorted, 0.5)
	if unsorted[0] != 3 {
		t.Error("input mutated")
	}
}
