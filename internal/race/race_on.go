//go:build race

// Package race reports whether the race detector is compiled in, so
// allocation-count guards can skip themselves: race instrumentation
// allocates shadow state on code paths that are allocation-free in
// normal builds.
package race

// Enabled is true when the binary was built with -race.
const Enabled = true
