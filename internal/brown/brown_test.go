package brown

import (
	"math/rand"
	"strings"
	"testing"
)

// twoTopicCorpus builds sentences where words of each topic only co-occur
// with their own topic, so Brown clustering should separate them cleanly.
func twoTopicCorpus(rng *rand.Rand, n int) [][]string {
	topicA := []string{"gene", "mutation", "expression", "variant", "allele"}
	topicB := []string{"january", "february", "march", "april", "may"}
	var out [][]string
	for i := 0; i < n; i++ {
		pool := topicA
		if i%2 == 1 {
			pool = topicB
		}
		ln := 4 + rng.Intn(5)
		s := make([]string, ln)
		for j := range s {
			s[j] = pool[rng.Intn(len(pool))]
		}
		out = append(out, s)
	}
	return out
}

func TestClusterSeparatesTopics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	corpus := twoTopicCorpus(rng, 400)
	c, err := Cluster(corpus, Config{NumClusters: 4, MaxWords: 100, MinCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Words within a topic should share longer path prefixes with each
	// other than with words of the other topic.
	topicA := []string{"gene", "mutation", "expression", "variant", "allele"}
	topicB := []string{"january", "february", "march", "april", "may"}
	avgIntra, avgInter, nIntra, nInter := 0, 0, 0, 0
	lcp := func(a, b string) int {
		n := 0
		for n < len(a) && n < len(b) && a[n] == b[n] {
			n++
		}
		return n
	}
	for _, a := range topicA {
		for _, b := range topicA {
			if a != b {
				avgIntra += lcp(c.Path(a), c.Path(b))
				nIntra++
			}
		}
		for _, b := range topicB {
			avgInter += lcp(c.Path(a), c.Path(b))
			nInter++
		}
	}
	if nIntra == 0 || nInter == 0 {
		t.Fatal("degenerate test")
	}
	intra := float64(avgIntra) / float64(nIntra)
	inter := float64(avgInter) / float64(nInter)
	if intra <= inter {
		t.Errorf("intra-topic LCP %.2f not greater than inter-topic %.2f", intra, inter)
	}
}

func TestAllWordsGetPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	corpus := twoTopicCorpus(rng, 100)
	c, err := Cluster(corpus, Config{NumClusters: 3, MaxWords: 100, MinCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 10 {
		t.Errorf("clustered %d words, want 10", c.Len())
	}
	for _, w := range []string{"gene", "january"} {
		if c.Path(w) == "" {
			t.Errorf("no path for %q", w)
		}
	}
	if c.Path("nonexistent") != "" {
		t.Error("path for unknown word")
	}
}

func TestPathsAreUniquePerWord(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	corpus := twoTopicCorpus(rng, 200)
	c, err := Cluster(corpus, Config{NumClusters: 5, MaxWords: 100, MinCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]string)
	for _, w := range []string{"gene", "mutation", "expression", "variant", "allele", "january", "february", "march", "april", "may"} {
		p := c.Path(w)
		if p == "" {
			t.Fatalf("no path for %q", w)
		}
		for _, r := range p {
			if r != '0' && r != '1' {
				t.Fatalf("path %q for %q contains non-bit", p, w)
			}
		}
		if prev, dup := seen[p]; dup {
			t.Errorf("words %q and %q share full path %q", prev, w, p)
		}
		seen[p] = w
	}
}

func TestMinCountFilters(t *testing.T) {
	corpus := [][]string{
		{"common", "common", "common", "rare"},
		{"common", "common"},
	}
	c, err := Cluster(corpus, Config{NumClusters: 2, MaxWords: 100, MinCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.Path("rare") != "" {
		t.Error("rare word should be filtered")
	}
	if c.Path("common") == "" {
		t.Error("common word should be clustered")
	}
}

func TestEmptyInputErrors(t *testing.T) {
	if _, err := Cluster(nil, Config{}); err == nil {
		t.Error("want error for empty corpus")
	}
	if _, err := Cluster([][]string{{"once"}}, Config{MinCount: 5}); err == nil {
		t.Error("want error when everything is filtered")
	}
}

func TestSingleWordVocabulary(t *testing.T) {
	c, err := Cluster([][]string{{"only", "only", "only"}}, Config{MinCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.Path("only") == "" {
		t.Error("single word got no path")
	}
}

func TestClasses(t *testing.T) {
	c := &Clustering{paths: map[string]string{
		"short": "011",
		"long":  "0110101101010101010101",
	}}
	got := c.Classes("short")
	if len(got) != 1 || got[0] != "brown4=011" {
		t.Errorf("Classes(short) = %v", got)
	}
	got = c.Classes("long")
	want := []string{"brown4=0110", "brown6=011010", "brown10=0110101101", "brown20=01101011010101010101"}
	if len(got) != len(want) {
		t.Fatalf("Classes(long) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Classes(long)[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if c.Classes("missing") != nil {
		t.Error("Classes of unknown word should be nil")
	}
}

func TestDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	corpus := twoTopicCorpus(rng, 150)
	a, err := Cluster(corpus, Config{NumClusters: 4, MinCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(corpus, Config{NumClusters: 4, MinCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range strings.Fields("gene mutation january may") {
		if a.Path(w) != b.Path(w) {
			t.Errorf("nondeterministic path for %q: %q vs %q", w, a.Path(w), b.Path(w))
		}
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	corpus := twoTopicCorpus(rng, 150)
	c, err := Cluster(corpus, Config{NumClusters: 4, MinCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	c2, err := ReadFrom(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != c.Len() {
		t.Fatalf("lost words: %d vs %d", c2.Len(), c.Len())
	}
	for _, w := range []string{"gene", "january", "may"} {
		if c.Path(w) != c2.Path(w) {
			t.Errorf("path of %q changed: %q vs %q", w, c.Path(w), c2.Path(w))
		}
	}
}

func TestReadFromMalformed(t *testing.T) {
	for _, bad := range []string{
		"nopath\n",    // no tab
		"01x\tword\n", // bad path bit
		"0110\t\n",    // empty word
	} {
		if _, err := ReadFrom(strings.NewReader(bad)); err == nil {
			t.Errorf("want error for %q", bad)
		}
	}
	c, err := ReadFrom(strings.NewReader(""))
	if err != nil || c.Len() != 0 {
		t.Error("empty stream should give empty clustering")
	}
}

func BenchmarkCluster(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	corpus := twoTopicCorpus(rng, 300)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Cluster(corpus, Config{NumClusters: 8, MinCount: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
