// Package brown implements Brown clustering (Brown et al. 1992): a
// hierarchical agglomerative clustering of words that greedily merges the
// pair of clusters whose union costs the least average mutual information
// between adjacent cluster bigrams. The resulting binary merge tree assigns
// every clustered word a bit path; prefixes of the path are the word-class
// features that BANNER-ChemDNER feeds its CRF, and that this repository's
// ChemDNER-style extractor consumes through the features.WordClasser
// interface.
//
// The implementation follows the classic "window" strategy: the most
// frequent maxWords words are introduced in frequency order into a working
// set of at most numClusters+1 active clusters; each introduction above the
// limit triggers the cheapest merge. A final phase merges the remaining
// active clusters down to a single root. Candidate merge costs are
// evaluated in O(C) from cluster unigram/bigram tables, giving O(V·C³)
// total work, which is ample for corpus vocabularies at the scale of the
// GraphNER experiments.
package brown

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Config controls clustering.
type Config struct {
	// NumClusters is the size of the active window C (default 64).
	NumClusters int
	// MaxWords caps the vocabulary, keeping the most frequent words
	// (default 2000). Words below the cap get no cluster.
	MaxWords int
	// MinCount drops words rarer than this (default 2).
	MinCount int
}

func (c *Config) defaults() {
	if c.NumClusters <= 0 {
		c.NumClusters = 64
	}
	if c.MaxWords <= 0 {
		c.MaxWords = 2000
	}
	if c.MinCount <= 0 {
		c.MinCount = 2
	}
}

// Clustering is the result: a bit path per clustered word.
type Clustering struct {
	paths map[string]string
}

// Path returns the full bit path for word, or "" if the word was not
// clustered.
func (c *Clustering) Path(word string) string { return c.paths[word] }

// Len returns the number of clustered words.
func (c *Clustering) Len() int { return len(c.paths) }

// Classes implements features.WordClasser: it emits the paper-standard
// bit-path prefix features at lengths 4, 6, 10 and 20 (shorter paths are
// emitted whole once).
func (c *Clustering) Classes(word string) []string {
	p := c.paths[word]
	if p == "" {
		return nil
	}
	var out []string
	prev := ""
	for _, n := range [...]int{4, 6, 10, 20} {
		pre := p
		if len(p) > n {
			pre = p[:n]
		}
		if pre == prev {
			continue
		}
		prev = pre
		out = append(out, "brown"+strconv.Itoa(n)+"="+pre)
	}
	return out
}

// WriteTo serializes the clustering as "path<TAB>word" lines (the format
// of Liang's original wcluster output), sorted by word for determinism.
func (c *Clustering) WriteTo(w io.Writer) (int64, error) {
	words := make([]string, 0, len(c.paths))
	for word := range c.paths {
		words = append(words, word)
	}
	sort.Strings(words)
	var n int64
	bw := bufio.NewWriter(w)
	for _, word := range words {
		k, err := fmt.Fprintf(bw, "%s\t%s\n", c.paths[word], word)
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadFrom deserializes a clustering written by WriteTo.
func ReadFrom(r io.Reader) (*Clustering, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	paths := make(map[string]string)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		tab := strings.IndexByte(text, '\t')
		if tab < 0 {
			return nil, fmt.Errorf("brown: line %d: missing tab", line)
		}
		path, word := text[:tab], text[tab+1:]
		for _, r := range path {
			if r != '0' && r != '1' {
				return nil, fmt.Errorf("brown: line %d: bad path %q", line, path)
			}
		}
		if word == "" {
			return nil, fmt.Errorf("brown: line %d: empty word", line)
		}
		paths[word] = path
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return &Clustering{paths: paths}, nil
}

// Cluster learns a Brown clustering from tokenized sentences.
func Cluster(sentences [][]string, cfg Config) (*Clustering, error) {
	cfg.defaults()

	// Vocabulary, ordered by frequency.
	counts := make(map[string]int)
	for _, s := range sentences {
		for _, w := range s {
			counts[w]++
		}
	}
	type wc struct {
		w string
		c int
	}
	vocab := make([]wc, 0, len(counts))
	for w, c := range counts {
		if c >= cfg.MinCount {
			vocab = append(vocab, wc{w, c})
		}
	}
	if len(vocab) == 0 {
		return nil, fmt.Errorf("brown: empty vocabulary (min count %d)", cfg.MinCount)
	}
	sort.Slice(vocab, func(i, j int) bool {
		if vocab[i].c != vocab[j].c {
			return vocab[i].c > vocab[j].c
		}
		return vocab[i].w < vocab[j].w
	})
	if len(vocab) > cfg.MaxWords {
		vocab = vocab[:cfg.MaxWords]
	}
	wordID := make(map[string]int, len(vocab))
	for i, v := range vocab {
		wordID[v.w] = i
	}
	V := len(vocab)

	// Word-level bigram counts over in-vocabulary adjacent pairs.
	uni := make([]float64, V)
	big := make(map[[2]int]float64)
	var total float64
	for _, s := range sentences {
		prev := -1
		for _, w := range s {
			id, ok := wordID[w]
			if !ok {
				prev = -1
				continue
			}
			uni[id]++
			total++
			if prev >= 0 {
				big[[2]int{prev, id}]++
			}
			prev = id
		}
	}
	if total == 0 {
		return nil, fmt.Errorf("brown: no in-vocabulary tokens")
	}

	w := &workspace{
		cfg:    cfg,
		uni:    uni,
		big:    big,
		vocab:  make([]string, V),
		parent: make(map[int]merge),
	}
	for i, v := range vocab {
		w.vocab[i] = v.w
	}
	w.run()

	return &Clustering{paths: w.paths()}, nil
}

// merge records one agglomeration: node was formed from left and right.
type merge struct{ left, right int }

// workspace carries the mutable clustering state.
type workspace struct {
	cfg   Config
	uni   []float64
	big   map[[2]int]float64
	vocab []string

	// Active clusters. active[i] is a tree node id; clusterUni and
	// clusterBig are unigram and directed bigram counts between active
	// clusters, indexed by position in active.
	active     []int
	clusterUni []float64
	clusterBig [][]float64

	// Merge tree over node ids. Leaves are word ids 0..V-1; internal nodes
	// get ids V, V+1, ...
	parent   map[int]merge
	nextNode int

	// members maps active position -> word ids contained.
	members [][]int
}

func (w *workspace) run() {
	V := len(w.vocab)
	w.nextNode = V
	C := w.cfg.NumClusters

	introduce := func(wordID int) {
		pos := len(w.active)
		w.active = append(w.active, wordID)
		w.members = append(w.members, []int{wordID})
		w.clusterUni = append(w.clusterUni, w.uni[wordID])
		// Extend bigram matrix.
		for i := range w.clusterBig {
			w.clusterBig[i] = append(w.clusterBig[i], 0)
		}
		w.clusterBig = append(w.clusterBig, make([]float64, pos+1))
		// Fill counts between the new cluster and all active clusters.
		for i := 0; i <= pos; i++ {
			var toNew, fromNew float64
			for _, a := range w.members[i] {
				toNew += w.big[[2]int{a, wordID}]
				fromNew += w.big[[2]int{wordID, a}]
			}
			w.clusterBig[i][pos] = toNew
			w.clusterBig[pos][i] = fromNew
		}
		// Self-bigram double counted in the loop when i == pos: toNew and
		// fromNew are the same cell; fix it to the single value.
		w.clusterBig[pos][pos] = w.big[[2]int{wordID, wordID}]
	}

	for i := 0; i < V; i++ {
		introduce(i)
		if len(w.active) > C {
			w.mergeBestPair()
		}
	}
	// Final phase: merge the window down to one root.
	for len(w.active) > 1 {
		w.mergeBestPair()
	}
}

// totals returns the grand totals of the cluster bigram and unigram
// tables; both are invariant under merging.
func (w *workspace) totals() (totalBig, totalUni float64) {
	for i := range w.clusterBig {
		for _, c := range w.clusterBig[i] {
			totalBig += c
		}
	}
	for _, u := range w.clusterUni {
		totalUni += u
	}
	return totalBig, totalUni
}

// qTerm is one cell's contribution to the average mutual information:
// p(i,j)·log(p(i,j)/(p(i)p(j))). Zero-count cells contribute 0.
func qTerm(cBig, uniL, uniR, totalBig, totalUni float64) float64 {
	if cBig <= 0 || uniL <= 0 || uniR <= 0 {
		return 0
	}
	p := cBig / totalBig
	return p * math.Log(p*totalUni*totalUni/(uniL*uniR))
}

// mergeBestPair finds the pair of active clusters whose merge loses the
// least AMI and merges it. Candidate deltas are evaluated in O(C) from the
// count tables, giving O(C³) per merge step.
func (w *workspace) mergeBestPair() {
	n := len(w.active)
	totalBig, totalUni := w.totals()
	if totalBig == 0 {
		// Degenerate corpus with no bigrams: merge arbitrarily.
		w.applyMerge(0, 1)
		return
	}

	// Precompute q cells and row/column sums.
	q := make([][]float64, n)
	rowq := make([]float64, n)
	colq := make([]float64, n)
	for i := 0; i < n; i++ {
		q[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			q[i][j] = qTerm(w.clusterBig[i][j], w.clusterUni[i], w.clusterUni[j], totalBig, totalUni)
			rowq[i] += q[i][j]
			colq[j] += q[i][j]
		}
	}

	bestA, bestB := 0, 1
	best := math.Inf(-1)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			// AMI lost: every term with a or b as a coordinate.
			lost := rowq[a] + rowq[b] + colq[a] + colq[b] -
				q[a][a] - q[a][b] - q[b][a] - q[b][b]
			// AMI gained: terms of the merged cluster c = a∪b.
			uc := w.clusterUni[a] + w.clusterUni[b]
			gained := qTerm(
				w.clusterBig[a][a]+w.clusterBig[a][b]+w.clusterBig[b][a]+w.clusterBig[b][b],
				uc, uc, totalBig, totalUni)
			for j := 0; j < n; j++ {
				if j == a || j == b {
					continue
				}
				gained += qTerm(w.clusterBig[a][j]+w.clusterBig[b][j], uc, w.clusterUni[j], totalBig, totalUni)
				gained += qTerm(w.clusterBig[j][a]+w.clusterBig[j][b], w.clusterUni[j], uc, totalBig, totalUni)
			}
			if delta := gained - lost; delta > best {
				best, bestA, bestB = delta, a, b
			}
		}
	}
	w.applyMerge(bestA, bestB)
}

// applyMerge merges active positions a and b (a < b) into a.
func (w *workspace) applyMerge(a, b int) {
	node := w.nextNode
	w.nextNode++
	w.parent[node] = merge{left: w.active[a], right: w.active[b]}
	w.active[a] = node
	w.members[a] = append(w.members[a], w.members[b]...)
	w.clusterUni[a] += w.clusterUni[b]
	n := len(w.active)
	for i := 0; i < n; i++ {
		w.clusterBig[i][a] += w.clusterBig[i][b]
	}
	for j := 0; j < n; j++ {
		w.clusterBig[a][j] += w.clusterBig[b][j]
	}
	// The b row/col were folded into a, including the (b,b) cell which
	// passed through (b,a) and (a,b); remove position b.
	w.active = append(w.active[:b], w.active[b+1:]...)
	w.members = append(w.members[:b], w.members[b+1:]...)
	w.clusterUni = append(w.clusterUni[:b], w.clusterUni[b+1:]...)
	w.clusterBig = append(w.clusterBig[:b], w.clusterBig[b+1:]...)
	for i := range w.clusterBig {
		w.clusterBig[i] = append(w.clusterBig[i][:b], w.clusterBig[i][b+1:]...)
	}
}

// paths walks the merge tree from the root, assigning "0" to left children
// and "1" to right children.
func (w *workspace) paths() map[string]string {
	out := make(map[string]string, len(w.vocab))
	if len(w.active) == 0 {
		return out
	}
	root := w.active[0]
	var walk func(node int, path string)
	walk = func(node int, path string) {
		if m, ok := w.parent[node]; ok {
			walk(m.left, path+"0")
			walk(m.right, path+"1")
			return
		}
		// Leaf: node is a word id.
		if path == "" {
			path = "0" // degenerate single-word vocabulary
		}
		out[w.vocab[node]] = path
	}
	walk(root, "")
	return out
}
