package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp flags == and != between computed floating-point values outside
// *_test.go files. Exact float equality is brittle under the exact
// transformations this codebase performs on purpose — reassociated
// accumulation, flat-buffer kernels, parallel sweeps — so production code
// must compare through the floats.EpsEq / floats.Eq helpers.
//
// Deliberate exact comparisons stay expressible:
//
//   - comparisons where either side is a compile-time constant (zero
//     guards like `kappa == 0`, sentinel checks) are exempt;
//   - x != x (the NaN idiom) is exempt;
//   - test files are exempt (golden comparisons demand bit identity);
//   - anything else deliberate takes a // lint:checked annotation.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "==/!= on computed floats must use floats.EpsEq",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, yt := pass.Info.TypeOf(be.X), pass.Info.TypeOf(be.Y)
			if xt == nil || yt == nil || (!isFloat(xt) && !isFloat(yt)) {
				return true
			}
			if isConstExpr(pass.Info, be.X) || isConstExpr(pass.Info, be.Y) {
				return true
			}
			if sameIdent(be.X, be.Y) {
				return true // x != x: the NaN test idiom
			}
			pass.Report(be.OpPos, "exact %s on floating-point values; use floats.EpsEq (or annotate a deliberate bit-compare with // lint:checked)", be.Op)
			return true
		})
	}
	return nil
}

// isConstExpr reports whether the type checker evaluated e to a constant.
func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// sameIdent reports whether both expressions are the same identifier.
func sameIdent(x, y ast.Expr) bool {
	xi, ok1 := ast.Unparen(x).(*ast.Ident)
	yi, ok2 := ast.Unparen(y).(*ast.Ident)
	return ok1 && ok2 && xi.Name == yi.Name
}
