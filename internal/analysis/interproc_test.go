package analysis

import (
	"path/filepath"
	"testing"
)

// oldSuite is the analyzer set as it stood before the interprocedural
// layer. Run with a nil call graph and nil summaries, these behave
// exactly as they did then (the summary-aware hooks degrade to no-ops),
// so a corpus file these stay silent on is a provable blind spot of the
// intraprocedural suite.
func oldSuite() []*Analyzer {
	return []*Analyzer{
		PoolEscape, MapOrder, FloatCmp, NanInf, CtxLoop,
		LockBalance, SharedWrite, AtomicMix, WaitGroupBalance,
	}
}

// oldSuiteFindings runs the pre-interprocedural suite over a corpus
// package and returns the diagnostics landing in the named file.
func oldSuiteFindings(t *testing.T, corpus, file string) []Diagnostic {
	t.Helper()
	dir := filepath.Join("testdata", "src", corpus)
	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	facts := NewFacts()
	facts.AddPackage(pkg)
	var out []Diagnostic
	for _, a := range oldSuite() {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Facts:    facts,
			suppress: buildSuppressions(pkg.Fset, pkg.Files),
			report: func(d Diagnostic) {
				if filepath.Base(d.Pos.Filename) == file {
					out = append(out, d)
				}
			},
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s.Run: %v", a.Name, err)
		}
	}
	return out
}

// TestPoolLifeOldSuiteBlind proves the poollife true positives in
// interproc.go are invisible to the intraprocedural suite: function-value
// Get/Put resolution and loop-carried release state both need the call
// graph. (That poollife itself catches them is asserted by the want
// markers in TestPoolLife.)
func TestPoolLifeOldSuiteBlind(t *testing.T) {
	for _, d := range oldSuiteFindings(t, "poollife", "interproc.go") {
		t.Errorf("pre-interprocedural suite should be blind here: %s", d)
	}
}

// TestLockAtCallOldSuiteBlind: every body in the lockatcall interproc
// corpus is individually lock-balanced; the deadlock exists only across
// the call edge, which needs the summaries.
func TestLockAtCallOldSuiteBlind(t *testing.T) {
	for _, d := range oldSuiteFindings(t, "lockatcall", "interproc.go") {
		t.Errorf("pre-interprocedural suite should be blind here: %s", d)
	}
}

// TestDeterminismOldSuiteBlind: halfLoss imports its nondeterminism
// through a callee's results, and goFold satisfies every intraprocedural
// concurrency check (mutex held, WaitGroup balanced, loop joined).
func TestDeterminismOldSuiteBlind(t *testing.T) {
	for _, d := range oldSuiteFindings(t, "determinism", "interproc.go") {
		t.Errorf("pre-interprocedural suite should be blind here: %s", d)
	}
}

// TestErrDropOldSuiteBlind: the pre-interprocedural suite has no notion
// of error results at all, and drain's dead store needs the CFG besides.
func TestErrDropOldSuiteBlind(t *testing.T) {
	for _, d := range oldSuiteFindings(t, "errdrop", "interproc.go") {
		t.Errorf("pre-interprocedural suite should be blind here: %s", d)
	}
}

// pr8Suite is the full analyzer set as it stood before the contract
// checkers: everything in All() except noalloc, nonblocking and
// baddirective. Unlike oldSuite it runs WITH the call graph and
// summaries, so silence on a corpus file proves a blind spot of the
// entire pre-contract suite, not just the intraprocedural one.
func pr8Suite() []*Analyzer {
	var out []*Analyzer
	for _, a := range All() {
		switch a.Name {
		case "noalloc", "nonblocking", "baddirective":
			continue
		}
		out = append(out, a)
	}
	return out
}

// pr8SuiteFindings runs the pre-contract suite, summaries and all, over
// a corpus package and returns the diagnostics landing in the named
// file.
func pr8SuiteFindings(t *testing.T, corpus, file string) []Diagnostic {
	t.Helper()
	dir := filepath.Join("testdata", "src", corpus)
	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	facts := NewFacts()
	facts.AddPackage(pkg)
	graph, sums := BuildInterprocedural([]*Package{pkg})
	var out []Diagnostic
	for _, a := range pr8Suite() {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			Info:      pkg.Info,
			Facts:     facts,
			CallGraph: graph,
			Summaries: sums,
			suppress:  buildSuppressions(pkg.Fset, pkg.Files),
			report: func(d Diagnostic) {
				if filepath.Base(d.Pos.Filename) == file {
					out = append(out, d)
				}
			},
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s.Run: %v", a.Name, err)
		}
	}
	return out
}

// TestNoAllocOldSuiteBlind: no earlier analyzer has any notion of
// allocation, so the deepEntry → mid → grow chain in the noalloc
// interproc corpus is invisible to the whole pre-contract suite.
func TestNoAllocOldSuiteBlind(t *testing.T) {
	for _, d := range pr8SuiteFindings(t, "noalloc", "interproc.go") {
		t.Errorf("pre-contract suite should be blind here: %s", d)
	}
}

// TestNonBlockingOldSuiteBlind: every body in the nonblocking interproc
// corpus is individually lock-balanced and deadlock-free, so the
// blocking acquire under store.deepRead is invisible to the whole
// pre-contract suite — lockbalance and lockatcall both pass it.
func TestNonBlockingOldSuiteBlind(t *testing.T) {
	for _, d := range pr8SuiteFindings(t, "nonblocking", "interproc.go") {
		t.Errorf("pre-contract suite should be blind here: %s", d)
	}
}
