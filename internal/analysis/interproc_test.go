package analysis

import (
	"path/filepath"
	"testing"
)

// oldSuite is the analyzer set as it stood before the interprocedural
// layer. Run with a nil call graph and nil summaries, these behave
// exactly as they did then (the summary-aware hooks degrade to no-ops),
// so a corpus file these stay silent on is a provable blind spot of the
// intraprocedural suite.
func oldSuite() []*Analyzer {
	return []*Analyzer{
		PoolEscape, MapOrder, FloatCmp, NanInf, CtxLoop,
		LockBalance, SharedWrite, AtomicMix, WaitGroupBalance,
	}
}

// oldSuiteFindings runs the pre-interprocedural suite over a corpus
// package and returns the diagnostics landing in the named file.
func oldSuiteFindings(t *testing.T, corpus, file string) []Diagnostic {
	t.Helper()
	dir := filepath.Join("testdata", "src", corpus)
	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	facts := NewFacts()
	facts.AddPackage(pkg)
	var out []Diagnostic
	for _, a := range oldSuite() {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Facts:    facts,
			suppress: buildSuppressions(pkg.Fset, pkg.Files),
			report: func(d Diagnostic) {
				if filepath.Base(d.Pos.Filename) == file {
					out = append(out, d)
				}
			},
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s.Run: %v", a.Name, err)
		}
	}
	return out
}

// TestPoolLifeOldSuiteBlind proves the poollife true positives in
// interproc.go are invisible to the intraprocedural suite: function-value
// Get/Put resolution and loop-carried release state both need the call
// graph. (That poollife itself catches them is asserted by the want
// markers in TestPoolLife.)
func TestPoolLifeOldSuiteBlind(t *testing.T) {
	for _, d := range oldSuiteFindings(t, "poollife", "interproc.go") {
		t.Errorf("pre-interprocedural suite should be blind here: %s", d)
	}
}

// TestLockAtCallOldSuiteBlind: every body in the lockatcall interproc
// corpus is individually lock-balanced; the deadlock exists only across
// the call edge, which needs the summaries.
func TestLockAtCallOldSuiteBlind(t *testing.T) {
	for _, d := range oldSuiteFindings(t, "lockatcall", "interproc.go") {
		t.Errorf("pre-interprocedural suite should be blind here: %s", d)
	}
}

// TestDeterminismOldSuiteBlind: halfLoss imports its nondeterminism
// through a callee's results, and goFold satisfies every intraprocedural
// concurrency check (mutex held, WaitGroup balanced, loop joined).
func TestDeterminismOldSuiteBlind(t *testing.T) {
	for _, d := range oldSuiteFindings(t, "determinism", "interproc.go") {
		t.Errorf("pre-interprocedural suite should be blind here: %s", d)
	}
}

// TestErrDropOldSuiteBlind: the pre-interprocedural suite has no notion
// of error results at all, and drain's dead store needs the CFG besides.
func TestErrDropOldSuiteBlind(t *testing.T) {
	for _, d := range oldSuiteFindings(t, "errdrop", "interproc.go") {
		t.Errorf("pre-interprocedural suite should be blind here: %s", d)
	}
}
