package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"maps"

	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/cfg"
	"repro/internal/analysis/dataflow"
	"repro/internal/analysis/summary"
)

// This file holds the mutex-tracking machinery shared by the
// flow-sensitive analyzers: recognising sync.Mutex/RWMutex method calls,
// rendering lock receivers to stable per-function keys, and the forward
// dataflow problem mapping every program point to the set of locks held
// there. lockbalance reports on the fixpoint directly; sharedwrite and
// the guarded-field facts only ask "is anything held at this position?".

// lockOp is one mutex operation found in a statement.
type lockOp struct {
	key      string // rendered receiver ("mu", "s.mu"); "#r" suffix for read ops
	lock     bool   // Lock/RLock vs Unlock/RUnlock
	read     bool   // RLock/RUnlock
	deferred bool   // registered by a defer (runs at function exit)
	pos      token.Pos
}

// mutexMethodNames maps the sync mutex methods we track. TryLock and
// TryRLock are deliberately ignored: their success is conditional and
// modelling it path-sensitively is out of scope.
var mutexMethods = map[string]struct{ lock, read bool }{
	"(*sync.Mutex).Lock":      {lock: true},
	"(*sync.Mutex).Unlock":    {},
	"(*sync.RWMutex).Lock":    {lock: true},
	"(*sync.RWMutex).Unlock":  {},
	"(*sync.RWMutex).RLock":   {lock: true, read: true},
	"(*sync.RWMutex).RUnlock": {read: true},
}

// mutexOp resolves call to a tracked mutex method and its receiver key.
func mutexOp(info *types.Info, call *ast.CallExpr) (lockOp, bool) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return lockOp{}, false
	}
	m, ok := mutexMethods[fn.FullName()]
	if !ok {
		return lockOp{}, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	key := exprKey(sel.X)
	if key == "" {
		return lockOp{}, false
	}
	if m.read {
		key += "#r"
	}
	return lockOp{key: key, lock: m.lock, read: m.read, pos: call.Pos()}, true
}

// exprKey renders a lock receiver expression to a stable string key:
// identifier chains ("mu", "s.state.mu") with pointers and parens
// stripped. Receivers the renderer cannot name (map lookups, call
// results) yield "" and are not tracked.
func exprKey(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprKey(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprKey(e.X)
	case *ast.StarExpr:
		return exprKey(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return exprKey(e.X)
		}
	}
	return ""
}

// opResolver maps a call site to the lock operations its callee is known
// to perform as seen by the caller — the interprocedural hook. The
// driver builds one per function body from the effect summaries (see
// Pass.lockResolver); nil means "no interprocedural knowledge" and every
// call is opaque, the pre-summary behaviour.
type opResolver func(call *ast.CallExpr) []lockOp

// nodeLockOps collects the mutex operations of one CFG node in source
// order. Function literals and go statements are opaque (their bodies
// run under a different flow); a defer registers its operations as
// deferred, whether the deferral is direct (defer mu.Unlock()) or
// through a literal (defer func() { mu.Unlock() }()). Calls whose
// callee has a known net lock effect contribute that effect at the call
// site through resolve.
func nodeLockOps(info *types.Info, n ast.Node, resolve opResolver) []lockOp {
	var out []lockOp
	var walk func(n ast.Node, deferred bool)
	walk = func(n ast.Node, deferred bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.DeferStmt:
				if lit, ok := ast.Unparen(m.Call.Fun).(*ast.FuncLit); ok {
					walk(lit.Body, true)
				} else {
					walk(m.Call, true)
				}
				return false
			case *ast.FuncLit:
				if m != n {
					return false
				}
			case *ast.GoStmt:
				return false
			case *ast.CallExpr:
				if op, ok := mutexOp(info, m); ok {
					op.deferred = deferred
					out = append(out, op)
				} else if resolve != nil {
					for _, op := range resolve(m) {
						op.deferred = deferred
						out = append(out, op)
					}
				}
			}
			return true
		})
	}
	if ds, ok := n.(*ast.DeferStmt); ok {
		if lit, ok := ast.Unparen(ds.Call.Fun).(*ast.FuncLit); ok {
			walk(lit.Body, true)
		} else {
			walk(ds.Call, true)
		}
		return out
	}
	walk(n, false)
	return out
}

// lockFact maps lock keys to hold depth, capped at maxLockDepth so a
// Lock in a loop cannot grow the fact without bound (the cap is the
// widening that makes the fixpoint terminate; the analyzers only
// distinguish 0, 1, and "more"). Keys prefixed "~" count the deferred
// unlocks registered so far (they discharge held locks at function
// exit). A nil fact is the top element: no path reaches the point yet.
type lockFact map[string]int

const maxLockDepth = 2

// lockApply folds op into the fact in place.
func lockApply(f lockFact, op lockOp) {
	switch {
	case op.deferred && !op.lock:
		if f["~"+op.key] < maxLockDepth {
			f["~"+op.key]++
		}
	case op.deferred:
		// defer mu.Lock() — pathological; the defer-in-loop check in
		// lockbalance is the only consumer that cares.
	case op.lock:
		if f[op.key] < maxLockDepth {
			f[op.key]++
		}
	default:
		switch d := f[op.key]; {
		case d == 1:
			delete(f, op.key) // keep facts free of zero entries
		case d > 1:
			f[op.key]--
		}
	}
}

// lockProblem is the forward held-locks dataflow over one function body.
// With must=false the join is a per-key maximum ("held on some path" —
// what lockbalance needs to find leaks and double-locks); with must=true
// it is a per-key minimum over paths ("held on every path" — what a
// guard proof needs before trusting a write).
func lockProblem(info *types.Info, must bool, resolve opResolver) dataflow.Problem[lockFact] {
	join := func(a, b lockFact) lockFact {
		if a == nil {
			return b
		}
		if b == nil {
			return a
		}
		if !must {
			out := maps.Clone(a)
			for k, v := range b {
				if v > out[k] {
					out[k] = v
				}
			}
			return out
		}
		out := lockFact{}
		for k, v := range a {
			if bv, ok := b[k]; ok {
				if bv < v {
					v = bv
				}
				if v > 0 {
					out[k] = v
				}
			}
		}
		return out
	}
	return dataflow.Problem[lockFact]{
		Dir:      dataflow.Forward,
		Boundary: func() lockFact { return lockFact{} },
		Init:     func() lockFact { return nil }, // top: no path seen yet
		Join:     join,
		Transfer: func(blk *cfg.Block, in lockFact) lockFact {
			if in == nil {
				return nil // unreachable blocks stay at top
			}
			out := maps.Clone(in)
			for _, n := range blk.Nodes {
				for _, op := range nodeLockOps(info, n, resolve) {
					lockApply(out, op)
				}
			}
			return out
		},
		Equal: func(a, b lockFact) bool {
			if (a == nil) != (b == nil) {
				return false
			}
			return maps.Equal(a, b)
		},
	}
}

// heldLocksAt solves the must-held lock dataflow over body and returns a
// predicate reporting whether some lock is held on every path reaching a
// position. The predicate replays the containing block's operations up
// to pos, so it is exact within a block, not just at block boundaries.
func heldLocksAt(info *types.Info, body *ast.BlockStmt, resolve opResolver) func(pos token.Pos) bool {
	factAt := lockFactAt(info, body, true, resolve)
	return func(pos token.Pos) bool {
		for k, v := range factAt(pos) {
			if v > 0 && k[0] != '~' {
				return true
			}
		}
		return false
	}
}

// lockFactAt solves the held-locks dataflow (must or may) over body and
// returns the fact at any position, replaying the containing block's
// operations up to it so the answer is exact within a block. A nil fact
// means the position is unreachable.
func lockFactAt(info *types.Info, body *ast.BlockStmt, must bool, resolve opResolver) func(pos token.Pos) lockFact {
	g := cfg.New(body)
	res := dataflow.Solve(g, lockProblem(info, must, resolve))
	return func(pos token.Pos) lockFact {
		blk := g.BlockOf(pos)
		if blk == nil || res.In[blk] == nil {
			return nil
		}
		f := maps.Clone(res.In[blk])
		for _, n := range blk.Nodes {
			if n.Pos() <= pos && pos <= n.End() {
				// Apply only the ops preceding pos inside this node.
				for _, op := range nodeLockOps(info, n, resolve) {
					if op.pos < pos {
						lockApply(f, op)
					}
				}
				break
			}
			for _, op := range nodeLockOps(info, n, resolve) {
				lockApply(f, op)
			}
		}
		return f
	}
}

// lockResolver builds the opResolver for one function body from the
// interprocedural effect summaries: at every resolved, synchronous call
// site, the callee's net lock deltas are substituted into the caller's
// terms and rendered against the caller's receiver/parameter names so
// they compose with the intraprocedural keys. Returns nil when the
// interprocedural layer is absent (facts construction, corpus loads
// without a graph) or the body has no node.
func (p *Pass) lockResolver(body *ast.BlockStmt) opResolver {
	if p.Summaries == nil {
		return nil
	}
	g := p.Summaries.Graph()
	node := g.ByBody(body)
	if node == nil {
		return nil
	}
	own, names := ownParamNames(node)
	return func(call *ast.CallExpr) []lockOp {
		e := g.EdgeAt(call)
		if e == nil || e.Kind == callgraph.Go {
			return nil
		}
		var ops []lockOp
		for _, d := range p.Summaries.Of(e.Callee).NetHeld {
			k, ok := summary.SubstituteKey(p.Info, own, call, d.Key)
			if !ok {
				continue
			}
			key, ok := renderLockKey(k, names)
			if !ok {
				continue
			}
			if d.Read {
				key += "#r"
			}
			n, lock := d.Delta, true
			if n < 0 {
				n, lock = -n, false
			}
			for i := 0; i < n; i++ {
				ops = append(ops, lockOp{key: key, lock: lock, read: d.Read, pos: call.Pos()})
			}
		}
		return ops
	}
}

// ownParamNames returns a node's receiver/parameter index map alongside
// the inverse index→name map the key renderer consumes.
func ownParamNames(node *callgraph.Node) (map[*types.Var]int, map[int]string) {
	own := summary.OwnParams(node)
	names := make(map[int]string, len(own))
	// lint:checked index rebuild of a bijection; iteration order cannot change the result
	for v, idx := range own {
		names[idx] = v.Name()
	}
	return own, names
}

// renderLockKey renders a summary key against a caller's parameter
// names, producing the same string the intraprocedural exprKey renderer
// would for the equivalent source expression. Global keys use the
// variable's declared name, which matches same-package usage only —
// cross-package global-mutex helpers are a documented blind spot.
func renderLockKey(k summary.Key, names map[int]string) (string, bool) {
	if k.Param == summary.GlobalParam {
		return k.Path, true
	}
	base, ok := names[k.Param]
	if !ok || base == "" || base == "_" {
		return "", false
	}
	if k.Path == "" {
		return base, true
	}
	return base + "." + k.Path, true
}

// funcBodies visits every function body of the files — named declarations
// and every function literal (lit=true) — so flow-sensitive analyzers see
// each body as its own unit of control flow.
func funcBodies(files []*ast.File, fn func(body *ast.BlockStmt, lit bool)) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					fn(n.Body, false)
				}
			case *ast.FuncLit:
				fn(n.Body, true)
			}
			return true
		})
	}
}
