package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `range` over a map whose body performs order-sensitive
// work: appending to a slice, writing through an index not derived from
// the range key, accumulating floats, or feeding fmt/encoding output. Map
// iteration order is randomized per run, so any of these leaks
// nondeterminism straight into k-NN candidate lists, CSR construction, or
// results files — the corpus-level artifacts GraphNER's evaluation diffs
// bit-for-bit.
//
// The accepted fix is to materialize and sort the keys first; a sort.* or
// slices.Sort* call after the range in the same function is recognized as
// the "collect then sort" idiom and silences the finding. Writes keyed by
// the range key itself (set[k] = v, counters) are order-independent and
// never flagged.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "map iteration must not feed ordered output without a sort",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) error {
	walkFuncs(pass.Files, func(fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				return true
			}
			if kind := orderedSideEffect(pass.Info, rs); kind != "" {
				if !sortFollows(pass.Info, fd.Body, rs.End()) {
					pass.Report(rs.Pos(), "map iteration order leaks into %s; sort the keys first (or sort the result before use)", kind)
				}
			}
			return true
		})
	})
	return nil
}

// orderedSideEffect classifies the first order-sensitive operation in the
// body of a map range, or returns "".
func orderedSideEffect(info *types.Info, rs *ast.RangeStmt) string {
	keyVars := rangeVars(info, rs)
	kind := ""
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if kind != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					// append into a slot indexed by exactly the range key
					// (m2[k] = append(m2[k], x)) is per-key and safe; any
					// other append accumulates in iteration order.
					if !appendKeyedByExactKey(info, n, keyVars) {
						kind = "a slice append"
					}
					return true
				}
			}
			if isOutputCall(info, n) {
				kind = "formatted or encoded output"
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if localToBody(info, ix.X, rs.Body) {
						continue // per-iteration buffer: order cannot be observed
					}
					if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
						if !isExactKeyIndex(info, ix.Index, keyVars) {
							kind = "an indexed write whose index is not the range key"
						}
					} else if isFloat(info.TypeOf(ix)) {
						kind = "a floating-point accumulation (rounding depends on order)"
					}
				} else if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
					if isFloat(info.TypeOf(lhs)) && !localToBody(info, lhs, rs.Body) {
						kind = "a floating-point accumulation (rounding depends on order)"
					}
				}
			}
		}
		return true
	})
	return kind
}

// rangeVars collects the key variable of a range statement — only the
// key is guaranteed distinct per iteration (values may repeat, so a
// value-indexed write still collides).
func rangeVars(info *types.Info, rs *ast.RangeStmt) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	if id, ok := rs.Key.(*ast.Ident); ok {
		if v, ok := info.Defs[id].(*types.Var); ok {
			out[v] = true
		} else if v, ok := info.Uses[id].(*types.Var); ok {
			out[v] = true
		}
	}
	return out
}

// isExactKeyIndex reports whether the index expression is exactly one of
// the range variables. Only the unmodified key is guaranteed distinct per
// iteration; a derived index (k.a, f(k), a value variable) can collide
// across iterations, making last-writer-wins or append order observable.
func isExactKeyIndex(info *types.Info, index ast.Expr, vars map[*types.Var]bool) bool {
	id, ok := ast.Unparen(index).(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok {
		if v, ok = info.Defs[id].(*types.Var); !ok {
			return false
		}
	}
	return vars[v]
}

// localToBody reports whether e is an identifier whose variable is
// declared inside body. A write into a per-iteration local (a fresh
// buffer or accumulator made each pass) is order-free by construction.
func localToBody(info *types.Info, e ast.Expr, body *ast.BlockStmt) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	v := localVarOf(info, id)
	return v != nil && v.Pos() >= body.Pos() && v.Pos() <= body.End()
}

// appendKeyedByExactKey reports whether the append call grows a map slot
// indexed by exactly the range key (m2[k] = append(m2[k], ...)).
func appendKeyedByExactKey(info *types.Info, call *ast.CallExpr, vars map[*types.Var]bool) bool {
	if len(call.Args) == 0 {
		return false
	}
	ix, ok := ast.Unparen(call.Args[0]).(*ast.IndexExpr)
	if !ok {
		return false
	}
	if _, isMap := info.TypeOf(ix.X).Underlying().(*types.Map); !isMap {
		return false
	}
	return isExactKeyIndex(info, ix.Index, vars)
}

// outputNames are method names whose invocation inside a map range means
// iteration order reaches bytes.
var outputNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Encode": true, "EncodeElement": true, "Marshal": true,
}

// isOutputCall reports whether the call writes formatted or encoded bytes
// (fmt package functions or Write*/Encode methods).
func isOutputCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if !outputNames[sel.Sel.Name] {
		return false
	}
	// Either a package-qualified fmt call or a method on a writer/encoder.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pkg, ok := info.Uses[id].(*types.PkgName); ok {
			p := pkg.Imported().Path()
			return p == "fmt" || p == "encoding/json" || p == "encoding/gob" || p == "encoding/xml"
		}
	}
	return info.Selections[sel] != nil // method call: Write/Encode on some value
}

// sortFollows reports whether a sort.* / slices.Sort* call appears after
// pos inside body — the collect-then-sort idiom.
func sortFollows(info *types.Info, body ast.Node, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if pkg, ok := info.Uses[id].(*types.PkgName); ok {
				p := pkg.Imported().Path()
				if p == "sort" || p == "slices" {
					found = true
				}
			}
		}
		return true
	})
	return found
}
