package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolEscape flags lifetime violations of sync.Pool-derived values — the
// bug class PR 1's pooled CRF lattices and compile scratch made possible.
// A value obtained from a pool (directly via Get, or through a source
// helper like crf.acquireScratch) must not be:
//
//   - used in any way after the corresponding Put/release call,
//   - stored into a struct field, composite literal, or package-level
//     variable (the store outlives the pool ownership window), or
//   - captured by a goroutine when the enclosing function releases it
//     (the goroutine may run after the Put).
//
// Returning a pooled value is the provider pattern, not a violation: the
// returning function becomes a pool source itself (see Facts) and its
// callers inherit the obligations.
var PoolEscape = &Analyzer{
	Name: "poolescape",
	Doc:  "pooled values must not escape or be used after Put",
	Run:  runPoolEscape,
}

func runPoolEscape(pass *Pass) error {
	walkFuncs(pass.Files, func(fd *ast.FuncDecl) {
		checkPoolEscape(pass, fd)
	})
	return nil
}

func checkPoolEscape(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Info
	pooled := pass.Facts.pooledLocals(info, fd.Body)
	// Parameters of releaser functions are themselves pool-owned values:
	// the body of latticeScratch.release handles a pooled receiver.
	if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
		if params := pass.Facts.ReleasedParams(obj); params != nil {
			for v, idx := range ownParams(info, fd) {
				if params[idx] {
					pooled[v] = true
				}
			}
		}
	}
	if len(pooled) == 0 {
		return
	}

	// Aliases (alias := sc) form one ownership class: releasing any member
	// releases them all, so release tracking is keyed by representative.
	reps := aliasClasses(info, fd.Body, pooled)

	releases := pass.Facts.releaseCalls(info, fd.Body)
	// firstRelease[rep] is the end of the earliest non-deferred release of
	// any alias in the class.
	firstRelease := make(map[*types.Var]token.Pos)
	anyRelease := make(map[*types.Var][]release)
	for _, r := range releases {
		v, ok := info.Uses[r.ident].(*types.Var)
		if !ok || !pooled[v] {
			continue
		}
		rep := reps[v]
		anyRelease[rep] = append(anyRelease[rep], r)
		if r.deferred {
			continue
		}
		if p, ok := firstRelease[rep]; !ok || r.call.End() < p {
			firstRelease[rep] = r.call.End()
		}
	}

	// Use after release: any mention of v past the earliest unconditional
	// release point (source order; loops that re-acquire are on the
	// annotation escape hatch).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || !pooled[v] {
			return true
		}
		if end, ok := firstRelease[reps[v]]; ok && id.Pos() > end {
			pass.Report(id.Pos(), "%s is used after being returned to its sync.Pool", id.Name)
		}
		return true
	})

	// Escaping stores: struct fields, composite literals, package-level
	// variables.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				id, ok := unwrap(rhs).(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := info.Uses[id].(*types.Var)
				if !ok || !pooled[v] {
					continue
				}
				if i >= len(n.Lhs) {
					continue
				}
				switch lhs := ast.Unparen(n.Lhs[i]).(type) {
				case *ast.SelectorExpr:
					pass.Report(id.Pos(), "pooled value %s stored in a struct field outlives its pool ownership", id.Name)
				case *ast.Ident:
					if lv, ok := info.Uses[lhs].(*types.Var); ok && lv.Parent() == lv.Pkg().Scope() {
						pass.Report(id.Pos(), "pooled value %s stored in package-level variable %s", id.Name, lhs.Name)
					}
				case *ast.IndexExpr:
					pass.Report(id.Pos(), "pooled value %s stored in an indexed container outlives its pool ownership", id.Name)
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				val := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if id, ok := unwrap(val).(*ast.Ident); ok {
					if v, ok := info.Uses[id].(*types.Var); ok && pooled[v] {
						pass.Report(id.Pos(), "pooled value %s stored in a composite literal outlives its pool ownership", id.Name)
					}
				}
			}
		}
		return true
	})

	// Goroutine capture: a go statement mentioning v while the function
	// also releases v (anywhere, deferred included) races the Put.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		ast.Inspect(g, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := info.Uses[id].(*types.Var)
			if !ok || !pooled[v] {
				return true
			}
			for _, r := range anyRelease[reps[v]] {
				if r.call.Pos() < g.Pos() || r.call.Pos() > g.End() {
					pass.Report(id.Pos(), "pooled value %s captured by a goroutine may be used after Put", id.Name)
					return false
				}
			}
			return true
		})
		return true
	})
}

// aliasClasses unions pooled locals connected by direct assignment
// (alias := sc) and maps every member to a canonical representative.
func aliasClasses(info *types.Info, body ast.Node, pooled map[*types.Var]bool) map[*types.Var]*types.Var {
	parent := make(map[*types.Var]*types.Var, len(pooled))
	for v := range pooled {
		parent[v] = v
	}
	var find func(v *types.Var) *types.Var
	find = func(v *types.Var) *types.Var {
		for parent[v] != v {
			parent[v] = parent[parent[v]]
			v = parent[v]
		}
		return v
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Rhs {
			lid, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			rid, ok := unwrap(as.Rhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			lv, rv := localVarOf(info, lid), localVarOf(info, rid)
			if lv == nil || rv == nil || !pooled[lv] || !pooled[rv] {
				continue
			}
			parent[find(lv)] = find(rv)
		}
		return true
	})
	out := make(map[*types.Var]*types.Var, len(parent))
	for v := range parent {
		out[v] = find(v)
	}
	return out
}
