package cfg

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

// goldenSrc is the golden corpus: each function exercises one control
// construct; the expected CFG (Format output) is in goldens below.
const goldenSrc = `package p

func seq() {
	x := 1
	x++
	_ = x
}

func ifElse(c bool) int {
	if c {
		return 1
	} else {
		c = false
	}
	return 0
}

func forLoop(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}

func infinite() {
	for {
		step()
	}
}

func rangeLoop(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

func labeledBreakContinue(xs [][]int) int {
	s := 0
outer:
	for _, row := range xs {
		for _, x := range row {
			if x < 0 {
				continue outer
			}
			if x == 0 {
				break outer
			}
			s += x
		}
	}
	return s
}

func switchFallthrough(x int) string {
	switch x {
	case 0:
		fallthrough
	case 1:
		return "small"
	default:
		return "big"
	}
}

func selectStmt(a, b chan int, done chan struct{}) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	case <-done:
	}
	return 0
}

func deferredPanic(bad bool) {
	defer cleanup()
	if bad {
		panic("bad")
	}
	step()
}

func gotoRetry() {
	n := 0
retry:
	n++
	if n < 3 {
		goto retry
	}
}

func deferInLoop(xs []int) {
	for _, x := range xs {
		_ = x
		defer cleanup()
	}
}

func gotoIntoBlock(n int) int {
	if n > 0 {
		goto inner
	}
	n = -n
inner:
	{
		n++
	}
	return n
}

func gotoOutOfBlock(xs []int) int {
	s := 0
loop:
	for _, x := range xs {
		if x < 0 {
			goto done
		}
		if x == 0 {
			continue loop
		}
		s += x
	}
done:
	return s
}

func step()    {}
func cleanup() {}
`

// goldens maps function name to the expected Format rendering.
var goldens = map[string]string{
	"seq": `b0 entry: {x := 1} {x++} {_ = x} => b1
b1 exit:
`,

	"ifElse": `b0 entry: {c} => b1 b3
b1 if.then: {return 1} => b4
b2 if.done: {return 0} => b4
b3 if.else: {c = false} => b2
b4 exit:
`,

	"forLoop": `b0 entry: {s := 0} {i := 0} => b1
b1 for.head: {i < n} => b2 b3
b2 for.body: {s += i} => b4
b3 for.done: {return s} => b5
b4 for.post: {i++} => b1
b5 exit:
`,

	"infinite": `b0 entry: => b1
b1 for.head: => b2
b2 for.body: {step()} => b1
b3 for.done: => b4
b4 exit:
`,

	"rangeLoop": `b0 entry: {s := 0} => b1
b1 range.head: {xs} => b2 b3
b2 range.body: {s += x} => b1
b3 range.done: {return s} => b4
b4 exit:
`,

	"labeledBreakContinue": `b0 entry: {s := 0} => b1
b1 label.outer: => b2
b2 range.head: {xs} => b3 b4
b3 range.body: => b5
b4 range.done: {return s} => b12
b5 range.head: {row} => b6 b7
b6 range.body: {x < 0} => b8 b9
b7 range.done: => b2
b8 if.then: {continue outer} => b2
b9 if.done: {x == 0} => b10 b11
b10 if.then: {break outer} => b4
b11 if.done: {s += x} => b5
b12 exit:
`,

	"switchFallthrough": `b0 entry: {x} => b2 b3 b4
b1 switch.done: => b5
b2 switch.case: {0} {fallthrough} => b3
b3 switch.case: {1} {return "small"} => b5
b4 switch.default: {return "big"} => b5
b5 exit:
`,

	"selectStmt": `b0 entry: => b2 b3 b4
b1 select.done: {return 0} => b5
b2 select.case: {v := <-a} {return v} => b5
b3 select.case: {v := <-b} {return v} => b5
b4 select.case: {<-done} => b1
b5 exit:
`,

	"deferredPanic": `b0 entry: {defer cleanup()} {bad} => b1 b2
b1 if.then: {panic("bad")} => b3
b2 if.done: {step()} => b3
b3 exit:
`,

	"gotoRetry": `b0 entry: {n := 0} => b1
b1 label.retry: {n++} {n < 3} => b2 b3
b2 if.then: {goto retry} => b1
b3 if.done: => b4
b4 exit:
`,

	// A defer in a loop body is a straight-line statement of the body
	// block — it does NOT edge anywhere, which is exactly why deferred
	// obligations registered per iteration come due only at exit (the
	// summary layer and lockbalance's defer-in-loop check rely on this).
	"deferInLoop": `b0 entry: => b1
b1 range.head: {xs} => b2 b3
b2 range.body: {_ = x} {defer cleanup()} => b1
b3 range.done: => b4
b4 exit:
`,

	// goto forward INTO a labeled block: both the branch and the
	// fall-through path converge on the label block.
	"gotoIntoBlock": `b0 entry: {n > 0} => b1 b2
b1 if.then: {goto inner} => b3
b2 if.done: {n = -n} => b3
b3 label.inner: {n++} {return n} => b4
b4 exit:
`,

	// goto OUT of a labeled loop body: the goto edges straight to the
	// label block past range.done; continue with the loop's own label
	// still targets the range head.
	"gotoOutOfBlock": `b0 entry: {s := 0} => b1
b1 label.loop: => b2
b2 range.head: {xs} => b3 b4
b3 range.body: {x < 0} => b5 b6
b4 range.done: => b7
b5 if.then: {goto done} => b7
b6 if.done: {x == 0} => b8 b9
b7 label.done: {return s} => b10
b8 if.then: {continue loop} => b2
b9 if.done: {s += x} => b2
b10 exit:
`,
}

func parseFuncs(t *testing.T, src string) (*token.FileSet, map[string]*ast.FuncDecl) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	decls := make(map[string]*ast.FuncDecl)
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			decls[fd.Name.Name] = fd
		}
	}
	return fset, decls
}

func TestGolden(t *testing.T) {
	fset, decls := parseFuncs(t, goldenSrc)
	for name, want := range goldens {
		fd, ok := decls[name]
		if !ok {
			t.Errorf("golden %s: no such function in corpus", name)
			continue
		}
		got := New(fd.Body).Format(fset)
		if got != want {
			t.Errorf("%s: CFG mismatch\ngot:\n%s\nwant:\n%s", name, got, want)
		}
	}
	for name := range decls {
		if _, ok := goldens[name]; !ok && name != "step" && name != "cleanup" {
			t.Errorf("function %s has no golden", name)
		}
	}
}

// TestEveryStmtInOneBlock is the property test: every leaf statement of
// a function body — reachable or not — must appear in exactly one block
// of its CFG. The corpus is the golden source plus every function
// (declarations and literals) in the analyzer testdata corpora, which
// are rich in real-world control flow.
func TestEveryStmtInOneBlock(t *testing.T) {
	fset, decls := parseFuncs(t, goldenSrc)
	for name, fd := range decls {
		checkStmtCoverage(t, fset, name, fd.Body)
	}

	root := filepath.Join("..", "testdata", "src")
	dirs, err := os.ReadDir(root)
	if err != nil {
		t.Fatalf("ReadDir(%s): %v", root, err)
	}
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		files, err := filepath.Glob(filepath.Join(root, d.Name(), "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		for _, file := range files {
			fs := token.NewFileSet()
			f, err := parser.ParseFile(fs, file, nil, 0)
			if err != nil {
				t.Fatalf("parse %s: %v", file, err)
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body != nil {
						checkStmtCoverage(t, fs, file+":"+n.Name.Name, n.Body)
					}
				case *ast.FuncLit:
					pos := fs.Position(n.Pos())
					checkStmtCoverage(t, fs, fmt.Sprintf("%s:lit@%d", file, pos.Line), n.Body)
				}
				return true
			})
		}
	}
}

func checkStmtCoverage(t *testing.T, fset *token.FileSet, name string, body *ast.BlockStmt) {
	t.Helper()
	g := New(body)
	count := make(map[ast.Stmt]int)
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if s, ok := n.(ast.Stmt); ok {
				count[s]++
			}
		}
	}
	for _, s := range leafStmts(body) {
		switch count[s] {
		case 1:
		case 0:
			t.Errorf("%s: statement at %s missing from every CFG block", name, fset.Position(s.Pos()))
		default:
			t.Errorf("%s: statement at %s appears in %d blocks", name, fset.Position(s.Pos()), count[s])
		}
	}
}

// leafStmts mirrors the builder's classification: structured statements
// are decomposed, everything else (including header init/post statements
// and select comm statements) must land in a block. Function literal
// bodies belong to their own graphs and are excluded.
func leafStmts(body *ast.BlockStmt) []ast.Stmt {
	var out []ast.Stmt
	var walk func(s ast.Stmt)
	walkList := func(list []ast.Stmt) {
		for _, s := range list {
			walk(s)
		}
	}
	walk = func(s ast.Stmt) {
		switch s := s.(type) {
		case nil:
		case *ast.BlockStmt:
			walkList(s.List)
		case *ast.LabeledStmt:
			walk(s.Stmt)
		case *ast.IfStmt:
			walk(s.Init)
			walkList(s.Body.List)
			walk(s.Else)
		case *ast.ForStmt:
			walk(s.Init)
			walk(s.Post)
			walkList(s.Body.List)
		case *ast.RangeStmt:
			walkList(s.Body.List)
		case *ast.SwitchStmt:
			walk(s.Init)
			for _, c := range s.Body.List {
				walkList(c.(*ast.CaseClause).Body)
			}
		case *ast.TypeSwitchStmt:
			walk(s.Init)
			walk(s.Assign)
			for _, c := range s.Body.List {
				walkList(c.(*ast.CaseClause).Body)
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				cc := c.(*ast.CommClause)
				walk(cc.Comm)
				walkList(cc.Body)
			}
		case *ast.EmptyStmt:
		default:
			out = append(out, s)
		}
	}
	walkList(body.List)
	return out
}

// TestExitReachability: in every golden function that returns, the exit
// block has at least one predecessor, and no block ever edges to the
// entry.
func TestExitReachability(t *testing.T) {
	_, decls := parseFuncs(t, goldenSrc)
	for name, fd := range decls {
		g := New(fd.Body)
		if name != "infinite" && len(g.Exit.Preds) == 0 {
			t.Errorf("%s: exit block unreachable", name)
		}
		if len(g.Entry.Preds) != 0 {
			t.Errorf("%s: entry block has predecessors", name)
		}
	}
}
