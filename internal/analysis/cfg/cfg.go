// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies — the substrate the flow-sensitive analyzers
// (lockbalance, sharedwrite, waitgroupbalance) and the dataflow solver
// stand on. It is standard library only, in the spirit of
// golang.org/x/tools/go/cfg but scoped to what this repository needs.
//
// A Graph has one Entry block, one virtual Exit block, and a set of
// basic blocks holding the function's statements in execution order.
// Structured statements (if/for/range/switch/select) are decomposed:
// their header statements and condition expressions land in blocks, and
// their bodies become successor blocks. Every leaf statement — including
// unreachable ones — appears in exactly one block, so analyses can map
// positions back to blocks.
//
// Edges modelled: if/else, for (init/cond/post), range, switch and type
// switch (fallthrough included), select, labeled break/continue, goto,
// return, and panic. return and panic(...) edge to Exit: a panic unwinds
// through the function's deferred calls, so for defer-aware analyses the
// Exit block is where deferred obligations (Unlock, Done) come due.
// Function literals are opaque: the statement containing a FuncLit is a
// single node, and the literal's body is never traversed — each literal
// gets its own Graph from its own New call.
package cfg

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// Block is one basic block: a straight-line run of nodes with a single
// entry at the top. Nodes holds statements (and condition expressions)
// in execution order.
type Block struct {
	Index int
	// Kind labels why the block exists ("entry", "if.then", "for.body",
	// "exit", ...) for golden tests and debugging.
	Kind  string
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// Graph is the CFG of one function body.
type Graph struct {
	// Blocks lists every block in creation order. Blocks[0] is Entry;
	// Exit is also in the list.
	Blocks []*Block
	Entry  *Block
	Exit   *Block
}

// New builds the CFG of body. The builder never descends into function
// literals; call New on each literal's body separately.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{
		g:      &Graph{},
		labels: make(map[string]*Block),
	}
	b.g.Entry = b.newBlock("entry")
	b.g.Exit = &Block{Kind: "exit"}
	b.cur = b.g.Entry
	b.stmtList(body.List)
	b.edge(b.g.Exit) // falling off the end is an implicit return
	b.g.Exit.Index = len(b.g.Blocks)
	b.g.Blocks = append(b.g.Blocks, b.g.Exit)
	return b.g
}

// frame is one enclosing breakable/continuable statement.
type frame struct {
	label string // the statement's label, "" if none
	brk   *Block // break target
	cont  *Block // continue target; nil for switch/select
}

type builder struct {
	g      *Graph
	cur    *Block // nil after a terminator until the next block starts
	labels map[string]*Block
	frames []frame
	// fallTarget is the next case block while building a switch clause.
	fallTarget *Block
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// edge links the current block (if any) to dst.
func (b *builder) edge(dst *Block) {
	if b.cur == nil {
		return
	}
	b.cur.Succs = append(b.cur.Succs, dst)
	dst.Preds = append(dst.Preds, b.cur)
}

func (b *builder) start(blk *Block) { b.cur = blk }

// add appends n to the current block, opening an unreachable block if a
// terminator just closed the flow (dead code still gets a home so every
// statement lives in exactly one block).
func (b *builder) add(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// labelBlock returns (creating on first use, so forward gotos work) the
// block a label names.
func (b *builder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock("label." + name)
	b.labels[name] = blk
	return blk
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

func (b *builder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.edge(lb)
		b.start(lb)
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		b.add(s.Init)
		b.add(s.Cond)
		then := b.newBlock("if.then")
		done := b.newBlock("if.done")
		els := done
		if s.Else != nil {
			els = b.newBlock("if.else")
		}
		b.edge(then)
		b.edge(els)
		b.start(then)
		b.stmtList(s.Body.List)
		b.edge(done)
		if s.Else != nil {
			b.start(els)
			b.stmt(s.Else, "")
			b.edge(done)
		}
		b.start(done)

	case *ast.ForStmt:
		b.add(s.Init)
		head := b.newBlock("for.head")
		body := b.newBlock("for.body")
		done := b.newBlock("for.done")
		post := head
		if s.Post != nil {
			post = b.newBlock("for.post")
		}
		b.edge(head)
		b.start(head)
		if s.Cond != nil {
			b.add(s.Cond)
			b.edge(body)
			b.edge(done)
		} else {
			b.edge(body)
		}
		b.frames = append(b.frames, frame{label: label, brk: done, cont: post})
		b.start(body)
		b.stmtList(s.Body.List)
		b.frames = b.frames[:len(b.frames)-1]
		b.edge(post)
		if s.Post != nil {
			b.start(post)
			b.add(s.Post)
			b.edge(head)
		}
		b.start(done)

	case *ast.RangeStmt:
		head := b.newBlock("range.head")
		body := b.newBlock("range.body")
		done := b.newBlock("range.done")
		b.edge(head)
		b.start(head)
		b.add(s.X) // the ranged expression, evaluated at the loop head
		b.edge(body)
		b.edge(done)
		b.frames = append(b.frames, frame{label: label, brk: done, cont: head})
		b.start(body)
		b.stmtList(s.Body.List)
		b.frames = b.frames[:len(b.frames)-1]
		b.edge(head)
		b.start(done)

	case *ast.SwitchStmt:
		b.add(s.Init)
		b.add(s.Tag)
		b.switchClauses(s.Body.List, label, func(cc *ast.CaseClause, blk *Block) {
			for _, e := range cc.List {
				b.add(e)
			}
		})

	case *ast.TypeSwitchStmt:
		b.add(s.Init)
		b.add(s.Assign)
		b.switchClauses(s.Body.List, label, nil)

	case *ast.SelectStmt:
		done := b.newBlock("select.done")
		head := b.cur
		b.frames = append(b.frames, frame{label: label, brk: done})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			kind := "select.case"
			if cc.Comm == nil {
				kind = "select.default"
			}
			blk := b.newBlock(kind)
			if head != nil {
				head.Succs = append(head.Succs, blk)
				blk.Preds = append(blk.Preds, head)
			}
			b.start(blk)
			b.add(cc.Comm)
			b.stmtList(cc.Body)
			b.edge(done)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = nil // an empty select blocks forever
		b.start(done)

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			if t := b.findFrame(s.Label, false); t != nil {
				b.edge(t)
			}
		case token.CONTINUE:
			if t := b.findFrame(s.Label, true); t != nil {
				b.edge(t)
			}
		case token.GOTO:
			b.edge(b.labelBlock(s.Label.Name))
		case token.FALLTHROUGH:
			if b.fallTarget != nil {
				b.edge(b.fallTarget)
			}
		}
		b.cur = nil

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.g.Exit)
		b.cur = nil

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.edge(b.g.Exit)
			b.cur = nil
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// Assign, IncDec, Decl, Send, Defer, Go: straight-line.
		b.add(s)
	}
}

// switchClauses builds the case blocks of a (type) switch: the head
// edges to every case block (and to done when no default exists), each
// clause body edges to done, and fallthrough edges to the next clause.
func (b *builder) switchClauses(clauses []ast.Stmt, label string, caseExprs func(*ast.CaseClause, *Block)) {
	done := b.newBlock("switch.done")
	head := b.cur
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		kind := "switch.case"
		if cc.List == nil {
			kind = "switch.default"
			hasDefault = true
		}
		blocks[i] = b.newBlock(kind)
		if head != nil {
			head.Succs = append(head.Succs, blocks[i])
			blocks[i].Preds = append(blocks[i].Preds, head)
		}
	}
	if !hasDefault && head != nil {
		head.Succs = append(head.Succs, done)
		done.Preds = append(done.Preds, head)
	}
	b.frames = append(b.frames, frame{label: label, brk: done})
	savedFall := b.fallTarget
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		b.fallTarget = nil
		if i+1 < len(blocks) {
			b.fallTarget = blocks[i+1]
		}
		b.start(blocks[i])
		if caseExprs != nil {
			caseExprs(cc, blocks[i])
		}
		b.stmtList(cc.Body)
		b.edge(done)
	}
	b.fallTarget = savedFall
	b.frames = b.frames[:len(b.frames)-1]
	b.start(done)
}

// findFrame resolves a break (wantCont=false) or continue (true) target.
func (b *builder) findFrame(label *ast.Ident, wantCont bool) *Block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if label != nil && f.label != label.Name {
			continue
		}
		if wantCont {
			if f.cont != nil {
				return f.cont
			}
			continue // continue skips switch/select frames
		}
		return f.brk
	}
	return nil
}

// isPanicCall reports whether e is a call to the builtin panic.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// BlockOf returns the block whose nodes span pos, or nil. Statements are
// disjoint, so at most one block claims a position.
func (g *Graph) BlockOf(pos token.Pos) *Block {
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if n.Pos() <= pos && pos <= n.End() {
				return blk
			}
		}
	}
	return nil
}

// String renders the structure (no source text): one line per block with
// kind, node count, and successor indices.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "b%d %s [%d]", blk.Index, blk.Kind, len(blk.Nodes))
		for _, s := range blk.Succs {
			fmt.Fprintf(&sb, " ->b%d", s.Index)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Format renders the graph with each node's source text (via fset) —
// the representation the golden tests assert on.
func (g *Graph) Format(fset *token.FileSet) string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "b%d %s:", blk.Index, blk.Kind)
		for _, n := range blk.Nodes {
			sb.WriteString(" {")
			sb.WriteString(nodeText(fset, n))
			sb.WriteString("}")
		}
		if len(blk.Succs) > 0 {
			sb.WriteString(" =>")
			for _, s := range blk.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// nodeText prints n as single-line source text.
func nodeText(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	fields := strings.Fields(buf.String())
	return strings.Join(fields, " ")
}
