package analysis

import (
	"go/ast"

	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/summary"
)

// LockAtCall flags synchronous calls made while a mutex is (possibly)
// held when the callee's effect summary says it may acquire the same
// mutex. Go's sync.Mutex and sync.RWMutex are not reentrant, so the
// shape
//
//	s.mu.Lock()
//	defer s.mu.Unlock()
//	s.helper()        // helper locks s.mu internally
//
// deadlocks the calling goroutine — and no intraprocedural check can see
// it, because both bodies are individually perfectly balanced. The
// analyzer intersects the caller's may-held lock set at each resolved
// call site (the same dataflow lockbalance solves, callee net effects
// included) with the callee's MayAcquire summary, substituted into the
// caller's terms.
//
// Conflict rules: a callee write-acquire conflicts with any held
// acquisition of the same mutex (write-write recurses, read-write blocks
// behind the caller's own read hold); a callee read-acquire conflicts
// with a held write lock. Read-read is admitted — RLock is shared — even
// though a writer arriving between the two acquisitions can still wedge
// it; that pattern is pervasive and legitimate enough that reporting it
// would bury the real findings.
//
// The held set is a may-analysis and the summary is control-blind inside
// the callee, so a callee that only locks on branches the caller
// excludes is a false positive by design; the lint:checked hatch records
// the exclusion argument.
var LockAtCall = &Analyzer{
	Name: "lockatcall",
	Doc:  "calling a function that may acquire a mutex the caller already holds",
	Run:  runLockAtCall,
}

func runLockAtCall(pass *Pass) error {
	if pass.Summaries == nil {
		return nil // no interprocedural layer, nothing to intersect
	}
	funcBodies(pass.Files, func(body *ast.BlockStmt, _ bool) {
		checkLockAtCall(pass, body)
	})
	return nil
}

func checkLockAtCall(pass *Pass, body *ast.BlockStmt) {
	g := pass.Summaries.Graph()
	node := g.ByBody(body)
	if node == nil {
		return
	}
	own, names := ownParamNames(node)
	resolve := pass.lockResolver(body)
	var factAt func(pos ast.Node) lockFact // built lazily: most bodies hold nothing

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n.Body != body {
				return false // its own body via funcBodies
			}
		case *ast.GoStmt, *ast.DeferStmt:
			// A go'd callee runs under its own flow; a deferred one runs
			// at return, when the held set here no longer applies.
			return false
		case *ast.CallExpr:
			e := g.EdgeAt(n)
			if e == nil || e.Kind != callgraph.Call {
				return true
			}
			acquires := pass.Summaries.Of(e.Callee).MayAcquire
			if len(acquires) == 0 {
				return true
			}
			if factAt == nil {
				at := lockFactAt(pass.Info, body, false, resolve)
				factAt = func(site ast.Node) lockFact { return at(site.Pos()) }
			}
			held := factAt(n)
			if len(held) == 0 {
				return true
			}
			reported := make(map[string]bool)
			for _, a := range acquires {
				k, ok := summary.SubstituteKey(pass.Info, own, n, a.Key)
				if !ok {
					continue
				}
				key, ok := renderLockKey(k, names)
				if !ok || reported[key] {
					continue
				}
				conflict := held[key] > 0 // a write hold conflicts with either side
				if !a.Read && held[key+"#r"] > 0 {
					conflict = true // callee write-acquire behind our read hold
				}
				if !conflict {
					continue
				}
				reported[key] = true
				disp := key
				if a.Read {
					disp += " (read)"
				}
				via := ""
				if a.Via != "" {
					via = " via " + a.Via
				}
				pass.Report(n.Pos(), "call to %s acquires %s%s, which may already be held at this call site (self-deadlock)",
					e.Callee.Name(), disp, via)
			}
		}
		return true
	})
}
