package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"maps"
	"sort"

	"repro/internal/analysis/cfg"
	"repro/internal/analysis/dataflow"
)

// PoolLife is the flow-sensitive, interprocedural companion to
// poolescape. Where poolescape compares source positions — a mention of
// a pooled value lexically after its earliest Put — poollife solves a
// forward dataflow over the function's CFG, so it understands what the
// lexical check cannot:
//
//   - a Put on a loop body's last statement reaches the *top* of the
//     loop through the back edge, so the "earlier" use runs on recycled
//     memory from the second iteration on;
//   - a release on an early-return branch does not poison the
//     fall-through path (poolescape's lexical rule would);
//   - rebinding the variable to a fresh Get clears the obligation.
//
// It is also interprocedural on both ends of the lifetime: values born
// from callees whose summaries say ReturnsPooled, released by callees
// whose summaries put the corresponding parameter — including calls
// through tracked function values (get := pool.Get; put := pool.Put),
// which the fact-based resolution in poolescape cannot see at all.
//
// Three findings: a (possible) use after release, a second release of
// the same ownership, and a release while a reference stored into
// longer-lived memory (field, global, container) still outlives the
// ownership window. The dataflow is a may-analysis: released-on-some-path
// followed by a use is reported, because the interleaving is
// input-dependent; exclusive-branch idioms take the lint:checked hatch.
var PoolLife = &Analyzer{
	Name: "poollife",
	Doc:  "flow-sensitive pool lifetime: use after Put, double Put, Put of escaped value",
	Run:  runPoolLife,
}

func runPoolLife(pass *Pass) error {
	walkFuncs(pass.Files, func(fd *ast.FuncDecl) {
		checkPoolLife(pass, fd)
	})
	return nil
}

// poolState is the per-ownership-class dataflow fact.
type poolState uint8

const (
	poolReleased poolState = 1 << iota // put back on some path reaching here
	poolEscaped                        // stored into longer-lived memory on some path
)

// poolOpKind classifies one state transition.
type poolOpKind uint8

const (
	opPut poolOpKind = iota
	opEscape
	opAcquire // rebinding to a fresh pooled value clears the class
)

// poolOp is one state transition at a point in the body. pos is the
// replay-ordering position (the end of the producing expression, so the
// operands of the expression itself are not "after" it); rpos anchors
// diagnostics.
type poolOp struct {
	kind poolOpKind
	rep  *types.Var
	pos  token.Pos
	rpos token.Pos
}

func checkPoolLife(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Info
	pooled := pass.poolLifeLocals(fd)
	if len(pooled) == 0 {
		return
	}
	reps := aliasClasses(info, fd.Body, pooled)

	// opsIn collects the state transitions of one CFG node in position
	// order. Nested literals run under their own node, go bodies under a
	// different flow, and deferred puts release at return — none change
	// the state the body itself observes.
	opsIn := func(root ast.Node) []poolOp {
		var out []poolOp
		escape := func(rid *ast.Ident, rv *types.Var, end token.Pos) {
			out = append(out, poolOp{kind: opEscape, rep: reps[rv], pos: end, rpos: rid.Pos()})
		}
		ast.Inspect(root, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
				return false
			case *ast.AssignStmt:
				if len(m.Lhs) != len(m.Rhs) {
					return true
				}
				for i, rhs := range m.Rhs {
					rhs = unwrap(rhs)
					if rid, ok := rhs.(*ast.Ident); ok {
						if rv, ok := info.Uses[rid].(*types.Var); ok && pooled[rv] {
							switch lhs := ast.Unparen(m.Lhs[i]).(type) {
							case *ast.SelectorExpr, *ast.IndexExpr:
								escape(rid, rv, m.End())
							case *ast.Ident:
								if lv, ok := info.Uses[lhs].(*types.Var); ok && lv.Parent() == lv.Pkg().Scope() {
									escape(rid, rv, m.End())
								}
							}
						}
					}
					if lid, ok := m.Lhs[i].(*ast.Ident); ok {
						if lv := localVarOf(info, lid); lv != nil && pooled[lv] {
							if call, ok := rhs.(*ast.CallExpr); ok && pass.poolGetLike(call) {
								out = append(out, poolOp{kind: opAcquire, rep: reps[lv], pos: m.End(), rpos: lid.Pos()})
							}
						}
					}
				}
			case *ast.CompositeLit:
				for _, el := range m.Elts {
					val := el
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						val = kv.Value
					}
					if rid, ok := unwrap(val).(*ast.Ident); ok {
						if rv, ok := info.Uses[rid].(*types.Var); ok && pooled[rv] {
							escape(rid, rv, m.End())
						}
					}
				}
			case *ast.CallExpr:
				for _, arg := range pass.poolPutArgs(m) {
					if v, ok := info.Uses[arg].(*types.Var); ok && pooled[v] {
						out = append(out, poolOp{kind: opPut, rep: reps[v], pos: m.End(), rpos: m.Pos()})
					}
				}
			}
			return true
		})
		sort.SliceStable(out, func(i, j int) bool { return out[i].pos < out[j].pos })
		return out
	}

	apply := func(f map[*types.Var]poolState, op poolOp) {
		switch op.kind {
		case opPut:
			f[op.rep] |= poolReleased
		case opEscape:
			f[op.rep] |= poolEscaped
		case opAcquire:
			delete(f, op.rep)
		}
	}

	g := cfg.New(fd.Body)
	res := dataflow.Solve(g, dataflow.Problem[map[*types.Var]poolState]{
		Dir:      dataflow.Forward,
		Boundary: func() map[*types.Var]poolState { return map[*types.Var]poolState{} },
		Init:     func() map[*types.Var]poolState { return nil }, // top: unreachable
		Join: func(a, b map[*types.Var]poolState) map[*types.Var]poolState {
			if a == nil {
				return b
			}
			if b == nil {
				return a
			}
			out := maps.Clone(a)
			for v, s := range b {
				out[v] |= s
			}
			return out
		},
		Transfer: func(blk *cfg.Block, in map[*types.Var]poolState) map[*types.Var]poolState {
			if in == nil {
				return nil
			}
			out := maps.Clone(in)
			for _, n := range blk.Nodes {
				for _, op := range opsIn(n) {
					apply(out, op)
				}
			}
			return out
		},
		Equal: func(a, b map[*types.Var]poolState) bool {
			if (a == nil) != (b == nil) {
				return false
			}
			return maps.Equal(a, b)
		},
	})

	// Release-site checks: a Put whose incoming state is already released
	// is a double Put; one whose value escaped earlier outlives the
	// ownership it is giving up.
	for _, blk := range g.Blocks {
		if res.In[blk] == nil {
			continue
		}
		f := maps.Clone(res.In[blk])
		for _, n := range blk.Nodes {
			for _, op := range opsIn(n) {
				if op.kind == opPut {
					switch {
					case f[op.rep]&poolReleased != 0:
						pass.Report(op.rpos, "%s may be returned to its sync.Pool twice", op.rep.Name())
					case f[op.rep]&poolEscaped != 0:
						pass.Report(op.rpos, "%s escaped to longer-lived memory before being returned to its sync.Pool", op.rep.Name())
					}
				}
				apply(f, op)
			}
		}
	}

	// Use-after-release: any read of a pooled variable whose class may be
	// released on a path reaching it. The incoming block fact is replayed
	// up to the use, so the answer is exact within the block. Put
	// arguments are the hand-back, not a use; direct assignment targets
	// are writes that rebind, not reads of pooled memory.
	putArgs := pass.poolPutArgIdents(fd.Body)
	writes := assignTargets(fd.Body)
	factAt := func(pos token.Pos) map[*types.Var]poolState {
		blk := g.BlockOf(pos)
		if blk == nil || res.In[blk] == nil {
			return nil
		}
		f := maps.Clone(res.In[blk])
		for _, n := range blk.Nodes {
			if n.Pos() <= pos && pos <= n.End() {
				for _, op := range opsIn(n) {
					if op.pos < pos {
						apply(f, op)
					}
				}
				break
			}
			for _, op := range opsIn(n) {
				apply(f, op)
			}
		}
		return f
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // captured uses are poolescape's goroutine/escape beat
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || !pooled[v] || putArgs[id] || writes[id] {
			return true
		}
		if f := factAt(id.Pos()); f[reps[v]]&poolReleased != 0 {
			pass.Report(id.Pos(), "%s may be used after being returned to its sync.Pool", id.Name)
		}
		return true
	})
}

// poolLifeLocals collects the variables of fd that hold pool-owned
// values: locals bound to Get-like calls (propagated through aliases),
// plus fd's own parameters when fd itself releases them (per its facts
// or its effect summary — the body of a releaser handles pooled memory).
func (p *Pass) poolLifeLocals(fd *ast.FuncDecl) map[*types.Var]bool {
	info := p.Info
	pooled := make(map[*types.Var]bool)
	if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
		rel := p.Facts.ReleasedParams(obj)
		var sum map[int]bool
		if p.Summaries != nil {
			if s := p.Summaries.OfFunc(obj); s != nil {
				sum = s.PutsParams
			}
		}
		for v, idx := range ownParams(info, fd) {
			if rel[idx] || sum[idx] {
				pooled[v] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				v := localVarOf(info, id)
				if v == nil || pooled[v] {
					continue
				}
				isP := false
				if call, ok := unwrap(rhs).(*ast.CallExpr); ok {
					isP = p.poolGetLike(call)
				} else if rid, ok := unwrap(rhs).(*ast.Ident); ok {
					if rv, ok := info.Uses[rid].(*types.Var); ok && pooled[rv] {
						isP = true
					}
				}
				if isP {
					pooled[v] = true
					changed = true
				}
			}
			return true
		})
	}
	return pooled
}

// poolGetLike reports whether call returns a pool-derived value: the
// stdlib Get, a fact-level pool source, or — through the call graph — a
// callee (named, or reached via a tracked function value) whose summary
// says ReturnsPooled.
func (p *Pass) poolGetLike(call *ast.CallExpr) bool {
	if p.Facts.IsSource(calleeFunc(p.Info, call)) {
		return true
	}
	if p.Summaries == nil {
		return false
	}
	g := p.Summaries.Graph()
	if fn := g.CalleeFuncAt(call); fn != nil {
		if fn.FullName() == "(*sync.Pool).Get" {
			return true
		}
		if s := p.Summaries.OfFunc(fn); s != nil {
			return s.ReturnsPooled
		}
		return false
	}
	if e := g.EdgeAt(call); e != nil {
		return p.Summaries.Of(e.Callee).ReturnsPooled
	}
	return false
}

// poolPutsOf resolves the put-parameter set of one call (receiver = -1),
// merging the fact-level releasers with the interprocedural summaries —
// the latter also resolve tracked function values (put := pool.Put) and
// deferred releases inside the callee, which the facts exclude.
func (p *Pass) poolPutsOf(call *ast.CallExpr) map[int]bool {
	var out map[int]bool
	add := func(m map[int]bool) {
		for i := range m {
			if out == nil {
				out = make(map[int]bool)
			}
			out[i] = true
		}
	}
	add(p.Facts.ReleasedParams(calleeFunc(p.Info, call)))
	if p.Summaries != nil {
		g := p.Summaries.Graph()
		if fn := g.CalleeFuncAt(call); fn != nil {
			if fn.FullName() == "(*sync.Pool).Put" {
				add(map[int]bool{0: true})
			} else if s := p.Summaries.OfFunc(fn); s != nil {
				add(s.PutsParams)
			}
		} else if e := g.EdgeAt(call); e != nil {
			add(p.Summaries.Of(e.Callee).PutsParams)
		}
	}
	return out
}

// poolPutArgs returns the identifiers call hands back to a pool, in
// parameter-index order.
func (p *Pass) poolPutArgs(call *ast.CallExpr) []*ast.Ident {
	puts := p.poolPutsOf(call)
	if len(puts) == 0 {
		return nil
	}
	idxs := make([]int, 0, len(puts))
	for idx := range puts {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	var out []*ast.Ident
	for _, idx := range idxs {
		var arg ast.Expr
		if idx == -1 {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				arg = sel.X
			}
		} else if idx >= 0 && idx < len(call.Args) {
			arg = call.Args[idx]
		}
		if id, ok := unwrap(arg).(*ast.Ident); ok {
			out = append(out, id)
		}
	}
	return out
}

// poolPutArgIdents collects every identifier handed to a put-like call
// anywhere in body — deferred and go'd calls included, since the
// hand-back argument is not a "use" regardless of when the call runs.
func (p *Pass) poolPutArgIdents(body ast.Node) map[*ast.Ident]bool {
	out := make(map[*ast.Ident]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			for _, id := range p.poolPutArgs(call) {
				out[id] = true
			}
		}
		return true
	})
	return out
}

// assignTargets collects the identifiers that appear as direct
// assignment LHS in body: writes that rebind the variable, not reads.
func assignTargets(body ast.Node) map[*ast.Ident]bool {
	out := make(map[*ast.Ident]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				out[id] = true
			}
		}
		return true
	})
	return out
}
