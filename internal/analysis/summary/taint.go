package summary

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/callgraph"
)

// This file computes order-nondeterminism taint. Two sources exist:
//
//   - MapOrder: a floating-point accumulation (x += v and friends)
//     executed inside a range over a map, folding loop-varying values in
//     iteration order — float addition is not associative, so the result
//     differs run to run. A range variable escaping its loop (assigned
//     to an outer variable, or returned) is likewise tainted: it holds
//     "whichever element iteration happened to visit".
//
//   - GoOrder: a floating-point accumulation inside a goroutine launched
//     in a loop, writing a variable of the enclosing function. Mutual
//     exclusion makes the write safe but not ordered — the fold order
//     still depends on scheduling.
//
// Taint then propagates through assignments and call results (via
// callee TaintedResults) to a fixpoint, and computeTaint projects it
// onto the function's own results.

// TaintedVars computes the order-tainted variables of one body: seeds
// from the two sources above plus propagation through aliasing
// assignments and calls to taint-returning callees. Exported for the
// determinism analyzer, which replays the same computation to locate
// sinks inside one function.
func (s *Set) TaintedVars(n *callgraph.Node) map[*types.Var]ResultTaint {
	tainted, _ := s.taintLocals(n)
	return tainted
}

// MapRange is the exported view of one range-over-map: the statement
// and its loop-derived variable set (iteration variables plus in-loop
// locals assigned from them). The determinism analyzer uses it to spot
// order-dependent folds whose destination is not a local variable and
// therefore never enters the tainted-variable set.
type MapRange struct {
	Stmt *ast.RangeStmt
	Vars map[*types.Var]bool
}

// MapRanges lists the map ranges of n's body.
func (s *Set) MapRanges(n *callgraph.Node) []MapRange {
	var out []MapRange
	for _, r := range s.mapRanges(n) {
		out = append(out, MapRange{Stmt: r.stmt, Vars: r.vars})
	}
	return out
}

// mapRange describes one range-over-map in a body.
type mapRange struct {
	stmt *ast.RangeStmt
	vars map[*types.Var]bool // the iteration variables and their in-loop derivatives
}

func (r *mapRange) contains(pos token.Pos) bool {
	return r.stmt.Body.Pos() <= pos && pos < r.stmt.Body.End()
}

func (s *Set) taintLocals(n *callgraph.Node) (map[*types.Var]ResultTaint, []*mapRange) {
	info := n.Unit.Info
	body := n.Body()
	tainted := make(map[*types.Var]ResultTaint)
	add := func(v *types.Var, t Taint, pos token.Pos) bool {
		cur, ok := tainted[v]
		if ok && cur.Taint&t == t {
			return false
		}
		if !ok {
			cur = ResultTaint{Pos: pos}
		}
		cur.Taint |= t
		tainted[v] = cur
		return true
	}

	ranges := s.mapRanges(n)
	sortedAfter := sortSanitized(info, body)

	// Seed 1: map-order accumulations and range-variable escapes.
	for _, r := range ranges {
		ast.Inspect(r.stmt.Body, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			as, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			lhsVar := func(i int) *types.Var {
				if id, ok := as.Lhs[i].(*ast.Ident); ok {
					return localVar(info, id)
				}
				return nil
			}
			if isAccumOp(as.Tok) && len(as.Lhs) == 1 {
				v := lhsVar(0)
				if v != nil && isFloat(v.Type()) && usesAny(info, as.Rhs[0], r.vars) {
					add(v, MapOrder, as.Pos())
				}
				return true
			}
			if as.Tok == token.ASSIGN || as.Tok == token.DEFINE {
				for i := range as.Lhs {
					if i >= len(as.Rhs) {
						break
					}
					v := lhsVar(i)
					if v == nil {
						continue
					}
					// x = x + v inside the loop is the spelled-out
					// accumulation.
					if isFloat(v.Type()) && selfReferential(info, as.Lhs[i], as.Rhs[i]) && usesAny(info, as.Rhs[i], r.vars) {
						add(v, MapOrder, as.Pos())
						continue
					}
					// An outer variable capturing a range variable
					// escapes the iteration order — unless the body later
					// hands it to sort.*, the repo's sanctioned
					// collect-then-sort idiom, which erases arrival order.
					if v.Pos() < r.stmt.Pos() && usesAny(info, as.Rhs[i], r.vars) {
						if sp, ok := sortedAfter[v]; ok && sp > as.Pos() {
							continue
						}
						add(v, MapOrder, as.Pos())
					}
				}
			}
			return true
		})
	}

	// Seed 2: goroutine-order accumulations. Track loop depth; inside a
	// `go func(...) {...}(...)` under a loop, a float accumulation to a
	// variable of the enclosing function is fold-order tainted.
	var walkLoops func(m ast.Node, depth int)
	walkLoops = func(node ast.Node, depth int) {
		ast.Inspect(node, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.ForStmt:
				walkLoops(m.Body, depth+1)
				return false
			case *ast.RangeStmt:
				walkLoops(m.Body, depth+1)
				return false
			case *ast.GoStmt:
				lit, ok := ast.Unparen(m.Call.Fun).(*ast.FuncLit)
				if !ok || depth == 0 {
					return false
				}
				ast.Inspect(lit.Body, func(g ast.Node) bool {
					as, ok := g.(*ast.AssignStmt)
					if !ok || !isAccumOp(as.Tok) || len(as.Lhs) != 1 {
						return true
					}
					id, ok := as.Lhs[0].(*ast.Ident)
					if !ok {
						return true
					}
					v := localVar(info, id)
					// Only variables declared outside the literal carry
					// the fold across goroutines.
					if v != nil && isFloat(v.Type()) && v.Pos() < lit.Pos() {
						add(v, GoOrder, as.Pos())
					}
					return true
				})
				return false
			case *ast.FuncLit:
				if ast.Node(m.Body) != node {
					return false
				}
			}
			return true
		})
	}
	walkLoops(body, 0)

	// Propagation: copies of tainted values and results of
	// taint-returning callees, to a fixpoint.
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(m ast.Node) bool {
			if lit, ok := m.(*ast.FuncLit); ok && ast.Node(lit.Body) != ast.Node(body) {
				return false
			}
			as, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			// Multi-assign from one call: match result indices.
			if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
				if call, ok := unwrap(as.Rhs[0]).(*ast.CallExpr); ok {
					for i, lhs := range as.Lhs {
						id, ok := lhs.(*ast.Ident)
						if !ok {
							continue
						}
						v := localVar(info, id)
						if v == nil {
							continue
						}
						if rt, ok := s.calleeResultTaint(n, call, i); ok {
							if add(v, rt.Taint, rt.Pos) {
								changed = true
							}
						}
					}
				}
				return true
			}
			for i := range as.Lhs {
				if i >= len(as.Rhs) {
					break
				}
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				v := localVar(info, id)
				if v == nil {
					continue
				}
				if rt, ok := s.exprTaint(n, tainted, as.Rhs[i]); ok {
					if add(v, rt.Taint, rt.Pos) {
						changed = true
					}
				}
			}
			return true
		})
	}
	return tainted, ranges
}

// mapRanges finds every range-over-map in n's body (nested literals
// excluded) with its loop-derived variable set: the iteration variables
// plus locals assigned from them within the loop.
func (s *Set) mapRanges(n *callgraph.Node) []*mapRange {
	info := n.Unit.Info
	body := n.Body()
	var out []*mapRange
	ast.Inspect(body, func(m ast.Node) bool {
		if lit, ok := m.(*ast.FuncLit); ok && ast.Node(lit.Body) != ast.Node(body) {
			return false
		}
		rs, ok := m.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, ok := t.Underlying().(*types.Map); !ok {
			return true
		}
		r := &mapRange{stmt: rs, vars: make(map[*types.Var]bool)}
		for _, e := range []ast.Expr{rs.Key, rs.Value} {
			if id, ok := e.(*ast.Ident); ok && id != nil {
				if v := localVar(info, id); v != nil {
					r.vars[v] = true
				}
			}
		}
		// Loop-derived locals: assigned within the body from loop vars.
		for changed := true; changed; {
			changed = false
			ast.Inspect(rs.Body, func(g ast.Node) bool {
				as, ok := g.(*ast.AssignStmt)
				if !ok {
					return true
				}
				for i := range as.Lhs {
					if i >= len(as.Rhs) {
						break
					}
					id, ok := as.Lhs[i].(*ast.Ident)
					if !ok {
						continue
					}
					v := localVar(info, id)
					if v == nil || r.vars[v] || v.Pos() < rs.Pos() {
						continue // outer vars are escapes, not derivations
					}
					if usesAny(info, as.Rhs[i], r.vars) {
						r.vars[v] = true
						changed = true
					}
				}
				return true
			})
		}
		out = append(out, r)
		return true
	})
	return out
}

// exprTaint reports whether e's value is order-tainted given the current
// tainted-variable set: it mentions a tainted variable, or is a call
// whose first result the callee taints.
func (s *Set) exprTaint(n *callgraph.Node, tainted map[*types.Var]ResultTaint, e ast.Expr) (ResultTaint, bool) {
	info := n.Unit.Info
	var found ResultTaint
	ok := false
	ast.Inspect(e, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			if v := localVar(info, m); v != nil {
				if rt, is := tainted[v]; is {
					found.Taint |= rt.Taint
					if !ok {
						found.Pos = rt.Pos
					}
					ok = true
				}
			}
		case *ast.CallExpr:
			if rt, is := s.calleeResultTaint(n, m, 0); is {
				found.Taint |= rt.Taint
				if !ok {
					found.Pos = rt.Pos
				}
				ok = true
			}
		}
		return true
	})
	return found, ok
}

// ExprTaint is exprTaint for consumers outside the package (the
// determinism analyzer).
func (s *Set) ExprTaint(n *callgraph.Node, tainted map[*types.Var]ResultTaint, e ast.Expr) (ResultTaint, bool) {
	return s.exprTaint(n, tainted, e)
}

// calleeResultTaint looks up the taint of result idx of the function a
// call site invokes, through the callee's summary.
func (s *Set) calleeResultTaint(n *callgraph.Node, call *ast.CallExpr, idx int) (ResultTaint, bool) {
	var node *callgraph.Node
	if e := s.graph.EdgeAt(call); e != nil {
		node = e.Callee
	} else if fn := s.graph.CalleeFuncAt(call); fn != nil {
		node = s.graph.NodeOf(fn)
	}
	if node == nil {
		return ResultTaint{}, false
	}
	rt, ok := s.byNode[node].TaintedResults[idx]
	return rt, ok
}

// computeTaint projects the tainted-variable fixpoint onto n's results.
func (s *Set) computeTaint(n *callgraph.Node, sum *Summary) {
	info := n.Unit.Info
	body := n.Body()
	tainted, ranges := s.taintLocals(n)

	var results *ast.FieldList
	if n.Decl != nil {
		results = n.Decl.Type.Results
	} else {
		results = n.Lit.Type.Results
	}
	if results == nil {
		return
	}
	record := func(idx int, rt ResultTaint) {
		if sum.TaintedResults == nil {
			sum.TaintedResults = make(map[int]ResultTaint)
		}
		cur, ok := sum.TaintedResults[idx]
		if !ok {
			sum.TaintedResults[idx] = rt
			return
		}
		cur.Taint |= rt.Taint
		sum.TaintedResults[idx] = cur
	}
	// Named results assigned tainted values surface on bare returns; map
	// them once.
	named := make(map[*types.Var]int)
	idx := 0
	for _, f := range results.List {
		for _, name := range f.Names {
			if v, ok := info.Defs[name].(*types.Var); ok {
				named[v] = idx
			}
			idx++
		}
		if len(f.Names) == 0 {
			idx++
		}
	}

	ast.Inspect(body, func(m ast.Node) bool {
		if lit, ok := m.(*ast.FuncLit); ok && ast.Node(lit.Body) != ast.Node(body) {
			return false
		}
		ret, ok := m.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if len(ret.Results) == 0 {
			for v, i := range named {
				if rt, ok := tainted[v]; ok {
					record(i, rt)
				}
			}
			return true
		}
		for i, res := range ret.Results {
			if rt, ok := s.exprTaint(n, tainted, res); ok {
				record(i, rt)
				continue
			}
			// A return inside a map-range body yielding the iteration
			// variables returns "whichever element came first".
			for _, r := range ranges {
				if r.contains(ret.Pos()) && usesAny(info, res, r.vars) {
					record(i, ResultTaint{Taint: MapOrder, Pos: ret.Pos()})
					break
				}
			}
		}
		return true
	})
}

// sortSanitized records, per variable, the last position at which the
// body passes it to a sort.* canonicalization. A collection that escapes
// a map range but is sorted before further use carries no iteration
// order — that collect-then-sort shape is exactly the fix the maporder
// analyzer demands, so the taint engine must not re-flag it.
func sortSanitized(info *types.Info, body *ast.BlockStmt) map[*types.Var]token.Pos {
	out := make(map[*types.Var]token.Pos)
	ast.Inspect(body, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := info.Uses[pkg].(*types.PkgName)
		if !ok || pn.Imported().Path() != "sort" {
			return true
		}
		switch sel.Sel.Name {
		case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
		default:
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if v := localVar(info, id); v != nil && call.Pos() > out[v] {
				out[v] = call.Pos()
			}
		}
		return true
	})
	return out
}

// isAccumOp reports whether tok is an order-sensitive compound
// assignment for floats.
func isAccumOp(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return true
	}
	return false
}

// isFloat reports whether t is a floating-point or complex type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// usesAny reports whether e mentions any of the given variables.
func usesAny(info *types.Info, e ast.Expr, vars map[*types.Var]bool) bool {
	found := false
	ast.Inspect(e, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok && vars[v] {
				found = true
			}
		}
		return !found
	})
	return found
}

// selfReferential reports whether rhs mentions the variable lhs names —
// the x = x + v accumulation shape.
func selfReferential(info *types.Info, lhs, rhs ast.Expr) bool {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return false
	}
	v := localVar(info, id)
	if v == nil {
		return false
	}
	return usesAny(info, rhs, map[*types.Var]bool{v: true})
}
