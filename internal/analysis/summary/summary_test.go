package summary_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/summary"
)

func computeCorpus(t *testing.T) (*analysis.Package, *summary.Set) {
	t.Helper()
	dir := filepath.Join("..", "testdata", "src", "summaryt")
	pkg, err := analysis.LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	g := callgraph.Build([]*callgraph.Unit{{
		Path: pkg.Path, Fset: pkg.Fset, Files: pkg.Files, Info: pkg.Info,
	}})
	return pkg, summary.Compute(g)
}

// of finds a function's summary by suffix of its full name.
func of(t *testing.T, pkg *analysis.Package, s *summary.Set, name string) *summary.Summary {
	t.Helper()
	for _, n := range s.Graph().Nodes() {
		if n.Func != nil && strings.HasSuffix(n.Func.FullName(), name) {
			return s.Of(n)
		}
	}
	t.Fatalf("no summary for %s", name)
	return nil
}

func TestLockSummaries(t *testing.T) {
	pkg, s := computeCorpus(t)

	lock := of(t, pkg, s, "server).lock")
	if len(lock.MayAcquire) != 1 || lock.MayAcquire[0].Key.String() != "recv.mu" {
		t.Errorf("lock MayAcquire = %+v, want one recv.mu", lock.MayAcquire)
	}
	if len(lock.NetHeld) != 1 || lock.NetHeld[0].Delta != 1 {
		t.Errorf("lock NetHeld = %+v, want one +1", lock.NetHeld)
	}

	unlock := of(t, pkg, s, "server).unlock")
	if len(unlock.NetHeld) != 1 || unlock.NetHeld[0].Delta != -1 {
		t.Errorf("unlock NetHeld = %+v, want one -1", unlock.NetHeld)
	}
	if len(unlock.MayAcquire) != 0 {
		t.Errorf("unlock MayAcquire = %+v, want none", unlock.MayAcquire)
	}

	rlock := of(t, pkg, s, "server).rlock")
	if len(rlock.MayAcquire) != 1 || !rlock.MayAcquire[0].Read {
		t.Errorf("rlock MayAcquire = %+v, want one read acquire", rlock.MayAcquire)
	}

	balanced := of(t, pkg, s, "server).balanced")
	if len(balanced.MayAcquire) != 1 {
		t.Errorf("balanced MayAcquire = %+v, want one entry", balanced.MayAcquire)
	}
	if len(balanced.NetHeld) != 0 {
		t.Errorf("balanced NetHeld = %+v, want none (acquire cancels deferred release)", balanced.NetHeld)
	}

	via := of(t, pkg, s, "server).viaHelper")
	if len(via.MayAcquire) != 1 || via.MayAcquire[0].Via == "" {
		t.Errorf("viaHelper MayAcquire = %+v, want one transitive entry with Via set", via.MayAcquire)
	}
	if via.MayAcquire[0].Key.String() != "recv.mu" {
		t.Errorf("viaHelper key = %s, want recv.mu (substituted through the call)", via.MayAcquire[0].Key)
	}
	if len(via.NetHeld) != 0 {
		t.Errorf("viaHelper NetHeld = %+v, want none (helper lock cancels deferred unlock)", via.NetHeld)
	}

	nested := of(t, pkg, s, "summaryt.nested")
	if len(nested.MayAcquire) != 1 || nested.MayAcquire[0].Key.String() != "arg0.state.mu" {
		t.Errorf("nested MayAcquire = %+v, want one arg0.state.mu", nested.MayAcquire)
	}

	spawned := of(t, pkg, s, "server).spawned")
	if len(spawned.MayAcquire) != 0 || len(spawned.NetHeld) != 0 {
		t.Errorf("spawned = %+v/%+v, want no synchronous lock effects", spawned.MayAcquire, spawned.NetHeld)
	}
}

func TestPoolSummaries(t *testing.T) {
	pkg, s := computeCorpus(t)

	for _, name := range []string{"summaryt.acquire", "summaryt.acquireVia"} {
		if sum := of(t, pkg, s, name); !sum.ReturnsPooled {
			t.Errorf("%s: ReturnsPooled = false, want true", name)
		}
	}
	for name, idx := range map[string]int{
		"summaryt.release":         0,
		"summaryt.releaseDeferred": 0,
		"summaryt.releaseVia":      0,
		"scratch).release":         summary.ReceiverParam,
	} {
		if sum := of(t, pkg, s, name); !sum.PutsParams[idx] {
			t.Errorf("%s: PutsParams = %v, want index %d", name, sum.PutsParams, idx)
		}
	}
	if sum := of(t, pkg, s, "summaryt.sumMap"); len(sum.PutsParams) != 0 || sum.ReturnsPooled {
		t.Errorf("sumMap has pool effects: %+v", sum)
	}
}

func TestTaintSummaries(t *testing.T) {
	pkg, s := computeCorpus(t)

	sumMap := of(t, pkg, s, "summaryt.sumMap")
	if rt, ok := sumMap.TaintedResults[0]; !ok || rt.Taint&summary.MapOrder == 0 {
		t.Errorf("sumMap result taint = %+v, want MapOrder on result 0", sumMap.TaintedResults)
	}

	first := of(t, pkg, s, "summaryt.first")
	for i := 0; i < 2; i++ {
		if rt, ok := first.TaintedResults[i]; !ok || rt.Taint&summary.MapOrder == 0 {
			t.Errorf("first result %d taint = %+v, want MapOrder", i, first.TaintedResults)
		}
	}

	if countMap := of(t, pkg, s, "summaryt.countMap"); len(countMap.TaintedResults) != 0 {
		t.Errorf("countMap folds a loop-invariant value, want no taint: %+v", countMap.TaintedResults)
	}

	sumVia := of(t, pkg, s, "summaryt.sumVia")
	if rt, ok := sumVia.TaintedResults[0]; !ok || rt.Taint&summary.MapOrder == 0 {
		t.Errorf("sumVia result taint = %+v, want MapOrder through the callee", sumVia.TaintedResults)
	}

	gather := of(t, pkg, s, "summaryt.gather")
	if rt, ok := gather.TaintedResults[0]; !ok || rt.Taint&summary.GoOrder == 0 {
		t.Errorf("gather result taint = %+v, want GoOrder", gather.TaintedResults)
	}
}

func TestContractSummaries(t *testing.T) {
	pkg, s := computeCorpus(t)

	// A direct mutex acquire is one block site with no callee.
	lock := of(t, pkg, s, "server).lock")
	if len(lock.BlockSites) != 1 || lock.BlockSites[0].Callee != nil ||
		!strings.Contains(lock.BlockSites[0].What, "RWMutex).Lock") {
		t.Errorf("lock BlockSites = %+v, want one direct RWMutex.Lock site", lock.BlockSites)
	}
	if len(lock.AllocSites) != 0 {
		t.Errorf("lock AllocSites = %+v, want none (Lock is alloc-safe)", lock.AllocSites)
	}

	// A transitive acquire through lock() carries the callee for the
	// witness chain; the deferred Unlock is block-safe.
	via := of(t, pkg, s, "server).viaHelper")
	if len(via.BlockSites) != 1 || via.BlockSites[0].Callee == nil {
		t.Errorf("viaHelper BlockSites = %+v, want one transitive entry with Callee set", via.BlockSites)
	}

	// A lock taken only inside a spawned goroutine does not block the
	// caller, but the go statement and its closure do allocate.
	spawned := of(t, pkg, s, "server).spawned")
	if len(spawned.BlockSites) != 0 {
		t.Errorf("spawned BlockSites = %+v, want none (goroutine body is asynchronous)", spawned.BlockSites)
	}
	if len(spawned.AllocSites) != 2 {
		t.Errorf("spawned AllocSites = %+v, want closure + go statement", spawned.AllocSites)
	}

	// sync.Pool.Get is the principled exemption: recycling is how code
	// avoids allocating, so it must not count as an allocation.
	acquire := of(t, pkg, s, "summaryt.acquire")
	if len(acquire.AllocSites) != 0 || len(acquire.BlockSites) != 0 {
		t.Errorf("acquire sites = %+v / %+v, want none (Pool.Get is exempt)",
			acquire.AllocSites, acquire.BlockSites)
	}
	if acquireVia := of(t, pkg, s, "summaryt.acquireVia"); len(acquireVia.AllocSites) != 0 {
		t.Errorf("acquireVia AllocSites = %+v, want none (clean callee contributes nothing)", acquireVia.AllocSites)
	}
}
