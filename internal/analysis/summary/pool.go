package summary

import (
	"go/ast"
	"go/types"
	"sort"

	"repro/internal/analysis/callgraph"
)

// computePool fills sum.PutsParams and sum.ReturnsPooled.
//
// A parameter (or the receiver) is "put" when the body hands it —
// unwrapped through parens and type assertions — to (*sync.Pool).Put or
// to a callee that puts the corresponding position, in plain, deferred,
// or go'd calls alike: in every case the value may be back in the pool
// once the caller resumes, so the caller must not touch it. Unlike the
// intraprocedural releaser facts (which exclude deferred Puts because
// the function still owns the value for its own body), this is the
// caller's view.
//
// ReturnsPooled holds when some return statement yields a Get-derived
// value: a direct (*sync.Pool).Get call, a call to a ReturnsPooled
// callee, or a local previously bound to either (propagated through
// aliasing assignments to a fixpoint, as the releaser facts do).
func (s *Set) computePool(n *callgraph.Node, own map[*types.Var]int, sum *Summary) {
	info := n.Unit.Info
	body := n.Body()

	// putsOf resolves the put-parameter set of one call: by name for the
	// stdlib method, by summary for module callees (function-value calls
	// to bound Put method values resolve through CalleeFuncAt).
	putsOf := func(call *ast.CallExpr) map[int]bool {
		if fn := s.graph.CalleeFuncAt(call); fn != nil {
			if fn.FullName() == "(*sync.Pool).Put" {
				return map[int]bool{0: true}
			}
			if node := s.graph.NodeOf(fn); node != nil {
				return s.byNode[node].PutsParams
			}
			return nil
		}
		if e := s.graph.EdgeAt(call); e != nil {
			return s.byNode[e.Callee].PutsParams
		}
		return nil
	}
	isGetLike := func(call *ast.CallExpr) bool {
		if fn := s.graph.CalleeFuncAt(call); fn != nil {
			if fn.FullName() == "(*sync.Pool).Get" {
				return true
			}
			if node := s.graph.NodeOf(fn); node != nil {
				return s.byNode[node].ReturnsPooled
			}
			return false
		}
		if e := s.graph.EdgeAt(call); e != nil {
			return s.byNode[e.Callee].ReturnsPooled
		}
		return false
	}

	inOwnBody := func(m *ast.FuncLit) bool { return ast.Node(m.Body) == body }

	// PutsParams: every put-like call whose released argument is one of
	// n's own parameters.
	ast.Inspect(body, func(m ast.Node) bool {
		if lit, ok := m.(*ast.FuncLit); ok && !inOwnBody(lit) {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		puts := putsOf(call)
		idxs := make([]int, 0, len(puts))
		for idx := range puts {
			idxs = append(idxs, idx)
		}
		sort.Ints(idxs)
		for _, idx := range idxs {
			var arg ast.Expr
			if idx == ReceiverParam {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					arg = sel.X
				}
			} else if idx >= 0 && idx < len(call.Args) {
				arg = call.Args[idx]
			}
			id, ok := unwrap(arg).(*ast.Ident)
			if !ok {
				continue
			}
			if v, ok := info.Uses[id].(*types.Var); ok {
				if ownIdx, ok := own[v]; ok {
					if sum.PutsParams == nil {
						sum.PutsParams = make(map[int]bool)
					}
					sum.PutsParams[ownIdx] = true
				}
			}
		}
		return true
	})

	// ReturnsPooled: propagate Get-derived values through local aliases,
	// then look at the returns.
	pooled := make(map[*types.Var]bool)
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				v := localVar(info, id)
				if v == nil || pooled[v] {
					continue
				}
				isP := false
				if call, ok := unwrap(rhs).(*ast.CallExpr); ok {
					isP = isGetLike(call)
				} else if rid, ok := unwrap(rhs).(*ast.Ident); ok {
					if rv, ok := info.Uses[rid].(*types.Var); ok && pooled[rv] {
						isP = true
					}
				}
				if isP {
					pooled[v] = true
					changed = true
				}
			}
			return true
		})
	}
	ast.Inspect(body, func(m ast.Node) bool {
		if sum.ReturnsPooled {
			return false
		}
		if lit, ok := m.(*ast.FuncLit); ok && !inOwnBody(lit) {
			return false // returns inside nested literals are not n's
		}
		ret, ok := m.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if call, ok := unwrap(res).(*ast.CallExpr); ok && isGetLike(call) {
				sum.ReturnsPooled = true
				return false
			}
			if id, ok := unwrap(res).(*ast.Ident); ok {
				if v, ok := info.Uses[id].(*types.Var); ok && pooled[v] {
					sum.ReturnsPooled = true
					return false
				}
			}
		}
		return true
	})
}

// localVar resolves id to the non-package-level variable it defines or
// uses.
func localVar(info *types.Info, id *ast.Ident) *types.Var {
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Uses[id].(*types.Var); ok && v.Pkg() != nil && v.Parent() != v.Pkg().Scope() {
		return v
	}
	return nil
}

// unwrap strips parentheses and type assertions.
func unwrap(e ast.Expr) ast.Expr {
	for {
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
		case *ast.TypeAssertExpr:
			e = t.X
		default:
			return e
		}
	}
}
