// Package summary computes caller-visible effect summaries for every
// node of a callgraph.Graph, iterated to an interprocedural fixpoint.
// The analyzers consume summaries at call sites: what a callee may lock
// (lockatcall), the net lock balance it leaves behind (lockbalance via
// the driver's op resolver), which parameters it hands back to a
// sync.Pool and whether its results come from one (poollife), and which
// results depend on map iteration order or goroutine scheduling
// (determinism).
//
// The fixpoint runs on dataflow.Fixpoint: each node's summary is a pure
// function of its callees' current summaries; when a recompute changes a
// summary, every caller is re-enqueued, transitively, until nothing
// changes. Effects grow monotonically from empty summaries, and every
// lattice here is finite (lock keys are capped in path depth, the other
// effects are bounded by the syntax of one body), so the iteration
// terminates even through recursion.
//
// Soundness caveats mirror the call graph's: effects reached only
// through interface calls, untracked function values, or reflection are
// invisible, and goroutine spawns are excluded from synchronous effects
// (a lock taken inside `go f()` is not "acquired during the call").
// Consumers must therefore treat summaries as lower bounds — fit for
// proving a problem exists, never for proving its absence.
package summary

import (
	"go/token"
	"go/types"
	"maps"
	"slices"

	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/dataflow"
)

// Acquire is one lock acquisition a function may perform during a
// synchronous call, directly or through a callee.
type Acquire struct {
	Key  Key
	Read bool      // RLock-style shared acquisition
	Pos  token.Pos // position of the Lock call itself
	Via  string    // immediate callee the acquisition flows through; "" when direct
}

// HeldDelta is the net caller-visible change a call makes to a lock's
// hold depth: +1 for a lock() helper that returns holding the mutex, -1
// for the matching unlock() helper. Balanced acquire/release pairs
// inside the callee cancel to zero and are not recorded.
type HeldDelta struct {
	Key   Key
	Read  bool
	Delta int
	Pos   token.Pos
}

// Taint classifies sources of run-to-run nondeterminism.
type Taint uint8

const (
	// MapOrder marks values folded over (or selected by) map iteration
	// order.
	MapOrder Taint = 1 << iota
	// GoOrder marks values folded over an unsynchronized-order set of
	// goroutine contributions (mutual exclusion does not fix the order).
	GoOrder
)

func (t Taint) String() string {
	switch {
	case t&MapOrder != 0 && t&GoOrder != 0:
		return "map iteration and goroutine scheduling order"
	case t&GoOrder != 0:
		return "goroutine scheduling order"
	default:
		return "map iteration order"
	}
}

// ResultTaint records why (and where) one result is nondeterministic.
type ResultTaint struct {
	Taint Taint
	Pos   token.Pos // where the order dependence is introduced
}

// Summary is the caller-visible effect summary of one function body.
type Summary struct {
	// MayAcquire lists locks the function may acquire while the call is
	// in flight, even if released before return. Deduplicated by
	// (Key, Read); source order, direct acquisitions first.
	MayAcquire []Acquire
	// NetHeld lists locks whose hold depth differs between call entry
	// and return (the lock()/unlock() helper pattern).
	NetHeld []HeldDelta
	// PutsParams marks the receiver (-1) and parameter indices the
	// function may hand to (*sync.Pool).Put — directly, through a
	// releasing callee, or by a deferred release (which has run by the
	// time the caller resumes).
	PutsParams map[int]bool
	// ReturnsPooled reports that some return value originates from a
	// (*sync.Pool).Get, directly or through a pooled-source callee.
	ReturnsPooled bool
	// TaintedResults maps result indices to the nondeterminism of their
	// values.
	TaintedResults map[int]ResultTaint
	// AllocSites lists why the function may allocate and BlockSites why
	// it may block: direct sites in source order, then unresolved calls,
	// then one transitive entry per resolved call whose callee carries
	// the effect (Go edges excluded from BlockSites). Unlike the other
	// domains these are upper bounds — unverifiable calls are included,
	// not dropped (see contracts.go).
	AllocSites []EffectSite
	BlockSites []EffectSite
}

func (s *Summary) equal(o *Summary) bool {
	return slices.Equal(s.MayAcquire, o.MayAcquire) &&
		slices.Equal(s.NetHeld, o.NetHeld) &&
		maps.Equal(s.PutsParams, o.PutsParams) &&
		s.ReturnsPooled == o.ReturnsPooled &&
		maps.Equal(s.TaintedResults, o.TaintedResults) &&
		slices.Equal(s.AllocSites, o.AllocSites) &&
		slices.Equal(s.BlockSites, o.BlockSites)
}

// Set holds the fixpoint summaries of one call graph.
type Set struct {
	graph       *callgraph.Graph
	byNode      map[*callgraph.Node]*Summary
	modulePaths map[string]bool // package paths with bodies in the graph
}

// Graph returns the call graph the summaries were computed over.
func (s *Set) Graph() *callgraph.Graph { return s.graph }

// Of returns the summary of a node (never nil for nodes of the graph).
func (s *Set) Of(n *callgraph.Node) *Summary { return s.byNode[n] }

// OfFunc returns the summary of a declared function, or nil when the
// function has no node (extra-module or bodyless).
func (s *Set) OfFunc(fn *types.Func) *Summary {
	if n := s.graph.NodeOf(fn); n != nil {
		return s.byNode[n]
	}
	return nil
}

// Compute runs the interprocedural fixpoint and returns the summaries.
func Compute(g *callgraph.Graph) *Set {
	s := &Set{
		graph:       g,
		byNode:      make(map[*callgraph.Node]*Summary, len(g.Nodes())),
		modulePaths: make(map[string]bool),
	}
	for _, n := range g.Nodes() {
		s.byNode[n] = &Summary{}
		s.modulePaths[n.Unit.Path] = true
	}
	dataflow.Fixpoint(g.Nodes(), func(n *callgraph.Node) bool {
		fresh := s.compute(n)
		if fresh.equal(s.byNode[n]) {
			return false
		}
		s.byNode[n] = fresh
		return true
	}, func(n *callgraph.Node) []*callgraph.Node {
		callers := make([]*callgraph.Node, 0, len(n.In))
		seen := make(map[*callgraph.Node]bool, len(n.In))
		for _, e := range n.In {
			if !seen[e.Caller] {
				seen[e.Caller] = true
				callers = append(callers, e.Caller)
			}
		}
		return callers
	})
	return s
}

// compute rebuilds one node's summary from its body and the current
// summaries of its callees.
func (s *Set) compute(n *callgraph.Node) *Summary {
	sum := &Summary{}
	own := OwnParams(n)
	s.computeLocks(n, own, sum)
	s.computePool(n, own, sum)
	s.computeTaint(n, sum)
	s.computeContracts(n, sum)
	return sum
}
