package summary

// The MayAlloc / MayBlock effect domains behind the performance
// contracts (//graphner:noalloc and //graphner:nonblocking, see the
// noalloc and nonblocking analyzers). Each function body contributes
// direct effect sites — allocation: make/new, growing append, map and
// slice literals, string concatenation and conversions, interface
// boxing at call/assignment/return sites, closure creation, variadic
// packing, fmt-family calls, goroutine spawns; blocking: channel
// operations outside a select with default, selects without default,
// mutex Lock/RLock, WaitGroup.Wait, time.Sleep, io/net calls — and one
// transitive site per resolved call whose callee carries the effect, so
// the analyzers can render the full witness chain from an annotated
// function down to the offending expression.
//
// Polarity note: unlike every other summary domain, these are upper
// bounds. A call that cannot be resolved (interface method, untracked
// function value) or a named extra-module callee with no model below is
// recorded as an effect site — the contract checkers report what they
// cannot verify instead of staying silent. sync.Pool.Get/Put are
// exempt from MayAlloc by design: pooled scratch is exactly how the
// kernels stay allocation-free, and pool misuse has its own analyzers
// (poolescape, poollife). Goroutine spawns count toward MayAlloc (the
// runtime allocates the goroutine, and testing.AllocsPerRun counts its
// allocations too) but not MayBlock (the spawned body runs
// asynchronously); an entire `go f(...)` subtree is treated as
// asynchronous for blocking, like the lock walk. panic arguments and
// deferred-call records are not counted (crash paths and open-coded
// defers).

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/callgraph"
)

// EffectSite is one reason a function carries an effect (allocation or
// blocking): a direct site in its own body (Callee nil, What says why),
// or a call site whose resolved callee carries the effect (Callee set;
// the detail lives in the callee's own sites).
type EffectSite struct {
	Pos    token.Pos
	What   string
	Callee *callgraph.Node
}

// Extra-module callees the alloc domain trusts not to allocate. The
// sync.Pool methods are the contract system's principled exemption.
var allocSafePkgs = map[string]bool{"math": true, "math/bits": true, "sync/atomic": true}

var allocSafeFuncs = map[string]bool{
	"(*sync.Mutex).Lock": true, "(*sync.Mutex).Unlock": true, "(*sync.Mutex).TryLock": true,
	"(*sync.RWMutex).Lock": true, "(*sync.RWMutex).Unlock": true,
	"(*sync.RWMutex).RLock": true, "(*sync.RWMutex).RUnlock": true,
	"(*sync.RWMutex).TryLock": true, "(*sync.RWMutex).TryRLock": true,
	"(*sync.WaitGroup).Add": true, "(*sync.WaitGroup).Done": true, "(*sync.WaitGroup).Wait": true,
	"(*sync.Pool).Get": true, "(*sync.Pool).Put": true,
	"(*sync.Once).Do":    true,
	"runtime.GOMAXPROCS": true, "runtime.NumCPU": true,
}

// Extra-module callees the block domain trusts not to block.
var blockSafePkgs = map[string]bool{"math": true, "math/bits": true, "sync/atomic": true}

var blockSafeFuncs = map[string]bool{
	"(*sync.Mutex).Unlock": true, "(*sync.Mutex).TryLock": true,
	"(*sync.RWMutex).Unlock": true, "(*sync.RWMutex).RUnlock": true,
	"(*sync.RWMutex).TryLock": true, "(*sync.RWMutex).TryRLock": true,
	"(*sync.WaitGroup).Add": true, "(*sync.WaitGroup).Done": true,
	"(*sync.Pool).Get": true, "(*sync.Pool).Put": true,
	"runtime.GOMAXPROCS": true, "runtime.NumCPU": true,
}

// Extra-module callees known to block, with the message to report.
var blockingFuncs = map[string]string{
	"(*sync.Mutex).Lock":     "(*sync.Mutex).Lock may block",
	"(*sync.RWMutex).Lock":   "(*sync.RWMutex).Lock may block",
	"(*sync.RWMutex).RLock":  "(*sync.RWMutex).RLock may block",
	"(*sync.WaitGroup).Wait": "(*sync.WaitGroup).Wait may block",
	"(*sync.Cond).Wait":      "(*sync.Cond).Wait blocks",
	"(*sync.Once).Do":        "(*sync.Once).Do may block waiting for the first call",
	"time.Sleep":             "time.Sleep blocks",
}

// Packages whose calls the block domain treats as I/O.
var blockingPkgs = map[string]bool{"io": true, "net": true, "net/http": true, "os": true, "bufio": true}

// computeContracts fills sum.AllocSites and sum.BlockSites: direct
// sites in source order, then the unresolved call sites, then one
// transitive site per resolved outgoing call whose callee's list is
// non-empty (Go edges excluded from blocking). Lists only ever grow
// during the fixpoint, and each is bounded by the body's syntax plus
// its out-degree, so the iteration terminates.
func (s *Set) computeContracts(n *callgraph.Node, sum *Summary) {
	info := n.Unit.Info
	body := n.Body()

	alloc := func(pos token.Pos, what string) {
		sum.AllocSites = append(sum.AllocSites, EffectSite{Pos: pos, What: what})
	}
	block := func(pos token.Pos, what string) {
		sum.BlockSites = append(sum.BlockSites, EffectSite{Pos: pos, What: what})
	}

	// A send/receive that is the communication clause of a select does
	// not block by itself — the select does, and only without a default.
	selectComm := make(map[ast.Node]bool)
	ast.Inspect(body, func(m ast.Node) bool {
		sel, ok := m.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, c := range sel.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			selectComm[cc.Comm] = true
			switch st := cc.Comm.(type) {
			case *ast.AssignStmt:
				for _, r := range st.Rhs {
					selectComm[ast.Unparen(r)] = true
				}
			case *ast.ExprStmt:
				selectComm[ast.Unparen(st.X)] = true
			}
		}
		return true
	})

	sig := ownSignature(n)
	var walk func(root ast.Node, inGo bool)
	walk = func(root ast.Node, inGo bool) {
		ast.Inspect(root, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				if ast.Node(m.Body) == root {
					return true // walking the literal's own body (deferred literal)
				}
				alloc(m.Pos(), "creating a func literal (closure) allocates")
				return false // its own node; effects flow through edges
			case *ast.GoStmt:
				alloc(m.Pos(), "the go statement allocates a goroutine")
				walk(m.Call, true)
				return false
			case *ast.DeferStmt:
				// Deferred calls run within this activation before return;
				// both domains count them at their site.
				walk(m.Call, inGo)
				return false
			case *ast.CallExpr:
				s.classifyCall(n, m, inGo, alloc, block)
			case *ast.CompositeLit:
				switch info.TypeOf(m).Underlying().(type) {
				case *types.Map:
					alloc(m.Pos(), "a map literal allocates")
				case *types.Slice:
					alloc(m.Pos(), "a slice literal allocates")
				}
			case *ast.UnaryExpr:
				switch m.Op {
				case token.AND:
					if _, ok := ast.Unparen(m.X).(*ast.CompositeLit); ok {
						alloc(m.Pos(), "taking the address of a composite literal allocates")
					}
				case token.ARROW:
					if !inGo && !selectComm[m] {
						block(m.Pos(), "a channel receive may block")
					}
				}
			case *ast.BinaryExpr:
				if m.Op == token.ADD {
					if tv, ok := info.Types[m]; ok && tv.Value == nil && isStringType(tv.Type) {
						alloc(m.Pos(), "string concatenation allocates")
					}
				}
			case *ast.AssignStmt:
				if m.Tok == token.ADD_ASSIGN && isStringType(info.TypeOf(m.Lhs[0])) {
					alloc(m.Pos(), "string concatenation allocates")
				}
				if (m.Tok == token.ASSIGN || m.Tok == token.DEFINE) && len(m.Lhs) == len(m.Rhs) {
					for i := range m.Lhs {
						if boxes(info, m.Rhs[i], info.TypeOf(m.Lhs[i])) {
							alloc(m.Rhs[i].Pos(), "assigning a non-pointer value to an interface boxes (allocates)")
						}
					}
				}
			case *ast.ValueSpec:
				for i, name := range m.Names {
					if i < len(m.Values) && boxes(info, m.Values[i], info.TypeOf(name)) {
						alloc(m.Values[i].Pos(), "assigning a non-pointer value to an interface boxes (allocates)")
					}
				}
			case *ast.ReturnStmt:
				if sig != nil && len(m.Results) == sig.Results().Len() {
					for i, r := range m.Results {
						if boxes(info, r, sig.Results().At(i).Type()) {
							alloc(r.Pos(), "returning a non-pointer value as an interface boxes (allocates)")
						}
					}
				}
			case *ast.SendStmt:
				if !inGo && !selectComm[m] {
					block(m.Pos(), "a channel send may block")
				}
			case *ast.RangeStmt:
				if _, ok := info.TypeOf(m.X).Underlying().(*types.Chan); ok && !inGo {
					block(m.Pos(), "ranging over a channel may block")
				}
			case *ast.SelectStmt:
				hasDefault := false
				for _, c := range m.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
						hasDefault = true
					}
				}
				if !hasDefault && !inGo {
					block(m.Pos(), "select without a default case may block")
				}
			}
			return true
		})
	}
	walk(body, false)

	// Unresolved calls: the checkers report what they cannot verify.
	for _, pos := range n.UnresolvedSites {
		const what = "calls an unresolved callee (interface method, untracked function value) that cannot be verified"
		alloc(pos, what)
		block(pos, what)
	}

	// Transitive sites: one per resolved call whose callee carries the
	// effect. Goroutine bodies still allocate on this process's heap, so
	// Go edges count for MayAlloc, but they never block the caller.
	for _, e := range n.Out {
		cs := s.byNode[e.Callee]
		if len(cs.AllocSites) > 0 {
			sum.AllocSites = append(sum.AllocSites, EffectSite{Pos: e.Site.Pos(), Callee: e.Callee})
		}
		if e.Kind != callgraph.Go && len(cs.BlockSites) > 0 {
			sum.BlockSites = append(sum.BlockSites, EffectSite{Pos: e.Site.Pos(), Callee: e.Callee})
		}
	}
}

// classifyCall records the direct effects of one call expression:
// allocating builtins and conversions, extra-module callees by the
// tables above, interface boxing of arguments, and variadic packing.
func (s *Set) classifyCall(n *callgraph.Node, call *ast.CallExpr, inGo bool, alloc, block func(token.Pos, string)) {
	info := n.Unit.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if what, bad := convAlloc(info, call); bad {
			alloc(call.Pos(), what)
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				alloc(call.Pos(), "make allocates")
			case "new":
				alloc(call.Pos(), "new allocates")
			case "append":
				alloc(call.Pos(), "append may grow its backing array")
			}
			return
		}
	}

	flagged := false
	if fn := s.graph.CalleeFuncAt(call); fn != nil && s.graph.NodeOf(fn) == nil {
		allocWhat, blockWhat := s.classifyExtern(fn)
		if allocWhat != "" {
			alloc(call.Pos(), allocWhat)
			flagged = true
		}
		if blockWhat != "" && !inGo {
			block(call.Pos(), blockWhat)
		}
	}

	// Boxing and variadic packing at the call boundary. A call already
	// flagged above (fmt.Errorf and friends) is one site, not three.
	if flagged {
		return
	}
	sig, _ := typeOfFun(info, call).(*types.Signature)
	if sig == nil {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis != token.NoPos {
				pt = sig.Params().At(np - 1).Type()
			} else {
				pt = sig.Params().At(np - 1).Type().Underlying().(*types.Slice).Elem()
			}
		case i < np:
			pt = sig.Params().At(i).Type()
		}
		if boxes(info, arg, pt) {
			alloc(arg.Pos(), "passing a non-pointer value as an interface argument boxes (allocates)")
		}
	}
	if sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) >= np {
		alloc(call.Pos(), "a variadic call packs its arguments into a new slice")
	}
}

// classifyExtern classifies a named callee with no node in the graph:
// stdlib by the tables, module-internal bodyless declarations and
// interface methods as unverifiable. Empty strings mean "safe" for the
// respective domain.
func (s *Set) classifyExtern(fn *types.Func) (allocWhat, blockWhat string) {
	full := fn.FullName()
	var pkgPath string
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	if pkgPath == "" || s.modulePaths[pkgPath] {
		w := "calls " + full + ", which has no body the checker can analyze"
		return w, w
	}
	switch {
	case allocSafePkgs[pkgPath] || allocSafeFuncs[full]:
	case pkgPath == "fmt":
		allocWhat = full + " allocates"
	default:
		allocWhat = "calls " + full + " (extra-module, not modeled), assumed to allocate"
	}
	switch {
	case blockSafePkgs[pkgPath] || blockSafeFuncs[full]:
	case blockingFuncs[full] != "":
		blockWhat = blockingFuncs[full]
	case blockingPkgs[pkgPath]:
		blockWhat = "calls into " + pkgPath + " (" + full + "), which may block"
	case pkgPath == "fmt":
		if name := fn.Name(); strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") ||
			strings.HasPrefix(name, "Scan") || strings.HasPrefix(name, "Fscan") {
			blockWhat = full + " performs I/O and may block"
		}
	default:
		blockWhat = "calls " + full + " (extra-module, not modeled), assumed to block"
	}
	return allocWhat, blockWhat
}

// convAlloc reports whether a type conversion copies to the heap:
// string <-> []byte/[]rune, and integer -> string. Constant operands
// fold at compile time and are free.
func convAlloc(info *types.Info, call *ast.CallExpr) (string, bool) {
	if len(call.Args) != 1 {
		return "", false
	}
	if tv, ok := info.Types[call.Args[0]]; ok && tv.Value != nil {
		return "", false
	}
	to := info.TypeOf(call.Fun)
	from := info.TypeOf(call.Args[0])
	if to == nil || from == nil {
		return "", false
	}
	tb, _ := to.Underlying().(*types.Basic)
	fb, _ := from.Underlying().(*types.Basic)
	isStr := func(b *types.Basic) bool { return b != nil && b.Info()&types.IsString != 0 }
	byteOrRune := func(t types.Type) bool {
		sl, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		eb, ok := sl.Elem().Underlying().(*types.Basic)
		return ok && (eb.Kind() == types.Uint8 || eb.Kind() == types.Int32)
	}
	switch {
	case isStr(tb) && byteOrRune(from):
		return "converting a byte/rune slice to a string copies (allocates)", true
	case byteOrRune(to) && isStr(fb):
		return "converting a string to a byte/rune slice copies (allocates)", true
	case isStr(tb) && fb != nil && fb.Info()&types.IsInteger != 0:
		return "converting an integer to a string allocates", true
	}
	return "", false
}

// boxes reports whether assigning/passing e to a value of type `to`
// stores a non-pointer value in an interface, which heap-allocates the
// data word. Constants box to static data; pointer-shaped values (
// pointers, channels, maps, funcs, unsafe.Pointer) fit the word.
func boxes(info *types.Info, e ast.Expr, to types.Type) bool {
	if to == nil {
		return false
	}
	if _, ok := to.Underlying().(*types.Interface); !ok {
		return false
	}
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil || tv.Value != nil || tv.IsNil() {
		return false
	}
	switch u := tv.Type.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}

// ownSignature returns the node's own signature (for return-site boxing).
func ownSignature(n *callgraph.Node) *types.Signature {
	if n.Func != nil {
		sig, _ := n.Func.Type().(*types.Signature)
		return sig
	}
	if tv, ok := n.Unit.Info.Types[n.Lit]; ok {
		sig, _ := tv.Type.Underlying().(*types.Signature)
		return sig
	}
	return nil
}

// typeOfFun resolves the callee expression's type to its underlying
// signature-bearing type.
func typeOfFun(info *types.Info, call *ast.CallExpr) types.Type {
	t := info.TypeOf(call.Fun)
	if t == nil {
		return nil
	}
	return t.Underlying()
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
