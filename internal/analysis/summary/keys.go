package summary

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analysis/callgraph"
)

// Key identifies a lock in caller-substitutable form. Param-relative
// keys (Param >= ReceiverParam) name a lock reached from the receiver or
// a parameter and are re-expressed in the caller's terms at each call
// site; global keys (Param == GlobalParam) name a package-level variable
// and pass through call boundaries unchanged. Locks reached only from
// local variables have no key — their acquisition is invisible to
// callers, which is conservative for every consumer (a missing key can
// only suppress a report).
type Key struct {
	// Param is ReceiverParam (-1) for the receiver, a parameter index
	// (>= 0), or GlobalParam (-2) for package-level variables.
	Param int
	// Path is the dotted selector path from the base value to the mutex
	// ("mu", "state.mu"); empty when the base itself is the mutex. For
	// global keys it is the full rendered chain including the variable
	// name.
	Path string
	// Var is the package-level variable identity for global keys; nil
	// otherwise.
	Var *types.Var
}

const (
	ReceiverParam = -1
	GlobalParam   = -2
)

// maxKeyDepth caps the selector depth of a key. Substitution through a
// recursive call chain (f(x) calling f(x.next)) would otherwise grow
// paths without bound and defeat the fixpoint.
const maxKeyDepth = 4

// String renders the key for diagnostics, with placeholder bases for
// param-relative keys ("recv.mu", "arg0.state.mu").
func (k Key) String() string {
	var base string
	switch {
	case k.Param == GlobalParam:
		return k.Path
	case k.Param == ReceiverParam:
		base = "recv"
	default:
		base = "arg" + strconv.Itoa(k.Param)
	}
	if k.Path == "" {
		return base
	}
	return base + "." + k.Path
}

// OwnParams maps a node's receiver (ReceiverParam) and parameters to
// their indices. Literals have parameters but no receiver.
func OwnParams(n *callgraph.Node) map[*types.Var]int {
	info := n.Unit.Info
	out := make(map[*types.Var]int)
	var ftype *ast.FuncType
	if n.Decl != nil {
		ftype = n.Decl.Type
		if n.Decl.Recv != nil {
			for _, f := range n.Decl.Recv.List {
				for _, name := range f.Names {
					if v, ok := info.Defs[name].(*types.Var); ok {
						out[v] = ReceiverParam
					}
				}
			}
		}
	} else {
		ftype = n.Lit.Type
	}
	i := 0
	if ftype.Params != nil {
		for _, f := range ftype.Params.List {
			for _, name := range f.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					out[v] = i
				}
				i++
			}
			if len(f.Names) == 0 {
				i++
			}
		}
	}
	return out
}

// splitChain decomposes an identifier chain (with pointers, parens, and
// address-of stripped) into its base identifier and the selector names
// after it. Expressions that are not pure chains (calls, index
// expressions) yield a nil base.
func splitChain(e ast.Expr) (*ast.Ident, []string) {
	switch e := e.(type) {
	case *ast.Ident:
		return e, nil
	case *ast.SelectorExpr:
		base, path := splitChain(e.X)
		if base == nil {
			return nil, nil
		}
		return base, append(path, e.Sel.Name)
	case *ast.ParenExpr:
		return splitChain(e.X)
	case *ast.StarExpr:
		return splitChain(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return splitChain(e.X)
		}
	}
	return nil, nil
}

// classifyChain turns a base identifier + selector path into a Key
// relative to the given parameter map, or reports that the chain is not
// caller-visible (local base).
func classifyChain(info *types.Info, own map[*types.Var]int, base *ast.Ident, path []string) (Key, bool) {
	if base == nil || len(path) >= maxKeyDepth {
		return Key{}, false
	}
	v, _ := info.Uses[base].(*types.Var)
	if v == nil {
		v, _ = info.Defs[base].(*types.Var)
	}
	if v == nil {
		return Key{}, false
	}
	if idx, ok := own[v]; ok {
		return Key{Param: idx, Path: strings.Join(path, ".")}, true
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		full := append([]string{v.Name()}, path...)
		return Key{Param: GlobalParam, Path: strings.Join(full, "."), Var: v}, true
	}
	return Key{}, false
}

// SubstituteKey re-expresses a callee's key in the caller's terms at one
// call site: the callee's receiver/parameter base is replaced by the
// argument expression the caller passes there, then re-classified
// against the caller's own parameters. Global keys pass through
// unchanged. The second result is false when the substitution cannot be
// rendered (non-chain argument, local base, missing receiver, depth
// overflow) — consumers must drop the effect, which is conservative.
func SubstituteKey(info *types.Info, callerOwn map[*types.Var]int, call *ast.CallExpr, k Key) (Key, bool) {
	if k.Param == GlobalParam {
		return k, true
	}
	var arg ast.Expr
	if k.Param == ReceiverParam {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return Key{}, false
		}
		arg = sel.X
	} else {
		if k.Param >= len(call.Args) {
			return Key{}, false
		}
		arg = call.Args[k.Param]
	}
	base, path := splitChain(arg)
	if base == nil {
		return Key{}, false
	}
	if k.Path != "" {
		path = append(path, strings.Split(k.Path, ".")...)
	}
	return classifyChain(info, callerOwn, base, path)
}
