package summary

import (
	"go/ast"
	"go/token"
	"go/types"
	"maps"

	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/cfg"
	"repro/internal/analysis/dataflow"
)

// mutexMethods duplicates the recognition table of the intraprocedural
// lock machinery (internal/analysis/locks.go). The duplication is the
// price of the layering: analysis imports summary, so summary cannot
// import analysis. TryLock/TryRLock are ignored for the same reason as
// there — their success is conditional.
var mutexMethods = map[string]struct{ lock, read bool }{
	"(*sync.Mutex).Lock":      {lock: true},
	"(*sync.Mutex).Unlock":    {},
	"(*sync.RWMutex).Lock":    {lock: true},
	"(*sync.RWMutex).Unlock":  {},
	"(*sync.RWMutex).RLock":   {lock: true, read: true},
	"(*sync.RWMutex).RUnlock": {read: true},
}

// netID names one lock (key + read side) in a net-balance fact.
type netID struct {
	key  Key
	read bool
}

// poisonDepth marks a key whose exit depth differs between paths: the
// net effect is path-dependent, so no caller-visible delta is claimed.
const poisonDepth = int(-1) << 30

// computeLocks fills sum.MayAcquire and sum.NetHeld from n's body and
// the current summaries of its callees.
//
// MayAcquire: every direct, non-deferred mutex Lock/RLock whose receiver
// classifies to a key, plus every callee MayAcquire entry (over Call and
// Defer edges — both run within the caller's activation) substituted
// into n's terms. Go edges are excluded: the spawned body runs
// asynchronously.
//
// NetHeld: per key, the hold-depth change between call entry and return,
// computed by a forward must-analysis over the body's CFG. Depths start
// at zero (and may go negative: an unlock() helper nets -1); direct
// non-deferred Locks count +1, Unlocks -1 whether deferred or not (a
// deferred unlock has run by the time the caller resumes), deferred
// Locks are ignored (pathological, flagged by lockbalance); callee
// NetHeld deltas apply at their call sites. A key whose depth differs
// between two paths joining — or between the paths reaching return — is
// poisoned and claims nothing, so branchy lock/release code (early
// returns that unlock first) summarizes to zero effect rather than a
// bogus net.
func (s *Set) computeLocks(n *callgraph.Node, own map[*types.Var]int, sum *Summary) {
	info := n.Unit.Info
	body := n.Body()

	// MayAcquire: linear walk in source order.
	type acqID struct {
		key  Key
		read bool
	}
	seen := make(map[acqID]bool)
	mayAdd := func(a Acquire) {
		id := acqID{a.Key, a.Read}
		if !seen[id] {
			seen[id] = true
			sum.MayAcquire = append(sum.MayAcquire, a)
		}
	}
	var walk func(n ast.Node, deferred bool)
	walk = func(node ast.Node, deferred bool) {
		ast.Inspect(node, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				if ast.Node(m.Body) != node {
					return false // its own node; effects flow through edges
				}
			case *ast.GoStmt:
				return false // asynchronous
			case *ast.DeferStmt:
				if lit, ok := ast.Unparen(m.Call.Fun).(*ast.FuncLit); ok {
					walk(lit.Body, true)
				} else {
					walk(m.Call, true)
				}
				return false
			case *ast.CallExpr:
				if deferred {
					return true // a deferred acquire is not "during the call"
				}
				if id, read, ok := s.directMutexOp(info, own, m); ok {
					if isLockName(info, s.graph.CalleeFuncAt(m)) {
						mayAdd(Acquire{Key: id.key, Read: read, Pos: m.Pos()})
					}
					return true
				}
				if e := s.graph.EdgeAt(m); e != nil && e.Kind != callgraph.Go {
					for _, a := range s.byNode[e.Callee].MayAcquire {
						if key, ok := SubstituteKey(info, own, m, a.Key); ok {
							via := a.Via
							if via == "" {
								via = e.Callee.Name()
							}
							mayAdd(Acquire{Key: key, Read: a.Read, Pos: a.Pos, Via: via})
						}
					}
				}
			}
			return true
		})
	}
	walk(body, false)

	// NetHeld: must-analysis over the CFG. First positions, for messages.
	firstPos := make(map[netID]token.Pos)
	posOf := func(id netID, pos token.Pos) token.Pos {
		if p, ok := firstPos[id]; ok {
			return p
		}
		firstPos[id] = pos
		return pos
	}

	g := cfg.New(body)
	join := func(a, b map[netID]int) map[netID]int {
		if a == nil {
			return b
		}
		if b == nil {
			return a
		}
		out := make(map[netID]int, len(a)+len(b))
		for id, v := range a {
			if bv := b[id]; bv != v {
				out[id] = poisonDepth
			} else {
				out[id] = v
			}
		}
		for id, v := range b {
			if _, ok := a[id]; !ok {
				if v != 0 {
					out[id] = poisonDepth
				}
			}
		}
		return out
	}
	res := dataflow.Solve(g, dataflow.Problem[map[netID]int]{
		Dir:      dataflow.Forward,
		Boundary: func() map[netID]int { return map[netID]int{} },
		Init:     func() map[netID]int { return nil }, // top: unreachable
		Join:     join,
		Transfer: func(blk *cfg.Block, in map[netID]int) map[netID]int {
			if in == nil {
				return nil
			}
			out := maps.Clone(in)
			for _, stmt := range blk.Nodes {
				for _, op := range s.nodeNetOps(n, own, stmt) {
					if out[op.id] == poisonDepth {
						continue
					}
					next := out[op.id] + op.delta
					if next == 0 {
						delete(out, op.id)
					} else {
						out[op.id] = next
					}
					posOf(op.id, op.pos)
				}
			}
			return out
		},
		Equal: func(a, b map[netID]int) bool {
			if (a == nil) != (b == nil) {
				return false
			}
			return maps.Equal(a, b)
		},
	})

	exit := res.In[g.Exit]
	var order []netID
	seenID := make(map[netID]bool)
	// Emit in first-occurrence source order for determinism.
	collect := func(blk *cfg.Block) {
		for _, stmt := range blk.Nodes {
			for _, op := range s.nodeNetOps(n, own, stmt) {
				if !seenID[op.id] {
					seenID[op.id] = true
					order = append(order, op.id)
				}
			}
		}
	}
	for _, blk := range g.Blocks {
		collect(blk)
	}
	for _, id := range order {
		d := exit[id]
		if d == 0 || d == poisonDepth {
			continue
		}
		sum.NetHeld = append(sum.NetHeld, HeldDelta{Key: id.key, Read: id.read, Delta: d, Pos: firstPos[id]})
	}
}

// netOp is one caller-visible depth change at a point in the body.
type netOp struct {
	id    netID
	delta int
	pos   token.Pos
}

// nodeNetOps collects the net depth changes of one CFG node: direct
// mutex operations (deferred unlocks included, deferred locks ignored),
// and callee NetHeld deltas substituted at call sites. Nested literals
// and go statements are opaque, except deferred literals, whose bodies
// run in this activation at return.
func (s *Set) nodeNetOps(n *callgraph.Node, own map[*types.Var]int, node ast.Node) []netOp {
	info := n.Unit.Info
	var out []netOp
	var walk func(m ast.Node, deferred bool)
	walk = func(root ast.Node, deferred bool) {
		ast.Inspect(root, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.DeferStmt:
				if lit, ok := ast.Unparen(m.Call.Fun).(*ast.FuncLit); ok {
					walk(lit.Body, true)
				} else {
					walk(m.Call, true)
				}
				return false
			case *ast.FuncLit:
				if ast.Node(m.Body) != root {
					return false
				}
			case *ast.GoStmt:
				return false
			case *ast.CallExpr:
				if id, _, ok := s.directMutexOp(info, own, m); ok {
					lock := isLockName(info, s.graph.CalleeFuncAt(m))
					switch {
					case lock && !deferred:
						out = append(out, netOp{id: id, delta: +1, pos: m.Pos()})
					case !lock:
						out = append(out, netOp{id: id, delta: -1, pos: m.Pos()})
					}
					return true
				}
				if e := s.graph.EdgeAt(m); e != nil && e.Kind != callgraph.Go {
					for _, d := range s.byNode[e.Callee].NetHeld {
						if key, ok := SubstituteKey(info, own, m, d.Key); ok {
							out = append(out, netOp{id: netID{key, d.Read}, delta: d.Delta, pos: m.Pos()})
						}
					}
				}
			}
			return true
		})
	}
	if ds, ok := node.(*ast.DeferStmt); ok {
		if lit, ok := ast.Unparen(ds.Call.Fun).(*ast.FuncLit); ok {
			walk(lit.Body, true)
		} else {
			walk(ds.Call, true)
		}
		return out
	}
	walk(node, false)
	return out
}

// directMutexOp recognises a direct sync mutex method call and
// classifies its receiver to a key. The bool results are (read, ok).
func (s *Set) directMutexOp(info *types.Info, own map[*types.Var]int, call *ast.CallExpr) (netID, bool, bool) {
	fn := s.graph.CalleeFuncAt(call)
	if fn == nil {
		return netID{}, false, false
	}
	mm, ok := mutexMethods[fn.FullName()]
	if !ok {
		return netID{}, false, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return netID{}, false, false
	}
	base, path := splitChain(sel.X)
	key, ok := classifyChain(info, own, base, path)
	if !ok {
		return netID{}, false, false
	}
	return netID{key: key, read: mm.read}, mm.read, true
}

// isLockName reports whether fn is a Lock/RLock (vs Unlock/RUnlock).
func isLockName(info *types.Info, fn *types.Func) bool {
	if fn == nil {
		return false
	}
	return mutexMethods[fn.FullName()].lock
}
