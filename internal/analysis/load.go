package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module (test files
// included: in-package tests join the primary unit, external _test
// packages load as their own unit).
type Package struct {
	// Path is the import path ("_test"-suffixed for external test pkgs).
	Path string
	// Dir is the absolute directory.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// unit is a parse unit prior to type-checking.
type unit struct {
	path    string // import path used for resolution (primary) or display (xtest)
	dir     string
	files   []string
	imports []string // module-internal import paths this unit depends on
	xtest   bool
}

// Load parses and type-checks the packages of the module rooted at root.
// dirs selects package directories (absolute or root-relative); empty
// means every package under root. Packages are returned in dependency
// order (imported before importer), which Run relies on for facts.
//
// Everything here is standard library: go/build selects files honouring
// build constraints, go/parser + go/types check them, and stdlib imports
// resolve through go/importer (gc export data, falling back to compiling
// from GOROOT source). Module-internal imports resolve against the
// packages loaded in the same call, so the module never needs installed
// export data.
func Load(root string, dirs []string) ([]*Package, error) {
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	if len(dirs) == 0 {
		dirs, err = packageDirs(root)
		if err != nil {
			return nil, err
		}
	}

	buildCtx := build.Default
	var units []*unit
	for _, dir := range dirs {
		abs := dir
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(root, dir)
		}
		bp, err := buildCtx.ImportDir(abs, 0)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				continue
			}
			return nil, fmt.Errorf("analysis: %s: %w", abs, err)
		}
		ip := importPathFor(root, modPath, abs)
		primary := &unit{
			path:    ip,
			dir:     abs,
			files:   append(append([]string(nil), bp.GoFiles...), bp.TestGoFiles...),
			imports: internalImports(modPath, append(bp.Imports, bp.TestImports...)),
		}
		units = append(units, primary)
		if len(bp.XTestGoFiles) > 0 {
			units = append(units, &unit{
				path:    ip + "_test",
				dir:     abs,
				files:   append([]string(nil), bp.XTestGoFiles...),
				imports: internalImports(modPath, append(bp.XTestImports, ip)),
				xtest:   true,
			})
		}
	}

	order, err := toposort(units)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := newStdImporter(fset)
	checked := make(map[string]*types.Package)
	var out []*Package
	for _, u := range order {
		pkg, err := checkUnit(fset, u, &moduleImporter{std: imp, pkgs: checked})
		if err != nil {
			return nil, err
		}
		if !u.xtest {
			checked[u.path] = pkg.Types
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir parses and type-checks the single package in dir (every .go
// file, test or not, as one unit) with only standard-library imports —
// the loader the analyzer testdata corpora use.
func LoadDir(dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	sort.Strings(files)
	fset := token.NewFileSet()
	u := &unit{path: filepath.Base(dir), dir: dir, files: files}
	return checkUnit(fset, u, newStdImporter(fset))
}

// checkUnit parses and type-checks one unit.
func checkUnit(fset *token.FileSet, u *unit, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range u.files {
		f, err := parser.ParseFile(fset, filepath.Join(u.dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(u.path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", u.path, err)
	}
	return &Package{Path: u.path, Dir: u.dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// modulePath reads the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("analysis: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s/go.mod", root)
}

// packageDirs walks root collecting every directory holding .go files,
// skipping testdata, hidden directories, and vendored trees.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	// WalkDir visits files of one dir contiguously, but be safe: dedupe.
	out := dirs[:0]
	for i, d := range dirs {
		if i == 0 || dirs[i-1] != d {
			out = append(out, d)
		}
	}
	return out, nil
}

// importPathFor maps an absolute directory to its import path.
func importPathFor(root, modPath, dir string) string {
	rel, err := filepath.Rel(root, dir)
	if err != nil || rel == "." {
		return modPath
	}
	return modPath + "/" + filepath.ToSlash(rel)
}

// internalImports filters an import list down to module-internal paths.
func internalImports(modPath string, imports []string) []string {
	var out []string
	seen := make(map[string]bool)
	for _, ip := range imports {
		if (ip == modPath || strings.HasPrefix(ip, modPath+"/")) && !seen[ip] {
			seen[ip] = true
			out = append(out, ip)
		}
	}
	sort.Strings(out)
	return out
}

// toposort orders units so every unit follows the units it imports.
func toposort(units []*unit) ([]*unit, error) {
	byPath := make(map[string]*unit, len(units))
	for _, u := range units {
		if !u.xtest {
			byPath[u.path] = u
		}
	}
	sort.Slice(units, func(i, j int) bool { return units[i].path < units[j].path })
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[*unit]int)
	var order []*unit
	var visit func(u *unit, chain []string) error
	visit = func(u *unit, chain []string) error {
		switch color[u] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("analysis: import cycle through %s (%s)", u.path, strings.Join(chain, " -> "))
		}
		color[u] = grey
		for _, ip := range u.imports {
			dep, ok := byPath[ip]
			if !ok || dep == u {
				continue
			}
			if err := visit(dep, append(chain, u.path)); err != nil {
				return err
			}
		}
		color[u] = black
		order = append(order, u)
		return nil
	}
	for _, u := range units {
		if err := visit(u, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves module-internal imports from already-checked
// packages and delegates everything else to the standard importer.
type moduleImporter struct {
	std  types.Importer
	pkgs map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.pkgs[path]; ok {
		return p, nil
	}
	return m.std.Import(path)
}

// stdImporter resolves standard-library packages: export data first (fast)
// with a fallback that type-checks GOROOT source, so the driver works on
// toolchains that ship no precompiled stdlib.
type stdImporter struct {
	gc    types.Importer
	src   types.Importer
	fset  *token.FileSet
	cache map[string]*types.Package
}

func newStdImporter(fset *token.FileSet) *stdImporter {
	return &stdImporter{
		gc:    importer.ForCompiler(fset, "gc", nil),
		fset:  fset,
		cache: make(map[string]*types.Package),
	}
}

func (s *stdImporter) Import(path string) (*types.Package, error) {
	if p, ok := s.cache[path]; ok {
		return p, nil
	}
	p, err := s.gc.Import(path)
	if err != nil {
		if s.src == nil {
			s.src = importer.ForCompiler(s.fset, "source", nil)
		}
		p, err = s.src.Import(path)
		if err != nil {
			return nil, err
		}
	}
	s.cache[path] = p
	return p, nil
}
