package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicMix enforces the all-or-nothing rule of sync/atomic: a variable
// or field that is accessed through atomic operations anywhere in the
// module must never be accessed non-atomically. A plain load can observe
// a torn or stale value next to atomic.AddInt64 traffic, and a plain
// store silently discards concurrent atomic updates — races the race
// detector only catches when the schedule cooperates.
//
// Atomic sites are collected module-wide into the cross-package facts
// (Facts.AddPackage records every &x handed to a sync/atomic function),
// so a field made atomic in one package is protected in all of them.
// The typed atomic wrappers (atomic.Int64 and friends) need no analyzer:
// their API admits no non-atomic access.
//
// Initialization before any goroutine exists is a legitimate non-atomic
// write; annotate such sites with `// lint:checked` stating that no
// concurrent access is possible yet.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "a variable accessed via sync/atomic must never be accessed non-atomically",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) error {
	info := pass.Info
	// Spans of atomic calls in this package: uses inside them are the
	// sanctioned accesses.
	var atomicSpans [][2]token.Pos
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && isAtomicCall(info, call) {
				atomicSpans = append(atomicSpans, [2]token.Pos{call.Pos(), call.End()})
			}
			return true
		})
	}
	sanctioned := func(pos token.Pos) bool {
		for _, s := range atomicSpans {
			if s[0] <= pos && pos <= s[1] {
				return true
			}
		}
		return false
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := info.Uses[id].(*types.Var)
			if !ok {
				return true
			}
			site, atomicElsewhere := pass.Facts.AtomicSite(v)
			if !atomicElsewhere || sanctioned(id.Pos()) {
				return true
			}
			pass.Report(id.Pos(), "%s is accessed with sync/atomic (e.g. at %s) and must not be accessed non-atomically", id.Name, site)
			return true
		})
	}
	return nil
}

// isAtomicCall reports whether call invokes a sync/atomic package-level
// function (AddInt64, LoadUint32, StorePointer, CompareAndSwap...).
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic" && !strings.Contains(fn.FullName(), "(")
}

// atomicTarget resolves the first argument of an atomic call (&x) to the
// variable or field it addresses, or nil.
func atomicTarget(info *types.Info, call *ast.CallExpr) *types.Var {
	if len(call.Args) == 0 {
		return nil
	}
	un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil
	}
	switch e := ast.Unparen(un.X).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if v, ok := fieldVar(info, e); ok {
			return v
		}
	}
	return nil
}
