//go:build graphner_debug

package assert

import (
	"math"
	"sync"
	"testing"
)

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic, got none", name)
		}
	}()
	fn()
}

func TestCSRMonotonicDebug(t *testing.T) {
	CSRMonotonic([]int32{0, 2, 2, 5}, 5, "ok")
	CSRMonotonic(nil, 0, "empty")
	mustPanic(t, "decreasing", func() { CSRMonotonic([]int32{0, 3, 2, 5}, 5, "bad") })
	mustPanic(t, "bad start", func() { CSRMonotonic([]int32{1, 2, 5}, 5, "bad") })
	mustPanic(t, "bad end", func() { CSRMonotonic([]int32{0, 2, 4}, 5, "bad") })
	mustPanic(t, "empty with edges", func() { CSRMonotonic(nil, 3, "bad") })
}

func TestRowsSumToOneDebug(t *testing.T) {
	RowsSumToOne([]float64{0.25, 0.75, 0.5, 0.5}, 2, "ok")
	mustPanic(t, "bad row", func() { RowsSumToOne([]float64{0.25, 0.75, 0.6, 0.5}, 2, "bad") })
	mustPanic(t, "bad rowlen", func() { RowsSumToOne([]float64{1}, 0, "bad") })
}

func TestStochasticDebug(t *testing.T) {
	if !Stochastic([]float64{0.25, 0.75, 0.5, 0.5}, 2) {
		t.Error("stochastic matrix not recognized")
	}
	if Stochastic([]float64{0.25, 0.7}, 2) {
		t.Error("non-stochastic row accepted")
	}
	if Stochastic([]float64{math.NaN(), 1}, 2) {
		t.Error("NaN row accepted")
	}
	if Stochastic([]float64{1, 1, 1}, 2) {
		t.Error("ragged matrix accepted")
	}
}

func TestSweepGuardDebug(t *testing.T) {
	var g SweepGuard

	// Happy path: begin, concurrent checks from workers, end; twice over
	// to confirm the guard is reusable.
	for epoch := 0; epoch < 2; epoch++ {
		tok := g.BeginSweep("beliefs")
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				g.CheckSweep(tok, "beliefs")
			}()
		}
		wg.Wait()
		g.EndSweep(tok, "beliefs")
	}

	// A second sweep beginning while one is in flight must panic.
	tok := g.BeginSweep("beliefs")
	mustPanic(t, "concurrent begin", func() { g.BeginSweep("beliefs") })
	// The overlapping Begin moved the version, so the original sweep's
	// check and end must now fail too.
	mustPanic(t, "check after concurrent begin", func() { g.CheckSweep(tok, "beliefs") })
	mustPanic(t, "end after concurrent begin", func() { g.EndSweep(tok, "beliefs") })
}

func TestSweepGuardStaleToken(t *testing.T) {
	var g SweepGuard
	tok := g.BeginSweep("beliefs")
	g.EndSweep(tok, "beliefs")
	// A token from a finished epoch must not validate in the next one.
	tok2 := g.BeginSweep("beliefs")
	mustPanic(t, "stale token", func() { g.CheckSweep(tok, "beliefs") })
	g.EndSweep(tok2, "beliefs")
}

func TestNoNaNDebug(t *testing.T) {
	NoNaN([]float64{0, 1, math.Inf(1)}, "ok") // Inf is not NaN
	mustPanic(t, "nan", func() { NoNaN([]float64{0, math.NaN()}, "bad") })
	NoNaNRows([][]float64{{0, 1}, nil, {2}}, "ok")
	mustPanic(t, "nan rows", func() { NoNaNRows([][]float64{{0}, {math.NaN()}}, "bad") })
}
