//go:build !graphner_debug

// Default-build no-ops: Enabled is a false constant so guarded call
// sites dead-code eliminate, and the empty bodies inline to nothing.
package assert

// Enabled reports whether assertions are compiled in.
const Enabled = false

func CSRMonotonic(off []int32, nEdges int, name string) {}

func Stochastic(flat []float64, rowLen int) bool { return false }

func RowsSumToOne(flat []float64, rowLen int, name string) {}

func NoNaN(flat []float64, name string) {}

func NoNaNRows(rows [][]float64, name string) {}

// SweepGuard is inert in default builds: an empty struct whose methods
// compile to nothing.
type SweepGuard struct{}

func (g *SweepGuard) BeginSweep(name string) uint64        { return 0 }
func (g *SweepGuard) CheckSweep(token uint64, name string) {}
func (g *SweepGuard) EndSweep(token uint64, name string)   {}
