//go:build !graphner_debug

package assert

import (
	"math"
	"testing"
)

// In default builds every check must be an inert no-op: Enabled is false
// and violated invariants must not panic.
func TestDisabledIsInert(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled must be false without the graphner_debug tag")
	}
	CSRMonotonic([]int32{5, 3, 1}, 99, "violated")
	RowsSumToOne([]float64{0.9, 0.9}, 2, "violated")
	NoNaN([]float64{math.NaN()}, "violated")
	NoNaNRows([][]float64{{math.NaN()}}, "violated")
	if Stochastic([]float64{0.5, 0.5}, 2) {
		t.Fatal("Stochastic must report false when disabled")
	}
	// SweepGuard degenerates to no-ops: overlapping sweeps, stale and
	// mismatched tokens are all silently accepted.
	var g SweepGuard
	if tok := g.BeginSweep("beliefs"); tok != 0 {
		t.Fatalf("disabled BeginSweep returned %d, want 0", tok)
	}
	g.BeginSweep("beliefs") // overlap: would panic in debug builds
	g.CheckSweep(42, "beliefs")
	g.EndSweep(42, "beliefs")
}
