//go:build graphner_debug

// Package assert is the runtime counterpart of the static analyzers: a
// set of numeric invariant checks compiled in only under the
// graphner_debug build tag. Default builds get the assert_off.go no-ops
// (Enabled is a false constant, so callers' guard blocks dead-code
// eliminate); debug builds panic at the first violated invariant with
// enough context to locate it.
package assert

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/floats"
)

// Enabled reports whether assertions are compiled in.
const Enabled = true

// sumEps tolerates rounding drift accumulated over one row of adds.
const sumEps = 1e-6

// CSRMonotonic checks a CSR offset table: non-decreasing, starting at 0,
// ending at the edge count.
func CSRMonotonic(off []int32, nEdges int, name string) {
	if len(off) == 0 {
		if nEdges != 0 {
			panic(fmt.Sprintf("assert: %s: empty offset table with %d edges", name, nEdges))
		}
		return
	}
	if off[0] != 0 {
		panic(fmt.Sprintf("assert: %s: offsets start at %d, want 0", name, off[0]))
	}
	for i := 1; i < len(off); i++ {
		if off[i] < off[i-1] {
			panic(fmt.Sprintf("assert: %s: offsets decrease at row %d (%d -> %d)", name, i, off[i-1], off[i]))
		}
	}
	if int(off[len(off)-1]) != nEdges {
		panic(fmt.Sprintf("assert: %s: offsets end at %d, want edge count %d", name, off[len(off)-1], nEdges))
	}
}

// Stochastic reports whether every row of the flat row-major matrix sums
// to 1 (within tolerance) with no NaNs — the precondition under which
// RowsSumToOne is meaningful for the caller's data.
func Stochastic(flat []float64, rowLen int) bool {
	if rowLen <= 0 || len(flat)%rowLen != 0 {
		return false
	}
	for r := 0; r < len(flat); r += rowLen {
		var sum float64
		for _, v := range flat[r : r+rowLen] {
			if math.IsNaN(v) {
				return false
			}
			sum += v
		}
		if !floats.EpsEq(sum, 1, sumEps) {
			return false
		}
	}
	return true
}

// RowsSumToOne checks that every row of the flat row-major matrix sums
// to 1 within tolerance.
func RowsSumToOne(flat []float64, rowLen int, name string) {
	if rowLen <= 0 {
		panic(fmt.Sprintf("assert: %s: non-positive row length %d", name, rowLen))
	}
	for r := 0; r < len(flat); r += rowLen {
		var sum float64
		for _, v := range flat[r : r+rowLen] {
			sum += v
		}
		if !floats.EpsEq(sum, 1, sumEps) {
			panic(fmt.Sprintf("assert: %s: row %d sums to %g, want 1", name, r/rowLen, sum))
		}
	}
}

// NoNaN checks a flat vector for NaNs.
func NoNaN(flat []float64, name string) {
	for i, v := range flat {
		if math.IsNaN(v) {
			panic(fmt.Sprintf("assert: %s: NaN at index %d", name, i))
		}
	}
}

// NoNaNRows checks a slice-of-rows matrix for NaNs (nil rows allowed).
func NoNaNRows(rows [][]float64, name string) {
	for i, row := range rows {
		for j, v := range row {
			if math.IsNaN(v) {
				panic(fmt.Sprintf("assert: %s: NaN at row %d col %d", name, i, j))
			}
		}
	}
}

// SweepGuard is a seqlock-style version counter for data that alternates
// between exclusive sweeps (one writer epoch at a time) and quiescence —
// the propagation belief matrix being the canonical case. The counter is
// odd while a sweep is in flight and even when idle; any goroutine can
// cheaply assert mid-sweep (CheckSweep) that no other sweep started or
// finished since its token was issued. The zero value is ready to use.
//
// In default builds the type is an empty struct and every method is an
// inert no-op, so guards cost nothing outside graphner_debug.
type SweepGuard struct {
	v atomic.Uint64
}

// BeginSweep opens a sweep epoch and returns a token for CheckSweep and
// EndSweep. Panics if another sweep is already in flight.
func (g *SweepGuard) BeginSweep(name string) uint64 {
	t := g.v.Add(1)
	if t%2 == 0 {
		panic(fmt.Sprintf("assert: %s: sweep started while another sweep is in flight (version %d)", name, t))
	}
	return t
}

// CheckSweep asserts, from any goroutine, that the sweep identified by
// token is still the current epoch — no concurrent sweep has begun or
// ended since BeginSweep issued it.
func (g *SweepGuard) CheckSweep(token uint64, name string) {
	if v := g.v.Load(); v != token {
		panic(fmt.Sprintf("assert: %s: written concurrently during sweep (version %d, expected %d)", name, v, token))
	}
}

// EndSweep closes the epoch opened by BeginSweep. Panics if the version
// moved in between, meaning another goroutine swept concurrently.
func (g *SweepGuard) EndSweep(token uint64, name string) {
	if t := g.v.Add(1); t != token+1 {
		panic(fmt.Sprintf("assert: %s: written concurrently during sweep (version %d, expected %d)", name, t, token+1))
	}
}
