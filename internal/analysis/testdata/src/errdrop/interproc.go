// interproc.go holds the true positives the pre-interprocedural suite
// provably misses (see TestErrDropOldSuiteBlind): no analyzer of that
// suite models error results at all, and the dead-store case additionally
// needs the CFG — the in-loop store is only read through the back edge.
package errdrop

func flush() error { return nil }

// indirectDrop loses the error through a function value; the fact-based
// callee resolution of the old suite sees only a *types.Var here.
func indirectDrop() {
	f := load
	f() // want "the error result of f is dropped"
}

// drain: the store inside the loop is checked by the next iteration's
// test (clean, via the back edge); the final store falls off the end of
// the function unread.
func drain(n int) {
	var err error
	for i := 0; i < n; i++ {
		if err != nil {
			return
		}
		err = flush()
	}
	err = flush() // want "the error stored in err is never checked"
}
