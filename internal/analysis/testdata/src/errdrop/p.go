// Test corpus for the errdrop analyzer: error returns that vanish.
// Marked lines must produce a diagnostic containing the quoted
// substring; unmarked lines must stay silent.
package errdrop

import (
	"bytes"
	"fmt"
)

func load() error        { return nil }
func save() (int, error) { return 0, nil }
func mkErr() error       { return fmt.Errorf("boom") }
func use(int)            {}

// dropped: the call statement swallows the only result.
func dropped() {
	load() // want "the error result of load is dropped"
}

// blankSingle and blankMulti discard the error explicitly; explicit is
// still dropped.
func blankSingle() {
	_ = load() // want "the error result of load is discarded as _"
}

func blankMulti() int {
	n, _ := save() // want "the error result of save is discarded as _"
	return n
}

// deadOverwrite: the first store is killed by the second before any read.
func deadOverwrite() error {
	err := load() // want "the error stored in err is never checked"
	err = load()
	return err
}

// modal is the branch-sensitive true positive: the err assigned on the
// b-branch falls off that path unread, while the fall-through store is
// checked.
func modal(b bool) error {
	var err error
	if b {
		err = load() // want "the error stored in err is never checked"
		return nil
	}
	err = load()
	return err
}

// branchChecked is the branch-sensitive clean case: one path reads the
// store, so the may-liveness keeps it.
func branchChecked(b bool) error {
	err := load()
	if b {
		return err
	}
	return nil
}

// lastWins: the first err is overwritten before any path reads it; the
// second survives to the return.
func lastWins() error {
	n, err := save() // want "the error stored in err is never checked"
	use(n)
	_, err = save()
	return err
}

// shadowed: the inner := creates a second err; the outer one, read at the
// final return, is never set on the b path.
func shadowed(b bool) error {
	var err error
	if b {
		n, err := save() // want "shadows an error variable"
		if err != nil {
			return err
		}
		use(n)
	}
	return err
}

// shadowHarmless re-binds err in the if-init scope but nothing reads the
// outer one afterwards, so the two cannot be confused.
func shadowHarmless() error {
	err := load()
	if err != nil {
		return err
	}
	if _, err := save(); err != nil {
		return mkErr()
	}
	return nil
}

// infallible writers are exempt by contract.
func format(x int) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%d", x)
	b.WriteString("!")
	return b.String()
}

// warm is the annotated false positive: a best-effort prefill whose
// failure costs latency, not correctness.
func warm() {
	load() // lint:checked errdrop: cache warm is best-effort; a failed warm only costs a recompute
}
