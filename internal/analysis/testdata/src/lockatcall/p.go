// Test corpus for the lockatcall analyzer: calling into a function that
// may acquire a mutex the caller already holds. Marked lines must
// produce a diagnostic containing the quoted substring; unmarked lines
// must stay silent.
package lockatcall

import "sync"

type server struct {
	mu sync.Mutex
	n  int
}

// bump is individually balanced — invisible to any per-body check.
func (s *server) bump() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

// branchy holds the lock on one path only: the locked call conflicts,
// the unlocked one is clean.
func (s *server) branchy(cond bool) {
	if cond {
		s.mu.Lock()
		s.bump() // want "acquires s.mu"
		s.mu.Unlock()
		return
	}
	s.bump()
}

// sequenced releases before the call: clean.
func (s *server) sequenced() int {
	s.mu.Lock()
	v := s.n
	s.mu.Unlock()
	s.bump()
	return v
}

// crossInstance locks its own mutex but calls into a different server:
// distinct keys, clean.
func (s *server) crossInstance(t *server) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t.bump()
}

type cache struct {
	mu sync.RWMutex
	m  map[string]int
}

func (c *cache) get(k string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.m[k]
}

// readRead: a read-acquiring callee under a read hold is admitted.
func (c *cache) readRead(k string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.get(k) + 1
}

// writeThenRead: RLock blocks behind the write hold the caller owns.
func (c *cache) writeThenRead(k string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.get(k) // want "acquires c.mu"
}

func (c *cache) rebuild() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = map[string]int{}
}

// readThenWrite: a write-acquiring callee behind the caller's read hold
// wedges against it.
func (c *cache) readThenWrite() {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.rebuild() // want "acquires c.mu"
}

// bumpIf only locks when the caller did not: MayAcquire is
// control-blind, so the locked-path call below is the analyzer's
// documented false positive.
func (s *server) bumpIf(locked bool) {
	if !locked {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	s.n++
}

func (s *server) bumpLocked() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bumpIf(true) // lint:checked lockatcall: bumpIf(true) takes the already-locked branch; the summary cannot see the flag
}
