// interproc.go holds the true positives the intraprocedural suite
// provably misses: every body below is individually lock-balanced, so
// the pre-summary analyzers have nothing to object to (see
// TestLockAtCallOldSuiteBlind), while the deadlock only exists across
// the call edge.
package lockatcall

// update holds s.mu across a call to bump, which locks s.mu itself:
// the goroutine deadlocks on its own mutex.
func (s *server) update() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bump() // want "acquires s.mu"
}

// relay adds a hop: the acquisition reaches audit only transitively,
// through relay's summary.
func (s *server) relay() {
	s.bump()
}

func (s *server) audit() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.relay() // want "acquires s.mu"
	return s.n
}
