// Test corpus for the poolescape analyzer. Marked lines must produce a
// diagnostic containing the quoted substring; unmarked lines must stay
// silent.
package poolescape

import "sync"

type scratch struct{ buf []float64 }

var pool = sync.Pool{New: func() any { return new(scratch) }}

type holder struct{ sc *scratch }

var global *scratch

// acquire is a provider: returning a pooled value marks it a pool source,
// not a violation.
func acquire() *scratch { return pool.Get().(*scratch) }

// release is a releaser: its callers' arguments count as Put.
func release(sc *scratch) { pool.Put(sc) }

func useAfterDirectPut() int {
	sc := pool.Get().(*scratch)
	pool.Put(sc)
	return len(sc.buf) // want "used after being returned"
}

func useAfterHelperRelease() {
	sc := acquire()
	release(sc)
	sc.buf[0] = 1 // want "used after being returned"
}

func doublePut() {
	sc := acquire()
	release(sc)
	release(sc) // want "used after being returned"
}

func deferredPutIsFine() int {
	sc := pool.Get().(*scratch)
	defer pool.Put(sc)
	return len(sc.buf)
}

func deferredHelperIsFine() int {
	sc := acquire()
	defer release(sc)
	return len(sc.buf)
}

func useBeforePutIsFine() int {
	sc := acquire()
	n := len(sc.buf)
	release(sc)
	return n
}

func storeInField(h *holder) {
	sc := acquire()
	h.sc = sc // want "struct field"
}

func storeInGlobal() {
	sc := acquire()
	global = sc // want "package-level variable"
}

func storeInComposite() *holder {
	sc := acquire()
	return &holder{sc: sc} // want "composite literal"
}

func storeInSlice(dst []*scratch) {
	sc := acquire()
	dst[0] = sc // want "indexed container"
}

func goroutineCapture() {
	sc := acquire()
	go func() { _ = sc.buf }() // want "captured by a goroutine"
	release(sc)
}

func goroutineOwnsValue(sc2 chan *scratch) {
	sc := acquire()
	// The goroutine releases the value itself; the enclosing function
	// performs no Put, so the capture is an ownership transfer, not a race.
	go func() {
		sc.buf = sc.buf[:0]
		release(sc)
	}()
}

func aliasedUseAfterPut() int {
	sc := acquire()
	alias := sc
	release(alias)
	return len(sc.buf) // want "used after being returned"
}
