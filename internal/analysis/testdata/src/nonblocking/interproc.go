// Transitive contract violations: each body below is individually
// lock-balanced, so the pre-contract suite is provably silent on this
// file (TestNonBlockingOldSuiteBlind); the blocking acquire is visible
// only through the call chain.
package nonblocking

import "sync"

type store struct {
	mu   sync.Mutex
	vals map[string]int
}

// lockedGet is lock-balanced but may block on the mutex.
func (s *store) lockedGet(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vals[k]
}

// relay forwards: it carries MayBlock only transitively.
func (s *store) relay(k string) int {
	return s.lockedGet(k)
}

//graphner:nonblocking
func (s *store) deepRead(k string) int {
	return s.relay(k) // want "store.deepRead → store.relay → store.lockedGet"
}
