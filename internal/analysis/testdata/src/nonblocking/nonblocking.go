// Corpus for the nonblocking contract checker: channel operations,
// selects with and without default, blocking stdlib calls, goroutine
// exclusion, and an annotated false positive.
package nonblocking

import (
	"io"
	"sync"
	"time"
)

//graphner:nonblocking
func sends(ch chan int) {
	ch <- 1 // want "a channel send may block"
}

//graphner:nonblocking
func recvs(ch chan int) int {
	return <-ch // want "a channel receive may block"
}

// tryRecv is clean: every channel operation is a clause of a select
// with a default case.
//
//graphner:nonblocking
func tryRecv(ch chan int) (int, bool) {
	select {
	case v := <-ch:
		return v, true
	default:
		return 0, false
	}
}

//graphner:nonblocking
func waits(ch chan int) int {
	select { // want "select without a default case may block"
	case v := <-ch:
		return v
	}
}

//graphner:nonblocking
func locks(mu *sync.Mutex) {
	mu.Lock() // want "may block"
	mu.Unlock()
}

//graphner:nonblocking
func joins(wg *sync.WaitGroup) {
	wg.Wait() // want "WaitGroup"
}

//graphner:nonblocking
func sleeps() {
	time.Sleep(time.Millisecond) // want "time.Sleep blocks"
}

//graphner:nonblocking
func reads(r io.Reader, buf []byte) (int, error) {
	return io.ReadFull(r, buf) // want "io.ReadFull"
}

//graphner:nonblocking
func viaFunc(f func()) {
	f() // want "unresolved callee"
}

func push(ch chan int) { ch <- 1 }

// spawns is clean: the spawned send runs asynchronously and does not
// block the caller.
//
//graphner:nonblocking
func spawns(ch chan int) {
	go push(ch)
}

// False positive, annotated: ch has capacity len(items) by
// construction, so the sends cannot block — but the checker does not
// track channel capacity.
//
//graphner:nonblocking
func fanOut(items []int) chan int {
	ch := make(chan int, len(items))
	for _, v := range items {
		ch <- v // lint:checked nonblocking: ch is buffered with capacity len(items); these sends never block
	}
	return ch
}
