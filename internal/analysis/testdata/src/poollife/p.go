// Test corpus for the poollife analyzer: flow-sensitive pool lifetime.
// Marked lines must produce a diagnostic containing the quoted
// substring; unmarked lines must stay silent.
package poollife

import "sync"

type scratch struct{ buf []float64 }

var pool = sync.Pool{New: func() any { return new(scratch) }}

var keep *scratch

func acquire() *scratch { return pool.Get().(*scratch) }

func release(sc *scratch) { pool.Put(sc) }

// recycle is a releaser only transitively, through release.
func recycle(sc *scratch) { release(sc) }

// mayRelease releases on one branch only: the rejoining use may read
// recycled memory, depending on cond.
func mayRelease(cond bool) float64 {
	sc := acquire()
	if cond {
		release(sc)
	}
	return sc.buf[0] // want "may be used after being returned"
}

// earlyRelease is the branch-sensitive clean case: the releasing path
// returns before the use, so every path reaching the use still owns sc.
// (The lexical use-after-Put rule in poolescape cannot tell these two
// shapes apart.)
func earlyRelease(cond bool) float64 {
	sc := acquire()
	if cond {
		release(sc)
		return 0
	}
	v := sc.buf[0]
	release(sc)
	return v
}

func doubleRelease(cond bool) {
	sc := acquire()
	if cond {
		release(sc)
	}
	release(sc) // want "returned to its sync.Pool twice"
}

func viaTransitive() float64 {
	sc := acquire()
	recycle(sc)
	return sc.buf[0] // want "may be used after being returned"
}

func putEscaped() {
	sc := acquire()
	keep = sc
	release(sc) // want "escaped to longer-lived memory"
}

// aliasedRelease: releasing through an alias releases the whole
// ownership class.
func aliasedRelease() float64 {
	sc := acquire()
	alias := sc
	release(alias)
	return sc.buf[0] // want "may be used after being returned"
}

// deferredRelease keeps ownership for the whole body: the Put runs at
// return.
func deferredRelease() float64 {
	sc := acquire()
	defer release(sc)
	return sc.buf[0]
}

// rebindInLoop re-acquires before the back edge, so every iteration
// owns a fresh value and the loop-carried state stays clean.
func rebindInLoop(n int) {
	sc := acquire()
	for i := 0; i < n; i++ {
		sc.buf[0] = float64(i)
		release(sc)
		sc = acquire()
	}
	release(sc)
}

// modalUse trips the may-analysis: the two mode tests are exclusive, so
// the released value is never the one read, but the dataflow joins the
// branches. The annotation records why the report would be false.
func modalUse(mode int) float64 {
	sc := acquire()
	if mode == 0 {
		release(sc)
	}
	if mode != 0 {
		return sc.buf[0] // lint:checked poollife: the mode tests are exclusive; sc is only read on the path that did not release it
	}
	return 0
}
