// interproc.go holds the true positives the intraprocedural suite
// provably misses: TestPoolLifeOldSuiteBlind runs the pre-summary
// analyzers over this package and requires them to stay silent on this
// file, while the poollife markers below must all fire.
package poollife

// indirectPutUse reaches the pool through function values. The
// fact-based resolution behind poolescape sees neither the Get (so sc is
// never pooled to it) nor the Put (an identifier call resolves to a
// variable, not a function); the call graph tracks both bindings.
func indirectPutUse() float64 {
	get := pool.Get
	put := pool.Put
	sc := get().(*scratch)
	put(sc)
	return sc.buf[0] // want "may be used after being returned"
}

// loopCarriedPut releases at the bottom of every iteration without
// re-acquiring: from the second iteration on, the top-of-loop use reads
// recycled memory and the release is a double Put. Lexically the use
// precedes the Put, so the source-order rule in poolescape is blind; the
// CFG back edge is not.
func loopCarriedPut(n int) {
	sc := acquire()
	for i := 0; i < n; i++ {
		sc.buf[0] = float64(i) // want "may be used after being returned"
		release(sc)            // want "returned to its sync.Pool twice"
	}
}
