// Test corpus for the waitgroupbalance analyzer.
package waitgroupbalance

import "sync"

func work() {}

func mustWork() {
	panic("unimplemented")
}

// True positive: Add inside the goroutine races Wait — the spawner can
// reach Wait before any Add runs and return early.
func addInsideGoroutine(items []int) {
	var wg sync.WaitGroup
	for range items {
		go func() {
			wg.Add(1) // want "wg.Add inside the spawned goroutine races Wait"
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// Branch-sensitive true positive: the early return happens before the
// defer registers Done, so that path leaks a WaitGroup count and Wait
// hangs. An AST-only "closure contains wg.Done" check passes this; the
// must-analysis over the CFG does not.
func earlyReturnSkipsDone(jobs []int) {
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j int) { // want "goroutine can exit without calling wg.Done on some path"
			if j < 0 {
				return
			}
			defer wg.Done()
			work()
		}(j)
	}
	wg.Wait()
}

// Panic-sensitive true positive: the panic path exits the goroutine
// before the defer is registered.
func panicBeforeDefer(bad bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want "goroutine can exit without calling wg.Done on some path"
		if bad {
			panic("bad")
		}
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// Negative: defer-first is the idiom — Done discharges every exit path,
// panics included.
func balanced(jobs []int) {
	var wg sync.WaitGroup
	for range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mustWork()
		}()
	}
	wg.Wait()
}

// Negative: explicit Done on every path, no defer needed.
func doneOnAllPaths(ok bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		if ok {
			work()
			wg.Done()
			return
		}
		wg.Done()
	}()
	wg.Wait()
}

// Negative: Done through a deferred literal.
func deferredLiteral() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer func() {
			wg.Done()
		}()
		work()
	}()
	wg.Wait()
}

// Annotated false positive: Done runs via a cleanup closure invoked on
// every path, but the flow analysis does not interpret calls through
// function values.
func doneViaClosure() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // lint:checked cleanup() runs wg.Done on the only path; the analysis cannot see through the closure call
		cleanup := func() { wg.Done() }
		work()
		cleanup()
	}()
	wg.Wait()
}
