// Corpus for the effect-summary fixpoint: lock helpers, pool plumbing
// and nondeterminism taints, each shaped to exercise one summary field.
package summaryt

import "sync"

var pool = sync.Pool{New: func() any { return new([]byte) }}

type server struct {
	mu    sync.RWMutex
	state struct{ mu sync.Mutex }
	n     float64
}

// lock/unlock helpers: NetHeld +1 / -1 on the receiver's mutex.
func (s *server) lock() { s.mu.Lock() }

func (s *server) unlock() { s.mu.Unlock() }

// rlock acquires the read side.
func (s *server) rlock() { s.mu.RLock() }

// balanced acquires and releases: MayAcquire yes, NetHeld no.
func (s *server) balanced() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}

// viaHelper acquires transitively through lock(): MayAcquire propagates
// with the receiver substituted, NetHeld cancels against the deferred
// direct unlock.
func (s *server) viaHelper() {
	s.lock()
	defer s.mu.Unlock()
}

// nested reaches a parameter's inner mutex: the key substitutes to
// arg0.state.mu in callers.
func nested(s *server) { s.state.mu.Lock() }

// spawned locks only inside a goroutine: asynchronous, no summary
// effect.
func (s *server) spawned() {
	go func() {
		s.mu.Lock()
		s.mu.Unlock()
	}()
}

// acquire returns a pooled value through the raw Get.
func acquire() *[]byte { return pool.Get().(*[]byte) }

// acquireVia aliases through a local before returning.
func acquireVia() *[]byte {
	buf := acquire()
	return buf
}

// release puts its parameter back.
func release(buf *[]byte) { pool.Put(buf) }

// releaseDeferred puts at return: still caller-visible.
func releaseDeferred(buf *[]byte) {
	defer release(buf)
}

// releaseRecv is a receiver release.
type scratch struct{ b []byte }

func (sc *scratch) release() { pool.Put(sc) }

// releaseVia releases the receiver through the helper.
func releaseVia(sc *scratch) { sc.release() }

// sumMap folds map values in iteration order: result 0 MapOrder.
func sumMap(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}

// first returns whichever entry iteration visits first: both results
// MapOrder.
func first(m map[string]float64) (string, float64) {
	for k, v := range m {
		return k, v
	}
	return "", 0
}

// countMap folds a loop-invariant value: deterministic, no taint.
func countMap(m map[string]float64) float64 {
	n := 0.0
	for range m {
		n += 1.0
	}
	return n
}

// sumVia launders the taint through a callee and a local.
func sumVia(m map[string]float64) float64 {
	t := sumMap(m)
	return t / 2
}

// gather folds goroutine contributions: GoOrder despite the mutex.
func gather(xs []float64) float64 {
	var mu sync.Mutex
	var wg sync.WaitGroup
	total := 0.0
	for _, x := range xs {
		wg.Add(1)
		go func(x float64) {
			defer wg.Done()
			mu.Lock()
			total += x
			mu.Unlock()
		}(x)
	}
	wg.Wait()
	return total
}
