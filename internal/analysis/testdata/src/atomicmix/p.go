// Test corpus for the atomicmix analyzer.
package atomicmix

import (
	"sync/atomic"
)

type hits struct {
	n     int64 // atomically updated — see record
	total int64 // never atomic: plain access is fine
}

func (h *hits) record() {
	atomic.AddInt64(&h.n, 1)
}

// Cross-function true positive: the atomic site lives in record, the
// plain read here. A per-function AST check never connects the two; the
// module-wide facts do.
func (h *hits) snapshot() int64 {
	return h.n // want "n is accessed with sync/atomic"
}

// True positive: a plain store discards concurrent atomic updates.
func (h *hits) reset() {
	h.n = 0 // want "n is accessed with sync/atomic"
}

// Sanctioned accesses: through sync/atomic.
func (h *hits) load() int64 {
	return atomic.LoadInt64(&h.n)
}

func (h *hits) swap(v int64) int64 {
	return atomic.SwapInt64(&h.n, v)
}

// Plain fields stay plain: no findings.
func (h *hits) bump() {
	h.total++
}

var requests int64

func countRequest() {
	atomic.AddInt64(&requests, 1)
}

// Package-level true positive.
func resetRequests() {
	requests = 0 // want "requests is accessed with sync/atomic"
}

func reportRequests() int64 {
	return atomic.LoadInt64(&requests)
}

// Annotated false positive: initialization before the value is shared —
// no goroutine can reach h yet, so the plain store cannot race, but the
// analyzer has no aliasing model to prove that.
func newHits(seed int64) *hits {
	h := &hits{}
	h.n = seed // lint:checked h is not yet published; single-threaded constructor write
	return h
}
