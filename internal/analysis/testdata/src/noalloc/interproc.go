// Transitive contract violations: the allocation sits two resolved
// calls below the annotated entry point, so the finding must carry the
// full witness chain. The pre-contract suite has no notion of
// allocation and stays provably silent on this file
// (TestNoAllocOldSuiteBlind).
package noalloc

// grow is the concrete allocation, two frames below the contract.
func grow(dst []float64, v float64) []float64 {
	return append(dst, v)
}

// mid forwards: it carries MayAlloc only transitively.
func mid(dst []float64, v float64) []float64 {
	return grow(dst, v)
}

//graphner:noalloc
func deepEntry(dst []float64, v float64) []float64 {
	return mid(dst, v) // want "deepEntry → mid → grow → append"
}
