// Corpus for the noalloc contract checker: every direct allocation
// class, the sync.Pool exemption, directives on methods and generic
// functions, the trusted-callee rule, and an annotated false positive.
package noalloc

import (
	"fmt"
	"sync"
)

var pool = sync.Pool{New: func() any { return new([]byte) }}

//graphner:noalloc
func makes(n int) {
	buf := make([]float64, n) // want "make allocates"
	_ = buf
	p := new(int) // want "new allocates"
	_ = p
}

//graphner:noalloc
func appends(dst []int, v int) []int {
	return append(dst, v) // want "append may grow its backing array"
}

//graphner:noalloc
func literals() {
	m := map[int]int{} // want "a map literal allocates"
	_ = m
	s := []int{1, 2} // want "a slice literal allocates"
	_ = s
}

//graphner:noalloc
func strcat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

//graphner:noalloc
func conv(b []byte) string {
	return string(b) // want "converting a byte/rune slice to a string"
}

//graphner:noalloc
func boxing(v float64) any {
	return v // want "boxes"
}

//graphner:noalloc
func closures(x int) func() int {
	return func() int { return x } // want "func literal"
}

func sum(xs ...int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

//graphner:noalloc
func packs() int {
	return sum(1, 2, 3) // want "variadic call packs"
}

//graphner:noalloc
func fmts(err error) error {
	return fmt.Errorf("wrap: %v", err) // want "fmt.Errorf allocates"
}

//graphner:noalloc
func spawns(done chan struct{}) {
	go func() { // want "allocates"
		<-done
	}()
}

func sink(v any) { _ = v }

//graphner:noalloc
func boxArg(x int) {
	sink(x) // want "interface argument boxes"
}

//graphner:noalloc
func viaFunc(f func() int) int {
	return f() // want "unresolved callee"
}

// pooled is clean: sync.Pool.Get/Put are the principled exemption —
// pooled scratch is how the kernels stay allocation-free, and pool
// misuse has its own analyzers.
//
//graphner:noalloc
func pooled() *[]byte {
	buf := pool.Get().(*[]byte)
	pool.Put(buf)
	return buf
}

type counter struct{ n int }

// Directives attach to methods like any other declaration.
//
//graphner:noalloc
func (c *counter) bump() {
	c.n++
	_ = make([]int, 1) // want "make allocates"
}

// And to generic functions.
//
//graphner:noalloc
func pair[T any](a T) []T {
	return []T{a} // want "a slice literal allocates"
}

// trusted is annotated and justifies its own allocation where it
// happens; callers trust the directive instead of re-reporting it.
//
//graphner:noalloc
func trusted() []int {
	return make([]int, 4) // lint:checked noalloc: corpus case — setup allocation justified here, not in callers
}

//graphner:noalloc
func callsTrusted() []int {
	return trusted()
}

// False positive, annotated: the append cannot grow — cap(dst) >=
// len(src) is the caller's contract — but the checker cannot prove
// capacity bounds.
//
//graphner:noalloc
func fill(dst, src []int) []int {
	out := dst[:0]
	for _, v := range src {
		out = append(out, v) // lint:checked noalloc: cap(dst) >= len(src) is the caller's contract; this append never grows
	}
	return out
}
