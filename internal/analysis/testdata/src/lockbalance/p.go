// Test corpus for the lockbalance analyzer.
package lockbalance

import "sync"

var (
	mu sync.Mutex
	rw sync.RWMutex
	v  int
)

func work() {}

// True positive: the early return leaves the mutex held. An AST-only
// check sees both a Lock and an Unlock in the body and passes it; only
// the CFG shows the path that skips the Unlock.
func leakOnEarlyReturn(fail bool) {
	mu.Lock() // want "mu is still held on some path to return"
	if fail {
		return
	}
	mu.Unlock()
}

// True positive: locking a mutex already held on the same path.
func doubleLock() {
	mu.Lock()
	mu.Lock() // want "mu is locked again on a path where it is already held"
	mu.Unlock()
	mu.Unlock()
}

// True positive: unlocking a mutex that no path has locked.
func unlockWithoutLock() {
	mu.Unlock() // want "mu is unlocked on a path where it is not held"
}

// True positive: a deferred unlock in a loop runs at function return,
// so the second iteration self-deadlocks on the Lock.
func deferInLoop(items []int) {
	for range items {
		mu.Lock()         // want "mu is locked again on a path where it is already held"
		defer mu.Unlock() // want "deferred Unlock of mu inside a loop"
	}
}

// Defer-sensitive negatives: the deferred unlock (direct or through a
// literal) discharges the lock on every path, early returns included.
func deferBalanced(fail bool) {
	mu.Lock()
	defer mu.Unlock()
	if fail {
		return
	}
	work()
}

func deferredLiteral() {
	mu.Lock()
	defer func() {
		v++
		mu.Unlock()
	}()
	work()
}

// Panic-sensitive negative: panic unwinds through the defer, so the
// lock is released on the panic path too.
func panicWithDefer(bad bool) {
	mu.Lock()
	defer mu.Unlock()
	if bad {
		panic("bad input")
	}
	work()
}

// Panic-sensitive positive: the panic path escapes before any unlock.
func panicWithoutDefer(bad bool) {
	mu.Lock() // want "mu is still held on some path to return"
	if bad {
		panic("bad input")
	}
	mu.Unlock()
}

// Plain balanced use in a loop: lock and unlock per iteration is fine.
func lockPerIteration(items []int) {
	for range items {
		mu.Lock()
		work()
		mu.Unlock()
	}
}

// RWMutex: repeated RLock is legal; an RLock leak is still a leak.
func doubleRLockOK() int {
	rw.RLock()
	rw.RLock()
	x := v
	rw.RUnlock()
	rw.RUnlock()
	return x
}

func rlockLeak(c bool) int {
	rw.RLock() // want "rw (read lock) is still held on some path to return"
	if c {
		return 0
	}
	x := v
	rw.RUnlock()
	return x
}

// Receiver-qualified keys: the analyzer tracks c.mu, not just mu.
type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) incLeaky(skip bool) {
	c.mu.Lock() // want "c.mu is still held on some path to return"
	if skip {
		return
	}
	c.n++
	c.mu.Unlock()
}

// Annotated false positive: the classic conditional-lock pairing. The
// may-analysis joins the branches to "possibly held" and cannot see
// that both ifs test the same condition, so the deliberate pattern is
// suppressed with an annotation instead of restructured.
func conditionalLock(c bool) {
	if c {
		mu.Lock() // lint:checked both branches test the same c; the pairing below always matches this Lock
	}
	work()
	if c {
		mu.Unlock()
	}
}
