// Test corpus for the naninf analyzer. The analyzer's AppliesTo filter is
// bypassed in tests; this package stands in for internal/propagate and
// internal/crf.
package naninf

import "math"

func unguardedDiv(a, b float64) float64 {
	return a / b // want "float division without a visible guard"
}

func guardedDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func guardedInLoopCond(gamma []float64, kappa float64) []float64 {
	for i := 0; kappa > 0 && i < len(gamma); i++ {
		gamma[i] /= kappa
	}
	return gamma
}

func unguardedCompoundDiv(gamma []float64, kappa float64) {
	for i := range gamma {
		gamma[i] /= kappa // want "float division without a visible guard"
	}
}

func precedingClamp(p float64) float64 {
	if p < 1e-12 {
		p = 1e-12
	}
	return math.Log(p)
}

func enclosingIsInfGuard(x float64) float64 {
	if !math.IsInf(x, -1) {
		return math.Exp(x)
	}
	return 0
}

func unguardedLog(x float64) float64 {
	return math.Log(x) // want "math.Log on an unguarded argument"
}

func unguardedExp(x float64) float64 {
	return math.Exp(x) // want "math.Exp on an unguarded argument"
}

func constArgsFine() float64 {
	return math.Log(2) / 2
}

func intDivFine(a, b int) int {
	return a / b
}

func annotatedLog(x float64) float64 {
	return math.Log(x) // lint:checked x is a sum of exponentials, always >= 1
}
