// Test files are exempt: reference computations fail loudly on NaN.
package naninf

import "math"

func referenceSoftmax(xs []float64) []float64 {
	var z float64
	for _, x := range xs {
		z += math.Exp(x)
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = math.Exp(x) / z
	}
	return out
}
