// Test files are exempt: golden comparisons demand bit identity.
package floatcmp

func goldenCompare(a, b float64) bool {
	return a == b
}
