// Test corpus for the floatcmp analyzer.
package floatcmp

func exactEq(a, b float64) bool {
	return a == b // want "exact =="
}

func exactNeq(a, b float64) bool {
	return a != b // want "exact !="
}

func mixedExpr(a, b, c float64) bool {
	return a+b == c // want "exact =="
}

func float32Too(a, b float32) bool {
	return a == b // want "exact =="
}

func constGuard(x float64) bool {
	return x == 0 // constant operand: a legitimate zero guard
}

func namedConstGuard(x float64) bool {
	const floor = 1e-12
	return x != floor // constant operand
}

func nanIdiom(x float64) bool {
	return x != x // the NaN test idiom
}

func intsFine(a, b int) bool {
	return a == b
}

func annotated(a, b float64) bool {
	return a == b // lint:checked deliberate bit-compare of memoized values
}
