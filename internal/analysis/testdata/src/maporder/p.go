// Test corpus for the maporder analyzer.
package maporder

import (
	"fmt"
	"sort"
)

func appendNoSort(m map[string]int) []string {
	var out []string
	for k := range m { // want "slice append"
		out = append(out, k)
	}
	return out
}

func appendThenSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func printDirect(m map[string]int) {
	for k, v := range m { // want "formatted or encoded output"
		fmt.Printf("%s=%d\n", k, v)
	}
}

func keyedWritesFine(m map[string]int) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

func keyedAppendFine(m map[string]int) map[string][]int {
	out := make(map[string][]int)
	for k, v := range m {
		out[k] = append(out[k], v)
	}
	return out
}

func counterIndexedWrite(m map[string]float64, buf []float64) {
	i := 0
	for _, v := range m { // want "indexed write"
		buf[i] = v
		i++
	}
}

func valueIndexedWrite(m map[string]int, buf []bool) {
	for _, v := range m { // want "indexed write"
		buf[v] = true
	}
}

func floatAccumulation(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want "floating-point accumulation"
		sum += v
	}
	return sum
}

func intCountsFine(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func sliceRangeFine(xs []float64) float64 {
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum
}

func perIterationBuffer(m map[string][]float64) map[string][]float64 {
	out := make(map[string][]float64, len(m))
	for k, vs := range m {
		d := make([]float64, len(vs))
		for i, v := range vs {
			d[i] = v * 2
		}
		out[k] = d
	}
	return out
}

func loopLocalAccumulator(m map[string][]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, vs := range m {
		var sum float64
		for _, v := range vs {
			sum += v
		}
		out[k] = sum
	}
	return out
}

func annotated(m map[string]float64) float64 {
	var sum float64
	// lint:checked consumer only thresholds the total; rounding drift is irrelevant
	for _, v := range m {
		sum += v
	}
	return sum
}
