// Test corpus for the sharedwrite analyzer.
package sharedwrite

import "sync"

func compute() int { return 42 }

// True positive: every worker increments the same captured counter; the
// writes race each other no matter what the spawner waits on.
func racyCounter(items []int) int {
	var wg sync.WaitGroup
	count := 0
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			count++ // want "count is written by a goroutine spawned in a loop"
		}()
	}
	wg.Wait()
	return count
}

// True positive: concurrent map writes, same shape.
func racyMap(keys []string) map[string]int {
	var wg sync.WaitGroup
	m := make(map[string]int)
	for _, k := range keys {
		wg.Add(1)
		go func(k string) {
			defer wg.Done()
			m[k] = len(k) // want "m is written by a goroutine spawned in a loop"
		}(k)
	}
	wg.Wait()
	return m
}

// Negative: the repository's worker idiom — disjoint slice-element
// shards per worker — is exempt by design.
func shardedSlice(out []float64, workers int) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(out); i += workers {
				out[i] = float64(i)
			}
		}(w)
	}
	wg.Wait()
}

// Negative: the counter is written under a mutex held on every path.
func guardedCounter(items []int) int {
	var mu sync.Mutex
	var wg sync.WaitGroup
	total := 0
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			total++
			mu.Unlock()
		}()
	}
	wg.Wait()
	return total
}

// Negative: a single goroutine whose write is ordered before the read
// by wg.Wait.
func singleWriterJoined() int {
	var wg sync.WaitGroup
	result := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		result = compute()
	}()
	wg.Wait()
	return result
}

// Negative: channel hand-off orders the write before the read.
func channelJoined() string {
	done := make(chan struct{})
	status := ""
	go func() {
		status = "ok"
		done <- struct{}{}
	}()
	<-done
	return status
}

// True positive: nothing orders the spawner's read after the write.
func unjoinedWriter() string {
	status := ""
	go func() {
		status = "done" // want "status is written by this goroutine and accessed outside it without synchronization"
	}()
	return status
}

type stats struct {
	mu sync.Mutex
	n  int
}

// update teaches the cross-package facts that stats.n is mutex-guarded:
// every write here holds s.mu.
func (s *stats) update(delta int) {
	s.mu.Lock()
	s.n += delta
	s.mu.Unlock()
}

// Branch-sensitive true positive: the goroutine takes the lock on only
// one path to the write. An AST-only "is there a Lock in this closure"
// check sees the Lock and passes it; the must-held dataflow joins the
// two paths and rejects the guard. The guarded-field fact (from update)
// upgrades the message.
func (s *stats) flushAsync(fast bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if fast {
			s.mu.Lock()
		}
		s.n++ // want "field s.n is mutex-guarded elsewhere but written in a goroutine without holding a lock"
		if fast {
			s.mu.Unlock()
		}
	}()
	wg.Wait()
}

// Negative: the same write with the lock held on every path.
func (s *stats) flushLocked() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.mu.Lock()
		s.n++
		s.mu.Unlock()
	}()
	wg.Wait()
}

func helperWait(wg *sync.WaitGroup) { wg.Wait() }

// Annotated false positive: the join is real but hidden behind a helper
// call the analyzer cannot see through, so the finding is suppressed
// with the reason on record.
func waitViaHelper() int {
	var wg sync.WaitGroup
	n := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		n = compute() // lint:checked helperWait(&wg) below joins this goroutine; the barrier hides behind the call
	}()
	helperWait(&wg)
	return n
}
