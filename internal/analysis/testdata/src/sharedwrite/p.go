// Test corpus for the sharedwrite analyzer.
package sharedwrite

import "sync"

func compute() int { return 42 }

// True positive: every worker increments the same captured counter; the
// writes race each other no matter what the spawner waits on.
func racyCounter(items []int) int {
	var wg sync.WaitGroup
	count := 0
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			count++ // want "count is written by a goroutine spawned in a loop"
		}()
	}
	wg.Wait()
	return count
}

// True positive: concurrent map writes, same shape.
func racyMap(keys []string) map[string]int {
	var wg sync.WaitGroup
	m := make(map[string]int)
	for _, k := range keys {
		wg.Add(1)
		go func(k string) {
			defer wg.Done()
			m[k] = len(k) // want "m is written by a goroutine spawned in a loop"
		}(k)
	}
	wg.Wait()
	return m
}

// Negative: the repository's worker idiom — disjoint slice-element
// shards per worker — is exempt by design.
func shardedSlice(out []float64, workers int) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(out); i += workers {
				out[i] = float64(i)
			}
		}(w)
	}
	wg.Wait()
}

// Negative: the counter is written under a mutex held on every path.
func guardedCounter(items []int) int {
	var mu sync.Mutex
	var wg sync.WaitGroup
	total := 0
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			total++
			mu.Unlock()
		}()
	}
	wg.Wait()
	return total
}

// Negative: a single goroutine whose write is ordered before the read
// by wg.Wait.
func singleWriterJoined() int {
	var wg sync.WaitGroup
	result := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		result = compute()
	}()
	wg.Wait()
	return result
}

// Negative: channel hand-off orders the write before the read.
func channelJoined() string {
	done := make(chan struct{})
	status := ""
	go func() {
		status = "ok"
		done <- struct{}{}
	}()
	<-done
	return status
}

// True positive: nothing orders the spawner's read after the write.
func unjoinedWriter() string {
	status := ""
	go func() {
		status = "done" // want "status is written by this goroutine and accessed outside it without synchronization"
	}()
	return status
}

type stats struct {
	mu sync.Mutex
	n  int
}

// update teaches the cross-package facts that stats.n is mutex-guarded:
// every write here holds s.mu.
func (s *stats) update(delta int) {
	s.mu.Lock()
	s.n += delta
	s.mu.Unlock()
}

// Branch-sensitive true positive: the goroutine takes the lock on only
// one path to the write. An AST-only "is there a Lock in this closure"
// check sees the Lock and passes it; the must-held dataflow joins the
// two paths and rejects the guard. The guarded-field fact (from update)
// upgrades the message.
func (s *stats) flushAsync(fast bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if fast {
			s.mu.Lock()
		}
		s.n++ // want "field s.n is mutex-guarded elsewhere but written in a goroutine without holding a lock"
		if fast {
			s.mu.Unlock()
		}
	}()
	wg.Wait()
}

// Negative: the same write with the lock held on every path.
func (s *stats) flushLocked() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.mu.Lock()
		s.n++
		s.mu.Unlock()
	}()
	wg.Wait()
}

type shardSlot struct {
	buf   []float64
	delta float64
}

// Negative: the halo-buffer/SPMD write pattern — each worker owns a
// contiguous block of shard slots and writes fields of states[s] only
// for s in its own block. The index is built entirely from
// closure-local variables, so the written elements are disjoint across
// workers, the struct-field analogue of the exempt slice-element shard
// idiom.
func shardedFieldWrites(states []shardSlot, workers int) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for s := lo; s < hi; s++ {
				var maxDelta float64
				for i := range states[s].buf {
					states[s].buf[i] = float64(i)
					if states[s].buf[i] > maxDelta {
						maxDelta = states[s].buf[i]
					}
				}
				states[s].delta = maxDelta
			}
		}(len(states)*w/workers, len(states)*(w+1)/workers)
	}
	wg.Wait()
}

// True positive: a constant index is not a per-worker shard — every
// goroutine writes the same element's field.
func fixedSlotWrite(states []shardSlot, workers int) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			states[0].delta = 1 // want "states[0].delta is written by a goroutine spawned in a loop"
		}()
	}
	wg.Wait()
}

// True positive: the index is a captured variable, shared by every
// worker — nothing makes the written slots disjoint.
func capturedIndexWrite(states []shardSlot, workers int) {
	var wg sync.WaitGroup
	cursor := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			states[cursor].delta = 1 // want "states[cursor].delta is written by a goroutine spawned in a loop"
		}()
	}
	wg.Wait()
}

func helperWait(wg *sync.WaitGroup) { wg.Wait() }

// Annotated false positive: the join is real but hidden behind a helper
// call the analyzer cannot see through, so the finding is suppressed
// with the reason on record.
func waitViaHelper() int {
	var wg sync.WaitGroup
	n := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		n = compute() // lint:checked helperWait(&wg) below joins this goroutine; the barrier hides behind the call
	}()
	helperWait(&wg)
	return n
}
