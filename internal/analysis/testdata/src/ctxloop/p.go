// Test corpus for the ctxloop analyzer.
package ctxloop

import (
	"context"
	"sync"
)

func bareForLoop(n int) {
	for i := 0; i < n; i++ {
		go func() { _ = i }() // want "goroutine spawned in a loop"
	}
}

func bareRangeLoop(items []int) {
	for _, it := range items {
		go process(it) // want "goroutine spawned in a loop"
	}
}

func process(int) {}

func withWaitGroup(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = i
		}()
	}
	wg.Wait()
}

func withDoneChannel(items []int) {
	done := make(chan struct{})
	for range items {
		go func() { done <- struct{}{} }()
	}
	for range items {
		<-done
	}
}

func withSemaphore(items []int, sem chan struct{}) {
	for _, it := range items {
		sem <- struct{}{}
		go func() {
			defer func() { <-sem }()
			process(it)
		}()
	}
}

func withContext(ctx context.Context, items []int) {
	for range items {
		go func() {
			<-ctx.Done()
		}()
	}
}

func notInALoop() {
	go func() {}() // a single fire-and-forget goroutine is out of scope
}
