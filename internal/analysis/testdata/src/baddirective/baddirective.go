// Corpus for the directive validator: misspelled, empty, duplicated,
// misplaced, space-mangled and uncheckable directives must each get a
// distinct diagnostic instead of being silently ignored.
package baddirective

//graphner:noaloc
func typo() {} // want "unknown graphner: directive"

//graphner:
func empty() {} // want "unknown graphner: directive"

//graphner:noalloc
//graphner:noalloc
func doubled() {} // want "duplicate graphner:noalloc directive"

//graphner:noalloc
func external() // want "without a body cannot be checked"

//graphner:nonblocking misplaced on a type declaration // want "must be the doc comment of a function declaration"
type widget struct{}

// graphner:noalloc mangled by a space // want "space after the slashes"
func spaced() {}

// ok: valid directives — methods, generics, trailing commentary, and
// both directives on one declaration — produce no findings.
type gadget struct{}

//graphner:noalloc
func (g gadget) ok() {}

//graphner:nonblocking trailing commentary after the name is allowed
func okGeneric[T any](v T) T { return v }

//graphner:noalloc
//graphner:nonblocking
func okBoth() {}
