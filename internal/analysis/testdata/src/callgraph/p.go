// Golden corpus for the call-graph builder: one function per resolution
// mechanism (static, method, function value, literal, defer/go context,
// unresolvable sites).
package callgraph

import "sync"

var pool = sync.Pool{New: func() any { return new(int) }}

func work() {}

func helper() { work() }

type T struct{ mu sync.Mutex }

func (t *T) lock() { t.mu.Lock() }

func (t *T) unlock() { t.mu.Unlock() }

func methods(t *T) {
	t.lock()
	defer t.unlock()
}

func values() {
	f := helper
	f()
	g := func() { work() }
	g()
	func() { helper() }()
}

func spawns() {
	go work()
	defer helper()
}

func unresolved(cb func()) {
	cb() // parameter value: never resolved
	var h func()
	if pool.Get() == nil {
		h = work
	} else {
		h = helper
	}
	h() // two possible targets: never resolved
}
