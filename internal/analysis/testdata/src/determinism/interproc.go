// interproc.go holds the true positives the intraprocedural suite
// provably misses (see TestDeterminismOldSuiteBlind): nondeterminism
// imported through a callee's results, and a goroutine fold that every
// concurrency analyzer individually approves of.
package determinism

import "sync"

// halfLoss never ranges a map itself: the order dependence arrives
// through pick's summary.
func halfLoss(m map[string]float64) float64 {
	_, v := pick(m)
	return v / 2 // want "map iteration order"
}

// goFold is mutex-guarded and WaitGroup-joined — sharedwrite, ctxloop,
// lockbalance and waitgroupbalance all pass it — yet the sum's bit
// pattern follows the scheduler.
func goFold(xs []float64) float64 {
	var mu sync.Mutex
	var wg sync.WaitGroup
	total := 0.0
	for _, x := range xs {
		wg.Add(1)
		go func(x float64) {
			defer wg.Done()
			mu.Lock()
			total += x
			mu.Unlock()
		}(x)
	}
	wg.Wait()
	return total // want "goroutine scheduling order"
}
