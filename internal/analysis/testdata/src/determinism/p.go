// Test corpus for the determinism analyzer: map-iteration and
// goroutine-scheduling order reaching float outputs. Marked lines must
// produce a diagnostic containing the quoted substring; unmarked lines
// must stay silent.
package determinism

import (
	"sort"
	"sync"
)

type model struct{ loss float64 }

// fieldFold is the belief-update bug: gradients folded into a field in
// map iteration order.
func (mo *model) fieldFold(grads map[string]float64) {
	for _, g := range grads {
		mo.loss += g // want "folded in map iteration order"
	}
}

// sliceFold is deterministic: slice order is fixed.
func (mo *model) sliceFold(grads []float64) {
	for _, g := range grads {
		mo.loss += g
	}
}

// choose only taints the map-fed branch; the slice branch stays clean.
func choose(m map[string]float64, xs []float64) float64 {
	if len(xs) > 0 {
		s := 0.0
		for _, v := range xs {
			s += v
		}
		return s
	}
	t := 0.0
	for _, v := range m {
		t += v
	}
	return t // want "map iteration order"
}

// countMap accumulates a loop-invariant: the result does not vary with
// the order.
func countMap(m map[string]float64) float64 {
	n := 0.0
	for range m {
		n += 1.0
	}
	return n
}

// pick returns whichever entry iteration visits first.
func pick(m map[string]float64) (string, float64) {
	for k, v := range m {
		return k, v // want "first element visited"
	}
	return "", 0
}

// goFieldFold: the mutex orders nothing; the fold follows the scheduler.
func (mo *model) goFieldFold(xs []float64) {
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func(x float64) {
			defer wg.Done()
			mu.Lock()
			mo.loss += x // want "goroutine scheduling"
			mu.Unlock()
		}(x)
	}
	wg.Wait()
}

// sortedFold is the sanctioned collect-then-sort idiom: the keys escape
// the map range, but the sort erases arrival order before the fold, so
// the sum is bit-deterministic and must stay unflagged.
func sortedFold(m map[string]float64) float64 {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := 0.0
	for _, k := range keys {
		s += m[k]
	}
	return s
}

// maxBelief trips the range-variable escape rule, but max is
// order-independent: the documented false positive.
func maxBelief(m map[string]float64) float64 {
	best := 0.0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best // lint:checked determinism: max over a map is order-independent; the escape rule cannot see the monotone guard
}
