package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/cfg"
	"repro/internal/analysis/dataflow"
)

// LockBalance checks, flow-sensitively over the CFG of every function
// body (declarations and literals alike), that sync.Mutex/RWMutex usage
// is balanced:
//
//   - a mutex locked on some path must be unlocked before every return
//     (a deferred Unlock — direct or inside a deferred literal —
//     discharges the obligation, including on panic paths, because
//     return and panic both edge to the CFG exit);
//   - a mutex must not be locked again on a path where it is already
//     held (self-deadlock); repeated RLock is legal and exempt;
//   - Unlock must not run on a path where the mutex is not held;
//   - a deferred Lock/Unlock inside a loop runs once at function return,
//     not per iteration — almost always a bug.
//
// The held-set is a may-analysis (maximum depth over paths), so the
// conditional-locking idiom `if c { mu.Lock() }; ...; if c { mu.Unlock() }`
// can produce a false double-lock/leak report; such deliberate patterns
// take a `// lint:checked` annotation.
var LockBalance = &Analyzer{
	Name: "lockbalance",
	Doc:  "every Lock must reach an Unlock on all CFG paths; no double-Lock",
	Run:  runLockBalance,
}

func runLockBalance(pass *Pass) error {
	funcBodies(pass.Files, func(body *ast.BlockStmt, lit bool) {
		checkLockBalance(pass, body, lit)
	})
	return nil
}

func checkLockBalance(pass *Pass, body *ast.BlockStmt, lit bool) {
	info := pass.Info
	resolve := pass.lockResolver(body)
	if !mentionsMutex(info, body, resolve) {
		return
	}
	checkDeferInLoop(pass, body, resolve)

	g := cfg.New(body)
	res := dataflow.Solve(g, lockProblem(info, false, resolve))

	// Reporting pass: replay each reachable block once from its fixpoint
	// in-fact, diagnosing the operations in flow context.
	firstLock := make(map[string]token.Pos)
	for _, blk := range g.Blocks {
		if res.In[blk] == nil && blk != g.Entry {
			continue // unreachable: no path, no flow diagnostics
		}
		f := cloneLockFact(res.In[blk])
		for _, n := range blk.Nodes {
			for _, op := range nodeLockOps(info, n, resolve) {
				if op.lock && !op.deferred {
					if _, ok := firstLock[op.key]; !ok {
						firstLock[op.key] = op.pos
					}
					if f[op.key] > 0 && !op.read {
						pass.Report(op.pos, "%s is locked again on a path where it is already held (self-deadlock)", displayKey(op.key))
					}
				}
				// An unlock of a mutex not held is reported only in named
				// functions: a closure (deferred cleanup, callback) may
				// legitimately run with the lock taken by its caller.
				if !op.lock && !op.deferred && !lit && f[op.key] == 0 {
					pass.Report(op.pos, "%s is unlocked on a path where it is not held", displayKey(op.key))
				}
				lockApply(f, op)
			}
		}
	}

	// Exit check: anything still held when the function returns, with no
	// deferred unlock registered on that path, leaks the lock. A nil
	// exit fact means the function never returns (a serve loop).
	exitIn := res.In[g.Exit]
	for key, depth := range exitIn {
		if depth <= 0 || strings.HasPrefix(key, "~") {
			continue
		}
		if exitIn["~"+key] > 0 {
			continue
		}
		pos := firstLock[key]
		if pos == token.NoPos {
			continue
		}
		pass.Report(pos, "%s is still held on some path to return; add an Unlock or defer one", displayKey(key))
	}
}

// checkDeferInLoop flags deferred mutex operations inside for/range
// bodies: defers accumulate and fire only at function return, so the
// lock outlives the iteration that took it.
func checkDeferInLoop(pass *Pass, body *ast.BlockStmt, resolve opResolver) {
	var inspectLoop func(n ast.Node, inLoop bool)
	inspectLoop = func(n ast.Node, inLoop bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				if m.Pos() != n.Pos() {
					return false // its own body, analyzed separately
				}
			case *ast.ForStmt:
				if m != n {
					inspectLoop(m.Body, true)
					return false
				}
			case *ast.RangeStmt:
				if m != n {
					inspectLoop(m.Body, true)
					return false
				}
			case *ast.DeferStmt:
				if !inLoop {
					return true
				}
				for _, op := range nodeLockOps(pass.Info, m, resolve) {
					verb := "Unlock"
					if op.lock {
						verb = "Lock"
					}
					pass.Report(m.Pos(), "deferred %s of %s inside a loop runs at function return, not at the end of the iteration", verb, displayKey(op.key))
				}
				return false
			}
			return true
		})
	}
	inspectLoop(body, false)
}

// mentionsMutex is a cheap pre-filter: does the body call any tracked
// mutex method, or any callee with a known net lock effect, at any
// nesting?
func mentionsMutex(info *types.Info, body *ast.BlockStmt, resolve opResolver) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if _, ok := mutexOp(info, call); ok {
				found = true
			} else if resolve != nil && len(resolve(call)) > 0 {
				found = true
			}
		}
		return true
	})
	return found
}

// displayKey strips the read-lock marker for messages.
func displayKey(key string) string {
	if k, ok := strings.CutSuffix(key, "#r"); ok {
		return k + " (read lock)"
	}
	return key
}

// cloneLockFact copies a fact (nil-safe).
func cloneLockFact(f lockFact) lockFact {
	out := make(lockFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}
