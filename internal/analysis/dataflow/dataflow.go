// Package dataflow is a generic worklist solver over internal/analysis/cfg
// graphs. An analyzer supplies the lattice (join, equality, the optimistic
// initial fact) and a transfer function; the solver runs the standard
// iterative algorithm to a fixpoint, forward or backward.
//
// Requirements for termination: Join must be monotone and the lattice of
// facts must have finite height (every analyzer here uses finite maps over
// the identifiers of one function, which satisfies both). Transfer and
// Join must treat their inputs as immutable and return fresh values.
package dataflow

import "repro/internal/analysis/cfg"

// Direction selects whether facts flow entry→exit or exit→entry.
type Direction int

const (
	Forward Direction = iota
	Backward
)

// Problem defines one dataflow analysis.
//
// Init supplies the optimistic starting fact for every non-boundary
// block — the identity of Join (bottom for a may/union analysis, top for
// a must/intersection analysis, commonly a nil sentinel).
type Problem[F any] struct {
	Dir Direction
	// Boundary returns the fact entering the boundary block: the Entry
	// block's in-fact (Forward) or the Exit block's in-fact (Backward).
	Boundary func() F
	// Init returns the starting fact for every other block.
	Init func() F
	// Join combines facts arriving over two edges. It must not mutate
	// its arguments.
	Join func(a, b F) F
	// Transfer computes the fact leaving blk given the fact entering it,
	// without mutating in.
	Transfer func(blk *cfg.Block, in F) F
	// Equal reports fact equality; the fixpoint stops when transfer
	// output stabilises under it.
	Equal func(a, b F) bool
}

// Result holds the per-block fixpoint facts. In is the fact at block
// entry (in flow direction), Out at block exit.
type Result[F any] struct {
	In, Out map[*cfg.Block]F
}

// Solve runs the worklist algorithm to a fixpoint and returns the
// per-block facts.
func Solve[F any](g *cfg.Graph, p Problem[F]) Result[F] {
	res := Result[F]{
		In:  make(map[*cfg.Block]F, len(g.Blocks)),
		Out: make(map[*cfg.Block]F, len(g.Blocks)),
	}
	boundary := g.Entry
	flowPreds := func(b *cfg.Block) []*cfg.Block { return b.Preds }
	flowSuccs := func(b *cfg.Block) []*cfg.Block { return b.Succs }
	if p.Dir == Backward {
		boundary = g.Exit
		flowPreds, flowSuccs = flowSuccs, flowPreds
	}
	for _, b := range g.Blocks {
		res.Out[b] = p.Transfer(b, initialIn(p, b, boundary))
	}

	queue := make([]*cfg.Block, len(g.Blocks))
	queued := make(map[*cfg.Block]bool, len(g.Blocks))
	if p.Dir == Forward {
		copy(queue, g.Blocks)
	} else {
		for i, b := range g.Blocks {
			queue[len(g.Blocks)-1-i] = b
		}
	}
	for _, b := range queue {
		queued[b] = true
	}

	for len(queue) > 0 {
		blk := queue[0]
		queue = queue[1:]
		queued[blk] = false

		in := initialIn(p, blk, boundary)
		for _, pred := range flowPreds(blk) {
			in = p.Join(in, res.Out[pred])
		}
		res.In[blk] = in
		out := p.Transfer(blk, in)
		if p.Equal(out, res.Out[blk]) {
			continue
		}
		res.Out[blk] = out
		for _, s := range flowSuccs(blk) {
			if !queued[s] {
				queued[s] = true
				queue = append(queue, s)
			}
		}
	}
	return res
}

// initialIn is the fact a block starts from before joining predecessors.
func initialIn[F any](p Problem[F], b, boundary *cfg.Block) F {
	if b == boundary {
		return p.Boundary()
	}
	return p.Init()
}

// Fixpoint is the dependency-driven worklist the interprocedural summary
// layer runs on: Solve iterates blocks of one CFG, Fixpoint iterates
// arbitrary keys (functions of a call graph) whose values depend on each
// other.
//
// Every key is visited at least once, in the order given. update(k)
// recomputes k's value from the current values of whatever it depends on
// and reports whether the value changed; on change, dependents(k) — the
// keys whose values consume k's (a function's callers) — are re-enqueued.
// This is the summary-invalidation contract: when a callee's summary
// grows mid-fixpoint, every caller is recomputed against the new summary,
// transitively, until nothing changes.
//
// Termination is the caller's obligation, exactly as with Solve: update
// must be monotone over a finite-height lattice. Returns the number of
// update calls (tests assert invalidation actually re-runs callers).
func Fixpoint[K comparable](keys []K, update func(K) bool, dependents func(K) []K) int {
	queue := make([]K, len(keys))
	copy(queue, keys)
	queued := make(map[K]bool, len(keys))
	for _, k := range queue {
		queued[k] = true
	}
	calls := 0
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		queued[k] = false
		calls++
		if !update(k) {
			continue
		}
		for _, d := range dependents(k) {
			if !queued[d] {
				queued[d] = true
				queue = append(queue, d)
			}
		}
	}
	return calls
}
