package dataflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"maps"
	"testing"

	"repro/internal/analysis/cfg"
)

func buildGraph(t *testing.T, body string) (*token.FileSet, *cfg.Graph) {
	t.Helper()
	src := "package p\nfunc f(a, b, c bool) {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return fset, cfg.New(fd.Body)
}

// assigned is a forward may-analysis: the set of variable names that have
// been assigned on SOME path reaching a point. Join is set union.
type nameSet map[string]bool

func union(a, b nameSet) nameSet {
	out := make(nameSet, len(a)+len(b))
	maps.Copy(out, a)
	maps.Copy(out, b)
	return out
}

// assignedProblem records the Lhs identifiers of every assignment.
func assignedProblem() Problem[nameSet] {
	return Problem[nameSet]{
		Dir:      Forward,
		Boundary: func() nameSet { return nameSet{} },
		Init:     func() nameSet { return nameSet{} },
		Join:     union,
		Transfer: func(blk *cfg.Block, in nameSet) nameSet {
			out := union(in, nil)
			for _, n := range blk.Nodes {
				as, ok := n.(*ast.AssignStmt)
				if !ok {
					continue
				}
				for _, lhs := range as.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						out[id.Name] = true
					}
				}
			}
			return out
		},
		Equal: maps.Equal[nameSet, nameSet],
	}
}

func TestForwardMayAssigned(t *testing.T) {
	_, g := buildGraph(t, `
	x := 1
	if a {
		y := 2
		_ = y
	}
	z := 3
	_, _ = x, z
`)
	res := Solve(g, assignedProblem())
	at := res.In[g.Exit]
	for _, want := range []string{"x", "y", "z"} {
		if !at[want] {
			t.Errorf("exit in-fact missing %q: %v", want, at)
		}
	}
}

// TestForwardLoopFixpoint: a fact introduced in a loop body must
// propagate around the back edge into the loop head.
func TestForwardLoopFixpoint(t *testing.T) {
	_, g := buildGraph(t, `
	for a {
		w := 1
		_ = w
	}
`)
	res := Solve(g, assignedProblem())
	var head *cfg.Block
	for _, b := range g.Blocks {
		if b.Kind == "for.head" {
			head = b
		}
	}
	if head == nil {
		t.Fatal("no for.head block")
	}
	if !res.In[head]["w"] {
		t.Errorf("loop head should see w via back edge: %v", res.In[head])
	}
	if res.In[g.Entry]["w"] {
		t.Errorf("entry must not see any assignment: %v", res.In[g.Entry])
	}
}

// live is a backward may-analysis: a crude liveness over identifier
// uses/kills, enough to exercise Backward plumbing end to end.
func liveProblem() Problem[nameSet] {
	return Problem[nameSet]{
		Dir:      Backward,
		Boundary: func() nameSet { return nameSet{} },
		Init:     func() nameSet { return nameSet{} },
		Join:     union,
		Transfer: func(blk *cfg.Block, in nameSet) nameSet {
			out := union(in, nil)
			// Walk nodes in reverse: kill definitions, then add uses.
			for i := len(blk.Nodes) - 1; i >= 0; i-- {
				switch n := blk.Nodes[i].(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							delete(out, id.Name)
						}
					}
					for _, rhs := range n.Rhs {
						ast.Inspect(rhs, func(m ast.Node) bool {
							if id, ok := m.(*ast.Ident); ok {
								out[id.Name] = true
							}
							return true
						})
					}
				case ast.Expr:
					ast.Inspect(n, func(m ast.Node) bool {
						if id, ok := m.(*ast.Ident); ok {
							out[id.Name] = true
						}
						return true
					})
				}
			}
			return out
		},
		Equal: maps.Equal[nameSet, nameSet],
	}
}

func TestBackwardLiveness(t *testing.T) {
	_, g := buildGraph(t, `
	x := 1
	y := 2
	if a {
		x = y
	}
	_ = x
`)
	res := Solve(g, liveProblem())
	// At function entry (the In fact of the entry block, flowing
	// backward) nothing the function defines is live, but the parameter
	// `a` — used by the branch — is.
	entryLive := res.Out[g.Entry]
	if entryLive["x"] || entryLive["y"] {
		t.Errorf("x,y defined before use, must not be live-in at entry: %v", entryLive)
	}
	var thenBlk *cfg.Block
	for _, b := range g.Blocks {
		if b.Kind == "if.then" {
			thenBlk = b
		}
	}
	if thenBlk == nil {
		t.Fatal("no if.then block")
	}
	// In/Out are flow-direction-relative: for Backward, Out[blk] is the
	// fact at block entry in program order, In[blk] at block exit.
	// Entering the then-branch, y is about to be read: live.
	if !res.Out[thenBlk]["y"] {
		t.Errorf("y must be live entering the then branch: %v", res.Out[thenBlk])
	}
	// After the then-branch's last use, y is dead.
	if res.In[thenBlk]["y"] {
		t.Errorf("y must be dead after its last use: %v", res.In[thenBlk])
	}
}

// TestMustAnalysisNilTop exercises the nil-as-top convention used by the
// analyzers: Init returns nil (top), Join treats nil as identity and
// otherwise intersects, Transfer preserves nil, and Equal distinguishes
// nil from the empty map. "Assigned on EVERY path" drops y at the join;
// the unreachable code after return keeps the nil fact at fixpoint.
func TestMustAnalysisNilTop(t *testing.T) {
	_, g := buildGraph(t, `
	x := 1
	if a {
		y := 2
		_ = y
	}
	_ = x
	return
	z := 3
	_ = z
`)
	p := assignedProblem()
	p.Init = func() nameSet { return nil }
	p.Join = func(a, b nameSet) nameSet {
		if a == nil {
			return union(b, nil)
		}
		if b == nil {
			return union(a, nil)
		}
		out := nameSet{}
		for k := range a {
			if b[k] {
				out[k] = true
			}
		}
		return out
	}
	forward := p.Transfer
	p.Transfer = func(blk *cfg.Block, in nameSet) nameSet {
		if in == nil {
			return nil
		}
		return forward(blk, in)
	}
	p.Equal = func(a, b nameSet) bool {
		if (a == nil) != (b == nil) {
			return false
		}
		return maps.Equal(a, b)
	}
	res := Solve(g, p)

	exitIn := res.In[g.Exit]
	if !exitIn["x"] {
		t.Errorf("x assigned on every path, must survive the must-join: %v", exitIn)
	}
	if exitIn["y"] {
		t.Errorf("y assigned on one path only, must be dropped by the must-join: %v", exitIn)
	}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok {
				if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "z" {
					if res.In[b] != nil {
						t.Errorf("unreachable block must keep the nil (top) fact: %v", res.In[b])
					}
				}
			}
		}
	}
}

// TestFixpointInvalidation models the interprocedural summary fixpoint:
// three "functions" where A calls B calls C, C and B are mutually
// recursive, and summaries are capped depth counts. B's and C's values
// keep changing for the first few visits, and every change must
// re-enqueue the caller — A's final value is correct only if the
// invalidation actually re-ran it after B settled.
func TestFixpointInvalidation(t *testing.T) {
	const cap = 5
	vals := map[string]int{"A": 0, "B": 0, "C": 0}
	updates := map[string]int{}
	update := func(k string) bool {
		updates[k]++
		old := vals[k]
		switch k {
		case "A":
			vals[k] = vals["B"] // A copies its callee's summary
		case "B":
			vals[k] = min(cap, vals["C"]+1)
		case "C":
			vals[k] = min(cap, vals["B"]+1)
		}
		return vals[k] != old
	}
	// dependents = callers: A calls B; B and C call each other.
	deps := map[string][]string{"B": {"A", "C"}, "C": {"B"}}
	calls := Fixpoint([]string{"A", "B", "C"}, update, func(k string) []string { return deps[k] })

	if vals["A"] != cap || vals["B"] != cap || vals["C"] != cap {
		t.Errorf("fixpoint values = %v, want all %d", vals, cap)
	}
	// A must have been recomputed after its initial visit: its first run
	// saw B=0, so without caller invalidation it would end at 0.
	if updates["A"] < 2 {
		t.Errorf("A updated %d times; callee changes must re-enqueue callers", updates["A"])
	}
	if calls < updates["A"]+updates["B"]+updates["C"] {
		t.Errorf("Fixpoint reported %d calls, fewer than observed %v", calls, updates)
	}
}

// TestFixpointVisitsEveryKey: keys with no dependencies and no changes
// are still visited exactly once.
func TestFixpointVisitsEveryKey(t *testing.T) {
	visited := map[int]int{}
	calls := Fixpoint([]int{1, 2, 3}, func(k int) bool { visited[k]++; return false }, func(int) []int { return nil })
	if calls != 3 {
		t.Errorf("Fixpoint made %d calls, want 3", calls)
	}
	for _, k := range []int{1, 2, 3} {
		if visited[k] != 1 {
			t.Errorf("key %d visited %d times, want 1", k, visited[k])
		}
	}
}

// TestTransferCallCounts guards the solver against a quadratic or
// non-terminating regression: on a straight-line graph the fixpoint must
// settle with at most two transfer evaluations per block (the priming
// pass plus one worklist visit).
func TestTransferCallCounts(t *testing.T) {
	_, g := buildGraph(t, `
	x := 1
	x = 2
	x = 3
	_ = x
`)
	calls := 0
	p := assignedProblem()
	inner := p.Transfer
	p.Transfer = func(blk *cfg.Block, in nameSet) nameSet {
		calls++
		return inner(blk, in)
	}
	Solve(g, p)
	if max := 2 * len(g.Blocks); calls > max {
		t.Errorf("straight-line solve took %d transfer calls for %d blocks (max %d)", calls, len(g.Blocks), max)
	}
}
