package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SharedWrite flags writes from inside a `go` closure to memory also
// visible outside the goroutine, when no synchronization covers the
// write. It is the gate in front of the sharding/serving work: every
// ROADMAP item turns the single-threaded propagation and CRF loops into
// workers over shared state, and this is the mutation pattern the
// AST-level lints cannot see.
//
// For every goroutine spawned as `go func(){...}()` the analyzer
// collects writes to captured variables, captured struct fields, and
// captured maps (assignments, ++/--, and `x = append(x, ...)`). A write
// is reported unless one of:
//
//   - a mutex is held at the write, flow-sensitively: the lock dataflow
//     over the closure's CFG proves some Lock covers the write on every
//     path reaching it (a Lock on one branch only does not);
//   - the written field is mutex-guarded per the cross-package facts
//     (written under a lock elsewhere in the module) — then the report
//     says the lock discipline is violated here, a stronger message;
//   - the goroutine is spawned once (not in a loop) and every outside
//     access after the spawn is separated from it by a synchronization
//     barrier (a WaitGroup.Wait call or a channel receive).
//
// Writes to slice *elements* are deliberately exempt: the repository's
// worker idiom shards rows of a shared slice disjointly (propagation
// beliefs, per-worker delta slots), which is safe and pervasive.
// Goroutines spawned in a loop get no barrier exemption — two workers
// writing the same captured variable race each other regardless of any
// Wait downstream.
var SharedWrite = &Analyzer{
	Name: "sharedwrite",
	Doc:  "goroutine writes to shared variables/fields/maps need a mutex or hand-off",
	Run:  runSharedWrite,
}

func runSharedWrite(pass *Pass) error {
	walkFuncs(pass.Files, func(fd *ast.FuncDecl) {
		checkSharedWrite(pass, fd.Body)
	})
	return nil
}

// sharedWrite is one write to a captured location inside a go closure.
type sharedWrite struct {
	pos   token.Pos
	v     *types.Var // the variable or field object written
	key   string     // rendered expression for the message
	field bool
}

func checkSharedWrite(pass *Pass, body *ast.BlockStmt) {
	info := pass.Info
	var goStmts []*ast.GoStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			goStmts = append(goStmts, g)
		}
		return true
	})
	if len(goStmts) == 0 {
		return
	}
	loops := loopRanges(body)
	barriers := barrierPositions(info, body, goStmts)

	for _, g := range goStmts {
		lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
		if !ok {
			continue // go f(args): arguments are evaluated at spawn time
		}
		writes := capturedWrites(info, lit)
		if len(writes) == 0 {
			continue
		}
		held := heldLocksAt(info, lit.Body, pass.lockResolver(lit.Body))
		inLoop := false
		for _, lr := range loops {
			if lr[0] <= g.Pos() && g.End() <= lr[1] {
				inLoop = true
				break
			}
		}
		for _, w := range writes {
			if held(w.pos) {
				continue
			}
			if w.field && pass.Facts.IsGuardedField(w.v) {
				pass.Report(w.pos, "field %s is mutex-guarded elsewhere but written in a goroutine without holding a lock", w.key)
				continue
			}
			if inLoop {
				pass.Report(w.pos, "%s is written by a goroutine spawned in a loop; concurrent workers race on it without a mutex", w.key)
				continue
			}
			if use := unsyncedOutsideUse(info, body, g, w.v, barriers); use != token.NoPos {
				pass.Report(w.pos, "%s is written by this goroutine and accessed outside it without synchronization (mutex, channel, or Wait)", w.key)
			}
		}
	}
}

// capturedWrites collects writes inside lit to locations declared outside
// it: plain variables, struct fields through a captured base, and map
// entries. Nested go statements are skipped (they are their own spawn
// sites); other nested literals run on this goroutine and are included.
func capturedWrites(info *types.Info, lit *ast.FuncLit) []sharedWrite {
	var out []sharedWrite
	var record func(e ast.Expr)
	record = func(e ast.Expr) {
		e = ast.Unparen(e)
		switch e := e.(type) {
		case *ast.Ident:
			if v, ok := info.Uses[e].(*types.Var); ok && capturedVar(v, lit) {
				out = append(out, sharedWrite{pos: e.Pos(), v: v, key: e.Name})
			}
		case *ast.SelectorExpr:
			fv, ok := fieldVar(info, e)
			if !ok {
				return
			}
			if shardIndexedBase(info, e.X, lit) {
				// The disjoint-shard idiom extended to struct fields:
				// states[s].delta = ... where s is the worker's own shard
				// number. Workers index disjoint elements, so the field
				// slots are disjoint too — the halo-exchange/SPMD write
				// pattern of the sharded propagation sweep.
				return
			}
			if base := rootIdent(e.X); base != nil {
				if bv, ok := info.Uses[base].(*types.Var); ok && capturedVar(bv, lit) {
					out = append(out, sharedWrite{pos: e.Pos(), v: fv, key: writeKey(e), field: true})
				}
			}
		case *ast.IndexExpr:
			if _, ok := info.TypeOf(e.X).Underlying().(*types.Map); !ok {
				return // slice/array element writes: the disjoint-shard idiom
			}
			record(e.X) // a map write is a write to the map itself
		case *ast.StarExpr:
			record(e.X) // *p = v through a captured pointer
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				record(lhs)
			}
		case *ast.IncDecStmt:
			record(n.X)
		}
		return true
	})
	return out
}

// capturedVar reports whether v is declared outside lit (an enclosing
// function's local or a package-level variable) — i.e. shared between
// the goroutine and its spawner.
func capturedVar(v *types.Var, lit *ast.FuncLit) bool {
	return v.Pos() < lit.Pos() || v.Pos() > lit.End()
}

// fieldVar resolves sel to the struct field it selects, if any.
func fieldVar(info *types.Info, sel *ast.SelectorExpr) (*types.Var, bool) {
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v, true
		}
		return nil, false
	}
	// Qualified package selectors (pkg.Var) resolve through Uses.
	if v, ok := info.Uses[sel.Sel].(*types.Var); ok && !v.IsField() {
		return v, true
	}
	return nil, false
}

// writeKey renders a written location for diagnostics. Unlike exprKey —
// which deliberately refuses indexed expressions because they make poor
// lock identities — a write target like states[s].delta is best reported
// with its index spelled out.
func writeKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if base := writeKey(e.X); base != "" {
			return base + "." + e.Sel.Name
		}
	case *ast.IndexExpr:
		if base := writeKey(e.X); base != "" {
			idx := writeKey(e.Index)
			if idx == "" {
				if bl, ok := ast.Unparen(e.Index).(*ast.BasicLit); ok {
					idx = bl.Value
				}
			}
			return base + "[" + idx + "]"
		}
	case *ast.StarExpr:
		return writeKey(e.X)
	}
	return ""
}

// shardIndexedBase reports whether a selector's base chain passes through
// an index into a slice or array whose index expression is built entirely
// from closure-local variables (and uses at least one). Such a write —
// states[s].field with s a worker-private shard number — lands in a slice
// element the goroutine owns, the struct-field analogue of the exempt
// slice-element shard idiom. An index mentioning any captured variable,
// or none at all (states[0].field), stays conservative: it is not
// provably private to the goroutine.
func shardIndexedBase(info *types.Info, e ast.Expr, lit *ast.FuncLit) bool {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			if _, isMap := info.TypeOf(t.X).Underlying().(*types.Map); !isMap && closureLocalIndex(info, t.Index, lit) {
				return true
			}
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			return false
		}
	}
}

// closureLocalIndex reports whether idx references at least one variable
// declared inside lit and none declared outside it.
func closureLocalIndex(info *types.Info, idx ast.Expr, lit *ast.FuncLit) bool {
	locals, ok := 0, true
	ast.Inspect(idx, func(n ast.Node) bool {
		id, isIdent := n.(*ast.Ident)
		if !isIdent {
			return true
		}
		v, isVar := info.Uses[id].(*types.Var)
		if !isVar {
			return true
		}
		if capturedVar(v, lit) {
			ok = false
			return false
		}
		locals++
		return true
	})
	return ok && locals > 0
}

// rootIdent returns the identifier at the base of a selector/index/star
// chain, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			return t
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// loopRanges collects the position spans of for/range bodies in body.
func loopRanges(body *ast.BlockStmt) [][2]token.Pos {
	var out [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			out = append(out, [2]token.Pos{n.Body.Pos(), n.Body.End()})
		case *ast.RangeStmt:
			out = append(out, [2]token.Pos{n.Body.Pos(), n.Body.End()})
		}
		return true
	})
	return out
}

// barrierPositions collects synchronization points in body that order the
// spawner after its goroutines: WaitGroup.Wait calls and channel
// receives, outside any go statement.
func barrierPositions(info *types.Info, body *ast.BlockStmt, goStmts []*ast.GoStmt) []token.Pos {
	inGo := func(pos token.Pos) bool {
		for _, g := range goStmts {
			if g.Pos() <= pos && pos <= g.End() {
				return true
			}
		}
		return false
	}
	var out []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(info, n); fn != nil && fn.FullName() == "(*sync.WaitGroup).Wait" && !inGo(n.Pos()) {
				out = append(out, n.Pos())
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !inGo(n.Pos()) {
				out = append(out, n.Pos())
			}
		case *ast.RangeStmt:
			if _, ok := info.TypeOf(n.X).Underlying().(*types.Chan); ok && !inGo(n.Pos()) {
				out = append(out, n.Pos())
			}
		}
		return true
	})
	return out
}

// unsyncedOutsideUse returns the position of a use of v outside the go
// statement that is not separated from the spawn by a barrier, or NoPos.
// Uses lexically before the spawn are sequenced before it and safe.
func unsyncedOutsideUse(info *types.Info, body *ast.BlockStmt, g *ast.GoStmt, v *types.Var, barriers []token.Pos) token.Pos {
	found := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		if found != token.NoPos {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || info.Uses[id] != v {
			return true
		}
		pos := id.Pos()
		if pos >= g.Pos() && pos <= g.End() {
			return true // inside the goroutine (or its spawn expression)
		}
		if pos < g.Pos() {
			return true // sequenced before the spawn
		}
		for _, b := range barriers {
			if b > g.End() && b < pos {
				return true // a Wait/receive orders this use after the goroutine
			}
		}
		found = pos
		return false
	})
	return found
}
