package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Facts is the cross-package knowledge base the analyzers share. It is
// built once over all loaded packages, in dependency order, before any
// analyzer runs.
//
// Four fact kinds exist — two about sync.Pool plumbing, two about
// concurrency discipline:
//
//   - a function is a *pool source* if its return value originates from a
//     (*sync.Pool).Get — directly or through another source (e.g. the
//     crf.acquireScratch helper);
//   - a function is a *releaser* of parameter i (receiver = -1) if it
//     hands that parameter to (*sync.Pool).Put or to another releaser
//     (e.g. the latticeScratch.release method);
//   - a struct field is *mutex-guarded* if some function in the module
//     writes it while holding a lock (per the lock dataflow) — sharedwrite
//     then demands the lock at every goroutine write of that field;
//   - a variable or field is an *atomic site* if any function hands its
//     address to a sync/atomic operation — atomicmix then forbids
//     non-atomic access to it everywhere.
//
// poolescape uses the first two to treat wrapped Get/Put helpers exactly
// like the raw pool calls.
type Facts struct {
	sources   map[*types.Func]bool
	releasers map[*types.Func]map[int]bool
	guarded   map[*types.Var]bool
	atomics   map[*types.Var]token.Position
}

// NewFacts returns an empty knowledge base.
func NewFacts() *Facts {
	return &Facts{
		sources:   make(map[*types.Func]bool),
		releasers: make(map[*types.Func]map[int]bool),
		guarded:   make(map[*types.Var]bool),
		atomics:   make(map[*types.Var]token.Position),
	}
}

// IsGuardedField reports whether some function in the module writes v
// while holding a mutex.
func (fc *Facts) IsGuardedField(v *types.Var) bool {
	return v != nil && fc.guarded[v]
}

// AtomicSite returns the position of an atomic access to v, if any
// function in the module performs one.
func (fc *Facts) AtomicSite(v *types.Var) (token.Position, bool) {
	p, ok := fc.atomics[v]
	return p, ok
}

// IsSource reports whether fn returns a pool-derived value.
func (fc *Facts) IsSource(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	return fn.FullName() == "(*sync.Pool).Get" || fc.sources[fn]
}

// ReleasedParams returns the parameter indices fn releases (-1 for the
// receiver), or nil.
func (fc *Facts) ReleasedParams(fn *types.Func) map[int]bool {
	if fn == nil {
		return nil
	}
	if fn.FullName() == "(*sync.Pool).Put" {
		return map[int]bool{0: true}
	}
	return fc.releasers[fn]
}

// AddPackage scans a package's functions to a fixpoint, growing the fact
// base. Packages must be added in dependency order so callee facts from
// imported packages are already present.
func (fc *Facts) AddPackage(pkg *Package) {
	fc.addConcurrencyFacts(pkg)
	for changed := true; changed; {
		changed = false
		walkFuncs(pkg.Files, func(fd *ast.FuncDecl) {
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				return
			}
			if !fc.sources[obj] && fc.returnsPooled(pkg.Info, fd) {
				fc.sources[obj] = true
				changed = true
			}
			rel := fc.releasedOwnParams(pkg.Info, fd)
			if len(rel) == 0 {
				return
			}
			m := fc.releasers[obj]
			if m == nil {
				m = make(map[int]bool)
				fc.releasers[obj] = m
			}
			for idx := range rel {
				if !m[idx] {
					m[idx] = true
					changed = true
				}
			}
		})
	}
}

// addConcurrencyFacts records, for every function body of pkg, which
// struct fields are written under a held lock (guarded fields) and which
// variables have their address taken by sync/atomic calls (atomic
// sites). Both are global: sharedwrite and atomicmix consult them from
// any package.
func (fc *Facts) addConcurrencyFacts(pkg *Package) {
	info := pkg.Info
	funcBodies(pkg.Files, func(body *ast.BlockStmt, _ bool) {
		var held func(pos token.Pos) bool // built lazily: most bodies take no locks
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				if n.Body != body {
					return false // analyzed as its own body
				}
			case *ast.CallExpr:
				if isAtomicCall(info, n) {
					if v := atomicTarget(info, n); v != nil {
						if _, ok := fc.atomics[v]; !ok {
							fc.atomics[v] = pkg.Fset.Position(n.Pos())
						}
					}
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					fv, ok := fieldVar(info, sel)
					if !ok || !fv.IsField() || fc.guarded[fv] {
						continue
					}
					if held == nil {
						// Facts are built before summaries exist; callee
						// lock effects are invisible here by construction.
						held = heldLocksAt(info, body, nil)
					}
					if held(lhs.Pos()) {
						fc.guarded[fv] = true
					}
				}
			}
			return true
		})
	})
}

// returnsPooled reports whether some return statement of fd yields a
// pool-derived value: a source call, or a local variable assigned from one.
func (fc *Facts) returnsPooled(info *types.Info, fd *ast.FuncDecl) bool {
	pooled := fc.pooledLocals(info, fd.Body)
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // returns inside nested literals are not fd's
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if fc.isSourceExpr(info, res) {
				found = true
				return false
			}
			if id, ok := unwrap(res).(*ast.Ident); ok {
				if v, ok := info.Uses[id].(*types.Var); ok && pooled[v] {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// pooledLocals collects local variables bound (by := or =) to pool-derived
// values anywhere in body, propagating through aliasing assignments.
func (fc *Facts) pooledLocals(info *types.Info, body ast.Node) map[*types.Var]bool {
	pooled := make(map[*types.Var]bool)
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				v := localVarOf(info, id)
				if v == nil || pooled[v] {
					continue
				}
				isP := fc.isSourceExpr(info, rhs)
				if !isP {
					if rid, ok := unwrap(rhs).(*ast.Ident); ok {
						if rv, ok := info.Uses[rid].(*types.Var); ok && pooled[rv] {
							isP = true
						}
					}
				}
				if isP {
					pooled[v] = true
					changed = true
				}
			}
			return true
		})
	}
	return pooled
}

// isSourceExpr reports whether e (unwrapping parens and type assertions)
// is a call to a pool source.
func (fc *Facts) isSourceExpr(info *types.Info, e ast.Expr) bool {
	call, ok := unwrap(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	return fc.IsSource(calleeFunc(info, call))
}

// releasedOwnParams returns the indices of fd's receiver (-1) and
// parameters that its body hands to a releaser outside any defer or
// nested function literal (a deferred Put releases at return, so the
// function still owns the value for its whole body).
func (fc *Facts) releasedOwnParams(info *types.Info, fd *ast.FuncDecl) map[int]bool {
	own := ownParams(info, fd)
	if len(own) == 0 {
		return nil
	}
	out := make(map[int]bool)
	for _, rel := range fc.releaseCalls(info, fd.Body) {
		if v, ok := info.Uses[rel.ident].(*types.Var); ok {
			if idx, ok := own[v]; ok {
				out[idx] = true
			}
		}
	}
	return out
}

// release is one Put-like event: the call and the identifier released.
type release struct {
	call     *ast.CallExpr
	ident    *ast.Ident
	deferred bool // inside a defer statement or nested function literal
}

// releaseCalls finds every release event in body: (*sync.Pool).Put(x) and
// calls to fact releasers, including v.release()-style receiver releases.
func (fc *Facts) releaseCalls(info *types.Info, body ast.Node) []release {
	var out []release
	var walk func(n ast.Node, deferred bool)
	walk = func(n ast.Node, deferred bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.DeferStmt:
				walk(m.Call, true)
				return false
			case *ast.FuncLit:
				if m != n {
					walk(m.Body, true)
					return false
				}
			case *ast.CallExpr:
				fn := calleeFunc(info, m)
				params := fc.ReleasedParams(fn)
				if params == nil {
					return true
				}
				idxs := make([]int, 0, len(params))
				for idx := range params {
					idxs = append(idxs, idx)
				}
				sort.Ints(idxs)
				for _, idx := range idxs {
					var arg ast.Expr
					if idx == -1 {
						if sel, ok := ast.Unparen(m.Fun).(*ast.SelectorExpr); ok {
							arg = sel.X
						}
					} else if idx < len(m.Args) {
						arg = m.Args[idx]
					}
					if id, ok := unwrap(arg).(*ast.Ident); ok {
						out = append(out, release{call: m, ident: id, deferred: deferred})
					}
				}
			}
			return true
		})
	}
	walk(body, false)
	return out
}

// ownParams maps fd's receiver and parameter variables to their indices
// (receiver = -1).
func ownParams(info *types.Info, fd *ast.FuncDecl) map[*types.Var]int {
	out := make(map[*types.Var]int)
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			for _, name := range f.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					out[v] = -1
				}
			}
		}
	}
	i := 0
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			for _, name := range f.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					out[v] = i
				}
				i++
			}
			if len(f.Names) == 0 {
				i++
			}
		}
	}
	return out
}

// calleeFunc resolves the called function object of a call expression
// (method calls through Selections, plain and qualified calls through
// Uses), or nil for builtins and indirect calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// localVarOf resolves id to the local variable it defines or uses.
func localVarOf(info *types.Info, id *ast.Ident) *types.Var {
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Uses[id].(*types.Var); ok && v.Parent() != v.Pkg().Scope() {
		return v
	}
	return nil
}

// unwrap strips parentheses and type assertions.
func unwrap(e ast.Expr) ast.Expr {
	for {
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
		case *ast.TypeAssertExpr:
			e = t.X
		default:
			return e
		}
	}
}
