package callgraph_test

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

// loadCorpus type-checks one testdata corpus package and wraps it as a
// callgraph unit.
func loadCorpus(t *testing.T, name string) (*analysis.Package, *callgraph.Graph) {
	t.Helper()
	dir := filepath.Join("..", "testdata", "src", name)
	pkg, err := analysis.LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	g := callgraph.Build([]*callgraph.Unit{{
		Path: pkg.Path, Fset: pkg.Fset, Files: pkg.Files, Info: pkg.Info,
	}})
	return pkg, g
}

// golden is the expected Format rendering of the corpus graph: every
// resolvable edge with its context kind, and per-node unresolved counts.
const golden = `callgraph.helper -> callgraph.work [call]
callgraph.methods -> (*callgraph.T).lock [call]
callgraph.methods -> (*callgraph.T).unlock [defer]
callgraph.spawns -> callgraph.helper [defer]
callgraph.spawns -> callgraph.work [go]
callgraph.unresolved ?2
callgraph.values -> callgraph.helper [call]
callgraph.values -> lit@p.go:28 [call]
callgraph.values -> lit@p.go:30 [call]
lit@p.go:28 -> callgraph.work [call]
lit@p.go:30 -> callgraph.helper [call]
`

func TestGolden(t *testing.T) {
	_, g := loadCorpus(t, "callgraph")
	if got := g.Format(); got != golden {
		t.Errorf("call graph mismatch\ngot:\n%s\nwant:\n%s", got, golden)
	}
}

// TestNodeCoverage: every function body in the corpus — declaration or
// literal — must have exactly one node.
func TestNodeCoverage(t *testing.T) {
	pkg, g := loadCorpus(t, "callgraph")
	want := 0
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					want++
					if g.ByBody(n.Body) == nil {
						t.Errorf("no node for declaration %s", n.Name.Name)
					}
				}
			case *ast.FuncLit:
				want++
				if g.ByBody(n.Body) == nil {
					t.Errorf("no node for literal at %s", pkg.Fset.Position(n.Pos()))
				}
			}
			return true
		})
	}
	if got := len(g.Nodes()); got != want {
		t.Errorf("got %d nodes, want %d", got, want)
	}
}

// checkStaticEdgesPresent is the soundness property: for every call site
// whose callee resolves statically through go/types to a function
// declared in the analyzed units, the graph must contain that edge.
func checkStaticEdgesPresent(t *testing.T, units []*callgraph.Unit, g *callgraph.Graph) {
	t.Helper()
	declared := make(map[*types.Func]bool)
	for _, n := range g.Nodes() {
		if n.Func != nil {
			declared[n.Func] = true
		}
	}
	for _, u := range units {
		for _, f := range u.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := staticCalleeOf(u.Info, call)
				if fn == nil || !declared[fn] {
					return true
				}
				e := g.EdgeAt(call)
				if e == nil {
					t.Errorf("missing edge for static call to %s at %s", fn.FullName(), u.Fset.Position(call.Pos()))
					return true
				}
				if e.Callee.Func != fn {
					t.Errorf("edge at %s resolves to %s, want %s", u.Fset.Position(call.Pos()), e.Callee.Name(), fn.FullName())
				}
				return true
			})
		}
	}
}

// staticCalleeOf mirrors the resolution the property quantifies over:
// calls the type checker itself names (idents and selector methods).
func staticCalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

func TestSoundnessCorpus(t *testing.T) {
	pkg, g := loadCorpus(t, "callgraph")
	checkStaticEdgesPresent(t, []*callgraph.Unit{{
		Path: pkg.Path, Fset: pkg.Fset, Files: pkg.Files, Info: pkg.Info,
	}}, g)
}

// TestSoundnessModule runs the same property over the entire module:
// every static call edge between module functions must be present in
// the graph the driver builds.
func TestSoundnessModule(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module load is not short")
	}
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(root, nil)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	var units []*callgraph.Unit
	for _, p := range pkgs {
		units = append(units, &callgraph.Unit{Path: p.Path, Fset: p.Fset, Files: p.Files, Info: p.Info})
	}
	g := callgraph.Build(units)
	checkStaticEdgesPresent(t, units, g)
}
