// Package callgraph builds a conservative, module-wide call graph over
// the type-checked packages the analysis driver loads — the substrate of
// the interprocedural layer (internal/analysis/summary and the poollife,
// lockatcall and determinism analyzers). Standard library only, like the
// rest of the suite.
//
// Nodes are function bodies: every named declaration (functions and
// methods) and every function literal gets exactly one node. Edges are
// call sites resolved to module nodes:
//
//   - static calls (pkg-level function identifiers) and method calls
//     resolve through go/types (Uses/Selections);
//   - function values are tracked intraprocedurally: a local variable
//     assigned exactly one target — a named function, a method value, or
//     a function literal — resolves calls through that variable to the
//     target's node. A variable assigned two different targets, passed
//     in as a parameter, or stored in a structure is not resolved;
//   - an immediately invoked literal (func(){...}()) edges to the
//     literal's node.
//
// Every call site carries a context kind: Call for plain synchronous
// calls, Defer for calls registered by a defer statement (they still run
// within the caller's activation, before control returns), and Go for
// goroutine spawns (asynchronous — summary propagation excludes them
// from synchronous effects such as lock acquisition).
//
// Soundness caveats, by construction: calls through interfaces, through
// function-typed parameters, fields, map/slice elements, and anything
// reached via reflection are not resolved. Each such site increments the
// caller's Unresolved count so analyses can account for the blind spots;
// the analyzers built on top stay conservative in the other direction
// (they only report when a resolved path proves a problem, so an
// unresolved call can cause a false negative, never a false positive).
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Unit is one loaded package's syntax and type information — the slice
// of analysis.Package the builder needs (declared here so the package
// has no dependency on the driver).
type Unit struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Info  *types.Info
}

// Kind classifies the context of a call edge.
type Kind uint8

const (
	// Call is a plain synchronous call.
	Call Kind = iota
	// Defer is a call registered by a defer statement: it runs at the
	// caller's return, still inside the caller's activation.
	Defer
	// Go is a goroutine spawn: asynchronous with respect to the caller.
	Go
)

func (k Kind) String() string {
	switch k {
	case Defer:
		return "defer"
	case Go:
		return "go"
	}
	return "call"
}

// Node is one function body in the module.
type Node struct {
	// Func is the declared function object; nil for function literals.
	Func *types.Func
	// Decl is the declaration (nil for literals); Lit the literal (nil
	// for declarations). Exactly one is set.
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	// Unit is the package the body lives in.
	Unit *Unit
	// Out lists this body's resolved call sites in source order; In the
	// edges whose callee is this node.
	Out []*Edge
	In  []*Edge
	// Unresolved counts call sites whose callee could not be resolved
	// (interface calls, untracked function values, calls of parameters).
	Unresolved int
	// UnresolvedSites holds the positions of those call sites, in source
	// order, for analyses that must report blind spots rather than stay
	// silent on them (the contract checkers treat an unresolved call as a
	// violation, the opposite polarity from the rest of the suite).
	UnresolvedSites []token.Pos
}

// Body returns the node's function body.
func (n *Node) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// Name renders a stable human-readable name: the go/types full name for
// declarations, "lit@file:line" for literals.
func (n *Node) Name() string {
	if n.Func != nil {
		return n.Func.FullName()
	}
	pos := n.Unit.Fset.Position(n.Lit.Pos())
	file := pos.Filename
	if i := strings.LastIndexByte(file, '/'); i >= 0 {
		file = file[i+1:]
	}
	return fmt.Sprintf("lit@%s:%d", file, pos.Line)
}

// Edge is one resolved call site.
type Edge struct {
	Caller *Node
	Callee *Node
	Site   *ast.CallExpr
	Kind   Kind
}

// Graph is the module-wide call graph.
type Graph struct {
	nodes    []*Node // deterministic order: units in load order, bodies in position order
	byFunc   map[*types.Func]*Node
	byBody   map[*ast.BlockStmt]*Node
	bySite   map[*ast.CallExpr]*Edge
	siteFunc map[*ast.CallExpr]*types.Func
}

// Nodes returns every node in deterministic order.
func (g *Graph) Nodes() []*Node { return g.nodes }

// NodeOf returns the node of a declared function, or nil.
func (g *Graph) NodeOf(fn *types.Func) *Node { return g.byFunc[fn] }

// ByBody returns the node owning body, or nil.
func (g *Graph) ByBody(body *ast.BlockStmt) *Node { return g.byBody[body] }

// EdgeAt returns the resolved edge of a call site, or nil when the site
// was not resolved (or is not a tracked call at all).
func (g *Graph) EdgeAt(call *ast.CallExpr) *Edge { return g.bySite[call] }

// CalleeFuncAt returns the named function a call site invokes — resolved
// statically or through a tracked function value — whether or not the
// function has a node in the graph. Extra-module callees (stdlib, e.g. a
// bound (*sync.Pool).Put method value) resolve here even though they have
// no edge; nil means the site is genuinely unresolved or not a function
// call (conversion, builtin, literal invocation).
func (g *Graph) CalleeFuncAt(call *ast.CallExpr) *types.Func { return g.siteFunc[call] }

// Build constructs the call graph over units. Units must be type-checked
// against each other (module-internal imports resolved), as the analysis
// loader guarantees.
func Build(units []*Unit) *Graph {
	g := &Graph{
		byFunc:   make(map[*types.Func]*Node),
		byBody:   make(map[*ast.BlockStmt]*Node),
		bySite:   make(map[*ast.CallExpr]*Edge),
		siteFunc: make(map[*ast.CallExpr]*types.Func),
	}
	// Pass 1: one node per function body, literals included.
	for _, u := range units {
		for _, f := range u.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body == nil {
						return true
					}
					node := &Node{Decl: n, Unit: u}
					if fn, ok := u.Info.Defs[n.Name].(*types.Func); ok {
						node.Func = fn
						g.byFunc[fn] = node
					}
					g.addNode(node, n.Body)
				case *ast.FuncLit:
					g.addNode(&Node{Lit: n, Unit: u}, n.Body)
				}
				return true
			})
		}
	}
	// Pass 2: resolve call sites per node.
	for _, node := range g.nodes {
		g.resolveCalls(node)
	}
	return g
}

func (g *Graph) addNode(n *Node, body *ast.BlockStmt) {
	if _, ok := g.byBody[body]; ok {
		return
	}
	g.byBody[body] = n
	g.nodes = append(g.nodes, n)
}

// funcValues tracks the single-assignment function values of one body:
// variables bound exactly once to a named function, a method value, or a
// literal. A second binding to a different target poisons the variable.
type funcValues struct {
	named map[*types.Var]*types.Func
	lits  map[*types.Var]*ast.FuncLit
	dirty map[*types.Var]bool
}

// funcValueTargets scans body (nested literals included: a literal may
// call a value its enclosing function bound, and the binding scan is
// per-variable, not per-scope) for function-value bindings.
func funcValueTargets(info *types.Info, body *ast.BlockStmt) *funcValues {
	fv := &funcValues{
		named: make(map[*types.Var]*types.Func),
		lits:  make(map[*types.Var]*ast.FuncLit),
		dirty: make(map[*types.Var]bool),
	}
	bind := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		v := varOf(info, id)
		if v == nil {
			return
		}
		if t := v.Type(); t == nil {
			return
		} else if _, ok := t.Underlying().(*types.Signature); !ok {
			return
		}
		switch rhs := ast.Unparen(rhs).(type) {
		case *ast.FuncLit:
			if fv.named[v] != nil || (fv.lits[v] != nil && fv.lits[v] != rhs) {
				fv.dirty[v] = true
			}
			fv.lits[v] = rhs
		default:
			if fn := staticCallee(info, rhs); fn != nil {
				if fv.lits[v] != nil || (fv.named[v] != nil && fv.named[v] != fn) {
					fv.dirty[v] = true
				}
				fv.named[v] = fn
				return
			}
			// Bound to something we cannot resolve (a parameter, a call
			// result, a field): poison.
			fv.dirty[v] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					bind(n.Lhs[i], n.Rhs[i])
				}
			} else {
				// Multi-value assignment from a call: poison any
				// function-typed LHS (targets unknowable here).
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if v := varOf(info, id); v != nil {
							if _, ok := v.Type().Underlying().(*types.Signature); ok {
								fv.dirty[v] = true
							}
						}
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					bind(name, n.Values[i])
				}
			}
		case *ast.UnaryExpr:
			// &f: the address escaping means any writer may rebind it.
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					if v := varOf(info, id); v != nil {
						fv.dirty[v] = true
					}
				}
			}
		}
		return true
	})
	return fv
}

// resolveCalls walks node's body (stopping at nested literal bodies,
// which own their call sites) and records one edge per resolvable call.
func (g *Graph) resolveCalls(node *Node) {
	info := node.Unit.Info
	body := node.Body()
	// Function-value bindings are scanned from the outermost enclosing
	// body so a literal resolves values bound by the function it closes
	// over.
	fv := funcValueTargets(info, g.outermostBody(node))

	kindStack := []Kind{Call}
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return false // its own node
			case *ast.DeferStmt:
				kindStack = append(kindStack, Defer)
				walk(m.Call)
				kindStack = kindStack[:len(kindStack)-1]
				return false
			case *ast.GoStmt:
				kindStack = append(kindStack, Go)
				walk(m.Call)
				kindStack = kindStack[:len(kindStack)-1]
				return false
			case *ast.CallExpr:
				g.addEdge(node, m, fv, kindStack[len(kindStack)-1])
				// Arguments may contain further calls (and deferred/go
				// calls evaluate arguments eagerly in the caller).
				if len(kindStack) > 1 {
					kindStack = append(kindStack, Call)
					for _, arg := range m.Args {
						walk(arg)
					}
					kindStack = kindStack[:len(kindStack)-1]
					return false
				}
			}
			return true
		})
	}
	walk(body)
}

// outermostBody finds the outermost function body lexically enclosing
// node (itself, for declarations).
func (g *Graph) outermostBody(node *Node) *ast.BlockStmt {
	if node.Decl != nil {
		return node.Decl.Body
	}
	// Literals: find the enclosing declaration by position.
	for _, f := range node.Unit.Files {
		if f.Pos() <= node.Lit.Pos() && node.Lit.End() <= f.End() {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fd.Body.Pos() <= node.Lit.Pos() && node.Lit.End() <= fd.Body.End() {
					return fd.Body
				}
			}
		}
	}
	return node.Lit.Body
}

// addEdge resolves one call site and records the edge (or the
// unresolved count).
func (g *Graph) addEdge(caller *Node, call *ast.CallExpr, fv *funcValues, kind Kind) {
	info := caller.Unit.Info
	fun := ast.Unparen(call.Fun)

	// Conversions and builtins are not calls we track.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	if id, ok := fun.(*ast.Ident); ok {
		if _, ok := info.Uses[id].(*types.Builtin); ok {
			return
		}
	}

	// Immediately invoked literal.
	if lit, ok := fun.(*ast.FuncLit); ok {
		g.link(caller, g.byBody[lit.Body], call, kind)
		return
	}
	// Static / method call.
	if fn := staticCallee(info, call.Fun); fn != nil {
		g.siteFunc[call] = fn
		if callee := g.byFunc[fn]; callee != nil {
			g.link(caller, callee, call, kind)
		}
		// A named callee outside the module (stdlib) is resolved but has
		// no node; it is not "unresolved" — its effects are modelled by
		// name (sync.Pool, sync.Mutex) where they matter.
		return
	}
	// Function value: a tracked local variable.
	if id, ok := fun.(*ast.Ident); ok {
		if v := varOf(info, id); v != nil && !fv.dirty[v] {
			if fn := fv.named[v]; fn != nil {
				g.siteFunc[call] = fn
				if callee := g.byFunc[fn]; callee != nil {
					g.link(caller, callee, call, kind)
					return
				}
				return // named but extra-module
			}
			if lit := fv.lits[v]; lit != nil {
				if callee := g.byBody[lit.Body]; callee != nil {
					g.link(caller, callee, call, kind)
					return
				}
			}
		}
	}
	caller.Unresolved++
	caller.UnresolvedSites = append(caller.UnresolvedSites, call.Pos())
}

func (g *Graph) link(caller, callee *Node, site *ast.CallExpr, kind Kind) {
	if callee == nil {
		caller.Unresolved++
		caller.UnresolvedSites = append(caller.UnresolvedSites, site.Pos())
		return
	}
	e := &Edge{Caller: caller, Callee: callee, Site: site, Kind: kind}
	caller.Out = append(caller.Out, e)
	callee.In = append(callee.In, e)
	g.bySite[site] = e
}

// staticCallee resolves an expression to the named function it denotes:
// a function identifier, a selector method (value or call), or nil.
// Conversions, builtins, and variables resolve to nil.
func staticCallee(info *types.Info, e ast.Expr) *types.Func {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[e].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		if f, ok := info.Uses[e.Sel].(*types.Func); ok {
			return f // package-qualified function
		}
	}
	return nil
}

// varOf resolves id to the variable it defines or uses.
func varOf(info *types.Info, id *ast.Ident) *types.Var {
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// Format renders the graph for golden tests: one sorted line per edge,
// "caller -> callee [kind]", plus "caller ?N" lines for nodes with
// unresolved sites.
func (g *Graph) Format() string {
	var lines []string
	for _, n := range g.nodes {
		for _, e := range n.Out {
			lines = append(lines, fmt.Sprintf("%s -> %s [%s]", n.Name(), e.Callee.Name(), e.Kind))
		}
		if n.Unresolved > 0 {
			lines = append(lines, fmt.Sprintf("%s ?%d", n.Name(), n.Unresolved))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}
