// Package analysis is a self-contained, stdlib-only static-analysis
// framework for this repository, in the spirit of go/analysis but without
// the x/tools dependency. It loads and type-checks every package of the
// module (see Load), runs a suite of repo-specific analyzers over the
// syntax and type information, and reports diagnostics with positions.
//
// The analyzers enforce the invariants GraphNER's reproducibility rests
// on — bit-deterministic output and pool-safe, NaN-free hot paths:
//
//   - poolescape: values obtained from a sync.Pool must not be used,
//     returned, stored, or captured after the corresponding Put;
//   - maporder: iteration over a map must not feed ordered output
//     (slice appends, indexed writes, encoders) without a sort;
//   - floatcmp: ==/!= on computed floats must go through floats.EpsEq;
//   - naninf: divisions and math.Log/math.Exp in the propagation and CRF
//     hot paths need a guard or an explicit annotation;
//   - ctxloop: goroutine-spawning loops must carry a join/cancel handle
//     (sync.WaitGroup, channel, or context.Context).
//
// On top of the syntactic suite, four flow-sensitive analyzers run over
// per-function control-flow graphs (internal/analysis/cfg) solved with
// the generic worklist engine (internal/analysis/dataflow) — the
// correctness gate for the parallel/sharded propagation work:
//
//   - lockbalance: every Lock reaches an Unlock on all CFG paths
//     (defer-aware), no double-Lock on a path, no deferred Unlock in a
//     loop;
//   - sharedwrite: goroutine writes to captured variables, fields, and
//     maps need a held mutex, the module-wide guard discipline, or a
//     spawn/Wait hand-off;
//   - atomicmix: an address handed to sync/atomic anywhere must never be
//     accessed non-atomically;
//   - waitgroupbalance: wg.Add on the spawning side only, wg.Done
//     reached on every goroutine exit path.
//
// A finding that is deliberate is silenced by annotating the offending
// line (or the line above it) with a "// lint:checked <reason>" comment;
// the reason is required reading for the next maintainer, not the tool.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"

	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/summary"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	// Doc is a one-line description shown by the driver.
	Doc string
	// Run inspects the package in pass and reports findings via
	// pass.Report. It returns an error only for internal failures, not
	// for findings.
	Run func(pass *Pass) error
	// AppliesTo, when non-nil, restricts the analyzer to packages whose
	// import path it accepts. The test harness bypasses it; the driver
	// honours it.
	AppliesTo func(pkgPath string) bool
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Facts carries cross-package knowledge accumulated in dependency
	// order (pool sources and releasers).
	Facts *Facts
	// CallGraph is the module-wide call graph and Summaries the
	// interprocedural effect summaries over it. Both are read-only and
	// shared by every pass; nil only in reduced test harnesses.
	CallGraph *callgraph.Graph
	Summaries *summary.Set

	suppress map[string]map[int]bool // filename -> suppressed lines
	report   func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Symbol names the top-level declaration enclosing the finding
	// (Type.Method for methods), or "" outside any declaration. The
	// driver's baseline keys on {analyzer, package, symbol} — no line
	// numbers — so recorded findings survive unrelated edits.
	Symbol string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Report records a finding at pos unless the source line (or the line
// above it) carries a "// lint:checked" annotation.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if lines, ok := p.suppress[position.Filename]; ok {
		if lines[position.Line] || lines[position.Line-1] {
			return
		}
	}
	p.report(Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Symbol:   symbolAt(p.Files, pos),
	})
}

// symbolAt names the top-level declaration enclosing pos (doc comments
// included), or "" when pos lies between declarations.
func symbolAt(files []*ast.File, pos token.Pos) string {
	for _, f := range files {
		if pos < f.FileStart || pos >= f.FileEnd {
			continue
		}
		for _, d := range f.Decls {
			start := d.Pos()
			switch d := d.(type) {
			case *ast.FuncDecl:
				if d.Doc != nil {
					start = d.Doc.Pos()
				}
				if pos < start || pos >= d.End() {
					continue
				}
				name := d.Name.Name
				if d.Recv != nil && len(d.Recv.List) > 0 {
					if t := recvTypeName(d.Recv.List[0].Type); t != "" {
						name = t + "." + name
					}
				}
				return name
			case *ast.GenDecl:
				if d.Doc != nil {
					start = d.Doc.Pos()
				}
				if pos < start || pos >= d.End() {
					continue
				}
				for _, sp := range d.Specs {
					if pos < sp.Pos() || pos >= sp.End() {
						continue
					}
					switch sp := sp.(type) {
					case *ast.ValueSpec:
						if len(sp.Names) > 0 {
							return sp.Names[0].Name
						}
					case *ast.TypeSpec:
						return sp.Name.Name
					}
				}
				return ""
			}
		}
		return ""
	}
	return ""
}

// buildSuppressions scans the comments of every file for lint:checked
// annotations and records the lines they cover.
func buildSuppressions(fset *token.FileSet, files []*ast.File) map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.Contains(c.Text, "lint:checked") {
					continue
				}
				pos := fset.Position(c.Pos())
				m := out[pos.Filename]
				if m == nil {
					m = make(map[int]bool)
					out[pos.Filename] = m
				}
				m[pos.Line] = true
			}
		}
	}
	return out
}

// Run executes the analyzers over the loaded packages in order, honouring
// AppliesTo, and returns all diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunN(pkgs, analyzers, 1)
}

// BuildInterprocedural constructs the module-wide call graph and effect
// summaries over the loaded packages, shared read-only by every pass.
func BuildInterprocedural(pkgs []*Package) (*callgraph.Graph, *summary.Set) {
	units := make([]*callgraph.Unit, len(pkgs))
	for i, p := range pkgs {
		units[i] = &callgraph.Unit{Path: p.Path, Fset: p.Fset, Files: p.Files, Info: p.Info}
	}
	g := callgraph.Build(units)
	return g, summary.Compute(g)
}

// RunN is Run with a package-level worker pool. Facts are computed for
// every package first (in load order, which Load guarantees is
// dependency order), then the call graph and summaries over all
// packages; the per-package analyzer loops — the bulk of the wall clock
// — then run on up to workers goroutines. Output is independent of
// worker count: diagnostics are collected per package and merged in
// load order before the final position sort.
func RunN(pkgs []*Package, analyzers []*Analyzer, workers int) ([]Diagnostic, error) {
	facts := NewFacts()
	for _, pkg := range pkgs {
		facts.AddPackage(pkg)
	}
	graph, sums := BuildInterprocedural(pkgs)

	if workers < 1 {
		workers = 1
	}
	perPkg := make([][]Diagnostic, len(pkgs))
	errs := make([]error, len(pkgs))
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				perPkg[i], errs[i] = runPackage(pkgs[i], analyzers, facts, graph, sums)
			}
		}()
	}
	for i := range pkgs {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	var diags []Diagnostic
	for _, d := range perPkg {
		diags = append(diags, d...)
	}
	sortDiagnostics(diags)
	return diags, nil
}

// runPackage runs every applicable analyzer over one package.
func runPackage(pkg *Package, analyzers []*Analyzer, facts *Facts, graph *callgraph.Graph, sums *summary.Set) ([]Diagnostic, error) {
	supp := buildSuppressions(pkg.Fset, pkg.Files)
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			Info:      pkg.Info,
			Facts:     facts,
			CallGraph: graph,
			Summaries: sums,
			suppress:  supp,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	return diags, nil
}

// sortDiagnostics orders findings by position then analyzer name.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// All returns the full analyzer suite in stable order: the syntactic
// checks first, then the flow-sensitive concurrency suite, the
// interprocedural checks, and the performance-contract checkers.
func All() []*Analyzer {
	return []*Analyzer{
		PoolEscape, MapOrder, FloatCmp, NanInf, CtxLoop,
		LockBalance, SharedWrite, AtomicMix, WaitGroupBalance,
		PoolLife, LockAtCall, Determinism, ErrDrop,
		NoAlloc, NonBlocking, BadDirective,
	}
}

// isTestFile reports whether pos lies in a *_test.go file.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// walkFuncs visits every function body of the files: named declarations
// get their *ast.FuncDecl; function literals are visited as part of the
// enclosing body walk by the analyzers themselves.
func walkFuncs(files []*ast.File, fn func(decl *ast.FuncDecl)) {
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// exprIdents collects the variable objects referenced by e.
func exprIdents(info *types.Info, e ast.Expr) []*types.Var {
	var out []*types.Var
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok {
				out = append(out, v)
			}
		}
		return true
	})
	return out
}

// isFloat reports whether t's underlying type is a floating-point basic
// type (or an untyped float constant type).
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
