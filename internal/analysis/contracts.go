package analysis

// Performance contracts: a function declaration whose doc comment
// carries the directive `graphner:noalloc` (written as a comment line,
// no space after the slashes) must not allocate, and one carrying
// `graphner:nonblocking` must not block — transitively, through every
// call the call graph resolves. The noalloc and nonblocking analyzers
// enforce the contracts against the MayAlloc/MayBlock summary domains
// (internal/analysis/summary/contracts.go) and render a witness chain
// from the annotated function down to the offending site; baddirective
// rejects malformed, misplaced, duplicated, or uncheckable directives
// instead of ignoring them.
//
// Polarity: these analyzers report what they cannot verify. An
// unresolved call (interface method, untracked function value) or an
// unmodeled extra-module callee inside an annotated function's resolved
// closure is a finding, not a blind spot — the opposite default from
// the rest of the suite. A resolved callee that carries the same
// directive is trusted and not descended into: it is checked (and its
// own justified suppressions honored) where it is declared.

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"strings"

	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/summary"
)

const (
	directiveMarker      = "//graphner:"
	directiveNoalloc     = "noalloc"
	directiveNonblocking = "nonblocking"
)

var validDirectives = map[string]bool{
	directiveNoalloc:     true,
	directiveNonblocking: true,
}

// directive is one graphner: comment found in a file.
type directive struct {
	comment *ast.Comment
	name    string        // first whitespace-delimited token after the colon
	decl    *ast.FuncDecl // declaration whose doc carries it; nil when floating
}

// fileDirectives collects every graphner: directive in f, attached to
// its function declaration when the comment is part of one's doc
// group. Text after the first whitespace is free commentary, matching
// the go: directive convention.
func fileDirectives(f *ast.File) []directive {
	docOf := make(map[*ast.Comment]*ast.FuncDecl)
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Doc != nil {
			for _, c := range fd.Doc.List {
				docOf[c] = fd
			}
		}
	}
	var out []directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, directiveMarker)
			if !ok {
				continue
			}
			name := rest
			if i := strings.IndexAny(rest, " \t"); i >= 0 {
				name = rest[:i]
			}
			out = append(out, directive{comment: c, name: name, decl: docOf[c]})
		}
	}
	return out
}

// nodeHasDirective reports whether the node's declaration carries the
// named directive — the trust rule: annotated callees are verified at
// their own declaration, not re-litigated in every caller.
func nodeHasDirective(n *callgraph.Node, dir string) bool {
	if n == nil || n.Decl == nil || n.Decl.Doc == nil {
		return false
	}
	for _, c := range n.Decl.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, directiveMarker)
		if !ok {
			continue
		}
		name := rest
		if i := strings.IndexAny(rest, " \t"); i >= 0 {
			name = rest[:i]
		}
		if name == dir {
			return true
		}
	}
	return false
}

// NoAlloc enforces graphner:noalloc contracts.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "a function marked graphner:noalloc must not allocate, transitively through resolved calls",
	Run:  func(pass *Pass) error { return runContract(pass, directiveNoalloc) },
}

// NonBlocking enforces graphner:nonblocking contracts.
var NonBlocking = &Analyzer{
	Name: "nonblocking",
	Doc:  "a function marked graphner:nonblocking must not block, transitively through resolved calls",
	Run:  func(pass *Pass) error { return runContract(pass, directiveNonblocking) },
}

func runContract(pass *Pass, dir string) error {
	if pass.CallGraph == nil || pass.Summaries == nil {
		return nil // reduced harness: contracts need the interprocedural layer
	}
	checked := make(map[*ast.FuncDecl]bool)
	for _, f := range pass.Files {
		for _, d := range fileDirectives(f) {
			if d.name != dir || d.decl == nil || d.decl.Body == nil || checked[d.decl] {
				continue // malformed/misplaced directives are baddirective's
			}
			checked[d.decl] = true
			if node := pass.CallGraph.ByBody(d.decl.Body); node != nil {
				checkContract(pass, node, dir)
			}
		}
	}
	return nil
}

// checkContract reports every effect site of the annotated function:
// direct sites verbatim, transitive sites with the witness chain down
// to the first concrete site. Reports anchor at the site inside the
// annotated body (the entry of the chain), so a justification
// suppresses exactly one entry point.
func checkContract(pass *Pass, root *callgraph.Node, dir string) {
	verb := "allocate"
	if dir == directiveNonblocking {
		verb = "block"
	}
	for _, site := range contractSites(pass.Summaries.Of(root), dir) {
		if site.Callee == nil {
			pass.Report(site.Pos, "%s is marked graphner:%s but %s", contractName(root), dir, site.What)
			continue
		}
		if nodeHasDirective(site.Callee, dir) {
			continue // trusted: the callee's own contract check covers it
		}
		chain, leaf, ok := witness(pass.Summaries, root, site, dir)
		if !ok {
			continue // every concrete site lies behind separately-checked functions
		}
		p := pass.Fset.Position(leaf.Pos)
		pass.Report(site.Pos, "%s is marked graphner:%s but may %s: %s → %s (%s:%d)",
			contractName(root), dir, verb, strings.Join(chain, " → "), leaf.What, filepath.Base(p.Filename), p.Line)
	}
}

func contractSites(s *summary.Summary, dir string) []summary.EffectSite {
	if dir == directiveNonblocking {
		return s.BlockSites
	}
	return s.AllocSites
}

// witness descends from a transitive site's callee to the first
// concrete effect site, skipping callees that carry the directive
// themselves and backtracking out of cycles. The chain starts at the
// annotated root; ok is false when every concrete site is behind a
// trusted (annotated) function, in which case there is nothing to
// report here.
func witness(sums *summary.Set, root *callgraph.Node, start summary.EffectSite, dir string) ([]string, summary.EffectSite, bool) {
	chain := []string{contractName(root)}
	visited := make(map[*callgraph.Node]bool)
	var dfs func(n *callgraph.Node) (summary.EffectSite, bool)
	dfs = func(n *callgraph.Node) (summary.EffectSite, bool) {
		if visited[n] {
			return summary.EffectSite{}, false
		}
		visited[n] = true
		chain = append(chain, contractName(n))
		sites := contractSites(sums.Of(n), dir)
		for _, s := range sites {
			if s.Callee == nil {
				return s, true
			}
		}
		for _, s := range sites {
			if !nodeHasDirective(s.Callee, dir) {
				if leaf, ok := dfs(s.Callee); ok {
					return leaf, true
				}
			}
		}
		chain = chain[:len(chain)-1]
		return summary.EffectSite{}, false
	}
	leaf, ok := dfs(start.Callee)
	return chain, leaf, ok
}

// contractName renders a node for witness chains: Type.Method for
// methods, the bare name for functions, lit@file:line for literals.
func contractName(n *callgraph.Node) string {
	if n.Decl == nil {
		return n.Name()
	}
	name := n.Decl.Name.Name
	if n.Decl.Recv != nil && len(n.Decl.Recv.List) > 0 {
		if t := recvTypeName(n.Decl.Recv.List[0].Type); t != "" {
			name = t + "." + name
		}
	}
	return name
}

// recvTypeName extracts the receiver's base type name.
func recvTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr:
		return recvTypeName(e.X)
	case *ast.IndexListExpr:
		return recvTypeName(e.X)
	}
	return ""
}

// BadDirective rejects directives the contract checkers would
// otherwise silently ignore.
var BadDirective = &Analyzer{
	Name: "baddirective",
	Doc:  "graphner: directives must be well-formed, on a function declaration with a body, and not duplicated",
	Run:  runBadDirective,
}

// nearMissRe matches comments that look like a directive with a space
// after the slashes — "// graphner:noalloc" is a plain comment to the
// parser but almost certainly a typo of a directive.
var nearMissRe = regexp.MustCompile(`^//[ \t]+graphner:`)

func runBadDirective(pass *Pass) error {
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if nearMissRe.MatchString(c.Text) {
					pass.Report(c.Pos(), "graphner: directive with a space after the slashes is ignored; write the comment as one word")
				}
			}
		}
		seen := make(map[*ast.FuncDecl]map[string]bool)
		for _, d := range fileDirectives(f) {
			switch {
			case d.decl == nil:
				pass.Report(d.comment.Pos(), "graphner:%s must be the doc comment of a function declaration", d.name)
			case !validDirectives[d.name]:
				pass.Report(d.decl.Name.Pos(), "unknown graphner: directive %q (valid: noalloc, nonblocking)", d.name)
			case d.decl.Body == nil:
				pass.Report(d.decl.Name.Pos(), "graphner:%s on a declaration without a body cannot be checked", d.name)
			default:
				m := seen[d.decl]
				if m == nil {
					m = make(map[string]bool)
					seen[d.decl] = m
				}
				if m[d.name] {
					pass.Report(d.decl.Name.Pos(), "duplicate graphner:%s directive", d.name)
				}
				m[d.name] = true
			}
		}
	}
	return nil
}
