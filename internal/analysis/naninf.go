package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NanInf polices the numeric hot paths (internal/propagate and
// internal/crf): a floating-point division, math.Log, or math.Exp whose
// inputs are not visibly guarded can mint a NaN or Inf that the Jacobi
// sweep then propagates to every reachable vertex — silently, because
// IEEE arithmetic never traps. Each such site must either be dominated by
// a guard that mentions the operand (a comparison, math.IsNaN/math.IsInf
// check, or clamping branch in an enclosing or preceding if), or carry a
// // lint:checked annotation stating why the value is finite.
//
// Constant denominators and constant arguments are exempt. The guard
// recognition is syntactic and local by design: if the reason a value is
// finite is too far away to see, the annotation documents it where the
// risk is.
var NanInf = &Analyzer{
	Name: "naninf",
	Doc:  "unguarded division/Log/Exp in numeric hot paths",
	AppliesTo: func(pkgPath string) bool {
		return strings.Contains(pkgPath, "internal/propagate") || strings.Contains(pkgPath, "internal/crf")
	},
	Run: runNanInf,
}

func runNanInf(pass *Pass) error {
	files := pass.Files[:0:0]
	for _, f := range pass.Files {
		// Reference computations in tests fail loudly if they mint a NaN;
		// the guard discipline is for the production hot paths.
		if !isTestFile(pass.Fset, f.Pos()) {
			files = append(files, f)
		}
	}
	walkFuncs(files, func(fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.QUO || !isFloat(pass.Info.TypeOf(n)) {
					return true
				}
				if isConstExpr(pass.Info, n.Y) {
					return true
				}
				if !guarded(pass.Info, fd.Body, n, n.Y) {
					pass.Report(n.OpPos, "float division without a visible guard on the denominator (guard it, or annotate with // lint:checked)")
				}
			case *ast.AssignStmt:
				if n.Tok != token.QUO_ASSIGN || len(n.Lhs) != 1 || !isFloat(pass.Info.TypeOf(n.Lhs[0])) {
					return true
				}
				if isConstExpr(pass.Info, n.Rhs[0]) {
					return true
				}
				if !guarded(pass.Info, fd.Body, n, n.Rhs[0]) {
					pass.Report(n.TokPos, "float division without a visible guard on the denominator (guard it, or annotate with // lint:checked)")
				}
			case *ast.CallExpr:
				name := mathCallName(pass.Info, n)
				if name != "Log" && name != "Log2" && name != "Log10" && name != "Exp" {
					return true
				}
				if len(n.Args) != 1 || isConstExpr(pass.Info, n.Args[0]) {
					return true
				}
				if !guarded(pass.Info, fd.Body, n, n.Args[0]) {
					pass.Report(n.Pos(), "math.%s on an unguarded argument can produce NaN/Inf (guard it, or annotate with // lint:checked)", name)
				}
			}
			return true
		})
	})
	return nil
}

// mathCallName returns the function name for calls into package math.
func mathCallName(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pkg, ok := info.Uses[id].(*types.PkgName)
	if !ok || pkg.Imported().Path() != "math" {
		return ""
	}
	return sel.Sel.Name
}

// guarded reports whether some guard mentioning a variable of operand
// dominates expr inside body: the condition of an enclosing if or for, or
// the condition of an if statement preceding expr's statement in any
// enclosing block. This catches the three idioms the hot paths use —
//
//	if kappa == 0 { continue }        // preceding early-exit
//	if p < floor { p = floor }        // preceding clamp
//	if !math.IsInf(lp, -1) { ... }    // enclosing branch
//
// — without attempting real dataflow.
func guarded(info *types.Info, body ast.Node, expr ast.Node, operand ast.Expr) bool {
	vars := make(map[*types.Var]bool)
	for _, v := range exprIdents(info, operand) {
		vars[v] = true
	}
	if len(vars) == 0 {
		return false // a call result or fresh composite: nothing to guard on
	}
	mentions := func(e ast.Expr) bool {
		for _, v := range exprIdents(info, e) {
			if vars[v] {
				return true
			}
		}
		return false
	}
	path := nodePath(body, expr)
	guarded := false
	for i, n := range path {
		switch n := n.(type) {
		case *ast.IfStmt:
			if n.Cond != nil && mentions(n.Cond) {
				guarded = true
			}
		case *ast.ForStmt:
			if n.Cond != nil && mentions(n.Cond) {
				guarded = true
			}
		case *ast.BlockStmt:
			// The next path element is the statement containing expr;
			// scan its preceding siblings for guards.
			if i+1 >= len(path) {
				continue
			}
			for _, stmt := range n.List {
				if stmt == path[i+1] {
					break
				}
				ifs, ok := stmt.(*ast.IfStmt)
				if ok && ifs.Cond != nil && mentions(ifs.Cond) {
					guarded = true
				}
			}
		}
		if guarded {
			return true
		}
	}
	return false
}

// nodePath returns the chain of nodes from body down to target
// (inclusive of enclosing statements, exclusive of body itself).
func nodePath(body, target ast.Node) []ast.Node {
	var path, best []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			path = path[:len(path)-1]
			return true
		}
		path = append(path, n)
		if n == target {
			best = append([]ast.Node(nil), path...)
			return false
		}
		return true
	})
	return best
}
