package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"maps"
	"strings"

	"repro/internal/analysis/cfg"
	"repro/internal/analysis/dataflow"
)

// ErrDrop flags error returns that vanish along the serving and
// artifact-decode paths — the places where a swallowed decode or I/O
// failure turns into a silently wrong tagging response instead of a 5xx.
// Four shapes are reported:
//
//   - a call statement (plain, go, or defer) discarding a callee's error
//     result entirely;
//   - an error result assigned to the blank identifier;
//   - a dead store: an error written to a variable that no path reads
//     before it is overwritten or goes out of scope — solved as backward
//     liveness over the function's CFG, so a check reached only through
//     a loop back edge still counts;
//   - a := that shadows an error variable still read after the inner
//     scope closes (the classic typo that returns the outer, never-set
//     error).
//
// Infallible-by-contract writers (the fmt print family, bytes.Buffer,
// strings.Builder) are exempt. Deliberate drops — a best-effort cache
// warm, a Close on a read-only file — take the lint:checked hatch with
// the reason spelled out, like every other analyzer here.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "dropped, blank-discarded, dead-stored, or shadowed error returns",
	AppliesTo: func(pkgPath string) bool {
		switch pkgPath {
		case "repro/internal/serving", "repro/internal/graphner", "repro/cmd/graphnerd":
			return true
		}
		return false
	},
	Run: runErrDrop,
}

func runErrDrop(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkErrDrop(pass, n.Type, n.Body)
				}
			case *ast.FuncLit:
				checkErrDrop(pass, n.Type, n.Body)
			}
			return true
		})
	}
	return nil
}

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

func checkErrDrop(pass *Pass, ft *ast.FuncType, body *ast.BlockStmt) {
	// Statement-level shapes: dropped calls, blank discards, shadows.
	// Nested literals run their own checkErrDrop; skip their subtrees.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n.Body != body {
				return false
			}
		case *ast.ExprStmt:
			reportDroppedCall(pass, n.X)
		case *ast.GoStmt:
			reportDroppedCall(pass, n.Call)
		case *ast.DeferStmt:
			reportDroppedCall(pass, n.Call)
		case *ast.AssignStmt:
			checkBlankErr(pass, n)
			checkErrShadow(pass, body, n)
		}
		return true
	})

	checkErrDeadStores(pass, ft, body)
}

// reportDroppedCall flags e when it is a call whose final result is an
// error that no one receives.
func reportDroppedCall(pass *Pass, e ast.Expr) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	sig, ok := pass.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return // conversion or builtin
	}
	res := sig.Results()
	if res.Len() == 0 || !isErrorType(res.At(res.Len()-1).Type()) {
		return
	}
	if errDropExempt(pass.Info, call) {
		return
	}
	pass.Report(call.Pos(), "the error result of %s is dropped", calleeLabel(pass.Info, call))
}

// errDropExempt lists the callees whose error results are dead by
// contract: the fmt print family and the in-memory writers that document
// a nil error unconditionally.
func errDropExempt(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type().String()
	return strings.HasSuffix(recv, "bytes.Buffer") || strings.HasSuffix(recv, "strings.Builder")
}

// calleeLabel renders the called function for a diagnostic.
func calleeLabel(info *types.Info, call *ast.CallExpr) string {
	if fn := calleeFunc(info, call); fn != nil {
		return fn.Name()
	}
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return "the call"
}

// checkBlankErr flags error results assigned to the blank identifier.
func checkBlankErr(pass *Pass, as *ast.AssignStmt) {
	info := pass.Info
	blankAt := func(i int) (*ast.Ident, bool) {
		id, ok := as.Lhs[i].(*ast.Ident)
		if ok && id.Name == "_" {
			return id, true
		}
		return nil, false
	}
	// Multi-assign from one call: match result indices against the
	// callee's signature.
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		sig, ok := info.TypeOf(call.Fun).(*types.Signature)
		if !ok || errDropExempt(info, call) {
			return
		}
		for i := 0; i < len(as.Lhs) && i < sig.Results().Len(); i++ {
			if id, ok := blankAt(i); ok && isErrorType(sig.Results().At(i).Type()) {
				pass.Report(id.Pos(), "the error result of %s is discarded as _", calleeLabel(info, call))
			}
		}
		return
	}
	for i := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		id, ok := blankAt(i)
		if !ok || !isErrorType(info.TypeOf(as.Rhs[i])) {
			continue
		}
		if call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr); ok {
			if errDropExempt(info, call) {
				continue
			}
			pass.Report(id.Pos(), "the error result of %s is discarded as _", calleeLabel(info, call))
		}
	}
}

// checkErrShadow flags a := declaring a fresh error variable under a name
// an enclosing scope also binds to an error that is still read after the
// inner scope closes — the path where the outer error is returned without
// ever being set.
func checkErrShadow(pass *Pass, body *ast.BlockStmt, as *ast.AssignStmt) {
	if as.Tok != token.DEFINE {
		return
	}
	info := pass.Info
	for _, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		v, ok := info.Defs[id].(*types.Var)
		if !ok || !isErrorType(v.Type()) || v.Parent() == nil {
			continue
		}
		outerScope := v.Parent().Parent()
		if outerScope == nil {
			continue
		}
		_, obj := outerScope.LookupParent(id.Name, v.Pos())
		outer, ok := obj.(*types.Var)
		if !ok || !isErrorType(outer.Type()) || outer.Pos() < body.Pos() || outer.Pos() > body.End() {
			continue
		}
		// The shadow is dangerous only when the outer variable's next
		// mention after the inner scope closes is a read — a rebind first
		// means the two were never confused. First-mention is source
		// order; a conditional rebind ahead of the read under-reports,
		// the right failure mode for a heuristic with an annotation hatch.
		scopeEnd := v.Parent().End()
		writes := assignTargets(body)
		var next *ast.Ident
		ast.Inspect(body, func(n ast.Node) bool {
			use, ok := n.(*ast.Ident)
			if !ok || use.Pos() <= scopeEnd || info.Uses[use] != outer {
				return true
			}
			if next == nil || use.Pos() < next.Pos() {
				next = use
			}
			return true
		})
		if next != nil && !writes[next] {
			pass.Report(id.Pos(), "%s shadows an error variable that is still read after this block", id.Name)
		}
	}
}

// checkErrDeadStores reports error values stored into variables no path
// reads again: backward liveness over the CFG, so checks reached through
// loop back edges count and stores that every successor path overwrites
// do not.
func checkErrDeadStores(pass *Pass, ft *ast.FuncType, body *ast.BlockStmt) {
	info := pass.Info

	// The error-typed local variables of this body.
	errVars := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := info.Defs[id].(*types.Var); ok && isErrorType(v.Type()) {
			errVars[v] = true
		}
		return true
	})
	// Named error results are written by plain assignment, not Defs.
	boundary := make(map[*types.Var]bool)
	if ft.Results != nil {
		for _, f := range ft.Results.List {
			for _, name := range f.Names {
				if v, ok := info.Defs[name].(*types.Var); ok && isErrorType(v.Type()) {
					errVars[v] = true
					boundary[v] = true // live at exit: bare returns yield it
				}
			}
		}
	}
	if len(errVars) == 0 {
		return
	}

	// Per-node gen/kill. Reads inside nested literals and deferred calls
	// count as reads — a deferred closure inspecting err keeps every
	// earlier store live. Kills are direct assignments in the body's own
	// flow only.
	directLhs := make(map[*ast.Ident]bool)
	collectLhs := func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if as, ok := n.(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						directLhs[id] = true
					}
				}
			}
			return true
		})
	}
	collectLhs(body)

	genOf := func(root ast.Node, after token.Pos) map[*types.Var]bool {
		out := make(map[*types.Var]bool)
		ast.Inspect(root, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || id.Pos() <= after || directLhs[id] {
				return true
			}
			if v, ok := info.Uses[id].(*types.Var); ok && errVars[v] {
				out[v] = true
			}
			return true
		})
		return out
	}
	killOf := func(root ast.Node) map[*types.Var]bool {
		out := make(map[*types.Var]bool)
		ast.Inspect(root, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				if v := localVarOf(info, id); v != nil && errVars[v] {
					out[v] = true
				}
			}
			return true
		})
		return out
	}
	step := func(live map[*types.Var]bool, n ast.Node) map[*types.Var]bool {
		out := maps.Clone(live)
		for v := range killOf(n) {
			delete(out, v)
		}
		for v := range genOf(n, token.NoPos) {
			out[v] = true
		}
		return out
	}

	g := cfg.New(body)
	res := dataflow.Solve(g, dataflow.Problem[map[*types.Var]bool]{
		Dir:      dataflow.Backward,
		Boundary: func() map[*types.Var]bool { return maps.Clone(boundary) },
		Init:     func() map[*types.Var]bool { return map[*types.Var]bool{} },
		Join: func(a, b map[*types.Var]bool) map[*types.Var]bool {
			out := maps.Clone(a)
			for v := range b {
				out[v] = true
			}
			return out
		},
		Transfer: func(blk *cfg.Block, in map[*types.Var]bool) map[*types.Var]bool {
			out := in
			for i := len(blk.Nodes) - 1; i >= 0; i-- {
				out = step(out, blk.Nodes[i])
			}
			return out
		},
		Equal: func(a, b map[*types.Var]bool) bool { return maps.Equal(a, b) },
	})

	// liveAfter replays the block backward to the statement: the live set
	// just after stmt runs. When the store sits inside a compound node
	// (an if-init, say), the rest of that node still counts as reads but,
	// conservatively, not as kills.
	liveAfter := func(stmt ast.Node) map[*types.Var]bool {
		blk := g.BlockOf(stmt.Pos())
		if blk == nil {
			return nil
		}
		live := res.In[blk] // backward-flow entry: live at the block's program end
		for i := len(blk.Nodes) - 1; i >= 0; i-- {
			n := blk.Nodes[i]
			if n == stmt {
				return live
			}
			if n.Pos() <= stmt.Pos() && stmt.End() <= n.End() {
				out := maps.Clone(live)
				for v := range genOf(n, stmt.End()) {
					out[v] = true
				}
				return out
			}
			live = step(live, n)
		}
		return live
	}

	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		// Only stores of fresh error values are obligations: a call (or
		// comma-ok) result. Copies and nil resets are bookkeeping.
		fromCall := false
		for _, rhs := range as.Rhs {
			if _, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
				fromCall = true
			}
		}
		if !fromCall {
			return true
		}
		var live map[*types.Var]bool
		computed := false
		for _, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			v := localVarOf(info, id)
			if v == nil || !errVars[v] {
				continue
			}
			if !computed {
				live, computed = liveAfter(as), true
			}
			if live != nil && !live[v] {
				pass.Report(id.Pos(), "the error stored in %s is never checked", id.Name)
			}
		}
		return true
	})
}
