package analysis

import (
	"go/ast"
	"go/types"
)

// CtxLoop flags loops that spawn goroutines with no lifecycle handle.
// Every worker loop in this repository (graph build, k-NN search,
// propagation sweeps, parallel decoding) must either join its goroutines
// (sync.WaitGroup), bound them (a channel used as semaphore, done, or
// error conduit), or make them cancellable (context.Context). A bare
// `go f()` in a loop is an unbounded, unjoinable fan-out: under heavy
// serving traffic it leaks goroutines, and in batch code it lets the
// process exit before workers finish.
var CtxLoop = &Analyzer{
	Name: "ctxloop",
	Doc:  "goroutine-spawning loops need a WaitGroup, channel, or context",
	Run:  runCtxLoop,
}

func runCtxLoop(pass *Pass) error {
	walkFuncs(pass.Files, func(fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			var loopBody *ast.BlockStmt
			switch n := n.(type) {
			case *ast.ForStmt:
				loopBody = n.Body
			case *ast.RangeStmt:
				loopBody = n.Body
			default:
				return true
			}
			ast.Inspect(loopBody, func(m ast.Node) bool {
				g, ok := m.(*ast.GoStmt)
				if !ok {
					return true
				}
				if !hasLifecycleHandle(pass.Info, g) {
					pass.Report(g.Pos(), "goroutine spawned in a loop without a WaitGroup, channel, or context to join or cancel it")
				}
				return false // nested go inside the spawned body is its own problem
			})
			return true
		})
	})
	return nil
}

// hasLifecycleHandle reports whether the go statement references any value
// that can join, bound, or cancel the goroutine: a sync.WaitGroup (or
// pointer to one), any channel, or a context.Context.
func hasLifecycleHandle(info *types.Info, g *ast.GoStmt) bool {
	found := false
	ast.Inspect(g, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		if isLifecycleType(obj.Type()) {
			found = true
		}
		return true
	})
	return found
}

// isLifecycleType recognizes sync.WaitGroup, channels, and
// context.Context (through one level of pointer).
func isLifecycleType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() + "." + obj.Name() {
	case "sync.WaitGroup", "context.Context", "sync.Once":
		return true
	}
	return false
}
