package analysis

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the expected-diagnostic substring from a
// `// want "..."` marker in a testdata file.
var wantRe = regexp.MustCompile(`want "([^"]*)"`)

// runOnTestdata loads testdata/src/<analyzer-name>, runs the analyzer
// (bypassing AppliesTo), and checks its diagnostics against the want
// markers: every marker must be hit and every diagnostic must land on a
// marked line.
func runOnTestdata(t *testing.T, a *Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", a.Name)
	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	facts := NewFacts()
	facts.AddPackage(pkg)
	graph, sums := BuildInterprocedural([]*Package{pkg})
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		Info:      pkg.Info,
		Facts:     facts,
		CallGraph: graph,
		Summaries: sums,
		suppress:  buildSuppressions(pkg.Fset, pkg.Files),
		report:    func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s.Run: %v", a.Name, err)
	}

	type lineKey struct {
		file string
		line int
	}
	wants := make(map[lineKey][]string)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := lineKey{filepath.Base(pos.Filename), pos.Line}
				wants[k] = append(wants[k], m[1])
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("no want markers in %s: corpus would pass vacuously", dir)
	}

	hit := make(map[lineKey]int)
	for _, d := range diags {
		k := lineKey{filepath.Base(d.Pos.Filename), d.Pos.Line}
		matched := false
		for _, w := range wants[k] {
			if strings.Contains(d.Message, w) {
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d: %s", k.file, k.line, d.Message)
			continue
		}
		hit[k]++
	}
	for k, ws := range wants {
		if hit[k] == 0 {
			t.Errorf("missing diagnostic at %s:%d: want %q", k.file, k.line, ws)
		}
	}
}

func TestPoolEscape(t *testing.T) { runOnTestdata(t, PoolEscape) }
func TestMapOrder(t *testing.T)   { runOnTestdata(t, MapOrder) }
func TestFloatCmp(t *testing.T)   { runOnTestdata(t, FloatCmp) }
func TestNanInf(t *testing.T)     { runOnTestdata(t, NanInf) }
func TestCtxLoop(t *testing.T)    { runOnTestdata(t, CtxLoop) }

func TestPoolLife(t *testing.T)    { runOnTestdata(t, PoolLife) }
func TestLockAtCall(t *testing.T)  { runOnTestdata(t, LockAtCall) }
func TestDeterminism(t *testing.T) { runOnTestdata(t, Determinism) }
func TestErrDrop(t *testing.T)     { runOnTestdata(t, ErrDrop) }

func TestNoAlloc(t *testing.T)      { runOnTestdata(t, NoAlloc) }
func TestNonBlocking(t *testing.T)  { runOnTestdata(t, NonBlocking) }
func TestBadDirective(t *testing.T) { runOnTestdata(t, BadDirective) }

func TestLockBalance(t *testing.T)      { runOnTestdata(t, LockBalance) }
func TestSharedWrite(t *testing.T)      { runOnTestdata(t, SharedWrite) }
func TestAtomicMix(t *testing.T)        { runOnTestdata(t, AtomicMix) }
func TestWaitGroupBalance(t *testing.T) { runOnTestdata(t, WaitGroupBalance) }

// TestRepoClean loads the whole module and requires the full analyzer
// suite to come back empty — the linter is part of tier 1, so a new
// finding (or a new false positive) fails `go test ./...`.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module load is not short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, nil)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("Load found only %d packages; module discovery is broken", len(pkgs))
	}
	diags, err := Run(pkgs, All())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
