package analysis

import (
	"go/ast"
	"go/types"
	"maps"

	"repro/internal/analysis/cfg"
	"repro/internal/analysis/dataflow"
)

// WaitGroupBalance checks sync.WaitGroup accounting around goroutine
// spawns, flow-sensitively:
//
//   - wg.Add must happen on the spawning side, before the goroutine
//     exists: an Add inside the spawned closure races the matching Wait
//     (Wait may return before the Add runs), the classic
//     add-in-goroutine bug;
//   - wg.Done must be reachable on every exit path of the goroutine — a
//     must-analysis over the closure's CFG in which an executed Done or
//     a registered `defer wg.Done()` discharges the obligation. Early
//     returns before the defer is registered, and panic paths (which
//     edge to the CFG exit), are exactly the cases an AST-level "is
//     there a Done somewhere" check waves through.
//
// A goroutine that never mentions Done is out of scope here (ctxloop
// already demands a lifecycle handle for fan-outs).
var WaitGroupBalance = &Analyzer{
	Name: "waitgroupbalance",
	Doc:  "wg.Add before the spawn; wg.Done reached on every goroutine exit path",
	Run:  runWaitGroupBalance,
}

func runWaitGroupBalance(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
			if ok {
				checkGoroutineWaitGroup(pass, g, lit)
			}
			return true
		})
	}
	return nil
}

// wgCall resolves call to a sync.WaitGroup method and the receiver key.
func wgCall(info *types.Info, call *ast.CallExpr) (key, method string, ok bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.FullName() == "" {
		return "", "", false
	}
	switch fn.FullName() {
	case "(*sync.WaitGroup).Add", "(*sync.WaitGroup).Done", "(*sync.WaitGroup).Wait":
	default:
		return "", "", false
	}
	sel, selOK := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !selOK {
		return "", "", false
	}
	key = exprKey(sel.X)
	if key == "" {
		return "", "", false
	}
	return key, fn.Name(), true
}

func checkGoroutineWaitGroup(pass *Pass, g *ast.GoStmt, lit *ast.FuncLit) {
	info := pass.Info

	// Adds inside the goroutine, and the set of WaitGroups it must Done.
	doneKeys := make(map[string]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			return false // a nested spawn is its own checking site
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		key, method, ok := wgCall(info, call)
		if !ok {
			return true
		}
		switch method {
		case "Add":
			pass.Report(call.Pos(), "%s.Add inside the spawned goroutine races Wait; call Add before the go statement", key)
		case "Done":
			doneKeys[key] = true
		}
		return true
	})
	if len(doneKeys) == 0 {
		return
	}

	// Must-analysis: at the CFG exit, every doneKey must be discharged on
	// all paths. nil is the top element (unreachable); the boundary fact
	// is "nothing discharged yet".
	type doneFact map[string]bool
	graph := cfg.New(lit.Body)
	res := dataflow.Solve(graph, dataflow.Problem[doneFact]{
		Dir:      dataflow.Forward,
		Boundary: func() doneFact { return doneFact{} },
		Init:     func() doneFact { return nil },
		Join: func(a, b doneFact) doneFact {
			if a == nil {
				return b
			}
			if b == nil {
				return a
			}
			out := make(doneFact)
			for k := range a {
				if b[k] {
					out[k] = true
				}
			}
			return out
		},
		Transfer: func(blk *cfg.Block, in doneFact) doneFact {
			if in == nil {
				return nil
			}
			out := maps.Clone(in)
			for _, n := range blk.Nodes {
				for _, key := range nodeDoneCalls(info, n) {
					out[key] = true
				}
			}
			return out
		},
		Equal: func(a, b doneFact) bool {
			if (a == nil) != (b == nil) {
				return false
			}
			return maps.Equal(a, b)
		},
	})

	exitIn := res.In[graph.Exit]
	if exitIn == nil {
		return // the goroutine never exits (e.g. a serve loop)
	}
	for key := range doneKeys {
		if !exitIn[key] {
			pass.Report(g.Pos(), "goroutine can exit without calling %s.Done on some path (early return or panic before Done)", key)
		}
	}
}

// nodeDoneCalls collects the WaitGroup keys a CFG node discharges:
// executed Done calls and registered deferred Dones (direct or through a
// deferred literal). Nested function literals and go statements do not
// discharge anything on this flow.
func nodeDoneCalls(info *types.Info, n ast.Node) []string {
	var out []string
	collect := func(root ast.Node) {
		ast.Inspect(root, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				if m != root {
					return false
				}
			case *ast.GoStmt:
				return false
			case *ast.CallExpr:
				if key, method, ok := wgCall(info, m); ok && method == "Done" {
					out = append(out, key)
				}
			}
			return true
		})
	}
	if ds, ok := n.(*ast.DeferStmt); ok {
		if innerLit, ok := ast.Unparen(ds.Call.Fun).(*ast.FuncLit); ok {
			collect(innerLit.Body)
		} else {
			collect(ds.Call)
		}
		return out
	}
	collect(n)
	return out
}
