package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis/summary"
)

// Determinism flags order-nondeterminism reaching floating-point
// outputs — the property GraphNER's bit-reproducible beliefs, losses,
// and posteriors rest on. Two orders are untrusted: map iteration order
// (randomized per run) and goroutine scheduling order (a mutex makes a
// shared fold safe, not ordered). Because float addition is not
// associative, folding the same values in a different order produces a
// different bit pattern, and the artifact-digest machinery downstream
// treats that as corruption.
//
// The taint itself comes from the interprocedural summaries
// (summary.TaintedVars / TaintedResults): values accumulated under a map
// range or by loop-spawned goroutines, propagated through assignments
// and call results across function boundaries. The analyzer's job is the
// sinks, reported in the function where the nondeterminism becomes
// observable:
//
//   - returning a tainted float (or an expression computed from one),
//     including bare returns of tainted named results and returns of the
//     iteration variables themselves from inside a map range;
//   - assigning or accumulating a tainted float into memory that
//     outlives the function's locals (a field, a global, a container
//     element);
//   - folding directly into such memory in map-iteration order, or from
//     goroutines spawned in a loop — destinations the variable-level
//     taint cannot represent.
//
// maporder catches ordered *output* built under a map range (appends,
// encoders); this analyzer catches ordered *arithmetic*, which survives
// any amount of downstream sorting. Intentional order-insensitive uses
// (max/min selection, error-tolerant diagnostics) take the lint:checked
// hatch with the insensitivity argument.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "map-iteration or goroutine-scheduling order must not reach float outputs",
	Run:  runDeterminism,
}

func runDeterminism(pass *Pass) error {
	if pass.Summaries == nil {
		return nil // taint lives in the summaries; nothing to check without them
	}
	funcBodies(pass.Files, func(body *ast.BlockStmt, _ bool) {
		checkDeterminism(pass, body)
	})
	return nil
}

func checkDeterminism(pass *Pass, body *ast.BlockStmt) {
	info := pass.Info
	node := pass.Summaries.Graph().ByBody(body)
	if node == nil {
		return
	}
	tainted := pass.Summaries.TaintedVars(node)
	ranges := pass.Summaries.MapRanges(node)

	inRange := func(pos token.Pos) (summary.MapRange, bool) {
		for _, r := range ranges {
			if r.Stmt.Body.Pos() <= pos && pos < r.Stmt.Body.End() {
				return r, true
			}
		}
		return summary.MapRange{}, false
	}

	// nonLocalDest renders an assignment target that outlives the
	// function's locals; plain local variables return ok=false (their
	// taint is tracked by variable instead).
	nonLocalDest := func(lhs ast.Expr) (string, bool) {
		switch l := ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr:
			return writeKey(l), true
		case *ast.IndexExpr:
			return writeKey(l), true
		case *ast.Ident:
			if v, ok := info.Uses[l].(*types.Var); ok && v.Parent() == v.Pkg().Scope() {
				return l.Name, true
			}
		}
		return "", false
	}

	// Named float results, for bare returns.
	var results *ast.FieldList
	if node.Decl != nil {
		results = node.Decl.Type.Results
	} else {
		results = node.Lit.Type.Results
	}
	namedFloat := make(map[*types.Var]bool)
	if results != nil {
		for _, f := range results.List {
			for _, name := range f.Names {
				if v, ok := info.Defs[name].(*types.Var); ok && isFloat(v.Type()) {
					namedFloat[v] = true
				}
			}
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n.Body != body {
				return false // its own body via funcBodies
			}
		case *ast.ReturnStmt:
			if len(n.Results) == 0 {
				var vs []*types.Var
				for v := range namedFloat {
					if _, ok := tainted[v]; ok {
						vs = append(vs, v)
					}
				}
				sort.Slice(vs, func(i, j int) bool { return vs[i].Pos() < vs[j].Pos() })
				for _, v := range vs {
					pass.Report(n.Pos(), "returned float %s depends on %s", v.Name(), tainted[v].Taint)
				}
				return true
			}
			for _, res := range n.Results {
				if t := info.TypeOf(res); t == nil || !isFloat(t) {
					continue
				}
				if rt, ok := pass.Summaries.ExprTaint(node, tainted, res); ok {
					pass.Report(res.Pos(), "returned float depends on %s", rt.Taint)
				} else if r, ok := inRange(n.Pos()); ok && usesAnyVar(info, res, r.Vars) {
					pass.Report(res.Pos(), "returned float depends on map iteration order (first element visited)")
				}
			}
		case *ast.AssignStmt:
			if isAccumAssign(n.Tok) && len(n.Lhs) == 1 {
				dest, ok := nonLocalDest(n.Lhs[0])
				if !ok {
					return true
				}
				if t := info.TypeOf(n.Lhs[0]); t == nil || !isFloat(t) {
					return true
				}
				if rt, ok := pass.Summaries.ExprTaint(node, tainted, n.Rhs[0]); ok {
					pass.Report(n.Pos(), "float %s accumulates a value that depends on %s", dest, rt.Taint)
				} else if r, ok := inRange(n.Pos()); ok && usesAnyVar(info, n.Rhs[0], r.Vars) {
					pass.Report(n.Pos(), "float %s is folded in map iteration order", dest)
				}
				return true
			}
			if n.Tok != token.ASSIGN || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i := range n.Lhs {
				dest, ok := nonLocalDest(n.Lhs[i])
				if !ok {
					continue
				}
				if t := info.TypeOf(n.Lhs[i]); t == nil || !isFloat(t) {
					continue
				}
				if rt, ok := pass.Summaries.ExprTaint(node, tainted, n.Rhs[i]); ok {
					pass.Report(n.Pos(), "float %s is assigned a value that depends on %s", dest, rt.Taint)
				}
			}
		}
		return true
	})

	// Goroutine folds into captured longer-lived memory: the variable
	// seed in the summaries only covers plain locals, so fields, globals
	// and container elements are checked here, at the spawn structure.
	var walkLoops func(root ast.Node, depth int)
	walkLoops = func(root ast.Node, depth int) {
		ast.Inspect(root, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.ForStmt:
				walkLoops(m.Body, depth+1)
				return false
			case *ast.RangeStmt:
				walkLoops(m.Body, depth+1)
				return false
			case *ast.GoStmt:
				lit, ok := ast.Unparen(m.Call.Fun).(*ast.FuncLit)
				if !ok || depth == 0 {
					return false
				}
				ast.Inspect(lit.Body, func(gn ast.Node) bool {
					as, ok := gn.(*ast.AssignStmt)
					if !ok || !isAccumAssign(as.Tok) || len(as.Lhs) != 1 {
						return true
					}
					dest, ok := nonLocalDest(as.Lhs[0])
					if !ok {
						return true
					}
					if base := rootIdent(ast.Unparen(as.Lhs[0])); base != nil {
						if bv, ok := info.Uses[base].(*types.Var); !ok || !capturedVar(bv, lit) {
							return true // goroutine-private destination
						}
					}
					if t := info.TypeOf(as.Lhs[0]); t != nil && isFloat(t) {
						pass.Report(as.Pos(), "float %s is folded by goroutines spawned in a loop; the order depends on goroutine scheduling", dest)
					}
					return true
				})
				return false
			case *ast.FuncLit:
				if ast.Node(m.Body) != root {
					return false
				}
			}
			return true
		})
	}
	walkLoops(body, 0)
}

// isAccumAssign reports whether tok is an order-sensitive compound
// assignment (+=, -=, *=, /=).
func isAccumAssign(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return true
	}
	return false
}

// usesAnyVar reports whether e mentions any of the given variables.
func usesAnyVar(info *types.Info, e ast.Expr, vars map[*types.Var]bool) bool {
	for _, v := range exprIdents(info, e) {
		if vars[v] {
			return true
		}
	}
	return false
}
