package graphner

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/corpus/synth"
	"repro/internal/graph"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	cfg := synth.DefaultConfig(synth.AML, 31)
	cfg.Sentences = 250
	train, test := synth.GenerateSplit(cfg)

	gcfg := fastConfig()
	gcfg.CRFIterations = 20
	sys, err := Train(train, gcfg)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}

	// The loaded system must decode identically.
	orig := sys.BaselineTags(test)
	got := loaded.BaselineTags(test)
	if !reflect.DeepEqual(orig, got) {
		t.Fatal("loaded system decodes differently from the original")
	}

	// And the full Algorithm-1 pipeline must produce identical labels.
	o1, err := sys.Test(test)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := loaded.Test(test)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(o1.Tags, o2.Tags) {
		t.Fatal("loaded GraphNER output differs")
	}

	// Config round trip.
	if loaded.Config().Alpha != sys.Config().Alpha ||
		loaded.Config().K != sys.Config().K ||
		loaded.Config().Order != sys.Config().Order {
		t.Error("config fields lost in round trip")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a gob stream"), nil); err == nil {
		t.Error("want error for malformed stream")
	}
	if _, err := Load(bytes.NewReader(nil), nil); err == nil {
		t.Error("want error for empty stream")
	}
}

// TestSaveDeterministic locks in byte-deterministic saves: the reference
// distributions are emitted in sorted 3-gram order rather than gob's
// randomized map iteration order, so two consecutive saves of the same
// system are identical byte streams.
func TestSaveDeterministic(t *testing.T) {
	sys, _, _ := frozenSystem(t)
	var a, b bytes.Buffer
	if err := sys.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := sys.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two consecutive saves of the same system differ")
	}
}

// TestSaveLoadFullConfigRoundTrip pins every persistable Config field
// through Save/Load, including the ones a partial snapshot can silently
// drop (Shards was dropped once). Workers is deliberately not persisted —
// it is a machine-local parallelism bound re-derived from GOMAXPROCS at
// load — and Extractor is reconstructed by the caller.
func TestSaveLoadFullConfigRoundTrip(t *testing.T) {
	cfg := synth.DefaultConfig(synth.AML, 33)
	cfg.Sentences = 120
	train, _ := synth.GenerateSplit(cfg)

	gcfg := fastConfig()
	gcfg.CRFIterations = 10
	gcfg.Alpha = 0.17
	gcfg.Mu = 3e-5
	gcfg.Nu = 4e-6
	gcfg.Iterations = 5
	gcfg.K = 7
	gcfg.MIThreshold = 0.125
	gcfg.L2 = 2.5
	gcfg.MaxDF = 123
	gcfg.Shards = 3
	gcfg.LossEvery = 4
	gcfg.TransitionPower = 0.11
	gcfg.GraphMode = graph.ModeLSH
	gcfg.LSH = graph.LSHConfig{Bits: 9, Tables: 11, MaxBucket: 500, Rerank: 70, Refine: 3, MultiProbe: true, Seed: 42}
	sys, err := Train(train, gcfg)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}

	want := sys.Config()
	got := loaded.Config()
	// Machine-local fields: normalize before comparing the rest.
	if got.Workers <= 0 {
		t.Errorf("loaded Workers = %d, want a positive GOMAXPROCS-derived bound", got.Workers)
	}
	if got.Extractor == nil {
		t.Error("loaded Extractor is nil, want the default extractor")
	}
	want.Workers, got.Workers = 0, 0
	want.Extractor, got.Extractor = nil, nil
	if !reflect.DeepEqual(want, got) {
		t.Errorf("config round trip:\n got %+v\nwant %+v", got, want)
	}
	if got.Shards != 3 {
		t.Errorf("Shards = %d after round trip, want 3", got.Shards)
	}
	if got.LossEvery != 4 {
		t.Errorf("LossEvery = %d after round trip, want 4", got.LossEvery)
	}
	if got.GraphMode != graph.ModeLSH {
		t.Errorf("GraphMode = %v after round trip, want lsh", got.GraphMode)
	}
	wantLSH := graph.LSHConfig{Bits: 9, Tables: 11, MaxBucket: 500, Rerank: 70, Refine: 3, MultiProbe: true, Seed: 42}
	if got.LSH != wantLSH {
		t.Errorf("LSH config round trip:\n got %+v\nwant %+v", got.LSH, wantLSH)
	}
}

// TestLoadFailurePaths exercises the distinct Load error cases beyond a
// malformed stream: truncated gob data, a snapshot without a model, and a
// snapshot whose persisted tags no longer align with the re-tokenized
// sentence.
func TestLoadFailurePaths(t *testing.T) {
	sys, _, _ := frozenSystem(t)
	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}

	if _, err := Load(bytes.NewReader(buf.Bytes()[:buf.Len()/2]), nil); err == nil {
		t.Error("truncated stream accepted")
	}

	encode := func(snap *snapshot) *bytes.Buffer {
		var b bytes.Buffer
		if err := gob.NewEncoder(&b).Encode(snap); err != nil {
			t.Fatal(err)
		}
		return &b
	}

	empty := sys.snapshotFields()
	if _, err := Load(encode(&empty), nil); err == nil || !strings.Contains(err.Error(), "no model") {
		t.Errorf("model-less snapshot: err = %v, want mention of missing model", err)
	}

	bad := sys.snapshotFields()
	bad.Model = sys.model
	bad.AlphabetNames = sys.compiler.Alphabet.Names()
	bad.Xref = sortedXref(sys.xref)
	bad.Train = []savedSentence{{ID: "bad", Text: "a b c", Tags: []corpus.Tag{corpus.O}}}
	if _, err := Load(encode(&bad), nil); err == nil || !strings.Contains(err.Error(), "tags for") {
		t.Errorf("misaligned tags: err = %v, want tag/token mismatch", err)
	}
}
