package graphner

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/corpus/synth"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	cfg := synth.DefaultConfig(synth.AML, 31)
	cfg.Sentences = 250
	train, test := synth.GenerateSplit(cfg)

	gcfg := fastConfig()
	gcfg.CRFIterations = 20
	sys, err := Train(train, gcfg)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}

	// The loaded system must decode identically.
	orig := sys.BaselineTags(test)
	got := loaded.BaselineTags(test)
	if !reflect.DeepEqual(orig, got) {
		t.Fatal("loaded system decodes differently from the original")
	}

	// And the full Algorithm-1 pipeline must produce identical labels.
	o1, err := sys.Test(test)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := loaded.Test(test)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(o1.Tags, o2.Tags) {
		t.Fatal("loaded GraphNER output differs")
	}

	// Config round trip.
	if loaded.Config().Alpha != sys.Config().Alpha ||
		loaded.Config().K != sys.Config().K ||
		loaded.Config().Order != sys.Config().Order {
		t.Error("config fields lost in round trip")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a gob stream"), nil); err == nil {
		t.Error("want error for malformed stream")
	}
	if _, err := Load(bytes.NewReader(nil), nil); err == nil {
		t.Error("want error for empty stream")
	}
}
