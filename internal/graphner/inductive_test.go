package graphner

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/corpus/synth"
	"repro/internal/crf"
)

func TestInductiveRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := synth.DefaultConfig(synth.BC2GM, 13)
	cfg.Sentences = 300
	train, test := synth.GenerateSplit(cfg)

	gc := Default()
	gc.Order = crf.Order1
	gc.CRFIterations = 20
	gc.K = 5
	rounds, err := Inductive(train, test.StripLabels(), gc, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) == 0 {
		t.Fatal("no rounds executed")
	}
	for i, r := range rounds {
		if r.Round != i {
			t.Errorf("round numbering: %d at index %d", r.Round, i)
		}
		if r.Output == nil || len(r.Output.Tags) != len(test.Sentences) {
			t.Fatalf("round %d has malformed output", i)
		}
	}
	// Round 0 reports every token as changed.
	want := 0
	for _, s := range test.Sentences {
		want += len(s.Tokens)
	}
	if rounds[0].Changed != want {
		t.Errorf("round 0 changed %d, want %d", rounds[0].Changed, want)
	}
	// Later rounds change fewer labels than "everything".
	if len(rounds) > 1 && rounds[1].Changed >= want {
		t.Errorf("round 1 changed %d, want < %d", rounds[1].Changed, want)
	}
}

func TestInductiveValidation(t *testing.T) {
	if _, err := Inductive(corpus.New(), corpus.New(), Default(), 2); err == nil {
		t.Error("want error for empty unlabelled corpus")
	}
}
