package graphner

import (
	"math"
	"testing"

	"repro/internal/corpus"
	"repro/internal/corpus/synth"
	"repro/internal/graph"
)

func streamFixture(t *testing.T) (*System, *corpus.Corpus, *corpus.Corpus) {
	t.Helper()
	train, test := smallCorpora(t, synth.AML, 120)
	cfg := fastConfig()
	cfg.CRFIterations = 15
	// The streaming comparisons need a genuinely converged fixed point
	// within the sweep cap; the paper's ν=1e-6 gives a contraction
	// modulus ≈1−1e-3 (thousands of sweeps to 1e-8), so condition the
	// iteration with a larger uniform-prior weight.
	cfg.Nu = 1e-3
	sys, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bcfg := synth.DefaultConfig(synth.AML, 33)
	bcfg.Sentences = 40
	extra := synth.NewGenerator(bcfg).Generate()
	return sys, test, extra
}

// TestStreamerBatchOrderInvariance: feeding the extra unlabelled data in
// three batches must produce the same graph as feeding it in one, and
// beliefs within the warm-start tolerance — the streaming TEST mode's
// correctness bar at the pipeline level.
func TestStreamerBatchOrderInvariance(t *testing.T) {
	sys, test, extra := streamFixture(t)

	a, err := NewStreamer(sys, test)
	if err != nil {
		t.Fatal(err)
	}
	b1, rest := extra.Split(15)
	b2, b3 := rest.Split(10)
	for _, batch := range []*corpus.Corpus{b1, b2, b3} {
		res, err := a.AddUnlabelled(batch)
		if err != nil {
			t.Fatal(err)
		}
		if res.Update.NewVertices == 0 {
			t.Error("batch introduced no new vertices — fixture too small")
		}
	}

	b, err := NewStreamer(sys, test)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddUnlabelled(extra); err != nil {
		t.Fatal(err)
	}

	// Identical sentence order means identical first-occurrence vertex
	// ids: the graphs must be exactly equal without renumbering.
	if !a.Graph().Equal(b.Graph()) {
		t.Fatal("three-batch graph differs from single-batch graph")
	}

	// Beliefs: both are fixed points of the same system to within the
	// streaming tolerance, amplified by the contraction factor.
	const Y = corpus.NumTags
	xa, xb := a.VertexBeliefs(), b.VertexBeliefs()
	if len(xa) != len(xb) {
		t.Fatalf("belief lengths differ: %d vs %d", len(xa), len(xb))
	}
	for i := range xa {
		if d := math.Abs(xa[i] - xb[i]); d > 1e-5 {
			t.Fatalf("belief %d differs by %g", i, d)
		}
	}

	// Tags only differ where near-tie potentials flip under the belief
	// tolerance; across a whole corpus that must stay rare.
	var tokens, diffs int
	for i := range a.Tags() {
		ta, tb := a.Tags()[i], b.Tags()[i]
		if len(ta) != len(tb) || len(ta) != len(test.Sentences[i].Tokens) {
			t.Fatalf("sentence %d: tag lengths %d/%d for %d tokens", i, len(ta), len(tb), len(test.Sentences[i].Tokens))
		}
		for j := range ta {
			tokens++
			if ta[j] != tb[j] {
				diffs++
			}
		}
	}
	if diffs*100 > tokens {
		t.Fatalf("%d of %d test tokens tagged differently across batch schedules", diffs, tokens)
	}
	_ = Y
}

// TestStreamerGraphMatchesBatchBuild is the hard equivalence bar wired
// through the pipeline: the incrementally maintained graph equals a
// from-scratch Build over the accumulated union under the frozen
// statistics snapshot, up to canonical renumbering.
func TestStreamerGraphMatchesBatchBuild(t *testing.T) {
	sys, test, extra := streamFixture(t)
	st, err := NewStreamer(sys, test)
	if err != nil {
		t.Fatal(err)
	}
	b1, b2 := extra.Split(25)
	for _, batch := range []*corpus.Corpus{b1, b2} {
		if _, err := st.AddUnlabelled(batch); err != nil {
			t.Fatal(err)
		}
	}

	union := sys.union(test, nil)
	union.Sentences = append(union.Sentences, extra.StripLabels().Sentences...)
	bc := sys.builderConfig(union, nil)
	bc.Stats = st.Updater().Stats()
	want, err := graph.Build(union, bc)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Graph().CanonicalClone().Equal(want.CanonicalClone()) {
		t.Fatal("streamed graph differs from batch build over the union")
	}
}

// TestStreamerSelectiveRedecode: a batch only re-decodes test sentences
// containing a touched vertex, and leaves tag rows well-formed either way.
func TestStreamerSelectiveRedecode(t *testing.T) {
	sys, test, extra := streamFixture(t)
	st, err := NewStreamer(sys, test)
	if err != nil {
		t.Fatal(err)
	}
	batch, _ := extra.Split(10)
	res, err := st.AddUnlabelled(batch)
	if err != nil {
		t.Fatal(err)
	}
	if res.Redecoded > len(test.Sentences) {
		t.Fatalf("re-decoded %d of %d sentences", res.Redecoded, len(test.Sentences))
	}
	if res.Warm.Sweeps == 0 || res.Warm.Updates == 0 {
		t.Error("warm propagation did no work for a non-empty batch")
	}
	for i, tags := range st.Tags() {
		if len(tags) != len(test.Sentences[i].Tokens) {
			t.Fatalf("sentence %d: %d tags for %d tokens", i, len(tags), len(test.Sentences[i].Tokens))
		}
	}
	if len(st.BaselineTags()) != len(test.Sentences) {
		t.Fatal("baseline tags missing")
	}
}

// TestStreamerValidation covers the error paths and the empty-batch no-op.
func TestStreamerValidation(t *testing.T) {
	sys, test, _ := streamFixture(t)
	if _, err := NewStreamer(sys, corpus.New()); err == nil {
		t.Error("want error for empty test corpus")
	}
	st, err := NewStreamer(sys, test)
	if err != nil {
		t.Fatal(err)
	}
	before := st.Graph().NumVertices()
	res, err := st.AddUnlabelled(corpus.New())
	if err != nil {
		t.Fatal(err)
	}
	if res.Update.NewVertices != 0 || res.Redecoded != 0 || st.Graph().NumVertices() != before {
		t.Error("empty batch was not a no-op")
	}
}
