package graphner

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/analysis/assert"
	"repro/internal/corpus"
	"repro/internal/crf"
	"repro/internal/graph"
	"repro/internal/propagate"
)

// Streaming-mode propagation runs to a fixed point rather than the
// paper's fixed 2-3 sweeps: warm starts are only within the documented
// tolerance of a full run when both start from converged beliefs.
const (
	streamTolerance = 1e-8
	streamSweepCap  = 2048
)

// Streamer runs Algorithm 1's TEST procedure in streaming mode: after an
// initial transductive pass over train ∪ test, additional unlabelled
// batches are folded in with incremental graph maintenance
// (graph.Updater) and warm-start frontier propagation
// (propagate.RunWarmFlat), and only the test sentences whose vertices
// actually moved are re-decoded. The maintained graph is exactly the
// graph a from-scratch build over the accumulated union would produce
// (see graph.Updater); beliefs are within the warm-start tolerance of a
// fully converged from-scratch propagation.
type Streamer struct {
	sys  *System
	test *corpus.Corpus

	updater *graph.Updater
	trans   [][]float64

	// Flat propagation state, indexed like the graph's vertices.
	X        []float64
	xref     [][]float64
	labelled []bool

	// Per-vertex CRF posterior sums and occurrence counts across every
	// corpus seen so far; a vertex first observed in batch b is seeded
	// with its average posterior, exactly as Algorithm 1 line 6 seeds
	// the batch build.
	postSum []float64
	postCnt []float64

	// Cached per-test-sentence CRF posteriors (the P_s of line 8) and the
	// inverted index vertex → test sentences, for selective re-decoding.
	testPost  [][][]float64
	vertSents [][]int32

	tags     [][]corpus.Tag
	baseline [][]corpus.Tag
}

// StreamResult reports what one AddUnlabelled batch did.
type StreamResult struct {
	// Update summarizes the incremental graph maintenance.
	Update graph.UpdateResult
	// Warm summarizes the warm-start propagation.
	Warm propagate.WarmResult
	// Redecoded counts test sentences whose labels were recomputed
	// because a vertex they contain moved.
	Redecoded int
}

// NewStreamer runs the initial TEST pass — graph build over train ∪ test,
// posterior seeding, propagation to convergence, final decode — and
// retains the incremental-maintenance state for AddUnlabelled calls.
func NewStreamer(sys *System, test *corpus.Corpus) (*Streamer, error) {
	if len(test.Sentences) == 0 {
		return nil, fmt.Errorf("graphner: empty test corpus")
	}
	union := sys.union(test, nil)
	ins := sys.compileCorpus(union)
	upd, err := graph.NewUpdater(union, sys.builderConfig(union, ins))
	if err != nil {
		return nil, fmt.Errorf("graphner: streaming graph: %w", err)
	}
	st := &Streamer{
		sys:     sys,
		test:    test,
		updater: upd,
		trans:   GoldTransitions(sys.train),
	}
	g := upd.Graph()
	n := g.NumVertices()
	const Y = corpus.NumTags
	st.postSum = make([]float64, n*Y)
	st.postCnt = make([]float64, n)
	posteriors := sys.posteriorsOf(ins)
	st.accumulate(union, posteriors, 0)

	// Seed X with average posteriors (uniform where never observed) and
	// attach references on vertices of the labelled data.
	st.X = make([]float64, n*Y)
	st.xref = make([][]float64, n)
	st.labelled = make([]bool, n)
	for v := 0; v < n; v++ {
		st.seedRow(v)
	}

	if _, err := propagate.RunFlat(g, st.X, st.xref, st.labelled, st.propConfig()); err != nil {
		return nil, fmt.Errorf("graphner: propagation: %w", err)
	}

	// Cache test posteriors and the vertex → test-sentence index; the
	// union corpus lists training sentences first.
	offset := len(sys.train.Sentences)
	st.testPost = posteriors[offset:]
	st.vertSents = make([][]int32, n)
	for i, sent := range test.Sentences {
		words := sent.Words()
		for j := range words {
			if vi := g.Lookup(corpus.Trigram(words, j)); vi >= 0 {
				l := st.vertSents[vi]
				if len(l) == 0 || l[len(l)-1] != int32(i) {
					st.vertSents[vi] = append(l, int32(i))
				}
			}
		}
	}

	st.tags = make([][]corpus.Tag, len(test.Sentences))
	all := make([]int, len(test.Sentences))
	for i := range all {
		all[i] = i
	}
	if err := st.decode(all); err != nil {
		return nil, err
	}
	st.baseline = make([][]corpus.Tag, len(test.Sentences))
	sys.parallel(len(test.Sentences), func(i int) {
		st.baseline[i] = sys.model.Decode(ins[offset+i])
	})
	return st, nil
}

// AddUnlabelled folds a batch of unlabelled sentences into the streaming
// state: CRF posteriors for the batch, incremental graph maintenance,
// warm-start propagation seeded from the dirty rows, and re-decoding of
// exactly the test sentences containing a touched vertex.
func (st *Streamer) AddUnlabelled(batch *corpus.Corpus) (StreamResult, error) {
	var res StreamResult
	if len(batch.Sentences) == 0 {
		return res, nil
	}
	sys := st.sys
	stripped := batch.StripLabels()
	ins := sys.compileCorpus(stripped)
	posteriors := sys.posteriorsOf(ins)

	g := st.updater.Graph()
	oldN := g.NumVertices()
	upd, err := st.updater.AddSentences(stripped.Sentences)
	if err != nil {
		return res, fmt.Errorf("graphner: incremental update: %w", err)
	}
	res.Update = upd
	n := g.NumVertices()
	const Y = corpus.NumTags

	// Grow the flat state for appended vertices and seed their rows.
	st.postSum = append(st.postSum, make([]float64, (n-oldN)*Y)...)
	st.postCnt = append(st.postCnt, make([]float64, n-oldN)...)
	st.X = append(st.X, make([]float64, (n-oldN)*Y)...)
	st.xref = append(st.xref, make([][]float64, n-oldN)...)
	st.labelled = append(st.labelled, make([]bool, n-oldN)...)
	st.vertSents = append(st.vertSents, make([][]int32, n-oldN)...)
	st.accumulate(stripped, posteriors, 0)
	for v := oldN; v < n; v++ {
		st.seedRow(v)
	}
	if assert.Enabled {
		assert.NoNaN(st.X, "streaming beliefs after seeding")
	}

	warm, err := propagate.RunWarmFlat(g, st.X, st.xref, st.labelled, st.propConfig(), upd.DirtyRows)
	if err != nil {
		return res, fmt.Errorf("graphner: warm propagation: %w", err)
	}
	res.Warm = warm

	// Re-decode only test sentences containing a vertex whose belief
	// moved. New vertices cannot occur in test sentences (their 3-grams
	// were already vertices), so only pre-existing rows matter.
	redecode := make(map[int]bool)
	for v := 0; v < oldN; v++ {
		if !warm.Touched[v] {
			continue
		}
		for _, i := range st.vertSents[v] {
			redecode[int(i)] = true
		}
	}
	list := make([]int, 0, len(redecode))
	for i := range redecode {
		list = append(list, i)
	}
	sort.Ints(list)
	if err := st.decode(list); err != nil {
		return res, err
	}
	res.Redecoded = len(list)
	return res, nil
}

// propConfig is the converged-propagation configuration streaming mode
// uses for both the initial full run and warm restarts.
func (st *Streamer) propConfig() propagate.Config {
	return propagate.Config{
		Mu:         st.sys.cfg.Mu,
		Nu:         st.sys.cfg.Nu,
		Tolerance:  streamTolerance,
		Iterations: streamSweepCap,
		Workers:    st.sys.cfg.Workers,
		LossEvery:  st.sys.cfg.LossEvery,
	}
}

// accumulate folds per-token CRF posteriors into the per-vertex sums.
// posteriors[i-drop] must correspond to c.Sentences[i] for i ≥ drop.
func (st *Streamer) accumulate(c *corpus.Corpus, posteriors [][][]float64, drop int) {
	const Y = corpus.NumTags
	g := st.updater.Graph()
	for si := drop; si < len(c.Sentences); si++ {
		words := c.Sentences[si].Words()
		ps := posteriors[si-drop]
		for i := range words {
			vi := g.Lookup(corpus.Trigram(words, i))
			if vi < 0 {
				continue
			}
			row := vi * Y
			for y := 0; y < Y; y++ {
				st.postSum[row+y] += ps[i][y]
			}
			st.postCnt[vi]++
		}
	}
}

// seedRow initializes vertex v's belief row from its accumulated average
// posterior (uniform if never observed) and attaches its reference
// distribution when the 3-gram occurs in the labelled data.
func (st *Streamer) seedRow(v int) {
	const Y = corpus.NumTags
	row := v * Y
	if c := st.postCnt[v]; c > 0 {
		for y := 0; y < Y; y++ {
			st.X[row+y] = st.postSum[row+y] / c
		}
	} else {
		for y := 0; y < Y; y++ {
			st.X[row+y] = 1.0 / Y
		}
	}
	if d, ok := st.sys.xref[st.updater.Graph().Vertices[v]]; ok {
		st.xref[v] = d
		st.labelled[v] = true
	}
}

// decode recomputes the combined-potential Viterbi labels (Algorithm 1
// lines 8-9) for the given test sentence indices.
func (st *Streamer) decode(sentences []int) error {
	const Y = corpus.NumTags
	sys := st.sys
	g := st.updater.Graph()
	var decodeErr error
	var mu sync.Mutex
	sys.parallel(len(sentences), func(k int) {
		i := sentences[k]
		sent := st.test.Sentences[i]
		words := sent.Words()
		ps := st.testPost[i]
		combined := make([][]float64, len(words))
		for j := range words {
			row := make([]float64, Y)
			gb := -1
			if vi := g.Lookup(corpus.Trigram(words, j)); vi >= 0 {
				gb = vi * Y
			}
			for y := 0; y < Y; y++ {
				if gb >= 0 {
					row[y] = sys.cfg.Alpha*ps[j][y] + (1-sys.cfg.Alpha)*st.X[gb+y]
				} else {
					row[y] = ps[j][y]
				}
			}
			combined[j] = row
		}
		if assert.Enabled {
			assert.NoNaNRows(combined, "streaming combined potentials P'_s")
		}
		tags, err := crf.DecodeWithPotentialsT(combined, st.trans, sys.model.BIO, sys.cfg.TransitionPower)
		if err != nil {
			mu.Lock()
			decodeErr = err
			mu.Unlock()
			return
		}
		st.tags[i] = tags
	})
	if decodeErr != nil {
		return fmt.Errorf("graphner: streaming decode: %w", decodeErr)
	}
	return nil
}

// Tags returns the current GraphNER labels for the test sentences,
// reflecting every batch folded in so far. The returned slice is live —
// subsequent AddUnlabelled calls update it in place.
func (st *Streamer) Tags() [][]corpus.Tag { return st.tags }

// BaselineTags returns the base CRF's labels for the test sentences
// (unaffected by streaming updates).
func (st *Streamer) BaselineTags() [][]corpus.Tag { return st.baseline }

// Graph returns the incrementally maintained similarity graph.
func (st *Streamer) Graph() *graph.Graph { return st.updater.Graph() }

// Updater exposes the graph maintenance state (for equivalence checks
// and benchmarks).
func (st *Streamer) Updater() *graph.Updater { return st.updater }

// VertexBeliefs returns the flat propagated belief matrix, indexed like
// Graph().Vertices.
func (st *Streamer) VertexBeliefs() []float64 { return st.X }
