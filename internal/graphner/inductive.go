package graphner

import (
	"fmt"

	"repro/internal/corpus"
)

// InductiveResult reports one round of the inductive variant.
type InductiveResult struct {
	Round int
	// Changed counts how many unlabelled tokens changed label relative to
	// the previous round (all of them on round 0).
	Changed int
	Output  *Output
}

// Inductive runs the Subramanya et al. (2010) iterative variant that the
// paper contrasts with its transductive single pass (§II): after each TEST
// pass, the Viterbi labels of the unlabelled data are treated as correct,
// the CRF is retrained on the expanded labelled set, reference
// distributions are recomputed, and the procedure repeats until the labels
// stop changing or maxRounds is reached (the original work caps at 10).
// The returned slice holds one entry per executed round; the last entry's
// Output carries the final labels.
func Inductive(train, unlabelled *corpus.Corpus, cfg Config, maxRounds int) ([]InductiveResult, error) {
	if maxRounds <= 0 {
		maxRounds = 10
	}
	if len(unlabelled.Sentences) == 0 {
		return nil, fmt.Errorf("graphner: inductive: empty unlabelled corpus")
	}

	var results []InductiveResult
	var prev [][]corpus.Tag
	current := train

	for round := 0; round < maxRounds; round++ {
		sys, err := Train(current, cfg)
		if err != nil {
			return results, fmt.Errorf("graphner: inductive round %d: %w", round, err)
		}
		out, err := sys.Test(unlabelled)
		if err != nil {
			return results, fmt.Errorf("graphner: inductive round %d: %w", round, err)
		}
		changed := 0
		if prev == nil {
			for _, tags := range out.Tags {
				changed += len(tags)
			}
		} else {
			for i, tags := range out.Tags {
				for j := range tags {
					if tags[j] != prev[i][j] {
						changed++
					}
				}
			}
		}
		results = append(results, InductiveResult{Round: round, Changed: changed, Output: out})
		if changed == 0 {
			break
		}
		prev = out.Tags

		// Expand the labelled set with the self-labelled data.
		next := corpus.New()
		next.Sentences = append(next.Sentences, train.Sentences...)
		for i, s := range unlabelled.Sentences {
			cp := &corpus.Sentence{ID: s.ID, Text: s.Text, Tokens: s.Tokens, Tags: out.Tags[i]}
			next.Sentences = append(next.Sentences, cp)
		}
		current = next
	}
	return results, nil
}
