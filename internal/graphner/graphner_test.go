package graphner

import (
	"math"
	"testing"

	"repro/internal/corpus"
	"repro/internal/corpus/synth"
	"repro/internal/crf"
	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/tokenize"
)

func smallCorpora(t *testing.T, profile synth.Profile, n int) (train, test *corpus.Corpus) {
	t.Helper()
	cfg := synth.DefaultConfig(profile, 7)
	cfg.Sentences = n
	return synth.GenerateSplit(cfg)
}

func fastConfig() Config {
	cfg := Default()
	cfg.Order = crf.Order1
	cfg.CRFIterations = 40
	return cfg
}

func TestReferenceDistributions(t *testing.T) {
	c := corpus.New()
	mk := func(text string, tags []corpus.Tag) {
		s := &corpus.Sentence{Text: text, Tokens: tokenize.Sentence(text)}
		s.Tags = tags
		c.Sentences = append(c.Sentences, s)
	}
	// "x y z" twice with different tags for y: distribution is averaged.
	mk("x y z", []corpus.Tag{corpus.O, corpus.B, corpus.O})
	mk("x y z", []corpus.Tag{corpus.O, corpus.O, corpus.O})
	refs := ReferenceDistributions(c)
	g := corpus.Trigram([]string{"x", "y", "z"}, 1)
	d, ok := refs[g]
	if !ok {
		t.Fatal("missing reference for [x y z]")
	}
	if math.Abs(d[corpus.B]-0.5) > 1e-12 || math.Abs(d[corpus.O]-0.5) > 1e-12 {
		t.Errorf("reference = %v, want (0.5, 0, 0.5)", d)
	}
	// Unlabelled sentences are ignored.
	c2 := corpus.New()
	c2.Sentences = append(c2.Sentences, &corpus.Sentence{Text: "a b", Tokens: tokenize.Sentence("a b")})
	if len(ReferenceDistributions(c2)) != 0 {
		t.Error("unlabelled sentences contributed references")
	}
}

func TestAveragePosteriors(t *testing.T) {
	c := corpus.New()
	c.Sentences = append(c.Sentences,
		&corpus.Sentence{Text: "a b", Tokens: tokenize.Sentence("a b")},
		&corpus.Sentence{Text: "a b", Tokens: tokenize.Sentence("a b")},
	)
	g, err := graph.Build(c, graph.BuilderConfig{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Both occurrences of trigram [<S> a b]: average of the two posteriors.
	post := [][][]float64{
		{{1, 0, 0}, {0, 1, 0}},
		{{0, 0, 1}, {0, 1, 0}},
	}
	X := AveragePosteriors(g, c, post)
	vi := g.Lookup(corpus.Trigram([]string{"a", "b"}, 0))
	if vi < 0 {
		t.Fatal("vertex missing")
	}
	if math.Abs(X[vi][0]-0.5) > 1e-12 || math.Abs(X[vi][2]-0.5) > 1e-12 {
		t.Errorf("X = %v, want (0.5, 0, 0.5)", X[vi])
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(corpus.New(), Default()); err == nil {
		t.Error("want error for empty training corpus")
	}
}

func TestGoldTransitions(t *testing.T) {
	c := corpus.New()
	s := &corpus.Sentence{Text: "a b c d", Tokens: tokenize.Sentence("a b c d")}
	s.Tags = []corpus.Tag{corpus.B, corpus.I, corpus.O, corpus.O}
	c.Sentences = append(c.Sentences, s)
	tr := GoldTransitions(c)
	if len(tr) != corpus.NumTags {
		t.Fatalf("rows = %d", len(tr))
	}
	for p, row := range tr {
		var sum float64
		for _, v := range row {
			if v < 0 {
				t.Fatalf("negative probability in row %d", p)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("row %d sums to %g", p, sum)
		}
	}
	// O→I is structurally forbidden.
	if tr[corpus.O][corpus.I] != 0 {
		t.Errorf("O→I = %g, want 0", tr[corpus.O][corpus.I])
	}
	// Observed bigrams dominate their smoothed alternatives: B→I was seen,
	// B→B was not.
	if tr[corpus.B][corpus.I] <= tr[corpus.B][corpus.B] {
		t.Errorf("B→I (%g) not above unseen B→B (%g)", tr[corpus.B][corpus.I], tr[corpus.B][corpus.B])
	}
}

func TestWithConfigPreservesModel(t *testing.T) {
	train, test := smallCorpora(t, synth.AML, 120)
	cfg := fastConfig()
	cfg.CRFIterations = 10
	sys, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c2 := sys.Config()
	c2.Alpha = 0.77
	c2.Order = crf.Order2 // model-affecting: must be ignored
	c2.K = 3
	sys2 := sys.WithConfig(c2)
	if sys2.Config().Alpha != 0.77 || sys2.Config().K != 3 {
		t.Error("test-time fields not applied")
	}
	if sys2.Config().Order != cfg.Order {
		t.Error("model-affecting Order was not preserved")
	}
	if sys2.Model() != sys.Model() {
		t.Error("model not shared")
	}
	// Baseline decoding must be identical (same trained model).
	a := sys.BaselineTags(test)
	b := sys2.BaselineTags(test)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("baseline decoding changed under WithConfig")
			}
		}
	}
}

func TestEndToEndImprovesOrMatchesBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end test")
	}
	train, test := smallCorpora(t, synth.BC2GM, 2000)
	sys, err := Train(train, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	out, err := sys.Test(test)
	if err != nil {
		t.Fatal(err)
	}

	// Mechanical invariants.
	if len(out.Tags) != len(test.Sentences) {
		t.Fatalf("got %d tag rows", len(out.Tags))
	}
	for i, tags := range out.Tags {
		if len(tags) != len(test.Sentences[i].Tokens) {
			t.Fatalf("sentence %d: %d tags for %d tokens", i, len(tags), len(test.Sentences[i].Tokens))
		}
	}
	if out.LabelledVertexFraction <= 0 || out.LabelledVertexFraction > 1 {
		t.Errorf("labelled fraction %g", out.LabelledVertexFraction)
	}
	if out.PositiveVertexFraction >= out.LabelledVertexFraction {
		t.Errorf("positive fraction %g not below labelled fraction %g",
			out.PositiveVertexFraction, out.LabelledVertexFraction)
	}

	// Score both systems.
	basePreds, err := eval.PredictionsFromTags(test, out.BaselineTags)
	if err != nil {
		t.Fatal(err)
	}
	gnPreds, err := eval.PredictionsFromTags(test, out.Tags)
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := eval.Evaluate(test, basePreds)
	if err != nil {
		t.Fatal(err)
	}
	gnRes, err := eval.Evaluate(test, gnPreds)
	if err != nil {
		t.Fatal(err)
	}
	base, gn := baseRes.Metrics(), gnRes.Metrics()
	t.Logf("baseline: %v", base)
	t.Logf("graphner: %v", gn)
	if base.F1 < 0.5 {
		t.Errorf("baseline CRF implausibly weak: %v", base)
	}
	// The paper's headline claim, in relaxed form for a small corpus:
	// GraphNER must not fall more than a point below the baseline F and
	// must not lose precision.
	if gn.F1 < base.F1-0.01 {
		t.Errorf("GraphNER F %v clearly below baseline %v", gn.F1, base.F1)
	}
	if gn.Precision < base.Precision-0.01 {
		t.Errorf("GraphNER precision %v clearly below baseline %v", gn.Precision, base.Precision)
	}
}

func TestTestWithExtraUnlabelled(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end test")
	}
	// Generate one corpus; use a slice as extra unlabelled data.
	cfg := synth.DefaultConfig(synth.BC2GM, 21)
	cfg.Sentences = 900
	all := synth.NewGenerator(cfg).Generate()
	train, rest := all.Split(500)
	test, extra := rest.Split(150)

	gcfg := fastConfig()
	gcfg.CRFIterations = 30
	sys, err := Train(train, gcfg)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := sys.Test(test)
	if err != nil {
		t.Fatal(err)
	}
	withExtra, err := sys.TestWithExtra(test, extra)
	if err != nil {
		t.Fatal(err)
	}
	if len(withExtra.Tags) != len(test.Sentences) {
		t.Fatalf("decoded %d sentences, want %d", len(withExtra.Tags), len(test.Sentences))
	}
	// The graph over train ∪ test ∪ extra must be strictly larger.
	if withExtra.Graph.NumVertices() <= plain.Graph.NumVertices() {
		t.Errorf("extra unlabelled data did not grow the graph (%d vs %d vertices)",
			withExtra.Graph.NumVertices(), plain.Graph.NumVertices())
	}
	// And the labelled fraction must drop (more unlabelled vertices).
	if withExtra.LabelledVertexFraction >= plain.LabelledVertexFraction {
		t.Errorf("labelled fraction did not drop: %g vs %g",
			withExtra.LabelledVertexFraction, plain.LabelledVertexFraction)
	}
	// Both runs decode every test token.
	for i := range withExtra.Tags {
		if len(withExtra.Tags[i]) != len(test.Sentences[i].Tokens) {
			t.Fatal("tag length mismatch")
		}
	}
}

func TestTestWithGraphValidation(t *testing.T) {
	train, test := smallCorpora(t, synth.AML, 60)
	cfg := fastConfig()
	cfg.CRFIterations = 5
	sys, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sys.BuildGraph(test)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.TestWithGraph(corpus.New(), g); err == nil {
		t.Error("want error for empty test corpus")
	}
}

func TestFigure1Walkthrough(t *testing.T) {
	// Reconstruct the paper's Figure 1 scenario: the labelled data tags
	// "wilms tumor - 1" as a gene but also contains "tumor - 1" with O
	// labels in a different context ("the patient 's tumor - 1 subclone"),
	// which misleads the CRF about "-" in gene contexts. Graph propagation
	// over shared 3-gram contexts must label the unlabelled occurrence of
	// "wilms tumor - 1" as a gene.
	labelled := corpus.New()
	mk := func(c *corpus.Corpus, id, text string, tags []corpus.Tag) {
		s := &corpus.Sentence{ID: id, Text: text, Tokens: tokenize.Sentence(text)}
		s.Tags = tags
		c.Sentences = append(c.Sentences, s)
	}
	T := func(ts ...corpus.Tag) []corpus.Tag { return ts }
	const (
		B = corpus.B
		I = corpus.I
		O = corpus.O
	)
	// Several labelled examples establishing the contexts.
	mk(labelled, "L1", "drug response was significant in wilms tumor - 1 positive patients .",
		T(O, O, O, O, O, B, I, I, I, O, O, O))
	mk(labelled, "L2", "we observed the following mutations in wilms tumor - 1 .",
		T(O, O, O, O, O, O, B, I, I, I, O))
	mk(labelled, "L3", "we did not observe this mutation in the patient 's tumor - 1 subclone .",
		T(O, O, O, O, O, O, O, O, O, O, O, O, O, O, O, O))
	mk(labelled, "L4", "expression of wilms tumor - 1 was high in these samples .",
		T(O, O, B, I, I, I, O, O, O, O, O, O))
	mk(labelled, "L5", "mutations of wilms tumor - 1 were frequent .",
		T(O, O, B, I, I, I, O, O, O))
	mk(labelled, "L6", "the patient 's tumor - 1 subclone was sequenced .",
		T(O, O, O, O, O, O, O, O, O, O, O))

	unlabelled := corpus.New()
	mk(unlabelled, "U1", "wilms tumor - 1 ( wt1 ) gene was highly expressed .", nil)
	mk(unlabelled, "U2", "we did not observe this mutation in the patient 's tumor - 2 subclone .", nil)

	cfg := Default()
	cfg.Alpha = 0.1 // the walkthrough's value
	cfg.Order = crf.Order1
	cfg.CRFIterations = 50
	cfg.K = 5
	cfg.Mu = 0.5 // tiny graph: strong smoothing makes the effect visible
	cfg.Nu = 0.01
	cfg.Iterations = 3

	sys, err := Train(labelled, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sys.Test(unlabelled)
	if err != nil {
		t.Fatal(err)
	}
	// U1 tokens: wilms tumor - 1 ( wt 1 ) gene was highly expressed .
	got := out.Tags[0]
	if got[0] != B || got[1] != I || got[2] != I || got[3] != I {
		t.Errorf("U1 'wilms tumor - 1' tagged %v %v %v %v, want B I I I",
			got[0], got[1], got[2], got[3])
	}
	// U2's "tumor - 2" is background; its tokens must be O.
	u2 := out.Tags[1]
	words := unlabelled.Sentences[1].Words()
	for i, w := range words {
		if w == "tumor" || w == "subclone" {
			if u2[i] != O {
				t.Errorf("U2 token %q tagged %v, want O (tags: %v)", w, u2[i], u2)
			}
		}
	}
}

// TestLSHModeEndToEnd runs the full TRAIN+TEST procedure with the
// approximate graph builder and checks the pipeline stays healthy: the
// graph mode survives into construction, every test sentence gets a tag
// sequence, and accuracy stays in the same band as the exact mode on the
// same split. The LSH knobs here are turned up (more tables, deeper
// rerank and refinement) so the approximate graph recovers nearly all
// exact edges and the F1 gate is stable at this corpus size; the
// accuracy of the *default* setting is gated at proper scale by
// `benchtables -lsh` (BENCH_lsh.json), where test-set noise is small.
func TestLSHModeEndToEnd(t *testing.T) {
	cfg := synth.DefaultConfig(synth.AML, 13)
	cfg.Sentences = 200
	train, test := synth.GenerateSplit(cfg)
	gcfg := fastConfig()
	gcfg.CRFIterations = 20
	sys, err := Train(train, gcfg)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := sys.Test(test)
	if err != nil {
		t.Fatal(err)
	}
	lsys := *sys
	lsys.cfg.GraphMode = graph.ModeLSH
	lsys.cfg.LSH = graph.LSHConfig{Seed: 5, Tables: 32, Rerank: 160, Refine: 8}
	lout, err := lsys.Test(test)
	if err != nil {
		t.Fatal(err)
	}
	if len(lout.Tags) != len(test.Sentences) {
		t.Fatalf("LSH mode tagged %d of %d sentences", len(lout.Tags), len(test.Sentences))
	}
	f1 := func(tags [][]corpus.Tag) float64 {
		preds, err := eval.PredictionsFromTags(test, tags)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eval.Evaluate(test, preds)
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics().F1
	}
	fExact, fLSH := f1(exact.Tags), f1(lout.Tags)
	t.Logf("exact F1 = %.4f, lsh F1 = %.4f", fExact, fLSH)
	if fLSH < fExact-0.02 {
		t.Errorf("LSH-mode F1 = %.4f, exact-mode F1 = %.4f: delta beyond the 0.02 gate", fLSH, fExact)
	}
}
