// Package graphner implements the paper's Algorithm 1: graph-based
// transductive semi-supervised named entity recognition on top of a
// linear-chain CRF.
//
// Training (procedure TRAIN) fits the base CRF on labelled data and
// records, for every 3-gram occurring in the labelled data, the average
// gold label distribution ("reference distributions" X_ref over V_l).
//
// Testing (procedure TEST) extracts per-token posteriors and tag-level
// transition probabilities from the CRF over labelled-plus-unlabelled
// data, averages the posteriors per unique 3-gram to seed the vertex
// distributions X, propagates X over the similarity graph (package
// propagate), linearly combines the CRF posterior with the propagated
// vertex belief of each token's 3-gram context — α·P_s + (1−α)·X — and
// re-decodes every sentence with Viterbi over the combined potentials.
package graphner

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/analysis/assert"
	"repro/internal/corpus"
	"repro/internal/crf"
	"repro/internal/features"
	"repro/internal/graph"
	"repro/internal/propagate"
)

// Config collects the hyper-parameters of Table IV plus model options.
type Config struct {
	// Alpha is the CRF weight in the posterior mixture; the graph gets
	// weight 1−Alpha. The paper's cross-validation chose 0.02 on the real
	// corpora; on the synthetic substitute corpora cross-validation
	// prefers 0.3 (see EXPERIMENTS.md, Table IV).
	Alpha float64
	// Mu and Nu are the propagation hyper-parameters. The paper's
	// cross-validation chose μ=1e-6 and ν∈{1e-6,1e-4} on the real
	// corpora; on the synthetic substitutes cross-validation picks
	// μ=1e-4, ν=1e-6 (Table IV reproduction).
	Mu, Nu float64
	// Iterations is the number of propagation sweeps (paper: 2 or 3).
	Iterations int

	// K is the out-degree of the similarity graph (paper: 10).
	K int
	// Mode selects the vertex representation (Table III).
	Mode graph.FeatureMode
	// MIThreshold applies in MIFeatures mode.
	MIThreshold float64

	// Order is the CRF order (paper reports order 2 for headline numbers).
	Order crf.Order
	// L2 is the CRF regularization strength.
	L2 float64
	// CRFIterations bounds CRF training (L-BFGS iterations).
	CRFIterations int
	// Extractor provides features for both the CRF and the graph; attach
	// a WordClasser for the BANNER-ChemDNER configuration. Defaults to
	// the plain BANNER-style extractor.
	Extractor *features.Extractor

	// Workers bounds parallelism throughout (default GOMAXPROCS).
	Workers int
	// MaxDF caps feature document frequency during k-NN candidate
	// generation (see graph.BuilderConfig).
	MaxDF int
	// Shards partitions the similarity graph for postings-partitioned
	// construction and SPMD propagation (see graph.ShardedGraph). 0 or 1
	// keeps the single-shard pipeline; results are bit-identical for
	// every value.
	Shards int
	// GraphMode selects the k-NN algorithm graph construction runs:
	// graph.ModeExact (the default) or graph.ModeLSH, the banded
	// locality-sensitive builder with exact re-ranking and
	// neighbour-of-neighbour refinement (see graph.LSHConfig and
	// BENCH_lsh.json for the speed/recall trade).
	GraphMode graph.GraphMode
	// LSH tunes the approximate builder when GraphMode is graph.ModeLSH;
	// the zero value means the recommended defaults. LSH.Workers is
	// machine-local and follows Workers.
	LSH graph.LSHConfig
	// LossEvery forwards propagate.Config.LossEvery: how often the
	// diagnostic Equation-1 objective is evaluated during propagation.
	// The loss never influences the labels — it costs a full edge pass,
	// comparable to a sweep itself. 0 (the default) keeps the legacy
	// every-sweep schedule; -1 skips the loss entirely (the serving
	// default — see Freeze); N > 0 evaluates every Nth sweep plus the
	// final one.
	LossEvery int

	// TransitionPower tempers the transition log-probabilities in the
	// final Viterbi re-decode (Algorithm 1 line 9). The node potentials
	// of that decode are posterior marginals, which already encode the
	// chain's transition preferences; full-strength transitions would
	// double-count them and suppress confident single-token mentions.
	// Chosen by cross-validation like the paper's other hyper-parameters
	// (default 0.05).
	TransitionPower float64
}

// Default returns the configuration used for the headline experiments
// (Table IV's BC2GM row, scaled CRF settings).
func Default() Config {
	return Config{
		Alpha:           0.3,
		Mu:              1e-4,
		Nu:              1e-6,
		Iterations:      2,
		K:               10,
		Mode:            graph.AllFeatures,
		Order:           crf.Order2,
		L2:              1.0,
		CRFIterations:   100,
		TransitionPower: 0.05,
	}
}

func (c *Config) defaults() {
	if c.Alpha <= 0 {
		c.Alpha = 0.3
	}
	if c.Mu == 0 {
		c.Mu = 1e-4
	}
	if c.Nu == 0 {
		c.Nu = 1e-6
	}
	if c.Iterations <= 0 {
		c.Iterations = 2
	}
	if c.K <= 0 {
		c.K = 10
	}
	if c.Order == 0 {
		c.Order = crf.Order2
	}
	if c.L2 <= 0 {
		c.L2 = 1.0
	}
	if c.CRFIterations <= 0 {
		c.CRFIterations = 100
	}
	if c.Extractor == nil {
		c.Extractor = features.NewExtractor(nil)
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.TransitionPower <= 0 || c.TransitionPower > 1 {
		c.TransitionPower = 0.05
	}
}

// GoldTransitions estimates the tag-level transition probability matrix
// P(t_i | t_{i-1}) from the gold tag bigrams of a labelled corpus, with
// add-one smoothing over structurally allowed transitions (O→I stays
// zero). This is the T_s handed to the final Viterbi re-decode.
func GoldTransitions(labelled *corpus.Corpus) [][]float64 {
	var counts [corpus.NumTags][corpus.NumTags]float64
	for _, s := range labelled.Sentences {
		for i := 1; i < len(s.Tags); i++ {
			counts[s.Tags[i-1]][s.Tags[i]]++
		}
	}
	out := make([][]float64, corpus.NumTags)
	for p := 0; p < corpus.NumTags; p++ {
		row := make([]float64, corpus.NumTags)
		var sum float64
		for c := 0; c < corpus.NumTags; c++ {
			if corpus.Tag(p) == corpus.O && corpus.Tag(c) == corpus.I {
				continue // structurally forbidden under BIO
			}
			row[c] = counts[p][c] + 1
			sum += row[c]
		}
		for c := range row {
			row[c] /= sum
		}
		out[p] = row
	}
	return out
}

// System is a trained GraphNER: the base CRF plus reference distributions.
type System struct {
	cfg      Config
	compiler *crf.Compiler
	model    *crf.Model
	train    *corpus.Corpus
	// xref maps 3-grams of the labelled data to their average gold label
	// distributions (the X_ref of Algorithm 1 line 3).
	xref map[corpus.NGram][]float64
}

// Train runs Algorithm 1's TRAIN procedure.
func Train(train *corpus.Corpus, cfg Config) (*System, error) {
	cfg.defaults()
	if len(train.Sentences) == 0 {
		return nil, fmt.Errorf("graphner: empty training corpus")
	}
	comp := crf.NewCompiler(cfg.Extractor)
	data := comp.Compile(train)
	nf := comp.FreezeAlphabet()
	tr := crf.NewTrainer(cfg.Order)
	tr.L2 = cfg.L2
	tr.MaxIterations = cfg.CRFIterations
	tr.Workers = cfg.Workers
	model, err := tr.Train(data, nf)
	if err != nil {
		return nil, fmt.Errorf("graphner: base CRF: %w", err)
	}
	s := &System{cfg: cfg, compiler: comp, model: model, train: train}
	s.xref = ReferenceDistributions(train)
	return s, nil
}

// ReferenceDistributions computes X_ref: for every unique 3-gram of the
// labelled corpus, the empirical distribution of the gold tag of its
// center word over all its occurrences (Algorithm 1 line 3).
func ReferenceDistributions(labelled *corpus.Corpus) map[corpus.NGram][]float64 {
	sums := make(map[corpus.NGram]*[corpus.NumTags + 1]float64)
	for _, s := range labelled.Sentences {
		if s.Tags == nil {
			continue
		}
		words := s.Words()
		for i := range words {
			g := corpus.Trigram(words, i)
			c := sums[g]
			if c == nil {
				c = new([corpus.NumTags + 1]float64)
				sums[g] = c
			}
			c[s.Tags[i]]++
			c[corpus.NumTags]++ // occurrence count
		}
	}
	out := make(map[corpus.NGram][]float64, len(sums))
	for g, c := range sums {
		d := make([]float64, corpus.NumTags)
		for y := 0; y < corpus.NumTags; y++ {
			d[y] = c[y] / c[corpus.NumTags]
		}
		out[g] = d
	}
	return out
}

// Model exposes the trained base CRF (for baseline decoding and analysis).
func (s *System) Model() *crf.Model { return s.model }

// Compiler exposes the frozen feature compiler.
func (s *System) Compiler() *crf.Compiler { return s.compiler }

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// WithConfig returns a copy of the system using different test-time
// hyper-parameters (α, μ, ν, iterations, transition power, graph options).
// The trained CRF and reference distributions are shared, so hyper-
// parameter sweeps — such as the paper's cross-validation of Table IV —
// avoid retraining. Model-affecting fields (Order, L2, CRFIterations,
// Extractor) are ignored: the existing trained model is kept.
func (s *System) WithConfig(cfg Config) *System {
	cfg.Order = s.cfg.Order
	cfg.L2 = s.cfg.L2
	cfg.CRFIterations = s.cfg.CRFIterations
	cfg.Extractor = s.cfg.Extractor
	cfg.defaults()
	cp := *s
	cp.cfg = cfg
	return &cp
}

// compileCorpus compiles every sentence once, in parallel — safe because
// the system's alphabet is frozen after training. The returned instances
// are the cache the TEST procedure threads through its passes (posteriors,
// MI tag decoding, baseline decoding) so no sentence is re-compiled.
func (s *System) compileCorpus(c *corpus.Corpus) []*crf.Instance {
	ins := make([]*crf.Instance, len(c.Sentences))
	s.parallel(len(c.Sentences), func(i int) {
		ins[i] = s.compiler.CompileSentence(c.Sentences[i])
	})
	return ins
}

// posteriorsOf runs the CRF forward-backward over compiled instances.
func (s *System) posteriorsOf(ins []*crf.Instance) [][][]float64 {
	out := make([][][]float64, len(ins))
	s.parallel(len(ins), func(i int) {
		out[i] = s.model.Posteriors(ins[i])
	})
	return out
}

// BaselineTags decodes the test corpus with the base CRF alone (the
// BANNER / BANNER-ChemDNER baseline rows of Tables I and II).
func (s *System) BaselineTags(test *corpus.Corpus) [][]corpus.Tag {
	ins := s.compileCorpus(test)
	out := make([][]corpus.Tag, len(ins))
	s.parallel(len(ins), func(i int) {
		out[i] = s.model.Decode(ins[i])
	})
	return out
}

// Posteriors runs the CRF forward-backward over a corpus, in parallel.
func (s *System) Posteriors(c *corpus.Corpus) [][][]float64 {
	return s.posteriorsOf(s.compileCorpus(c))
}

// BuildGraph constructs the 3-gram similarity graph over the union of the
// training corpus and test, per the paper's transductive setting. For
// MIFeatures mode the base CRF's decoded tags supply the MI statistics.
func (s *System) BuildGraph(test *corpus.Corpus) (*graph.Graph, error) {
	return s.BuildGraphExtra(test, nil)
}

// BuildGraphExtra builds the graph over train ∪ test ∪ extra, where extra
// is additional unlabelled data beyond the transductive test set — the
// abundant-unlabelled-data setting the paper's conclusion anticipates.
// extra may be nil.
func (s *System) BuildGraphExtra(test, extra *corpus.Corpus) (*graph.Graph, error) {
	return s.buildGraphUnion(s.union(test, extra), nil)
}

// union assembles train ∪ test ∪ extra (train first, labels stripped from
// the rest); extra may be nil.
func (s *System) union(test, extra *corpus.Corpus) *corpus.Corpus {
	u := unionCorpus(s.train, test.StripLabels())
	if extra != nil {
		u.Sentences = append(u.Sentences, extra.StripLabels().Sentences...)
	}
	return u
}

// builderConfig assembles the graph.BuilderConfig for a union corpus,
// including MIFeatures-mode tag decoding. ins, when non-nil, supplies
// pre-compiled instances parallel to union.Sentences so tag decoding
// skips re-compilation. Shared by the batch build and the streaming
// Updater construction.
func (s *System) builderConfig(union *corpus.Corpus, ins []*crf.Instance) graph.BuilderConfig {
	bc := graph.BuilderConfig{
		K:           s.cfg.K,
		Mode:        s.cfg.Mode,
		MIThreshold: s.cfg.MIThreshold,
		Extractor:   s.cfg.Extractor,
		MaxDF:       s.cfg.MaxDF,
		Workers:     s.cfg.Workers,
		Shards:      s.cfg.Shards,
		GraphMode:   s.cfg.GraphMode,
		LSH:         s.cfg.LSH,
	}
	if s.cfg.Mode == graph.MIFeatures {
		tags := make([][]corpus.Tag, len(union.Sentences))
		s.parallel(len(union.Sentences), func(i int) {
			sent := union.Sentences[i]
			if sent.Tags != nil {
				tags[i] = sent.Tags
				return
			}
			var in *crf.Instance
			if ins != nil {
				in = ins[i]
			} else {
				in = s.compiler.CompileSentence(sent)
			}
			tags[i] = s.model.Decode(in)
		})
		bc.Tags = tags
	}
	return bc
}

// buildGraphUnion builds the similarity graph over an assembled union
// corpus. ins, when non-nil, supplies pre-compiled instances parallel to
// union.Sentences so MIFeatures-mode tag decoding skips re-compilation.
func (s *System) buildGraphUnion(union *corpus.Corpus, ins []*crf.Instance) (*graph.Graph, error) {
	return graph.Build(union, s.builderConfig(union, ins))
}

// Output carries the result of the TEST procedure.
type Output struct {
	// Tags are the final GraphNER labels per test sentence.
	Tags [][]corpus.Tag
	// BaselineTags are the base CRF's Viterbi labels for the same
	// sentences.
	BaselineTags [][]corpus.Tag
	// Graph is the similarity graph that was used.
	Graph *graph.Graph
	// VertexBeliefs holds the propagated label distribution X per graph
	// vertex (after Algorithm 1 line 7).
	VertexBeliefs [][]float64
	// Propagation reports the propagation sweep diagnostics.
	Propagation propagate.Result
	// LabelledVertexFraction and PositiveVertexFraction are the graph
	// statistics of §III-D.
	LabelledVertexFraction, PositiveVertexFraction float64
}

// Test runs Algorithm 1's TEST procedure, building the graph internally.
// The union corpus is compiled exactly once; graph construction, posterior
// extraction and final decoding all share the cached instances.
func (s *System) Test(test *corpus.Corpus) (*Output, error) {
	if len(test.Sentences) == 0 {
		return nil, fmt.Errorf("graphner: empty test corpus")
	}
	union := s.union(test, nil)
	ins := s.compileCorpus(union)
	g, err := s.buildGraphUnion(union, ins)
	if err != nil {
		return nil, err
	}
	return s.testOnUnion(test, union, ins, g)
}

// TestWithExtra is Test with additional unlabelled sentences participating
// in graph construction and posterior averaging: the semi-supervised
// setting with abundant unlabelled data that the paper's conclusion
// expects to raise performance further. Only test sentences are decoded.
func (s *System) TestWithExtra(test, extra *corpus.Corpus) (*Output, error) {
	if len(test.Sentences) == 0 {
		return nil, fmt.Errorf("graphner: empty test corpus")
	}
	union := s.union(test, extra)
	ins := s.compileCorpus(union)
	g, err := s.buildGraphUnion(union, ins)
	if err != nil {
		return nil, err
	}
	return s.testOnUnion(test, union, ins, g)
}

// TestWithGraph runs the TEST procedure over a prebuilt graph (so ablation
// sweeps can reuse one CRF across graph variants).
func (s *System) TestWithGraph(test *corpus.Corpus, g *graph.Graph) (*Output, error) {
	if len(test.Sentences) == 0 {
		return nil, fmt.Errorf("graphner: empty test corpus")
	}
	union := s.union(test, nil)
	return s.testOnUnion(test, union, s.compileCorpus(union), g)
}

// testOnUnion is the shared TEST implementation over an assembled union
// corpus and its compiled instances (parallel to union.Sentences).
func (s *System) testOnUnion(test, union *corpus.Corpus, ins []*crf.Instance, g *graph.Graph) (*Output, error) {
	// Line 5: CRF posteriors over D_l ∪ D_u and transition probabilities.
	posteriors := s.posteriorsOf(ins)
	trans := GoldTransitions(s.train)

	// Line 6: average posteriors per unique 3-gram.
	X := AveragePosteriors(g, union, posteriors)

	// References and labelled mask on graph vertices.
	xref := make([][]float64, g.NumVertices())
	labelled := make([]bool, g.NumVertices())
	nLabelled, nPositive := 0, 0
	for v, ng := range g.Vertices {
		if d, ok := s.xref[ng]; ok {
			xref[v] = d
			labelled[v] = true
			nLabelled++
			if d[corpus.B]+d[corpus.I] > 0 {
				nPositive++
			}
		}
	}

	// Line 7: propagate. With Shards > 1 the sweep runs the SPMD kernel
	// over the per-shard layout; beliefs are bit-identical either way.
	pcfg := propagate.Config{
		Mu:         s.cfg.Mu,
		Nu:         s.cfg.Nu,
		Iterations: s.cfg.Iterations,
		Workers:    s.cfg.Workers,
		LossEvery:  s.cfg.LossEvery,
	}
	var prop propagate.Result
	var err error
	if s.cfg.Shards > 1 {
		var sg *graph.ShardedGraph
		sg, err = graph.ShardGraph(g, s.cfg.Shards)
		if err == nil {
			prop, err = propagate.RunSharded(sg, X, xref, labelled, pcfg)
		}
	} else {
		prop, err = propagate.Run(g, X, xref, labelled, pcfg)
	}
	if err != nil {
		return nil, fmt.Errorf("graphner: propagation: %w", err)
	}

	// Lines 8-9 on the test sentences: combine and re-decode. The union
	// corpus lists training sentences first, so test sentence i is
	// union.Sentences[len(train)+i] with posteriors aligned the same way.
	offset := len(s.train.Sentences)
	out := &Output{
		Graph:         g,
		Propagation:   prop,
		VertexBeliefs: X,
		Tags:          make([][]corpus.Tag, len(test.Sentences)),
	}
	if n := g.NumVertices(); n > 0 {
		out.LabelledVertexFraction = float64(nLabelled) / float64(n)
		out.PositiveVertexFraction = float64(nPositive) / float64(n)
	}

	var decodeErr error
	var mu sync.Mutex
	s.parallel(len(test.Sentences), func(i int) {
		sent := test.Sentences[i]
		words := sent.Words()
		ps := posteriors[offset+i]
		combined := make([][]float64, len(words))
		for j := range words {
			row := make([]float64, corpus.NumTags)
			var gb []float64
			if vi := g.Lookup(corpus.Trigram(words, j)); vi >= 0 {
				gb = X[vi]
			}
			for y := 0; y < corpus.NumTags; y++ {
				if gb != nil {
					row[y] = s.cfg.Alpha*ps[j][y] + (1-s.cfg.Alpha)*gb[y]
				} else {
					row[y] = ps[j][y]
				}
			}
			combined[j] = row
		}
		if assert.Enabled {
			assert.NoNaNRows(combined, "combined potentials P'_s")
		}
		tags, err := crf.DecodeWithPotentialsT(combined, trans, s.model.BIO, s.cfg.TransitionPower)
		if err != nil {
			mu.Lock()
			decodeErr = err
			mu.Unlock()
			return
		}
		out.Tags[i] = tags
	})
	if decodeErr != nil {
		return nil, fmt.Errorf("graphner: decoding: %w", decodeErr)
	}

	// Baseline decode reuses the cached union instances: features depend
	// only on the words, which label stripping leaves untouched.
	out.BaselineTags = make([][]corpus.Tag, len(test.Sentences))
	s.parallel(len(test.Sentences), func(i int) {
		out.BaselineTags[i] = s.model.Decode(ins[offset+i])
	})
	return out, nil
}

// AveragePosteriors computes X (Algorithm 1 line 6): the average of the
// CRF's per-token posteriors over all occurrences of each graph vertex.
// Vertices never observed stay nil (materialized as uniform by propagate).
func AveragePosteriors(g *graph.Graph, c *corpus.Corpus, posteriors [][][]float64) [][]float64 {
	X := make([][]float64, g.NumVertices())
	counts := make([]float64, g.NumVertices())
	for si, s := range c.Sentences {
		words := s.Words()
		ps := posteriors[si]
		for i := range words {
			vi := g.Lookup(corpus.Trigram(words, i))
			if vi < 0 {
				continue
			}
			if X[vi] == nil {
				X[vi] = make([]float64, corpus.NumTags)
			}
			for y := 0; y < corpus.NumTags; y++ {
				X[vi][y] += ps[i][y]
			}
			counts[vi]++
		}
	}
	for v := range X {
		if X[v] != nil {
			for y := range X[v] {
				X[v][y] /= counts[v]
			}
		}
	}
	return X
}

// unionCorpus concatenates labelled and unlabelled corpora (train first).
func unionCorpus(a, b *corpus.Corpus) *corpus.Corpus {
	u := corpus.New()
	u.Sentences = make([]*corpus.Sentence, 0, len(a.Sentences)+len(b.Sentences))
	u.Sentences = append(u.Sentences, a.Sentences...)
	u.Sentences = append(u.Sentences, b.Sentences...)
	return u
}

// parallel runs fn(i) for i in [0,n) over the configured worker count.
func (s *System) parallel(n int, fn func(i int)) {
	workers := s.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				fn(i)
			}
		}(w)
	}
	wg.Wait()
}
