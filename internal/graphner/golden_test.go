package graphner

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/corpus/synth"
	"repro/internal/crf"
	"repro/internal/graph"
	"repro/internal/propagate"
)

// referenceTest is a verbatim copy of the seed TEST procedure, which
// re-compiled every sentence in each pass (graph construction, posterior
// extraction, baseline decoding). The golden test below runs it against
// the instance-cached pipeline and demands bit-identical output: caching
// compiled instances must be a pure optimization.
func referenceTest(s *System, test *corpus.Corpus) (*Output, error) {
	g, err := s.BuildGraph(test)
	if err != nil {
		return nil, err
	}
	if len(test.Sentences) == 0 {
		return nil, fmt.Errorf("graphner: empty test corpus")
	}
	union := unionCorpus(s.train, test.StripLabels())

	posteriors := s.Posteriors(union)
	trans := GoldTransitions(s.train)

	X := AveragePosteriors(g, union, posteriors)

	xref := make([][]float64, g.NumVertices())
	labelled := make([]bool, g.NumVertices())
	nLabelled, nPositive := 0, 0
	for v, ng := range g.Vertices {
		if d, ok := s.xref[ng]; ok {
			xref[v] = d
			labelled[v] = true
			nLabelled++
			if d[corpus.B]+d[corpus.I] > 0 {
				nPositive++
			}
		}
	}

	prop, err := propagate.Run(g, X, xref, labelled, propagate.Config{
		Mu:         s.cfg.Mu,
		Nu:         s.cfg.Nu,
		Iterations: s.cfg.Iterations,
		Workers:    s.cfg.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("graphner: propagation: %w", err)
	}

	offset := len(s.train.Sentences)
	out := &Output{
		Graph:         g,
		Propagation:   prop,
		VertexBeliefs: X,
		Tags:          make([][]corpus.Tag, len(test.Sentences)),
	}
	if n := g.NumVertices(); n > 0 {
		out.LabelledVertexFraction = float64(nLabelled) / float64(n)
		out.PositiveVertexFraction = float64(nPositive) / float64(n)
	}

	var decodeErr error
	var mu sync.Mutex
	s.parallel(len(test.Sentences), func(i int) {
		sent := test.Sentences[i]
		words := sent.Words()
		ps := posteriors[offset+i]
		combined := make([][]float64, len(words))
		for j := range words {
			row := make([]float64, corpus.NumTags)
			var gb []float64
			if vi := g.Lookup(corpus.Trigram(words, j)); vi >= 0 {
				gb = X[vi]
			}
			for y := 0; y < corpus.NumTags; y++ {
				if gb != nil {
					row[y] = s.cfg.Alpha*ps[j][y] + (1-s.cfg.Alpha)*gb[y]
				} else {
					row[y] = ps[j][y]
				}
			}
			combined[j] = row
		}
		tags, err := crf.DecodeWithPotentialsT(combined, trans, s.model.BIO, s.cfg.TransitionPower)
		if err != nil {
			mu.Lock()
			decodeErr = err
			mu.Unlock()
			return
		}
		out.Tags[i] = tags
	})
	if decodeErr != nil {
		return nil, fmt.Errorf("graphner: decoding: %w", decodeErr)
	}

	out.BaselineTags = s.BaselineTags(test)
	return out, nil
}

func tagsEqual(t *testing.T, what string, got, want [][]corpus.Tag) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d sentences, want %d", what, len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s: sentence %d has %d tags, want %d", what, i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("%s: sentence %d tag %d = %v, want %v", what, i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestCachedPipelineMatchesSeed(t *testing.T) {
	train, test := smallCorpora(t, synth.AML, 120)
	sys, err := Train(train, fastConfig())
	if err != nil {
		t.Fatal(err)
	}

	miCfg := sys.Config()
	miCfg.Mode = graph.MIFeatures
	miCfg.MIThreshold = 0.0005

	for _, tc := range []struct {
		name string
		s    *System
	}{
		{"all-features", sys},
		{"mi-features", sys.WithConfig(miCfg)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want, err := referenceTest(tc.s, test)
			if err != nil {
				t.Fatal(err)
			}
			got, err := tc.s.Test(test)
			if err != nil {
				t.Fatal(err)
			}

			tagsEqual(t, "Tags", got.Tags, want.Tags)
			tagsEqual(t, "BaselineTags", got.BaselineTags, want.BaselineTags)

			if len(got.Propagation.Loss) != len(want.Propagation.Loss) {
				t.Fatalf("loss history length %d vs %d", len(got.Propagation.Loss), len(want.Propagation.Loss))
			}
			for i := range want.Propagation.Loss {
				if got.Propagation.Loss[i] != want.Propagation.Loss[i] {
					t.Errorf("Loss[%d] = %v, seed %v", i, got.Propagation.Loss[i], want.Propagation.Loss[i])
				}
			}
			if got.Propagation.MaxDelta != want.Propagation.MaxDelta {
				t.Errorf("MaxDelta = %v, seed %v", got.Propagation.MaxDelta, want.Propagation.MaxDelta)
			}

			if len(got.VertexBeliefs) != len(want.VertexBeliefs) {
				t.Fatalf("%d vertex beliefs, want %d", len(got.VertexBeliefs), len(want.VertexBeliefs))
			}
			for v := range want.VertexBeliefs {
				for y := range want.VertexBeliefs[v] {
					if got.VertexBeliefs[v][y] != want.VertexBeliefs[v][y] {
						t.Fatalf("VertexBeliefs[%d][%d] = %v, seed %v",
							v, y, got.VertexBeliefs[v][y], want.VertexBeliefs[v][y])
					}
				}
			}

			if got.LabelledVertexFraction != want.LabelledVertexFraction ||
				got.PositiveVertexFraction != want.PositiveVertexFraction {
				t.Errorf("graph statistics (%v, %v) vs seed (%v, %v)",
					got.LabelledVertexFraction, got.PositiveVertexFraction,
					want.LabelledVertexFraction, want.PositiveVertexFraction)
			}
		})
	}
}
