package graphner

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/corpus/synth"
	"repro/internal/graph"
	"repro/internal/tokenize"
)

// frozenSystem trains a small system and runs the TEST pass an artifact
// freezes. The result is cached — several tests share it read-only, and
// training is the dominant cost.
var frozenOnce struct {
	sync.Once
	sys  *System
	test *corpus.Corpus
	out  *Output
	err  error
}

func frozenSystem(t *testing.T) (*System, *corpus.Corpus, *Output) {
	t.Helper()
	frozenOnce.Do(func() {
		cfg := synth.DefaultConfig(synth.AML, 31)
		cfg.Sentences = 200
		train, test := synth.GenerateSplit(cfg)
		gcfg := fastConfig()
		gcfg.CRFIterations = 20
		sys, err := Train(train, gcfg)
		if err != nil {
			frozenOnce.err = err
			return
		}
		out, err := sys.Test(test)
		if err != nil {
			frozenOnce.err = err
			return
		}
		frozenOnce.sys, frozenOnce.test, frozenOnce.out = sys, test, out
	})
	if frozenOnce.err != nil {
		t.Fatal(frozenOnce.err)
	}
	return frozenOnce.sys, frozenOnce.test, frozenOnce.out
}

func TestArtifactRoundTrip(t *testing.T) {
	sys, test, out := frozenSystem(t)
	art, err := sys.Freeze(test, out)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := art.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadArtifact(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	if got.Checksum() == "" || got.Checksum() != art.Checksum() {
		t.Errorf("checksum mismatch: wrote %q, read %q", art.Checksum(), got.Checksum())
	}
	if !reflect.DeepEqual(got.Config(), art.Config()) {
		t.Errorf("config round trip: got %+v want %+v", got.Config(), art.Config())
	}
	if got.Config().LossEvery != -1 {
		t.Errorf("frozen LossEvery = %d, want the serving default -1", got.Config().LossEvery)
	}
	if !reflect.DeepEqual(got.Model(), art.Model()) {
		t.Error("model lost in round trip")
	}
	if !got.Graph().Equal(art.Graph()) {
		t.Error("graph lost in round trip")
	}
	if !reflect.DeepEqual(got.Beliefs(), art.Beliefs()) {
		t.Error("beliefs lost in round trip")
	}
	if !reflect.DeepEqual(got.names, art.names) {
		t.Error("alphabet lost in round trip")
	}
	if !reflect.DeepEqual(got.xref, art.xref) {
		t.Error("reference distributions lost in round trip")
	}
	if !reflect.DeepEqual(got.Transitions(), art.Transitions()) {
		t.Error("transitions differ after round trip")
	}
	if len(got.FrozenCorpus().Sentences) != len(test.Sentences) {
		t.Fatalf("frozen corpus has %d sentences, want %d",
			len(got.FrozenCorpus().Sentences), len(test.Sentences))
	}

	// The reconstructed system must reproduce the frozen TEST labels.
	loaded, err := got.System(nil)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := loaded.Test(got.FrozenCorpus())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Tags, out2.Tags) {
		t.Error("reconstructed system labels the frozen corpus differently")
	}
}

// TestArtifactLSHConfigRoundTrip pins the version-2 config section: a
// frozen system carrying an LSH graph mode keeps every LSH knob through
// WriteTo/ReadArtifact.
func TestArtifactLSHConfigRoundTrip(t *testing.T) {
	sys, test, out := frozenSystem(t)
	cp := *sys
	cp.cfg.GraphMode = graph.ModeLSH
	cp.cfg.LSH = graph.LSHConfig{Bits: 7, Tables: 13, MaxBucket: 800, Rerank: 50, Refine: 2, MultiProbe: true, Seed: 77}
	art, err := cp.Freeze(test, out)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := art.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadArtifact(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Config().GraphMode != graph.ModeLSH {
		t.Errorf("GraphMode = %v after artifact round trip, want lsh", got.Config().GraphMode)
	}
	if want := cp.cfg.LSH; got.Config().LSH != want {
		t.Errorf("LSH config after artifact round trip:\n got %+v\nwant %+v", got.Config().LSH, want)
	}
}

// TestArtifactDeterministic locks in the byte-determinism contract: two
// writes of the same artifact are identical files with identical
// checksums.
func TestArtifactDeterministic(t *testing.T) {
	sys, test, out := frozenSystem(t)
	art, err := sys.Freeze(test, out)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if _, err := art.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	sum := art.Checksum()
	if _, err := art.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two writes of the same artifact differ")
	}
	if art.Checksum() != sum {
		t.Fatal("checksum changed between identical writes")
	}
}

func TestFreezeValidates(t *testing.T) {
	sys, test, out := frozenSystem(t)
	if _, err := sys.Freeze(corpus.New(), nil); err == nil {
		t.Error("empty frozen corpus accepted")
	}
	if _, err := sys.Freeze(test, &Output{}); err == nil {
		t.Error("output without graph accepted")
	}
	bad := *out
	bad.VertexBeliefs = out.VertexBeliefs[:1]
	if _, err := sys.Freeze(test, &bad); err == nil {
		t.Error("belief/vertex count mismatch accepted")
	}
}

// wantReadError writes the artifact, applies corrupt to the bytes, and
// asserts ReadArtifact fails mentioning substr.
func wantReadError(t *testing.T, art *Artifact, corrupt func([]byte) []byte, substr string) {
	t.Helper()
	var buf bytes.Buffer
	if _, err := art.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := corrupt(append([]byte(nil), buf.Bytes()...))
	_, err := ReadArtifact(bytes.NewReader(raw))
	if err == nil {
		t.Fatalf("corrupted artifact (%s) accepted", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("error %q does not mention %q", err, substr)
	}
}

func TestArtifactReadFailures(t *testing.T) {
	sys, test, out := frozenSystem(t)
	art, err := sys.Freeze(test, out)
	if err != nil {
		t.Fatal(err)
	}
	ident := func(b []byte) []byte { return b }

	wantReadError(t, art, func(b []byte) []byte { return b[:10] }, "truncated header")
	wantReadError(t, art, func(b []byte) []byte { return b[:len(b)-7] }, "truncated payload")
	wantReadError(t, art, func(b []byte) []byte { b[0] = 'X'; return b }, "magic")
	wantReadError(t, art, func(b []byte) []byte { b[8] = 99; return b }, "version")
	wantReadError(t, art, func(b []byte) []byte { b[len(b)-1] ^= 1; return b }, "checksum")

	// Structural failures: encode a deliberately inconsistent artifact
	// (same package, so the fields are reachable) and verify the decoder
	// rejects it rather than building a partial artifact.
	short := *art
	short.beliefs = art.beliefs[:len(art.beliefs)-corpus.NumTags]
	wantReadError(t, &short, ident, "belief matrix")

	badModel := *art
	m := *art.model
	m.W = m.W[:len(m.W)-1]
	badModel.model = &m
	wantReadError(t, &badModel, ident, "emission weights")

	badNames := *art
	badNames.names = art.names[:len(art.names)-1]
	wantReadError(t, &badNames, ident, "alphabet")

	badTags := *art
	badTags.train = corpus.New()
	badTags.train.Sentences = append(badTags.train.Sentences, &corpus.Sentence{
		ID: "bad", Text: "a b c", Tokens: tokenize.Sentence("a b c"),
		Tags: []corpus.Tag{corpus.O},
	})
	wantReadError(t, &badTags, ident, "tags for")

	// A model-less artifact must fail at write time.
	if _, err := (&Artifact{}).WriteTo(&bytes.Buffer{}); err == nil {
		t.Error("artifact without model serialized")
	}
}
