package graphner

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/corpus"
	"repro/internal/crf"
	"repro/internal/features"
	"repro/internal/graph"
	"repro/internal/tokenize"
)

// snapshot is the gob-encoded persistent form of a trained System. The
// training corpus travels with the model because GraphNER's transductive
// TEST procedure needs the labelled sentences at test time (posterior
// averaging over D_l ∪ D_u, graph construction, gold transitions).
// Function-valued and interface-valued configuration (the feature
// extractor and its distributional classers) is not serializable; Load
// takes the reconstructed extractor as an argument.
type snapshot struct {
	Alpha, Mu, Nu   float64
	Iterations      int
	K               int
	Mode            int
	MIThreshold     float64
	Order           int
	L2              float64
	CRFIterations   int
	MaxDF           int
	TransitionPower float64

	Model         *crf.Model
	AlphabetNames []string
	Xref          map[corpus.NGram][]float64
	Train         []savedSentence
}

type savedSentence struct {
	ID   string
	Text string
	Tags []corpus.Tag
}

// Save serializes the trained system (model, feature alphabet, reference
// distributions, hyper-parameters, and training corpus) to w.
func (s *System) Save(w io.Writer) error {
	snap := snapshot{
		Alpha: s.cfg.Alpha, Mu: s.cfg.Mu, Nu: s.cfg.Nu,
		Iterations: s.cfg.Iterations, K: s.cfg.K,
		Mode: int(s.cfg.Mode), MIThreshold: s.cfg.MIThreshold,
		Order: int(s.cfg.Order), L2: s.cfg.L2,
		CRFIterations: s.cfg.CRFIterations, MaxDF: s.cfg.MaxDF,
		TransitionPower: s.cfg.TransitionPower,
		Model:           s.model,
		AlphabetNames:   s.compiler.Alphabet.Names(),
		Xref:            s.xref,
	}
	for _, sent := range s.train.Sentences {
		snap.Train = append(snap.Train, savedSentence{ID: sent.ID, Text: sent.Text, Tags: sent.Tags})
	}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("graphner: save: %w", err)
	}
	return nil
}

// Load reconstructs a trained system from a Save stream. extractor must be
// configured identically to the one used at training time (including any
// distributional WordClasser — see brown.ReadFrom and word2vec.ReadFrom
// for persisting those); pass nil for the plain BANNER-style extractor.
func Load(r io.Reader, extractor *features.Extractor) (*System, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("graphner: load: %w", err)
	}
	if snap.Model == nil {
		return nil, fmt.Errorf("graphner: load: snapshot has no model")
	}
	if extractor == nil {
		extractor = features.NewExtractor(nil)
	}
	cfg := Config{
		Alpha: snap.Alpha, Mu: snap.Mu, Nu: snap.Nu,
		Iterations: snap.Iterations, K: snap.K,
		Mode: graph.FeatureMode(snap.Mode), MIThreshold: snap.MIThreshold,
		Order: crf.Order(snap.Order), L2: snap.L2,
		CRFIterations: snap.CRFIterations, MaxDF: snap.MaxDF,
		TransitionPower: snap.TransitionPower,
		Extractor:       extractor,
	}
	cfg.defaults()

	train := corpus.New()
	for _, sv := range snap.Train {
		sent := &corpus.Sentence{ID: sv.ID, Text: sv.Text, Tokens: tokenize.Sentence(sv.Text), Tags: sv.Tags}
		if sv.Tags != nil && len(sv.Tags) != len(sent.Tokens) {
			return nil, fmt.Errorf("graphner: load: sentence %s has %d tags for %d tokens", sv.ID, len(sv.Tags), len(sent.Tokens))
		}
		train.Sentences = append(train.Sentences, sent)
	}

	comp := &crf.Compiler{
		Extractor: extractor,
		Alphabet:  features.NewAlphabetFromNames(snap.AlphabetNames),
	}
	return &System{
		cfg:      cfg,
		compiler: comp,
		model:    snap.Model,
		train:    train,
		xref:     snap.Xref,
	}, nil
}
