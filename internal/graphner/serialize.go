package graphner

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"repro/internal/corpus"
	"repro/internal/crf"
	"repro/internal/features"
	"repro/internal/graph"
	"repro/internal/tokenize"
)

// snapshot is the gob-encoded persistent form of a trained System. The
// training corpus travels with the model because GraphNER's transductive
// TEST procedure needs the labelled sentences at test time (posterior
// averaging over D_l ∪ D_u, graph construction, gold transitions).
// Function-valued and interface-valued configuration (the feature
// extractor and its distributional classers) is not serializable; Load
// takes the reconstructed extractor as an argument. Workers is likewise
// not persisted: it is a machine-local parallelism bound, not a model
// parameter — a snapshot trained on a 64-core box must not pin a 4-core
// box to 64 workers, so Load lets Config.defaults() re-derive it from
// GOMAXPROCS on the loading machine.
type snapshot struct {
	Alpha, Mu, Nu   float64
	Iterations      int
	K               int
	Mode            int
	MIThreshold     float64
	Order           int
	L2              float64
	CRFIterations   int
	MaxDF           int
	Shards          int
	LossEvery       int
	TransitionPower float64
	GraphMode       int
	LSHBits         int
	LSHTables       int
	LSHMaxBucket    int
	LSHRerank       int
	LSHRefine       int
	LSHMultiProbe   bool
	LSHSeed         int64

	Model         *crf.Model
	AlphabetNames []string
	// Xref is persisted as a slice sorted by 3-gram rather than the map
	// the System holds: gob encodes maps in iteration order, which is
	// randomized, so a map field would make two saves of the same system
	// byte-different and defeat artifact checksums. The sorted slice makes
	// Save byte-deterministic.
	Xref  []xrefEntry
	Train []savedSentence
}

type xrefEntry struct {
	G corpus.NGram
	D []float64
}

type savedSentence struct {
	ID   string
	Text string
	Tags []corpus.Tag
}

// sortedXref flattens a reference-distribution map into a slice sorted by
// 3-gram, the canonical order shared by Save and the Artifact encoder.
func sortedXref(m map[corpus.NGram][]float64) []xrefEntry {
	out := make([]xrefEntry, 0, len(m))
	for g, d := range m {
		out = append(out, xrefEntry{G: g, D: d})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].G < out[j].G })
	return out
}

// xrefMap rebuilds the in-memory reference-distribution map from its
// serialized sorted-slice form.
func xrefMap(entries []xrefEntry) map[corpus.NGram][]float64 {
	m := make(map[corpus.NGram][]float64, len(entries))
	for _, e := range entries {
		m[e.G] = e.D
	}
	return m
}

// savedCorpus flattens a corpus into its serializable sentence list.
func savedCorpus(c *corpus.Corpus) []savedSentence {
	out := make([]savedSentence, 0, len(c.Sentences))
	for _, sent := range c.Sentences {
		out = append(out, savedSentence{ID: sent.ID, Text: sent.Text, Tags: sent.Tags})
	}
	return out
}

// restoreCorpus re-tokenizes a saved sentence list, validating that
// persisted tag sequences still align with the tokenization.
func restoreCorpus(saved []savedSentence) (*corpus.Corpus, error) {
	c := corpus.New()
	for _, sv := range saved {
		sent := &corpus.Sentence{ID: sv.ID, Text: sv.Text, Tokens: tokenize.Sentence(sv.Text), Tags: sv.Tags}
		if sv.Tags != nil && len(sv.Tags) != len(sent.Tokens) {
			return nil, fmt.Errorf("sentence %q has %d tags for %d tokens", sv.ID, len(sv.Tags), len(sent.Tokens))
		}
		c.Sentences = append(c.Sentences, sent)
	}
	return c, nil
}

// snapshotConfig extracts the serializable configuration fields. Workers
// and Extractor are intentionally machine-local (see the snapshot type
// comment) and stay zero here.
func (s *System) snapshotFields() snapshot {
	return snapshot{
		Alpha: s.cfg.Alpha, Mu: s.cfg.Mu, Nu: s.cfg.Nu,
		Iterations: s.cfg.Iterations, K: s.cfg.K,
		Mode: int(s.cfg.Mode), MIThreshold: s.cfg.MIThreshold,
		Order: int(s.cfg.Order), L2: s.cfg.L2,
		CRFIterations: s.cfg.CRFIterations, MaxDF: s.cfg.MaxDF,
		Shards: s.cfg.Shards, LossEvery: s.cfg.LossEvery,
		TransitionPower: s.cfg.TransitionPower,
		GraphMode:       int(s.cfg.GraphMode),
		LSHBits:         s.cfg.LSH.Bits, LSHTables: s.cfg.LSH.Tables,
		LSHMaxBucket: s.cfg.LSH.MaxBucket, LSHRerank: s.cfg.LSH.Rerank,
		LSHRefine: s.cfg.LSH.Refine, LSHMultiProbe: s.cfg.LSH.MultiProbe,
		LSHSeed: s.cfg.LSH.Seed,
	}
}

// configOf reconstructs a Config from persisted snapshot fields.
func (snap *snapshot) config(extractor *features.Extractor) Config {
	cfg := Config{
		Alpha: snap.Alpha, Mu: snap.Mu, Nu: snap.Nu,
		Iterations: snap.Iterations, K: snap.K,
		Mode: graph.FeatureMode(snap.Mode), MIThreshold: snap.MIThreshold,
		Order: crf.Order(snap.Order), L2: snap.L2,
		CRFIterations: snap.CRFIterations, MaxDF: snap.MaxDF,
		Shards: snap.Shards, LossEvery: snap.LossEvery,
		TransitionPower: snap.TransitionPower,
		GraphMode:       graph.GraphMode(snap.GraphMode),
		LSH: graph.LSHConfig{
			Bits: snap.LSHBits, Tables: snap.LSHTables,
			MaxBucket: snap.LSHMaxBucket, Rerank: snap.LSHRerank,
			Refine: snap.LSHRefine, MultiProbe: snap.LSHMultiProbe,
			Seed: snap.LSHSeed,
		},
		Extractor: extractor,
	}
	cfg.defaults()
	return cfg
}

// Save serializes the trained system (model, feature alphabet, reference
// distributions, hyper-parameters, and training corpus) to w. The output
// is byte-deterministic: two saves of the same system are identical, so
// content checksums over the stream are meaningful.
func (s *System) Save(w io.Writer) error {
	snap := s.snapshotFields()
	snap.Model = s.model
	snap.AlphabetNames = s.compiler.Alphabet.Names()
	snap.Xref = sortedXref(s.xref)
	snap.Train = savedCorpus(s.train)
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("graphner: save: %w", err)
	}
	return nil
}

// Load reconstructs a trained system from a Save stream. extractor must be
// configured identically to the one used at training time (including any
// distributional WordClasser — see brown.ReadFrom and word2vec.ReadFrom
// for persisting those); pass nil for the plain BANNER-style extractor.
func Load(r io.Reader, extractor *features.Extractor) (*System, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("graphner: load: %w", err)
	}
	if snap.Model == nil {
		return nil, fmt.Errorf("graphner: load: snapshot has no model")
	}
	if extractor == nil {
		extractor = features.NewExtractor(nil)
	}
	train, err := restoreCorpus(snap.Train)
	if err != nil {
		return nil, fmt.Errorf("graphner: load: %w", err)
	}
	comp := &crf.Compiler{
		Extractor: extractor,
		Alphabet:  features.NewAlphabetFromNames(snap.AlphabetNames),
	}
	return &System{
		cfg:      snap.config(extractor),
		compiler: comp,
		model:    snap.Model,
		train:    train,
		xref:     xrefMap(snap.Xref),
	}, nil
}
