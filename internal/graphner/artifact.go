package graphner

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"math"

	"repro/internal/corpus"
	"repro/internal/crf"
	"repro/internal/features"
	"repro/internal/graph"
)

// Artifact is the frozen, shareable serving bundle: everything a
// long-lived tagging process needs to answer requests without retraining
// or rebuilding — the trained CRF, the compiled feature alphabet, the
// reference distributions, the similarity graph, and the propagated
// vertex beliefs of one TEST pass (Algorithm 1 line 7). A server that
// loads an Artifact reproduces System.Test's labels exactly for the
// frozen sentences and extends the same decision rule — α·P_s + (1−α)·X
// followed by tempered Viterbi — to fresh traffic.
//
// The on-disk form is a single binary blob: a fixed-size header (magic,
// version, payload length, SHA-256 content checksum) followed by a
// byte-deterministic payload, so cold starts are one sequential read with
// end-to-end validation and identical artifacts are identical files.
type Artifact struct {
	cfg     Config // Workers and Extractor are machine-local, never stored
	model   *crf.Model
	names   []string
	xref    map[corpus.NGram][]float64
	train   *corpus.Corpus
	frozen  *corpus.Corpus
	graph   *graph.Graph
	beliefs []float64 // flat NumVertices×corpus.NumTags propagated X
	sum     [sha256.Size]byte
	sumSet  bool
}

// Artifact header constants. The magic is 8 bytes so the header stays
// 8-byte aligned: magic, version+reserved, payload length, checksum.
const (
	artifactMagic   = "GNERARTF"
	// Version history: 1 — initial layout; 2 — graph-mode and LSH
	// configuration appended to the config section.
	artifactVersion = 2
)

// artifactHeaderSize is the fixed byte length of the header:
// 8 (magic) + 4 (version) + 4 (reserved) + 8 (payload length) + 32 (SHA-256).
const artifactHeaderSize = 8 + 4 + 4 + 8 + sha256.Size

// Freeze packages the system and one transductive TEST pass over frozen
// into an Artifact. out must be the result of Test (or TestWithGraph /
// TestWithExtra) on this system over exactly frozen; pass nil to run Test
// here. When the system's LossEvery is the legacy 0 schedule, the
// internal Test runs with LossEvery = -1 — the diagnostic loss pass costs
// a full edge sweep and nothing on the serving path reads it; an explicit
// positive schedule is honoured. The loss schedule never changes labels
// or beliefs, so the frozen artifact serves tags bit-identical to
// System.Test either way.
func (s *System) Freeze(frozen *corpus.Corpus, out *Output) (*Artifact, error) {
	if len(frozen.Sentences) == 0 {
		return nil, fmt.Errorf("graphner: freeze: empty frozen corpus")
	}
	if out == nil {
		sys := s
		if s.cfg.LossEvery == 0 {
			cp := *s
			cp.cfg.LossEvery = -1
			sys = &cp
		}
		var err error
		if out, err = sys.Test(frozen); err != nil {
			return nil, fmt.Errorf("graphner: freeze: %w", err)
		}
	}
	if out.Graph == nil {
		return nil, fmt.Errorf("graphner: freeze: output carries no graph")
	}
	n := out.Graph.NumVertices()
	if len(out.VertexBeliefs) != n {
		return nil, fmt.Errorf("graphner: freeze: %d belief rows for %d vertices", len(out.VertexBeliefs), n)
	}
	const Y = corpus.NumTags
	beliefs := make([]float64, n*Y)
	for v, row := range out.VertexBeliefs {
		if row == nil {
			// Vertices propagation never materialized stay uniform, the
			// same default propagate.Run applies.
			for y := 0; y < Y; y++ {
				beliefs[v*Y+y] = 1.0 / Y
			}
			continue
		}
		copy(beliefs[v*Y:(v+1)*Y], row)
	}
	cfg := s.cfg
	cfg.Workers = 0
	cfg.Extractor = nil
	if cfg.LossEvery == 0 {
		cfg.LossEvery = -1 // serving default: skip the diagnostic loss pass
	}
	return &Artifact{
		cfg:     cfg,
		model:   s.model,
		names:   s.compiler.Alphabet.Names(),
		xref:    s.xref,
		train:   s.train,
		frozen:  frozen.StripLabels(),
		graph:   out.Graph.EnsureCSR(),
		beliefs: beliefs,
	}, nil
}

// Config returns the frozen configuration. Workers is zero (machine-local,
// re-derived from GOMAXPROCS by System) and Extractor is nil.
func (a *Artifact) Config() Config { return a.cfg }

// Model exposes the frozen CRF.
func (a *Artifact) Model() *crf.Model { return a.model }

// Graph exposes the frozen similarity graph (CSR built).
func (a *Artifact) Graph() *graph.Graph { return a.graph }

// Beliefs returns the flat propagated vertex belief matrix, indexed like
// Graph().Vertices (row v at [v*corpus.NumTags : (v+1)*corpus.NumTags]).
func (a *Artifact) Beliefs() []float64 { return a.beliefs }

// Transitions returns the gold tag-transition matrix T_s estimated from
// the frozen training corpus (the matrix Algorithm 1's final re-decode
// uses).
func (a *Artifact) Transitions() [][]float64 { return GoldTransitions(a.train) }

// TrainCorpus returns the labelled training corpus frozen into the
// artifact.
func (a *Artifact) TrainCorpus() *corpus.Corpus { return a.train }

// FrozenCorpus returns the unlabelled corpus the graph and beliefs were
// frozen over (labels stripped).
func (a *Artifact) FrozenCorpus() *corpus.Corpus { return a.frozen }

// NewCompiler builds a sentence compiler over the frozen feature alphabet.
// extractor must match the training-time configuration; nil means the
// plain BANNER-style extractor. The alphabet is frozen, so the compiler is
// safe for concurrent use.
func (a *Artifact) NewCompiler(extractor *features.Extractor) *crf.Compiler {
	if extractor == nil {
		extractor = features.NewExtractor(nil)
	}
	return &crf.Compiler{Extractor: extractor, Alphabet: features.NewAlphabetFromNames(a.names)}
}

// System reconstructs a full *System from the artifact — the streaming
// serving mode uses this to drive graph.Updater/Streamer fold-ins.
// extractor is as in NewCompiler.
func (a *Artifact) System(extractor *features.Extractor) (*System, error) {
	if a.model == nil {
		return nil, fmt.Errorf("graphner: artifact has no model")
	}
	if extractor == nil {
		extractor = features.NewExtractor(nil)
	}
	cfg := a.cfg
	cfg.Extractor = extractor
	cfg.Workers = 0
	cfg.defaults()
	return &System{
		cfg:      cfg,
		compiler: a.NewCompiler(extractor),
		model:    a.model,
		train:    a.train,
		xref:     a.xref,
	}, nil
}

// Checksum returns the hex SHA-256 content checksum of the payload, set by
// WriteTo and ReadArtifact ("" before either has run).
func (a *Artifact) Checksum() string {
	if !a.sumSet {
		return ""
	}
	return hex.EncodeToString(a.sum[:])
}

// WriteTo serializes the artifact: header (magic, version, payload length,
// SHA-256 of the payload) followed by the payload. The encoding is
// byte-deterministic — reference distributions are emitted in sorted
// 3-gram order and every other section has one canonical order — so two
// writes of the same artifact produce identical bytes and the checksum
// identifies content, not encoding accidents.
func (a *Artifact) WriteTo(w io.Writer) (int64, error) {
	if a.model == nil {
		return 0, fmt.Errorf("graphner: artifact write: no model")
	}
	var payload bytes.Buffer
	if err := a.encodePayload(&payload); err != nil {
		return 0, fmt.Errorf("graphner: artifact write: %w", err)
	}
	a.sum = sha256.Sum256(payload.Bytes())
	a.sumSet = true
	hdr := make([]byte, artifactHeaderSize)
	copy(hdr, artifactMagic)
	binary.LittleEndian.PutUint32(hdr[8:], artifactVersion)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(payload.Len()))
	copy(hdr[24:], a.sum[:])
	n, err := w.Write(hdr)
	total := int64(n)
	if err != nil {
		return total, fmt.Errorf("graphner: artifact write: %w", err)
	}
	m, err := w.Write(payload.Bytes())
	total += int64(m)
	if err != nil {
		return total, fmt.Errorf("graphner: artifact write: %w", err)
	}
	return total, nil
}

// ReadArtifact deserializes and validates an artifact written by WriteTo:
// header shape, version, payload length, SHA-256 checksum, and structural
// consistency (model weight shapes, tag/token alignment of the stored
// corpora, CSR well-formedness, belief matrix size). Every failure returns
// a descriptive error; no partially constructed artifact escapes.
func ReadArtifact(r io.Reader) (*Artifact, error) {
	hdr := make([]byte, artifactHeaderSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("graphner: artifact: truncated header: %w", err)
	}
	if string(hdr[:8]) != artifactMagic {
		return nil, fmt.Errorf("graphner: artifact: bad magic %q (not a graphner artifact)", hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != artifactVersion {
		return nil, fmt.Errorf("graphner: artifact: unsupported version %d (want %d)", v, artifactVersion)
	}
	plen := binary.LittleEndian.Uint64(hdr[16:])
	const maxPayload = 1 << 36 // 64 GiB sanity bound on the length prefix
	if plen > maxPayload {
		return nil, fmt.Errorf("graphner: artifact: implausible payload length %d", plen)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("graphner: artifact: truncated payload (header promises %d bytes): %w", plen, err)
	}
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], hdr[24:24+sha256.Size]) {
		return nil, fmt.Errorf("graphner: artifact: checksum mismatch (stored %x, computed %x)", hdr[24:24+sha256.Size], sum[:8])
	}
	a := &Artifact{sum: sum, sumSet: true}
	if err := a.decodePayload(payload); err != nil {
		return nil, fmt.Errorf("graphner: artifact: %w", err)
	}
	return a, nil
}

// ---- payload encoding ----
//
// Everything is little-endian. Variable-length sections carry a uint64
// count; strings are length-prefixed UTF-8. The section order is fixed:
// config, model, alphabet, xref, train corpus, frozen corpus, graph
// (vertices + CSR), beliefs.

type binWriter struct {
	w   io.Writer
	err error
	buf [8]byte
}

func (b *binWriter) bytes(p []byte) {
	if b.err == nil {
		_, b.err = b.w.Write(p)
	}
}

func (b *binWriter) u8(v uint8) { b.bytes([]byte{v}) }

func (b *binWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(b.buf[:], v)
	b.bytes(b.buf[:])
}

func (b *binWriter) i64(v int64) { b.u64(uint64(v)) }

func (b *binWriter) f64(v float64) { b.u64(math.Float64bits(v)) }

func (b *binWriter) str(s string) {
	b.u64(uint64(len(s)))
	b.bytes([]byte(s))
}

func (b *binWriter) f64s(vs []float64) {
	b.u64(uint64(len(vs)))
	for _, v := range vs {
		b.f64(v)
	}
}

func (b *binWriter) i32s(vs []int32) {
	b.u64(uint64(len(vs)))
	for _, v := range vs {
		binary.LittleEndian.PutUint32(b.buf[:4], uint32(v))
		b.bytes(b.buf[:4])
	}
}

func (b *binWriter) strs(ss []string) {
	b.u64(uint64(len(ss)))
	for _, s := range ss {
		b.str(s)
	}
}

func (a *Artifact) encodePayload(w io.Writer) error {
	b := &binWriter{w: w}
	// Config.
	cfg := a.cfg
	b.f64(cfg.Alpha)
	b.f64(cfg.Mu)
	b.f64(cfg.Nu)
	b.f64(cfg.MIThreshold)
	b.f64(cfg.L2)
	b.f64(cfg.TransitionPower)
	b.i64(int64(cfg.Iterations))
	b.i64(int64(cfg.K))
	b.i64(int64(cfg.Mode))
	b.i64(int64(cfg.Order))
	b.i64(int64(cfg.CRFIterations))
	b.i64(int64(cfg.MaxDF))
	b.i64(int64(cfg.Shards))
	b.i64(int64(cfg.LossEvery))
	b.i64(int64(cfg.GraphMode))
	b.i64(int64(cfg.LSH.Bits))
	b.i64(int64(cfg.LSH.Tables))
	b.i64(int64(cfg.LSH.MaxBucket))
	b.i64(int64(cfg.LSH.Rerank))
	b.i64(int64(cfg.LSH.Refine))
	b.i64(cfg.LSH.Seed)
	if cfg.LSH.MultiProbe {
		b.u8(1)
	} else {
		b.u8(0)
	}
	// Model.
	m := a.model
	b.i64(int64(m.Order))
	b.i64(int64(m.NumFeatures))
	b.i64(int64(m.S))
	if m.BIO {
		b.u8(1)
	} else {
		b.u8(0)
	}
	b.f64s(m.W)
	b.f64s(m.T)
	b.f64s(m.Start)
	// Alphabet.
	b.strs(a.names)
	// Reference distributions, in sorted 3-gram order (determinism).
	entries := sortedXref(a.xref)
	b.u64(uint64(len(entries)))
	for _, e := range entries {
		b.str(string(e.G))
		if len(e.D) != corpus.NumTags {
			return fmt.Errorf("reference distribution for %q has %d entries, want %d", e.G, len(e.D), corpus.NumTags)
		}
		for _, v := range e.D {
			b.f64(v)
		}
	}
	// Corpora.
	encCorpus := func(c *corpus.Corpus, withTags bool) {
		b.u64(uint64(len(c.Sentences)))
		for _, s := range c.Sentences {
			b.str(s.ID)
			b.str(s.Text)
			if !withTags {
				continue
			}
			if s.Tags == nil {
				b.u8(0)
				continue
			}
			b.u8(1)
			b.u64(uint64(len(s.Tags)))
			for _, t := range s.Tags {
				b.u8(uint8(t))
			}
		}
	}
	encCorpus(a.train, true)
	encCorpus(a.frozen, false)
	// Graph: vertices then the CSR arrays.
	g := a.graph.EnsureCSR()
	b.i64(int64(g.K))
	b.u64(uint64(len(g.Vertices)))
	for _, v := range g.Vertices {
		b.str(string(v))
	}
	b.i32s(g.EdgeOffsets)
	b.i32s(g.EdgeTo)
	b.f64s(g.EdgeWeight)
	// Beliefs.
	b.f64s(a.beliefs)
	return b.err
}

type binReader struct {
	p   []byte
	off int
	err error
}

func (b *binReader) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

func (b *binReader) take(n int) []byte {
	if b.err != nil {
		return nil
	}
	if n < 0 || b.off+n > len(b.p) || b.off+n < b.off {
		b.fail("payload truncated at offset %d (need %d more bytes)", b.off, n)
		return nil
	}
	out := b.p[b.off : b.off+n]
	b.off += n
	return out
}

func (b *binReader) u8() uint8 {
	p := b.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (b *binReader) u64() uint64 {
	p := b.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

func (b *binReader) i64() int64 { return int64(b.u64()) }

func (b *binReader) f64() float64 { return math.Float64frombits(b.u64()) }

// count reads a uint64 length prefix and bounds it by the bytes actually
// remaining (elemSize ≥ 1 per element), so corrupt prefixes fail with a
// truncation error instead of attempting a huge allocation.
func (b *binReader) count(elemSize int) int {
	n := b.u64()
	if b.err != nil {
		return 0
	}
	if rem := len(b.p) - b.off; n > uint64(rem/elemSize) {
		b.fail("payload truncated: count %d at offset %d exceeds remaining %d bytes", n, b.off-8, rem)
		return 0
	}
	return int(n)
}

func (b *binReader) str() string {
	n := b.count(1)
	return string(b.take(n))
}

func (b *binReader) f64s() []float64 {
	n := b.count(8)
	if b.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = b.f64()
	}
	return out
}

func (b *binReader) i32s() []int32 {
	n := b.count(4)
	if b.err != nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		p := b.take(4)
		if p == nil {
			return nil
		}
		out[i] = int32(binary.LittleEndian.Uint32(p))
	}
	return out
}

func (b *binReader) strs() []string {
	n := b.count(8)
	if b.err != nil {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = b.str()
	}
	return out
}

func (a *Artifact) decodePayload(payload []byte) error {
	b := &binReader{p: payload}
	// Config.
	cfg := Config{}
	cfg.Alpha = b.f64()
	cfg.Mu = b.f64()
	cfg.Nu = b.f64()
	cfg.MIThreshold = b.f64()
	cfg.L2 = b.f64()
	cfg.TransitionPower = b.f64()
	cfg.Iterations = int(b.i64())
	cfg.K = int(b.i64())
	cfg.Mode = graph.FeatureMode(b.i64())
	cfg.Order = crf.Order(b.i64())
	cfg.CRFIterations = int(b.i64())
	cfg.MaxDF = int(b.i64())
	cfg.Shards = int(b.i64())
	cfg.LossEvery = int(b.i64())
	cfg.GraphMode = graph.GraphMode(b.i64())
	cfg.LSH.Bits = int(b.i64())
	cfg.LSH.Tables = int(b.i64())
	cfg.LSH.MaxBucket = int(b.i64())
	cfg.LSH.Rerank = int(b.i64())
	cfg.LSH.Refine = int(b.i64())
	cfg.LSH.Seed = b.i64()
	cfg.LSH.MultiProbe = b.u8() == 1
	a.cfg = cfg
	// Model.
	m := &crf.Model{}
	m.Order = crf.Order(b.i64())
	m.NumFeatures = int(b.i64())
	m.S = int(b.i64())
	m.BIO = b.u8() == 1
	m.W = b.f64s()
	m.T = b.f64s()
	m.Start = b.f64s()
	if b.err != nil {
		return b.err
	}
	if m.S <= 0 || m.NumFeatures < 0 {
		return fmt.Errorf("model has invalid shape (S=%d, features=%d)", m.S, m.NumFeatures)
	}
	if len(m.W) != m.NumFeatures*m.S {
		return fmt.Errorf("model has %d emission weights for %d features × %d states", len(m.W), m.NumFeatures, m.S)
	}
	if len(m.T) != m.S*m.S || len(m.Start) != m.S {
		return fmt.Errorf("model has %d transition and %d start weights for %d states", len(m.T), len(m.Start), m.S)
	}
	a.model = m
	// Alphabet.
	a.names = b.strs()
	if b.err == nil && len(a.names) != m.NumFeatures {
		return fmt.Errorf("alphabet has %d names for %d model features", len(a.names), m.NumFeatures)
	}
	// Reference distributions.
	nx := b.count(8)
	a.xref = make(map[corpus.NGram][]float64, nx)
	for i := 0; i < nx && b.err == nil; i++ {
		g := corpus.NGram(b.str())
		d := make([]float64, corpus.NumTags)
		for y := range d {
			d[y] = b.f64()
		}
		a.xref[g] = d
	}
	// Corpora.
	decCorpus := func(withTags bool) []savedSentence {
		n := b.count(1)
		out := make([]savedSentence, 0, n)
		for i := 0; i < n && b.err == nil; i++ {
			sv := savedSentence{ID: b.str(), Text: b.str()}
			if withTags && b.u8() == 1 {
				nt := b.count(1)
				sv.Tags = make([]corpus.Tag, nt)
				for j := range sv.Tags {
					sv.Tags[j] = corpus.Tag(b.u8())
				}
			}
			out = append(out, sv)
		}
		return out
	}
	trainSaved := decCorpus(true)
	frozenSaved := decCorpus(false)
	if b.err != nil {
		return b.err
	}
	var err error
	if a.train, err = restoreCorpus(trainSaved); err != nil {
		return fmt.Errorf("train corpus: %w", err)
	}
	if a.frozen, err = restoreCorpus(frozenSaved); err != nil {
		return fmt.Errorf("frozen corpus: %w", err)
	}
	// Graph.
	g := &graph.Graph{K: int(b.i64())}
	nv := b.count(8)
	g.Vertices = make([]corpus.NGram, 0, nv)
	g.Index = make(map[corpus.NGram]int, nv)
	for i := 0; i < nv && b.err == nil; i++ {
		v := corpus.NGram(b.str())
		g.Index[v] = len(g.Vertices)
		g.Vertices = append(g.Vertices, v)
	}
	g.EdgeOffsets = b.i32s()
	g.EdgeTo = b.i32s()
	g.EdgeWeight = b.f64s()
	a.beliefs = b.f64s()
	if b.err != nil {
		return b.err
	}
	if b.off != len(b.p) {
		return fmt.Errorf("payload has %d trailing bytes", len(b.p)-b.off)
	}
	// CSR validation and Neighbors reconstruction.
	if len(g.EdgeOffsets) != nv+1 {
		return fmt.Errorf("graph has %d edge offsets for %d vertices", len(g.EdgeOffsets), nv)
	}
	if len(g.EdgeTo) != len(g.EdgeWeight) {
		return fmt.Errorf("graph has %d edge targets but %d edge weights", len(g.EdgeTo), len(g.EdgeWeight))
	}
	if nv > 0 && int(g.EdgeOffsets[nv]) != len(g.EdgeTo) {
		return fmt.Errorf("graph offsets end at %d but %d edges are stored", g.EdgeOffsets[nv], len(g.EdgeTo))
	}
	for v := 0; v < nv; v++ {
		if g.EdgeOffsets[v] > g.EdgeOffsets[v+1] {
			return fmt.Errorf("graph offsets decrease at vertex %d", v)
		}
	}
	for _, to := range g.EdgeTo {
		if to < 0 || int(to) >= nv {
			return fmt.Errorf("graph edge target %d out of range [0,%d)", to, nv)
		}
	}
	g.Neighbors = make([][]graph.Edge, nv)
	for v := 0; v < nv; v++ {
		lo, hi := g.EdgeOffsets[v], g.EdgeOffsets[v+1]
		if lo == hi {
			continue
		}
		es := make([]graph.Edge, hi-lo)
		for j := range es {
			es[j] = graph.Edge{To: g.EdgeTo[int(lo)+j], Weight: g.EdgeWeight[int(lo)+j]}
		}
		g.Neighbors[v] = es
	}
	a.graph = g
	if want := nv * corpus.NumTags; len(a.beliefs) != want {
		return fmt.Errorf("belief matrix has %d entries for %d vertices × %d tags", len(a.beliefs), nv, corpus.NumTags)
	}
	return nil
}
