package crf

import (
	"math"
	"sort"

	"repro/internal/corpus"
)

// ScoredPath is one entry of an n-best list.
type ScoredPath struct {
	Tags []corpus.Tag
	// LogProb is the conditional log-probability log p(tags|x).
	LogProb float64
}

// NBest returns the n highest-probability tag sequences for the instance,
// in descending probability order, with exact conditional log-
// probabilities. It runs Viterbi with per-state candidate lists (the
// standard n-best lattice extension): each state at each position keeps
// its n best predecessor extensions.
func (m *Model) NBest(in *Instance, n int) []ScoredPath {
	if in.Len() == 0 || n <= 0 {
		return nil
	}
	T := in.Len()
	S := m.S
	sc := acquireScratch(T, S)
	defer sc.release()
	emit := sc.mat(0, T, S)
	buf, _ := sc.bufs(T, S)
	m.latticeInto(in, emit)
	logZ := m.forwardBackwardInto(emit, sc.mat(1, T, S), sc.mat(2, T, S), buf)

	// cand[s] holds up to n best partial paths ending in state s.
	type partial struct {
		score float64
		prev  *partial
		state int
	}
	cur := make([][]*partial, S)
	for s := 0; s < S; s++ {
		if m.startOK(s) {
			cur[s] = []*partial{{score: m.Start[s] + emit[0][s], state: s}}
		}
	}
	for t := 1; t < T; t++ {
		next := make([][]*partial, S)
		for sNew := 0; sNew < S; sNew++ {
			var pool []*partial
			for sPrev := 0; sPrev < S; sPrev++ {
				if !m.transitionOK(sPrev, sNew) {
					continue
				}
				for _, p := range cur[sPrev] {
					pool = append(pool, &partial{
						score: p.score + m.T[sPrev*S+sNew] + emit[t][sNew],
						prev:  p,
						state: sNew,
					})
				}
			}
			sort.Slice(pool, func(a, b int) bool { return pool[a].score > pool[b].score })
			if len(pool) > n {
				pool = pool[:n]
			}
			next[sNew] = pool
		}
		cur = next
	}

	// Gather final candidates across all end states.
	var finals []*partial
	for s := 0; s < S; s++ {
		finals = append(finals, cur[s]...)
	}
	sort.Slice(finals, func(a, b int) bool { return finals[a].score > finals[b].score })
	if len(finals) > n {
		finals = finals[:n]
	}
	out := make([]ScoredPath, 0, len(finals))
	for _, f := range finals {
		tags := make([]corpus.Tag, T)
		for p, t := f, T-1; p != nil; p, t = p.prev, t-1 {
			tags[t] = m.stateTag(p.state)
		}
		out = append(out, ScoredPath{Tags: tags, LogProb: f.score - logZ})
	}
	return out
}

// MentionConfidence returns, for each mention decoded from tags, the
// model's probability that every one of the mention's tokens carries its
// decoded tag — a per-mention confidence estimate from the posterior
// marginals. Returned values are parallel to
// corpus.MentionsFromTags(tokens, tags, ...).
func (m *Model) MentionConfidence(in *Instance, tags []corpus.Tag) []float64 {
	post := m.Posteriors(in)
	var out []float64
	cur := 1.0
	open := false
	flush := func() {
		if open {
			out = append(out, cur)
			cur, open = 1.0, false
		}
	}
	for i, tag := range tags {
		switch {
		case tag == corpus.B, tag == corpus.I && !open:
			flush()
			open = true
			cur = post[i][tag]
		case tag == corpus.I:
			cur *= post[i][tag]
		default:
			flush()
		}
	}
	flush()
	return out
}

// entropy computes the Shannon entropy (nats) of a distribution; exported
// through TokenEntropy for uncertainty inspection.
func entropy(p []float64) float64 {
	var h float64
	for _, v := range p {
		if v > 0 {
			h -= v * math.Log(v)
		}
	}
	return h
}

// TokenEntropy returns the per-token posterior entropy (in nats): a direct
// uncertainty signal for active-learning or error-analysis workflows.
func (m *Model) TokenEntropy(in *Instance) []float64 {
	post := m.Posteriors(in)
	out := make([]float64, len(post))
	for i, p := range post {
		out[i] = entropy(p)
	}
	return out
}
