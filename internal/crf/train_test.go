package crf

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/corpus"
	"repro/internal/features"
	"repro/internal/tokenize"
)

func TestGradientFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, order := range []Order{Order1, Order2} {
		nf := 4
		data := []*Instance{
			randomInstance(rng, 4, nf, true),
			randomInstance(rng, 3, nf, true),
		}
		S := numStates(order)
		obj := &objective{
			data:    data,
			tmpl:    Model{Order: order, NumFeatures: nf, S: S, BIO: true},
			l2:      0.1,
			workers: 2,
		}
		n := nf*S + S*S + S
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 0.5
		}
		grad := make([]float64, n)
		f0 := obj.Eval(x, grad)

		const h = 1e-6
		xp := make([]float64, n)
		tmp := make([]float64, n)
		for i := 0; i < n; i += 7 { // sample every 7th coordinate
			copy(xp, x)
			xp[i] += h
			fp := obj.Eval(xp, tmp)
			num := (fp - f0) / h
			if math.Abs(num-grad[i]) > 1e-3*(1+math.Abs(num)) {
				t.Errorf("order %d: grad[%d] = %g, finite diff %g", order, i, grad[i], num)
			}
		}
	}
}

func TestObjectiveDecreasesUnderTraining(t *testing.T) {
	// A tiny separable dataset: the word "GENE1" is always B, others O.
	sentences := []string{
		"the GENE1 pathway",
		"activation of GENE1 was seen",
		"we measured GENE1 expression",
		"control samples showed nothing",
	}
	tags := [][]corpus.Tag{
		{corpus.O, corpus.B, corpus.I, corpus.O},
		{corpus.O, corpus.O, corpus.B, corpus.I, corpus.O, corpus.O},
		{corpus.O, corpus.O, corpus.B, corpus.I, corpus.O},
		{corpus.O, corpus.O, corpus.O, corpus.O},
	}
	corp := corpus.New()
	for i, text := range sentences {
		s := &corpus.Sentence{ID: string(rune('A' + i)), Text: text, Tokens: tokenize.Sentence(text)}
		s.Tags = tags[i]
		corp.Sentences = append(corp.Sentences, s)
	}

	comp := NewCompiler(features.NewExtractor(nil))
	data := comp.Compile(corp)
	nf := comp.FreezeAlphabet()

	tr := NewTrainer(Order2)
	tr.MaxIterations = 60
	tr.L2 = 0.1
	m, err := tr.Train(data, nf)
	if err != nil {
		t.Fatal(err)
	}

	// The model should fit the training data.
	for i, in := range data {
		got := m.Decode(in)
		for j := range got {
			if got[j] != in.Tags[j] {
				t.Errorf("sentence %d position %d: decoded %v, gold %v", i, j, got, in.Tags)
				break
			}
		}
	}

	// Posterior at the GENE1 position should favor B strongly.
	post := m.Posteriors(data[0])
	if post[1][corpus.B] < 0.8 {
		t.Errorf("P(B|GENE1) = %g, want > 0.8", post[1][corpus.B])
	}
}

func TestTrainGeneralizes(t *testing.T) {
	// Train on sentences mentioning GENEA/GENEB in recurring contexts, test
	// on a held-out sentence with the same context but a new position.
	corp := corpus.New()
	mk := func(id, text string, tags []corpus.Tag) {
		s := &corpus.Sentence{ID: id, Text: text, Tokens: tokenize.Sentence(text)}
		s.Tags = tags
		corp.Sentences = append(corp.Sentences, s)
	}
	mk("1", "mutation of GENEA was detected", []corpus.Tag{corpus.O, corpus.O, corpus.B, corpus.O, corpus.O})
	mk("2", "mutation of GENEB was detected", []corpus.Tag{corpus.O, corpus.O, corpus.B, corpus.O, corpus.O})
	mk("3", "expression of GENEA increased", []corpus.Tag{corpus.O, corpus.O, corpus.B, corpus.O})
	mk("4", "the patients showed no response", []corpus.Tag{corpus.O, corpus.O, corpus.O, corpus.O, corpus.O})
	mk("5", "no mutations were found here", []corpus.Tag{corpus.O, corpus.O, corpus.O, corpus.O, corpus.O})

	comp := NewCompiler(features.NewExtractor(nil))
	data := comp.Compile(corp)
	nf := comp.FreezeAlphabet()
	tr := NewTrainer(Order1)
	tr.MaxIterations = 60
	tr.L2 = 0.5
	m, err := tr.Train(data, nf)
	if err != nil {
		t.Fatal(err)
	}

	test := &corpus.Sentence{Text: "mutation of GENEB increased", Tokens: tokenize.Sentence("mutation of GENEB increased")}
	in := comp.CompileSentence(test)
	got := m.Decode(in)
	if got[2] != corpus.B {
		t.Errorf("held-out gene not detected: %v", got)
	}
	if got[0] != corpus.O || got[1] != corpus.O {
		t.Errorf("context words mistagged: %v", got)
	}
}

func TestTrainValidation(t *testing.T) {
	tr := NewTrainer(Order1)
	if _, err := tr.Train(nil, 0); err == nil {
		t.Error("want error for zero features")
	}
	unl := &Instance{Features: [][]int32{{0}}}
	if _, err := tr.Train([]*Instance{unl}, 5); err == nil {
		t.Error("want error for unlabelled instance")
	}
	bad := &Instance{Features: [][]int32{{0}, {1}}, Tags: []corpus.Tag{corpus.O}}
	if _, err := tr.Train([]*Instance{bad}, 5); err == nil {
		t.Error("want error for tag/feature length mismatch")
	}
}

func TestCompilerFreezing(t *testing.T) {
	comp := NewCompiler(features.NewExtractor(nil))
	s1 := &corpus.Sentence{Text: "alpha beta", Tokens: tokenize.Sentence("alpha beta")}
	comp.CompileSentence(s1)
	n := comp.FreezeAlphabet()
	if n == 0 {
		t.Fatal("empty alphabet")
	}
	s2 := &corpus.Sentence{Text: "gamma delta", Tokens: tokenize.Sentence("gamma delta")}
	in := comp.CompileSentence(s2)
	if comp.Alphabet.Len() != n {
		t.Error("alphabet grew after freeze")
	}
	for _, fs := range in.Features {
		for _, f := range fs {
			if int(f) >= n {
				t.Error("out-of-range feature id after freeze")
			}
		}
	}
}
