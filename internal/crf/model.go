// Package crf implements the linear-chain conditional random fields that
// serve as GraphNER's base models (the paper's stand-ins for BANNER and
// BANNER-ChemDNER). It supports first- and second-order chains — the
// second order realized by expanding the state space to tag pairs — with
// conditional log-likelihood training via L-BFGS, log-space
// forward–backward for per-token posterior marginals, extraction of
// tag-level transition probabilities, and Viterbi decoding both over model
// scores and over arbitrary externally supplied node potentials (the
// re-decoding step of GraphNER's Algorithm 1, line 9).
package crf

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/corpus"
)

// Order selects the Markov order of the chain.
type Order int

// Supported chain orders.
const (
	Order1 Order = 1 // states are BIO tags
	Order2 Order = 2 // states are (previous tag, current tag) pairs
)

// Instance is one compiled training or test sentence: per-position active
// observation feature ids, plus gold tags (nil for unlabelled data).
type Instance struct {
	Features [][]int32
	Tags     []corpus.Tag
}

// Len returns the number of positions.
func (in *Instance) Len() int { return len(in.Features) }

// Model is a trained linear-chain CRF.
type Model struct {
	Order       Order
	NumFeatures int
	// S is the number of expanded states: 3 for order 1, 9 for order 2.
	S int
	// W holds emission weights indexed by featureID*S + state.
	W []float64
	// T holds transition weights indexed by prevState*S + state.
	T []float64
	// Start holds start-state weights.
	Start []float64
	// BIO, when true, forbids decoding transitions O→I and start-I.
	BIO bool
}

var negInf = math.Inf(-1)

// numStates returns the expanded state count for an order.
func numStates(o Order) int {
	if o == Order2 {
		return corpus.NumTags * corpus.NumTags
	}
	return corpus.NumTags
}

// stateTag maps an expanded state to its current BIO tag.
func (m *Model) stateTag(s int) corpus.Tag {
	if m.Order == Order2 {
		return corpus.Tag(s % corpus.NumTags)
	}
	return corpus.Tag(s)
}

// statePrevTag maps an order-2 expanded state to its previous BIO tag.
func statePrevTag(s int) corpus.Tag { return corpus.Tag(s / corpus.NumTags) }

// transitionOK reports whether prev→cur is structurally permitted.
// For order 2 the pair chaining constraint applies: (a,b) → (b,c).
// With BIO enabled, the tag transition O→I is also forbidden.
func (m *Model) transitionOK(prev, cur int) bool {
	if m.Order == Order2 {
		if corpus.Tag(prev%corpus.NumTags) != statePrevTag(cur) {
			return false
		}
	}
	if m.BIO {
		pt, ct := m.stateTag(prev), m.stateTag(cur)
		if pt == corpus.O && ct == corpus.I {
			return false
		}
	}
	return true
}

// startOK reports whether s may begin a sequence. The first tag cannot be
// I under the BIO constraint; for order 2 the embedded previous tag of a
// start state must be O (virtual out-of-sentence tag).
func (m *Model) startOK(s int) bool {
	if m.Order == Order2 && statePrevTag(s) != corpus.O {
		return false
	}
	if m.BIO && m.stateTag(s) == corpus.I {
		return false
	}
	return true
}

// stateFor maps a (prevTag, curTag) pair to the expanded state id.
func (m *Model) stateFor(prev, cur corpus.Tag) int {
	if m.Order == Order2 {
		return int(prev)*corpus.NumTags + int(cur)
	}
	return int(cur)
}

// emissionScores fills scores[s] with the sum of emission weights of the
// active features at one position. scores must have length m.S.
func (m *Model) emissionScores(feats []int32, scores []float64) {
	for s := range scores {
		scores[s] = 0
	}
	S := m.S
	for _, f := range feats {
		if f < 0 {
			continue
		}
		base := int(f) * S
		for s := 0; s < S; s++ {
			scores[s] += m.W[base+s]
		}
	}
}

// latticeScratch pools the per-sentence score lattices of inference and
// training: capacity for three n×S float matrices (emission plus
// forward/backward or Viterbi), two length-S staging vectors, and one n×S
// int32 backpointer matrix. Per-sentence inference borrows one from
// latticePool instead of allocating O(n·S) matrices per call.
type latticeScratch struct {
	flat  []float64
	rows  [][]float64
	ints  []int32
	irows [][]int32
}

var latticePool = sync.Pool{New: func() any { return new(latticeScratch) }}

// acquireScratch returns a scratch resized for n positions × S states.
//
//graphner:noalloc warm calls recycle pooled backing; growth is justified below
//graphner:nonblocking
func acquireScratch(n, S int) *latticeScratch {
	sc := latticePool.Get().(*latticeScratch)
	need := 3*n*S + 2*S
	if cap(sc.flat) < need {
		sc.flat = make([]float64, need) // lint:checked noalloc: capacity-guarded growth on first sight of a longer sentence; TestPosteriorsAllocGuard pins warm calls at zero
	}
	sc.flat = sc.flat[:need]
	if cap(sc.rows) < 3*n {
		sc.rows = make([][]float64, 3*n) // lint:checked noalloc: same capacity-guarded growth as flat above
	}
	sc.rows = sc.rows[:3*n]
	return sc
}

func (sc *latticeScratch) release() { latticePool.Put(sc) }

// mat returns the idx-th (0..2) n×S matrix view over the scratch backing.
// Contents are stale; callers overwrite (emission) or negInf-fill (DP).
func (sc *latticeScratch) mat(idx, n, S int) [][]float64 {
	rows := sc.rows[idx*n : (idx+1)*n]
	base := idx * n * S
	for i := range rows {
		rows[i] = sc.flat[base+i*S : base+(i+1)*S : base+(i+1)*S]
	}
	return rows
}

// bufs returns the two length-S staging vectors following the matrices.
func (sc *latticeScratch) bufs(n, S int) ([]float64, []float64) {
	b := sc.flat[3*n*S:]
	return b[:S:S], b[S : 2*S : 2*S]
}

// intMat returns a zeroed n×S int32 matrix (Viterbi backpointers).
//
//graphner:noalloc warm calls reuse the pooled backing; growth is justified below
//graphner:nonblocking
func (sc *latticeScratch) intMat(n, S int) [][]int32 {
	need := n * S
	if cap(sc.ints) < need {
		sc.ints = make([]int32, need) // lint:checked noalloc: capacity-guarded growth, amortized across pooled reuse; TestDecodeAllocGuard pins warm decodes at zero
	} else {
		sc.ints = sc.ints[:need]
		clear(sc.ints)
	}
	if cap(sc.irows) < n {
		sc.irows = make([][]int32, n) // lint:checked noalloc: same capacity-guarded growth as ints above
	}
	rows := sc.irows[:n]
	for i := range rows {
		rows[i] = sc.ints[i*S : (i+1)*S : (i+1)*S]
	}
	return rows
}

// fillNegInf resets a DP matrix to the log-space additive identity.
func fillNegInf(m [][]float64) {
	for _, row := range m {
		for i := range row {
			row[i] = negInf
		}
	}
}

// latticeInto fills emit (n rows of length S) with per-position emission
// scores for the instance.
func (m *Model) latticeInto(in *Instance, emit [][]float64) {
	for i := range emit {
		m.emissionScores(in.Features[i], emit[i])
	}
}

// lattice computes per-position emission scores for an instance,
// allocating the matrix (compatibility path; hot paths use latticeInto
// over pooled storage).
func (m *Model) lattice(in *Instance) [][]float64 {
	n := in.Len()
	flat := make([]float64, n*m.S)
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		out[i] = flat[i*m.S : (i+1)*m.S]
	}
	m.latticeInto(in, out)
	return out
}

// logSumExp returns log Σ exp(x_i) guarding against -Inf inputs.
func logSumExp(xs []float64) float64 {
	max := negInf
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	if math.IsInf(max, -1) {
		return negInf
	}
	var sum float64
	for _, x := range xs {
		sum += math.Exp(x - max)
	}
	// lint:checked sum includes exp(max-max) = 1, so Log(sum) >= 0 and finite
	return max + math.Log(sum)
}

// forwardBackward runs log-space forward-backward on the emission lattice.
// It returns alpha, beta ([n][S] log values) and logZ (compatibility path;
// hot paths use forwardBackwardInto over pooled storage).
func (m *Model) forwardBackward(emit [][]float64) (alpha, beta [][]float64, logZ float64) {
	n := len(emit)
	S := m.S
	alpha = logMatrix(n, S)
	beta = logMatrix(n, S)
	logZ = m.forwardBackwardInto(emit, alpha, beta, make([]float64, S))
	return alpha, beta, logZ
}

// forwardBackwardInto runs log-space forward-backward on the emission
// lattice, overwriting alpha and beta (any prior contents, including pool
// residue, are reset to -Inf first) and staging logSumExp terms in buf
// (length S). It returns logZ.
func (m *Model) forwardBackwardInto(emit, alpha, beta [][]float64, buf []float64) (logZ float64) {
	n := len(emit)
	S := m.S
	fillNegInf(alpha)
	fillNegInf(beta)

	for s := 0; s < S; s++ {
		if m.startOK(s) {
			alpha[0][s] = m.Start[s] + emit[0][s]
		}
	}
	for i := 1; i < n; i++ {
		for cur := 0; cur < S; cur++ {
			k := 0
			for prev := 0; prev < S; prev++ {
				if !m.transitionOK(prev, cur) || math.IsInf(alpha[i-1][prev], -1) {
					continue
				}
				buf[k] = alpha[i-1][prev] + m.T[prev*S+cur]
				k++
			}
			if k > 0 {
				alpha[i][cur] = logSumExp(buf[:k]) + emit[i][cur]
			}
		}
	}
	for s := 0; s < S; s++ {
		beta[n-1][s] = 0
	}
	for i := n - 2; i >= 0; i-- {
		for prev := 0; prev < S; prev++ {
			k := 0
			for cur := 0; cur < S; cur++ {
				if !m.transitionOK(prev, cur) || math.IsInf(beta[i+1][cur], -1) {
					continue
				}
				buf[k] = m.T[prev*S+cur] + emit[i+1][cur] + beta[i+1][cur]
				k++
			}
			if k > 0 {
				beta[i][prev] = logSumExp(buf[:k])
			}
		}
	}
	return logSumExp(alpha[n-1])
}

func logMatrix(n, s int) [][]float64 {
	flat := make([]float64, n*s)
	for i := range flat {
		flat[i] = negInf
	}
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		out[i] = flat[i*s : (i+1)*s]
	}
	return out
}

// Posteriors returns the per-position marginal distribution over BIO tags,
// P(t_i = y | x), for the instance. Each row sums to 1. The returned rows
// share one flat backing array; the DP lattices come from the pool.
func (m *Model) Posteriors(in *Instance) [][]float64 {
	n := in.Len()
	if n == 0 {
		return nil
	}
	sc := acquireScratch(n, m.S)
	emit := sc.mat(0, n, m.S)
	alpha := sc.mat(1, n, m.S)
	beta := sc.mat(2, n, m.S)
	buf, _ := sc.bufs(n, m.S)
	m.latticeInto(in, emit)
	logZ := m.forwardBackwardInto(emit, alpha, beta, buf)
	out := make([][]float64, n)
	backing := make([]float64, n*corpus.NumTags)
	for i := 0; i < n; i++ {
		row := backing[i*corpus.NumTags : (i+1)*corpus.NumTags : (i+1)*corpus.NumTags]
		for s := 0; s < m.S; s++ {
			lp := alpha[i][s] + beta[i][s] - logZ
			if !math.IsInf(lp, -1) {
				row[m.stateTag(s)] += math.Exp(lp)
			}
		}
		normalize(row)
		out[i] = row
	}
	sc.release()
	return out
}

// normalize scales row to sum to 1; a zero row becomes uniform.
func normalize(row []float64) {
	if len(row) == 0 {
		return
	}
	var sum float64
	for _, v := range row {
		sum += v
	}
	if sum <= 0 || math.IsNaN(sum) {
		u := 1 / float64(len(row))
		for i := range row {
			row[i] = u
		}
		return
	}
	for i := range row {
		row[i] /= sum
	}
}

// LogLikelihood returns the conditional log-likelihood log p(tags|x) of a
// labelled instance under the model.
func (m *Model) LogLikelihood(in *Instance) float64 {
	if in.Len() == 0 {
		return 0
	}
	if in.Tags == nil {
		panic("crf: LogLikelihood on unlabelled instance")
	}
	n := in.Len()
	sc := acquireScratch(n, m.S)
	emit := sc.mat(0, n, m.S)
	alpha := sc.mat(1, n, m.S)
	beta := sc.mat(2, n, m.S)
	buf, _ := sc.bufs(n, m.S)
	m.latticeInto(in, emit)
	logZ := m.forwardBackwardInto(emit, alpha, beta, buf)
	ll := m.pathScore(in, emit) - logZ
	sc.release()
	return ll
}

// pathScore returns the unnormalized log score of the gold path.
func (m *Model) pathScore(in *Instance, emit [][]float64) float64 {
	prevTag := corpus.O
	score := 0.0
	for i := 0; i < in.Len(); i++ {
		s := m.stateFor(prevTag, in.Tags[i])
		if i == 0 {
			score += m.Start[s]
		} else {
			ps := m.stateFor(tagBefore(in, i-1), in.Tags[i-1])
			score += m.T[ps*m.S+s]
		}
		score += emit[i][s]
		prevTag = in.Tags[i]
	}
	return score
}

// tagBefore returns the tag preceding position i (O before the sentence).
func tagBefore(in *Instance, i int) corpus.Tag {
	if i <= 0 {
		return corpus.O
	}
	return in.Tags[i-1]
}

// TagTransitions returns the tag-level transition probability matrix
// P(t_i = c | t_{i-1} = p), obtained by marginalizing the learned expanded
// transition weights through a softmax per source tag. This is the T_s of
// Algorithm 1 used in GraphNER's final Viterbi re-decoding.
func (m *Model) TagTransitions() [][]float64 {
	out := make([][]float64, corpus.NumTags)
	for p := 0; p < corpus.NumTags; p++ {
		row := make([]float64, corpus.NumTags)
		for c := 0; c < corpus.NumTags; c++ {
			// Collect all expanded transitions whose tags are p→c and
			// log-sum them.
			var vals []float64
			for ps := 0; ps < m.S; ps++ {
				if m.stateTag(ps) != corpus.Tag(p) {
					continue
				}
				for cs := 0; cs < m.S; cs++ {
					if m.stateTag(cs) != corpus.Tag(c) || !m.transitionOK(ps, cs) {
						continue
					}
					vals = append(vals, m.T[ps*m.S+cs])
				}
			}
			if len(vals) == 0 {
				row[c] = negInf
			} else {
				row[c] = logSumExp(vals)
			}
		}
		// Softmax row into probabilities.
		z := logSumExp(row)
		for c := range row {
			if math.IsInf(row[c], -1) {
				row[c] = 0
			} else {
				row[c] = math.Exp(row[c] - z)
			}
		}
		out[p] = row
	}
	return out
}

// Decode returns the Viterbi-optimal tag sequence under the model.
func (m *Model) Decode(in *Instance) []corpus.Tag {
	if in.Len() == 0 {
		return nil
	}
	n := in.Len()
	S := m.S
	sc := acquireScratch(n, S)
	emit := sc.mat(0, n, S)
	delta := sc.mat(1, n, S)
	back := sc.intMat(n, S)
	m.latticeInto(in, emit)
	fillNegInf(delta)
	for s := 0; s < S; s++ {
		if m.startOK(s) {
			delta[0][s] = m.Start[s] + emit[0][s]
		}
	}
	for i := 1; i < n; i++ {
		for cur := 0; cur < S; cur++ {
			best, arg := negInf, -1
			for prev := 0; prev < S; prev++ {
				if !m.transitionOK(prev, cur) || math.IsInf(delta[i-1][prev], -1) {
					continue
				}
				if v := delta[i-1][prev] + m.T[prev*S+cur]; v > best {
					best, arg = v, prev
				}
			}
			if arg >= 0 {
				delta[i][cur] = best + emit[i][cur]
				back[i][cur] = int32(arg)
			}
		}
	}
	best, arg := negInf, 0
	for s := 0; s < S; s++ {
		if delta[n-1][s] > best {
			best, arg = delta[n-1][s], s
		}
	}
	tags := make([]corpus.Tag, n)
	for i := n - 1; i >= 0; i-- {
		tags[i] = m.stateTag(arg)
		arg = int(back[i][arg])
	}
	sc.release()
	return tags
}

// DecodeWithPotentials runs Viterbi over externally supplied per-position
// tag probability distributions (node potentials) and a tag-level
// transition probability matrix — exactly the final step of GraphNER's
// Algorithm 1, where potentials are the α-mixture of CRF posteriors and
// propagated graph beliefs. Probabilities are combined in log space; zero
// probabilities are floored to keep the lattice connected. If bio is true,
// O→I transitions and an initial I are forbidden. It is equivalent to
// DecodeWithPotentialsT with transition temperature 1.
func DecodeWithPotentials(potentials [][]float64, trans [][]float64, bio bool) ([]corpus.Tag, error) {
	return DecodeWithPotentialsT(potentials, trans, bio, 1)
}

// DecodeWithPotentialsT is DecodeWithPotentials with the transition
// log-probabilities scaled by power (0 < power ≤ 1). The node potentials
// handed to GraphNER's final Viterbi are posterior marginals, which
// already reflect the chain's transition structure; applying the
// transition matrix at full strength therefore double-counts it and
// suppresses confident single-token mentions. A power below 1 tempers the
// transitions; GraphNER selects it by cross-validation alongside the
// paper's other hyper-parameters.
func DecodeWithPotentialsT(potentials [][]float64, trans [][]float64, bio bool, power float64) ([]corpus.Tag, error) {
	n := len(potentials)
	if n == 0 {
		return nil, nil
	}
	S := corpus.NumTags
	for i, row := range potentials {
		if len(row) != S {
			return nil, fmt.Errorf("crf: potentials row %d has %d entries, want %d", i, len(row), S)
		}
	}
	if len(trans) != S {
		return nil, fmt.Errorf("crf: transition matrix has %d rows, want %d", len(trans), S)
	}
	if power <= 0 || power > 1 {
		return nil, fmt.Errorf("crf: transition power %g outside (0,1]", power)
	}
	lp := logPotential
	lt := func(p float64) float64 { return power * logPotential(p) }
	sc := acquireScratch(n, S)
	delta := sc.mat(0, n, S)
	back := sc.intMat(n, S)
	fillNegInf(delta)
	for s := 0; s < S; s++ {
		if bio && corpus.Tag(s) == corpus.I {
			continue
		}
		delta[0][s] = lp(potentials[0][s])
	}
	for i := 1; i < n; i++ {
		for cur := 0; cur < S; cur++ {
			best, arg := negInf, -1
			for prev := 0; prev < S; prev++ {
				if math.IsInf(delta[i-1][prev], -1) {
					continue
				}
				if bio && corpus.Tag(prev) == corpus.O && corpus.Tag(cur) == corpus.I {
					continue
				}
				if v := delta[i-1][prev] + lt(trans[prev][cur]); v > best {
					best, arg = v, prev
				}
			}
			if arg >= 0 {
				delta[i][cur] = best + lp(potentials[i][cur])
				back[i][cur] = int32(arg)
			}
		}
	}
	best, arg := negInf, 0
	for s := 0; s < S; s++ {
		if delta[n-1][s] > best {
			best, arg = delta[n-1][s], s
		}
	}
	tags := make([]corpus.Tag, n)
	for i := n - 1; i >= 0; i-- {
		tags[i] = corpus.Tag(arg)
		arg = int(back[i][arg])
	}
	sc.release()
	return tags, nil
}
