package crf

import (
	"fmt"
	"math"

	"repro/internal/corpus"
)

// This file holds the allocation-free inference variants the serving path
// (internal/serving, cmd/graphnerd) drives at production rates. They are
// bit-identical to their allocating counterparts: PosteriorsInto performs
// exactly Posteriors' floating-point operations in the same order, and
// PotentialDecoder.DecodeFlat mirrors DecodeWithPotentialsT — the only
// differences are who owns the output storage and that the tempered
// log-transition matrix is computed once instead of per decode.

// potentialFloor keeps zero node/transition probabilities from
// disconnecting the Viterbi lattice (shared by DecodeWithPotentialsT and
// the serving decoder).
const potentialFloor = 1e-12

// logPotential is log p with p floored at potentialFloor.
func logPotential(p float64) float64 {
	if p < potentialFloor {
		p = potentialFloor
	}
	return math.Log(p)
}

// PosteriorsInto computes the same per-position BIO marginals as
// Posteriors but writes them into the caller's flat row-major buffer out
// (position i's distribution occupies out[i*corpus.NumTags:(i+1)*corpus.NumTags]),
// which must hold at least Len()*corpus.NumTags entries. The DP lattices
// come from the pool, so a warm call allocates nothing.
//
//graphner:noalloc checked by the contract linter; TestPosteriorsAllocGuard measures it
//graphner:nonblocking
func (m *Model) PosteriorsInto(in *Instance, out []float64) error {
	const Y = corpus.NumTags
	n := in.Len()
	if len(out) < n*Y {
		return fmt.Errorf("crf: posteriors buffer holds %d entries, need %d", len(out), n*Y) // lint:checked noalloc: cold validation failure path, never taken on a well-sized warm call
	}
	if n == 0 {
		return nil
	}
	sc := acquireScratch(n, m.S)
	emit := sc.mat(0, n, m.S)
	alpha := sc.mat(1, n, m.S)
	beta := sc.mat(2, n, m.S)
	buf, _ := sc.bufs(n, m.S)
	m.latticeInto(in, emit)
	logZ := m.forwardBackwardInto(emit, alpha, beta, buf)
	for i := 0; i < n; i++ {
		row := out[i*Y : (i+1)*Y : (i+1)*Y]
		for y := range row {
			row[y] = 0
		}
		for s := 0; s < m.S; s++ {
			lp := alpha[i][s] + beta[i][s] - logZ
			if !math.IsInf(lp, -1) {
				row[m.stateTag(s)] += math.Exp(lp)
			}
		}
		normalize(row)
	}
	sc.release()
	return nil
}

// PotentialDecoder performs repeated Viterbi decodes over externally
// supplied node potentials with a fixed tag-level transition matrix — the
// serving form of DecodeWithPotentialsT, where one decoder is built per
// frozen artifact and reused for every request. The tempered
// log-transition matrix is precomputed at construction (power·log of each
// floored probability, exactly the values DecodeWithPotentialsT derives
// per call), so DecodeFlat's inner loop does no logarithms over
// transitions and, with pooled lattices, no allocations.
type PotentialDecoder struct {
	bio bool
	lt  [corpus.NumTags * corpus.NumTags]float64
}

// NewPotentialDecoder validates the transition matrix and temperature and
// precomputes the tempered log-transitions. The arguments mirror
// DecodeWithPotentialsT's.
func NewPotentialDecoder(trans [][]float64, bio bool, power float64) (*PotentialDecoder, error) {
	const S = corpus.NumTags
	if len(trans) != S {
		return nil, fmt.Errorf("crf: transition matrix has %d rows, want %d", len(trans), S)
	}
	if power <= 0 || power > 1 {
		return nil, fmt.Errorf("crf: transition power %g outside (0,1]", power)
	}
	d := &PotentialDecoder{bio: bio}
	for p := 0; p < S; p++ {
		if len(trans[p]) != S {
			return nil, fmt.Errorf("crf: transition row %d has %d entries, want %d", p, len(trans[p]), S)
		}
		for c := 0; c < S; c++ {
			d.lt[p*S+c] = power * logPotential(trans[p][c])
		}
	}
	return d, nil
}

// DecodeFlat runs Viterbi over flat row-major node potentials (position
// i's distribution at potentials[i*corpus.NumTags:]) for n positions and
// writes the optimal tags into tags[:n]. It produces exactly the sequence
// DecodeWithPotentialsT would for the same potentials, transitions, bio
// flag, and power. A warm call allocates nothing.
//
//graphner:noalloc checked by the contract linter; TestDecodeAllocGuard measures it
//graphner:nonblocking
func (d *PotentialDecoder) DecodeFlat(potentials []float64, n int, tags []corpus.Tag) error {
	const S = corpus.NumTags
	if n == 0 {
		return nil
	}
	if len(potentials) < n*S {
		return fmt.Errorf("crf: potentials hold %d entries, need %d", len(potentials), n*S) // lint:checked noalloc: cold validation failure path
	}
	if len(tags) < n {
		return fmt.Errorf("crf: tag buffer holds %d entries, need %d", len(tags), n) // lint:checked noalloc: cold validation failure path
	}
	sc := acquireScratch(n, S)
	delta := sc.mat(0, n, S)
	back := sc.intMat(n, S)
	fillNegInf(delta)
	for s := 0; s < S; s++ {
		if d.bio && corpus.Tag(s) == corpus.I {
			continue
		}
		delta[0][s] = logPotential(potentials[s])
	}
	for i := 1; i < n; i++ {
		row := potentials[i*S : (i+1)*S : (i+1)*S]
		for cur := 0; cur < S; cur++ {
			best, arg := negInf, -1
			for prev := 0; prev < S; prev++ {
				if math.IsInf(delta[i-1][prev], -1) {
					continue
				}
				if d.bio && corpus.Tag(prev) == corpus.O && corpus.Tag(cur) == corpus.I {
					continue
				}
				if v := delta[i-1][prev] + d.lt[prev*S+cur]; v > best {
					best, arg = v, prev
				}
			}
			if arg >= 0 {
				delta[i][cur] = best + logPotential(row[cur])
				back[i][cur] = int32(arg)
			}
		}
	}
	best, arg := negInf, 0
	for s := 0; s < S; s++ {
		if delta[n-1][s] > best {
			best, arg = delta[n-1][s], s
		}
	}
	for i := n - 1; i >= 0; i-- {
		tags[i] = corpus.Tag(arg)
		arg = int(back[i][arg])
	}
	sc.release()
	return nil
}
