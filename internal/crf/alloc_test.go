package crf

import (
	"math/rand"
	"testing"

	"repro/internal/race"
)

// TestDecodeAllocGuard locks in the pooled-lattice win: after the pool is
// warm, Decode's only steady-state allocation is the returned tag slice.
// testing.AllocsPerRun reports the average allocations per call; if a
// refactor reintroduces per-call lattice matrices this fails tier 1
// instead of silently regressing.
func TestDecodeAllocGuard(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates; counts are only meaningful in normal builds")
	}
	rng := rand.New(rand.NewSource(41))
	const nf = 30
	m := randomModel(rng, Order2, nf, true)
	ins := make([]*Instance, 8)
	for i := range ins {
		ins[i] = randomInstance(rng, 4+i*3, nf, false)
	}
	// Warm the pool across the length range the measured loop uses.
	for _, in := range ins {
		m.Decode(in)
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		m.Decode(ins[i%len(ins)])
		i++
	})
	// One allocation for the returned []corpus.Tag; everything else
	// (emission, delta, backpointer matrices) comes from the pool.
	if allocs > 1 {
		t.Fatalf("pooled Decode allocates %.1f objects/op after warm-up, want ≤ 1", allocs)
	}
}

// TestPosteriorsAllocGuard pins the pooled Posteriors path: steady-state
// allocations are the returned slice-of-rows only (1 header + n rows),
// independent of the lattice size.
func TestPosteriorsAllocGuard(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates; counts are only meaningful in normal builds")
	}
	rng := rand.New(rand.NewSource(43))
	const nf = 30
	const n = 12
	m := randomModel(rng, Order2, nf, true)
	in := randomInstance(rng, n, nf, false)
	for i := 0; i < 4; i++ {
		m.Posteriors(in)
	}
	allocs := testing.AllocsPerRun(200, func() {
		m.Posteriors(in)
	})
	// n+2 covers the out slice header, n row slices, and the flat backing.
	if allocs > n+2 {
		t.Fatalf("pooled Posteriors allocates %.1f objects/op after warm-up, want ≤ %d", allocs, n+2)
	}
}
