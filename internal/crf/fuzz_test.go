package crf

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/features"
	"repro/internal/tokenize"
)

// FuzzCompileSentence feeds arbitrary sentence text through the pooled
// flat-backed compiler and the seed reference implementation on two
// separate (identically fresh) compilers, demanding identical feature-id
// sequences — both while the alphabet is growing and after freezing.
func FuzzCompileSentence(f *testing.F) {
	seeds := []string{
		"Recently the mutation of lymphocyte adaptor protein LNK was detected",
		"the FLT3 gene in AML patients",
		"x",
		"p53 regulates SH2 domain binding II",
		"IL-2 (interleukin-2) activates NF-kappaB",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		s := &corpus.Sentence{Text: text, Tokens: tokenize.Sentence(text)}
		fast := NewCompiler(features.NewExtractor(nil))
		ref := NewCompiler(features.NewExtractor(nil))
		for round := 0; round < 2; round++ {
			got := fast.CompileSentence(s)
			want := referenceCompileSentence(ref, s)
			if got.Len() != want.Len() {
				t.Fatalf("round %d of %q: %d positions, want %d", round, text, got.Len(), want.Len())
			}
			for i := range want.Features {
				if len(got.Features[i]) != len(want.Features[i]) {
					t.Fatalf("round %d of %q pos %d: %d ids, want %d",
						round, text, i, len(got.Features[i]), len(want.Features[i]))
				}
				for j := range want.Features[i] {
					if got.Features[i][j] != want.Features[i][j] {
						t.Fatalf("round %d of %q pos %d id %d: %d, want %d",
							round, text, i, j, got.Features[i][j], want.Features[i][j])
					}
				}
			}
			if round == 0 {
				fast.FreezeAlphabet()
				ref.FreezeAlphabet()
			}
		}
	})
}
