package crf

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/corpus"
)

// TestPoolStressNoCrossRequestBleed hammers the pooled inference paths
// (Posteriors, Decode, LogLikelihood — all backed by the shared
// latticePool) from many goroutines over instances of mixed lengths, and
// demands bit-identical agreement with the allocating seed references
// computed up front. Any cross-request bleed — one goroutine reading
// lattice or flat-buffer residue written by another — perturbs the
// results and fails the comparison; tier 1 runs this under -race, which
// additionally catches the unsynchronized accesses themselves.
func TestPoolStressNoCrossRequestBleed(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const nf = 40
	m := randomModel(rng, Order2, nf, true)

	const nInst = 24
	ins := make([]*Instance, nInst)
	wantPost := make([][][]float64, nInst)
	wantTags := make([][]corpus.Tag, nInst)
	wantLL := make([]float64, nInst)
	for i := range ins {
		// Mixed lengths so pooled buffers are constantly resized/reused
		// across goroutines, maximizing the chance residue is observable.
		ins[i] = randomInstance(rng, 1+rng.Intn(30), nf, true)
		wantPost[i] = referencePosteriors(m, ins[i])
		wantTags[i] = referenceDecode(m, ins[i])
		wantLL[i] = referenceLogLikelihood(m, ins[i])
	}

	const workers = 8
	iters := 150
	if testing.Short() {
		iters = 30
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for it := 0; it < iters; it++ {
				i := r.Intn(nInst)
				switch it % 3 {
				case 0:
					got := m.Posteriors(ins[i])
					for p := range wantPost[i] {
						for y := range wantPost[i][p] {
							if got[p][y] != wantPost[i][p][y] {
								t.Errorf("worker %d: Posteriors bleed at instance %d pos %d tag %d: %v != %v",
									w, i, p, y, got[p][y], wantPost[i][p][y])
								return
							}
						}
					}
				case 1:
					got := m.Decode(ins[i])
					for p := range wantTags[i] {
						if got[p] != wantTags[i][p] {
							t.Errorf("worker %d: Decode bleed at instance %d pos %d: %v != %v",
								w, i, p, got[p], wantTags[i][p])
							return
						}
					}
				case 2:
					if got := m.LogLikelihood(ins[i]); got != wantLL[i] {
						t.Errorf("worker %d: LogLikelihood bleed at instance %d: %v != %v",
							w, i, got, wantLL[i])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
