package crf

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/optimize"
)

// Trainer configures conditional log-likelihood training.
type Trainer struct {
	// Order of the chain (default Order2, as used for the paper's
	// headline results).
	Order Order
	// L2 is the coefficient of the L2 penalty 0.5·L2·‖w‖² (default 1.0).
	L2 float64
	// MaxIterations bounds L-BFGS iterations (default 100).
	MaxIterations int
	// Workers is the number of goroutines used for the gradient
	// (default min(GOMAXPROCS, 8); gradient buffers are dense, so each
	// worker costs O(#parameters) memory).
	Workers int
	// BIO enables the structural O→I constraint (default true via NewTrainer).
	BIO bool
	// Progress, if non-nil, receives one line per L-BFGS iteration.
	Progress func(iter int, nll float64)
}

// NewTrainer returns a trainer with the defaults used in the experiments.
func NewTrainer(order Order) *Trainer {
	return &Trainer{Order: order, L2: 1.0, MaxIterations: 100, BIO: true}
}

// Train fits a CRF on compiled labelled instances. numFeatures is the size
// of the (frozen) feature alphabet the instances were compiled against.
func (tr *Trainer) Train(data []*Instance, numFeatures int) (*Model, error) {
	order := tr.Order
	if order != Order1 && order != Order2 {
		order = Order2
	}
	if numFeatures <= 0 {
		return nil, fmt.Errorf("crf: numFeatures = %d", numFeatures)
	}
	for i, in := range data {
		if in.Tags == nil {
			return nil, fmt.Errorf("crf: training instance %d is unlabelled", i)
		}
		if len(in.Tags) != len(in.Features) {
			return nil, fmt.Errorf("crf: instance %d has %d tags for %d positions", i, len(in.Tags), len(in.Features))
		}
	}
	S := numStates(order)
	l2 := tr.L2
	if l2 <= 0 {
		l2 = 1.0
	}
	maxIter := tr.MaxIterations
	if maxIter <= 0 {
		maxIter = 100
	}
	workers := tr.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > 8 {
			workers = 8
		}
	}

	obj := &objective{
		data:    data,
		tmpl:    Model{Order: order, NumFeatures: numFeatures, S: S, BIO: tr.BIO},
		l2:      l2,
		workers: workers,
	}
	x := make([]float64, numFeatures*S+S*S+S)
	var cb func(int, float64) bool
	if tr.Progress != nil {
		cb = func(iter int, f float64) bool {
			tr.Progress(iter, f)
			return true
		}
	}
	if _, err := optimize.LBFGS(obj, x, optimize.LBFGSOptions{
		MaxIterations: maxIter,
		FuncTol:       1e-7,
		Callback:      cb,
	}); err != nil {
		return nil, fmt.Errorf("crf: training: %w", err)
	}
	m := obj.view(x)
	// Copy weights out of the optimizer's buffer.
	m.W = append([]float64(nil), m.W...)
	m.T = append([]float64(nil), m.T...)
	m.Start = append([]float64(nil), m.Start...)
	return &m, nil
}

// objective is the negated conditional log-likelihood with L2 penalty,
// parallelized over sentences.
type objective struct {
	data    []*Instance
	tmpl    Model
	l2      float64
	workers int

	gradBufs [][]float64 // per-worker dense gradient buffers, reused
}

// view maps a parameter vector to a Model sharing its memory.
func (o *objective) view(x []float64) Model {
	m := o.tmpl
	nW := m.NumFeatures * m.S
	m.W = x[:nW]
	m.T = x[nW : nW+m.S*m.S]
	m.Start = x[nW+m.S*m.S:]
	return m
}

// Eval implements optimize.Objective.
func (o *objective) Eval(x, grad []float64) float64 {
	m := o.view(x)
	if o.gradBufs == nil {
		o.gradBufs = make([][]float64, o.workers)
		for w := range o.gradBufs {
			o.gradBufs[w] = make([]float64, len(x))
		}
	}
	for _, b := range o.gradBufs {
		for i := range b {
			b[i] = 0
		}
	}

	nlls := make([]float64, o.workers)
	var wg sync.WaitGroup
	for w := 0; w < o.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gm := o.view(o.gradBufs[w]) // gradient views share layout with x
			var nll float64
			for i := w; i < len(o.data); i += o.workers {
				nll += sentenceGradient(&m, o.data[i], gm.W, gm.T, gm.Start)
			}
			nlls[w] = nll
		}(w)
	}
	wg.Wait()

	var f float64
	for _, v := range nlls {
		f += v
	}
	for i := range grad {
		grad[i] = 0
	}
	for _, b := range o.gradBufs {
		for i, v := range b {
			grad[i] += v
		}
	}
	// L2 penalty.
	for i, v := range x {
		f += 0.5 * o.l2 * v * v
		grad[i] += o.l2 * v
	}
	return f
}

// sentenceGradient accumulates ∂NLL/∂θ for one sentence into the provided
// gradient views and returns the sentence NLL = logZ − score(gold path).
func sentenceGradient(m *Model, in *Instance, gW, gT, gStart []float64) float64 {
	n := in.Len()
	if n == 0 {
		return 0
	}
	sc := acquireScratch(n, m.S)
	emit := sc.mat(0, n, m.S)
	alpha := sc.mat(1, n, m.S)
	beta := sc.mat(2, n, m.S)
	buf, nodeMarg := sc.bufs(n, m.S)
	m.latticeInto(in, emit)
	logZ := m.forwardBackwardInto(emit, alpha, beta, buf)
	S := m.S
	for i := 0; i < n; i++ {
		for s := 0; s < S; s++ {
			lp := alpha[i][s] + beta[i][s] - logZ
			if math.IsInf(lp, -1) {
				nodeMarg[s] = 0
			} else {
				nodeMarg[s] = math.Exp(lp)
			}
		}
		for _, fid := range in.Features[i] {
			if fid < 0 {
				continue
			}
			base := int(fid) * S
			for s := 0; s < S; s++ {
				gW[base+s] += nodeMarg[s]
			}
		}
		if i == 0 {
			for s := 0; s < S; s++ {
				gStart[s] += nodeMarg[s]
			}
		} else {
			for prev := 0; prev < S; prev++ {
				if math.IsInf(alpha[i-1][prev], -1) {
					continue
				}
				for cur := 0; cur < S; cur++ {
					if !m.transitionOK(prev, cur) || math.IsInf(beta[i][cur], -1) {
						continue
					}
					lp := alpha[i-1][prev] + m.T[prev*S+cur] + emit[i][cur] + beta[i][cur] - logZ
					if !math.IsInf(lp, -1) {
						gT[prev*S+cur] += math.Exp(lp)
					}
				}
			}
		}
	}

	// Empirical counts (subtract).
	goldScore := 0.0
	prevState := -1
	for i := 0; i < n; i++ {
		s := m.stateFor(tagBefore(in, i), in.Tags[i])
		for _, fid := range in.Features[i] {
			if fid < 0 {
				continue
			}
			gW[int(fid)*S+s]--
		}
		if i == 0 {
			gStart[s]--
			goldScore += m.Start[s]
		} else {
			gT[prevState*S+s]--
			goldScore += m.T[prevState*S+s]
		}
		goldScore += emit[i][s]
		prevState = s
	}
	sc.release()
	return logZ - goldScore
}
