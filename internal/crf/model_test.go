package crf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/corpus"
)

// randomModel builds a model with random weights for nf features.
func randomModel(rng *rand.Rand, order Order, nf int, bio bool) *Model {
	S := numStates(order)
	m := &Model{
		Order:       order,
		NumFeatures: nf,
		S:           S,
		W:           make([]float64, nf*S),
		T:           make([]float64, S*S),
		Start:       make([]float64, S),
		BIO:         bio,
	}
	for i := range m.W {
		m.W[i] = rng.NormFloat64()
	}
	for i := range m.T {
		m.T[i] = rng.NormFloat64()
	}
	for i := range m.Start {
		m.Start[i] = rng.NormFloat64()
	}
	return m
}

// randomInstance builds an instance of length n with up to 3 random active
// features per position and random (BIO-consistent) tags.
func randomInstance(rng *rand.Rand, n, nf int, labelled bool) *Instance {
	in := &Instance{Features: make([][]int32, n)}
	for i := 0; i < n; i++ {
		k := 1 + rng.Intn(3)
		for j := 0; j < k; j++ {
			in.Features[i] = append(in.Features[i], int32(rng.Intn(nf)))
		}
	}
	if labelled {
		in.Tags = make([]corpus.Tag, n)
		prev := corpus.O
		for i := 0; i < n; i++ {
			var t corpus.Tag
			switch rng.Intn(3) {
			case 0:
				t = corpus.B
			case 1:
				if prev == corpus.O {
					t = corpus.B // keep BIO-consistent
				} else {
					t = corpus.I
				}
			default:
				t = corpus.O
			}
			in.Tags[i] = t
			prev = t
		}
	}
	return in
}

// enumeratePaths enumerates all BIO-legal tag sequences of length n.
func enumeratePaths(n int, bio bool) [][]corpus.Tag {
	var out [][]corpus.Tag
	var rec func(prefix []corpus.Tag)
	rec = func(prefix []corpus.Tag) {
		if len(prefix) == n {
			out = append(out, append([]corpus.Tag(nil), prefix...))
			return
		}
		prev := corpus.O
		if len(prefix) > 0 {
			prev = prefix[len(prefix)-1]
		}
		for t := corpus.Tag(0); t < corpus.NumTags; t++ {
			if bio && t == corpus.I && prev == corpus.O {
				continue
			}
			rec(append(prefix, t))
		}
	}
	rec(nil)
	return out
}

// bruteForce computes logZ, per-position tag marginals, and the best path
// by full enumeration.
func bruteForce(m *Model, in *Instance) (logZ float64, marg [][]float64, best []corpus.Tag) {
	n := in.Len()
	emit := m.lattice(in)
	paths := enumeratePaths(n, m.BIO)
	scores := make([]float64, len(paths))
	for pi, path := range paths {
		tmp := &Instance{Features: in.Features, Tags: path}
		scores[pi] = m.pathScore(tmp, emit)
	}
	logZ = logSumExp(scores)
	marg = make([][]float64, n)
	for i := range marg {
		marg[i] = make([]float64, corpus.NumTags)
	}
	bestScore := math.Inf(-1)
	for pi, path := range paths {
		p := math.Exp(scores[pi] - logZ)
		for i, t := range path {
			marg[i][t] += p
		}
		if scores[pi] > bestScore {
			bestScore = scores[pi]
			best = path
		}
	}
	return logZ, marg, best
}

func TestPosteriorsAgreeWithEnumeration(t *testing.T) {
	for _, order := range []Order{Order1, Order2} {
		for _, bio := range []bool{false, true} {
			rng := rand.New(rand.NewSource(11))
			for trial := 0; trial < 20; trial++ {
				nf := 5
				n := 1 + rng.Intn(5)
				m := randomModel(rng, order, nf, bio)
				in := randomInstance(rng, n, nf, false)

				_, wantMarg, _ := bruteForce(m, in)
				got := m.Posteriors(in)
				for i := range got {
					for y := 0; y < corpus.NumTags; y++ {
						if math.Abs(got[i][y]-wantMarg[i][y]) > 1e-9 {
							t.Fatalf("order %d bio %v: marginal[%d][%d] = %g, want %g",
								order, bio, i, y, got[i][y], wantMarg[i][y])
						}
					}
				}
			}
		}
	}
}

func TestPosteriorsSumToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomModel(rng, Order2, 8, true)
		in := randomInstance(rng, 1+rng.Intn(12), 8, false)
		for _, row := range m.Posteriors(in) {
			var sum float64
			for _, v := range row {
				if v < -1e-12 || v > 1+1e-12 {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDecodeAgreesWithEnumeration(t *testing.T) {
	for _, order := range []Order{Order1, Order2} {
		for _, bio := range []bool{false, true} {
			rng := rand.New(rand.NewSource(23))
			for trial := 0; trial < 20; trial++ {
				m := randomModel(rng, order, 5, bio)
				in := randomInstance(rng, 1+rng.Intn(5), 5, false)
				_, _, want := bruteForce(m, in)
				got := m.Decode(in)
				// Compare scores rather than paths (ties possible).
				emit := m.lattice(in)
				gotScore := m.pathScore(&Instance{Features: in.Features, Tags: got}, emit)
				wantScore := m.pathScore(&Instance{Features: in.Features, Tags: want}, emit)
				if math.Abs(gotScore-wantScore) > 1e-9 {
					t.Fatalf("order %d bio %v: viterbi score %g, enumeration %g (%v vs %v)",
						order, bio, gotScore, wantScore, got, want)
				}
			}
		}
	}
}

func TestBIOConstraintRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		m := randomModel(rng, Order2, 5, true)
		in := randomInstance(rng, 2+rng.Intn(8), 5, false)
		tags := m.Decode(in)
		prev := corpus.O
		for i, tag := range tags {
			if tag == corpus.I && prev == corpus.O {
				t.Fatalf("trial %d: O→I at position %d in %v", trial, i, tags)
			}
			prev = tag
		}
	}
}

func TestLogLikelihoodNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomModel(rng, Order2, 5, true)
	in := randomInstance(rng, 6, 5, true)
	ll := m.LogLikelihood(in)
	if ll > 1e-9 {
		t.Errorf("log-likelihood %g > 0", ll)
	}
}

func TestLogLikelihoodPanicsUnlabelled(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	rng := rand.New(rand.NewSource(3))
	m := randomModel(rng, Order1, 5, false)
	m.LogLikelihood(randomInstance(rng, 3, 5, false))
}

func TestTagTransitionsRowsSumToOne(t *testing.T) {
	for _, order := range []Order{Order1, Order2} {
		rng := rand.New(rand.NewSource(9))
		m := randomModel(rng, order, 5, true)
		trans := m.TagTransitions()
		if len(trans) != corpus.NumTags {
			t.Fatalf("got %d rows", len(trans))
		}
		for p, row := range trans {
			var sum float64
			for _, v := range row {
				if v < 0 {
					t.Fatalf("negative transition prob %g", v)
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("order %d: row %d sums to %g", order, p, sum)
			}
		}
		// BIO: O→I must be zero.
		if trans[corpus.O][corpus.I] != 0 {
			t.Errorf("order %d: O→I transition probability %g, want 0", order, trans[corpus.O][corpus.I])
		}
	}
}

func TestEmptyInstance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomModel(rng, Order2, 5, true)
	empty := &Instance{}
	if got := m.Posteriors(empty); got != nil {
		t.Error("Posteriors(empty) != nil")
	}
	if got := m.Decode(empty); got != nil {
		t.Error("Decode(empty) != nil")
	}
	if got := m.LogLikelihood(&Instance{Tags: []corpus.Tag{}}); got != 0 {
		t.Error("LogLikelihood(empty) != 0")
	}
}

func TestDecodeWithPotentials(t *testing.T) {
	// Potentials strongly prefer B O B; uniform transitions.
	pot := [][]float64{
		{0.9, 0.05, 0.05},
		{0.05, 0.05, 0.9},
		{0.9, 0.05, 0.05},
	}
	uni := [][]float64{{1. / 3, 1. / 3, 1. / 3}, {1. / 3, 1. / 3, 1. / 3}, {1. / 3, 1. / 3, 1. / 3}}
	tags, err := DecodeWithPotentials(pot, uni, true)
	if err != nil {
		t.Fatal(err)
	}
	want := []corpus.Tag{corpus.B, corpus.O, corpus.B}
	for i := range want {
		if tags[i] != want[i] {
			t.Fatalf("tags = %v, want %v", tags, want)
		}
	}
}

func TestDecodeWithPotentialsBIO(t *testing.T) {
	// Potentials prefer O then I, but BIO forbids it; best legal is O O or
	// B I depending on scores.
	pot := [][]float64{
		{0.3, 0.0, 0.7},
		{0.0, 0.9, 0.1},
	}
	uni := [][]float64{{1. / 3, 1. / 3, 1. / 3}, {1. / 3, 1. / 3, 1. / 3}, {1. / 3, 1. / 3, 1. / 3}}
	tags, err := DecodeWithPotentials(pot, uni, true)
	if err != nil {
		t.Fatal(err)
	}
	prev := corpus.O
	for _, tag := range tags {
		if tag == corpus.I && prev == corpus.O {
			t.Fatalf("BIO violated: %v", tags)
		}
		prev = tag
	}
	// B I should win: log(.3)+log(.9) > log(.7)+log(.1).
	if tags[0] != corpus.B || tags[1] != corpus.I {
		t.Errorf("tags = %v, want [B I]", tags)
	}
}

func TestDecodeWithPotentialsErrors(t *testing.T) {
	if _, err := DecodeWithPotentials([][]float64{{0.5, 0.5}}, nil, false); err == nil {
		t.Error("want error for short row")
	}
	if _, err := DecodeWithPotentials([][]float64{{0.3, 0.3, 0.4}}, [][]float64{{1, 0, 0}}, false); err == nil {
		t.Error("want error for bad transition matrix")
	}
	tags, err := DecodeWithPotentials(nil, nil, false)
	if err != nil || tags != nil {
		t.Error("empty input should be a no-op")
	}
}

func TestDecodeWithPotentialsZeroRows(t *testing.T) {
	// All-zero potential rows must not break the decoder (floored).
	pot := [][]float64{{0, 0, 0}, {0, 0, 0}}
	uni := [][]float64{{1. / 3, 1. / 3, 1. / 3}, {1. / 3, 1. / 3, 1. / 3}, {1. / 3, 1. / 3, 1. / 3}}
	tags, err := DecodeWithPotentials(pot, uni, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tags) != 2 {
		t.Fatalf("tags = %v", tags)
	}
}

func BenchmarkPosteriorsOrder2(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := randomModel(rng, Order2, 1000, true)
	in := randomInstance(rng, 25, 1000, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Posteriors(in)
	}
}

func BenchmarkDecodeOrder2(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := randomModel(rng, Order2, 1000, true)
	in := randomInstance(rng, 25, 1000, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Decode(in)
	}
}
