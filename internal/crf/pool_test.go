package crf

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/features"
	"repro/internal/tokenize"
)

// This file pins the pooled-lattice inference paths and the flat-backed
// sentence compiler to the seed behaviour. The reference functions below
// re-derive each result through the allocating compatibility wrappers
// (lattice, forwardBackward, logMatrix), which carry the seed arithmetic
// verbatim; the tests demand bit-identical output, including after the
// pool has been warmed by sentences of different lengths (stale residue
// in reused buffers must be invisible).

// referencePosteriors is the seed Posteriors implementation.
func referencePosteriors(m *Model, in *Instance) [][]float64 {
	if in.Len() == 0 {
		return nil
	}
	emit := m.lattice(in)
	alpha, beta, logZ := m.forwardBackward(emit)
	n := in.Len()
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, corpus.NumTags)
		for s := 0; s < m.S; s++ {
			lp := alpha[i][s] + beta[i][s] - logZ
			if !math.IsInf(lp, -1) {
				row[m.stateTag(s)] += math.Exp(lp)
			}
		}
		normalize(row)
		out[i] = row
	}
	return out
}

// referenceDecode is the seed Decode implementation.
func referenceDecode(m *Model, in *Instance) []corpus.Tag {
	if in.Len() == 0 {
		return nil
	}
	emit := m.lattice(in)
	n := in.Len()
	S := m.S
	delta := logMatrix(n, S)
	back := make([][]int32, n)
	for i := range back {
		back[i] = make([]int32, S)
	}
	for s := 0; s < S; s++ {
		if m.startOK(s) {
			delta[0][s] = m.Start[s] + emit[0][s]
		}
	}
	for i := 1; i < n; i++ {
		for cur := 0; cur < S; cur++ {
			best, arg := negInf, -1
			for prev := 0; prev < S; prev++ {
				if !m.transitionOK(prev, cur) || math.IsInf(delta[i-1][prev], -1) {
					continue
				}
				if v := delta[i-1][prev] + m.T[prev*S+cur]; v > best {
					best, arg = v, prev
				}
			}
			if arg >= 0 {
				delta[i][cur] = best + emit[i][cur]
				back[i][cur] = int32(arg)
			}
		}
	}
	best, arg := negInf, 0
	for s := 0; s < S; s++ {
		if delta[n-1][s] > best {
			best, arg = delta[n-1][s], s
		}
	}
	tags := make([]corpus.Tag, n)
	for i := n - 1; i >= 0; i-- {
		tags[i] = m.stateTag(arg)
		arg = int(back[i][arg])
	}
	return tags
}

// referenceLogLikelihood is the seed LogLikelihood implementation.
func referenceLogLikelihood(m *Model, in *Instance) float64 {
	if in.Len() == 0 {
		return 0
	}
	emit := m.lattice(in)
	_, _, logZ := m.forwardBackward(emit)
	return m.pathScore(in, emit) - logZ
}

func TestPooledInferenceMatchesSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const nf = 50
	for _, order := range []Order{Order1, Order2} {
		m := randomModel(rng, order, nf, true)
		// Mixed lengths on purpose: each call reuses pool buffers sized by
		// a previous, differently-sized sentence.
		for trial := 0; trial < 30; trial++ {
			n := 1 + rng.Intn(25)
			in := randomInstance(rng, n, nf, true)

			got := m.Posteriors(in)
			want := referencePosteriors(m, in)
			for i := range want {
				for y := range want[i] {
					if got[i][y] != want[i][y] {
						t.Fatalf("order %d trial %d: Posteriors[%d][%d] = %v, seed %v",
							order, trial, i, y, got[i][y], want[i][y])
					}
				}
			}

			gt := m.Decode(in)
			wt := referenceDecode(m, in)
			for i := range wt {
				if gt[i] != wt[i] {
					t.Fatalf("order %d trial %d: Decode[%d] = %v, seed %v", order, trial, i, gt[i], wt[i])
				}
			}

			if gl, wl := m.LogLikelihood(in), referenceLogLikelihood(m, in); gl != wl {
				t.Fatalf("order %d trial %d: LogLikelihood = %v, seed %v", order, trial, gl, wl)
			}
		}
	}
}

func TestDecodeWithPotentialsPooledDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	trans := [][]float64{{0.8, 0.2, 0}, {0.3, 0.3, 0.4}, {0.5, 0.2, 0.3}}
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(30)
		pot := make([][]float64, n)
		for i := range pot {
			a, b := rng.Float64(), rng.Float64()
			if a > b {
				a, b = b, a
			}
			pot[i] = []float64{a, b - a, 1 - b}
		}
		first, err := DecodeWithPotentialsT(pot, trans, true, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		// Re-decoding with a warmed pool must be byte-identical.
		second, err := DecodeWithPotentialsT(pot, trans, true, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		for i := range first {
			if first[i] != second[i] {
				t.Fatalf("trial %d: decode not deterministic at %d: %v vs %v", trial, i, first[i], second[i])
			}
		}
	}
}

// TestPooledInferenceConcurrent hammers the pooled paths from many
// goroutines; with -race this verifies scratch buffers are never shared.
func TestPooledInferenceConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const nf = 40
	m := randomModel(rng, Order2, nf, true)
	ins := make([]*Instance, 16)
	wantPost := make([][][]float64, len(ins))
	wantTags := make([][]corpus.Tag, len(ins))
	for i := range ins {
		ins[i] = randomInstance(rng, 1+rng.Intn(20), nf, false)
		wantPost[i] = referencePosteriors(m, ins[i])
		wantTags[i] = referenceDecode(m, ins[i])
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				i := (w + rep) % len(ins)
				post := m.Posteriors(ins[i])
				for p := range post {
					for y := range post[p] {
						if post[p][y] != wantPost[i][p][y] {
							t.Errorf("concurrent Posteriors mismatch at instance %d", i)
							return
						}
					}
				}
				tags := m.Decode(ins[i])
				for p := range tags {
					if tags[p] != wantTags[i][p] {
						t.Errorf("concurrent Decode mismatch at instance %d", i)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// referenceCompileSentence compiles a sentence the seed way: one Position
// call and one feature-id slice per token.
func referenceCompileSentence(c *Compiler, s *corpus.Sentence) *Instance {
	words := s.Words()
	in := &Instance{Features: make([][]int32, len(words)), Tags: s.Tags}
	for i := range words {
		var ids []int32
		for _, f := range c.Extractor.Position(words, i) {
			if id := c.Alphabet.Lookup(f); id >= 0 {
				ids = append(ids, int32(id))
			}
		}
		in.Features[i] = ids
	}
	return in
}

func TestCompileSentenceMatchesSeed(t *testing.T) {
	sentences := []string{
		"Recently the mutation of lymphocyte adaptor protein LNK was detected",
		"the FLT3 gene in AML patients",
		"x",
		"p53 regulates SH2 domain binding II",
	}
	comp := NewCompiler(features.NewExtractor(nil))
	var want []*Instance
	for _, text := range sentences {
		s := &corpus.Sentence{Text: text, Tokens: tokenize.Sentence(text)}
		// Reference first so it populates the growing alphabet in the same
		// first-seen order the fast path would have.
		want = append(want, referenceCompileSentence(comp, s))
	}
	check := func(frozen bool) {
		for si, text := range sentences {
			s := &corpus.Sentence{Text: text, Tokens: tokenize.Sentence(text)}
			got := comp.CompileSentence(s)
			if got.Len() != want[si].Len() {
				t.Fatalf("frozen=%v sentence %d: %d positions, want %d", frozen, si, got.Len(), want[si].Len())
			}
			for i := range want[si].Features {
				if len(got.Features[i]) != len(want[si].Features[i]) {
					t.Fatalf("frozen=%v sentence %d pos %d: %d ids, want %d",
						frozen, si, i, len(got.Features[i]), len(want[si].Features[i]))
				}
				for j := range want[si].Features[i] {
					if got.Features[i][j] != want[si].Features[i][j] {
						t.Fatalf("frozen=%v sentence %d pos %d id %d: %d, want %d",
							frozen, si, i, j, got.Features[i][j], want[si].Features[i][j])
					}
				}
			}
		}
	}
	check(false)
	comp.FreezeAlphabet()
	check(true)

	// Unknown features on the frozen alphabet are dropped, not compiled.
	s := &corpus.Sentence{Text: "zzznovel qqqunseen", Tokens: tokenize.Sentence("zzznovel qqqunseen")}
	got := comp.CompileSentence(s)
	ref := referenceCompileSentence(comp, s)
	for i := range ref.Features {
		if len(got.Features[i]) != len(ref.Features[i]) {
			t.Fatalf("frozen unknown handling differs at pos %d: %d vs %d ids",
				i, len(got.Features[i]), len(ref.Features[i]))
		}
	}
}
