package crf

import (
	"math/rand"
	"testing"

	"repro/internal/corpus"
	"repro/internal/race"
)

// TestPosteriorsIntoMatchesPosteriors locks in the serving contract:
// PosteriorsInto performs exactly Posteriors' floating-point operations,
// so the flat buffer is bitwise identical to the allocating rows.
func TestPosteriorsIntoMatchesPosteriors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const Y = corpus.NumTags
	for _, order := range []Order{Order1, Order2} {
		for _, bio := range []bool{false, true} {
			m := randomModel(rng, order, 25, bio)
			for trial := 0; trial < 10; trial++ {
				in := randomInstance(rng, 1+trial*2, 25, false)
				want := m.Posteriors(in)
				flat := make([]float64, in.Len()*Y)
				if err := m.PosteriorsInto(in, flat); err != nil {
					t.Fatal(err)
				}
				for i, row := range want {
					for y, v := range row {
						if flat[i*Y+y] != v {
							t.Fatalf("order %v bio %v pos %d tag %d: flat %v != %v",
								order, bio, i, y, flat[i*Y+y], v)
						}
					}
				}
			}
		}
	}
}

func TestPosteriorsIntoShortBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := randomModel(rng, Order1, 10, false)
	in := randomInstance(rng, 5, 10, false)
	if err := m.PosteriorsInto(in, make([]float64, 5)); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func randomPotentials(rng *rand.Rand, n int) []float64 {
	const Y = corpus.NumTags
	out := make([]float64, n*Y)
	for i := 0; i < n; i++ {
		sum := 0.0
		for y := 0; y < Y; y++ {
			out[i*Y+y] = rng.Float64()
			sum += out[i*Y+y]
		}
		for y := 0; y < Y; y++ {
			out[i*Y+y] /= sum
		}
	}
	return out
}

func randomTrans(rng *rand.Rand) [][]float64 {
	const Y = corpus.NumTags
	trans := make([][]float64, Y)
	for p := range trans {
		trans[p] = make([]float64, Y)
		sum := 0.0
		for c := range trans[p] {
			trans[p][c] = rng.Float64()
			sum += trans[p][c]
		}
		for c := range trans[p] {
			trans[p][c] /= sum
		}
	}
	// Exercise the potential floor on one entry.
	trans[0][1] = 0
	return trans
}

// TestDecodeFlatMatchesDecodeWithPotentialsT locks in the other serving
// contract: the precomputed-table decoder reproduces
// DecodeWithPotentialsT exactly (same floats, same tie-breaking).
func TestDecodeFlatMatchesDecodeWithPotentialsT(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const Y = corpus.NumTags
	for _, bio := range []bool{false, true} {
		for _, power := range []float64{0.05, 0.5, 1} {
			trans := randomTrans(rng)
			dec, err := NewPotentialDecoder(trans, bio, power)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 25; trial++ {
				n := 1 + rng.Intn(12)
				flat := randomPotentials(rng, n)
				rows := make([][]float64, n)
				for i := range rows {
					rows[i] = flat[i*Y : (i+1)*Y]
				}
				want, err := DecodeWithPotentialsT(rows, trans, bio, power)
				if err != nil {
					t.Fatal(err)
				}
				got := make([]corpus.Tag, n)
				if err := dec.DecodeFlat(flat, n, got); err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("bio %v power %v trial %d: pos %d got %v want %v",
							bio, power, trial, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestNewPotentialDecoderValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	good := randomTrans(rng)
	if _, err := NewPotentialDecoder(good[:2], false, 0.5); err == nil {
		t.Error("short transition matrix accepted")
	}
	bad := randomTrans(rng)
	bad[1] = bad[1][:2]
	if _, err := NewPotentialDecoder(bad, false, 0.5); err == nil {
		t.Error("ragged transition matrix accepted")
	}
	if _, err := NewPotentialDecoder(good, false, 0); err == nil {
		t.Error("power 0 accepted")
	}
	if _, err := NewPotentialDecoder(good, false, 1.5); err == nil {
		t.Error("power > 1 accepted")
	}
}

func TestDecodeFlatValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dec, err := NewPotentialDecoder(randomTrans(rng), false, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	flat := randomPotentials(rng, 4)
	if err := dec.DecodeFlat(flat, 5, make([]corpus.Tag, 5)); err == nil {
		t.Error("short potentials accepted")
	}
	if err := dec.DecodeFlat(flat, 4, make([]corpus.Tag, 3)); err == nil {
		t.Error("short tag buffer accepted")
	}
	if err := dec.DecodeFlat(flat, 0, nil); err != nil {
		t.Errorf("empty decode: %v", err)
	}
}

// TestServeAllocGuard locks in the zero-allocation serving hot path:
// warm PosteriorsInto and DecodeFlat calls allocate nothing — lattices
// come from the pool, outputs are caller-owned.
func TestServeAllocGuard(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates; counts are only meaningful in normal builds")
	}
	rng := rand.New(rand.NewSource(12))
	const Y = corpus.NumTags
	m := randomModel(rng, Order2, 30, true)
	dec, err := NewPotentialDecoder(randomTrans(rng), true, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	ins := make([]*Instance, 6)
	for i := range ins {
		ins[i] = randomInstance(rng, 4+i*4, 30, false)
	}
	maxN := ins[len(ins)-1].Len()
	post := make([]float64, maxN*Y)
	tags := make([]corpus.Tag, maxN)
	// Warm the pools across the length range.
	for _, in := range ins {
		if err := m.PosteriorsInto(in, post); err != nil {
			t.Fatal(err)
		}
		if err := dec.DecodeFlat(post, in.Len(), tags); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		in := ins[i%len(ins)]
		i++
		if err := m.PosteriorsInto(in, post); err != nil {
			t.Fatal(err)
		}
		if err := dec.DecodeFlat(post, in.Len(), tags); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("serving inference allocates %.1f objects/op after warm-up, want 0", allocs)
	}
}
