package crf

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/corpus"
)

// enumerateScored lists all legal paths with exact log-probabilities.
func enumerateScored(m *Model, in *Instance) []ScoredPath {
	emit := m.lattice(in)
	logZ, _, _ := bruteForce(m, in)
	var out []ScoredPath
	for _, path := range enumeratePaths(in.Len(), m.BIO) {
		tmp := &Instance{Features: in.Features, Tags: path}
		out = append(out, ScoredPath{Tags: path, LogProb: m.pathScore(tmp, emit) - logZ})
	}
	return out
}

func TestNBestMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 15; trial++ {
		m := randomModel(rng, Order1, 5, trial%2 == 0)
		in := randomInstance(rng, 1+rng.Intn(4), 5, false)
		n := 1 + rng.Intn(5)

		got := m.NBest(in, n)
		all := enumerateScored(m, in)
		// Sort enumeration descending.
		for i := 0; i < len(all); i++ {
			for j := i + 1; j < len(all); j++ {
				if all[j].LogProb > all[i].LogProb {
					all[i], all[j] = all[j], all[i]
				}
			}
		}
		want := all
		if len(want) > n {
			want = want[:n]
		}
		if len(got) != len(want) {
			t.Fatalf("got %d paths, want %d", len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i].LogProb-want[i].LogProb) > 1e-9 {
				t.Fatalf("trial %d: path %d logprob %g, want %g", trial, i, got[i].LogProb, want[i].LogProb)
			}
		}
		// The 1-best must agree with Viterbi.
		vit := m.Decode(in)
		emit := m.lattice(in)
		vs := m.pathScore(&Instance{Features: in.Features, Tags: vit}, emit)
		gs := m.pathScore(&Instance{Features: in.Features, Tags: got[0].Tags}, emit)
		if math.Abs(vs-gs) > 1e-9 {
			t.Fatalf("trial %d: 1-best disagrees with Viterbi", trial)
		}
	}
}

func TestNBestProbabilitiesSumBelowOne(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	m := randomModel(rng, Order2, 5, true)
	in := randomInstance(rng, 5, 5, false)
	paths := m.NBest(in, 10)
	var sum float64
	seen := map[string]bool{}
	for _, p := range paths {
		key := ""
		for _, tag := range p.Tags {
			key += tag.String()
		}
		if seen[key] {
			t.Fatalf("duplicate path %s in n-best list", key)
		}
		seen[key] = true
		sum += math.Exp(p.LogProb)
	}
	if sum > 1+1e-9 {
		t.Errorf("n-best probabilities sum to %g > 1", sum)
	}
	// Descending order.
	for i := 1; i < len(paths); i++ {
		if paths[i-1].LogProb < paths[i].LogProb {
			t.Error("n-best not sorted")
		}
	}
}

func TestNBestEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	m := randomModel(rng, Order1, 5, false)
	if got := m.NBest(&Instance{}, 3); got != nil {
		t.Error("NBest(empty) != nil")
	}
	in := randomInstance(rng, 3, 5, false)
	if got := m.NBest(in, 0); got != nil {
		t.Error("NBest(n=0) != nil")
	}
	// Requesting more paths than exist returns all of them.
	got := m.NBest(in, 1000)
	if len(got) != len(enumeratePaths(3, false)) {
		t.Errorf("got %d paths, want %d", len(got), len(enumeratePaths(3, false)))
	}
}

func TestMentionConfidence(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	m := randomModel(rng, Order1, 5, true)
	in := randomInstance(rng, 6, 5, false)
	tags := []corpus.Tag{corpus.B, corpus.I, corpus.O, corpus.B, corpus.O, corpus.O}
	confs := m.MentionConfidence(in, tags)
	if len(confs) != 2 {
		t.Fatalf("got %d confidences, want 2", len(confs))
	}
	post := m.Posteriors(in)
	want0 := post[0][corpus.B] * post[1][corpus.I]
	if math.Abs(confs[0]-want0) > 1e-12 {
		t.Errorf("conf[0] = %g, want %g", confs[0], want0)
	}
	want1 := post[3][corpus.B]
	if math.Abs(confs[1]-want1) > 1e-12 {
		t.Errorf("conf[1] = %g, want %g", confs[1], want1)
	}
	for _, c := range confs {
		if c < 0 || c > 1 {
			t.Errorf("confidence %g out of [0,1]", c)
		}
	}
	// All-O tags yield no mentions.
	if got := m.MentionConfidence(in, []corpus.Tag{corpus.O, corpus.O, corpus.O, corpus.O, corpus.O, corpus.O}); len(got) != 0 {
		t.Errorf("all-O confidences = %v", got)
	}
}

func TestTokenEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	m := randomModel(rng, Order1, 5, true)
	in := randomInstance(rng, 4, 5, false)
	ent := m.TokenEntropy(in)
	if len(ent) != 4 {
		t.Fatalf("got %d entropies", len(ent))
	}
	maxEnt := math.Log(float64(corpus.NumTags))
	for i, h := range ent {
		if h < -1e-12 || h > maxEnt+1e-12 {
			t.Errorf("entropy[%d] = %g outside [0, ln 3]", i, h)
		}
	}
	// A peaked model has lower average entropy than the same model scaled
	// toward uniform.
	peaked := *m
	peaked.W = append([]float64(nil), m.W...)
	for i := range peaked.W {
		peaked.W[i] *= 10
	}
	var hSoft, hPeak float64
	for i, h := range ent {
		hSoft += h
		hPeak += peaked.TokenEntropy(in)[i]
	}
	if hPeak >= hSoft {
		t.Errorf("peaked model entropy %g not below soft model %g", hPeak, hSoft)
	}
}
