package crf

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/corpus"
)

// TestPosteriorArgmaxTracksViterbiOnPeakedModels: when the model is very
// confident (weights scaled up), per-position posterior argmax and the
// Viterbi path coincide — the distribution concentrates on one path.
func TestPosteriorArgmaxTracksViterbiOnPeakedModels(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		m := randomModel(rng, Order1, 6, true)
		for i := range m.W {
			m.W[i] *= 8
		}
		for i := range m.T {
			m.T[i] *= 8
		}
		in := randomInstance(rng, 2+rng.Intn(6), 6, false)
		tags := m.Decode(in)
		post := m.Posteriors(in)
		for i := range tags {
			best, arg := -1.0, corpus.Tag(0)
			for y := corpus.Tag(0); y < corpus.NumTags; y++ {
				if post[i][y] > best {
					best, arg = post[i][y], y
				}
			}
			if arg != tags[i] && best > 0.9 {
				t.Fatalf("trial %d pos %d: viterbi %v but confident marginal argmax %v (%.3f)",
					trial, i, tags[i], arg, best)
			}
		}
	}
}

// TestLogLikelihoodIsLogOfPathProbability: exp(LogLikelihood) must equal
// the enumerated probability of the gold path.
func TestLogLikelihoodIsLogOfPathProbability(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 15; trial++ {
		m := randomModel(rng, Order2, 5, true)
		in := randomInstance(rng, 1+rng.Intn(4), 5, true)
		ll := m.LogLikelihood(in)

		emit := m.lattice(in)
		logZ, _, _ := bruteForce(m, in)
		want := m.pathScore(in, emit) - logZ
		if math.Abs(ll-want) > 1e-9 {
			t.Fatalf("LogLikelihood = %g, enumeration %g", ll, want)
		}
	}
}

// TestScalingInvarianceOfDecode: adding a constant to every emission score
// of a position must not change the Viterbi path.
func TestScalingInvarianceOfDecode(t *testing.T) {
	f := func(seed int64, shift float64) bool {
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 100 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		m := randomModel(rng, Order1, 5, true)
		in := randomInstance(rng, 3+rng.Intn(4), 5, false)
		want := m.Decode(in)
		// Shift all weights of one feature uniformly across states: this
		// shifts every position where it is active by the same constant
		// per state... instead, shift the Start vector uniformly, which
		// adds a constant to all paths.
		for s := range m.Start {
			m.Start[s] += shift
		}
		got := m.Decode(in)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestModelGobRoundTrip: the Model struct survives gob encoding (used by
// graphner.System.Save).
func TestModelGobRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	m := randomModel(rng, Order2, 7, true)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		t.Fatal(err)
	}
	var m2 Model
	if err := gob.NewDecoder(&buf).Decode(&m2); err != nil {
		t.Fatal(err)
	}
	in := randomInstance(rng, 6, 7, false)
	a, b := m.Decode(in), m2.Decode(in)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("decoded path changed after gob round trip")
		}
	}
	pa, pb := m.Posteriors(in), m2.Posteriors(in)
	for i := range pa {
		for y := range pa[i] {
			if math.Abs(pa[i][y]-pb[i][y]) > 1e-15 {
				t.Fatal("posteriors changed after gob round trip")
			}
		}
	}
}

// TestTrainingDeterministicForFixedWorkerCount: two trainings with the
// same data and worker count produce identical weights.
func TestTrainingDeterministicForFixedWorkerCount(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	var data []*Instance
	for i := 0; i < 12; i++ {
		data = append(data, randomInstance(rng, 3+rng.Intn(5), 6, true))
	}
	train := func() *Model {
		tr := NewTrainer(Order1)
		tr.MaxIterations = 15
		tr.Workers = 3
		m, err := tr.Train(data, 6)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := train(), train()
	for i := range a.W {
		if a.W[i] != b.W[i] {
			t.Fatal("nondeterministic training at fixed worker count")
		}
	}
}

// TestHigherL2ShrinksWeights: stronger regularization yields a smaller
// weight norm.
func TestHigherL2ShrinksWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	var data []*Instance
	for i := 0; i < 15; i++ {
		data = append(data, randomInstance(rng, 4, 6, true))
	}
	norm := func(l2 float64) float64 {
		tr := NewTrainer(Order1)
		tr.MaxIterations = 30
		tr.L2 = l2
		m, err := tr.Train(data, 6)
		if err != nil {
			t.Fatal(err)
		}
		var s float64
		for _, w := range m.W {
			s += w * w
		}
		return s
	}
	weak, strong := norm(0.01), norm(10)
	if strong >= weak {
		t.Errorf("L2=10 norm %g not below L2=0.01 norm %g", strong, weak)
	}
}
