package crf

import (
	"sync"

	"repro/internal/corpus"
	"repro/internal/features"
)

// Compiler turns corpus sentences into CRF instances by running a feature
// extractor and interning feature strings in a shared alphabet. Compile the
// training corpus first, then Freeze the alphabet (directly or via
// FreezeAlphabet) before compiling test data, so unseen feature instances
// map to no-ops rather than growing the parameter space.
//
// CompileSentence on a frozen alphabet is safe for concurrent use: the
// alphabet is read-only and the per-call scratch buffers come from a pool.
type Compiler struct {
	Extractor *features.Extractor
	Alphabet  *features.Alphabet
}

// compileScratch holds the per-worker buffers CompileSentence reuses: the
// feature-string buffer of one position and the per-position id counts of
// one sentence.
type compileScratch struct {
	feats []string
	lens  []int
}

var compileScratchPool = sync.Pool{New: func() any { return new(compileScratch) }}

// NewCompiler creates a compiler with a fresh alphabet.
func NewCompiler(ex *features.Extractor) *Compiler {
	return &Compiler{Extractor: ex, Alphabet: features.NewAlphabet()}
}

// CompileSentence compiles one sentence. Unknown features on a frozen
// alphabet are dropped. The feature ids of all positions share one flat
// backing array: two allocations per sentence (plus the Instance itself)
// instead of one per position.
func (c *Compiler) CompileSentence(s *corpus.Sentence) *Instance {
	words := s.Words()
	in := &Instance{
		Features: make([][]int32, len(words)),
		Tags:     s.Tags,
	}
	sc := compileScratchPool.Get().(*compileScratch)
	if cap(sc.lens) < len(words) {
		sc.lens = make([]int, len(words))
	}
	lens := sc.lens[:len(words)]
	flat := make([]int32, 0, 48*len(words))
	for i := range words {
		sc.feats = c.Extractor.AppendPosition(sc.feats[:0], words, i)
		n := 0
		for _, f := range sc.feats {
			if id := c.Alphabet.Lookup(f); id >= 0 {
				flat = append(flat, int32(id))
				n++
			}
		}
		lens[i] = n
	}
	// Slice the per-position views only after the flat buffer has stopped
	// growing (append may reallocate the backing array).
	pos := 0
	for i, n := range lens {
		in.Features[i] = flat[pos : pos+n : pos+n]
		pos += n
	}
	compileScratchPool.Put(sc)
	return in
}

// Compile compiles every sentence of the corpus, in order.
func (c *Compiler) Compile(corp *corpus.Corpus) []*Instance {
	out := make([]*Instance, len(corp.Sentences))
	for i, s := range corp.Sentences {
		out[i] = c.CompileSentence(s)
	}
	return out
}

// FreezeAlphabet freezes the underlying alphabet and returns its size,
// which is the numFeatures argument for Trainer.Train.
func (c *Compiler) FreezeAlphabet() int {
	c.Alphabet.Freeze()
	return c.Alphabet.Len()
}
