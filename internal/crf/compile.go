package crf

import (
	"repro/internal/corpus"
	"repro/internal/features"
)

// Compiler turns corpus sentences into CRF instances by running a feature
// extractor and interning feature strings in a shared alphabet. Compile the
// training corpus first, then Freeze the alphabet (directly or via
// FreezeAlphabet) before compiling test data, so unseen feature instances
// map to no-ops rather than growing the parameter space.
type Compiler struct {
	Extractor *features.Extractor
	Alphabet  *features.Alphabet
}

// NewCompiler creates a compiler with a fresh alphabet.
func NewCompiler(ex *features.Extractor) *Compiler {
	return &Compiler{Extractor: ex, Alphabet: features.NewAlphabet()}
}

// CompileSentence compiles one sentence. Unknown features on a frozen
// alphabet are dropped.
func (c *Compiler) CompileSentence(s *corpus.Sentence) *Instance {
	words := s.Words()
	in := &Instance{
		Features: make([][]int32, len(words)),
		Tags:     s.Tags,
	}
	for i := range words {
		fs := c.Extractor.Position(words, i)
		ids := make([]int32, 0, len(fs))
		for _, f := range fs {
			if id := c.Alphabet.Lookup(f); id >= 0 {
				ids = append(ids, int32(id))
			}
		}
		in.Features[i] = ids
	}
	return in
}

// Compile compiles every sentence of the corpus, in order.
func (c *Compiler) Compile(corp *corpus.Corpus) []*Instance {
	out := make([]*Instance, len(corp.Sentences))
	for i, s := range corp.Sentences {
		out[i] = c.CompileSentence(s)
	}
	return out
}

// FreezeAlphabet freezes the underlying alphabet and returns its size,
// which is the numFeatures argument for Trainer.Train.
func (c *Compiler) FreezeAlphabet() int {
	c.Alphabet.Freeze()
	return c.Alphabet.Len()
}
