package neural

import (
	"encoding/gob"
	"fmt"
	"io"
)

// taggerSnapshot is the gob form of a trained Tagger: configuration
// scalars, vocabularies, and the flat parameter vector. Gradients and
// optimizer state are training-only and not persisted.
type taggerSnapshot struct {
	Arch        int
	WordDim     int
	Hidden      int
	CharHidden  int
	MinCount    int
	WordDropout float64

	Vocab  map[string]int
	Chars  map[rune]int
	Params []float64
}

// Save serializes the trained tagger to w.
func (t *Tagger) Save(w io.Writer) error {
	snap := taggerSnapshot{
		Arch:        int(t.cfg.Arch),
		WordDim:     t.cfg.WordDim,
		Hidden:      t.cfg.Hidden,
		CharHidden:  t.cfg.CharHidden,
		MinCount:    t.cfg.MinCount,
		WordDropout: t.cfg.WordDropout,
		Vocab:       t.vocab,
		Chars:       t.chars,
		Params:      t.st.params,
	}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("neural: save: %w", err)
	}
	return nil
}

// LoadTagger reconstructs a trained tagger from a Save stream.
func LoadTagger(r io.Reader) (*Tagger, error) {
	var snap taggerSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("neural: load: %w", err)
	}
	if snap.WordDim <= 0 || snap.Hidden <= 0 || len(snap.Vocab) == 0 {
		return nil, fmt.Errorf("neural: load: malformed snapshot")
	}
	cfg := TaggerConfig{
		Arch:        Arch(snap.Arch),
		WordDim:     snap.WordDim,
		Hidden:      snap.Hidden,
		CharHidden:  snap.CharHidden,
		MinCount:    snap.MinCount,
		WordDropout: snap.WordDropout,
	}
	// Rebuild the layer structure with the persisted sizes, then overwrite
	// the parameter vector. rebuild uses the same allocation order as
	// TrainTagger, so the views align.
	t := &Tagger{cfg: cfg, vocab: snap.Vocab, chars: snap.Chars, st: &store{}}
	if err := t.allocLayers(len(snap.Vocab), len(snap.Chars), zeroRNG{}, false); err != nil {
		return nil, err
	}
	if len(t.st.params) != len(snap.Params) {
		return nil, fmt.Errorf("neural: load: parameter count %d does not match architecture (%d)",
			len(snap.Params), len(t.st.params))
	}
	copy(t.st.params, snap.Params)
	return t, nil
}

// zeroRNG satisfies the initializer interface with zeros; Load overwrites
// every parameter anyway.
type zeroRNG struct{}

func (zeroRNG) Float64() float64 { return 0 }

// lstmParams is the parameter count of one LSTM layer: the (4H)×(D+H)
// weight matrix plus 4H biases.
func lstmParams(in, hidden int) int { return 4*hidden*(in+hidden) + 4*hidden }

// paramCount returns the total trainable parameter count of the
// architecture, used to reserve the store before allocation (views alias
// the store's arrays and must never be detached by reallocation).
func (t *Tagger) paramCount(vocabSize, charCount int) int {
	cfg := t.cfg
	D, H := cfg.WordDim, cfg.Hidden
	n := vocabSize * D
	if cfg.Arch == CharAttention {
		n += (charCount + 1) * cfg.CharHidden
		n += 2 * lstmParams(cfg.CharHidden, cfg.CharHidden)
		n += D*2*D + D
	}
	n += 2 * lstmParams(D, H)
	n += numTags*2*H + numTags // output projection + bias
	n += numTags*numTags + numTags
	return n
}

// allocLayers builds the parameter layout for the configured architecture
// and the given vocabulary sizes. It must mirror TrainTagger's allocation
// order exactly.
func (t *Tagger) allocLayers(vocabSize, charCount int, rng interface{ Float64() float64 }, glorotScaled bool) error {
	cfg := t.cfg
	D, H := cfg.WordDim, cfg.Hidden
	t.st.reserve(t.paramCount(vocabSize, charCount))
	initFor := func(fanIn, fanOut int) func(int) float64 {
		if glorotScaled {
			return glorot(rng, fanIn, fanOut)
		}
		return func(int) float64 { return rng.Float64() }
	}
	t.wordEmb = t.st.alloc(vocabSize, D, initFor(vocabSize, D))
	if cfg.Arch == CharAttention {
		if 2*cfg.CharHidden != D {
			return fmt.Errorf("neural: CharHidden must be WordDim/2 (got %d for word dim %d)", cfg.CharHidden, D)
		}
		t.charEmb = t.st.alloc(charCount+1, cfg.CharHidden, initFor(charCount+1, cfg.CharHidden))
		t.charFwd = newLSTM(t.st, rng, cfg.CharHidden, cfg.CharHidden)
		t.charBwd = newLSTM(t.st, rng, cfg.CharHidden, cfg.CharHidden)
		t.gate = t.st.alloc(D, 2*D, initFor(2*D, D))
		t.gateB = t.st.alloc(1, D, zeros)
	}
	t.fwd = newLSTM(t.st, rng, D, H)
	t.bwd = newLSTM(t.st, rng, D, H)
	t.out = t.st.alloc(numTags, 2*H, initFor(2*H, numTags))
	t.outB = t.st.alloc(1, numTags, zeros)
	t.crf = newCRFLayer(t.st)
	return nil
}
