// Package neural implements the neural sequence taggers the GraphNER paper
// compares against: a bi-directional LSTM with a CRF output layer
// (LSTM-CRF, Lample et al. 2016) and a character-aware variant with an
// attention gate between word- and character-level representations in the
// spirit of Rei et al. (2016). Everything — LSTM cells, the neural CRF
// loss, and training — is implemented from scratch with hand-derived
// backpropagation over flat parameter vectors, so the stdlib-only
// constraint of this repository holds.
package neural

import (
	"math"
)

// store owns a flat parameter vector and its gradient, and hands out
// aligned views to layers. Keeping everything in two slices lets a single
// optimizer update the whole model.
type store struct {
	params []float64
	grads  []float64
}

// view is a parameter matrix or vector slice with its gradient. off is the
// view's starting index in the store's flat vectors, used for sparse
// optimizer updates.
type view struct {
	w, g       []float64
	rows, cols int
	off        int
}

// reserve pre-allocates capacity for n parameters. Views returned by alloc
// alias the store's backing arrays, so the store MUST be reserved to its
// final size before the first alloc: growing by reallocation would leave
// earlier views pointing at stale arrays.
func (s *store) reserve(n int) {
	s.params = make([]float64, 0, n)
	s.grads = make([]float64, 0, n)
}

// alloc reserves rows×cols parameters initialized by init. It panics if
// the allocation would overflow the reserved capacity, which would
// silently detach previously returned views.
func (s *store) alloc(rows, cols int, init func(i int) float64) view {
	n := rows * cols
	off := len(s.params)
	if cap(s.params) == 0 && off == 0 {
		// Single-layer convenience (tests): implicitly size the store for
		// this one allocation. A second allocation still panics below.
		s.reserve(n)
	}
	if off+n > cap(s.params) {
		panic("neural: store allocation exceeds reserve; call reserve with the full parameter count first")
	}
	for i := 0; i < n; i++ {
		s.params = append(s.params, init(i))
		s.grads = append(s.grads, 0)
	}
	return view{
		w: s.params[off : off+n], g: s.grads[off : off+n],
		rows: rows, cols: cols, off: off,
	}
}

// glorot returns a Glorot-uniform initializer for fanIn+fanOut.
func glorot(rng interface{ Float64() float64 }, fanIn, fanOut int) func(int) float64 {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	return func(int) float64 { return (rng.Float64()*2 - 1) * limit }
}

func zeros(int) float64 { return 0 }

// row returns the i-th row of a matrix view (weights and grads).
func (v view) row(i int) ([]float64, []float64) {
	return v.w[i*v.cols : (i+1)*v.cols], v.g[i*v.cols : (i+1)*v.cols]
}

// zeroGrads clears the gradient buffer.
func (s *store) zeroGrads() {
	for i := range s.grads {
		s.grads[i] = 0
	}
}

func sigmoid(x float64) float64 {
	switch {
	case x > 30:
		return 1
	case x < -30:
		return 0
	}
	return 1 / (1 + math.Exp(-x))
}
