package neural

import (
	"fmt"
	"math/rand"
	"strings"
	"unicode"

	"repro/internal/corpus"
	"repro/internal/optimize"
)

// Arch selects the tagger architecture.
type Arch int

const (
	// LSTMCRF is the word-level bi-directional LSTM with a CRF output
	// layer of Lample et al. (2016), the paper's "LSTM-CRF" row.
	LSTMCRF Arch = iota
	// CharAttention adds a character-level bi-LSTM per word and combines
	// word and character representations through a learned sigmoid
	// attention gate, in the spirit of Rei et al. (2016).
	CharAttention
)

func (a Arch) String() string {
	if a == CharAttention {
		return "Char-Attention-LSTM-CRF"
	}
	return "LSTM-CRF"
}

// TaggerConfig controls architecture and training.
type TaggerConfig struct {
	Arch       Arch
	WordDim    int     // word embedding size (default 32)
	Hidden     int     // LSTM hidden size per direction (default 32)
	CharHidden int     // char LSTM hidden per direction (default WordDim/2)
	Epochs     int     // passes over the training data (default 8)
	Rate       float64 // Adam learning rate (default 1e-3)
	MinCount   int     // words rarer than this become <UNK> (default 2)
	Seed       int64
	Clip       float64 // gradient norm clip (default 5)
	// WordDropout replaces training tokens with <UNK> at this probability
	// (Lample et al.'s singleton-dropout trick), teaching the model to
	// use context for unseen surfaces. 0 disables.
	WordDropout float64
	// Progress, if non-nil, receives per-epoch train loss and dev F1.
	Progress func(epoch int, loss, devF1 float64)
}

func (c *TaggerConfig) defaults() {
	if c.WordDim <= 0 {
		c.WordDim = 32
	}
	if c.Hidden <= 0 {
		c.Hidden = 32
	}
	if c.CharHidden <= 0 {
		c.CharHidden = c.WordDim / 2
	}
	if c.Epochs <= 0 {
		c.Epochs = 8
	}
	if c.Rate <= 0 {
		c.Rate = 1e-3
	}
	if c.MinCount <= 0 {
		c.MinCount = 2
	}
	if c.Clip <= 0 {
		c.Clip = 5
	}
}

// Tagger is a trained neural sequence tagger.
type Tagger struct {
	cfg   TaggerConfig
	vocab map[string]int
	chars map[rune]int

	st               *store
	wordEmb          view
	charEmb          view
	charFwd, charBwd *lstm
	gate             view // WordDim×(2·WordDim) attention gate (char variant)
	gateB            view
	fwd, bwd         *lstm
	out              view // numTags×(2·Hidden)
	outB             view
	crf              *crfLayer
}

const (
	unkToken = "<UNK>"
	numToken = "<NUM>"
)

// normWord maps a token to its vocabulary form.
func normWord(w string) string {
	allDigit := len(w) > 0
	for _, r := range w {
		if !unicode.IsDigit(r) {
			allDigit = false
			break
		}
	}
	if allDigit {
		return numToken
	}
	return strings.ToLower(w)
}

// TrainTagger fits a tagger on train, early-stopping on token accuracy
// over dev (the paper notes both neural baselines require a dev set; it
// carves one out of the training data). dev may be nil, in which case the
// final epoch's parameters are kept.
func TrainTagger(train, dev *corpus.Corpus, cfg TaggerConfig) (*Tagger, error) {
	cfg.defaults()
	if len(train.Sentences) == 0 {
		return nil, fmt.Errorf("neural: empty training corpus")
	}
	for _, s := range train.Sentences {
		if s.Tags == nil {
			return nil, fmt.Errorf("neural: unlabelled training sentence %s", s.ID)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	t := &Tagger{cfg: cfg, vocab: map[string]int{}, chars: map[rune]int{}, st: &store{}}
	// Vocabulary.
	counts := map[string]int{}
	for _, s := range train.Sentences {
		for _, tok := range s.Tokens {
			counts[normWord(tok.Text)]++
			for _, r := range tok.Text {
				if _, ok := t.chars[r]; !ok {
					t.chars[r] = len(t.chars)
				}
			}
		}
	}
	t.vocab[unkToken] = 0
	t.vocab[numToken] = 1
	for w, c := range counts {
		if c >= cfg.MinCount && w != numToken {
			if _, ok := t.vocab[w]; !ok {
				t.vocab[w] = len(t.vocab)
			}
		}
	}

	// Layers (allocation order shared with LoadTagger via allocLayers).
	if err := t.allocLayers(len(t.vocab), len(t.chars), rng, true); err != nil {
		return nil, err
	}

	opt := optimize.NewAdam(len(t.st.params), cfg.Rate)
	opt.Clip = cfg.Clip

	// Dense (non-embedding) parameter indices, updated every step; the
	// embedding tables are updated sparsely per touched row (lazy Adam).
	isEmb := func(i int) bool {
		if i >= t.wordEmb.off && i < t.wordEmb.off+len(t.wordEmb.w) {
			return true
		}
		if cfg.Arch == CharAttention && i >= t.charEmb.off && i < t.charEmb.off+len(t.charEmb.w) {
			return true
		}
		return false
	}
	var denseIdx []int
	for i := range t.st.params {
		if !isEmb(i) {
			denseIdx = append(denseIdx, i)
		}
	}
	idxBuf := make([]int, 0, len(denseIdx)+256)

	order := make([]int, len(train.Sentences))
	for i := range order {
		order[i] = i
	}
	var best []float64
	bestDev := -1.0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var total float64
		for _, idx := range order {
			s := train.Sentences[idx]
			if len(s.Tokens) == 0 {
				continue
			}
			t.st.zeroGrads()
			loss, fs := t.lossAndGradR(s, rng)
			total += loss
			idxBuf = append(idxBuf[:0], denseIdx...)
			idxBuf = t.appendTouched(idxBuf, fs)
			opt.UpdateAt(t.st.params, t.st.grads, idxBuf)
		}
		devScore := 0.0
		if dev != nil && len(dev.Sentences) > 0 {
			devScore = t.tokenAccuracy(dev)
			if devScore > bestDev {
				bestDev = devScore
				best = append(best[:0], t.st.params...)
			}
		}
		if cfg.Progress != nil {
			cfg.Progress(epoch, total/float64(len(order)), devScore)
		}
	}
	if best != nil {
		copy(t.st.params, best)
	}
	return t, nil
}

// forward computes the emission lattice for a sentence, returning all the
// traces needed to backpropagate. When train is false, traces are still
// produced but cheap to ignore.
type forwardState struct {
	words    []string
	wordIDs  []int
	xs       [][]float64 // gated inputs to the BiLSTM
	emb      [][]float64 // raw word embeddings (char variant)
	charRepr [][]float64
	gateAct  [][]float64
	charTrF  []*lstmTrace
	charTrB  []*lstmTrace
	charIDs  [][]int
	trF, trB *lstmTrace
	hs       [][]float64 // concatenated BiLSTM states
	emit     [][]float64
}

func (t *Tagger) forward(s *corpus.Sentence, dropRNG *rand.Rand) *forwardState {
	n := len(s.Tokens)
	fs := &forwardState{
		words:   make([]string, n),
		wordIDs: make([]int, n),
		xs:      make([][]float64, n),
	}
	D := t.cfg.WordDim
	if t.cfg.Arch == CharAttention {
		fs.emb = make([][]float64, n)
		fs.charRepr = make([][]float64, n)
		fs.gateAct = make([][]float64, n)
		fs.charTrF = make([]*lstmTrace, n)
		fs.charTrB = make([]*lstmTrace, n)
		fs.charIDs = make([][]int, n)
	}
	for i, tok := range s.Tokens {
		fs.words[i] = tok.Text
		id, ok := t.vocab[normWord(tok.Text)]
		if !ok {
			id = t.vocab[unkToken]
		}
		if dropRNG != nil && t.cfg.WordDropout > 0 && dropRNG.Float64() < t.cfg.WordDropout {
			id = t.vocab[unkToken]
		}
		fs.wordIDs[i] = id
		w, _ := t.wordEmb.row(id)
		if t.cfg.Arch != CharAttention {
			fs.xs[i] = w
			continue
		}
		// Character representation.
		runes := []rune(tok.Text)
		ids := make([]int, len(runes))
		cx := make([][]float64, len(runes))
		rcx := make([][]float64, len(runes))
		for j, r := range runes {
			cid, ok := t.chars[r]
			if !ok {
				cid = len(t.chars) // OOV char row
			}
			ids[j] = cid
			e, _ := t.charEmb.row(cid)
			cx[j] = e
			rcx[len(runes)-1-j] = e
		}
		fs.charIDs[i] = ids
		var cr []float64
		if len(runes) > 0 {
			hf, trf := t.charFwd.Forward(cx)
			hb, trb := t.charBwd.Forward(rcx)
			fs.charTrF[i], fs.charTrB[i] = trf, trb
			cr = append(append([]float64{}, hf[len(hf)-1]...), hb[len(hb)-1]...)
		} else {
			cr = make([]float64, D)
		}
		fs.charRepr[i] = cr
		fs.emb[i] = w
		// Attention gate m = σ(G[w;c]+b); x = m⊙w + (1−m)⊙c.
		zc := make([]float64, 2*D)
		copy(zc, w)
		copy(zc[D:], cr)
		m := make([]float64, D)
		x := make([]float64, D)
		for d := 0; d < D; d++ {
			gRow, _ := t.gate.row(d)
			sum := t.gateB.w[d]
			for k, zv := range zc {
				sum += gRow[k] * zv
			}
			m[d] = sigmoid(sum)
			x[d] = m[d]*w[d] + (1-m[d])*cr[d]
		}
		fs.gateAct[i] = m
		fs.xs[i] = x
	}

	// BiLSTM.
	rev := make([][]float64, n)
	for i := range fs.xs {
		rev[n-1-i] = fs.xs[i]
	}
	hf, trf := t.fwd.Forward(fs.xs)
	hb, trb := t.bwd.Forward(rev)
	fs.trF, fs.trB = trf, trb
	H := t.cfg.Hidden
	fs.hs = make([][]float64, n)
	fs.emit = make([][]float64, n)
	for i := 0; i < n; i++ {
		h := make([]float64, 2*H)
		copy(h, hf[i])
		copy(h[H:], hb[n-1-i])
		fs.hs[i] = h
		e := make([]float64, numTags)
		for y := 0; y < numTags; y++ {
			oRow, _ := t.out.row(y)
			sum := t.outB.w[y]
			for k, hv := range h {
				sum += oRow[k] * hv
			}
			e[y] = sum
		}
		fs.emit[i] = e
	}
	return fs
}

// appendTouched appends the flat parameter indices of the embedding rows a
// sentence touched (deduplicated).
func (t *Tagger) appendTouched(idx []int, fs *forwardState) []int {
	seen := map[int]bool{}
	for _, id := range fs.wordIDs {
		if seen[id] {
			continue
		}
		seen[id] = true
		base := t.wordEmb.off + id*t.wordEmb.cols
		for d := 0; d < t.wordEmb.cols; d++ {
			idx = append(idx, base+d)
		}
	}
	if t.cfg.Arch == CharAttention {
		cs := map[int]bool{}
		for _, ids := range fs.charIDs {
			for _, id := range ids {
				if cs[id] {
					continue
				}
				cs[id] = true
				base := t.charEmb.off + id*t.charEmb.cols
				for d := 0; d < t.charEmb.cols; d++ {
					idx = append(idx, base+d)
				}
			}
		}
	}
	return idx
}

// lossAndGrad runs a full forward/backward pass for one labelled sentence
// and returns its NLL plus the forward state (for sparse updates).
func (t *Tagger) lossAndGrad(s *corpus.Sentence) (float64, *forwardState) {
	return t.lossAndGradR(s, nil)
}

// lossAndGradR is lossAndGrad with an RNG enabling word dropout.
func (t *Tagger) lossAndGradR(s *corpus.Sentence, dropRNG *rand.Rand) (float64, *forwardState) {
	fs := t.forward(s, dropRNG)
	n := len(fs.emit)
	dEmit := make([][]float64, n)
	for i := range dEmit {
		dEmit[i] = make([]float64, numTags)
	}
	loss := t.crf.Loss(fs.emit, s.Tags, dEmit)

	// Through the output projection.
	H := t.cfg.Hidden
	dH := make([][]float64, n)
	for i := 0; i < n; i++ {
		dh := make([]float64, 2*H)
		for y := 0; y < numTags; y++ {
			g := dEmit[i][y]
			if g == 0 {
				continue
			}
			oRow, oGrad := t.out.row(y)
			for k, hv := range fs.hs[i] {
				oGrad[k] += g * hv
				dh[k] += g * oRow[k]
			}
			t.outB.g[y] += g
		}
		dH[i] = dh
	}

	// Split into forward/backward LSTM gradients.
	dhF := make([][]float64, n)
	dhB := make([][]float64, n)
	for i := 0; i < n; i++ {
		dhF[i] = dH[i][:H]
		dhB[n-1-i] = dH[i][H:]
	}
	dxF := t.fwd.Backward(fs.trF, dhF)
	dxBrev := t.bwd.Backward(fs.trB, dhB)

	D := t.cfg.WordDim
	for i := 0; i < n; i++ {
		dx := make([]float64, D)
		copy(dx, dxF[i])
		for d := 0; d < D; d++ {
			dx[d] += dxBrev[n-1-i][d]
		}
		if t.cfg.Arch != CharAttention {
			_, eg := t.wordEmb.row(fs.wordIDs[i])
			for d := 0; d < D; d++ {
				eg[d] += dx[d]
			}
			continue
		}
		// Through the attention gate.
		w := fs.emb[i]
		cr := fs.charRepr[i]
		m := fs.gateAct[i]
		dw := make([]float64, D)
		dc := make([]float64, D)
		da := make([]float64, D)
		for d := 0; d < D; d++ {
			dw[d] = dx[d] * m[d]
			dc[d] = dx[d] * (1 - m[d])
			dm := dx[d] * (w[d] - cr[d])
			da[d] = dm * m[d] * (1 - m[d])
		}
		zc := make([]float64, 2*D)
		copy(zc, w)
		copy(zc[D:], cr)
		for d := 0; d < D; d++ {
			if da[d] == 0 {
				continue
			}
			gRow, gGrad := t.gate.row(d)
			for k, zv := range zc {
				gGrad[k] += da[d] * zv
				if k < D {
					dw[k] += da[d] * gRow[k]
				} else {
					dc[k-D] += da[d] * gRow[k]
				}
			}
			t.gateB.g[d] += da[d]
		}
		_, eg := t.wordEmb.row(fs.wordIDs[i])
		for d := 0; d < D; d++ {
			eg[d] += dw[d]
		}
		// Through the char BiLSTM (gradient only at the last step of each
		// direction).
		if fs.charTrF[i] == nil {
			continue
		}
		ch := t.cfg.CharHidden
		ln := len(fs.charIDs[i])
		dhf := make([][]float64, ln)
		dhb := make([][]float64, ln)
		for j := 0; j < ln; j++ {
			dhf[j] = make([]float64, ch)
			dhb[j] = make([]float64, ch)
		}
		copy(dhf[ln-1], dc[:ch])
		copy(dhb[ln-1], dc[ch:])
		dcxF := t.charFwd.Backward(fs.charTrF[i], dhf)
		dcxB := t.charBwd.Backward(fs.charTrB[i], dhb)
		for j := 0; j < ln; j++ {
			_, ceg := t.charEmb.row(fs.charIDs[i][j])
			for d := 0; d < ch; d++ {
				ceg[d] += dcxF[j][d] + dcxB[ln-1-j][d]
			}
		}
	}
	return loss, fs
}

// Tag decodes one sentence.
func (t *Tagger) Tag(s *corpus.Sentence) []corpus.Tag {
	if len(s.Tokens) == 0 {
		return nil
	}
	fs := t.forward(s, nil)
	return t.crf.Decode(fs.emit)
}

// TagCorpus decodes every sentence of a corpus.
func (t *Tagger) TagCorpus(c *corpus.Corpus) [][]corpus.Tag {
	out := make([][]corpus.Tag, len(c.Sentences))
	for i, s := range c.Sentences {
		out[i] = t.Tag(s)
	}
	return out
}

// tokenAccuracy is the early-stopping criterion on the dev set.
func (t *Tagger) tokenAccuracy(dev *corpus.Corpus) float64 {
	correct, total := 0, 0
	for _, s := range dev.Sentences {
		if s.Tags == nil || len(s.Tokens) == 0 {
			continue
		}
		got := t.Tag(s)
		for i := range got {
			if got[i] == s.Tags[i] {
				correct++
			}
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// NumParameters returns the total trainable parameter count.
func (t *Tagger) NumParameters() int { return len(t.st.params) }
