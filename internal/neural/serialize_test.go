package neural

import (
	"bytes"
	"strings"
	"testing"
)

func TestTaggerSaveLoadRoundTrip(t *testing.T) {
	for _, arch := range []Arch{LSTMCRF, CharAttention} {
		cfg := tinyConfig(arch)
		cfg.Epochs = 15
		tg, err := TrainTagger(toyCorpus(), nil, cfg)
		if err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		var buf bytes.Buffer
		if err := tg.Save(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadTagger(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if loaded.NumParameters() != tg.NumParameters() {
			t.Fatalf("%v: parameter count %d vs %d", arch, loaded.NumParameters(), tg.NumParameters())
		}
		// Identical tagging on several inputs, including OOV surfaces.
		for _, text := range []string{
			"the GENEA gene",
			"mutation of GENEB was found",
			"mutation of NOVELX was found",
		} {
			s := toySentence(text, nil)
			a, b := tg.Tag(s), loaded.Tag(s)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%v: %q decodes differently after round trip", arch, text)
				}
			}
		}
	}
}

func TestLoadTaggerRejectsGarbage(t *testing.T) {
	if _, err := LoadTagger(strings.NewReader("junk")); err == nil {
		t.Error("want error for malformed stream")
	}
	if _, err := LoadTagger(bytes.NewReader(nil)); err == nil {
		t.Error("want error for empty stream")
	}
}
