package neural

import (
	"math"

	"repro/internal/corpus"
)

// crfLayer is the linear-chain CRF output layer of the neural taggers:
// learned transition weights over the three BIO tags plus start weights.
// Its Loss method returns the negative conditional log-likelihood of a
// gold tag sequence given per-position emission scores, accumulating
// gradients with respect to both the transitions and the emissions.
type crfLayer struct {
	trans view // Y×Y
	start view // Y
}

const numTags = corpus.NumTags

func newCRFLayer(s *store) *crfLayer {
	return &crfLayer{
		trans: s.alloc(numTags, numTags, zeros),
		start: s.alloc(1, numTags, zeros),
	}
}

// Loss computes NLL and writes ∂NLL/∂emissions into dEmit (same shape as
// emit), accumulating transition/start gradients in the store.
func (l *crfLayer) Loss(emit [][]float64, tags []corpus.Tag, dEmit [][]float64) float64 {
	n := len(emit)
	if n == 0 {
		return 0
	}
	Y := numTags
	// Forward (log-space alphas).
	alpha := make([][]float64, n)
	for t := range alpha {
		alpha[t] = make([]float64, Y)
	}
	for y := 0; y < Y; y++ {
		alpha[0][y] = l.start.w[y] + emit[0][y]
	}
	for t := 1; t < n; t++ {
		for y := 0; y < Y; y++ {
			m := math.Inf(-1)
			for p := 0; p < Y; p++ {
				if v := alpha[t-1][p] + l.trans.w[p*Y+y]; v > m {
					m = v
				}
			}
			var s float64
			for p := 0; p < Y; p++ {
				s += math.Exp(alpha[t-1][p] + l.trans.w[p*Y+y] - m)
			}
			alpha[t][y] = m + math.Log(s) + emit[t][y]
		}
	}
	logZ := logSumExpSlice(alpha[n-1])

	// Backward (betas) for marginals.
	beta := make([][]float64, n)
	for t := range beta {
		beta[t] = make([]float64, Y)
	}
	for t := n - 2; t >= 0; t-- {
		for p := 0; p < Y; p++ {
			m := math.Inf(-1)
			for y := 0; y < Y; y++ {
				if v := l.trans.w[p*Y+y] + emit[t+1][y] + beta[t+1][y]; v > m {
					m = v
				}
			}
			var s float64
			for y := 0; y < Y; y++ {
				s += math.Exp(l.trans.w[p*Y+y] + emit[t+1][y] + beta[t+1][y] - m)
			}
			beta[t][p] = m + math.Log(s)
		}
	}

	// Emission gradients: marginal − gold.
	for t := 0; t < n; t++ {
		for y := 0; y < Y; y++ {
			dEmit[t][y] = math.Exp(alpha[t][y] + beta[t][y] - logZ)
		}
		dEmit[t][tags[t]]--
	}
	// Transition and start gradients.
	for y := 0; y < Y; y++ {
		l.start.g[y] += math.Exp(alpha[0][y]+beta[0][y]-logZ) - bToF(tags[0] == corpus.Tag(y))
	}
	for t := 1; t < n; t++ {
		for p := 0; p < Y; p++ {
			for y := 0; y < Y; y++ {
				m := math.Exp(alpha[t-1][p] + l.trans.w[p*Y+y] + emit[t][y] + beta[t][y] - logZ)
				l.trans.g[p*Y+y] += m
			}
		}
		l.trans.g[int(tags[t-1])*Y+int(tags[t])]--
	}

	// NLL = logZ − gold score.
	gold := l.start.w[tags[0]] + emit[0][tags[0]]
	for t := 1; t < n; t++ {
		gold += l.trans.w[int(tags[t-1])*Y+int(tags[t])] + emit[t][tags[t]]
	}
	return logZ - gold
}

// Decode returns the Viterbi-optimal tags for emission scores.
func (l *crfLayer) Decode(emit [][]float64) []corpus.Tag {
	n := len(emit)
	if n == 0 {
		return nil
	}
	Y := numTags
	delta := make([][]float64, n)
	back := make([][]int, n)
	for t := range delta {
		delta[t] = make([]float64, Y)
		back[t] = make([]int, Y)
	}
	for y := 0; y < Y; y++ {
		delta[0][y] = l.start.w[y] + emit[0][y]
	}
	for t := 1; t < n; t++ {
		for y := 0; y < Y; y++ {
			best, arg := math.Inf(-1), 0
			for p := 0; p < Y; p++ {
				if v := delta[t-1][p] + l.trans.w[p*Y+y]; v > best {
					best, arg = v, p
				}
			}
			delta[t][y] = best + emit[t][y]
			back[t][y] = arg
		}
	}
	best, arg := math.Inf(-1), 0
	for y := 0; y < Y; y++ {
		if delta[n-1][y] > best {
			best, arg = delta[n-1][y], y
		}
	}
	tags := make([]corpus.Tag, n)
	for t := n - 1; t >= 0; t-- {
		tags[t] = corpus.Tag(arg)
		arg = back[t][arg]
	}
	return tags
}

func logSumExpSlice(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	var s float64
	for _, x := range xs {
		s += math.Exp(x - m)
	}
	return m + math.Log(s)
}

func bToF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
