package neural

import "math"

// lstm is one directional LSTM layer with hand-derived backpropagation.
// Parameters are a single weight matrix W of shape (4H)×(D+H) applied to
// the concatenation [x_t; h_{t-1}] plus a bias of 4H. The forget-gate
// bias quarter is initialized to 1, the usual trick to ease gradient flow.
type lstm struct {
	in, hidden int
	w          view // (4H)×(D+H)
	b          view // 4H
}

func newLSTM(s *store, rng interface{ Float64() float64 }, in, hidden int) *lstm {
	l := &lstm{in: in, hidden: hidden}
	limit := 0.08
	l.w = s.alloc(4*hidden, in+hidden, func(int) float64 {
		return (rng.Float64()*2 - 1) * limit
	})
	l.b = s.alloc(1, 4*hidden, func(i int) float64 {
		if i >= hidden && i < 2*hidden {
			return 1 // forget gate bias
		}
		return 0
	})
	return l
}

// lstmTrace stores per-step activations needed for backward.
type lstmTrace struct {
	xs          [][]float64 // inputs
	zs          [][]float64 // concatenated [x; hPrev]
	i, f, g, o  [][]float64 // post-nonlinearity gate activations
	c, h, tanhc [][]float64
}

// Forward runs the LSTM over xs (each of length in) and returns the hidden
// state sequence plus the trace for backward. Initial h and c are zero.
func (l *lstm) Forward(xs [][]float64) ([][]float64, *lstmTrace) {
	H, D := l.hidden, l.in
	n := len(xs)
	tr := &lstmTrace{
		xs: xs,
		zs: make([][]float64, n), i: make([][]float64, n),
		f: make([][]float64, n), g: make([][]float64, n),
		o: make([][]float64, n), c: make([][]float64, n),
		h: make([][]float64, n), tanhc: make([][]float64, n),
	}
	hPrev := make([]float64, H)
	cPrev := make([]float64, H)
	for t := 0; t < n; t++ {
		z := make([]float64, D+H)
		copy(z, xs[t])
		copy(z[D:], hPrev)
		tr.zs[t] = z

		pre := make([]float64, 4*H)
		for r := 0; r < 4*H; r++ {
			wRow, _ := l.w.row(r)
			sum := l.b.w[r]
			for k, zv := range z {
				sum += wRow[k] * zv
			}
			pre[r] = sum
		}
		it := make([]float64, H)
		ft := make([]float64, H)
		gt := make([]float64, H)
		ot := make([]float64, H)
		ct := make([]float64, H)
		ht := make([]float64, H)
		tc := make([]float64, H)
		for j := 0; j < H; j++ {
			it[j] = sigmoid(pre[j])
			ft[j] = sigmoid(pre[H+j])
			gt[j] = tanh(pre[2*H+j])
			ot[j] = sigmoid(pre[3*H+j])
			ct[j] = ft[j]*cPrev[j] + it[j]*gt[j]
			tc[j] = tanh(ct[j])
			ht[j] = ot[j] * tc[j]
		}
		tr.i[t], tr.f[t], tr.g[t], tr.o[t] = it, ft, gt, ot
		tr.c[t], tr.h[t], tr.tanhc[t] = ct, ht, tc
		hPrev, cPrev = ht, ct
	}
	return tr.h, tr
}

// Backward consumes per-step gradients dh (same shape as the hidden
// sequence), accumulates parameter gradients, and returns gradients with
// respect to the inputs xs.
func (l *lstm) Backward(tr *lstmTrace, dh [][]float64) [][]float64 {
	H, D := l.hidden, l.in
	n := len(tr.xs)
	dxs := make([][]float64, n)
	dhNext := make([]float64, H)
	dcNext := make([]float64, H)
	gatePre := make([]float64, 4*H)
	for t := n - 1; t >= 0; t-- {
		var cPrev []float64
		if t > 0 {
			cPrev = tr.c[t-1]
		} else {
			cPrev = make([]float64, H)
		}
		dhT := make([]float64, H)
		copy(dhT, dh[t])
		for j := 0; j < H; j++ {
			dhT[j] += dhNext[j]
		}
		for j := 0; j < H; j++ {
			o := tr.o[t][j]
			tc := tr.tanhc[t][j]
			dO := dhT[j] * tc
			dC := dhT[j]*o*(1-tc*tc) + dcNext[j]
			i, f, g := tr.i[t][j], tr.f[t][j], tr.g[t][j]
			dI := dC * g
			dF := dC * cPrev[j]
			dG := dC * i
			dcNext[j] = dC * f
			gatePre[j] = dI * i * (1 - i)
			gatePre[H+j] = dF * f * (1 - f)
			gatePre[2*H+j] = dG * (1 - g*g)
			gatePre[3*H+j] = dO * o * (1 - o)
		}
		// Parameter gradients and dz.
		dz := make([]float64, D+H)
		z := tr.zs[t]
		for r := 0; r < 4*H; r++ {
			gp := gatePre[r]
			if gp == 0 {
				continue
			}
			wRow, gRow := l.w.row(r)
			for k := range z {
				gRow[k] += gp * z[k]
				dz[k] += gp * wRow[k]
			}
			l.b.g[r] += gp
		}
		dxs[t] = dz[:D:D]
		copy(dhNext, dz[D:])
	}
	return dxs
}

func tanh(x float64) float64 { return math.Tanh(x) }
