package neural

import (
	"math"
	"testing"

	"repro/internal/corpus"
	"repro/internal/tokenize"
)

func toySentence(text string, tags []corpus.Tag) *corpus.Sentence {
	return &corpus.Sentence{Text: text, Tokens: tokenize.Sentence(text), Tags: tags}
}

func toyCorpus() *corpus.Corpus {
	c := corpus.New()
	add := func(text string, tags ...corpus.Tag) {
		c.Sentences = append(c.Sentences, toySentence(text, tags))
	}
	B, I, O := corpus.B, corpus.I, corpus.O
	add("the GENEA gene", O, B, O)
	add("the GENEB gene", O, B, O)
	add("mutation of GENEA was found", O, O, B, O, O)
	add("mutation of GENEB was found", O, O, B, O, O)
	add("no genes appear here", O, O, O, O)
	add("the patient was treated", O, O, O, O)
	add("GENEA binds GENEB strongly", B, O, B, O)
	add("wilms tumor protein acts", B, I, I, O)
	_ = I
	return c
}

func tinyConfig(arch Arch) TaggerConfig {
	return TaggerConfig{
		Arch: arch, WordDim: 8, Hidden: 6, CharHidden: 4,
		Epochs: 60, Rate: 0.02, MinCount: 1, Seed: 3,
	}
}

func TestGradientFiniteDifference(t *testing.T) {
	for _, arch := range []Arch{LSTMCRF, CharAttention} {
		cfg := tinyConfig(arch)
		cfg.Epochs = 0 // just build
		tg, err := TrainTagger(toyCorpus(), nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s := toySentence("the GENEA gene", []corpus.Tag{corpus.O, corpus.B, corpus.O})

		tg.st.zeroGrads()
		loss0, _ := tg.lossAndGrad(s)
		grads := append([]float64(nil), tg.st.grads...)

		const h = 1e-6
		checked := 0
		for i := 0; i < len(tg.st.params); i += 17 { // sample coordinates
			old := tg.st.params[i]
			tg.st.params[i] = old + h
			tg.st.zeroGrads()
			lossP, _ := tg.lossAndGrad(s)
			tg.st.params[i] = old
			num := (lossP - loss0) / h
			if math.Abs(num-grads[i]) > 1e-3*(1+math.Abs(num)) {
				t.Errorf("%v: grad[%d] = %g, finite diff %g", arch, i, grads[i], num)
			}
			checked++
		}
		if checked < 10 {
			t.Fatalf("only checked %d coordinates", checked)
		}
	}
}

func TestTrainingFitsToyData(t *testing.T) {
	for _, arch := range []Arch{LSTMCRF, CharAttention} {
		c := toyCorpus()
		tg, err := TrainTagger(c, nil, tinyConfig(arch))
		if err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		correct, total := 0, 0
		for _, s := range c.Sentences {
			got := tg.Tag(s)
			for i := range got {
				if got[i] == s.Tags[i] {
					correct++
				}
				total++
			}
		}
		acc := float64(correct) / float64(total)
		if acc < 0.95 {
			t.Errorf("%v: training accuracy %.2f, want ≥ 0.95", arch, acc)
		}
	}
}

func TestCharVariantGeneralizesToUnseenSurfaces(t *testing.T) {
	// The char-attention model should recognize an unseen gene-like
	// surface ("GENEC") from its character shape; train surfaces GENEA,
	// GENEB share the GENE- prefix.
	c := toyCorpus()
	tg, err := TrainTagger(c, nil, tinyConfig(CharAttention))
	if err != nil {
		t.Fatal(err)
	}
	s := toySentence("mutation of GENEC was found", nil)
	got := tg.Tag(s)
	if got[2] != corpus.B {
		t.Logf("char model tagged unseen surface as %v (tags %v) — acceptable but weak", got[2], got)
	}
	// At minimum, the context words must be O.
	if got[0] != corpus.O || got[4] != corpus.O {
		t.Errorf("context words mistagged: %v", got)
	}
}

func TestWordDropout(t *testing.T) {
	// With dropout 1.0 every training token is <UNK>; the model must still
	// train (context/char signal only) and tag without error.
	cfg := tinyConfig(CharAttention)
	cfg.WordDropout = 1.0
	cfg.Epochs = 5
	tg, err := TrainTagger(toyCorpus(), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := tg.Tag(toySentence("the GENEA gene", nil))
	if len(got) != 3 {
		t.Fatalf("tags = %v", got)
	}
	// Moderate dropout must leave results deterministic under a fixed seed.
	cfg2 := tinyConfig(LSTMCRF)
	cfg2.WordDropout = 0.2
	cfg2.Epochs = 3
	a, err := TrainTagger(toyCorpus(), nil, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainTagger(toyCorpus(), nil, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	s := toySentence("mutation of GENEB was found", nil)
	ta, tb := a.Tag(s), b.Tag(s)
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatal("dropout broke determinism under fixed seed")
		}
	}
}

func TestDevEarlyStoppingSelectsBest(t *testing.T) {
	c := toyCorpus()
	dev := corpus.New()
	dev.Sentences = c.Sentences[:3]
	var epochs int
	cfg := tinyConfig(LSTMCRF)
	cfg.Progress = func(e int, loss, devF1 float64) { epochs = e + 1 }
	tg, err := TrainTagger(c, dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if epochs != cfg.Epochs {
		t.Errorf("ran %d epochs, want %d", epochs, cfg.Epochs)
	}
	if tg.tokenAccuracy(dev) < 0.9 {
		t.Error("dev accuracy after early stopping too low")
	}
}

func TestTrainValidationErrors(t *testing.T) {
	if _, err := TrainTagger(corpus.New(), nil, TaggerConfig{}); err == nil {
		t.Error("want error for empty corpus")
	}
	c := corpus.New()
	c.Sentences = append(c.Sentences, toySentence("unlabelled text", nil))
	if _, err := TrainTagger(c, nil, TaggerConfig{}); err == nil {
		t.Error("want error for unlabelled sentence")
	}
	cfg := TaggerConfig{Arch: CharAttention, WordDim: 10, CharHidden: 3, MinCount: 1}
	if _, err := TrainTagger(toyCorpus(), nil, cfg); err == nil {
		t.Error("want error for CharHidden != WordDim/2")
	}
}

func TestTagEmptySentence(t *testing.T) {
	tg, err := TrainTagger(toyCorpus(), nil, TaggerConfig{Epochs: 1, MinCount: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := tg.Tag(toySentence("", nil)); got != nil {
		t.Errorf("Tag(empty) = %v", got)
	}
}

func TestNormWord(t *testing.T) {
	cases := []struct{ in, want string }{
		{"1234", numToken},
		{"12a", "12a"},
		{"The", "the"},
		{"GENEA", "genea"},
	}
	for _, c := range cases {
		if got := normWord(c.in); got != c.want {
			t.Errorf("normWord(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNumParameters(t *testing.T) {
	tg, err := TrainTagger(toyCorpus(), nil, TaggerConfig{Epochs: 0, MinCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tg.NumParameters() == 0 {
		t.Error("no parameters")
	}
	tg2, err := TrainTagger(toyCorpus(), nil, TaggerConfig{Arch: CharAttention, Epochs: 0, MinCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tg2.NumParameters() <= tg.NumParameters() {
		t.Error("char variant should have more parameters")
	}
}

func TestCRFLayerDecodeRespectsTransitions(t *testing.T) {
	st := &store{}
	st.reserve(numTags*numTags + numTags)
	l := newCRFLayer(st)
	// Make O→B very unfavorable; with neutral emissions the decoder should
	// avoid B after O.
	l.trans.w[int(corpus.O)*numTags+int(corpus.B)] = -10
	emit := [][]float64{{0, 0, 0.1}, {0.05, 0, 0}}
	tags := l.Decode(emit)
	if tags[0] == corpus.O && tags[1] == corpus.B {
		t.Errorf("decoder ignored transition penalty: %v", tags)
	}
	if l.Decode(nil) != nil {
		t.Error("Decode(empty) != nil")
	}
}

func BenchmarkLossAndGrad(b *testing.B) {
	tg, err := TrainTagger(toyCorpus(), nil, TaggerConfig{Epochs: 0, MinCount: 1, WordDim: 32, Hidden: 32})
	if err != nil {
		b.Fatal(err)
	}
	s := toySentence("mutation of GENEA was found", []corpus.Tag{corpus.O, corpus.O, corpus.B, corpus.O, corpus.O})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tg.st.zeroGrads()
		tg.lossAndGrad(s)
	}
}
