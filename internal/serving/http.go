package serving

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"repro/internal/corpus"
)

// TagRequest is the POST /tag body: sentences to label plus an optional
// per-request deadline in milliseconds (0 applies the server default).
type TagRequest struct {
	Sentences  []string `json:"sentences"`
	DeadlineMS int64    `json:"deadline_ms,omitempty"`
}

// TagResponse is the POST /tag reply. Tags[i] holds sentence i's BIO
// labels ("B"/"I"/"O", one per token); Errors[i] is the empty string on
// success or the per-sentence shedding/validation error.
type TagResponse struct {
	Tags   [][]string `json:"tags"`
	Errors []string   `json:"errors,omitempty"`
}

// maxTagBody bounds a /tag request body (defense against unbounded
// reads, not a protocol limit).
const maxTagBody = 8 << 20

// Handler returns the HTTP front end:
//
//	POST /tag      JSON TagRequest → TagResponse (200 even when
//	               individual sentences were shed — inspect Errors)
//	GET  /healthz  200 "ok" while the server accepts requests
//	GET  /statusz  JSON Stats counters
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/tag", s.handleTag)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/statusz", s.handleStatus)
	return mux
}

func (s *Server) handleTag(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req TagRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxTagBody)).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	var deadline time.Time
	if req.DeadlineMS > 0 {
		deadline = time.Now().Add(time.Duration(req.DeadlineMS) * time.Millisecond)
	}
	resp := TagResponse{Tags: make([][]string, len(req.Sentences))}
	anyErr := false
	for i, text := range req.Sentences {
		tags, err := s.tagWithDeadline(text, deadline)
		if err != nil {
			anyErr = true
			resp.Errors = append(resp.Errors, err.Error())
			continue
		}
		resp.Errors = append(resp.Errors, "")
		out := make([]string, len(tags))
		for j, t := range tags {
			out[j] = t.String()
		}
		resp.Tags[i] = out
	}
	if !anyErr {
		resp.Errors = nil
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(&resp); err != nil {
		// The status line is already written; nothing to recover.
		_ = err
	}
}

// tagWithDeadline is Tag with an explicit deadline (zero → server
// default).
func (s *Server) tagWithDeadline(text string, deadline time.Time) ([]corpus.Tag, error) {
	tags := make([]corpus.Tag, 64)
	for {
		n, err := s.TagInto(text, deadline, tags)
		if err == ErrShortBuffer {
			tags = make([]corpus.Tag, n)
			continue
		}
		if err != nil {
			return nil, err
		}
		return tags[:n], nil
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.submitMu.RLock()
	closed := s.closed
	s.submitMu.RUnlock()
	if closed {
		http.Error(w, "closed", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	st := s.Stats()
	if err := json.NewEncoder(w).Encode(&st); err != nil {
		_ = err
	}
}

// ServeLine answers the newline-delimited protocol on l until the
// listener closes: each request line is one raw sentence; the reply line
// is the space-separated BIO tags ("B I O …", empty line for an empty
// sentence) or "ERR <message>" when the request was shed or failed.
// Connections are handled concurrently; lines within one connection are
// answered in order.
func (s *Server) ServeLine(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.serveConn(conn, s.done)
	}
}

// serveConn answers one line-protocol connection. A close of done (server
// shutdown) closes the conn, unblocking the read loop so the goroutine
// exits promptly instead of lingering on an idle client.
func (s *Server) serveConn(conn net.Conn, done <-chan struct{}) {
	defer conn.Close() // lint:checked errdrop: connection teardown; there is no caller to surface a close error to
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-done:
			conn.Close() // lint:checked errdrop: shutdown path; closing only to unblock the read loop
		case <-stop:
		}
	}()
	in := bufio.NewScanner(conn)
	in.Buffer(make([]byte, 0, 64<<10), 1<<20)
	out := bufio.NewWriter(conn)
	for in.Scan() {
		tags, err := s.Tag(in.Text())
		if err != nil {
			fmt.Fprintf(out, "ERR %v\n", err)
		} else {
			for j, t := range tags {
				if j > 0 {
					out.WriteByte(' ') // lint:checked errdrop: bufio errors are sticky; the Flush check below surfaces them
				}
				out.WriteString(t.String()) // lint:checked errdrop: bufio errors are sticky; the Flush check below surfaces them
			}
			out.WriteByte('\n') // lint:checked errdrop: bufio errors are sticky; the Flush check below surfaces them
		}
		if err := out.Flush(); err != nil {
			return
		}
	}
}
