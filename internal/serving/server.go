package serving

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/corpus"
	"repro/internal/features"
	"repro/internal/graph"
	"repro/internal/graphner"
	"repro/internal/tokenize"
)

// Sentinel errors the request path returns. ErrOverloaded and
// ErrDeadlineExceeded are load-shedding outcomes, not failures: the
// server stayed healthy and told the caller to back off.
var (
	ErrOverloaded       = errors.New("serving: request queue full")
	ErrDeadlineExceeded = errors.New("serving: deadline exceeded")
	ErrClosed           = errors.New("serving: server closed")
)

// Config parameterizes a Server.
type Config struct {
	// Workers is the number of batch workers (default GOMAXPROCS). Each
	// owns a Scratch — a compiled-sentence cache plus flat buffers — so
	// memory scales linearly with it.
	Workers int
	// BatchMax caps how many queued requests one worker coalesces into a
	// shared batch (default 32).
	BatchMax int
	// BatchWait is how long a worker holding a non-full batch lingers
	// for more requests before running it. Zero (the default) runs
	// whatever a non-blocking queue drain yields — lowest latency; a few
	// hundred microseconds trades latency for fuller batches.
	BatchWait time.Duration
	// QueueDepth bounds the shared request queue; submissions beyond it
	// fail fast with ErrOverloaded (default 4×Workers×BatchMax).
	QueueDepth int
	// Deadline is the default per-request deadline applied when the
	// caller does not supply one; zero means no default deadline.
	Deadline time.Duration
	// CacheCap bounds each worker's compiled-sentence cache (default
	// 4096 sentences).
	CacheCap int
	// Extractor must match the artifact's training-time feature
	// configuration; nil means the plain BANNER-style extractor.
	Extractor *features.Extractor
	// Stream enables folding served traffic back into the similarity
	// graph; nil serves the frozen artifact state forever.
	Stream *StreamConfig
}

// StreamConfig configures the optional background fold-in of unlabelled
// traffic via graph.Updater + graphner.Streamer. Enabling it replaces the
// artifact's fixed-sweep beliefs with converged-propagation beliefs (the
// streamer's warm-start contract), so served tags may differ from the
// frozen System.Test output within the propagation tolerance.
type StreamConfig struct {
	// BatchSize is how many distinct served sentences accumulate before
	// a background fold-in runs (default 256).
	BatchSize int
	// MaxBuffered bounds the fold-in buffer; beyond it, new sentences
	// are dropped (never blocking the serving path) until the next
	// fold-in drains the buffer (default 4×BatchSize).
	MaxBuffered int
}

// result is what a worker reports back to the submitting goroutine.
type result struct {
	n   int
	err error
}

// request is one queued tagging request. Instances are pooled; the done
// channel (capacity 1) always receives exactly one result, so a pooled
// request is never abandoned mid-flight.
type request struct {
	text     string
	deadline time.Time
	tags     []corpus.Tag
	done     chan result
}

// Server coalesces concurrent tagging requests into shared per-worker
// batches over one frozen Artifact. Submissions enqueue onto a bounded
// queue; each worker drains a batch, sheds requests whose deadline
// already passed, and answers the rest from its private Scratch. A warm
// request — sentence cached, queue uncontended — completes without heap
// allocations.
type Server struct {
	cfg    Config
	tagger *Tagger
	queue  chan *request
	done   chan struct{}
	wg     sync.WaitGroup

	// submitMu makes shutdown airtight: submitters hold it shared
	// around the closed-check + enqueue, Close holds it exclusively
	// while flipping closed, so no request can enter the queue after
	// the final drain.
	submitMu sync.RWMutex
	closed   bool

	reqPool sync.Pool

	served     atomic.Int64
	shed       atomic.Int64
	overloaded atomic.Int64
	batches    atomic.Int64
	folds      atomic.Int64

	streamMu  sync.Mutex
	streamBuf []string
	streamer  *graphner.Streamer
	folding   atomic.Bool
	foldWG    sync.WaitGroup
}

// NewServer builds and starts a server over the artifact. When
// cfg.Stream is set, the constructor runs the streamer's initial
// transductive pass (train ∪ frozen), which costs a full TEST; without
// streaming, start-up is just the decoder table.
func NewServer(art *graphner.Artifact, cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = 32
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers * cfg.BatchMax
	}
	if cfg.CacheCap <= 0 {
		cfg.CacheCap = defaultCacheCap
	}
	tagger, err := NewTagger(art, cfg.Extractor, cfg.CacheCap)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:    cfg,
		tagger: tagger,
		queue:  make(chan *request, cfg.QueueDepth),
		done:   make(chan struct{}),
	}
	s.reqPool.New = func() any { return &request{done: make(chan result, 1)} }
	if cfg.Stream != nil {
		if cfg.Stream.BatchSize <= 0 {
			cfg.Stream.BatchSize = 256
		}
		if cfg.Stream.MaxBuffered <= 0 {
			cfg.Stream.MaxBuffered = 4 * cfg.Stream.BatchSize
		}
		s.cfg.Stream = cfg.Stream
		sys, err := art.System(cfg.Extractor)
		if err != nil {
			return nil, fmt.Errorf("serving: stream mode: %w", err)
		}
		st, err := graphner.NewStreamer(sys, art.FrozenCorpus())
		if err != nil {
			return nil, fmt.Errorf("serving: stream mode: %w", err)
		}
		s.streamer = st
		// Serve from the streamer's converged state from the start so
		// fold-ins only ever move beliefs by what the new data changed.
		if err := tagger.Swap(func() (*graph.Graph, []float64, error) {
			return st.Graph(), st.VertexBeliefs(), nil
		}); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.worker()
		}()
	}
	return s, nil
}

// Tagger exposes the underlying tagger (tests and benchmarks).
func (s *Server) Tagger() *Tagger { return s.tagger }

// TagInto submits one sentence and blocks until a worker answers,
// writing the BIO tags into tags and returning the token count. A zero
// deadline applies the configured default. Shed outcomes return
// ErrOverloaded (queue full at submit) or ErrDeadlineExceeded (deadline
// passed before a worker reached the request). A too-small tags buffer
// returns the required count with ErrShortBuffer.
func (s *Server) TagInto(text string, deadline time.Time, tags []corpus.Tag) (int, error) {
	if deadline.IsZero() && s.cfg.Deadline > 0 {
		deadline = time.Now().Add(s.cfg.Deadline)
	}
	req := s.reqPool.Get().(*request)
	req.text, req.deadline, req.tags = text, deadline, tags
	// Single release point for every path: the shed branches return before
	// a worker ever sees req, and the success path has already drained
	// req.done, so the pool never receives a request with a pending result.
	defer s.release(req)

	s.submitMu.RLock()
	if s.closed {
		s.submitMu.RUnlock()
		return 0, ErrClosed
	}
	select {
	case s.queue <- req:
		s.submitMu.RUnlock()
	default:
		s.submitMu.RUnlock()
		s.overloaded.Add(1)
		return 0, ErrOverloaded
	}

	res := <-req.done
	return res.n, res.err
}

// Tag is the allocating convenience wrapper around TagInto.
func (s *Server) Tag(text string) ([]corpus.Tag, error) {
	tags := make([]corpus.Tag, 64)
	for {
		n, err := s.TagInto(text, time.Time{}, tags)
		if err == ErrShortBuffer {
			tags = make([]corpus.Tag, n)
			continue
		}
		if err != nil {
			return nil, err
		}
		return tags[:n], nil
	}
}

// release scrubs and pools a request whose done channel is known empty.
func (s *Server) release(req *request) {
	req.text, req.tags, req.deadline = "", nil, time.Time{}
	s.reqPool.Put(req)
}

// worker drains coalesced batches until shutdown. The spawn site holds
// the s.wg.Done obligation.
func (s *Server) worker() {
	sc := s.tagger.NewScratch()
	batch := make([]*request, 0, s.cfg.BatchMax)
	var linger *time.Timer
	if s.cfg.BatchWait > 0 {
		linger = time.NewTimer(s.cfg.BatchWait)
		if !linger.Stop() {
			<-linger.C
		}
	}
	for {
		select {
		case <-s.done:
			return
		case req := <-s.queue:
			batch = append(batch[:0], req)
			s.fill(&batch, linger)
			s.runBatch(sc, batch)
		}
	}
}

// fill coalesces queued requests into batch up to BatchMax: first a
// non-blocking drain, then (when configured) one bounded linger for
// stragglers so lightly loaded servers still form batches.
func (s *Server) fill(batch *[]*request, linger *time.Timer) {
drain:
	for len(*batch) < s.cfg.BatchMax {
		select {
		case req := <-s.queue:
			*batch = append(*batch, req)
		default:
			break drain
		}
	}
	if linger == nil || len(*batch) >= s.cfg.BatchMax {
		return
	}
	linger.Reset(s.cfg.BatchWait)
	for len(*batch) < s.cfg.BatchMax {
		select {
		case req := <-s.queue:
			*batch = append(*batch, req)
		case <-linger.C:
			return
		case <-s.done:
			if !linger.Stop() {
				<-linger.C
			}
			return
		}
	}
	if !linger.Stop() {
		<-linger.C
	}
}

// runBatch answers every request in the batch: deadline-shed the stale
// ones, tag the rest from this worker's Scratch. Every request receives
// exactly one result.
func (s *Server) runBatch(sc *Scratch, batch []*request) {
	for _, req := range batch {
		if !req.deadline.IsZero() && time.Now().After(req.deadline) {
			s.shed.Add(1)
			req.done <- result{err: ErrDeadlineExceeded}
			continue
		}
		n, err := s.tagger.TagInto(sc, req.text, req.tags)
		if err == nil {
			s.served.Add(1)
			if s.cfg.Stream != nil {
				s.observe(req.text)
			}
		}
		req.done <- result{n: n, err: err}
	}
	s.batches.Add(1)
}

// observe buffers a served sentence for the next background fold-in,
// dropping (never blocking) when the buffer is at its bound, and kicks
// off a fold-in when the batch threshold is reached.
func (s *Server) observe(text string) {
	st := s.cfg.Stream
	s.streamMu.Lock()
	if len(s.streamBuf) < st.MaxBuffered {
		s.streamBuf = append(s.streamBuf, text)
	}
	ready := len(s.streamBuf) >= st.BatchSize
	s.streamMu.Unlock()
	if ready && s.folding.CompareAndSwap(false, true) {
		s.foldWG.Add(1)
		go s.fold()
	}
}

// fold drains the stream buffer and folds it into the graph under the
// tagger's exclusive lock: incremental graph maintenance plus warm-start
// propagation (graphner.Streamer), then a generation bump so workers
// re-resolve cached vertex ids.
func (s *Server) fold() {
	defer s.foldWG.Done()
	defer s.folding.Store(false)
	s.streamMu.Lock()
	texts := s.streamBuf
	s.streamBuf = nil
	s.streamMu.Unlock()
	if len(texts) == 0 {
		return
	}
	batch := corpus.New()
	for i, text := range texts {
		batch.Sentences = append(batch.Sentences, &corpus.Sentence{
			ID:     fmt.Sprintf("stream-%d-%d", s.folds.Load(), i),
			Text:   text,
			Tokens: tokenize.Sentence(text),
		})
	}
	err := s.tagger.Swap(func() (*graph.Graph, []float64, error) {
		if _, err := s.streamer.AddUnlabelled(batch); err != nil {
			return nil, nil, err
		}
		return s.streamer.Graph(), s.streamer.VertexBeliefs(), nil
	})
	if err == nil {
		s.folds.Add(1)
	}
}

// Stats is a snapshot of the serving counters.
type Stats struct {
	// Served counts successfully answered requests; Shed counts
	// deadline-expired ones; Overloaded counts submissions rejected at
	// a full queue; Batches counts coalesced worker batches; Folds
	// counts completed streaming fold-ins.
	Served, Shed, Overloaded, Batches, Folds int64
}

// Stats returns the current counters.
func (s *Server) Stats() Stats {
	return Stats{
		Served:     s.served.Load(),
		Shed:       s.shed.Load(),
		Overloaded: s.overloaded.Load(),
		Batches:    s.batches.Load(),
		Folds:      s.folds.Load(),
	}
}

// Close shuts the server down: new submissions fail with ErrClosed,
// workers exit, in-flight fold-ins finish, and every request still queued
// is answered with ErrClosed. Close is idempotent.
func (s *Server) Close() {
	s.submitMu.Lock()
	if s.closed {
		s.submitMu.Unlock()
		return
	}
	s.closed = true
	s.submitMu.Unlock()
	close(s.done)
	s.wg.Wait()
	s.foldWG.Wait()
	for {
		select {
		case req := <-s.queue:
			req.done <- result{err: ErrClosed}
		default:
			return
		}
	}
}
