// Package serving hosts the long-lived tagging service built on a frozen
// graphner.Artifact: a request-coalescing batch server (Server) over an
// allocation-free per-sentence inference core (Tagger). The served labels
// are bit-identical to System.Test's for any sentence of the frozen
// corpus — the same α·P_s + (1−α)·X mixture decoded by the same tempered
// Viterbi, just with caller-owned buffers and precomputed tables.
package serving

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/corpus"
	"repro/internal/crf"
	"repro/internal/features"
	"repro/internal/graph"
	"repro/internal/graphner"
	"repro/internal/tokenize"
)

// ErrShortBuffer reports a tag buffer smaller than the sentence's token
// count. TagInto still returns the required count, so callers grow the
// buffer and retry.
var ErrShortBuffer = errors.New("serving: tag buffer too small")

// Tagger answers single-sentence tagging queries against a frozen
// artifact. All mutable per-request state lives in a Scratch, which is
// owned by exactly one worker at a time: a warm TagInto call — sentence
// already compiled, graph generation unchanged — performs zero heap
// allocations. The graph and belief state may be swapped atomically
// (Swap) for the streaming fold-in path; reads take the lock shared.
type Tagger struct {
	model    *crf.Model
	compiler *crf.Compiler
	decoder  *crf.PotentialDecoder
	alpha    float64

	// mu guards g, beliefs and generation. Request workers hold it
	// shared for the combine step; Swap holds it exclusively while the
	// streaming updater mutates the graph in place.
	mu         sync.RWMutex
	g          *graph.Graph
	beliefs    []float64
	generation uint64

	cacheCap int
}

// defaultCacheCap bounds the per-worker compiled-sentence cache when the
// configuration does not say otherwise.
const defaultCacheCap = 4096

// NewTagger builds a Tagger over the artifact's frozen model, alphabet,
// graph and beliefs. extractor must match the training-time feature
// configuration (nil means the plain BANNER-style extractor). cacheCap
// bounds each worker's compiled-sentence cache (0 means a default).
func NewTagger(art *graphner.Artifact, extractor *features.Extractor, cacheCap int) (*Tagger, error) {
	if art.Model() == nil {
		return nil, fmt.Errorf("serving: artifact has no model")
	}
	cfg := art.Config()
	dec, err := crf.NewPotentialDecoder(art.Transitions(), art.Model().BIO, cfg.TransitionPower)
	if err != nil {
		return nil, fmt.Errorf("serving: %w", err)
	}
	if cacheCap <= 0 {
		cacheCap = defaultCacheCap
	}
	return &Tagger{
		model:    art.Model(),
		compiler: art.NewCompiler(extractor),
		decoder:  dec,
		alpha:    cfg.Alpha,
		g:        art.Graph(),
		beliefs:  art.Beliefs(),
		cacheCap: cacheCap,
	}, nil
}

// Swap atomically replaces the graph/belief state: update runs under the
// exclusive lock (so it may mutate the current graph in place, as the
// streaming updater does) and returns the state to serve from next. The
// generation counter invalidates every cached vertex-id table.
func (t *Tagger) Swap(update func() (*graph.Graph, []float64, error)) error {
	t.mu.Lock()
	g, x, err := update()
	if err == nil {
		t.g, t.beliefs = g, x
		t.generation++
	}
	t.mu.Unlock()
	return err
}

// Generation returns the current graph/belief generation (starts at 0,
// incremented by every successful Swap).
func (t *Tagger) Generation() uint64 {
	t.mu.RLock()
	gen := t.generation
	t.mu.RUnlock()
	return gen
}

// cachedSentence is one compiled request: the feature-compiled instance
// plus the per-position graph vertex ids, valid for generation
// (genUnresolved until the first combine resolves them under the read
// lock).
type cachedSentence struct {
	ins        *crf.Instance
	words      []string
	verts      []int32
	generation uint64
}

// genUnresolved marks a cache entry whose vertex ids have not been
// resolved against any graph generation yet. Generations count up from
// zero, so the sentinel is unreachable.
const genUnresolved = ^uint64(0)

// Scratch is the per-worker request state: the compiled-sentence cache
// and the flat posterior/combined-potential buffers. A Scratch must not
// be used concurrently; each server worker owns one.
type Scratch struct {
	t     *Tagger
	cache map[string]*cachedSentence
	post  []float64 // flat CRF posteriors P_s
	comb  []float64 // flat combined potentials P'_s
}

// NewScratch creates worker-local request state.
func (t *Tagger) NewScratch() *Scratch {
	return &Scratch{t: t, cache: make(map[string]*cachedSentence, t.cacheCap)}
}

// compiled returns the cached compilation of text, compiling (and
// evicting wholesale at the cap) on miss.
func (sc *Scratch) compiled(text string) *cachedSentence {
	if ent, ok := sc.cache[text]; ok {
		return ent
	}
	if len(sc.cache) >= sc.t.cacheCap {
		clear(sc.cache)
	}
	sent := &corpus.Sentence{Text: text, Tokens: tokenize.Sentence(text)}
	words := sent.Words()
	ent := &cachedSentence{
		ins:        sc.t.compiler.CompileSentence(sent),
		words:      words,
		verts:      make([]int32, len(words)),
		generation: genUnresolved,
	}
	sc.cache[text] = ent
	return ent
}

// grow ensures both flat buffers hold n values.
//
//graphner:noalloc capacity-guarded growth is justified below; warm requests reuse the buffers
func (sc *Scratch) grow(n int) {
	if cap(sc.post) < n {
		sc.post = make([]float64, n) // lint:checked noalloc: capacity-guarded growth on first sight of a longer sentence; TestServingAllocGuard pins warm requests at zero
		sc.comb = make([]float64, n) // lint:checked noalloc: grown together with post above
	}
	sc.post = sc.post[:n]
	sc.comb = sc.comb[:n]
}

// TagInto labels one sentence, writing the BIO tags into tags and
// returning the token count. If tags is too small the count is returned
// with ErrShortBuffer and nothing is written. sc must be this worker's
// Scratch. The pipeline is Algorithm 1 lines 8-9 against the frozen
// state: CRF posteriors, mixture with the propagated vertex beliefs
// (positions whose 3-gram is not a graph vertex keep the raw posterior),
// tempered Viterbi. This is the serving warm request path: on a cache
// hit with resolved vertices it allocates nothing (TestServingAllocGuard
// measures it, the contract linter proves it).
//
//graphner:noalloc warm path; cache misses and generation re-resolution are justified inline
func (t *Tagger) TagInto(sc *Scratch, text string, tags []corpus.Tag) (int, error) {
	const Y = corpus.NumTags
	ent := sc.compiled(text) // lint:checked noalloc: warm requests hit the compiled-sentence cache; a miss compiles once and is amortized by reuse
	n := ent.ins.Len()
	if n == 0 {
		return 0, nil
	}
	if len(tags) < n {
		return n, ErrShortBuffer
	}
	sc.grow(n * Y)
	if err := t.model.PosteriorsInto(ent.ins, sc.post); err != nil {
		return n, err
	}

	t.mu.RLock()
	if ent.generation != t.generation {
		for i := range ent.words {
			ent.verts[i] = int32(t.g.Lookup(corpus.Trigram(ent.words, i))) // lint:checked noalloc: trigram keys are rebuilt only once per graph swap per cached sentence, not per request
		}
		ent.generation = t.generation
	}
	for i := 0; i < n; i++ {
		row := i * Y
		if v := ent.verts[i]; v >= 0 {
			b := int(v) * Y
			for y := 0; y < Y; y++ {
				sc.comb[row+y] = t.alpha*sc.post[row+y] + (1-t.alpha)*t.beliefs[b+y]
			}
		} else {
			copy(sc.comb[row:row+Y], sc.post[row:row+Y])
		}
	}
	t.mu.RUnlock()

	if err := t.decoder.DecodeFlat(sc.comb, n, tags); err != nil {
		return n, err
	}
	return n, nil
}
