package serving

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/corpus/synth"
	"repro/internal/crf"
	"repro/internal/graphner"
	"repro/internal/race"
)

// testArtifact trains a small system, freezes it over its test split, and
// round-trips the artifact through its binary form — so every serving
// test runs against bytes a production server would load. Cached: the
// training run dominates the package's test time.
var artifactOnce struct {
	sync.Once
	art  *graphner.Artifact
	test *corpus.Corpus
	tags [][]corpus.Tag
	err  error
}

func testArtifact(t *testing.T) (*graphner.Artifact, *corpus.Corpus, [][]corpus.Tag) {
	t.Helper()
	artifactOnce.Do(func() {
		fail := func(err error) { artifactOnce.err = err }
		cfg := synth.DefaultConfig(synth.AML, 37)
		cfg.Sentences = 160
		train, test := synth.GenerateSplit(cfg)
		gcfg := graphner.Default()
		gcfg.Order = crf.Order1
		gcfg.CRFIterations = 20
		sys, err := graphner.Train(train, gcfg)
		if err != nil {
			fail(err)
			return
		}
		out, err := sys.Test(test)
		if err != nil {
			fail(err)
			return
		}
		art, err := sys.Freeze(test, out)
		if err != nil {
			fail(err)
			return
		}
		var buf bytes.Buffer
		if _, err := art.WriteTo(&buf); err != nil {
			fail(err)
			return
		}
		loaded, err := graphner.ReadArtifact(bytes.NewReader(buf.Bytes()))
		if err != nil {
			fail(err)
			return
		}
		artifactOnce.art, artifactOnce.test, artifactOnce.tags = loaded, test, out.Tags
	})
	if artifactOnce.err != nil {
		t.Fatal(artifactOnce.err)
	}
	return artifactOnce.art, artifactOnce.test, artifactOnce.tags
}

// TestServingGolden is the end-to-end identity check: every frozen
// sentence served through the batching server gets exactly the labels
// System.Test produced before freezing.
func TestServingGolden(t *testing.T) {
	art, test, want := testArtifact(t)
	s, err := NewServer(art, Config{Workers: 2, BatchMax: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i, sent := range test.Sentences {
		got, err := s.Tag(sent.Text)
		if err != nil {
			t.Fatalf("sentence %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("sentence %d (%q): served %v, System.Test produced %v",
				i, sent.Text, got, want[i])
		}
	}
	if st := s.Stats(); st.Served != int64(len(test.Sentences)) {
		t.Errorf("Served = %d, want %d", st.Served, len(test.Sentences))
	}
}

// TestServingConcurrent hammers the server from many goroutines and
// checks every response against the golden labels — exercising batch
// coalescing under real contention.
func TestServingConcurrent(t *testing.T) {
	art, test, want := testArtifact(t)
	s, err := NewServer(art, Config{Workers: 4, BatchMax: 8, BatchWait: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < len(test.Sentences); i += clients {
				got, err := s.Tag(test.Sentences[i].Text)
				if err != nil {
					errs <- fmt.Errorf("sentence %d: %w", i, err)
					return
				}
				if !reflect.DeepEqual(got, want[i]) {
					errs <- fmt.Errorf("sentence %d served wrong labels", i)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := s.Stats(); st.Batches <= 0 {
		t.Error("no batches recorded")
	}
}

func TestServingShortBuffer(t *testing.T) {
	art, test, _ := testArtifact(t)
	s, err := NewServer(art, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	text := test.Sentences[0].Text
	n, err := s.TagInto(text, time.Time{}, nil)
	if err != ErrShortBuffer {
		t.Fatalf("nil buffer: err = %v, want ErrShortBuffer", err)
	}
	if n <= 0 {
		t.Fatalf("required count = %d, want positive", n)
	}
	tags := make([]corpus.Tag, n)
	if _, err := s.TagInto(text, time.Time{}, tags); err != nil {
		t.Fatal(err)
	}
}

// TestServingDeadline: a request whose deadline already passed is shed
// with ErrDeadlineExceeded, and the shed counter moves.
func TestServingDeadline(t *testing.T) {
	art, test, _ := testArtifact(t)
	s, err := NewServer(art, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	past := time.Now().Add(-time.Second)
	tags := make([]corpus.Tag, 64)
	if _, err := s.TagInto(test.Sentences[0].Text, past, tags); err != ErrDeadlineExceeded {
		t.Fatalf("expired deadline: err = %v, want ErrDeadlineExceeded", err)
	}
	if st := s.Stats(); st.Shed != 1 {
		t.Errorf("Shed = %d, want 1", st.Shed)
	}
	// A sane deadline still succeeds.
	if _, err := s.TagInto(test.Sentences[0].Text, time.Now().Add(5*time.Second), tags); err != nil {
		t.Fatal(err)
	}
}

// TestServingOverload fills the bounded queue of a worker-less server (a
// same-package construction) and checks fast-fail shedding.
func TestServingOverload(t *testing.T) {
	art, test, _ := testArtifact(t)
	s, err := NewServer(art, Config{Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Stop the workers but keep the queue: requests enqueued now are
	// only drained by Close.
	close(s.done)
	s.wg.Wait()

	tags := make([]corpus.Tag, 64)
	var wg sync.WaitGroup
	wg.Add(1)
	queued := make(chan error, 1)
	go func() {
		defer wg.Done()
		_, err := s.TagInto(test.Sentences[0].Text, time.Time{}, tags)
		queued <- err
	}()
	// Wait until the queue holds the first request, then overflow it.
	for len(s.queue) == 0 {
		time.Sleep(time.Millisecond)
	}
	if _, err := s.TagInto(test.Sentences[0].Text, time.Time{}, make([]corpus.Tag, 64)); err != ErrOverloaded {
		t.Fatalf("full queue: err = %v, want ErrOverloaded", err)
	}
	if st := s.Stats(); st.Overloaded != 1 {
		t.Errorf("Overloaded = %d, want 1", st.Overloaded)
	}

	// Close answers the still-queued request with ErrClosed.
	s.closeQueueOnly()
	if err := <-queued; err != ErrClosed {
		t.Errorf("queued request at close: err = %v, want ErrClosed", err)
	}
	wg.Wait()
	if _, err := s.TagInto(test.Sentences[0].Text, time.Time{}, tags); err != ErrClosed {
		t.Errorf("submit after close: err = %v, want ErrClosed", err)
	}
}

// closeQueueOnly is Close for a server whose done channel is already
// closed (test-only).
func (s *Server) closeQueueOnly() {
	s.submitMu.Lock()
	s.closed = true
	s.submitMu.Unlock()
	s.wg.Wait()
	s.foldWG.Wait()
	for {
		select {
		case req := <-s.queue:
			req.done <- result{err: ErrClosed}
		default:
			return
		}
	}
}

// TestServingStream enables the fold-in path: after enough distinct
// sentences are served, a background fold runs, the graph generation
// advances, and the server keeps answering.
func TestServingStream(t *testing.T) {
	art, test, _ := testArtifact(t)
	s, err := NewServer(art, Config{
		Workers: 2,
		Stream:  &StreamConfig{BatchSize: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	gen0 := s.Tagger().Generation()
	for i := 0; i < 12; i++ {
		if _, err := s.Tag(test.Sentences[i%len(test.Sentences)].Text); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Folds == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no fold-in completed within 10s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if gen := s.Tagger().Generation(); gen <= gen0 {
		t.Errorf("generation = %d after fold, want > %d", gen, gen0)
	}
	// Serving continues against the folded state.
	for i := 0; i < len(test.Sentences); i++ {
		if _, err := s.Tag(test.Sentences[i].Text); err != nil {
			t.Fatalf("post-fold sentence %d: %v", i, err)
		}
	}
}

// TestServingAllocGuard locks in the zero-allocation warm path: with the
// sentence compiled and the pools warm, a full request through the
// server — submit, coalesce, posteriors, combine, decode, respond —
// allocates nothing.
func TestServingAllocGuard(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates; counts are only meaningful in normal builds")
	}
	art, test, _ := testArtifact(t)
	s, err := NewServer(art, Config{Workers: 1, BatchMax: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	texts := make([]string, 8)
	for i := range texts {
		texts[i] = test.Sentences[i].Text
	}
	tags := make([]corpus.Tag, 256)
	for _, text := range texts {
		if _, err := s.TagInto(text, time.Time{}, tags); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(300, func() {
		if _, err := s.TagInto(texts[i%len(texts)], time.Time{}, tags); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs > 0 {
		t.Fatalf("warm request allocates %.2f objects, want 0", allocs)
	}
}

// TestServingSmoke is the CI latency gate: in-process requests through
// the real server must keep p99 under a deliberately loose bound.
func TestServingSmoke(t *testing.T) {
	art, test, _ := testArtifact(t)
	s, err := NewServer(art, Config{BatchMax: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const clients = 4
	const perClient = 50
	durs := make([][]time.Duration, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tags := make([]corpus.Tag, 256)
			for i := 0; i < perClient; i++ {
				text := test.Sentences[(c*perClient+i)%len(test.Sentences)].Text
				start := time.Now()
				if _, err := s.TagInto(text, time.Time{}, tags); err != nil {
					t.Error(err)
					return
				}
				durs[c] = append(durs[c], time.Since(start))
			}
		}(c)
	}
	wg.Wait()
	var all []time.Duration
	for _, d := range durs {
		all = append(all, d...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	p99 := all[len(all)*99/100]
	// Loose: a warm request is microseconds; this catches order-of-
	// magnitude regressions without flaking on loaded CI machines.
	if p99 > 250*time.Millisecond {
		t.Fatalf("p99 = %v, want < 250ms", p99)
	}
}

func TestHTTPHandler(t *testing.T) {
	art, test, want := testArtifact(t)
	s, err := NewServer(art, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body, err := json.Marshal(TagRequest{Sentences: []string{
		test.Sentences[0].Text, test.Sentences[1].Text,
	}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+"/tag", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() // lint:checked errdrop: test teardown of the response read side
	if resp.StatusCode != 200 {
		t.Fatalf("POST /tag: status %d", resp.StatusCode)
	}
	var tr TagResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Tags) != 2 || tr.Errors != nil {
		t.Fatalf("response: %+v", tr)
	}
	for i := 0; i < 2; i++ {
		wantStr := make([]string, len(want[i]))
		for j, tag := range want[i] {
			wantStr[j] = tag.String()
		}
		if !reflect.DeepEqual(tr.Tags[i], wantStr) {
			t.Errorf("sentence %d: HTTP tags %v, want %v", i, tr.Tags[i], wantStr)
		}
	}

	health, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health.Body.Close() // lint:checked errdrop: test teardown of the response read side
	if health.StatusCode != 200 {
		t.Errorf("GET /healthz: status %d", health.StatusCode)
	}
	status, err := srv.Client().Get(srv.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(status.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	status.Body.Close() // lint:checked errdrop: test teardown of the response read side
	if st.Served < 2 {
		t.Errorf("statusz Served = %d, want ≥ 2", st.Served)
	}
}

func TestLineProtocol(t *testing.T) {
	art, test, want := testArtifact(t)
	s, err := NewServer(art, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	client, server := net.Pipe()
	go s.serveConn(server, s.done)
	defer client.Close() // lint:checked errdrop: test teardown of the in-memory pipe

	rd := bufio.NewReader(client)
	for i := 0; i < 3; i++ {
		if _, err := fmt.Fprintln(client, test.Sentences[i].Text); err != nil {
			t.Fatal(err)
		}
		line, err := rd.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		wantStr := make([]string, len(want[i]))
		for j, tag := range want[i] {
			wantStr[j] = tag.String()
		}
		got := strings.Fields(line)
		if !reflect.DeepEqual(got, wantStr) {
			t.Errorf("sentence %d: line tags %v, want %v", i, got, wantStr)
		}
	}
}
