// Sharded similarity-graph construction and layout.
//
// The 3-gram vertex set is partitioned into S shards by hashing each
// vertex's feature-space identity (the NGram key that also keys its
// feature counts), so the inverted-index postings lists split cleanly:
// every posting belongs to exactly one shard — the shard of the vertex it
// scores. k-NN construction then becomes a postings-partitioned merge:
// each query row accumulates its partial dot products one target shard at
// a time (the shard-local pass for candidates in the query's own shard,
// boundary passes for cross-shard candidates), with scratch arrays sized
// to a shard instead of the whole vertex set. Because each candidate's
// postings live in exactly one shard and a pass walks the query's
// features in ascending id order, every candidate's score accumulates in
// exactly the order the single-shard merge uses — scores, and therefore
// edges, are bit-identical for every S.
//
// The ShardedGraph type carries, next to the flat Graph, per-shard CSR
// slices in which cross-shard edges point into a per-shard halo region: a
// dense table of the remote vertices the shard reads, sorted by (owner
// shard, owner-local id) so a halo exchange streams each owner's rows in
// ascending order. Propagation over this layout lives in
// internal/propagate (RunShardedFlat).
package graph

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"

	"repro/internal/analysis/assert"
	"repro/internal/corpus"
	"repro/internal/features"
)

// ShardMap is a partition of the vertex set into S shards, with the
// local-id renumbering each shard uses for its CSR slice. Shard-local ids
// are assigned in ascending global-id order, so postings lists sorted by
// local id within a shard are also sorted by global id — the property the
// postings-partitioned merge relies on for bit-identical accumulation.
type ShardMap struct {
	S       int
	ShardOf []int32   // global vertex id -> shard
	Local   []int32   // global vertex id -> local id within its shard
	Verts   [][]int32 // shard -> global vertex ids, ascending
}

// shardOfNGram hashes a vertex's feature-space identity to its shard.
// FNV-1a over the NGram bytes: deterministic across runs and platforms,
// which keeps the shard assignment — and so the halo tables and the
// benchmark partitions — stable for a given corpus.
func shardOfNGram(v corpus.NGram, s int) int32 {
	h := fnv.New64a()
	h.Write([]byte(v))
	return int32(h.Sum64() % uint64(s))
}

// NewShardMap partitions verts into s shards by hashing each vertex's
// NGram identity. s is clamped to [1, len(verts)] (a shard count beyond
// the vertex count only manufactures empty shards).
func NewShardMap(verts []corpus.NGram, s int) *ShardMap {
	if s < 1 {
		s = 1
	}
	if s > len(verts) && len(verts) > 0 {
		s = len(verts)
	}
	sm := &ShardMap{
		S:       s,
		ShardOf: make([]int32, len(verts)),
		Local:   make([]int32, len(verts)),
		Verts:   make([][]int32, s),
	}
	sizes := make([]int32, s)
	for gi, v := range verts {
		sh := shardOfNGram(v, s)
		sm.ShardOf[gi] = sh
		sizes[sh]++
	}
	for sh := range sm.Verts {
		sm.Verts[sh] = make([]int32, 0, sizes[sh])
	}
	for gi := range verts {
		sh := sm.ShardOf[gi]
		sm.Local[gi] = int32(len(sm.Verts[sh]))
		sm.Verts[sh] = append(sm.Verts[sh], int32(gi))
	}
	return sm
}

// MaxShardSize returns the largest shard's vertex count.
func (sm *ShardMap) MaxShardSize() int {
	max := 0
	for _, vs := range sm.Verts {
		if len(vs) > max {
			max = len(vs)
		}
	}
	return max
}

// ShardCSR is one shard's slice of the graph in CSR layout over
// shard-local row ids. Edge targets are encoded in a single local index
// space: a target t < len(Verts) is the shard-local id of a vertex this
// shard owns; a target t >= len(Verts) points at halo entry
// t - len(Verts) — a remote vertex whose beliefs the propagation kernel
// reads from the shard's halo region. The halo tables are sorted by
// (owner shard, owner-local id), so a halo exchange walks each owner's
// belief rows in ascending order.
type ShardCSR struct {
	Verts []int32 // local id -> global vertex id (aliases ShardMap.Verts[s])

	Off []int32   // local CSR offsets, len = len(Verts)+1
	To  []int32   // encoded targets (see type comment)
	W   []float64 // edge weights, same order as the flat CSR rows

	HaloOwner  []int32 // halo index -> owner shard
	HaloLocal  []int32 // halo index -> local id within the owner shard
	HaloGlobal []int32 // halo index -> global vertex id
}

// NumHalo returns the number of remote vertices this shard reads.
func (s *ShardCSR) NumHalo() int { return len(s.HaloGlobal) }

// ShardedGraph is a Graph together with a shard partition: the flat graph
// (serialization, Updater, and Streamer interoperate with it unchanged),
// the shard map, and per-shard CSR slices with halo tables for SPMD
// propagation. Construct one with BuildSharded or, from an existing flat
// graph, with ShardGraph.
type ShardedGraph struct {
	G      *Graph
	Map    *ShardMap
	Shards []ShardCSR
}

// NumShards returns the shard count.
func (sg *ShardedGraph) NumShards() int { return sg.Map.S }

// NumVertices returns the vertex count of the underlying graph.
func (sg *ShardedGraph) NumVertices() int { return sg.G.NumVertices() }

// NumEdges returns the edge count of the underlying graph.
func (sg *ShardedGraph) NumEdges() int { return sg.G.NumEdges() }

// Flat returns the flat view of the sharded graph. It is the identical
// object the single-shard pipeline produces — WriteTo/ReadFrom,
// graph.Updater, and graphner.Streamer all keep working against it.
func (sg *ShardedGraph) Flat() *Graph { return sg.G }

// CrossShardEdges counts edges whose endpoint shards differ — the edges
// that land in halo regions.
func (sg *ShardedGraph) CrossShardEdges() int {
	n := 0
	for s := range sg.Shards {
		sh := &sg.Shards[s]
		nLocal := len(sh.Verts)
		for _, t := range sh.To {
			if int(t) >= nLocal {
				n++
			}
		}
	}
	return n
}

// ShardGraph partitions an existing flat graph into s shards, deriving
// the per-shard CSR slices and halo tables from the graph's CSR mirror
// (built on demand). The flat graph is shared, not copied.
func ShardGraph(g *Graph, s int) (*ShardedGraph, error) {
	if g.NumVertices() == 0 {
		return nil, fmt.Errorf("graph: cannot shard an empty graph")
	}
	g.EnsureCSR()
	sm := NewShardMap(g.Vertices, s)
	return &ShardedGraph{G: g, Map: sm, Shards: shardSlices(g, sm)}, nil
}

// shardSlices derives every shard's CSR slice and halo tables from the
// flat CSR. Edge order within each row is preserved exactly, so the
// propagation kernel's per-row accumulation order — and therefore its
// floating-point results — match the flat kernel bit for bit.
func shardSlices(g *Graph, sm *ShardMap) []ShardCSR {
	n := g.NumVertices()
	shards := make([]ShardCSR, sm.S)
	// mark/idx are shared scratch across shards: mark[gi] == epoch means
	// gi is in the current shard's halo with index idx[gi].
	mark := make([]int32, n)
	idx := make([]int32, n)
	epoch := int32(0)
	for s := 0; s < sm.S; s++ {
		sh := &shards[s]
		sh.Verts = sm.Verts[s]
		nLocal := len(sh.Verts)
		epoch++

		// Pass 1: count edges and collect the distinct remote targets.
		nEdges := 0
		var halo []int32
		for _, gi := range sh.Verts {
			for e, end := g.EdgeOffsets[gi], g.EdgeOffsets[gi+1]; e < end; e++ {
				nEdges++
				t := g.EdgeTo[e]
				if sm.ShardOf[t] != int32(s) && mark[t] != epoch {
					mark[t] = epoch
					halo = append(halo, t)
				}
			}
		}
		// Halo order: by (owner shard, owner-local id), so the exchange
		// streams each owner's rows in ascending local order.
		sort.Slice(halo, func(a, b int) bool {
			if sm.ShardOf[halo[a]] != sm.ShardOf[halo[b]] {
				return sm.ShardOf[halo[a]] < sm.ShardOf[halo[b]]
			}
			return sm.Local[halo[a]] < sm.Local[halo[b]]
		})
		sh.HaloGlobal = halo
		sh.HaloOwner = make([]int32, len(halo))
		sh.HaloLocal = make([]int32, len(halo))
		for i, gi := range halo {
			sh.HaloOwner[i] = sm.ShardOf[gi]
			sh.HaloLocal[i] = sm.Local[gi]
			idx[gi] = int32(i)
		}

		// Pass 2: emit the shard CSR with remapped targets.
		sh.Off = make([]int32, nLocal+1)
		sh.To = make([]int32, nEdges)
		sh.W = make([]float64, nEdges)
		pos := int32(0)
		for li, gi := range sh.Verts {
			sh.Off[li] = pos
			for e, end := g.EdgeOffsets[gi], g.EdgeOffsets[gi+1]; e < end; e++ {
				t := g.EdgeTo[e]
				if sm.ShardOf[t] == int32(s) {
					sh.To[pos] = sm.Local[t]
				} else {
					sh.To[pos] = int32(nLocal) + idx[t]
				}
				sh.W[pos] = g.EdgeWeight[e]
				pos++
			}
		}
		sh.Off[nLocal] = pos
		if assert.Enabled {
			assert.CSRMonotonic(sh.Off, len(sh.To), "shard CSR")
		}
	}
	return shards
}

// BuildSharded constructs the similarity graph like Build, but with the
// k-NN search partitioned across cfg.Shards shards, and returns the
// ShardedGraph carrying both the flat graph and the per-shard layout. The
// flat graph is bit-identical to Build's output for every shard count —
// same vertices, same edges, same weights — so BuildSharded followed by
// Flat() is a drop-in Build replacement.
func BuildSharded(corp *corpus.Corpus, cfg BuilderConfig) (*ShardedGraph, error) {
	g, sm, err := buildWithShards(corp, cfg)
	if err != nil {
		return nil, err
	}
	return &ShardedGraph{G: g, Map: sm, Shards: shardSlices(g, sm)}, nil
}

// buildWithShards is the shared construction path behind Build and
// BuildSharded: validate, vectorize, partition, search, assemble. With
// cfg.Shards <= 1 the k-NN search is the original single-index merge;
// with more shards it is the postings-partitioned merge of knnSharded.
// Both produce bit-identical graphs.
func buildWithShards(corp *corpus.Corpus, cfg BuilderConfig) (*Graph, *ShardMap, error) {
	if len(corp.Sentences) == 0 {
		return nil, nil, fmt.Errorf("graph: empty corpus")
	}
	if cfg.K <= 0 {
		cfg.K = 10
	}
	if cfg.Extractor == nil {
		cfg.Extractor = features.NewExtractor(nil)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Stats != nil && cfg.Stats.mode != cfg.Mode {
		return nil, nil, fmt.Errorf("graph: stats snapshot was taken in %v mode, config wants %v", cfg.Stats.mode, cfg.Mode)
	}
	if cfg.Mode == MIFeatures && cfg.Stats == nil {
		if cfg.Tags == nil {
			return nil, nil, fmt.Errorf("graph: MIFeatures mode requires Tags")
		}
		if len(cfg.Tags) != len(corp.Sentences) {
			return nil, nil, fmt.Errorf("graph: %d tag rows for %d sentences", len(cfg.Tags), len(corp.Sentences))
		}
	}

	if cfg.GraphMode == ModeLSH {
		// Fill and validate the LSH knobs before the expensive counting
		// pass: a bad Bits value must fail loudly, not truncate silently.
		if cfg.LSH.Workers <= 0 {
			cfg.LSH.Workers = cfg.Workers
		}
		cfg.LSH.defaults()
		if err := cfg.LSH.validate(); err != nil {
			return nil, nil, err
		}
	}

	vecs, verts, _, _, _ := vertexVectors(corp, cfg)
	sm := NewShardMap(verts, cfg.Shards)
	var neighbors [][]Edge
	switch {
	case cfg.GraphMode == ModeLSH:
		// The LSH candidate generator has its own banding layout; the
		// shard partition still applies to the resulting graph.
		neighbors = knnLSH(vecs, cfg, cfg.LSH)
	case sm.S > 1:
		neighbors = knnSharded(vecs, sm, cfg)
	default:
		neighbors = knn(vecs, cfg)
	}
	g := &Graph{
		Vertices:  verts,
		Index:     make(map[corpus.NGram]int, len(verts)),
		Neighbors: neighbors,
		K:         cfg.K,
	}
	for i, v := range verts {
		g.Index[v] = i
	}
	g.BuildCSR()
	return g, sm, nil
}

// shardPostings is one shard's inverted index: postings lists per feature
// holding (shard-local vertex, value) pairs in ascending local-id order
// (equivalently, ascending global-id order — local ids are assigned in
// global order).
type shardPostings struct {
	lists [][]posting
	norms []float64 // local id -> vector norm, dense for cache locality
}

// buildShardPostings splits the inverted index by candidate shard and
// returns the per-shard indexes plus the global document frequency of
// every feature. The MaxDF cap must consult the global frequency — the
// single-shard path caps on the full postings-list length, and capping
// on shard-local lengths would change which features score.
func buildShardPostings(vecs []sparseVec, sm *ShardMap) ([]shardPostings, []int32) {
	nf := 0
	for i := range vecs {
		for _, id := range vecs[i].ids {
			if int(id) >= nf {
				nf = int(id) + 1
			}
		}
	}
	globalDF := make([]int32, nf)
	out := make([]shardPostings, sm.S)
	counts := make([]int32, nf)
	for s := 0; s < sm.S; s++ {
		verts := sm.Verts[s]
		sp := &out[s]
		sp.norms = make([]float64, len(verts))
		for i := range counts {
			counts[i] = 0
		}
		total := 0
		for li, gi := range verts {
			v := &vecs[gi]
			sp.norms[li] = v.norm
			for _, id := range v.ids {
				counts[id]++
				globalDF[id]++
			}
			total += len(v.ids)
		}
		flat := make([]posting, total)
		sp.lists = make([][]posting, nf)
		pos := 0
		for f := range sp.lists {
			sp.lists[f] = flat[pos : pos : pos+int(counts[f])]
			pos += int(counts[f])
		}
		for li, gi := range verts {
			v := &vecs[gi]
			l32 := int32(li)
			for k, id := range v.ids {
				sp.lists[id] = append(sp.lists[id], posting{v: l32, val: v.vals[k]})
			}
		}
	}
	return out, globalDF
}

// knnSharded is the postings-partitioned k-NN merge: for every query
// vertex it runs one scoring pass per target shard — the shard-local pass
// plus boundary passes over the cross-shard candidates — folding each
// pass's candidates into a single top-K buffer under topK's total order
// (cosine descending, vertex id ascending on exact weight ties). Because
// the order is total, the fold is insertion-order independent and the
// resulting rows are bit-identical to the single-index merge. Queries are
// partitioned into contiguous blocks across cfg.Workers workers; scratch
// arrays are sized to the largest shard, not the vertex set, which keeps
// the score-accumulation working set cache-resident as shards shrink.
func knnSharded(vecs []sparseVec, sm *ShardMap, cfg BuilderConfig) [][]Edge {
	n := len(vecs)
	postings, globalDF := buildShardPostings(vecs, sm)

	out := make([][]Edge, n)
	var wg sync.WaitGroup
	workers := cfg.Workers
	if workers > n {
		workers = n
	}
	scratch := sm.MaxShardSize()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			scores := make([]float64, scratch)
			seen := make([]int32, scratch)
			epoch := int32(0)
			touched := make([]int32, 0, 1024)
			for vi := lo; vi < hi; vi++ {
				q := &vecs[vi]
				if q.norm == 0 {
					continue
				}
				edges := make([]Edge, 0, cfg.K)
				qShard, qLocal := sm.ShardOf[vi], sm.Local[vi]
				for s := 0; s < sm.S; s++ {
					sp := &postings[s]
					self := int32(-1)
					if int32(s) == qShard {
						self = qLocal
					}
					epoch++
					touched = scoreShard(q, self, sp.lists, globalDF, cfg.MaxDF, scores, seen, epoch, touched[:0])
					verts := sm.Verts[s]
					for _, c := range touched {
						cn := sp.norms[c]
						if cn == 0 {
							continue
						}
						e := Edge{To: verts[c], Weight: scores[c] / (q.norm * cn)}
						edges = insertTopKEdge(edges, e, cfg.K, nil)
					}
				}
				out[vi] = edges
			}
		}(n*w/workers, n*(w+1)/workers)
	}
	wg.Wait()
	return out
}

// scoreShard accumulates the query's sparse partial dot products against
// one shard's postings, exactly as scoreInto does against the global
// postings — same feature order, same per-candidate accumulation order —
// except that the document-frequency cap consults the global postings
// length (globalDF), not the shard-local one.
func scoreShard(q *sparseVec, self int32, lists [][]posting, globalDF []int32, maxDF int, scores []float64, seen []int32, epoch int32, touched []int32) []int32 {
	for k, id := range q.ids {
		if maxDF > 0 && int(globalDF[id]) > maxDF {
			continue
		}
		qv := q.vals[k]
		for _, p := range lists[id] {
			if p.v == self {
				continue
			}
			if seen[p.v] != epoch {
				seen[p.v] = epoch
				scores[p.v] = 0
				touched = append(touched, p.v)
			}
			scores[p.v] += qv * p.val
		}
	}
	return touched
}
