package graph

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/analysis/assert"
	"repro/internal/corpus"
	"repro/internal/features"
)

// Updater maintains a k-NN similarity graph incrementally as unlabelled
// sentences stream in, instead of rebuilding it from scratch. It retains
// the state a full Build computes and throws away — the inverted index
// (postings), the per-vertex PPMI sparse vectors, and the raw
// co-occurrence counts — and on AddSentences recomputes only the rows
// whose top-K lists can actually change.
//
// Correctness contract: corpus-level PPMI statistics (feature alphabet,
// featTotal, grand total, MI feature selection) are frozen at the base
// corpus. After any sequence of AddSentences calls over batches b1..bn,
// the maintained graph is exactly equal — same neighbour sets, bit-equal
// weights, same CSR arrays — to Build(base ∪ b1 ∪ ... ∪ bn, cfg) with
// cfg.Stats set to the Updater's snapshot, up to the canonical vertex
// renumbering of CanonicalClone (Build orders vertices by sorted 3-gram;
// the Updater keeps ids stable and appends).
//
// Vertex ids are stable: existing ids never change, new 3-grams get ids
// len(Vertices), len(Vertices)+1, ... in first-occurrence order.
//
// An Updater is not safe for concurrent use.
type Updater struct {
	cfg BuilderConfig
	st  *Stats
	g   *Graph

	counts    []map[int32]float64 // per-vertex raw co-occurrence counts
	vertTotal []float64           // per-vertex total count c(v)
	vecs      []sparseVec         // per-vertex PPMI vectors
	postings  [][]posting         // per-feature postings, ascending vertex id
	prevDF    []int               // scratch: pre-batch df of affected features

	// rows holds the internal ranked candidate list per vertex; the
	// graph row is its length-K prefix. The extra entries beyond K (up
	// to knnReserve of them) absorb edge drops: when a changed neighbour
	// falls out of the top K, the replacement usually comes from the
	// reserve with its exact cosine already known, instead of a full
	// postings re-scan. Invariant: rows[v] is an exact ranked prefix of
	// v's candidate list — either complete[v] (every candidate with a
	// positive score is present) or a truncation, in which case every
	// absent candidate scores at or below the last weight. Repairs that
	// push entries into the uncertain zone below that bar truncate the
	// row; a re-scan restores it to full width only when the certain
	// prefix would drop under K.
	rows     [][]Edge
	complete []bool

	// sorted holds all vertex ids in ascending NGram order; rank is its
	// inverse. They supply topK's canonical tie-break (see topK).
	sorted []int32
	rank   []int32

	enum func(words []string, i int, fn func(string))
}

// knnReserve is the number of ranked candidates each Updater row keeps
// beyond the graph's K. A larger reserve turns more edge drops into
// in-place repairs but makes every top-K selection slightly wider.
const knnReserve = 6

// debugCapEvents / debugUncapEvents count MaxDF cap-boundary crossings
// observed by Updater batches across the process — features whose
// postings list crossed the document-frequency cap in either direction.
// Diagnostic only; read them under a debugger or ad-hoc test.
var (
	debugCapEvents   int
	debugUncapEvents int
)

// UpdateResult summarizes one AddSentences batch.
type UpdateResult struct {
	// NewVertices counts 3-grams first seen in this batch (appended ids).
	NewVertices int
	// UpdatedVertices counts pre-existing vertices with new occurrences.
	UpdatedVertices int
	// DirtyRows lists, in ascending id order, every vertex whose
	// neighbour row changed or was recomputed: changed/new vertices,
	// re-scanned rows, and repaired rows. Propagation warm-starts seed
	// their worklist from it.
	DirtyRows []int32
	// RescannedRows counts pre-existing unchanged vertices whose rows had
	// to be re-searched from the postings; RepairedRows counts rows fixed
	// in place (only weights of edges to changed vertices moved).
	RescannedRows, RepairedRows int
	// AffectedFeatures counts the features whose postings changed.
	AffectedFeatures int
}

// NewUpdater builds the graph over the base corpus (exactly as Build
// does) and retains the intermediate state needed for incremental
// maintenance. The corpus-level PPMI statistics are frozen at this
// snapshot; see Updater and BuilderConfig.Stats.
func NewUpdater(base *corpus.Corpus, cfg BuilderConfig) (*Updater, error) {
	if len(base.Sentences) == 0 {
		return nil, fmt.Errorf("graph: empty base corpus")
	}
	if cfg.GraphMode == ModeLSH {
		return nil, fmt.Errorf("graph: incremental maintenance requires the exact search (GraphMode lsh unsupported)")
	}
	if cfg.K <= 0 {
		cfg.K = 10
	}
	if cfg.Extractor == nil {
		cfg.Extractor = features.NewExtractor(nil)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Stats != nil && cfg.Stats.mode != cfg.Mode {
		return nil, fmt.Errorf("graph: stats snapshot was taken in %v mode, config wants %v", cfg.Stats.mode, cfg.Mode)
	}
	if cfg.Mode == MIFeatures && cfg.Stats == nil {
		if cfg.Tags == nil {
			return nil, fmt.Errorf("graph: MIFeatures mode requires Tags")
		}
		if len(cfg.Tags) != len(base.Sentences) {
			return nil, fmt.Errorf("graph: %d tag rows for %d sentences", len(cfg.Tags), len(base.Sentences))
		}
	}

	vecs, verts, counts, vertTotal, st := vertexVectors(base, cfg)
	cfg.Stats = st
	cfg.Tags = nil // consumed by the snapshot's MI selection
	// Search K+knnReserve wide: the graph rows are the K prefixes (topK's
	// ordered insertion makes the prefix identical to a K-wide search),
	// the tails seed the repair reserve.
	wideCfg := cfg
	wideCfg.K = cfg.K + knnReserve
	rows := knn(vecs, wideCfg)
	neighbors := make([][]Edge, len(rows))
	complete := make([]bool, len(rows))
	for i, r := range rows {
		complete[i] = len(r) < wideCfg.K
		kk := len(r)
		if kk > cfg.K {
			kk = cfg.K
		}
		neighbors[i] = r[:kk]
	}
	g := &Graph{
		Vertices:  verts,
		Index:     make(map[corpus.NGram]int, len(verts)),
		Neighbors: neighbors,
		K:         cfg.K,
	}
	for i, v := range verts {
		g.Index[v] = i
	}
	g.BuildCSR()

	u := &Updater{
		cfg:       cfg,
		st:        st,
		g:         g,
		counts:    counts,
		vertTotal: vertTotal,
		vecs:      vecs,
		rows:      rows,
		complete:  complete,
		enum:      featureEnumerator(cfg, st.miKeep),
	}
	// Per-feature postings over the frozen feature space, ascending
	// vertex id (base vertices are appended in id order).
	u.postings = make([][]posting, st.alphabet.Len())
	for vi := range vecs {
		v := &vecs[vi]
		for k, id := range v.ids {
			u.postings[id] = append(u.postings[id], posting{v: int32(vi), val: v.vals[k]})
		}
	}
	// Base vertices come from UniqueTrigrams, already in ascending NGram
	// order: canonical rank is the identity.
	u.sorted = make([]int32, len(verts))
	u.rank = make([]int32, len(verts))
	for i := range u.sorted {
		u.sorted[i] = int32(i)
		u.rank[i] = int32(i)
	}
	return u, nil
}

// Graph returns the maintained graph. The Updater owns it: AddSentences
// mutates it in place (appending vertices, rewriting dirty rows and the
// CSR arrays).
func (u *Updater) Graph() *Graph { return u.g }

// Stats returns the frozen corpus-statistics snapshot. Passing it as
// BuilderConfig.Stats to Build reproduces the maintained graph from
// scratch — that equality is the Updater's correctness bar.
func (u *Updater) Stats() *Stats { return u.st }

// AddSentences folds a batch of sentences into the maintained graph:
// new 3-grams are appended as vertices, vectors of changed vertices are
// recomputed under the frozen statistics, the postings index is edited in
// place, and exactly the dirty rows — vertices whose top-K list can have
// changed — are re-searched and patched into the CSR arrays.
func (u *Updater) AddSentences(sents []*corpus.Sentence) (UpdateResult, error) {
	var res UpdateResult
	if len(sents) == 0 {
		return res, nil
	}
	g := u.g
	oldN := len(g.Vertices)

	// Pass 1: register new vertices, accumulate counts, collect the
	// changed set (vertices with new occurrences) in first-touch order.
	isChanged := make([]bool, oldN)
	changed := make([]int32, 0, 64)
	for _, s := range sents {
		words := s.Words()
		for i := range words {
			ng := corpus.Trigram(words, i)
			vi, ok := g.Index[ng]
			if !ok {
				vi = len(g.Vertices)
				g.Index[ng] = vi
				g.Vertices = append(g.Vertices, ng)
				g.Neighbors = append(g.Neighbors, nil)
				u.rows = append(u.rows, nil)
				u.complete = append(u.complete, false)
				u.counts = append(u.counts, make(map[int32]float64, 8))
				u.vertTotal = append(u.vertTotal, 0)
				u.vecs = append(u.vecs, sparseVec{})
				isChanged = append(isChanged, false)
			}
			if !isChanged[vi] {
				isChanged[vi] = true
				changed = append(changed, int32(vi))
			}
			v := vi
			u.enum(words, i, func(f string) {
				id := u.st.alphabet.Lookup(f)
				if id < 0 {
					return // outside the frozen feature space
				}
				u.counts[v][int32(id)]++
				u.vertTotal[v]++
			})
		}
	}
	n := len(g.Vertices)
	res.NewVertices = n - oldN
	res.UpdatedVertices = len(changed) - res.NewVertices

	// Pass 2: recompute changed vectors and edit the postings index,
	// recording every affected feature with its pre-batch document
	// frequency (for the MaxDF cap-crossing analysis below).
	affected := make([]int32, 0, 256)
	u.prevDF = u.prevDF[:0]
	featSeen := make([]bool, len(u.postings))
	markFeat := func(id int32) {
		if !featSeen[id] {
			featSeen[id] = true
			affected = append(affected, id)
			u.prevDF = append(u.prevDF, len(u.postings[id]))
		}
	}
	for _, vi := range changed {
		old := u.vecs[vi]
		nv := ppmiVec(u.counts[vi], u.vertTotal[vi], u.st)
		u.vecs[vi] = nv
		for _, id := range old.ids {
			markFeat(id)
		}
		for _, id := range nv.ids {
			markFeat(id)
		}
		u.editPostings(vi, &old, &nv)
	}
	res.AffectedFeatures = len(affected)

	// Pass 3: fold the new vertices into the canonical (sorted-NGram)
	// rank — the rows re-scored below tie-break on it. Appending never
	// reorders existing vertices relative to each other, so a sorted
	// merge of the old order with the sorted new ids reproduces the order
	// Build would use on the union corpus.
	if res.NewVertices > 0 {
		newIDs := make([]int32, 0, res.NewVertices)
		for v := oldN; v < n; v++ {
			newIDs = append(newIDs, int32(v))
		}
		sort.Slice(newIDs, func(a, b int) bool {
			return g.Vertices[newIDs[a]] < g.Vertices[newIDs[b]]
		})
		merged := make([]int32, 0, n)
		i, j := 0, 0
		for i < len(u.sorted) && j < len(newIDs) {
			if g.Vertices[u.sorted[i]] < g.Vertices[newIDs[j]] {
				merged = append(merged, u.sorted[i])
				i++
			} else {
				merged = append(merged, newIDs[j])
				j++
			}
		}
		merged = append(merged, u.sorted[i:]...)
		merged = append(merged, newIDs[j:]...)
		u.sorted = merged
		u.rank = make([]int32, n)
		for pos, v := range u.sorted {
			u.rank[v] = int32(pos)
		}
	}

	// Pass 4: classify rows. Postings entries of unchanged vertices never
	// change, so a clean vertex's score against an unchanged candidate is
	// untouched, and its row can only change through a pair with a
	// changed vertex or a feature crossing the MaxDF cap:
	//   - changed/new vertices are re-scored outright (below, reusing
	//     the classification scan);
	//   - a feature crossing the cap (document frequency only grows, so
	//     always uncapped → capped) removes its contribution from every
	//     pair of co-holders; scores only decrease, so the only rows that
	//     can change are those of holders with an in-row edge to another
	//     unchanged co-holder (a dropped edge may let the unknown K+1-th
	//     candidate in → re-scan). Pairs with changed endpoints are
	//     recomputed under the new caps anyway;
	//   - a changed vertex already in an internal row is fine if its new
	//     cosine strictly beats the row's last weight (every outside
	//     candidate is at or below that bar); otherwise it may fall below
	//     the unknown next-ranked candidate → re-scan;
	//   - a changed vertex outside an internal row whose new cosine
	//     strictly beats the row's last weight must enter — its exact
	//     cosine is known from the changed side, so it is merged in
	//     place; an exact tie needs the unknown next candidate's
	//     tie-break → re-scan;
	//   - internal rows shorter than K+knnReserve list *every* candidate
	//     with a positive score, so they are always repairable: replace,
	//     drop, or insert edges with exactly known cosines and re-sort.
	// Repairs rebuild the internal row exactly; the graph row (its K
	// prefix) is marked dirty only when the prefix actually changed.
	needScan := make([]bool, n)
	for _, vi := range changed {
		needScan[vi] = true
	}
	maxDF := u.cfg.MaxDF
	var holderStamp []int32
	crossEpoch := int32(0)
	for ai, f := range affected {
		cappedNow := maxDF > 0 && len(u.postings[f]) > maxDF
		cappedBefore := maxDF > 0 && u.prevDF[ai] > maxDF
		if cappedNow == cappedBefore {
			continue
		}
		if cappedBefore && !cappedNow {
			debugUncapEvents++
		} else {
			debugCapEvents++
		}
		if holderStamp == nil {
			holderStamp = make([]int32, n)
		}
		crossEpoch++
		for _, p := range u.postings[f] {
			holderStamp[p.v] = crossEpoch
		}
		for _, p := range u.postings[f] {
			v := p.v
			if isChanged[v] || needScan[v] {
				continue
			}
			for _, e := range u.rows[v] {
				if holderStamp[e.To] == crossEpoch && !isChanged[e.To] {
					needScan[v] = true
					break
				}
			}
		}
	}

	// Entry bars and changed-edge bookkeeping over the pre-update
	// internal rows. rmin[v] is the weight an outside candidate must
	// reach to alter v's internal row: its last weight when the row is a
	// truncation, 0 when it is complete (any new candidate joins it).
	// inNbrs lists, per changed vertex, the unchanged internal rows
	// holding an entry for it — the pairs whose cosines the
	// classification scan must report back.
	wideK := u.cfg.K + knnReserve
	rmin := make([]float64, n)
	chgNbr := make([]int32, n)
	chgIdx := make([]int32, n)
	for i := range chgIdx {
		chgIdx[i] = -1
	}
	for i, vi := range changed {
		chgIdx[vi] = int32(i)
	}
	inNbrs := make([][]int32, len(changed))
	for v := 0; v < oldN; v++ {
		es := u.rows[v]
		if !u.complete[v] && len(es) > 0 {
			rmin[v] = es[len(es)-1].Weight
		}
		if isChanged[v] {
			continue
		}
		for _, e := range es {
			if isChanged[e.To] {
				chgNbr[v]++
				ci := chgIdx[e.To]
				inNbrs[ci] = append(inNbrs[ci], int32(v))
			}
		}
	}
	// Flat norms and a conservative entry prefilter: scores below
	// bar[c]·|q| cannot reach rmin[c] even after the worst-case rounding
	// of the product (the 1e-12 slack dwarfs the few-ulp error), so the
	// exact divided cosine is computed only for the rare candidates that
	// pass. Postings only list vertices with a non-empty vector, so every
	// touched candidate has a positive norm.
	norms := make([]float64, n)
	bar := make([]float64, n)
	for v := 0; v < n; v++ {
		norms[v] = u.vecs[v].norm
		bar[v] = rmin[v] * norms[v] * (1 - 1e-12)
	}

	// Scan every changed vertex once: its candidate scores classify the
	// clean rows (the cosine of a pair is symmetric and bit-identical
	// from either side — same ascending shared-feature order, same
	// commutative products), and double as its own new top-K row.
	workers := u.cfg.Workers
	if workers > len(changed) {
		workers = len(changed)
	}
	if workers < 1 {
		workers = 1
	}
	type pairUpd struct {
		u, c int32
		cos  float64
	}
	entrantsW := make([][]pairUpd, workers)
	pairsW := make([][]pairUpd, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			scores := make([]float64, n)
			seen := make([]int32, n)
			edgeStamp := make([]int32, n)
			epoch := int32(0)
			touched := make([]int32, 0, 1024)
			for ci := w; ci < len(changed); ci += workers {
				vi := changed[ci]
				q := &u.vecs[vi]
				if q.norm == 0 {
					// An emptied vector drops every in-edge: report the
					// pairs as gone (-1) so the owning rows drop them.
					u.rows[vi] = nil
					u.complete[vi] = true
					g.Neighbors[vi] = nil
					for _, in := range inNbrs[ci] {
						pairsW[w] = append(pairsW[w], pairUpd{u: in, c: vi, cos: -1})
					}
					continue
				}
				epoch++
				for _, in := range inNbrs[ci] {
					edgeStamp[in] = epoch
				}
				touched = scoreInto(q, vi, u.postings, maxDF, scores, seen, epoch, touched[:0])
				qn := q.norm
				for _, cand := range touched {
					if scores[cand] < bar[cand]*qn {
						continue
					}
					if isChanged[cand] || edgeStamp[cand] == epoch {
						continue
					}
					cos := scores[cand] / (norms[cand] * qn)
					if cos >= rmin[cand] {
						entrantsW[w] = append(entrantsW[w], pairUpd{u: cand, c: vi, cos: cos})
					}
				}
				// Report the new cosine of every existing in-edge; a pair
				// the scan never touched shares no uncapped feature any
				// more (-1: the edge must drop).
				for _, in := range inNbrs[ci] {
					cos := -1.0
					if seen[in] == epoch {
						cos = scores[in] / (norms[in] * qn)
					}
					pairsW[w] = append(pairsW[w], pairUpd{u: in, c: vi, cos: cos})
				}
				row := topK(scores, touched, q.norm, u.vecs, wideK, u.rank)
				u.rows[vi] = row
				u.complete[vi] = len(row) < wideK
				if len(row) > u.cfg.K {
					row = row[:u.cfg.K]
				}
				g.Neighbors[vi] = row
			}
		}(w)
	}
	wg.Wait()
	// Entrants strictly above the row's entry bar carry their exact
	// cosine into the in-place merge. An entrant tying the bar exactly
	// could still displace an in-row entry of equal weight through the
	// canonical-rank tie-break — but absent candidates at the bar have
	// unknown ranks, so the whole tied weight class becomes uncertain:
	// the repair cuts it (tiedBar) and the prefix check below decides
	// whether a re-scan is needed. rowUpd buckets, per unchanged row,
	// the recomputed cosines of its entries into the changed set (-1:
	// the pair no longer shares an uncapped feature). Flat per-row
	// buckets instead of a global pair-keyed map: the repair loop reads
	// them with a short linear probe (rows hold few changed entries),
	// which profiles measurably cheaper than map hashing.
	entrants := make([][]Edge, n)
	tiedBar := make([]bool, n)
	for _, l := range entrantsW {
		for _, p := range l {
			if p.cos > rmin[p.u] {
				entrants[p.u] = append(entrants[p.u], Edge{To: p.c, Weight: p.cos})
			} else {
				tiedBar[p.u] = true
			}
		}
	}
	rowUpd := make([][]Edge, n)
	for _, l := range pairsW {
		for _, p := range l {
			rowUpd[p.u] = append(rowUpd[p.u], Edge{To: p.c, Weight: p.cos})
		}
	}

	// Repair the internal rows: replace or drop the entries into the
	// changed set, append entrants, re-sort. On a truncated row, entries
	// whose updated weight falls to or below the old entry bar land in
	// the uncertain zone — an absent candidate could outrank them — so
	// the row is cut there; only when the certain prefix would shrink
	// under K does the row need a postings re-scan. The graph row is
	// dirtied only when its K prefix actually moved.
	repaired := make([]int32, 0, 256)
	for v := int32(0); v < int32(oldN); v++ {
		ent := entrants[v]
		if (chgNbr[v] == 0 && len(ent) == 0 && !tiedBar[v]) || isChanged[v] || needScan[v] {
			continue
		}
		es := u.rows[v]
		upd := rowUpd[v]
		row := make([]Edge, 0, len(es)+len(ent))
		for _, e := range es {
			if isChanged[e.To] {
				c := -1.0
				for _, ue := range upd {
					if ue.To == e.To {
						c = ue.Weight
						break
					}
				}
				if c < 0 {
					// The pair no longer shares an uncapped feature —
					// the entry drops.
					continue
				}
				e.Weight = c
			}
			row = append(row, e)
		}
		row = append(row, ent...)
		sortEdgesCanonical(row, u.rank)
		nowComplete := u.complete[v]
		if !nowComplete {
			// Entries strictly below the old bar are uncertain — an absent
			// candidate could outrank them — and are cut. Entries exactly
			// at the bar kept their old tie-break standing against absent
			// candidates, unless the tied weight class itself changed: a
			// tied entrant (unknown rank order against absent ties) voids
			// the whole class, and a changed entry that arrived at the bar
			// is individually uncertain.
			cut := len(row)
			for cut > 0 && row[cut-1].Weight < rmin[v] {
				cut--
			}
			row = row[:cut]
			if tiedBar[v] {
				for cut > 0 && row[cut-1].Weight == rmin[v] { // lint:checked exact tie class is voided wholesale
					cut--
				}
				row = row[:cut]
			} else {
				grp := cut
				for grp > 0 && row[grp-1].Weight == rmin[v] { // lint:checked exact ties keep old standing unless changed
					grp--
				}
				if grp < cut {
					kept := row[:grp]
					for _, e := range row[grp:cut] {
						if !isChanged[e.To] {
							kept = append(kept, e)
						}
					}
					row = kept
				}
			}
		}
		if len(row) > wideK {
			row = row[:wideK]
			nowComplete = false
		}
		if len(row) < u.cfg.K && !nowComplete {
			needScan[v] = true
			continue
		}
		u.rows[v] = row
		u.complete[v] = nowComplete
		pre := row
		if len(pre) > u.cfg.K {
			pre = pre[:u.cfg.K]
		}
		if !edgeRowsEqual(pre, g.Neighbors[v]) {
			g.Neighbors[v] = pre
			repaired = append(repaired, v)
		}
	}
	res.RepairedRows = len(repaired)

	// Pass 5: re-search the rows that need it (changed rows were already
	// re-scored during classification), in parallel, with the same
	// postings-merge kernel the batch build uses.
	rescan := make([]int32, 0, 256)
	for v := 0; v < n; v++ {
		if needScan[v] && !isChanged[v] {
			rescan = append(rescan, int32(v))
		}
	}
	res.RescannedRows = len(rescan)
	workers = u.cfg.Workers
	if workers > len(rescan) {
		workers = len(rescan)
	}
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			scores := make([]float64, n)
			seen := make([]int32, n)
			epoch := int32(0)
			touched := make([]int32, 0, 1024)
			for di := w; di < len(rescan); di += workers {
				vi := rescan[di]
				q := &u.vecs[vi]
				if q.norm == 0 {
					u.rows[vi] = nil
					u.complete[vi] = true
					g.Neighbors[vi] = nil
					continue
				}
				epoch++
				touched = scoreInto(q, vi, u.postings, maxDF, scores, seen, epoch, touched[:0])
				row := topK(scores, touched, q.norm, u.vecs, wideK, u.rank)
				u.rows[vi] = row
				u.complete[vi] = len(row) < wideK
				if len(row) > u.cfg.K {
					row = row[:u.cfg.K]
				}
				g.Neighbors[vi] = row
			}
		}(w)
	}
	wg.Wait()

	// Changed, re-scanned and repaired rows are disjoint by construction.
	dirty := make([]int32, 0, len(changed)+len(rescan)+len(repaired))
	dirty = append(dirty, changed...)
	dirty = append(dirty, rescan...)
	dirty = append(dirty, repaired...)
	sort.Slice(dirty, func(a, b int) bool { return dirty[a] < dirty[b] })
	res.DirtyRows = dirty

	// Pass 6: patch the CSR mirror — append the new rows, re-offset, and
	// rewrite only the dirty rows.
	g.PatchCSR(dirty)
	if assert.Enabled {
		assert.CSRMonotonic(g.EdgeOffsets, len(g.EdgeTo), "incremental CSR")
	}
	return res, nil
}

// sortEdgesCanonical orders a neighbour row exactly as topK emits it:
// weight descending, exact ties broken by canonical rank — so repaired
// rows are indistinguishable from re-scanned ones.
func sortEdgesCanonical(es []Edge, rank []int32) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Weight != es[j].Weight { // lint:checked exact tie-break matches topK
			return es[i].Weight > es[j].Weight
		}
		return rank[es[i].To] < rank[es[j].To]
	})
}

// edgeRowsEqual reports whether two neighbour rows are identical —
// same targets, bit-equal weights, same order.
func edgeRowsEqual(a, b []Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].To != b[i].To || a[i].Weight != b[i].Weight { // lint:checked exact row-identity check
			return false
		}
	}
	return true
}

// editPostings applies the support diff between a vertex's old and new
// vector to the inverted index, keeping every postings list sorted by
// vertex id. Both id slices are ascending, so a two-pointer merge
// classifies each feature as updated, dropped, or added.
func (u *Updater) editPostings(vi int32, old, nv *sparseVec) {
	i, j := 0, 0
	for i < len(old.ids) || j < len(nv.ids) {
		switch {
		case j >= len(nv.ids) || (i < len(old.ids) && old.ids[i] < nv.ids[j]):
			u.removePosting(old.ids[i], vi)
			i++
		case i >= len(old.ids) || old.ids[i] > nv.ids[j]:
			u.insertPosting(nv.ids[j], vi, nv.vals[j])
			j++
		default: // feature kept: update the stored value in place
			pl := u.postings[old.ids[i]]
			pl[postingPos(pl, vi)].val = nv.vals[j]
			i++
			j++
		}
	}
}

// postingPos locates vertex v in a postings list sorted by vertex id.
func postingPos(pl []posting, v int32) int {
	return sort.Search(len(pl), func(k int) bool { return pl[k].v >= v })
}

func (u *Updater) insertPosting(f, v int32, val float64) {
	pl := u.postings[f]
	k := postingPos(pl, v)
	pl = append(pl, posting{})
	copy(pl[k+1:], pl[k:])
	pl[k] = posting{v: v, val: val}
	u.postings[f] = pl
}

func (u *Updater) removePosting(f, v int32) {
	pl := u.postings[f]
	k := postingPos(pl, v)
	u.postings[f] = append(pl[:k], pl[k+1:]...)
}

// Clone deep-copies the Updater and its graph, so benchmark and what-if
// updates can run without disturbing the original.
func (u *Updater) Clone() *Updater {
	c := &Updater{
		cfg:       u.cfg,
		st:        u.st, // frozen, safely shared
		counts:    make([]map[int32]float64, len(u.counts)),
		vertTotal: append([]float64(nil), u.vertTotal...),
		vecs:      append([]sparseVec(nil), u.vecs...),
		rows:      append([][]Edge(nil), u.rows...),
		complete:  append([]bool(nil), u.complete...),
		postings:  make([][]posting, len(u.postings)),
		sorted:    append([]int32(nil), u.sorted...),
		rank:      append([]int32(nil), u.rank...),
		enum:      featureEnumerator(u.cfg, u.st.miKeep),
	}
	for i, m := range u.counts {
		cm := make(map[int32]float64, len(m))
		for k, v := range m {
			cm[k] = v
		}
		c.counts[i] = cm
	}
	for f, pl := range u.postings {
		c.postings[f] = append([]posting(nil), pl...)
	}
	g := u.g
	cg := &Graph{
		Vertices:    append([]corpus.NGram(nil), g.Vertices...),
		Index:       make(map[corpus.NGram]int, len(g.Index)),
		Neighbors:   append([][]Edge(nil), g.Neighbors...),
		K:           g.K,
		EdgeOffsets: append([]int32(nil), g.EdgeOffsets...),
		EdgeTo:      append([]int32(nil), g.EdgeTo...),
		EdgeWeight:  append([]float64(nil), g.EdgeWeight...),
	}
	for k, v := range g.Index {
		cg.Index[k] = v
	}
	c.g = cg
	return c
}
