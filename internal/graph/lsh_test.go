package graph

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/corpus"
	"repro/internal/tokenize"
)

// clusteredVecs builds sparse vectors in c latent clusters: members of a
// cluster share most feature mass, so true nearest neighbours are
// cluster-mates.
func clusteredVecs(rng *rand.Rand, n, clusters, featPerCluster int) []sparseVec {
	vecs := make([]sparseVec, n)
	for i := range vecs {
		cl := i % clusters
		base := int32(cl * featPerCluster)
		ids := make([]int32, 0, featPerCluster+2)
		vals := make([]float64, 0, featPerCluster+2)
		for f := 0; f < featPerCluster; f++ {
			ids = append(ids, base+int32(f))
			vals = append(vals, 1+rng.Float64()*0.2)
		}
		// A couple of noise features.
		noise := int32(clusters*featPerCluster) + int32(rng.Intn(50))
		ids = append(ids, noise)
		vals = append(vals, 0.3)
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		var norm float64
		for _, v := range vals {
			norm += v * v
		}
		vecs[i] = sparseVec{ids: ids, vals: vals, norm: math.Sqrt(norm)}
	}
	return vecs
}

func TestLSHRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vecs := clusteredVecs(rng, 300, 10, 6)
	cfg := BuilderConfig{K: 5, Workers: 4}
	exact := knn(vecs, cfg)
	approx := knnLSH(vecs, cfg, LSHConfig{Bits: 10, Tables: 12, Seed: 3})
	r := Recall(exact, approx)
	if r < 0.8 {
		t.Errorf("LSH recall %.2f, want ≥ 0.8", r)
	}
	// Every returned list respects K and has descending weights.
	for vi, es := range approx {
		if len(es) > cfg.K {
			t.Fatalf("vertex %d has %d edges", vi, len(es))
		}
		for i := 1; i < len(es); i++ {
			if es[i-1].Weight < es[i].Weight {
				t.Fatal("not sorted")
			}
		}
	}
}

func TestLSHMoreTablesMoreRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vecs := clusteredVecs(rng, 200, 8, 5)
	cfg := BuilderConfig{K: 5, Workers: 2}
	exact := knn(vecs, cfg)
	r1 := Recall(exact, knnLSH(vecs, cfg, LSHConfig{Bits: 14, Tables: 1, Seed: 5}))
	r8 := Recall(exact, knnLSH(vecs, cfg, LSHConfig{Bits: 14, Tables: 16, Seed: 5}))
	if r8 < r1 {
		t.Errorf("recall with 16 tables (%.2f) below 1 table (%.2f)", r8, r1)
	}
}

func TestBuildWithLSH(t *testing.T) {
	c := figure1Corpus()
	g, err := Build(c, BuilderConfig{K: 3, UseLSH: true, LSH: LSHConfig{Bits: 6, Tables: 10, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != len(c.UniqueTrigrams()) {
		t.Error("vertex count mismatch")
	}
	if g.NumEdges() == 0 {
		t.Error("LSH build produced no edges")
	}
	// The strong similarity of the figure's example should survive LSH.
	v1 := g.Lookup(corpus.Trigram([]string{"tumor", "-", "1"}, 1))
	if v1 < 0 || len(g.Neighbors[v1]) == 0 {
		t.Error("key vertex lost its neighbours under LSH")
	}
}

func TestRecallEdgeCases(t *testing.T) {
	if r := Recall(nil, nil); r != 1 {
		t.Errorf("empty recall = %v, want 1", r)
	}
	exact := [][]Edge{{{To: 1}}, {{To: 0}}}
	if r := Recall(exact, [][]Edge{nil, nil}); r != 0 {
		t.Errorf("zero-overlap recall = %v", r)
	}
	if r := Recall(exact, exact); r != 1 {
		t.Errorf("self recall = %v", r)
	}
}

func TestInsertTopK(t *testing.T) {
	var edges []Edge
	for _, w := range []float64{0.3, 0.9, 0.1, 0.7, 0.5} {
		edges = insertTopK(edges, Edge{To: int32(w * 10), Weight: w}, 3)
	}
	if len(edges) != 3 {
		t.Fatalf("len = %d", len(edges))
	}
	want := []float64{0.9, 0.7, 0.5}
	for i, w := range want {
		if edges[i].Weight != w {
			t.Errorf("edges[%d].Weight = %v, want %v", i, edges[i].Weight, w)
		}
	}
}

func BenchmarkLSHvsExact(b *testing.B) {
	// A mid-size corpus: the crossover where LSH wins grows with V.
	texts := make([]string, 0, 400)
	rng := rand.New(rand.NewSource(1))
	words := []string{"gene", "mutation", "expression", "patient", "tumor", "kinase",
		"pathway", "variant", "binding", "promoter", "receptor", "sample"}
	for i := 0; i < 400; i++ {
		n := 6 + rng.Intn(6)
		s := make([]string, n)
		for j := range s {
			s[j] = words[rng.Intn(len(words))] + fmt.Sprint(rng.Intn(30))
		}
		texts = append(texts, joinWords(s))
	}
	c := corpus.New()
	for i, t := range texts {
		c.Sentences = append(c.Sentences, &corpus.Sentence{
			ID: fmt.Sprint(i), Text: t, Tokens: tokenize.Sentence(t),
		})
	}
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Build(c, BuilderConfig{K: 10}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lsh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Build(c, BuilderConfig{K: 10, UseLSH: true, LSH: LSHConfig{Seed: 1}}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func joinWords(ws []string) string {
	out := ""
	for i, w := range ws {
		if i > 0 {
			out += " "
		}
		out += w
	}
	return out
}
