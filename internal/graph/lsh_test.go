package graph

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/tokenize"
)

// clusteredVecs builds sparse vectors in c latent clusters: members of a
// cluster share most feature mass, so true nearest neighbours are
// cluster-mates.
func clusteredVecs(rng *rand.Rand, n, clusters, featPerCluster int) []sparseVec {
	vecs := make([]sparseVec, n)
	for i := range vecs {
		cl := i % clusters
		base := int32(cl * featPerCluster)
		ids := make([]int32, 0, featPerCluster+2)
		vals := make([]float64, 0, featPerCluster+2)
		for f := 0; f < featPerCluster; f++ {
			ids = append(ids, base+int32(f))
			vals = append(vals, 1+rng.Float64()*0.2)
		}
		// A couple of noise features.
		noise := int32(clusters*featPerCluster) + int32(rng.Intn(50))
		ids = append(ids, noise)
		vals = append(vals, 0.3)
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		var norm float64
		for _, v := range vals {
			norm += v * v
		}
		vecs[i] = sparseVec{ids: ids, vals: vals, norm: math.Sqrt(norm)}
	}
	return vecs
}

func TestLSHRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vecs := clusteredVecs(rng, 300, 10, 6)
	cfg := BuilderConfig{K: 5, Workers: 4}
	exact := knn(vecs, cfg)
	approx := knnLSH(vecs, cfg, LSHConfig{Bits: 10, Tables: 12, Seed: 3})
	r := Recall(exact, approx)
	if r < 0.8 {
		t.Errorf("LSH recall %.2f, want ≥ 0.8", r)
	}
	// Every returned list respects K and has descending weights.
	for vi, es := range approx {
		if len(es) > cfg.K {
			t.Fatalf("vertex %d has %d edges", vi, len(es))
		}
		for i := 1; i < len(es); i++ {
			if es[i-1].Weight < es[i].Weight {
				t.Fatal("not sorted")
			}
		}
	}
}

func TestLSHMoreTablesMoreRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vecs := clusteredVecs(rng, 200, 8, 5)
	cfg := BuilderConfig{K: 5, Workers: 2}
	exact := knn(vecs, cfg)
	r1 := Recall(exact, knnLSH(vecs, cfg, LSHConfig{Bits: 14, Tables: 1, Seed: 5}))
	r8 := Recall(exact, knnLSH(vecs, cfg, LSHConfig{Bits: 14, Tables: 16, Seed: 5}))
	if r8 < r1 {
		t.Errorf("recall with 16 tables (%.2f) below 1 table (%.2f)", r8, r1)
	}
}

// TestLSHMultiProbeRaisesRecall pins the multi-probe trade-off: probing
// the Hamming-1 buckets of every table must not lose recall, and on a
// deliberately under-tabled configuration it must gain some.
func TestLSHMultiProbeRaisesRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	vecs := clusteredVecs(rng, 240, 8, 5)
	cfg := BuilderConfig{K: 5, Workers: 2}
	exact := knn(vecs, cfg)
	base := LSHConfig{Bits: 14, Tables: 2, Seed: 7}
	probed := base
	probed.MultiProbe = true
	r0 := Recall(exact, knnLSH(vecs, cfg, base))
	r1 := Recall(exact, knnLSH(vecs, cfg, probed))
	if r1 < r0 {
		t.Errorf("multi-probe recall %.3f below single-probe %.3f", r1, r0)
	}
	if r1 == r0 && r0 < 0.999 {
		t.Logf("multi-probe did not change recall (%.3f) — acceptable but unusual", r0)
	}
}

func TestBuildWithLSH(t *testing.T) {
	c := figure1Corpus()
	g, err := Build(c, BuilderConfig{K: 3, GraphMode: ModeLSH, LSH: LSHConfig{Bits: 6, Tables: 10, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != len(c.UniqueTrigrams()) {
		t.Error("vertex count mismatch")
	}
	if g.NumEdges() == 0 {
		t.Error("LSH build produced no edges")
	}
	// The strong similarity of the figure's example should survive LSH.
	v1 := g.Lookup(corpus.Trigram([]string{"tumor", "-", "1"}, 1))
	if v1 < 0 || len(g.Neighbors[v1]) == 0 {
		t.Error("key vertex lost its neighbours under LSH")
	}
}

// TestLSHRecallRegression is the recall@K bar across feature modes × K,
// mirroring the sharded builder's equivalence sweep: for every vertex
// representation of Table III and both out-degrees, the LSH builder at
// its default setting must recover at least 90% of the exact k-NN edges
// on the synthetic corpus. This is the floor `make bench-lsh-smoke`
// gates CI on.
func TestLSHRecallRegression(t *testing.T) {
	corp, tags := shardTestCorpus(11, 80)
	modes := []struct {
		mode FeatureMode
		tags [][]corpus.Tag
	}{
		{AllFeatures, nil},
		{LexicalFeatures, nil},
		{MIFeatures, tags},
	}
	for _, m := range modes {
		for _, k := range []int{3, 10} {
			cfg := BuilderConfig{K: k, Mode: m.mode, MIThreshold: 0.0005, Tags: m.tags, Workers: 2}
			want, err := Build(corp, cfg)
			if err != nil {
				t.Fatalf("mode=%v K=%d: Build: %v", m.mode, k, err)
			}
			lcfg := cfg
			lcfg.GraphMode = ModeLSH
			lcfg.LSH = LSHConfig{MultiProbe: true, Seed: 9}
			got, err := Build(corp, lcfg)
			if err != nil {
				t.Fatalf("mode=%v K=%d: LSH Build: %v", m.mode, k, err)
			}
			r := Recall(want.Neighbors, got.Neighbors)
			if r < 0.9 {
				t.Errorf("mode=%v K=%d: LSH recall %.3f, want ≥ 0.9", m.mode, k, r)
			}
		}
	}
}

// TestLSHDeterministicAcrossWorkers is the determinism property the
// sharded builder is held to: for a fixed seed and corpus, the serialized
// LSH graph must be byte-identical at every worker count.
func TestLSHDeterministicAcrossWorkers(t *testing.T) {
	corp, _ := shardTestCorpus(17, 60)
	serialize := func(workers int) []byte {
		cfg := BuilderConfig{K: 5, Workers: workers, GraphMode: ModeLSH,
			LSH: LSHConfig{Bits: 10, Tables: 8, MultiProbe: true, Seed: 21}}
		g, err := Build(corp, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			t.Fatalf("workers=%d: serialize: %v", workers, err)
		}
		return buf.Bytes()
	}
	want := serialize(1)
	for _, w := range []int{2, 8} {
		if got := serialize(w); !bytes.Equal(got, want) {
			t.Errorf("workers=%d: serialized LSH graph differs from workers=1", w)
		}
	}
}

// TestLSHSameSeedSameGraph_DifferentSeedDiffers pins that the seed fully
// determines the construction: same seed twice is bit-identical, and a
// different seed produces a different (but still valid) graph on data
// where bucketing has freedom.
func TestLSHSeedDeterminism(t *testing.T) {
	corp, _ := shardTestCorpus(19, 50)
	build := func(seed int64) *Graph {
		g, err := Build(corp, BuilderConfig{K: 4, Workers: 2, GraphMode: ModeLSH,
			LSH: LSHConfig{Bits: 12, Tables: 4, Seed: seed}})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	if !build(1).Equal(build(1)) {
		t.Error("same seed produced different graphs")
	}
}

// TestLSHConfigDefaultsAndValidate covers the tested defaults()/validate
// split: zero values are filled, and Bits > 32 — which would silently
// truncate into the uint32 signature — is rejected, both directly and
// through Build.
func TestLSHConfigDefaultsAndValidate(t *testing.T) {
	var c LSHConfig
	c.defaults()
	if c.Bits <= 0 || c.Bits > 32 {
		t.Errorf("default Bits = %d, want in (0, 32]", c.Bits)
	}
	if c.Tables <= 0 || c.MaxBucket <= 0 || c.Workers <= 0 {
		t.Errorf("defaults left zero knobs: %+v", c)
	}
	if err := c.validate(); err != nil {
		t.Errorf("defaulted config rejected: %v", err)
	}

	bad := LSHConfig{Bits: 33}
	if err := bad.validate(); err == nil || !strings.Contains(err.Error(), "32") {
		t.Errorf("Bits=33 validate error = %v, want mention of the 32-bit bound", err)
	}

	// Boundary: exactly 32 bits is legal.
	ok := LSHConfig{Bits: 32}
	if err := ok.validate(); err != nil {
		t.Errorf("Bits=32 rejected: %v", err)
	}

	// Through Build: the error must surface, not truncate.
	c2 := figure1Corpus()
	if _, err := Build(c2, BuilderConfig{K: 3, GraphMode: ModeLSH, LSH: LSHConfig{Bits: 40}}); err == nil {
		t.Error("Build accepted Bits=40")
	}
	if _, err := Build(c2, BuilderConfig{K: 3, GraphMode: ModeLSH, LSH: LSHConfig{Bits: 32, Tables: 2, Seed: 1}}); err != nil {
		t.Errorf("Build rejected Bits=32: %v", err)
	}
}

func TestParseGraphMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want GraphMode
		err  bool
	}{
		{"exact", ModeExact, false},
		{"", ModeExact, false},
		{"lsh", ModeLSH, false},
		{"LSH", ModeLSH, false},
		{"annoy", 0, true},
	} {
		got, err := ParseGraphMode(tc.in)
		if (err != nil) != tc.err {
			t.Errorf("ParseGraphMode(%q) error = %v, want error %v", tc.in, err, tc.err)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("ParseGraphMode(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	if ModeExact.String() != "exact" || ModeLSH.String() != "lsh" {
		t.Errorf("GraphMode String round trip broken: %q %q", ModeExact, ModeLSH)
	}
}

// TestLSHCandidateAllocGuard pins the candidate-generation scratch to
// zero steady-state allocations: the epoch array, candidate buffer, and
// bucket CSR are all pre-sized, so a warm query allocates nothing.
func TestLSHCandidateAllocGuard(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	vecs := clusteredVecs(rng, 400, 10, 6)
	lsh := LSHConfig{Bits: 10, Tables: 8, MultiProbe: true, Seed: 3}
	lsh.defaults()
	ix := newLSHIndex(vecs, lsh)
	s := ix.newScratch(48)
	// Warm the candidate buffer to its high-water mark.
	for vi := range vecs {
		ix.candidates(int32(vi), s)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for vi := 0; vi < 50; vi++ {
			ix.candidates(int32(vi), s)
		}
	})
	if allocs != 0 {
		t.Errorf("candidate generation allocates %.1f/run, want 0", allocs)
	}
}

// TestLSHNoSelfOrDuplicateNeighbors holds the LSH path to the invariant
// the exact path's epoch tracking guarantees: no self-edges, no
// duplicated neighbours, even with multi-probe re-visiting buckets.
func TestLSHNoSelfOrDuplicateNeighbors(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	vecs := clusteredVecs(rng, 150, 5, 4)
	out := knnLSH(vecs, BuilderConfig{K: 8}, LSHConfig{Bits: 6, Tables: 6, MultiProbe: true, Seed: 2, Workers: 3})
	for v, edges := range out {
		seen := make(map[int32]bool)
		for _, e := range edges {
			if int(e.To) == v {
				t.Fatalf("self-edge at vertex %d", v)
			}
			if seen[e.To] {
				t.Fatalf("duplicate neighbour %d at vertex %d: %v", e.To, v, edges)
			}
			seen[e.To] = true
		}
	}
}

func TestRecallEdgeCases(t *testing.T) {
	if r := Recall(nil, nil); r != 1 {
		t.Errorf("empty recall = %v, want 1", r)
	}
	exact := [][]Edge{{{To: 1}}, {{To: 0}}}
	if r := Recall(exact, [][]Edge{nil, nil}); r != 0 {
		t.Errorf("zero-overlap recall = %v", r)
	}
	if r := Recall(exact, exact); r != 1 {
		t.Errorf("self recall = %v", r)
	}
}

// TestInsertTopKEdgeShared covers the shared top-K fold the LSH rerank
// now uses (the former insertTopK duplicate was removed in favour of
// build.go's insertTopKEdge).
func TestInsertTopKEdgeShared(t *testing.T) {
	var edges []Edge
	for _, w := range []float64{0.3, 0.9, 0.1, 0.7, 0.5} {
		edges = insertTopKEdge(edges, Edge{To: int32(w * 10), Weight: w}, 3, nil)
	}
	if len(edges) != 3 {
		t.Fatalf("len = %d", len(edges))
	}
	want := []float64{0.9, 0.7, 0.5}
	for i, w := range want {
		if edges[i].Weight != w {
			t.Errorf("edges[%d].Weight = %v, want %v", i, edges[i].Weight, w)
		}
	}
}

func BenchmarkLSHvsExact(b *testing.B) {
	// A mid-size corpus: the crossover where LSH wins grows with V.
	texts := make([]string, 0, 400)
	rng := rand.New(rand.NewSource(1))
	words := []string{"gene", "mutation", "expression", "patient", "tumor", "kinase",
		"pathway", "variant", "binding", "promoter", "receptor", "sample"}
	for i := 0; i < 400; i++ {
		n := 6 + rng.Intn(6)
		s := make([]string, n)
		for j := range s {
			s[j] = words[rng.Intn(len(words))] + fmt.Sprint(rng.Intn(30))
		}
		texts = append(texts, joinWords(s))
	}
	c := corpus.New()
	for i, t := range texts {
		c.Sentences = append(c.Sentences, &corpus.Sentence{
			ID: fmt.Sprint(i), Text: t, Tokens: tokenize.Sentence(t),
		})
	}
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Build(c, BuilderConfig{K: 10}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lsh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Build(c, BuilderConfig{K: 10, GraphMode: ModeLSH, LSH: LSHConfig{Seed: 1}}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func joinWords(ws []string) string {
	out := ""
	for i, w := range ws {
		if i > 0 {
			out += " "
		}
		out += w
	}
	return out
}
