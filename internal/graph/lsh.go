package graph

import (
	"runtime"
	"sort"
	"sync"
)

// The paper's conclusion flags the scalability of graph construction as an
// open problem: exact k-NN is O(V²F), "prohibitive for resources as large
// as the complete PubMed database". This file implements the standard
// remedy — locality-sensitive hashing for cosine similarity (random
// hyperplane signatures, Charikar 2002) — as an alternative candidate
// generator: vertices are hashed into multi-bit buckets across several
// independent hash tables, candidate pairs are drawn only from shared
// buckets, and exact cosine re-ranking keeps the top K. Construction
// becomes near-linear in V at a small, measurable recall cost (see
// TestLSHRecall and BenchmarkLSHvsExact).

// LSHConfig tunes the approximate k-NN search.
type LSHConfig struct {
	// Bits per signature (bucket granularity); default 12.
	Bits int
	// Tables is the number of independent hash tables; more tables raise
	// recall at linear cost (default 8).
	Tables int
	// MaxBucket caps the size of a bucket considered for candidate
	// generation; oversized buckets (degenerate hashes) are skipped
	// (default 2000).
	MaxBucket int
	// Seed for the random hyperplanes.
	Seed int64
	// Workers bounds parallelism (default GOMAXPROCS).
	Workers int
}

func (c *LSHConfig) defaults() {
	if c.Bits <= 0 {
		c.Bits = 12
	}
	if c.Tables <= 0 {
		c.Tables = 8
	}
	if c.MaxBucket <= 0 {
		c.MaxBucket = 2000
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
}

// knnLSH finds approximate nearest neighbours via random-hyperplane
// signatures with exact re-ranking.
func knnLSH(vecs []sparseVec, cfg BuilderConfig, lsh LSHConfig) [][]Edge {
	lsh.defaults()
	n := len(vecs)
	nf := 0
	for i := range vecs {
		for _, id := range vecs[i].ids {
			if int(id) >= nf {
				nf = int(id) + 1
			}
		}
	}

	// Random hyperplanes: for sparse vectors, each plane is a dense
	// vector of ±1 derived from a hash of (feature id, plane); storing it
	// implicitly keeps memory at O(1) per plane.
	planes := lsh.Bits * lsh.Tables
	sign := func(plane int, feat int32) float64 {
		// A small xorshift-style mix of (plane, feat, seed).
		x := uint64(plane)*0x9e3779b97f4a7c15 ^ uint64(feat)*0xbf58476d1ce4e5b9 ^ uint64(lsh.Seed)
		x ^= x >> 31
		x *= 0x94d049bb133111eb
		x ^= x >> 29
		if x&1 == 0 {
			return 1
		}
		return -1
	}

	// Signatures.
	sigs := make([][]uint32, lsh.Tables)
	for t := range sigs {
		sigs[t] = make([]uint32, n)
	}
	var wg sync.WaitGroup
	for w := 0; w < lsh.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for vi := w; vi < n; vi += lsh.Workers {
				v := &vecs[vi]
				for t := 0; t < lsh.Tables; t++ {
					var sigBits uint32
					for b := 0; b < lsh.Bits; b++ {
						plane := t*lsh.Bits + b
						var dot float64
						for k, id := range v.ids {
							dot += v.vals[k] * sign(plane, id)
						}
						if dot >= 0 {
							sigBits |= 1 << b
						}
					}
					sigs[t][vi] = sigBits
				}
			}
		}(w)
	}
	wg.Wait()
	_ = planes

	// Buckets per table.
	buckets := make([]map[uint32][]int32, lsh.Tables)
	for t := range buckets {
		buckets[t] = make(map[uint32][]int32)
		for vi := 0; vi < n; vi++ {
			s := sigs[t][vi]
			buckets[t][s] = append(buckets[t][s], int32(vi))
		}
	}

	// Candidate generation + exact re-ranking.
	out := make([][]Edge, n)
	for w := 0; w < lsh.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			seen := make(map[int32]struct{}, 256)
			for vi := w; vi < n; vi += lsh.Workers {
				q := &vecs[vi]
				if q.norm == 0 {
					continue
				}
				for k := range seen {
					delete(seen, k)
				}
				for t := 0; t < lsh.Tables; t++ {
					b := buckets[t][sigs[t][vi]]
					if len(b) > lsh.MaxBucket {
						continue
					}
					for _, cand := range b {
						if cand != int32(vi) {
							seen[cand] = struct{}{}
						}
					}
				}
				cands := make([]int32, 0, len(seen))
				for c := range seen {
					cands = append(cands, c)
				}
				sort.Slice(cands, func(a, b int) bool { return cands[a] < cands[b] })
				edges := make([]Edge, 0, cfg.K)
				for _, c := range cands {
					cv := &vecs[c]
					if cv.norm == 0 {
						continue
					}
					var dot float64
					for k, id := range q.ids {
						dot += q.vals[k] * valueOf(cv, id)
					}
					if dot == 0 {
						continue
					}
					edges = insertTopK(edges, Edge{To: c, Weight: dot / (q.norm * cv.norm)}, cfg.K)
				}
				out[vi] = edges
			}
		}(w)
	}
	wg.Wait()
	return out
}

// insertTopK inserts e into a descending-sorted edge buffer capped at k.
func insertTopK(edges []Edge, e Edge, k int) []Edge {
	less := func(a, b Edge) bool {
		if a.Weight != b.Weight { // lint:checked exact tie-break keeps candidate order deterministic
			return a.Weight > b.Weight
		}
		return a.To < b.To
	}
	if len(edges) == k {
		if !less(e, edges[k-1]) {
			return edges
		}
		edges = edges[:k-1]
	}
	i := sort.Search(len(edges), func(j int) bool { return less(e, edges[j]) })
	edges = append(edges, Edge{})
	copy(edges[i+1:], edges[i:])
	edges[i] = e
	return edges
}

// Recall measures the fraction of exact k-NN edges recovered by an
// approximate neighbour list (ignoring weights).
func Recall(exact, approx [][]Edge) float64 {
	var hit, total int
	for v := range exact {
		want := make(map[int32]bool, len(exact[v]))
		for _, e := range exact[v] {
			want[e.To] = true
			total++
		}
		if v < len(approx) {
			for _, e := range approx[v] {
				if want[e.To] {
					hit++
				}
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(hit) / float64(total)
}
