package graph

import (
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"slices"
	"sort"
	"strings"
	"sync"
)

// The paper's conclusion flags the scalability of graph construction as an
// open problem: exact k-NN is O(V²F), "prohibitive for resources as large
// as the complete PubMed database". This file implements the standard
// remedy — locality-sensitive hashing for cosine similarity (random
// hyperplane signatures, Charikar 2002) — as a first-class builder path.
// Every vertex gets one long (Tables·Bits)-bit signature; consecutive
// Bits-wide bands of it act as independent hash tables for candidate
// generation, optionally probed at the band's least-confident bits
// (query-directed multi-probe in the spirit of Lv et al. 2007); scanned
// candidates are filtered by Hamming distance on the full signature (a
// proxy for the cosine angle costing a couple of XOR+popcount
// instructions instead of a sparse dot product); and only the Rerank best
// survivors are re-ranked with the exact cosine. The recall cost is
// small and measured (BENCH_lsh.json; TestLSHRecallRegression).
//
// The kernel follows the exact path's discipline: precomputed per-feature
// sign blocks (one hash per 64 planes per feature instead of one per
// (plane, feature) pair); a flat band-sorted bucket CSR built by a
// counting sort with the full signatures stored inline in bucket order,
// so the scan reads memory sequentially instead of chasing
// map[uint32][]int32; fixed-size per-worker scratch that allocates
// nothing in steady state; contiguous worker blocks; and a seeded output
// that is bit-identical for every worker count
// (TestLSHDeterministicAcrossWorkers).

// GraphMode selects the nearest-neighbour algorithm graph construction
// runs: the exact inverted-index merge, or banded LSH with exact cosine
// re-ranking.
type GraphMode int

const (
	// ModeExact is the exact postings-merge k-NN search (the default).
	ModeExact GraphMode = iota
	// ModeLSH generates candidates by banded random-hyperplane LSH,
	// filters them by signature Hamming distance, and re-ranks the
	// survivors with exact cosine; sublinear candidate generation at a
	// measured recall cost (see Recall and BENCH_lsh.json).
	ModeLSH
)

func (m GraphMode) String() string {
	if m == ModeLSH {
		return "lsh"
	}
	return "exact"
}

// ParseGraphMode parses the textual form used by command-line flags.
func ParseGraphMode(s string) (GraphMode, error) {
	switch strings.ToLower(s) {
	case "", "exact":
		return ModeExact, nil
	case "lsh":
		return ModeLSH, nil
	}
	return 0, fmt.Errorf("graph: unknown graph mode %q (want exact or lsh)", s)
}

// LSHConfig tunes the approximate k-NN search.
type LSHConfig struct {
	// Bits per band (bucket granularity); must be in [1, 32] — band
	// signatures are uint32. Default 8. Bucket population is roughly
	// V/2^Bits, so Bits should grow like log2(V) on much larger corpora.
	Bits int
	// Tables is the number of bands; more bands raise recall at linear
	// candidate-generation cost (default 16). Bits·Tables is the full
	// signature length used by the Hamming filter, capped at 4096.
	Tables int
	// MaxBucket caps the size of a bucket considered for candidate
	// generation; oversized buckets (degenerate hashes) are skipped
	// (default 2000).
	MaxBucket int
	// MultiProbe additionally probes, in every band, the buckets
	// reached by flipping the band's one or two least-confident bits
	// (the hyperplanes the vertex lies closest to — the flips most
	// likely to recover a near neighbour), trading candidate-generation
	// time for recall without more tables. The recommended setting
	// leaves it off and spends the budget on Refine sweeps instead.
	MultiProbe bool
	// Rerank is the number of Hamming-filter survivors re-ranked with
	// the exact cosine per query. 0 means 4·K+24.
	Rerank int
	// Refine is the number of neighbour-of-neighbour refinement sweeps
	// (NN-descent style, Dong et al. 2011) run after LSH seeding: each
	// sweep exact-scores, for every vertex, its current neighbours,
	// their neighbours, its reverse neighbours, and their neighbours,
	// and keeps the top K. Sweeps repair the recall the banded seed
	// trades away; new-edge flags make sweeps after the first cost a
	// fraction of the first. 0 means 5; negative disables refinement.
	Refine int
	// Seed for the random hyperplanes.
	Seed int64
	// Workers bounds parallelism (default: the BuilderConfig worker
	// count, itself defaulting to GOMAXPROCS).
	Workers int
}

// defaults fills unset knobs in place. It never rejects — validation is
// a separate, tested step (validate) so bad explicit values fail loudly
// instead of being silently clamped. Rerank's zero value is resolved
// against K in knnLSH, the only place K is known.
func (c *LSHConfig) defaults() {
	if c.Bits <= 0 {
		c.Bits = 8
	}
	if c.Tables <= 0 {
		c.Tables = 16
	}
	if c.MaxBucket <= 0 {
		c.MaxBucket = 2000
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
}

// validate rejects configurations defaults cannot repair. Bits beyond 32
// would silently truncate: band signatures are uint32, so plane 33 and up
// of a band would never influence a bucket while still costing hashing
// work.
func (c *LSHConfig) validate() error {
	if c.Bits > 32 {
		return fmt.Errorf("graph: LSH Bits = %d exceeds 32 (signatures are uint32)", c.Bits)
	}
	if c.Bits*c.Tables > 4096 {
		return fmt.Errorf("graph: LSH Bits*Tables = %d exceeds 4096 planes", c.Bits*c.Tables)
	}
	return nil
}

// signWord derives 64 hyperplane signs for one feature with a single
// splitmix64-style hash: bit p of the returned word is the sign of
// hyperplane word*64+p for this feature. One hash per (feature, 64-plane
// block) replaces the previous one hash per (plane, feature).
func signWord(feat int32, word int, seed int64) uint64 {
	x := uint64(uint32(feat))*0x9e3779b97f4a7c15 ^ uint64(word)*0xbf58476d1ce4e5b9 ^ uint64(seed)*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// bandOf extracts band t (nbits wide) of a full signature.
func bandOf(sig []uint64, t, nbits int) uint32 {
	start := t * nbits
	w, off := start>>6, uint(start&63)
	v := sig[w] >> off
	if off+uint(nbits) > 64 {
		v |= sig[w+1] << (64 - off)
	}
	return uint32(v) & (uint32(1)<<uint(nbits) - 1)
}

// lshIndex is the built banded-signature index. Per band (table), the
// non-zero-norm vertices are sorted by (band signature, id) into a flat
// bucket CSR; bucket b holds verts[bucketOff[b]:bucketOff[b+1]], and the
// buckets of band t form the contiguous range
// tableBucket[t]..tableBucket[t+1] with bucketSig ascending, so a
// multi-probe lookup is a binary search. entrySigs carries a copy of each
// entry's full signature inline, in bucket order, so the Hamming scan
// reads memory sequentially.
type lshIndex struct {
	n, nf           int
	bits, tables    int
	sigWords        int
	maxBucket       int
	multiProbe      bool

	fullSigs    []uint64 // vertex-major: fullSigs[v*sigWords : (v+1)*sigWords]
	bands       []uint32 // table-major band signatures: bands[t*n+v]
	probe       []uint16 // table-major: two least-confident bit indexes, b1 | b2<<8
	verts       []int32  // per table, live vertices sorted by (band, id)
	entrySigs   []uint64 // full signature of verts[e] at e*sigWords, inline
	bucketOf    []int32  // table-major: bucket index of vertex v in table t
	bucketOff   []int32  // bucket -> start offset into verts; len buckets+1
	bucketSig   []uint32 // bucket -> band signature
	tableBucket []int32  // table -> first bucket index; len tables+1
}

// newLSHIndex hashes every vector into one long banded signature and
// builds the bucket CSR. Zero-norm vertices are left out of every bucket:
// they can never contribute a positive-weight edge, and packing them into
// the degenerate all-ones bucket would push it past MaxBucket for
// everyone else. Deterministic for a fixed seed regardless of worker
// count: each vertex's signature and probe bits are pure functions of its
// vector, and bucket order is fixed by (signature, vertex id).
func newLSHIndex(vecs []sparseVec, lsh LSHConfig) *lshIndex {
	n := len(vecs)
	nf := 0
	for i := range vecs {
		for _, id := range vecs[i].ids {
			if int(id) >= nf {
				nf = int(id) + 1
			}
		}
	}
	planes := lsh.Bits * lsh.Tables
	words := (planes + 63) / 64

	// Per-feature sign blocks: words consecutive uint64s per feature,
	// one hash each.
	signs := make([]uint64, nf*words)
	for f := 0; f < nf; f++ {
		for w := 0; w < words; w++ {
			signs[f*words+w] = signWord(int32(f), w, lsh.Seed)
		}
	}

	ix := &lshIndex{
		n: n, nf: nf, bits: lsh.Bits, tables: lsh.Tables,
		sigWords:   words,
		maxBucket:  lsh.MaxBucket,
		multiProbe: lsh.MultiProbe,
		fullSigs:   make([]uint64, n*words),
		bands:      make([]uint32, lsh.Tables*n),
		probe:      make([]uint16, lsh.Tables*n),
	}

	// Signature pass, contiguous worker blocks: accumulate ±val per
	// plane over the vector's features (branchless — a mispredicted
	// sign branch per plane would dominate), threshold at 0, and record
	// each band's two least-confident planes for directed probing.
	parallelBlocks(n, lsh.Workers, func(lo, hi int) {
		acc := make([]float64, planes)
		for vi := lo; vi < hi; vi++ {
			v := &vecs[vi]
			for p := range acc {
				acc[p] = 0
			}
			for k, id := range v.ids {
				pv := [2]float64{-v.vals[k], v.vals[k]}
				sw := signs[int(id)*words : int(id)*words+words]
				for p := 0; p < planes; p++ {
					acc[p] += pv[sw[p>>6]>>(uint(p)&63)&1]
				}
			}
			sig := ix.fullSigs[vi*words : (vi+1)*words]
			for p := 0; p < planes; p++ {
				if acc[p] >= 0 {
					sig[p>>6] |= 1 << (uint(p) & 63)
				}
			}
			for t := 0; t < lsh.Tables; t++ {
				ix.bands[t*n+vi] = bandOf(sig, t, lsh.Bits)
				// Two planes with the smallest |margin|, ties broken by
				// bit index: the flips most likely to recover a near
				// neighbour separated by a knife-edge hyperplane.
				b1, b2 := 0, 0
				m1, m2 := math.Inf(1), math.Inf(1)
				for b := 0; b < lsh.Bits; b++ {
					m := math.Abs(acc[t*lsh.Bits+b])
					switch {
					case m < m1:
						b2, m2 = b1, m1
						b1, m1 = b, m
					case m < m2:
						b2, m2 = b, m
					}
				}
				ix.probe[t*n+vi] = uint16(b1) | uint16(b2)<<8
			}
		}
	})

	live := make([]int32, 0, n)
	for vi := range vecs {
		if vecs[vi].norm > 0 {
			live = append(live, int32(vi))
		}
	}
	m := len(live)

	// Bucket CSR: per band, sort the live vertex ids by (band signature,
	// id), record bucket boundaries, and copy each entry's full signature
	// inline. Up to 16 bits a counting sort over the 2^Bits band values
	// is O(m) (iterating ids ascending keeps buckets id-sorted); wider
	// bands would need a gigabyte-scale count array, so they fall back to
	// a comparison sort.
	ix.verts = make([]int32, lsh.Tables*m)
	ix.entrySigs = make([]uint64, lsh.Tables*m*words)
	ix.bucketOf = make([]int32, lsh.Tables*n)
	ix.tableBucket = make([]int32, lsh.Tables+1)
	var cnt []int32
	if lsh.Bits <= 16 {
		cnt = make([]int32, (1<<uint(lsh.Bits))+1)
	}
	for t := 0; t < lsh.Tables; t++ {
		bands := ix.bands[t*n : (t+1)*n]
		vs := ix.verts[t*m : (t+1)*m]
		if cnt != nil {
			nb := 1 << uint(lsh.Bits)
			for i := range cnt {
				cnt[i] = 0
			}
			for _, vi := range live {
				cnt[bands[vi]+1]++
			}
			for b := 0; b < nb; b++ {
				cnt[b+1] += cnt[b]
			}
			for _, vi := range live {
				b := bands[vi]
				vs[cnt[b]] = vi
				cnt[b]++
			}
		} else {
			copy(vs, live)
			slices.SortFunc(vs, func(a, b int32) int {
				if ba, bb := bands[a], bands[b]; ba != bb {
					if ba < bb {
						return -1
					}
					return 1
				}
				return int(a - b)
			})
		}
		for j, vi := range vs {
			copy(ix.entrySigs[(t*m+j)*words:(t*m+j+1)*words], ix.fullSigs[int(vi)*words:(int(vi)+1)*words])
		}
		// Walk the sorted entries emitting one bucket per distinct band
		// value.
		for start := 0; start < m; {
			b := bands[vs[start]]
			end := start + 1
			for end < m && bands[vs[end]] == b {
				end++
			}
			bk := int32(len(ix.bucketSig))
			ix.bucketSig = append(ix.bucketSig, b)
			ix.bucketOff = append(ix.bucketOff, int32(t*m+start))
			for j := start; j < end; j++ {
				ix.bucketOf[t*n+int(vs[j])] = bk
			}
			start = end
		}
		ix.tableBucket[t+1] = int32(len(ix.bucketSig))
	}
	ix.bucketOff = append(ix.bucketOff, int32(lsh.Tables*m))
	return ix
}

// lshScratch is the per-worker query scratch: the raw scanned (Hamming,
// id) pairs with their Hamming histogram, the selected candidate list,
// the dense scatter array for exact re-ranking, and the reusable edge
// buffer. All buffers are pre-sized or reach a steady high-water mark,
// so steady state allocates nothing (TestLSHCandidateAllocGuard).
type lshScratch struct {
	m      int
	pairs  []uint64 // scanned candidates packed as ham<<32 | id
	hist   []int32  // pair count per Hamming distance
	cand   []int32  // selected candidate ids
	edges  []Edge
	qdense []float64 // feature-indexed scatter of the current query vector
}

func (ix *lshIndex) newScratch(m int) *lshScratch {
	return &lshScratch{
		m:      m,
		pairs:  make([]uint64, 0, 4096),
		hist:   make([]int32, ix.bits*ix.tables+1),
		cand:   make([]int32, 0, m),
		qdense: make([]float64, ix.nf),
	}
}

// scanBucket streams bucket b — ids and inline full signatures, both
// sequential — through the Hamming computation, appending packed
// (ham, id) pairs and counting the Hamming histogram. No branches beyond
// the oversized-bucket (degenerate hash) skip: selection happens once
// per query in candidates, not once per entry.
func (ix *lshIndex) scanBucket(b int32, qs []uint64, s *lshScratch) {
	lo, hi := int(ix.bucketOff[b]), int(ix.bucketOff[b+1])
	if hi-lo > ix.maxBucket {
		return
	}
	w := ix.sigWords
	if w == 2 {
		// The recommended 128-plane setting: keep the two query words in
		// registers.
		q0, q1 := qs[0], qs[1]
		for e := lo; e < hi; e++ {
			ham := uint64(bits.OnesCount64(ix.entrySigs[e*2]^q0) + bits.OnesCount64(ix.entrySigs[e*2+1]^q1))
			s.pairs = append(s.pairs, ham<<32|uint64(uint32(ix.verts[e])))
			s.hist[ham]++
		}
		return
	}
	for e := lo; e < hi; e++ {
		es := ix.entrySigs[e*w : e*w+w]
		var ham uint64
		for k := 0; k < w; k++ {
			ham += uint64(bits.OnesCount64(es[k] ^ qs[k]))
		}
		s.pairs = append(s.pairs, ham<<32|uint64(uint32(ix.verts[e])))
		s.hist[ham]++
	}
}

// candidates fills s.cand with the (up to m) best candidates for query
// vertex vi by Hamming distance on the full signature, drawn from the
// vertex's own bucket in every band plus — with MultiProbe — the buckets
// reached by flipping the band's two least-confident bits (singly and
// together). Selection is by histogram: the admission cutoff is the
// smallest Hamming distance whose cumulative pair count reaches m, and
// only the admitted pairs are sorted and deduplicated. The result is a
// deterministic function of the query alone — the admitted set is
// defined by values, not visit order — so neither bucket layout nor
// worker partition affects it.
func (ix *lshIndex) candidates(vi int32, s *lshScratch) {
	s.pairs = s.pairs[:0]
	s.cand = s.cand[:0]
	qs := ix.fullSigs[int(vi)*ix.sigWords : (int(vi)+1)*ix.sigWords]
	for t := 0; t < ix.tables; t++ {
		ix.scanBucket(ix.bucketOf[t*ix.n+int(vi)], qs, s)
		if !ix.multiProbe {
			continue
		}
		band := ix.bands[t*ix.n+int(vi)]
		pb := ix.probe[t*ix.n+int(vi)]
		m1 := uint32(1) << uint(pb&0xff)
		m2 := uint32(1) << uint(pb>>8)
		probes := [3]uint32{band ^ m1, band ^ m2, band ^ m1 ^ m2}
		np := 3
		if m1 == m2 { // Bits == 1: both flips name the same plane
			np = 1
		}
		lo, hi := int(ix.tableBucket[t]), int(ix.tableBucket[t+1])
		for p := 0; p < np; p++ {
			want := probes[p]
			// Binary search the band's ascending bucket signatures.
			b := lo + sort.Search(hi-lo, func(i int) bool { return ix.bucketSig[lo+i] >= want })
			if b < hi && ix.bucketSig[b] == want {
				ix.scanBucket(int32(b), qs, s)
			}
		}
	}

	// Histogram cut: the smallest Hamming distance admitting at least m
	// raw pairs (duplicates across bands inflate the raw count, so the
	// deduplicated selection may come out slightly under m — acceptable
	// slack, never an overrun). The histogram is reset by walking the
	// same bins the scan touched.
	cut, total := len(s.hist)-1, int32(0)
	for h := range s.hist {
		total += s.hist[h]
		if total >= int32(s.m) {
			cut = h
			break
		}
	}
	for h := range s.hist {
		s.hist[h] = 0
	}
	// Compact the admitted pairs in place, sort by (ham, id), dedup.
	w := 0
	bar := uint64(cut+1) << 32
	for _, p := range s.pairs {
		if p < bar {
			s.pairs[w] = p
			w++
		}
	}
	admitted := s.pairs[:w]
	slices.Sort(admitted)
	self := uint32(vi)
	var prev uint64
	for i, p := range admitted {
		if i > 0 && p == prev {
			continue
		}
		prev = p
		if id := uint32(p); id != self {
			if len(s.cand) == s.m {
				break
			}
			s.cand = append(s.cand, int32(id))
		}
	}
}

// knnLSH finds approximate nearest neighbours via banded
// random-hyperplane signatures: bucket collisions generate candidates,
// the Hamming filter keeps the Rerank best, the exact cosine ranks those
// into a seed top K, and Refine neighbour-of-neighbour sweeps repair the
// recall the seed trades away. Candidates are scored by scattering the
// query into a dense feature-indexed array and gathering over each
// candidate's features in ascending feature order — bit-identical to the
// two-pointer sparse merge (the zero entries of the scatter array
// contribute exact +0.0 terms) at a fraction of the branching. lsh must
// be defaulted and validated by the caller (Build does both).
func knnLSH(vecs []sparseVec, cfg BuilderConfig, lsh LSHConfig) [][]Edge {
	lsh.defaults()
	n := len(vecs)
	// Refinement needs a working degree of ~10 to keep the k-NN graph
	// connected enough for descent; for smaller K the working lists are
	// over-provisioned and truncated to K at the end.
	kk := cfg.K
	if kk < 10 {
		kk = 10
	}
	rerank := lsh.Rerank
	if rerank <= 0 {
		rerank = 4*kk + 24
	}
	if rerank < kk {
		rerank = kk
	}
	ix := newLSHIndex(vecs, lsh)
	out := make([][]Edge, n)
	parallelBlocks(n, lsh.Workers, func(lo, hi int) {
		s := ix.newScratch(rerank)
		for vi := lo; vi < hi; vi++ {
			q := &vecs[vi]
			if q.norm == 0 {
				continue
			}
			ix.candidates(int32(vi), s)
			for k, id := range q.ids {
				s.qdense[id] = q.vals[k]
			}
			s.edges = s.edges[:0]
			for _, c := range s.cand {
				cv := &vecs[c]
				var dot float64
				for k, id := range cv.ids {
					dot += s.qdense[id] * cv.vals[k]
				}
				if dot == 0 {
					continue
				}
				// The shared top-K fold from build.go: same tie-break,
				// insertion-order independent.
				s.edges = insertTopKEdge(s.edges, Edge{To: c, Weight: dot / (q.norm * cv.norm)}, kk, nil)
			}
			for _, id := range q.ids {
				s.qdense[id] = 0
			}
			if len(s.edges) > 0 {
				out[vi] = append(make([]Edge, 0, len(s.edges)), s.edges...)
			}
		}
	})
	sweeps := lsh.Refine
	if sweeps == 0 {
		sweeps = 5
	}
	// Every seed edge counts as new: the first sweep tries every pair.
	isNew := make([][]bool, n)
	for v := range out {
		if len(out[v]) > 0 {
			isNew[v] = make([]bool, len(out[v]))
			for i := range isNew[v] {
				isNew[v][i] = true
			}
		}
	}
	for sw := 0; sw < sweeps; sw++ {
		out, isNew = refineNeighbors(vecs, out, isNew, kk, lsh.Workers, ix.nf)
	}
	if kk > cfg.K {
		// Lists are sorted by the fold order, so the true top K is a
		// prefix of the over-provisioned working list.
		for v := range out {
			if len(out[v]) > cfg.K {
				out[v] = append(make([]Edge, 0, cfg.K), out[v][:cfg.K]...)
			}
		}
	}
	return out
}

// refineNeighbors runs one neighbour-of-neighbour sweep (the local-join
// step of NN-descent): for every vertex it exact-scores the union of its
// current neighbours's neighbours and its reverse neighbours (and
// theirs), and folds them into the carried-over top K. The sweep is
// double-buffered — every worker reads the previous round's adjacency
// and writes only its own block of the next — so the result is
// bit-identical for every worker count, unlike the asynchronous
// formulation. Because the previous list is carried over and scoring is
// exact, a sweep never makes a list worse.
//
// isNew flags edges absent from the round before (Dong et al.'s
// incremental search): a mediated pair is scored only when at least one
// of its two mediating edges is new — an old-old pair was already tried
// the sweep both edges first coexisted, so retrying it cannot change the
// result. Later sweeps therefore cost a fraction of the first.
func refineNeighbors(vecs []sparseVec, prev [][]Edge, prevIsNew [][]bool, k, workers, nf int) ([][]Edge, [][]bool) {
	n := len(prev)
	// Flattened reverse adjacency of the previous round, carrying each
	// reverse edge's newness.
	revOff := make([]int32, n+1)
	for v := range prev {
		for _, e := range prev[v] {
			revOff[e.To+1]++
		}
	}
	for v := 0; v < n; v++ {
		revOff[v+1] += revOff[v]
	}
	rev := make([]int32, revOff[n])
	revNew := make([]bool, revOff[n])
	pos := make([]int32, n)
	copy(pos, revOff[:n])
	for v := range prev {
		for i, e := range prev[v] {
			rev[pos[e.To]] = int32(v)
			revNew[pos[e.To]] = prevIsNew[v][i]
			pos[e.To]++
		}
	}

	next := make([][]Edge, n)
	nextIsNew := make([][]bool, n)
	parallelBlocks(n, workers, func(lo, hi int) {
		qdense := make([]float64, nf)
		seen := make([]int32, n)
		inPrev := make([]int32, n)
		epoch := int32(0)
		var edges []Edge
		score := func(vi int32, c int32) {
			if c == vi || seen[c] == epoch {
				return
			}
			seen[c] = epoch
			cv := &vecs[c]
			var dot float64
			for j, id := range cv.ids {
				dot += qdense[id] * cv.vals[j]
			}
			if dot == 0 {
				return
			}
			edges = insertTopKEdge(edges, Edge{To: c, Weight: dot / (vecs[vi].norm * cv.norm)}, k, nil)
		}
		for vi := lo; vi < hi; vi++ {
			q := &vecs[vi]
			if q.norm == 0 {
				continue
			}
			epoch++
			for j, id := range q.ids {
				qdense[id] = q.vals[j]
			}
			// Carry the previous list (already exact) and mark its
			// members: no re-scoring, and mediated re-encounters skip.
			edges = append(edges[:0], prev[vi]...)
			for _, e := range prev[vi] {
				seen[e.To] = epoch
				inPrev[e.To] = epoch
			}
			v32 := int32(vi)
			for i, e := range prev[vi] {
				eNew := prevIsNew[vi][i]
				for j, e2 := range prev[e.To] {
					if eNew || prevIsNew[e.To][j] {
						score(v32, e2.To)
					}
				}
			}
			for ri := revOff[vi]; ri < revOff[vi+1]; ri++ {
				r, rNew := rev[ri], revNew[ri]
				if rNew {
					score(v32, r)
				}
				for j, e2 := range prev[r] {
					if rNew || prevIsNew[r][j] {
						score(v32, e2.To)
					}
				}
			}
			for _, id := range q.ids {
				qdense[id] = 0
			}
			if len(edges) > 0 {
				next[vi] = append(make([]Edge, 0, len(edges)), edges...)
				nw := make([]bool, len(edges))
				for i, e := range edges {
					nw[i] = inPrev[e.To] != epoch
				}
				nextIsNew[vi] = nw
			}
		}
	})
	return next, nextIsNew
}

// parallelBlocks runs fn over contiguous index blocks [lo, hi) covering
// [0, n), one block per worker — the partition shape the sharded builder
// standardized on (better locality than striding, and each out[vi] is
// written by exactly one goroutine).
func parallelBlocks(n, workers int, fn func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := n*w/workers, n*(w+1)/workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Recall measures the fraction of exact k-NN edges recovered by an
// approximate neighbour list (ignoring weights).
func Recall(exact, approx [][]Edge) float64 {
	var hit, total int
	for v := range exact {
		want := make(map[int32]bool, len(exact[v]))
		for _, e := range exact[v] {
			want[e.To] = true
			total++
		}
		if v < len(approx) {
			for _, e := range approx[v] {
				if want[e.To] {
					hit++
				}
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(hit) / float64(total)
}
