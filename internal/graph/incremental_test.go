package graph

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/corpus"
	"repro/internal/corpus/synth"
)

// unionOf concatenates corpora without copying sentences.
func unionOf(parts ...*corpus.Corpus) *corpus.Corpus {
	u := corpus.New()
	for _, p := range parts {
		u.Sentences = append(u.Sentences, p.Sentences...)
	}
	return u
}

// assertCanonicalEqual fails the test unless the two graphs are exactly
// equal up to canonical vertex renumbering: same vertex set, same
// neighbour lists with bit-equal weights, same CSR arrays.
func assertCanonicalEqual(t *testing.T, tag string, got, want *Graph) {
	t.Helper()
	cg, cw := got.CanonicalClone(), want.CanonicalClone()
	if cg.Equal(cw) {
		return
	}
	if len(cg.Vertices) != len(cw.Vertices) {
		t.Fatalf("%s: %d vertices, want %d", tag, len(cg.Vertices), len(cw.Vertices))
	}
	for v := range cg.Vertices {
		if cg.Vertices[v] != cw.Vertices[v] {
			t.Fatalf("%s: vertex %d is %q, want %q", tag, v, cg.Vertices[v], cw.Vertices[v])
		}
		a, b := cg.Neighbors[v], cw.Neighbors[v]
		if len(a) != len(b) {
			t.Fatalf("%s: vertex %d (%q) has %d neighbours, want %d\n got %v\nwant %v",
				tag, v, cg.Vertices[v], len(a), len(b), a, b)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("%s: vertex %d (%q) neighbour %d is {%d, %v}, want {%d, %v}",
					tag, v, cg.Vertices[v], j, a[j].To, a[j].Weight, b[j].To, b[j].Weight)
			}
		}
	}
	t.Fatalf("%s: graphs differ (CSR mirror)", tag)
}

// streamEquals runs the core equivalence property: feeding batches through
// an Updater seeded on base must reproduce Build on the growing union
// corpus under the Updater's frozen statistics, exactly, after every batch.
func streamEquals(t *testing.T, tag string, base *corpus.Corpus, batches [][]*corpus.Sentence, cfg BuilderConfig) {
	t.Helper()
	u, err := NewUpdater(base, cfg)
	if err != nil {
		t.Fatalf("%s: NewUpdater: %v", tag, err)
	}
	full := cfg
	full.Stats = u.Stats()
	full.Tags = nil
	union := unionOf(base)
	for bi, batch := range batches {
		if _, err := u.AddSentences(batch); err != nil {
			t.Fatalf("%s: batch %d: %v", tag, bi, err)
		}
		union.Sentences = append(union.Sentences, batch...)
		want, err := Build(union, full)
		if err != nil {
			t.Fatalf("%s: Build union after batch %d: %v", tag, bi, err)
		}
		assertCanonicalEqual(t, fmt.Sprintf("%s/batch=%d", tag, bi), u.Graph(), want)
	}
}

// synthBatches generates a base corpus of nBase sentences plus batches of
// fresh sentences from an independently seeded generator.
func synthBatches(seed int64, nBase int, batchSizes []int) (*corpus.Corpus, [][]*corpus.Sentence) {
	cfg := synth.DefaultConfig(synth.BC2GM, seed)
	total := nBase
	for _, b := range batchSizes {
		total += b
	}
	cfg.Sentences = total
	c := synth.NewGenerator(cfg).Generate()
	base := corpus.New()
	base.Sentences = c.Sentences[:nBase]
	var batches [][]*corpus.Sentence
	at := nBase
	for _, b := range batchSizes {
		batches = append(batches, c.Sentences[at:at+b])
		at += b
	}
	return base, batches
}

// TestIncrementalSmoke is the tiny equivalence check bench-smoke runs: a
// hand-sized corpus, two batches, exact equality after each.
func TestIncrementalSmoke(t *testing.T) {
	base := figure1Corpus()
	b1 := makeCorpus([]string{
		"wilms tumor - 1 expression was measured in positive patients .",
		"the wt1 gene was not expressed in this subclone .",
	}).Sentences
	b2 := makeCorpus([]string{
		"drug response was observed in tumor - 2 positive patients .",
	}).Sentences
	streamEquals(t, "smoke", base, [][]*corpus.Sentence{b1, b2}, BuilderConfig{K: 3, Workers: 2})
}

// TestUpdaterMatchesBuild sweeps K and both feature modes over synthetic
// corpora, streaming several batches (including a single-sentence batch).
func TestUpdaterMatchesBuild(t *testing.T) {
	for _, mode := range []FeatureMode{AllFeatures, LexicalFeatures} {
		for _, k := range []int{2, 5, 10} {
			base, batches := synthBatches(int64(100+k), 60, []int{1, 10, 25})
			tag := fmt.Sprintf("mode=%v/K=%d", mode, k)
			streamEquals(t, tag, base, batches, BuilderConfig{K: k, Mode: mode, Workers: 3})
		}
	}
}

// TestUpdaterMatchesBuildMIMode covers the MIFeatures path: the Updater
// snapshots the MI-selected feature set from the base corpus's tags, and
// streamed batches need no tags at all.
func TestUpdaterMatchesBuildMIMode(t *testing.T) {
	base, batches := synthBatches(7, 50, []int{8, 16})
	tags := make([][]corpus.Tag, len(base.Sentences))
	for i, s := range base.Sentences {
		tags[i] = s.Tags
	}
	cfg := BuilderConfig{K: 5, Mode: MIFeatures, MIThreshold: 0.0005, Tags: tags, Workers: 2}
	streamEquals(t, "mi", base, batches, cfg)
}

// TestUpdaterMatchesBuildMaxDF exercises the document-frequency cap,
// including features crossing the cap mid-stream (tiny MaxDF forces it).
func TestUpdaterMatchesBuildMaxDF(t *testing.T) {
	for _, maxDF := range []int{5, 25, 200} {
		base, batches := synthBatches(int64(maxDF), 60, []int{5, 20, 20})
		tag := fmt.Sprintf("maxdf=%d", maxDF)
		streamEquals(t, tag, base, batches, BuilderConfig{K: 5, MaxDF: maxDF, Workers: 3})
	}
}

// TestUpdaterRepeatedAndEmptyBatches: re-streaming already-seen sentences
// only bumps counts (no new vertices), and empty batches are no-ops.
func TestUpdaterRepeatedAndEmptyBatches(t *testing.T) {
	base, batches := synthBatches(11, 40, []int{10})
	u, err := NewUpdater(base, BuilderConfig{K: 5, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.AddSentences(nil); err != nil {
		t.Fatal(err)
	}
	res, err := u.AddSentences(batches[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.NewVertices == 0 {
		t.Fatal("fresh batch introduced no vertices")
	}
	n := u.Graph().NumVertices()
	res2, err := u.AddSentences(batches[0])
	if err != nil {
		t.Fatal(err)
	}
	if res2.NewVertices != 0 || u.Graph().NumVertices() != n {
		t.Fatalf("re-streaming known sentences appended %d vertices", res2.NewVertices)
	}
	union := unionOf(base)
	union.Sentences = append(union.Sentences, batches[0]...)
	union.Sentences = append(union.Sentences, batches[0]...)
	full := BuilderConfig{K: 5, Workers: 2, Stats: u.Stats()}
	want, err := Build(union, full)
	if err != nil {
		t.Fatal(err)
	}
	assertCanonicalEqual(t, "repeat", u.Graph(), want)
}

// TestUpdaterCloneIsolated: updating a clone leaves the original intact.
func TestUpdaterCloneIsolated(t *testing.T) {
	base, batches := synthBatches(13, 40, []int{10})
	u, err := NewUpdater(base, BuilderConfig{K: 5, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	before := u.Graph().CanonicalClone()
	c := u.Clone()
	if _, err := c.AddSentences(batches[0]); err != nil {
		t.Fatal(err)
	}
	if !u.Graph().CanonicalClone().Equal(before) {
		t.Fatal("updating a clone mutated the original")
	}
	if c.Graph().NumVertices() == u.Graph().NumVertices() {
		t.Fatal("clone did not grow")
	}
}

// TestPatchCSRMatchesBuildCSR: the patched CSR mirror after an update is
// exactly what a from-scratch BuildCSR derives.
func TestPatchCSRMatchesBuildCSR(t *testing.T) {
	base, batches := synthBatches(17, 50, []int{15})
	u, err := NewUpdater(base, BuilderConfig{K: 5, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.AddSentences(batches[0]); err != nil {
		t.Fatal(err)
	}
	g := u.Graph()
	off, to, w := g.EdgeOffsets, g.EdgeTo, g.EdgeWeight
	g.BuildCSR()
	if len(off) != len(g.EdgeOffsets) || len(to) != len(g.EdgeTo) {
		t.Fatal("patched CSR shape differs from rebuilt CSR")
	}
	for i := range off {
		if off[i] != g.EdgeOffsets[i] {
			t.Fatalf("offset %d: patched %d, rebuilt %d", i, off[i], g.EdgeOffsets[i])
		}
	}
	for i := range to {
		if to[i] != g.EdgeTo[i] || w[i] != g.EdgeWeight[i] { // lint:checked bit-equality is the contract under test
			t.Fatalf("edge %d: patched {%d,%v}, rebuilt {%d,%v}", i, to[i], w[i], g.EdgeTo[i], g.EdgeWeight[i])
		}
	}
}

// TestIncrementalSerializationRoundTrip: an incrementally updated graph
// (appended CSR rows, stable ids) survives WriteTo/ReadFrom bit-exactly.
func TestIncrementalSerializationRoundTrip(t *testing.T) {
	base, batches := synthBatches(19, 40, []int{12})
	u, err := NewUpdater(base, BuilderConfig{K: 5, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.AddSentences(batches[0]); err != nil {
		t.Fatal(err)
	}
	g := u.Graph()
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(g2) {
		t.Fatal("incrementally updated graph did not round-trip to an equal graph")
	}
	// A graph with more vertices than neighbour rows (legal for
	// hand-assembled graphs) must serialize without panicking.
	h := &Graph{
		Vertices:  []corpus.NGram{"a\x00b\x00c", "b\x00c\x00d"},
		Index:     map[corpus.NGram]int{"a\x00b\x00c": 0, "b\x00c\x00d": 1},
		Neighbors: [][]Edge{{{To: 1, Weight: 0.5}}},
		K:         1,
	}
	buf.Reset()
	if _, err := h.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	h2, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2.NumVertices() != 2 || len(h2.Neighbors[0]) != 1 {
		t.Fatal("short-Neighbors graph did not round-trip")
	}
}
