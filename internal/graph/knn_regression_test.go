package graph

import (
	"math"
	"math/rand"
	"testing"
)

// TestKNNMixedSignNoDuplicate is a regression test for the first-touch
// sentinel bug: the scoring loop used scores[cand] == 0 to detect a
// candidate's first contribution, so a mixed-sign partial dot product that
// transiently cancelled to exactly zero re-appended the candidate to the
// touched list and duplicated its edge in the top-K output. The epoch-based
// tracking must report each neighbour exactly once.
func TestKNNMixedSignNoDuplicate(t *testing.T) {
	// Vertex 1 shares features 0,1,2 with the query vertex 0. Accumulating
	// in feature order, its partial dot is 1, then 1 + (-1) = 0 — exactly
	// zero midway — then 1 again via feature 2.
	vecs := []sparseVec{
		{ids: []int32{0, 1, 2}, vals: []float64{1, 1, 1}, norm: math.Sqrt(3)},
		{ids: []int32{0, 1, 2}, vals: []float64{1, -1, 1}, norm: math.Sqrt(3)},
	}
	out := knn(vecs, BuilderConfig{K: 4, Workers: 1})
	if len(out[0]) != 1 {
		t.Fatalf("query vertex has %d edges %v, want exactly 1", len(out[0]), out[0])
	}
	e := out[0][0]
	if e.To != 1 {
		t.Fatalf("edge goes to %d, want 1", e.To)
	}
	// dot = 1 - 1 + 1 = 1, cosine = 1/(√3·√3) = 1/3.
	if want := 1.0 / 3.0; math.Abs(e.Weight-want) > 1e-15 {
		t.Errorf("edge weight = %v, want %v", e.Weight, want)
	}
}

// TestKNNIncrementalOneBatchGolden pins a one-batch incremental update
// against literal expectations: streaming two sentences into an Updater
// seeded on the Figure 1 corpus must (a) match a from-scratch Build on the
// union under the frozen base statistics, edge for edge and bit for bit,
// and (b) reproduce pinned weight values (math.Log is pure Go and
// deterministic across platforms, so these are stable goldens).
func TestKNNIncrementalOneBatchGolden(t *testing.T) {
	base := figure1Corpus()
	u, err := NewUpdater(base, BuilderConfig{K: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	batch := makeCorpus([]string{
		"wilms tumor - 1 expression was measured in positive patients .",
		"the wt1 gene was not expressed in this subclone .",
	}).Sentences
	res, err := u.AddSentences(batch)
	if err != nil {
		t.Fatal(err)
	}
	if res.NewVertices == 0 || len(res.DirtyRows) < res.NewVertices {
		t.Fatalf("implausible update result %+v", res)
	}
	union := unionOf(base)
	union.Sentences = append(union.Sentences, batch...)
	want, err := Build(union, BuilderConfig{K: 3, Workers: 1, Stats: u.Stats()})
	if err != nil {
		t.Fatal(err)
	}
	assertCanonicalEqual(t, "one-batch", u.Graph(), want)

	// Golden spot-check: the "wilms tumor -" 3-gram occurs in both base
	// and batch; its strongest neighbour and weight are pinned.
	g := u.Graph()
	vi := g.Lookup("wilms\x00tumor\x00-")
	if vi < 0 {
		t.Fatal("missing wilms tumor - vertex")
	}
	es := g.Neighbors[vi]
	if len(es) != 3 {
		t.Fatalf("wilms tumor - has %d neighbours, want 3: %v", len(es), es)
	}
	if got := g.Vertices[es[0].To]; got != "patient\x00tumor\x00-" {
		t.Errorf("top neighbour is %q, want %q", got, "patient\x00tumor\x00-")
	}
	const goldenW = 0.7095683551597101
	if es[0].Weight != goldenW { // lint:checked golden pins the exact float64
		t.Errorf("top weight = %.16g, want %.16g", es[0].Weight, goldenW)
	}
}

// TestKNNNoDuplicateNeighborsRandom sweeps random mixed-sign vectors and
// asserts the invariant the sentinel bug violated: no neighbour list may
// mention the same vertex twice, and self-edges never appear.
func TestKNNNoDuplicateNeighborsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 10 + rng.Intn(40)
		nf := 4 + rng.Intn(8)
		vecs := make([]sparseVec, n)
		for v := range vecs {
			var norm float64
			for f := 0; f < nf; f++ {
				if rng.Float64() < 0.5 {
					continue
				}
				// Small integer values make exact cancellation common.
				val := float64(rng.Intn(5) - 2)
				if val == 0 {
					continue
				}
				vecs[v].ids = append(vecs[v].ids, int32(f))
				vecs[v].vals = append(vecs[v].vals, val)
				norm += val * val
			}
			vecs[v].norm = math.Sqrt(norm)
		}
		out := knn(vecs, BuilderConfig{K: 5, Workers: 1 + rng.Intn(4)})
		for v, edges := range out {
			seen := make(map[int32]bool)
			for _, e := range edges {
				if int(e.To) == v {
					t.Fatalf("trial %d: self-edge at vertex %d", trial, v)
				}
				if seen[e.To] {
					t.Fatalf("trial %d: duplicate neighbour %d at vertex %d: %v", trial, e.To, v, edges)
				}
				seen[e.To] = true
			}
		}
	}
}
