package graph

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/corpus"
	"repro/internal/features"
)

func TestMIFeatureCountMonotone(t *testing.T) {
	c := figure1Corpus()
	tags := make([][]corpus.Tag, len(c.Sentences))
	for i, s := range c.Sentences {
		tags[i] = make([]corpus.Tag, len(s.Tokens))
		words := s.Words()
		for j := range words {
			if words[j] == "wilms" {
				tags[i][j] = corpus.B
			} else {
				tags[i][j] = corpus.O
			}
		}
	}
	var prev int
	first := true
	for _, th := range []float64{0, 0.001, 0.01, 0.1, 1} {
		n, err := MIFeatureCount(c, BuilderConfig{Mode: MIFeatures, MIThreshold: th, Tags: tags})
		if err != nil {
			t.Fatal(err)
		}
		if !first && n > prev {
			t.Errorf("feature count grew with threshold: %d at %g after %d", n, th, prev)
		}
		prev, first = n, false
	}
	if _, err := MIFeatureCount(c, BuilderConfig{}); err == nil {
		t.Error("want error without tags")
	}
}

func TestCosineBounds(t *testing.T) {
	// Property: all k-NN edge weights are valid cosines of non-negative
	// vectors: within [0, 1] (PPMI vectors are non-negative).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vecs := clusteredVecs(rng, 40, 5, 4)
		for _, es := range knn(vecs, BuilderConfig{K: 6, Workers: 2}) {
			for _, e := range es {
				if e.Weight < -1e-12 || e.Weight > 1+1e-12 || math.IsNaN(e.Weight) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSelfSimilarityExcluded(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	vecs := clusteredVecs(rng, 30, 3, 4)
	for vi, es := range knn(vecs, BuilderConfig{K: 5, Workers: 1}) {
		for _, e := range es {
			if int(e.To) == vi {
				t.Fatalf("vertex %d is its own neighbour", vi)
			}
		}
	}
}

func TestIdenticalVectorsAreNearestNeighbours(t *testing.T) {
	// Two vertices with identical vectors must be each other's top
	// neighbour with cosine 1.
	mk := func(ids []int32, vals []float64) sparseVec {
		var n float64
		for _, v := range vals {
			n += v * v
		}
		return sparseVec{ids: ids, vals: vals, norm: math.Sqrt(n)}
	}
	vecs := []sparseVec{
		mk([]int32{0, 1}, []float64{1, 2}),
		mk([]int32{0, 1}, []float64{1, 2}),
		mk([]int32{5}, []float64{3}),
	}
	nb := knn(vecs, BuilderConfig{K: 2, Workers: 1})
	if len(nb[0]) == 0 || nb[0][0].To != 1 || math.Abs(nb[0][0].Weight-1) > 1e-12 {
		t.Errorf("neighbours of 0: %+v", nb[0])
	}
	if len(nb[1]) == 0 || nb[1][0].To != 0 {
		t.Errorf("neighbours of 1: %+v", nb[1])
	}
	// Vertex 2 shares no features: it must have no neighbours at all.
	if len(nb[2]) != 0 {
		t.Errorf("disjoint vertex has neighbours: %+v", nb[2])
	}
}

func TestValueOf(t *testing.T) {
	v := sparseVec{ids: []int32{2, 5, 9}, vals: []float64{0.2, 0.5, 0.9}}
	cases := []struct {
		id   int32
		want float64
	}{{2, 0.2}, {5, 0.5}, {9, 0.9}, {0, 0}, {3, 0}, {10, 0}}
	for _, c := range cases {
		if got := valueOf(&v, c.id); got != c.want {
			t.Errorf("valueOf(%d) = %g, want %g", c.id, got, c.want)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	c := figure1Corpus()
	a, err := Build(c, BuilderConfig{K: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(c, BuilderConfig{K: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumVertices() != b.NumVertices() {
		t.Fatal("vertex counts differ")
	}
	for v := range a.Neighbors {
		ea, eb := a.Neighbors[v], b.Neighbors[v]
		if len(ea) != len(eb) {
			t.Fatalf("vertex %d: %d vs %d neighbours under different worker counts", v, len(ea), len(eb))
		}
		for j := range ea {
			if ea[j].To != eb[j].To || math.Abs(ea[j].Weight-eb[j].Weight) > 1e-12 {
				t.Fatalf("vertex %d neighbour %d differs across worker counts", v, j)
			}
		}
	}
}

func TestPPMIVectorsNonNegativeSorted(t *testing.T) {
	c := figure1Corpus()
	vecs, verts, _, _, _ := vertexVectors(c, BuilderConfig{
		K: 5, Mode: AllFeatures, Extractor: features.NewExtractor(nil),
	})
	if len(vecs) != len(verts) {
		t.Fatal("length mismatch")
	}
	for _, v := range vecs {
		if !sort.SliceIsSorted(v.ids, func(a, b int) bool { return v.ids[a] < v.ids[b] }) {
			t.Fatal("feature ids not sorted")
		}
		for _, val := range v.vals {
			if val <= 0 {
				t.Fatal("non-positive PPMI value kept")
			}
		}
	}
}
