package graph

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/corpus"
	"repro/internal/tokenize"
)

func makeCorpus(texts []string) *corpus.Corpus {
	c := corpus.New()
	for i, t := range texts {
		c.Sentences = append(c.Sentences, &corpus.Sentence{
			ID:     string(rune('A' + i)),
			Text:   t,
			Tokens: tokenize.Sentence(t),
		})
	}
	return c
}

func figure1Corpus() *corpus.Corpus {
	return makeCorpus([]string{
		"drug response was significant in wilms tumor - 1 positive patients .",
		"we observed the following mutations in wilms tumor - 1 .",
		"we did not observe this mutation in the patient tumor - 1 subclone .",
		"wilms tumor - 1 ( wt1 ) gene was highly expressed .",
		"we did not observe this mutation in the patient tumor - 2 subclone .",
	})
}

func TestBuildBasics(t *testing.T) {
	c := figure1Corpus()
	g, err := Build(c, BuilderConfig{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != len(c.UniqueTrigrams()) {
		t.Errorf("vertices %d, want %d", g.NumVertices(), len(c.UniqueTrigrams()))
	}
	for vi, es := range g.Neighbors {
		if len(es) > 3 {
			t.Fatalf("vertex %d has %d neighbours, K=3", vi, len(es))
		}
		for _, e := range es {
			if e.Weight < -1e-9 || e.Weight > 1+1e-9 {
				t.Fatalf("cosine weight %g out of [0,1]", e.Weight)
			}
			if int(e.To) == vi {
				t.Fatal("self edge")
			}
		}
		// Descending weights.
		for i := 1; i < len(es); i++ {
			if es[i-1].Weight < es[i].Weight {
				t.Fatal("neighbors not sorted by weight")
			}
		}
	}
}

func TestSimilarContextsAreNeighbors(t *testing.T) {
	// The paper's Figure 1: [tumor - 1] should be similar to [tumor - 2]
	// (shared contexts) and to [wilms tumor -].
	c := figure1Corpus()
	g, err := Build(c, BuilderConfig{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	v1 := g.Lookup(corpus.Trigram([]string{"tumor", "-", "1"}, 1))
	v2 := g.Lookup(corpus.Trigram([]string{"tumor", "-", "2"}, 1))
	if v1 < 0 || v2 < 0 {
		t.Fatal("expected vertices missing")
	}
	found := false
	for _, e := range g.Neighbors[v1] {
		if int(e.To) == v2 {
			found = true
		}
	}
	if !found {
		t.Errorf("[tumor - 1] neighbours do not include [tumor - 2]")
	}
}

// bruteKNN computes exact k-NN by dense pairwise cosine.
func bruteKNN(vecs []sparseVec, k int) [][]Edge {
	n := len(vecs)
	out := make([][]Edge, n)
	for i := 0; i < n; i++ {
		if vecs[i].norm == 0 {
			continue
		}
		var cands []Edge
		for j := 0; j < n; j++ {
			if i == j || vecs[j].norm == 0 {
				continue
			}
			var dot float64
			for a, id := range vecs[i].ids {
				dot += vecs[i].vals[a] * valueOf(&vecs[j], id)
			}
			if dot == 0 {
				continue // inverted-index search cannot see zero-overlap pairs
			}
			cands = append(cands, Edge{To: int32(j), Weight: dot / (vecs[i].norm * vecs[j].norm)})
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].Weight != cands[b].Weight {
				return cands[a].Weight > cands[b].Weight
			}
			return cands[a].To < cands[b].To
		})
		if len(cands) > k {
			cands = cands[:k]
		}
		out[i] = cands
	}
	return out
}

func TestKNNMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Random sparse vectors.
	n, nf := 60, 40
	vecs := make([]sparseVec, n)
	for i := range vecs {
		used := make(map[int32]bool)
		for j := 0; j < 5+rng.Intn(5); j++ {
			used[int32(rng.Intn(nf))] = true
		}
		ids := make([]int32, 0, len(used))
		for id := range used {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		vals := make([]float64, len(ids))
		var norm float64
		for j := range vals {
			vals[j] = rng.Float64() + 0.1
			norm += vals[j] * vals[j]
		}
		vecs[i] = sparseVec{ids: ids, vals: vals, norm: math.Sqrt(norm)}
	}
	got := knn(vecs, BuilderConfig{K: 4, Workers: 3})
	want := bruteKNN(vecs, 4)
	for i := range got {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("vertex %d: %d neighbours, want %d", i, len(got[i]), len(want[i]))
		}
		for j := range got[i] {
			if math.Abs(got[i][j].Weight-want[i][j].Weight) > 1e-9 {
				t.Fatalf("vertex %d neighbour %d: weight %g, want %g",
					i, j, got[i][j].Weight, want[i][j].Weight)
			}
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(corpus.New(), BuilderConfig{}); err == nil {
		t.Error("want error for empty corpus")
	}
	c := figure1Corpus()
	if _, err := Build(c, BuilderConfig{Mode: MIFeatures}); err == nil {
		t.Error("want error for MI mode without tags")
	}
	if _, err := Build(c, BuilderConfig{Mode: MIFeatures, Tags: [][]corpus.Tag{nil}}); err == nil {
		t.Error("want error for tag row count mismatch")
	}
}

func TestLexicalMode(t *testing.T) {
	c := figure1Corpus()
	g, err := Build(c, BuilderConfig{K: 3, Mode: LexicalFeatures})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() == 0 {
		t.Fatal("no vertices")
	}
	if g.NumEdges() == 0 {
		t.Fatal("no edges in lexical mode")
	}
}

func TestMIMode(t *testing.T) {
	c := figure1Corpus()
	tags := make([][]corpus.Tag, len(c.Sentences))
	for i, s := range c.Sentences {
		tags[i] = make([]corpus.Tag, len(s.Tokens))
		for j := range tags[i] {
			tags[i][j] = corpus.O
		}
		// Tag "wilms tumor - 1" tokens as gene in sentences containing it.
		words := s.Words()
		for j := 0; j+3 < len(words); j++ {
			if words[j] == "wilms" && words[j+1] == "tumor" {
				tags[i][j] = corpus.B
				tags[i][j+1], tags[i][j+2], tags[i][j+3] = corpus.I, corpus.I, corpus.I
			}
		}
	}
	g, err := Build(c, BuilderConfig{K: 3, Mode: MIFeatures, MIThreshold: 0.001, Tags: tags})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() == 0 {
		t.Fatal("no vertices")
	}
	// A higher threshold keeps fewer features, possibly fewer edges.
	g2, err := Build(c, BuilderConfig{K: 3, Mode: MIFeatures, MIThreshold: 10, Tags: tags})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() > g.NumEdges() {
		t.Errorf("stricter MI threshold produced more edges (%d > %d)", g2.NumEdges(), g.NumEdges())
	}
}

func TestInfluences(t *testing.T) {
	g := &Graph{
		Vertices: []corpus.NGram{"a", "b", "c"},
		Neighbors: [][]Edge{
			{{To: 1, Weight: 0.5}, {To: 2, Weight: 0.25}},
			{{To: 2, Weight: 1.0}},
			{},
		},
		K: 2,
	}
	st := g.Influences()
	if st.Influencees[2] != 2 || st.Influencees[1] != 1 || st.Influencees[0] != 0 {
		t.Errorf("influencees = %v", st.Influencees)
	}
	if math.Abs(st.Influence[2]-1.25) > 1e-12 {
		t.Errorf("influence[2] = %g", st.Influence[2])
	}
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
}

func TestWeaklyConnected(t *testing.T) {
	g := &Graph{
		Vertices:  []corpus.NGram{"a", "b", "c"},
		Neighbors: [][]Edge{{{To: 1}}, {}, {}},
	}
	if g.WeaklyConnected() {
		t.Error("disconnected graph reported connected")
	}
	g.Neighbors[2] = []Edge{{To: 1}}
	if !g.WeaklyConnected() {
		t.Error("connected graph reported disconnected")
	}
	empty := &Graph{}
	if !empty.WeaklyConnected() {
		t.Error("empty graph should be vacuously connected")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	c := figure1Corpus()
	g, err := Build(c, BuilderConfig{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := g.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo returned %d, buffer has %d", n, buf.Len())
	}
	g2, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.K != g.K {
		t.Fatal("header mismatch after round trip")
	}
	for i := range g.Vertices {
		if g.Vertices[i] != g2.Vertices[i] {
			t.Fatalf("vertex %d mismatch", i)
		}
		if len(g.Neighbors[i]) != len(g2.Neighbors[i]) {
			t.Fatalf("vertex %d edge count mismatch", i)
		}
		for j := range g.Neighbors[i] {
			if g.Neighbors[i][j].To != g2.Neighbors[i][j].To {
				t.Fatalf("edge target mismatch at %d/%d", i, j)
			}
			if math.Abs(g.Neighbors[i][j].Weight-g2.Neighbors[i][j].Weight) > 1e-5 {
				t.Fatalf("edge weight mismatch at %d/%d", i, j)
			}
		}
	}
}

func TestReadFromMalformed(t *testing.T) {
	for _, bad := range []string{
		"",
		"K x\n",
		"K 3\nV x\n",
		"K 3\nV 1\nE 0 1.0\n",           // edge before vertex
		"K 3\nV 2\nN a\nE 5 1.0\nN b\n", // edge out of range
		"K 3\nV 3\nN a\nN b\n",          // vertex count mismatch
		"K 3\nV 1\nN a\nX nonsense\n",   // unknown record
	} {
		if _, err := ReadFrom(bytes.NewReader([]byte(bad))); err == nil {
			t.Errorf("want error for %q", bad)
		}
	}
}

func TestLogHistogram(t *testing.T) {
	vals := []float64{0, 0.1, 1, 10, 100, 100}
	h := LogHistogram(vals, 5)
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != len(vals) {
		t.Errorf("histogram loses values: %d of %d", total, len(vals))
	}
	if len(h.Edges) != len(h.Counts)+1 {
		t.Error("edge count mismatch")
	}
	if h.String() == "" {
		t.Error("empty render")
	}
	// Degenerate all-zero input.
	h0 := LogHistogram([]float64{0, 0}, 4)
	if h0.Counts[0] != 2 {
		t.Errorf("zero histogram = %+v", h0)
	}
}

func TestMaxDFPruning(t *testing.T) {
	// With an aggressive MaxDF the graph must still build, possibly with
	// fewer edges.
	c := figure1Corpus()
	full, err := Build(c, BuilderConfig{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := Build(c, BuilderConfig{K: 3, MaxDF: 2})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.NumEdges() > full.NumEdges() {
		t.Errorf("pruned graph has more edges (%d > %d)", pruned.NumEdges(), full.NumEdges())
	}
}

func BenchmarkBuildSmall(b *testing.B) {
	texts := make([]string, 0, 100)
	base := figure1Corpus()
	for i := 0; i < 20; i++ {
		for _, s := range base.Sentences {
			texts = append(texts, s.Text)
		}
	}
	c := makeCorpus(texts[:26]) // IDs limited by rune trick
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Build(c, BuilderConfig{K: 5}); err != nil {
			b.Fatal(err)
		}
	}
}
