package graph

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/corpus"
	"repro/internal/features"
	"repro/internal/tokenize"
)

// FeatureMode selects the vertex representation of the paper's Table III.
type FeatureMode int

const (
	// AllFeatures uses every feature the BANNER-style extractor produces
	// at the 3-gram's center position.
	AllFeatures FeatureMode = iota
	// LexicalFeatures uses only the lemmas of the words in a window of
	// length 5 around the center position.
	LexicalFeatures
	// MIFeatures uses the subset of AllFeatures whose mutual information
	// with the tagger-assigned BIO tag exceeds MIThreshold.
	MIFeatures
)

func (m FeatureMode) String() string {
	switch m {
	case LexicalFeatures:
		return "Lexical-features"
	case MIFeatures:
		return "MI-features"
	}
	return "All-features"
}

// Stats is the frozen corpus-level side of the vertex representation: the
// feature alphabet, the per-feature and grand co-occurrence totals, and (in
// MIFeatures mode) the selected feature set. PPMI is a corpus-level
// statistic — pmi(v,f) = log(c(v,f)·N / (c(v)·c(f))) — so a vertex's vector
// is only a local function of its own counts once N and c(f) are pinned.
// Freezing the snapshot taken from a base corpus is what makes incremental
// maintenance tractable: under frozen statistics, adding sentences changes
// exactly the vectors of the 3-grams that occur in them. Features unseen in
// the base corpus are outside the frozen feature space and are ignored,
// mirroring frozen-vocabulary streaming retrieval systems.
type Stats struct {
	alphabet  *features.Alphabet
	featTotal []float64
	grand     float64
	miKeep    map[string]bool
	mode      FeatureMode
}

// NumFeatures returns the size of the frozen feature space.
func (s *Stats) NumFeatures() int { return s.alphabet.Len() }

// Grand returns the grand co-occurrence total N of the snapshot.
func (s *Stats) Grand() float64 { return s.grand }

// BuilderConfig controls graph construction.
type BuilderConfig struct {
	// K is the out-degree of the k-NN graph (default 10, paper's default).
	K int
	// Mode selects the vertex representation.
	Mode FeatureMode
	// MIThreshold filters features in MIFeatures mode (e.g. 0.005, 0.01).
	MIThreshold float64
	// Tags supplies per-sentence BIO tags, parallel to the corpus
	// sentences, for MIFeatures mode. Typically the base CRF's decoded
	// output (train gold tags also work).
	Tags [][]corpus.Tag
	// Extractor provides the feature set for AllFeatures/MIFeatures
	// (default: plain BANNER-style extractor).
	Extractor *features.Extractor
	// MaxDF drops features occurring at more than this many vertices from
	// candidate generation (they still contribute to cosine scores of
	// generated candidates). 0 means no cap. High-document-frequency
	// features generate enormous candidate lists without discriminating;
	// capping them prunes the exact search with negligible recall loss.
	MaxDF int
	// Workers bounds the parallelism of the k-NN search (default
	// GOMAXPROCS).
	Workers int
	// Shards partitions the vertex set for postings-partitioned k-NN
	// construction and per-shard propagation layout (see shard.go).
	// 0 or 1 selects the single-index path; the assembled graph is
	// bit-identical for every value.
	Shards int
	// Stats, when non-nil, freezes the corpus-level statistics of the PPMI
	// transform to a snapshot taken from an earlier corpus: the feature
	// alphabet stops growing (features unseen in the snapshot corpus are
	// ignored), featTotal and the grand total are not re-accumulated, and
	// MIFeatures mode reuses the snapshot's selected features (so Tags is
	// not required). This is the contract the incremental Updater
	// maintains: Build(union, cfg with the base snapshot) is exactly the
	// graph an Updater seeded on the base corpus converges to after
	// streaming in the remainder.
	Stats *Stats
	// GraphMode selects the nearest-neighbour search algorithm:
	// ModeExact (the default) runs the exact inverted-index merge;
	// ModeLSH runs banded random-hyperplane locality-sensitive hashing
	// with exact cosine re-ranking — the remedy for the construction
	// scalability the paper's conclusion flags as an open problem.
	// Recall is high but not perfect; see Recall, BENCH_lsh.json, and
	// the graph package tests.
	GraphMode GraphMode
	// LSH tunes the approximate search when GraphMode is ModeLSH.
	LSH LSHConfig
}

// Build constructs the 3-gram similarity graph over the corpus (typically
// the union of labelled and unlabelled data, per Algorithm 1). With
// cfg.Shards > 1 the k-NN search runs the postings-partitioned merge of
// shard.go; the assembled graph is bit-identical either way.
func Build(corp *corpus.Corpus, cfg BuilderConfig) (*Graph, error) {
	g, _, err := buildWithShards(corp, cfg)
	return g, err
}

// sparseVec is a sorted-by-feature-id sparse vector with cached norm.
type sparseVec struct {
	ids  []int32
	vals []float64
	norm float64
}

// vertexVectors aggregates per-occurrence feature counts per 3-gram and
// converts them to PPMI vectors. It also returns the raw counts, per-vertex
// totals, and the corpus statistics so the incremental Updater can retain
// them; Build discards those extras.
func vertexVectors(corp *corpus.Corpus, cfg BuilderConfig) ([]sparseVec, []corpus.NGram, []map[int32]float64, []float64, *Stats) {
	verts := corp.UniqueTrigrams()
	index := make(map[corpus.NGram]int, len(verts))
	for i, v := range verts {
		index[v] = i
	}
	counts, vertTotal, st := countFeatures(corp, cfg, index, len(verts))
	vecs := make([]sparseVec, len(verts))
	if st.grand == 0 {
		// Possible in MIFeatures mode when the threshold excludes every
		// feature, or under a degenerate frozen snapshot: the graph
		// degenerates to isolated vertices.
		return vecs, verts, counts, vertTotal, st
	}
	for vi := range verts {
		vecs[vi] = ppmiVec(counts[vi], vertTotal[vi], st)
	}
	return vecs, verts, counts, vertTotal, st
}

// featureEnumerator returns the per-position feature-string enumeration of
// the configured mode. Build's counting pass and the incremental Updater
// share it so both observe identical feature strings in identical order.
// The returned closure reuses an internal buffer and is not safe for
// concurrent use.
func featureEnumerator(cfg BuilderConfig, miKeep map[string]bool) func(words []string, i int, fn func(string)) {
	if cfg.Mode == LexicalFeatures {
		return func(words []string, i int, fn func(string)) {
			for d := -2; d <= 2; d++ {
				j := i + d
				if j < 0 || j >= len(words) {
					continue
				}
				fn(fmt.Sprintf("lem%+d=%s", d, tokenize.Lemma(words[j])))
			}
		}
	}
	featBuf := make([]string, 0, 64)
	return func(words []string, i int, fn func(string)) {
		featBuf = cfg.Extractor.AppendPosition(featBuf[:0], words, i)
		for _, f := range featBuf {
			if miKeep != nil && !miKeep[f] {
				continue
			}
			fn(f)
		}
	}
}

// countFeatures runs the co-occurrence counting pass. With cfg.Stats nil it
// accumulates fresh statistics and freezes them into the returned snapshot;
// with cfg.Stats set it counts under the frozen snapshot — the alphabet,
// featTotal, and grand are left untouched and features outside the frozen
// space are skipped (they contribute neither to counts nor to vertTotal).
func countFeatures(corp *corpus.Corpus, cfg BuilderConfig, index map[corpus.NGram]int, nVerts int) ([]map[int32]float64, []float64, *Stats) {
	counts := make([]map[int32]float64, nVerts)
	for i := range counts {
		counts[i] = make(map[int32]float64, 8)
	}
	vertTotal := make([]float64, nVerts)
	st := cfg.Stats
	fresh := st == nil
	if fresh {
		st = &Stats{alphabet: features.NewAlphabet(), mode: cfg.Mode}
		if cfg.Mode == MIFeatures {
			st.miKeep = miSelect(corp, cfg)
		}
	}
	enum := featureEnumerator(cfg, st.miKeep)
	addFeat := func(vi int, f string) {
		id := st.alphabet.Lookup(f)
		if id < 0 {
			return // outside the frozen feature space
		}
		counts[vi][int32(id)]++
		if fresh {
			for id >= len(st.featTotal) {
				st.featTotal = append(st.featTotal, 0)
			}
			st.featTotal[id]++
			st.grand++
		}
		vertTotal[vi]++
	}
	for _, s := range corp.Sentences {
		words := s.Words()
		for i := range words {
			vi := index[corpus.Trigram(words, i)]
			enum(words, i, func(f string) { addFeat(vi, f) })
		}
	}
	if fresh {
		st.alphabet.Freeze()
	}
	return counts, vertTotal, st
}

// ppmiVec converts one vertex's raw co-occurrence counts into its PPMI
// vector under the corpus statistics st:
// pmi = log(c(v,f)·N / (c(v)·c(f))), clamped at 0. Build's batch transform
// and the Updater's per-vertex recompute share this function, which is what
// makes incremental rows bit-identical to from-scratch ones.
func ppmiVec(m map[int32]float64, total float64, st *Stats) sparseVec {
	ids := make([]int32, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	vals := make([]float64, 0, len(ids))
	keep := ids[:0]
	var norm float64
	for _, id := range ids {
		pmi := math.Log(m[id] * st.grand / (total * st.featTotal[id]))
		if pmi <= 0 {
			continue
		}
		keep = append(keep, id)
		vals = append(vals, pmi)
		norm += pmi * pmi
	}
	return sparseVec{ids: keep, vals: vals, norm: math.Sqrt(norm)}
}

// MIFeatureCount reports how many features pass the MI threshold of the
// configuration — the paper quotes 85 features for MI > 0.005 and 40 for
// MI > 0.01 on BC2GM. Useful for calibrating thresholds on new corpora.
func MIFeatureCount(corp *corpus.Corpus, cfg BuilderConfig) (int, error) {
	if cfg.Tags == nil || len(cfg.Tags) != len(corp.Sentences) {
		return 0, fmt.Errorf("graph: MIFeatureCount requires Tags parallel to sentences")
	}
	if cfg.Extractor == nil {
		cfg.Extractor = features.NewExtractor(nil)
	}
	return len(miSelect(corp, cfg)), nil
}

// miSelect computes the mutual information between each feature's presence
// and the BIO tag over all token positions, returning the features above
// the threshold.
func miSelect(corp *corpus.Corpus, cfg BuilderConfig) map[string]bool {
	// Rough pre-size: BANNER-style extraction yields tens of distinct
	// features per token, heavily shared across tokens.
	nTok := 0
	for _, s := range corp.Sentences {
		nTok += len(s.Tokens)
	}
	featTag := make(map[string]*[corpus.NumTags]float64, 8*nTok)
	var tagCount [corpus.NumTags]float64
	var n float64
	featBuf := make([]string, 0, 64)
	for si, s := range corp.Sentences {
		words := s.Words()
		tags := cfg.Tags[si]
		for i := range words {
			if i >= len(tags) {
				break
			}
			t := tags[i]
			tagCount[t]++
			n++
			featBuf = cfg.Extractor.AppendPosition(featBuf[:0], words, i)
			for _, f := range featBuf {
				c := featTag[f]
				if c == nil {
					c = new([corpus.NumTags]float64)
					featTag[f] = c
				}
				c[t]++
			}
		}
	}
	keep := make(map[string]bool, 128)
	if n == 0 {
		return keep
	}
	for f, c := range featTag {
		var cf float64
		for _, v := range c {
			cf += v
		}
		var mi float64
		for t := 0; t < corpus.NumTags; t++ {
			pt := tagCount[t] / n
			if pt == 0 {
				continue
			}
			// Present half.
			if c[t] > 0 {
				p := c[t] / n
				mi += p * math.Log2(p/((cf/n)*pt))
			}
			// Absent half.
			if abs := tagCount[t] - c[t]; abs > 0 && n-cf > 0 {
				p := abs / n
				mi += p * math.Log2(p/(((n-cf)/n)*pt))
			}
		}
		if mi > cfg.MIThreshold {
			keep[f] = true
		}
	}
	return keep
}

// posting is one inverted-index entry: a candidate vertex together with its
// stored value for the feature, so the scoring loop accumulates partial dot
// products by a straight postings merge instead of binary-searching back
// into the candidate's vector per (feature, candidate) pair.
type posting struct {
	v   int32
	val float64
}

// knn finds, for every vertex, its K most cosine-similar vertices, using an
// inverted index for candidate generation and exact sparse dot products for
// scoring. The search over query vertices runs in parallel.
//
// First-touch tracking uses a per-worker epoch array rather than a
// scores[cand] == 0 sentinel: with mixed-sign vector values a partial dot
// product can transiently cancel to exactly zero, which would re-append the
// candidate and corrupt the top-K pass (PPMI values are strictly positive,
// but knn is also exercised directly with arbitrary vectors).
func knn(vecs []sparseVec, cfg BuilderConfig) [][]Edge {
	n := len(vecs)
	// Inverted index: feature id -> postings carrying (vertex, value).
	nf := 0
	for i := range vecs {
		for _, id := range vecs[i].ids {
			if int(id) >= nf {
				nf = int(id) + 1
			}
		}
	}
	// Two passes: count postings per feature, then fill one flat backing —
	// no per-list append growth.
	counts := make([]int32, nf)
	total := 0
	for i := range vecs {
		for _, id := range vecs[i].ids {
			counts[id]++
		}
		total += len(vecs[i].ids)
	}
	flat := make([]posting, total)
	postings := make([][]posting, nf)
	pos := 0
	for f := range postings {
		postings[f] = flat[pos : pos : pos+int(counts[f])]
		pos += int(counts[f])
	}
	for vi := range vecs {
		v32 := int32(vi)
		for k, id := range vecs[vi].ids {
			postings[id] = append(postings[id], posting{v: v32, val: vecs[vi].vals[k]})
		}
	}

	out := make([][]Edge, n)
	var wg sync.WaitGroup
	workers := cfg.Workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			scores := make([]float64, n)
			seen := make([]int32, n) // epoch at which scores[c] became valid
			epoch := int32(0)
			touched := make([]int32, 0, 1024)
			for vi := w; vi < n; vi += workers {
				q := &vecs[vi]
				if q.norm == 0 {
					continue
				}
				epoch++
				touched = scoreInto(q, int32(vi), postings, cfg.MaxDF, scores, seen, epoch, touched[:0])
				// Select top K by cosine. Stale scores need no reset pass:
				// the next query's epoch invalidates them wholesale.
				out[vi] = topK(scores, touched, q.norm, vecs, cfg.K, nil)
			}
		}(w)
	}
	wg.Wait()
	return out
}

// scoreInto accumulates the sparse partial dot products of query vector q
// against every candidate sharing an (uncapped) feature, via a straight
// postings merge. seen/scores are epoch-tracked per-worker scratch; the ids
// of the candidates touched this epoch are appended to touched and
// returned. The batch knn search and the incremental Updater's dirty-row
// recompute share this kernel, so incremental scores are bit-identical to
// from-scratch ones: both iterate q's features in ascending id order over
// postings lists sorted by vertex id.
func scoreInto(q *sparseVec, self int32, postings [][]posting, maxDF int, scores []float64, seen []int32, epoch int32, touched []int32) []int32 {
	for k, id := range q.ids {
		pl := postings[id]
		if maxDF > 0 && len(pl) > maxDF {
			continue
		}
		qv := q.vals[k]
		for _, p := range pl {
			if p.v == self {
				continue
			}
			if seen[p.v] != epoch {
				seen[p.v] = epoch
				scores[p.v] = 0
				touched = append(touched, p.v)
			}
			// Sparse partial dot: accumulate q_f · c_f.
			scores[p.v] += qv * p.val
		}
	}
	return touched
}

// valueOf returns the vector's value for a feature id (binary search).
func valueOf(v *sparseVec, id int32) float64 {
	lo, hi := 0, len(v.ids)
	for lo < hi {
		mid := (lo + hi) / 2
		if v.ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(v.ids) && v.ids[lo] == id {
		return v.vals[lo]
	}
	return 0
}

// topK selects the K best candidates by cosine = score/(|q||c|), keeping a
// small descending-sorted buffer with ordered insertion (O(C·K) with K=10).
// rank, when non-nil, substitutes a canonical vertex ordering for the raw
// ids in the tie-break: the incremental Updater appends vertices in arrival
// order but must break exact-weight ties the way a from-scratch Build over
// the sorted union corpus would, so it passes the sorted-NGram rank of each
// vertex. A nil rank ties on the ids themselves (Build's vertex order is
// already the canonical one).
func topK(scores []float64, touched []int32, qnorm float64, vecs []sparseVec, k int, rank []int32) []Edge {
	edges := make([]Edge, 0, k)
	for _, c := range touched {
		cn := vecs[c].norm
		if cn == 0 {
			continue
		}
		edges = insertTopKEdge(edges, Edge{To: c, Weight: scores[c] / (qnorm * cn)}, k, rank)
	}
	return edges
}

// edgeLess is the total order the top-K selection sorts by: cosine weight
// descending, then canonical vertex order ascending on exact-weight ties.
// Because no two candidates of one query share a To id, the order is
// strict and total — which makes insertTopKEdge insertion-order
// independent, the property the sharded merge relies on to fold per-shard
// candidate passes into one buffer without changing bits.
func edgeLess(a, b Edge, rank []int32) bool {
	if a.Weight != b.Weight { // lint:checked exact tie-break keeps candidate order deterministic
		return a.Weight > b.Weight
	}
	if rank != nil {
		return rank[a.To] < rank[b.To]
	}
	return a.To < b.To
}

// insertTopKEdge folds one candidate into a descending-sorted top-K
// buffer by ordered insertion (O(K) with K=10), returning the possibly
// regrown slice. The batch topK pass, the incremental Updater, and the
// sharded merge all share this fold.
func insertTopKEdge(edges []Edge, e Edge, k int, rank []int32) []Edge {
	if len(edges) == k {
		if !edgeLess(e, edges[k-1], rank) {
			return edges
		}
		edges = edges[:k-1]
	}
	i := sort.Search(len(edges), func(j int) bool { return edgeLess(e, edges[j], rank) })
	edges = append(edges, Edge{})
	copy(edges[i+1:], edges[i:])
	edges[i] = e
	return edges
}
