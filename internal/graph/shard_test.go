package graph

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/corpus"
	"repro/internal/corpus/synth"
)

// shardTestCorpus generates a synthetic corpus plus per-sentence tags for
// MIFeatures-mode configs.
func shardTestCorpus(seed int64, sentences int) (*corpus.Corpus, [][]corpus.Tag) {
	cfg := synth.DefaultConfig(synth.BC2GM, seed)
	cfg.Sentences = sentences
	c := synth.NewGenerator(cfg).Generate()
	tags := make([][]corpus.Tag, len(c.Sentences))
	for i, s := range c.Sentences {
		tags[i] = s.Tags
	}
	return c, tags
}

// TestShardedBuildMatchesBuild is the construction half of the sharding
// equivalence bar: for every shard count, feature mode, and K, the flat
// graph BuildSharded assembles is bit-identical to the single-index
// Build — same vertices, same edges, same weights, same CSR arrays.
func TestShardedBuildMatchesBuild(t *testing.T) {
	corp, tags := shardTestCorpus(11, 80)
	modes := []struct {
		mode FeatureMode
		tags [][]corpus.Tag
	}{
		{AllFeatures, nil},
		{LexicalFeatures, nil},
		{MIFeatures, tags},
	}
	for _, m := range modes {
		for _, k := range []int{3, 10} {
			cfg := BuilderConfig{K: k, Mode: m.mode, MIThreshold: 0.0005, Tags: m.tags, Workers: 3}
			want, err := Build(corp, cfg)
			if err != nil {
				t.Fatalf("mode=%v K=%d: Build: %v", m.mode, k, err)
			}
			for _, s := range []int{1, 2, 3, 8} {
				scfg := cfg
				scfg.Shards = s
				sg, err := BuildSharded(corp, scfg)
				if err != nil {
					t.Fatalf("mode=%v K=%d S=%d: BuildSharded: %v", m.mode, k, s, err)
				}
				tag := fmt.Sprintf("mode=%v/K=%d/S=%d", m.mode, k, s)
				if !sg.Flat().Equal(want) {
					assertCanonicalEqual(t, tag, sg.Flat(), want)
					t.Fatalf("%s: sharded graph differs from Build in CSR or vertex order", tag)
				}
				assertShardConsistent(t, tag, sg)
			}
		}
	}
}

// TestShardedBuildMatchesBuildMaxDF pins the document-frequency cap to
// global postings frequency: a tiny MaxDF makes any shard-local capping
// produce different candidate sets, which the equality would catch.
func TestShardedBuildMatchesBuildMaxDF(t *testing.T) {
	corp, _ := shardTestCorpus(13, 60)
	for _, maxDF := range []int{1, 4, 32} {
		cfg := BuilderConfig{K: 5, MaxDF: maxDF, Workers: 2}
		want, err := Build(corp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []int{2, 8} {
			scfg := cfg
			scfg.Shards = s
			sg, err := BuildSharded(corp, scfg)
			if err != nil {
				t.Fatal(err)
			}
			tag := fmt.Sprintf("maxDF=%d/S=%d", maxDF, s)
			if !sg.Flat().Equal(want) {
				assertCanonicalEqual(t, tag, sg.Flat(), want)
				t.Fatalf("%s: sharded graph differs from Build", tag)
			}
		}
	}
}

// TestShardGraphRoundTrip serializes a graph through the flat text format
// and re-partitions the decoded copy: the derived shard slices must match
// the ones derived from the original graph exactly — the flat Graph is
// the interchange format, and sharding is a pure function of it.
func TestShardGraphRoundTrip(t *testing.T) {
	corp, _ := shardTestCorpus(17, 50)
	g, err := Build(corp, BuilderConfig{K: 5, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []int{1, 3, 8} {
		a, err := ShardGraph(g, s)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ShardGraph(g2, s)
		if err != nil {
			t.Fatal(err)
		}
		tag := fmt.Sprintf("roundtrip/S=%d", s)
		assertShardConsistent(t, tag, a)
		assertShardConsistent(t, tag, b)
		if a.NumShards() != b.NumShards() {
			t.Fatalf("%s: %d shards vs %d after round trip", tag, a.NumShards(), b.NumShards())
		}
		for si := range a.Shards {
			sa, sb := &a.Shards[si], &b.Shards[si]
			if !int32SlicesEqual(sa.Verts, sb.Verts) || !int32SlicesEqual(sa.Off, sb.Off) ||
				!int32SlicesEqual(sa.To, sb.To) || !int32SlicesEqual(sa.HaloGlobal, sb.HaloGlobal) ||
				!int32SlicesEqual(sa.HaloOwner, sb.HaloOwner) || !int32SlicesEqual(sa.HaloLocal, sb.HaloLocal) {
				t.Fatalf("%s: shard %d layout differs after serialization round trip", tag, si)
			}
			if len(sa.W) != len(sb.W) {
				t.Fatalf("%s: shard %d has %d weights vs %d", tag, si, len(sa.W), len(sb.W))
			}
			for e := range sa.W {
				if sa.W[e] != sb.W[e] {
					t.Fatalf("%s: shard %d weight %d is %v vs %v", tag, si, e, sa.W[e], sb.W[e])
				}
			}
		}
	}
}

// TestNewShardMapInvariants checks the partition itself: every vertex in
// exactly one shard, local ids dense and ascending in global order, and
// shard counts clamped to the vertex count.
func TestNewShardMapInvariants(t *testing.T) {
	verts := []corpus.NGram{"a b c", "b c d", "c d e", "d e f", "e f g"}
	for _, s := range []int{1, 2, 3, 8, 0, -4} {
		sm := NewShardMap(verts, s)
		if sm.S < 1 || sm.S > len(verts) {
			t.Fatalf("s=%d: shard count %d outside [1,%d]", s, sm.S, len(verts))
		}
		seen := make(map[int32]bool)
		for sh, vs := range sm.Verts {
			prev := int32(-1)
			for li, gi := range vs {
				if seen[gi] {
					t.Fatalf("s=%d: vertex %d in two shards", s, gi)
				}
				seen[gi] = true
				if gi <= prev {
					t.Fatalf("s=%d: shard %d vertex list not ascending", s, sh)
				}
				prev = gi
				if sm.ShardOf[gi] != int32(sh) || sm.Local[gi] != int32(li) {
					t.Fatalf("s=%d: vertex %d maps to (%d,%d), listed at (%d,%d)",
						s, gi, sm.ShardOf[gi], sm.Local[gi], sh, li)
				}
			}
		}
		if len(seen) != len(verts) {
			t.Fatalf("s=%d: %d vertices partitioned, want %d", s, len(seen), len(verts))
		}
	}
}

// assertShardConsistent cross-checks a ShardedGraph's per-shard slices
// against its flat CSR: decoding every shard row (local and halo targets
// back to global ids) must reproduce the flat rows exactly, and the halo
// tables must agree with the shard map.
func assertShardConsistent(t *testing.T, tag string, sg *ShardedGraph) {
	t.Helper()
	g, sm := sg.G, sg.Map
	g.EnsureCSR()
	if len(sg.Shards) != sm.S {
		t.Fatalf("%s: %d shard slices for %d shards", tag, len(sg.Shards), sm.S)
	}
	for s := range sg.Shards {
		sh := &sg.Shards[s]
		nLocal := len(sh.Verts)
		for i := range sh.HaloGlobal {
			gi := sh.HaloGlobal[i]
			if sm.ShardOf[gi] == int32(s) {
				t.Fatalf("%s: shard %d halo entry %d owns vertex %d", tag, s, i, gi)
			}
			if sh.HaloOwner[i] != sm.ShardOf[gi] || sh.HaloLocal[i] != sm.Local[gi] {
				t.Fatalf("%s: shard %d halo entry %d tables disagree with shard map", tag, s, i)
			}
			if i > 0 {
				po, pl := sh.HaloOwner[i-1], sh.HaloLocal[i-1]
				if po > sh.HaloOwner[i] || (po == sh.HaloOwner[i] && pl >= sh.HaloLocal[i]) {
					t.Fatalf("%s: shard %d halo not sorted by (owner, local) at %d", tag, s, i)
				}
			}
		}
		for li, gi := range sh.Verts {
			lo, hi := sh.Off[li], sh.Off[li+1]
			glo, ghi := g.EdgeOffsets[gi], g.EdgeOffsets[gi+1]
			if hi-lo != ghi-glo {
				t.Fatalf("%s: shard %d row %d has %d edges, flat row has %d", tag, s, li, hi-lo, ghi-glo)
			}
			for e := lo; e < hi; e++ {
				enc := sh.To[e]
				var target int32
				if int(enc) < nLocal {
					target = sh.Verts[enc]
				} else {
					target = sh.HaloGlobal[int(enc)-nLocal]
				}
				ge := glo + (e - lo)
				if target != g.EdgeTo[ge] {
					t.Fatalf("%s: shard %d row %d edge %d decodes to %d, flat has %d",
						tag, s, li, e-lo, target, g.EdgeTo[ge])
				}
				if sh.W[e] != g.EdgeWeight[ge] {
					t.Fatalf("%s: shard %d row %d edge %d weight %v, flat has %v",
						tag, s, li, e-lo, sh.W[e], g.EdgeWeight[ge])
				}
			}
		}
	}
}

func int32SlicesEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
