// Package graph builds and represents the 3-gram similarity graph at the
// heart of GraphNER. Vertices are the unique 3-grams of a partially
// labelled corpus; each vertex is represented by a sparse vector of
// positive pointwise mutual information (PPMI) between the 3-gram and the
// feature instances observed at its occurrences; edges connect each vertex
// to its K most cosine-similar vertices (a directed k-NN graph, K=10 in
// the paper). Three vertex representations from the paper's Table III are
// supported: all BANNER features, lexical window lemmas, and features
// filtered by mutual information with the tagger's output.
package graph

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/analysis/assert"
	"repro/internal/corpus"
)

// Edge is a weighted directed edge to a vertex index.
type Edge struct {
	To     int32
	Weight float64
}

// Graph is the directed k-NN similarity graph over 3-gram vertices.
//
// The adjacency is held twice: Neighbors is the slice-of-slices view the
// construction and serialization code produces, and EdgeOffsets / EdgeTo /
// EdgeWeight mirror it in CSR (compressed sparse row) layout — three flat
// arrays with the out-edges of vertex v occupying the half-open index
// range [EdgeOffsets[v], EdgeOffsets[v+1]). The CSR view is what the
// propagation hot loop reads: it removes one pointer indirection and one
// slice header per vertex and keeps edge targets and weights contiguous.
// Build and ReadFrom populate it; hand-assembled graphs get it lazily via
// EnsureCSR.
type Graph struct {
	Vertices  []corpus.NGram
	Index     map[corpus.NGram]int
	Neighbors [][]Edge // Neighbors[v] has at most K entries
	K         int

	// CSR mirror of Neighbors (see type comment). len(EdgeOffsets) is
	// NumVertices()+1 when built; edge order matches Neighbors exactly.
	EdgeOffsets []int32
	EdgeTo      []int32
	EdgeWeight  []float64
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.Vertices) }

// BuildCSR (re)derives the flat CSR adjacency from Neighbors. Call it
// after mutating Neighbors on a graph whose CSR view is already in use.
// Vertices beyond len(Neighbors) (possible on hand-assembled graphs) get
// empty edge ranges.
func (g *Graph) BuildCSR() {
	g.EdgeOffsets, g.EdgeTo, g.EdgeWeight = csrFromLists(g.Neighbors, g.csrRows())
	if assert.Enabled {
		assert.CSRMonotonic(g.EdgeOffsets, len(g.EdgeTo), "graph CSR")
	}
}

// EnsureCSR builds the CSR adjacency if it is absent or stale (offset
// table inconsistent with Neighbors). It returns the graph for chaining.
func (g *Graph) EnsureCSR() *Graph {
	rows := g.csrRows()
	if len(g.EdgeOffsets) != rows+1 || int(g.EdgeOffsets[rows]) != g.NumEdges() {
		g.BuildCSR()
	}
	return g
}

// csrRows is the row count of the CSR table: every vertex gets a row even
// when Neighbors is shorter than Vertices.
func (g *Graph) csrRows() int {
	rows := len(g.Neighbors)
	if len(g.Vertices) > rows {
		rows = len(g.Vertices)
	}
	return rows
}

// csrFromLists flattens slice-of-slices adjacency into CSR arrays,
// preserving edge order within each vertex. rows ≥ len(lists) pads the
// offset table with empty trailing ranges.
func csrFromLists(lists [][]Edge, rows int) (offsets, to []int32, weight []float64) {
	if rows < len(lists) {
		rows = len(lists)
	}
	total := 0
	for _, es := range lists {
		total += len(es)
	}
	offsets = make([]int32, rows+1)
	to = make([]int32, total)
	weight = make([]float64, total)
	pos := int32(0)
	for v, es := range lists {
		offsets[v] = pos
		for _, e := range es {
			to[pos] = e.To
			weight[pos] = e.Weight
			pos++
		}
	}
	for v := len(lists); v <= rows; v++ {
		offsets[v] = pos
	}
	return offsets, to, weight
}

// PatchCSR incrementally reconciles the CSR mirror with Neighbors after
// an in-place update that rewrote the rows listed in dirty (ascending
// vertex id) and possibly appended new vertices. Offsets are recomputed
// for every row — appends shift all downstream offsets, so that O(V) pass
// is unavoidable — but edge payloads of clean rows are block-copied from
// the old arrays in maximal contiguous runs rather than re-derived from
// the slice-of-slices view; only dirty rows are written element-wise. The
// result is exactly what BuildCSR would produce.
func (g *Graph) PatchCSR(dirty []int32) {
	if len(g.EdgeOffsets) == 0 {
		g.BuildCSR()
		return
	}
	oldOff, oldTo, oldW := g.EdgeOffsets, g.EdgeTo, g.EdgeWeight
	oldRows := len(oldOff) - 1
	rows := g.csrRows()
	offsets := make([]int32, rows+1)
	total := int32(0)
	for v := 0; v < rows; v++ {
		offsets[v] = total
		if v < len(g.Neighbors) {
			total += int32(len(g.Neighbors[v]))
		}
	}
	offsets[rows] = total
	to := make([]int32, total)
	weight := make([]float64, total)
	di := 0
	for v := 0; v < rows; {
		for di < len(dirty) && int(dirty[di]) < v {
			di++
		}
		isDirty := di < len(dirty) && int(dirty[di]) == v
		if isDirty || v >= oldRows {
			if v < len(g.Neighbors) {
				pos := offsets[v]
				for _, e := range g.Neighbors[v] {
					to[pos] = e.To
					weight[pos] = e.Weight
					pos++
				}
			}
			v++
			continue
		}
		// Extend a maximal run of clean pre-existing rows and copy its
		// edge payload in one block: clean rows are bitwise unchanged, and
		// within a run old and new layouts are both contiguous.
		run := v + 1
		for run < oldRows && (di >= len(dirty) || int(dirty[di]) != run) {
			run++
		}
		copy(to[offsets[v]:], oldTo[oldOff[v]:oldOff[run]])
		copy(weight[offsets[v]:], oldW[oldOff[v]:oldOff[run]])
		v = run
	}
	g.EdgeOffsets, g.EdgeTo, g.EdgeWeight = offsets, to, weight
	if assert.Enabled {
		assert.CSRMonotonic(g.EdgeOffsets, len(g.EdgeTo), "graph CSR patch")
	}
}

// CanonicalClone returns a structurally equal copy with vertices
// renumbered into ascending NGram order — the order Build derives from
// UniqueTrigrams — with edge targets remapped, each neighbour row
// re-sorted under the canonical ids, and the CSR mirror rebuilt. Two
// graphs over the same corpus that differ only in vertex numbering (a
// from-scratch Build versus an incrementally maintained Updater graph)
// canonicalize to equal values.
func (g *Graph) CanonicalClone() *Graph {
	n := len(g.Vertices)
	order := make([]int32, n) // new id -> old id
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool { return g.Vertices[order[a]] < g.Vertices[order[b]] })
	perm := make([]int32, n) // old id -> new id
	for newID, oldID := range order {
		perm[oldID] = int32(newID)
	}
	ng := &Graph{
		Vertices:  make([]corpus.NGram, n),
		Index:     make(map[corpus.NGram]int, n),
		Neighbors: make([][]Edge, n),
		K:         g.K,
	}
	for newID, oldID := range order {
		v := g.Vertices[oldID]
		ng.Vertices[newID] = v
		ng.Index[v] = newID
		if int(oldID) >= len(g.Neighbors) || g.Neighbors[oldID] == nil {
			continue
		}
		row := g.Neighbors[oldID]
		es := make([]Edge, len(row))
		for j, e := range row {
			es[j] = Edge{To: perm[e.To], Weight: e.Weight}
		}
		sort.Slice(es, func(a, b int) bool {
			if es[a].Weight != es[b].Weight { // lint:checked exact tie-break mirrors topK's total order
				return es[a].Weight > es[b].Weight
			}
			return es[a].To < es[b].To
		})
		ng.Neighbors[newID] = es
	}
	ng.BuildCSR()
	return ng
}

// Equal reports strict structural equality: same vertices in the same
// order, same neighbour rows with bit-equal weights (nil and empty rows
// both mean "no edges"), and same CSR arrays. Compare CanonicalClones to
// test equality up to vertex numbering.
func (g *Graph) Equal(o *Graph) bool {
	if g.K != o.K || len(g.Vertices) != len(o.Vertices) {
		return false
	}
	for i, v := range g.Vertices {
		if o.Vertices[i] != v {
			return false
		}
	}
	if len(g.Neighbors) != len(o.Neighbors) {
		return false
	}
	for i, es := range g.Neighbors {
		os := o.Neighbors[i]
		if len(es) != len(os) {
			return false
		}
		for j, e := range es {
			if os[j].To != e.To || os[j].Weight != e.Weight { // lint:checked bit-equality is the contract under test
				return false
			}
		}
	}
	if len(g.EdgeOffsets) != len(o.EdgeOffsets) || len(g.EdgeTo) != len(o.EdgeTo) || len(g.EdgeWeight) != len(o.EdgeWeight) {
		return false
	}
	for i, v := range g.EdgeOffsets {
		if o.EdgeOffsets[i] != v {
			return false
		}
	}
	for i, v := range g.EdgeTo {
		if o.EdgeTo[i] != v {
			return false
		}
	}
	for i, v := range g.EdgeWeight {
		if o.EdgeWeight[i] != v { // lint:checked bit-equality is the contract under test
			return false
		}
	}
	return true
}

// NumEdges returns the total directed edge count.
func (g *Graph) NumEdges() int {
	n := 0
	for _, es := range g.Neighbors {
		n += len(es)
	}
	return n
}

// Lookup returns the vertex index for a 3-gram, or -1.
func (g *Graph) Lookup(v corpus.NGram) int {
	if i, ok := g.Index[v]; ok {
		return i
	}
	return -1
}

// InfluenceStats holds the per-vertex influence measures of the paper's
// §III-D: Influencees(v) is the set of vertices that have v among their
// nearest neighbours, and Influence(v) is the sum of the weights of the
// edges arriving at v.
type InfluenceStats struct {
	Influencees []int     // |Influencees(v)| per vertex
	Influence   []float64 // Influence(v) per vertex
}

// Influences computes both influence measures for every vertex.
func (g *Graph) Influences() InfluenceStats {
	st := InfluenceStats{
		Influencees: make([]int, len(g.Vertices)),
		Influence:   make([]float64, len(g.Vertices)),
	}
	for _, es := range g.Neighbors {
		for _, e := range es {
			st.Influencees[e.To]++
			st.Influence[e.To] += e.Weight
		}
	}
	return st
}

// WeaklyConnected reports whether the graph is weakly connected (treating
// edges as undirected). The empty graph is vacuously connected.
func (g *Graph) WeaklyConnected() bool {
	n := len(g.Vertices)
	if n == 0 {
		return true
	}
	adj := make([][]int32, n)
	for v, es := range g.Neighbors {
		for _, e := range es {
			adj[v] = append(adj[v], e.To)
			adj[e.To] = append(adj[e.To], int32(v))
		}
	}
	seen := make([]bool, n)
	stack := []int32{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == n
}

// WriteTo serializes the graph in a line-oriented text format:
//
//	K <k>
//	V <count>
//	<ngram-escaped> then per line "E <to> <weight>" groups
//
// The byte count returned estimates the paper's §III-C memory-footprint
// measure (graph description file size).
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	fmt.Fprintf(bw, "K %d\nV %d\n", g.K, len(g.Vertices))
	for i, v := range g.Vertices {
		fmt.Fprintf(bw, "N %s\n", escape(string(v)))
		if i >= len(g.Neighbors) {
			continue // hand-assembled graphs may leave trailing rows empty
		}
		for _, e := range g.Neighbors[i] {
			// %g with default precision prints the fewest digits that
			// parse back to the identical float64, so ReadFrom restores
			// weights bit-exactly.
			fmt.Fprintf(bw, "E %d %g\n", e.To, e.Weight)
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadFrom deserializes a graph written by WriteTo.
func ReadFrom(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	g := &Graph{Index: make(map[corpus.NGram]int)}
	line := 0
	read := func() (string, bool) {
		if !sc.Scan() {
			return "", false
		}
		line++
		return sc.Text(), true
	}
	hdr, ok := read()
	if !ok || !strings.HasPrefix(hdr, "K ") {
		return nil, fmt.Errorf("graph: missing K header")
	}
	k, err := strconv.Atoi(hdr[2:])
	if err != nil {
		return nil, fmt.Errorf("graph: bad K header: %w", err)
	}
	g.K = k
	vh, ok := read()
	if !ok || !strings.HasPrefix(vh, "V ") {
		return nil, fmt.Errorf("graph: missing V header")
	}
	n, err := strconv.Atoi(vh[2:])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("graph: bad V header %q", vh)
	}
	g.Vertices = make([]corpus.NGram, 0, n)
	g.Neighbors = make([][]Edge, 0, n)
	for {
		l, ok := read()
		if !ok {
			break
		}
		switch {
		case strings.HasPrefix(l, "N "):
			v := corpus.NGram(unescape(l[2:]))
			g.Index[v] = len(g.Vertices)
			g.Vertices = append(g.Vertices, v)
			g.Neighbors = append(g.Neighbors, nil)
		case strings.HasPrefix(l, "E "):
			if len(g.Vertices) == 0 {
				return nil, fmt.Errorf("graph: line %d: edge before vertex", line)
			}
			var to int32
			var wgt float64
			if _, err := fmt.Sscanf(l, "E %d %g", &to, &wgt); err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", line, err)
			}
			if int(to) >= n || to < 0 {
				return nil, fmt.Errorf("graph: line %d: edge target %d out of range", line, to)
			}
			last := len(g.Neighbors) - 1
			g.Neighbors[last] = append(g.Neighbors[last], Edge{To: to, Weight: wgt})
		default:
			return nil, fmt.Errorf("graph: line %d: unrecognized %q", line, l)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(g.Vertices) != n {
		return nil, fmt.Errorf("graph: header promised %d vertices, got %d", n, len(g.Vertices))
	}
	g.BuildCSR()
	return g, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// escape protects the NUL separators inside NGram keys for the text format.
func escape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\x00", `\0`)
}

func unescape(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			if s[i] == '0' {
				b.WriteByte(0)
			} else {
				b.WriteByte(s[i])
			}
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// Histogram buckets non-negative values into log-spaced bins for the
// influence plots of Figure 3.
type Histogram struct {
	Edges  []float64 // len = len(Counts)+1
	Counts []int
}

// LogHistogram builds a histogram with log-spaced buckets between the
// minimum positive value and the maximum. Zero values land in the first
// bucket.
func LogHistogram(values []float64, buckets int) Histogram {
	if buckets <= 0 {
		buckets = 10
	}
	maxV := 0.0
	minPos := math.Inf(1)
	for _, v := range values {
		if v > maxV {
			maxV = v
		}
		if v > 0 && v < minPos {
			minPos = v
		}
	}
	if maxV == 0 || math.IsInf(minPos, 1) {
		return Histogram{Edges: []float64{0, 1}, Counts: []int{len(values)}}
	}
	if minPos == maxV { // lint:checked exact degenerate-range check; any spread at all makes real buckets
		minPos = maxV / 2
	}
	h := Histogram{
		Edges:  make([]float64, buckets+1),
		Counts: make([]int, buckets),
	}
	lo, hi := math.Log(minPos), math.Log(maxV)
	for i := 0; i <= buckets; i++ {
		h.Edges[i] = math.Exp(lo + (hi-lo)*float64(i)/float64(buckets))
	}
	for _, v := range values {
		if v <= h.Edges[0] {
			h.Counts[0]++
			continue
		}
		idx := sort.SearchFloat64s(h.Edges, v) - 1
		if idx >= buckets {
			idx = buckets - 1
		}
		h.Counts[idx]++
	}
	return h
}

// String renders the histogram as aligned text rows.
func (h Histogram) String() string {
	var b strings.Builder
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	for i, c := range h.Counts {
		bar := ""
		if maxC > 0 {
			bar = strings.Repeat("#", c*40/maxC)
		}
		fmt.Fprintf(&b, "[%10.4g, %10.4g) %8d %s\n", h.Edges[i], h.Edges[i+1], c, bar)
	}
	return b.String()
}
