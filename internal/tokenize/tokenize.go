// Package tokenize provides a biomedical text tokenizer in the style of
// BANNER: it performs fine-grained splitting at transitions between letter,
// digit, and punctuation classes, so that gene names such as "SH2B3" or
// "tumor-1" are broken into units that a sequence tagger can label with BIO
// tags at mention boundaries.
//
// Every token records its byte offsets in the original sentence and its
// offsets in the "space-free" coordinate system used by the BioCreative II
// gene mention evaluation, where space characters are ignored when counting
// character positions.
package tokenize

import (
	"strings"
	"unicode"
)

// Token is a single unit of a tokenized sentence.
type Token struct {
	// Text is the surface form of the token.
	Text string
	// Start and End are byte offsets of the token within the original
	// sentence, with End exclusive.
	Start, End int
	// SFStart and SFEnd are the token's offsets in the space-free
	// coordinate system of the BioCreative II evaluation: positions are
	// counted over non-space characters only, and SFEnd is inclusive,
	// matching the corpus annotation format.
	SFStart, SFEnd int
}

// class partitions runes into the categories at whose boundaries the
// tokenizer splits.
type class int

const (
	classSpace class = iota
	classLetter
	classDigit
	classPunct
)

func classify(r rune) class {
	switch {
	case unicode.IsSpace(r):
		return classSpace
	case unicode.IsLetter(r):
		return classLetter
	case unicode.IsDigit(r):
		return classDigit
	default:
		return classPunct
	}
}

// Sentence tokenizes a single sentence. Splitting happens at whitespace and
// at every transition between letters, digits and punctuation; each
// punctuation rune is its own token. This mirrors BANNER's fine-grained
// tokenization, which maximizes the tagger's freedom to place mention
// boundaries inside hyphenated or alphanumeric gene names.
func Sentence(s string) []Token {
	var tokens []Token
	var start int
	var cur class = classSpace
	sf := 0 // running count of non-space characters before byte i

	flush := func(end int) {
		if cur == classSpace || start >= end {
			return
		}
		text := s[start:end]
		n := len([]rune(text))
		tokens = append(tokens, Token{
			Text:    text,
			Start:   start,
			End:     end,
			SFStart: sf - n,
			SFEnd:   sf - 1,
		})
	}

	for i, r := range s {
		c := classify(r)
		switch {
		case c == classSpace:
			flush(i)
			cur = classSpace
		case cur == classSpace:
			start = i
			cur = c
		case c != cur || c == classPunct:
			// Transition between classes, or consecutive punctuation
			// runes: punctuation never agglomerates.
			flush(i)
			start = i
			cur = c
		}
		if c != classSpace {
			sf++
		}
	}
	flush(len(s))
	return tokens
}

// Words returns just the surface forms of the tokens of s.
func Words(s string) []string {
	toks := Sentence(s)
	if len(toks) == 0 {
		return nil
	}
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}

// Detokenize joins tokens with single spaces. It is the inverse of Sentence
// only up to whitespace, which is sufficient for building 3-gram keys.
func Detokenize(tokens []Token) string {
	var b strings.Builder
	for i, t := range tokens {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(t.Text)
	}
	return b.String()
}

// Shape maps a token to its word shape, the canonical orthographic pattern
// used as a CRF feature: uppercase letters become 'A', lowercase 'a',
// digits '0', and everything else is preserved. Runs are not collapsed.
func Shape(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case unicode.IsUpper(r):
			b.WriteByte('A')
		case unicode.IsLower(r):
			b.WriteByte('a')
		case unicode.IsDigit(r):
			b.WriteByte('0')
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// BriefShape is Shape with consecutive identical classes collapsed to a
// single character ("Abeta42" -> "Aa0").
func BriefShape(s string) string {
	full := Shape(s)
	var b strings.Builder
	var prev rune = -1
	for _, r := range full {
		if r != prev {
			b.WriteRune(r)
			prev = r
		}
	}
	return b.String()
}

// Lemma returns a crude lemmatized form of a word: lowercased, with common
// English inflectional suffixes stripped. It approximates the lemmatizer
// BANNER uses for its lexical window features; graph construction in the
// paper's "Lexical-features" mode is built on lemmas of a 5-word window.
func Lemma(s string) string {
	w := strings.ToLower(s)
	switch {
	case len(w) > 5 && strings.HasSuffix(w, "ies"):
		return w[:len(w)-3] + "y"
	case len(w) > 4 && strings.HasSuffix(w, "sses"):
		return w[:len(w)-2]
	case len(w) > 4 && strings.HasSuffix(w, "ing") && hasVowel(w[:len(w)-3]):
		return w[:len(w)-3]
	case len(w) > 4 && strings.HasSuffix(w, "ed") && hasVowel(w[:len(w)-2]):
		return w[:len(w)-2]
	case len(w) > 3 && strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "ss") && !strings.HasSuffix(w, "us") && !strings.HasSuffix(w, "is"):
		return w[:len(w)-1]
	}
	return w
}

func hasVowel(s string) bool {
	return strings.ContainsAny(s, "aeiou")
}

// SplitSentences performs simple sentence boundary detection on a text
// block: boundaries are placed after '.', '!', or '?' followed by
// whitespace and an uppercase letter or digit. Common biomedical
// abbreviations ("Fig.", "et al.", "e.g.") do not end sentences.
func SplitSentences(text string) []string {
	var out []string
	runes := []rune(text)
	start := 0
	for i := 0; i < len(runes); i++ {
		r := runes[i]
		if r != '.' && r != '!' && r != '?' {
			continue
		}
		// Look ahead: require whitespace then an upper/digit.
		j := i + 1
		for j < len(runes) && runes[j] == '.' {
			j++
		}
		if j >= len(runes) {
			break
		}
		if !unicode.IsSpace(runes[j]) {
			continue
		}
		k := j
		for k < len(runes) && unicode.IsSpace(runes[k]) {
			k++
		}
		if k >= len(runes) {
			break
		}
		if !unicode.IsUpper(runes[k]) && !unicode.IsDigit(runes[k]) {
			continue
		}
		if r == '.' && isAbbreviation(string(runes[start:i])) {
			continue
		}
		s := strings.TrimSpace(string(runes[start : i+1]))
		if s != "" {
			out = append(out, s)
		}
		start = k
		i = k - 1
	}
	if tail := strings.TrimSpace(string(runes[start:])); tail != "" {
		out = append(out, tail)
	}
	return out
}

var abbreviations = map[string]bool{
	"fig": true, "figs": true, "al": true, "e.g": true, "i.e": true,
	"vs": true, "etc": true, "dr": true, "no": true, "ref": true,
	"approx": true, "ca": true, "cf": true, "resp": true,
}

func isAbbreviation(prefix string) bool {
	i := strings.LastIndexFunc(prefix, unicode.IsSpace)
	last := strings.ToLower(prefix[i+1:])
	last = strings.TrimSuffix(last, ".")
	if abbreviations[last] {
		return true
	}
	// Single letters ("S. cerevisiae", initials) are abbreviations.
	return len([]rune(last)) == 1
}
