package tokenize

import (
	"strings"
	"testing"
	"unicode"
	"unicode/utf8"
)

// FuzzTokenize checks the structural invariants of Sentence on arbitrary
// input: tokens are non-empty, in-order, byte-accurate slices of the
// input with no interior whitespace, their space-free coordinates tile
// [0, #non-space-runes) exactly as the BioCreative II evaluation expects,
// and together they cover every non-space byte of the input.
func FuzzTokenize(f *testing.F) {
	seeds := []string{
		"",
		"x",
		"p53 regulates SH2-domain binding",
		"the FLT3 gene in AML patients",
		"IL-2 (interleukin-2) activates NF-kappaB!",
		"  leading and trailing  ",
		"a1B2c3 7q31.2 del(5q)",
		"α-synuclein and β2-microglobulin",
		"tabs\tand\nnewlines",
		"....",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		tokens := Sentence(s)
		prevEnd := 0
		sf := 0
		var rebuilt strings.Builder
		for i, tok := range tokens {
			if tok.Text == "" {
				t.Fatalf("token %d of %q: empty text", i, s)
			}
			if tok.Start < prevEnd || tok.End <= tok.Start || tok.End > len(s) {
				t.Fatalf("token %d of %q: bad byte span [%d,%d) after %d", i, s, tok.Start, tok.End, prevEnd)
			}
			if s[tok.Start:tok.End] != tok.Text {
				t.Fatalf("token %d of %q: text %q != span %q", i, s, tok.Text, s[tok.Start:tok.End])
			}
			n := 0
			for _, r := range tok.Text {
				if unicode.IsSpace(r) {
					t.Fatalf("token %d of %q: whitespace inside %q", i, s, tok.Text)
				}
				n++
			}
			if tok.SFStart != sf || tok.SFEnd != sf+n-1 {
				t.Fatalf("token %d of %q: space-free span [%d,%d], want [%d,%d]",
					i, s, tok.SFStart, tok.SFEnd, sf, sf+n-1)
			}
			sf += n
			prevEnd = tok.End
			rebuilt.WriteString(tok.Text)
		}
		// The tokens must cover exactly the non-space bytes of the input
		// (raw bytes, so invalid UTF-8 passes through unmangled).
		var spaceFree strings.Builder
		for i := 0; i < len(s); {
			r, size := utf8.DecodeRuneInString(s[i:])
			if !unicode.IsSpace(r) {
				spaceFree.WriteString(s[i : i+size])
			}
			i += size
		}
		if rebuilt.String() != spaceFree.String() {
			t.Fatalf("tokens of %q rebuild to %q, want the non-space bytes %q",
				s, rebuilt.String(), spaceFree.String())
		}
	})
}
