package tokenize

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"unicode"
)

func TestSentenceBasic(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"the LNK gene", []string{"the", "LNK", "gene"}},
		{"SH2B3", []string{"SH", "2", "B", "3"}},
		{"tumor-1", []string{"tumor", "-", "1"}},
		{"wilms tumor - 1", []string{"wilms", "tumor", "-", "1"}},
		{"(LNK)", []string{"(", "LNK", ")"}},
		{"p53-mediated", []string{"p", "53", "-", "mediated"}},
		{"", nil},
		{"   ", nil},
		{"a", []string{"a"}},
		{"...", []string{".", ".", "."}},
		{"IL-2R alpha", []string{"IL", "-", "2", "R", "alpha"}},
	}
	for _, c := range cases {
		if got := Words(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Words(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSentenceOffsets(t *testing.T) {
	s := "the LNK gene"
	toks := Sentence(s)
	for _, tok := range toks {
		if s[tok.Start:tok.End] != tok.Text {
			t.Errorf("offset mismatch: %q vs %q", s[tok.Start:tok.End], tok.Text)
		}
	}
}

func TestSpaceFreeOffsets(t *testing.T) {
	// "the LNK gene": space-free string is "theLNKgene".
	// LNK occupies space-free positions 3..5 (inclusive).
	toks := Sentence("the LNK gene")
	if len(toks) != 3 {
		t.Fatalf("want 3 tokens, got %d", len(toks))
	}
	lnk := toks[1]
	if lnk.SFStart != 3 || lnk.SFEnd != 5 {
		t.Errorf("LNK space-free offsets = (%d,%d), want (3,5)", lnk.SFStart, lnk.SFEnd)
	}
	gene := toks[2]
	if gene.SFStart != 6 || gene.SFEnd != 9 {
		t.Errorf("gene space-free offsets = (%d,%d), want (6,9)", gene.SFStart, gene.SFEnd)
	}
}

func TestSpaceFreeOffsetsProperty(t *testing.T) {
	// For any printable ASCII string, the space-free offsets must index the
	// right characters of the space-collapsed string.
	f := func(raw string) bool {
		s := sanitize(raw)
		collapsed := strings.Map(func(r rune) rune {
			if unicode.IsSpace(r) {
				return -1
			}
			return r
		}, s)
		cr := []rune(collapsed)
		for _, tok := range Sentence(s) {
			if tok.SFStart < 0 || tok.SFEnd >= len(cr) || tok.SFStart > tok.SFEnd {
				return false
			}
			if string(cr[tok.SFStart:tok.SFEnd+1]) != tok.Text {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTokensCoverNonSpace(t *testing.T) {
	// Property: concatenating all token texts equals the input with spaces
	// removed (for space-separated ASCII input).
	f := func(raw string) bool {
		s := sanitize(raw)
		var b strings.Builder
		for _, tok := range Sentence(s) {
			b.WriteString(tok.Text)
		}
		want := strings.Map(func(r rune) rune {
			if unicode.IsSpace(r) {
				return -1
			}
			return r
		}, s)
		return b.String() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// sanitize maps an arbitrary string to printable ASCII so property tests
// exercise realistic corpus text.
func sanitize(raw string) string {
	var b strings.Builder
	for _, r := range raw {
		c := byte(r%95) + 32
		b.WriteByte(c)
	}
	return b.String()
}

func TestShape(t *testing.T) {
	cases := []struct{ in, shape, brief string }{
		{"LNK", "AAA", "A"},
		{"Abeta42", "Aaaaa00", "Aa0"},
		{"p53", "a00", "a0"},
		{"IL-2", "AA-0", "A-0"},
		{"", "", ""},
	}
	for _, c := range cases {
		if got := Shape(c.in); got != c.shape {
			t.Errorf("Shape(%q) = %q, want %q", c.in, got, c.shape)
		}
		if got := BriefShape(c.in); got != c.brief {
			t.Errorf("BriefShape(%q) = %q, want %q", c.in, got, c.brief)
		}
	}
}

func TestLemma(t *testing.T) {
	cases := []struct{ in, want string }{
		{"mutations", "mutation"},
		{"Genes", "gene"},
		{"expressed", "express"},
		{"binding", "bind"},
		{"studies", "study"},
		{"locus", "locus"},
		{"analysis", "analysis"},
		{"class", "class"},
		{"was", "was"},
		{"LNK", "lnk"},
	}
	for _, c := range cases {
		if got := Lemma(c.in); got != c.want {
			t.Errorf("Lemma(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSplitSentences(t *testing.T) {
	text := "The LNK gene was mutated. We observed this in Fig. 3 of the study. Expression was high."
	got := SplitSentences(text)
	want := []string{
		"The LNK gene was mutated.",
		"We observed this in Fig. 3 of the study.",
		"Expression was high.",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SplitSentences = %#v, want %#v", got, want)
	}
}

func TestSplitSentencesAbbrev(t *testing.T) {
	text := "Sheikhshab et al. Reported improvements. S. cerevisiae was used."
	got := SplitSentences(text)
	// "et al." should not split despite being followed by an uppercase word.
	if len(got) != 2 {
		t.Fatalf("got %d sentences %v, want 2", len(got), got)
	}
}

func TestSplitSentencesEmpty(t *testing.T) {
	if got := SplitSentences(""); got != nil {
		t.Errorf("SplitSentences(\"\") = %v, want nil", got)
	}
	if got := SplitSentences("no terminal punctuation"); len(got) != 1 {
		t.Errorf("got %v", got)
	}
}

func TestDetokenize(t *testing.T) {
	toks := Sentence("wilms tumor - 1")
	if got := Detokenize(toks); got != "wilms tumor - 1" {
		t.Errorf("Detokenize = %q", got)
	}
	if got := Detokenize(nil); got != "" {
		t.Errorf("Detokenize(nil) = %q", got)
	}
}

func BenchmarkSentence(b *testing.B) {
	s := "Recently , the mutation of lymphocyte adaptor protein ( LNK or SH2B3 ) was detected in MPN patients with p53-mediated responses ."
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Sentence(s)
	}
}
