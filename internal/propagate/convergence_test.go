package propagate

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/corpus"
	"repro/internal/graph"
)

// randomGraph builds a random directed k-NN-like graph with n vertices.
func randomGraph(rng *rand.Rand, n, k int) *graph.Graph {
	g := &graph.Graph{Neighbors: make([][]graph.Edge, n), K: k}
	for i := 0; i < n; i++ {
		g.Vertices = append(g.Vertices, corpus.NGram(string(rune('0'+i%10))+string(rune('a'+i/10))))
		used := map[int]bool{i: true}
		for j := 0; j < k; j++ {
			to := rng.Intn(n)
			if used[to] {
				continue
			}
			used[to] = true
			g.Neighbors[i] = append(g.Neighbors[i], graph.Edge{To: int32(to), Weight: 0.2 + 0.8*rng.Float64()})
		}
	}
	return g
}

// TestConvergenceMonotoneDelta: the maximum per-entry change shrinks as
// more sweeps run (the Jacobi update is a contraction on this objective).
func TestConvergenceMonotoneDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := randomGraph(rng, 60, 4)
	n := g.NumVertices()
	mk := func() ([][]float64, [][]float64, []bool) {
		X := make([][]float64, n)
		xref := make([][]float64, n)
		lab := make([]bool, n)
		r := rand.New(rand.NewSource(99))
		for i := 0; i < n; i++ {
			a := r.Float64()
			X[i] = []float64{a / 2, a / 2, 1 - a}
			if i%4 == 0 {
				lab[i] = true
				xref[i] = []float64{1, 0, 0}
			}
		}
		return X, xref, lab
	}

	var deltas []float64
	for _, iters := range []int{1, 3, 10, 30} {
		X, xref, lab := mk()
		res, err := Run(g, X, xref, lab, Config{Mu: 0.2, Nu: 0.05, Iterations: iters})
		if err != nil {
			t.Fatal(err)
		}
		deltas = append(deltas, res.MaxDelta)
	}
	for i := 1; i < len(deltas); i++ {
		if deltas[i] > deltas[i-1]+1e-12 {
			t.Errorf("final-sweep delta grew with more sweeps: %v", deltas)
		}
	}
	if deltas[len(deltas)-1] > 1e-3 {
		t.Errorf("not converging: deltas %v", deltas)
	}
}

// TestPropagationPullsTowardLabelledRegions: unlabelled vertices reachable
// from B-labelled vertices end with more B mass than vertices reachable
// only from O-labelled ones.
func TestPropagationPullsTowardLabelledRegions(t *testing.T) {
	// Two disjoint stars: center labelled B / labelled O, leaves unlabelled
	// pointing at their center.
	g := &graph.Graph{Neighbors: make([][]graph.Edge, 6), K: 1}
	for i := 0; i < 6; i++ {
		g.Vertices = append(g.Vertices, corpus.NGram(rune('a'+i)))
	}
	// Vertices: 0 = B-center, 1,2 leaves -> 0; 3 = O-center, 4,5 leaves -> 3.
	g.Neighbors[1] = []graph.Edge{{To: 0, Weight: 1}}
	g.Neighbors[2] = []graph.Edge{{To: 0, Weight: 1}}
	g.Neighbors[4] = []graph.Edge{{To: 3, Weight: 1}}
	g.Neighbors[5] = []graph.Edge{{To: 3, Weight: 1}}

	X := make([][]float64, 6)
	xref := make([][]float64, 6)
	lab := make([]bool, 6)
	lab[0], lab[3] = true, true
	xref[0] = []float64{1, 0, 0}
	xref[3] = []float64{0, 0, 1}

	if _, err := Run(g, X, xref, lab, Config{Mu: 1, Nu: 0.01, Iterations: 10}); err != nil {
		t.Fatal(err)
	}
	for _, leaf := range []int{1, 2} {
		if X[leaf][corpus.B] <= X[leaf][corpus.O] {
			t.Errorf("B-star leaf %d: %v", leaf, X[leaf])
		}
	}
	for _, leaf := range []int{4, 5} {
		if X[leaf][corpus.O] <= X[leaf][corpus.B] {
			t.Errorf("O-star leaf %d: %v", leaf, X[leaf])
		}
	}
	// The two stars are independent: B-star leaves should mirror O-star
	// leaves' distributions under the B↔O swap.
	if math.Abs(X[1][corpus.B]-X[4][corpus.O]) > 1e-9 {
		t.Errorf("star symmetry broken: %v vs %v", X[1], X[4])
	}
}

// TestHigherNuFlattens: raising ν moves the fixed point toward uniform.
func TestHigherNuFlattens(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 40, 3)
	n := g.NumVertices()
	run := func(nu float64) float64 {
		X := make([][]float64, n)
		xref := make([][]float64, n)
		lab := make([]bool, n)
		for i := 0; i < n; i++ {
			if i%3 == 0 {
				lab[i] = true
				xref[i] = []float64{1, 0, 0}
			}
		}
		if _, err := Run(g, X, xref, lab, Config{Mu: 0.5, Nu: nu, Iterations: 50}); err != nil {
			t.Fatal(err)
		}
		// Average distance from uniform over unlabelled vertices.
		var d float64
		var c int
		for i := 0; i < n; i++ {
			if lab[i] {
				continue
			}
			for y := 0; y < corpus.NumTags; y++ {
				d += math.Abs(X[i][y] - 1.0/corpus.NumTags)
			}
			c++
		}
		return d / float64(c)
	}
	sharp, flat := run(0.001), run(10)
	if flat >= sharp {
		t.Errorf("nu=10 distance from uniform (%g) not below nu=0.001 (%g)", flat, sharp)
	}
}
