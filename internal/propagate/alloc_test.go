package propagate

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/race"
)

// TestSweepAllocGuard locks in the allocation-free propagation hot path:
// a steady-state RunFlat call over a CSR-backed graph allocates only its
// fixed per-call scaffolding (ping-pong buffer, worker deltas, loss
// history, goroutine bookkeeping) — a small constant independent of
// vertex count and sweep count. A refactor that reintroduces per-vertex
// or per-sweep allocations fails here before it reaches a profile.
func TestSweepAllocGuard(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates; counts are only meaningful in normal builds")
	}
	rng := rand.New(rand.NewSource(17))
	g, X, xref, labelled := warmProblem(rng, 300, 5)
	measure := func(iters int) float64 {
		cfg := Config{Mu: 0.1, Nu: 0.1, Iterations: iters, Workers: 1}
		if _, err := RunFlat(g, X, xref, labelled, cfg); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(50, func() {
			if _, err := RunFlat(g, X, xref, labelled, cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
	one, nine := measure(1), measure(9)
	// Fixed scaffolding: ping-pong buffer, deltas, loss slice, result.
	if one > 12 {
		t.Fatalf("RunFlat allocates %.1f objects for one sweep over 300 vertices, want ≤ 12", one)
	}
	// Marginal cost per extra sweep: goroutine + waitgroup bookkeeping
	// only — nothing proportional to vertices or edges.
	if perSweep := (nine - one) / 8; perSweep > 6 {
		t.Fatalf("RunFlat allocates %.1f objects per additional sweep, want ≤ 6", perSweep)
	}
}

// TestShardedSweepAllocGuard extends the allocation guard to the
// per-shard SPMD sweep: with the shard states, halo tables, and loss
// scratch set up per call, the steady-state halo exchange itself must
// not allocate — the marginal cost of an extra sweep is goroutine and
// waitgroup bookkeeping only (two barriers: update pass and exchange
// pass), nothing proportional to vertices, edges, or halo size.
func TestShardedSweepAllocGuard(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates; counts are only meaningful in normal builds")
	}
	rng := rand.New(rand.NewSource(17))
	g, X, xref, labelled := warmProblem(rng, 300, 5)
	sg, err := graph.ShardGraph(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	measure := func(iters int) float64 {
		cfg := Config{Mu: 0.1, Nu: 0.1, Iterations: iters, Workers: 1}
		if _, err := RunShardedFlat(sg, X, xref, labelled, cfg); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(50, func() {
			if _, err := RunShardedFlat(sg, X, xref, labelled, cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
	one, nine := measure(1), measure(9)
	// Fixed per-call scaffolding: 4 shard states with double buffers and
	// per-shard xref/labelled views, the loss gather scratch, the result.
	if one > 40 {
		t.Fatalf("RunShardedFlat allocates %.1f objects for one sweep over 4 shards, want ≤ 40", one)
	}
	if perSweep := (nine - one) / 8; perSweep > 10 {
		t.Fatalf("RunShardedFlat allocates %.1f objects per additional sweep, want ≤ 10", perSweep)
	}
}

// TestWarmSweepAllocGuard pins RunWarmFlat's per-call allocations to a
// small constant as well: the frontier machinery (worklist, epoch marks,
// row buffer, reverse adjacency) must not allocate per sweep or per
// visited vertex beyond its initial sizing.
func TestWarmSweepAllocGuard(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates; counts are only meaningful in normal builds")
	}
	rng := rand.New(rand.NewSource(19))
	g, X, xref, labelled := warmProblem(rng, 300, 5)
	cfg := Config{Mu: 0.1, Nu: 0.1, Tolerance: 1e-6, Workers: 1}
	if _, err := RunFlat(g, X, xref, labelled, Config{Mu: 0.1, Nu: 0.1, Iterations: 50, Tolerance: 1e-9, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	dirty := []int32{1, 2, 3}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := RunWarmFlat(g, X, xref, labelled, cfg, dirty); err != nil {
			t.Fatal(err)
		}
	})
	const bound = 24
	if allocs > bound {
		t.Fatalf("RunWarmFlat allocates %.1f objects/op, want ≤ %d", allocs, bound)
	}
}
