package propagate

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/corpus"
	"repro/internal/graph"
)

// chainGraph builds a path graph 0-1-2-...-(n-1) with unit weights, edges
// directed left to right.
func chainGraph(n int) *graph.Graph {
	g := &graph.Graph{
		Index:     make(map[corpus.NGram]int),
		Neighbors: make([][]graph.Edge, n),
		K:         1,
	}
	for i := 0; i < n; i++ {
		v := corpus.NGram(string(rune('a' + i)))
		g.Vertices = append(g.Vertices, v)
		g.Index[v] = i
		if i+1 < n {
			g.Neighbors[i] = []graph.Edge{{To: int32(i + 1), Weight: 1}}
		}
	}
	return g
}

func dist(vals ...float64) []float64 { return vals }

func TestValidation(t *testing.T) {
	g := chainGraph(3)
	X := make([][]float64, 3)
	xref := make([][]float64, 3)
	lab := make([]bool, 3)
	if _, err := Run(g, X[:2], xref, lab, Config{}); err == nil {
		t.Error("want error for length mismatch")
	}
	if _, err := Run(g, X, xref, lab, Config{Iterations: -1}); err == nil {
		t.Error("want error for negative iterations")
	}
	if _, err := Run(g, X, xref, lab, Config{Mu: -1}); err == nil {
		t.Error("want error for negative mu")
	}
}

func TestZeroIterationsIsNoOp(t *testing.T) {
	g := chainGraph(2)
	X := [][]float64{dist(1, 0, 0), dist(0, 0, 1)}
	xref := make([][]float64, 2)
	lab := []bool{false, false}
	res, err := Run(g, X, xref, lab, Config{Iterations: 0, Mu: 1, Nu: 1})
	if err != nil {
		t.Fatal(err)
	}
	if X[0][0] != 1 || X[1][2] != 1 {
		t.Error("zero iterations modified X")
	}
	if len(res.Loss) != 1 {
		t.Errorf("loss history length %d", len(res.Loss))
	}
}

func TestNilRowsBecomeUniform(t *testing.T) {
	g := chainGraph(2)
	X := [][]float64{nil, nil}
	xref := make([][]float64, 2)
	lab := []bool{false, false}
	if _, err := Run(g, X, xref, lab, Config{Iterations: 1, Nu: 1}); err != nil {
		t.Fatal(err)
	}
	for v := range X {
		for y := 0; y < corpus.NumTags; y++ {
			if math.Abs(X[v][y]-1.0/3) > 1e-12 {
				t.Errorf("X[%d] = %v, want uniform", v, X[v])
			}
		}
	}
}

func TestLabelledVertexPullsNeighbour(t *testing.T) {
	// Vertex 0 is labelled with a B-peaked reference; vertex 1 starts
	// uniform. With mu > 0 over edge 0→1... the directed edge means 0's
	// update sees 1. Use symmetrize to pull 1 toward 0's reference via
	// repeated sweeps.
	g := chainGraph(2)
	X := [][]float64{dist(1.0/3, 1.0/3, 1.0/3), dist(1.0/3, 1.0/3, 1.0/3)}
	xref := [][]float64{dist(1, 0, 0), nil}
	lab := []bool{true, false}
	_, err := Run(g, X, xref, lab, Config{Iterations: 20, Mu: 0.5, Nu: 0.01, Symmetrize: true})
	if err != nil {
		t.Fatal(err)
	}
	if X[0][corpus.B] < 0.8 {
		t.Errorf("labelled vertex did not move to its reference: %v", X[0])
	}
	if X[1][corpus.B] <= 1.0/3+1e-9 {
		t.Errorf("neighbour not pulled toward B: %v", X[1])
	}
}

func TestDistributionsStayNormalized(t *testing.T) {
	// Property: if X and X_ref rows are distributions, every update keeps
	// rows summing to 1 (the update is a convex combination of
	// distributions).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		g := &graph.Graph{Neighbors: make([][]graph.Edge, n), K: 3}
		for i := 0; i < n; i++ {
			v := corpus.NGram(string(rune('a' + i)))
			g.Vertices = append(g.Vertices, v)
			for j := 0; j < 1+rng.Intn(3); j++ {
				to := rng.Intn(n)
				if to != i {
					g.Neighbors[i] = append(g.Neighbors[i], graph.Edge{To: int32(to), Weight: rng.Float64()})
				}
			}
		}
		randDist := func() []float64 {
			a, b, c := rng.Float64()+0.01, rng.Float64()+0.01, rng.Float64()+0.01
			s := a + b + c
			return []float64{a / s, b / s, c / s}
		}
		X := make([][]float64, n)
		xref := make([][]float64, n)
		lab := make([]bool, n)
		for i := 0; i < n; i++ {
			X[i] = randDist()
			if rng.Intn(2) == 0 {
				lab[i] = true
				xref[i] = randDist()
			}
		}
		if _, err := Run(g, X, xref, lab, Config{Iterations: 3, Mu: rng.Float64(), Nu: rng.Float64()}); err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			var s float64
			for _, v := range X[i] {
				if v < -1e-12 {
					return false
				}
				s += v
			}
			if math.Abs(s-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLossDecreasesMonotonically(t *testing.T) {
	// The Jacobi iteration on this convex objective should reduce the loss
	// from the initial point over the first sweeps on typical instances.
	rng := rand.New(rand.NewSource(42))
	n := 20
	g := &graph.Graph{Neighbors: make([][]graph.Edge, n), K: 3}
	for i := 0; i < n; i++ {
		g.Vertices = append(g.Vertices, corpus.NGram(string(rune('a'+i))))
		for j := 0; j < 3; j++ {
			to := rng.Intn(n)
			if to != i {
				g.Neighbors[i] = append(g.Neighbors[i], graph.Edge{To: int32(to), Weight: 0.5 + rng.Float64()/2})
			}
		}
	}
	X := make([][]float64, n)
	xref := make([][]float64, n)
	lab := make([]bool, n)
	for i := 0; i < n; i++ {
		a := rng.Float64()
		X[i] = []float64{a, (1 - a) / 2, (1 - a) / 2}
		if i%3 == 0 {
			lab[i] = true
			xref[i] = []float64{0, 1, 0}
		}
	}
	res, err := Run(g, X, xref, lab, Config{Iterations: 10, Mu: 0.1, Nu: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if res.Loss[len(res.Loss)-1] >= res.Loss[0] {
		t.Errorf("loss did not decrease: %v", res.Loss)
	}
}

func TestFixedPointSatisfiesUpdate(t *testing.T) {
	// Iterate to convergence; then one more sweep must not change X
	// beyond numerical noise (X is a fixed point of Eq. 2).
	g := chainGraph(5)
	n := 5
	X := make([][]float64, n)
	xref := make([][]float64, n)
	lab := make([]bool, n)
	lab[0] = true
	xref[0] = dist(0.8, 0.1, 0.1)
	res, err := Run(g, X, xref, lab, Config{Iterations: 200, Mu: 0.3, Nu: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxDelta > 1e-10 {
		t.Fatalf("not converged: delta %g", res.MaxDelta)
	}
	before := make([][]float64, n)
	for i := range X {
		before[i] = append([]float64(nil), X[i]...)
	}
	if _, err := Run(g, X, xref, lab, Config{Iterations: 1, Mu: 0.3, Nu: 0.1}); err != nil {
		t.Fatal(err)
	}
	for i := range X {
		for y := range X[i] {
			if math.Abs(X[i][y]-before[i][y]) > 1e-9 {
				t.Errorf("fixed point violated at %d/%d", i, y)
			}
		}
	}
}

func TestIsolatedVertexWithZeroNu(t *testing.T) {
	// An unlabelled vertex with no neighbours and nu=0 must keep its
	// distribution (kappa would be 0).
	g := &graph.Graph{
		Vertices:  []corpus.NGram{"a"},
		Neighbors: [][]graph.Edge{nil},
	}
	X := [][]float64{dist(0.7, 0.2, 0.1)}
	xref := [][]float64{nil}
	if _, err := Run(g, X, xref, []bool{false}, Config{Iterations: 3, Mu: 1, Nu: 0}); err != nil {
		t.Fatal(err)
	}
	if X[0][0] != 0.7 {
		t.Errorf("isolated vertex changed: %v", X[0])
	}
}

func TestLossComponents(t *testing.T) {
	g := chainGraph(2)
	X := [][]float64{dist(1, 0, 0), dist(0, 1, 0)}
	xref := [][]float64{dist(0, 0, 1), nil}
	lab := []bool{true, false}
	// mu=0, nu=0: only the labelled term: ‖(1,0,0)−(0,0,1)‖² = 2.
	c := Loss(g, X, xref, lab, Config{})
	if math.Abs(c-2) > 1e-12 {
		t.Errorf("labelled-only loss = %g, want 2", c)
	}
	// mu=1: add w·‖X0−X1‖² = 2 over the single edge.
	c = Loss(g, X, xref, lab, Config{Mu: 1})
	if math.Abs(c-4) > 1e-12 {
		t.Errorf("loss with mu = %g, want 4", c)
	}
}

func TestSymmetrizeAveragesReciprocalEdges(t *testing.T) {
	g := &graph.Graph{
		Vertices: []corpus.NGram{"a", "b"},
		Neighbors: [][]graph.Edge{
			{{To: 1, Weight: 0.4}},
			{{To: 0, Weight: 0.8}},
		},
	}
	sym := symmetrized(g)
	if len(sym[0]) != 1 || len(sym[1]) != 1 {
		t.Fatalf("sym = %v", sym)
	}
	if math.Abs(sym[0][0].Weight-0.6) > 1e-12 || math.Abs(sym[1][0].Weight-0.6) > 1e-12 {
		t.Errorf("weights not averaged: %v", sym)
	}
}

func BenchmarkPropagate(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 10000
	g := &graph.Graph{Neighbors: make([][]graph.Edge, n), K: 10}
	for i := 0; i < n; i++ {
		g.Vertices = append(g.Vertices, corpus.NGram(string(rune(i))))
		for j := 0; j < 10; j++ {
			g.Neighbors[i] = append(g.Neighbors[i], graph.Edge{To: int32(rng.Intn(n)), Weight: rng.Float64()})
		}
	}
	X := make([][]float64, n)
	xref := make([][]float64, n)
	lab := make([]bool, n)
	for i := 0; i < n; i++ {
		lab[i] = i%2 == 0
		if lab[i] {
			xref[i] = dist(0.2, 0.2, 0.6)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for v := range X {
			X[v] = nil
		}
		if _, err := Run(g, X, xref, lab, Config{Iterations: 3, Mu: 1e-6, Nu: 1e-6}); err != nil {
			b.Fatal(err)
		}
	}
}
