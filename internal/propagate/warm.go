package propagate

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/analysis/assert"
	"repro/internal/corpus"
	"repro/internal/graph"
)

// DefaultWarmTolerance is the per-entry convergence tolerance RunWarmFlat
// uses when Config.Tolerance is zero.
const DefaultWarmTolerance = 1e-8

// defaultWarmSweepCap bounds warm-start sweeps when Config.Iterations is
// zero. The coordinate update is a contraction, so the frontier normally
// drains long before this; the cap is a backstop against hyper-parameter
// regimes whose contraction modulus is within Tolerance of 1.
const defaultWarmSweepCap = 4096

// WarmResult reports what a warm-start propagation did.
type WarmResult struct {
	// Sweeps counts frontier sweeps executed.
	Sweeps int
	// Updates counts row updates across all sweeps — the work actually
	// done, versus Sweeps·NumVertices for full sweeps.
	Updates int
	// MaxDelta is the largest per-entry change of the final sweep.
	MaxDelta float64
	// Converged reports that the frontier drained (every active vertex
	// changed by at most the tolerance) before the sweep cap.
	Converged bool
	// Touched[v] is true if v's beliefs changed at all during the run.
	// Callers re-derive per-sentence decodes only where this is set.
	Touched []bool
}

// RunWarmFlat updates the flat belief matrix X after a localized graph
// change, without touching unchanged regions. It reuses the previous
// beliefs as initialization, seeds the worklist with the dirty vertices
// (rows whose update rule changed: new vertices and rewritten neighbour
// lists, e.g. graph.UpdateResult.DirtyRows) plus their out-neighbours, and
// sweeps only the expanding frontier: a vertex re-enters the worklist when
// one of its out-neighbours — the rows its Equation-2 update reads —
// changed by more than the tolerance in the previous sweep.
//
// Termination: a sweep that changes every active vertex by at most
// cfg.Tolerance adds nothing to the frontier and the run stops. Because
// the update is a contraction toward the unique Equation-1 fixed point,
// the result agrees with a fully converged RunFlat (same tolerance) to
// within 2·Tolerance·ρ/(1−ρ), ρ the contraction modulus — the documented
// warm-start tolerance. Changes smaller than the tolerance are applied but
// not propagated; unchanged regions of the graph are never visited.
//
//graphner:noalloc per-call setup and amortized frontier growth are justified inline; TestWarmSweepAllocGuard pins steady-state sweeps
func RunWarmFlat(g *graph.Graph, X []float64, xref [][]float64, labelled []bool, cfg Config, dirty []int32) (WarmResult, error) {
	const Y = corpus.NumTags
	n := g.NumVertices()
	var res WarmResult
	if len(X) != n*Y {
		return res, fmt.Errorf("propagate: flat matrix length %d != %d vertices × %d tags", len(X), n, Y) // lint:checked noalloc: cold validation failure path
	}
	if len(xref) != n || len(labelled) != n {
		return res, fmt.Errorf("propagate: slice lengths (%d,%d) != vertex count %d", len(xref), len(labelled), n) // lint:checked noalloc: cold validation failure path
	}
	if cfg.Mu < 0 || cfg.Nu < 0 {
		return res, fmt.Errorf("propagate: negative hyper-parameter (mu=%g nu=%g)", cfg.Mu, cfg.Nu) // lint:checked noalloc: cold validation failure path
	}
	for _, v := range dirty {
		if v < 0 || int(v) >= n {
			return res, fmt.Errorf("propagate: dirty vertex %d out of range [0,%d)", v, n) // lint:checked noalloc: cold validation failure path
		}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = DefaultWarmTolerance
	}
	maxSweeps := cfg.Iterations
	if maxSweeps <= 0 {
		maxSweeps = defaultWarmSweepCap
	}
	uniform := 1.0 / Y

	adj := adjacencyOf(g, n, cfg.Symmetrize) // lint:checked noalloc: CSR built once per call; the sweep loop below reuses it
	roff, rto := reverseOf(adj, n)           // lint:checked noalloc: reverse CSR built once per call for frontier expansion
	if assert.Enabled {
		assert.CSRMonotonic(adj.off, len(adj.to), "warm propagate adjacency")
		assert.CSRMonotonic(roff, len(rto), "warm propagate reverse adjacency")
	}
	res.Touched = make([]bool, n) // lint:checked noalloc: per-call result bitmap, part of the WarmResult contract

	// Seed the worklist: dirty vertices and their out-neighbours, deduped
	// with an epoch array and sorted so worker shards are deterministic.
	mark := make([]int32, n) // lint:checked noalloc: per-call dedup epochs, one word per vertex
	epoch := int32(1)
	active := make([]int32, 0, len(dirty)*4) // lint:checked noalloc: per-call worklist; growth is amortized against the dirty set
	add := func(v int32) {                   // lint:checked noalloc: one closure per call, shared by both seeding loops
		if mark[v] != epoch {
			mark[v] = epoch
			active = append(active, v)
		}
	}
	for _, v := range dirty {
		add(v) // lint:checked noalloc: append inside add grows the per-call worklist, amortized
	}
	for _, v := range dirty {
		for e, end := adj.off[v], adj.off[v+1]; e < end; e++ {
			add(adj.to[e]) // lint:checked noalloc: same amortized worklist growth as above
		}
	}
	sort.Slice(active, func(i, j int) bool { return active[i] < active[j] }) // lint:checked noalloc: sort.Slice boxes once per sweep; bounded by TestWarmSweepAllocGuard

	var (
		buf        []float64 // computed rows, parallel to active
		rowDelta   []float64
		nextActive []int32
		sweepGuard assert.SweepGuard
	)
	for sweep := 0; sweep < maxSweeps && len(active) > 0; sweep++ {
		need := len(active) * Y
		if cap(buf) < need {
			buf = make([]float64, need)             // lint:checked noalloc: capacity-guarded growth; steady-state sweeps reuse the high-water buffer
			rowDelta = make([]float64, len(active)) // lint:checked noalloc: grown together with buf above
		} else {
			buf = buf[:need]
			rowDelta = rowDelta[:len(active)]
		}
		workers := cfg.Workers
		if workers > len(active) {
			workers = len(active)
		}
		var sweepToken uint64
		if assert.Enabled {
			sweepToken = sweepGuard.BeginSweep("warm propagate belief matrix")
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			// Contiguous block ranges over the sorted worklist, matching
			// RunFlat's partitioning: each worker walks a dense span of
			// the frontier (and, because active is sorted, a roughly
			// dense span of the belief matrix). Bit-identical: rowDelta
			// and buf entries do not depend on which worker fills them.
			go func(lo, hi int) { // lint:checked noalloc: worker goroutines + closure are per-sweep runtime cost accepted by design; TestWarmSweepAllocGuard bounds the total
				defer wg.Done()
				if assert.Enabled {
					sweepGuard.CheckSweep(sweepToken, "warm propagate belief matrix")
				}
				for ai := lo; ai < hi; ai++ {
					rowDelta[ai] = updateRow(adj, X, xref, labelled, int(active[ai]), cfg.Mu, cfg.Nu, uniform, buf[ai*Y:ai*Y+Y])
				}
			}(len(active)*w/workers, len(active)*(w+1)/workers)
		}
		wg.Wait()
		if assert.Enabled {
			sweepGuard.EndSweep(sweepToken, "warm propagate belief matrix")
		}

		// Apply the Jacobi sweep and grow the next frontier: the rows a
		// changed vertex feeds are its in-neighbours (they read it), so
		// expansion walks the reverse adjacency.
		epoch++
		nextActive = nextActive[:0]
		var maxDelta float64
		for ai, v := range active {
			d := rowDelta[ai]
			if d > maxDelta {
				maxDelta = d
			}
			if d > 0 {
				row := int(v) * Y
				copy(X[row:row+Y], buf[ai*Y:ai*Y+Y])
				res.Touched[v] = true
			}
			if d > cfg.Tolerance {
				for e, end := roff[v], roff[v+1]; e < end; e++ {
					u := rto[e]
					if mark[u] != epoch {
						mark[u] = epoch
						nextActive = append(nextActive, u) // lint:checked noalloc: frontier growth amortized across sweeps; steady state reuses the swapped buffer
					}
				}
			}
		}
		res.Updates += len(active)
		res.MaxDelta = maxDelta
		res.Sweeps++
		active, nextActive = nextActive, active
		sort.Slice(active, func(i, j int) bool { return active[i] < active[j] }) // lint:checked noalloc: sort.Slice boxes once per sweep; bounded by TestWarmSweepAllocGuard
		if assert.Enabled {
			assert.NoNaN(X, "warm propagate beliefs after sweep")
		}
	}
	res.Converged = len(active) == 0
	return res, nil
}

// reverseOf builds the reverse adjacency of a CSR view — for each vertex,
// the vertices that have it as an out-neighbour — as offset and target
// arrays (weights are not needed for frontier expansion).
func reverseOf(adj adjacency, n int) (off, to []int32) {
	counts := make([]int32, n)
	for _, t := range adj.to {
		counts[t]++
	}
	off = make([]int32, n+1)
	var pos int32
	for v := 0; v < n; v++ {
		off[v] = pos
		pos += counts[v]
	}
	off[n] = pos
	to = make([]int32, pos)
	cursor := counts // reuse as per-vertex fill cursor
	copy(cursor, off[:n])
	for v := 0; v < n; v++ {
		for e, end := adj.off[v], adj.off[v+1]; e < end; e++ {
			t := adj.to[e]
			to[cursor[t]] = int32(v)
			cursor[t]++
		}
	}
	return off, to
}
