package propagate

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/corpus"
	"repro/internal/graph"
)

// flatUniform returns an n-row flat belief matrix initialized uniform.
func flatUniform(n int) []float64 {
	const Y = corpus.NumTags
	X := make([]float64, n*Y)
	for i := range X {
		X[i] = 1.0 / Y
	}
	return X
}

// warmProblem builds a random propagation problem over a random graph,
// with flat beliefs.
func warmProblem(rng *rand.Rand, n, k int) (*graph.Graph, []float64, [][]float64, []bool) {
	g := randomGraph(rng, n, k)
	g.EnsureCSR()
	X := flatUniform(n)
	xref := make([][]float64, n)
	labelled := make([]bool, n)
	for v := 0; v < n; v++ {
		if rng.Float64() < 0.3 {
			labelled[v] = true
			a := 0.2 + 0.6*rng.Float64()
			xref[v] = []float64{a, (1 - a) / 2, (1 - a) / 2}
		}
	}
	return g, X, xref, labelled
}

// TestWarmStartEmptyDirtySetIsNoop: with nothing dirty there is no
// frontier, no sweeps run, and beliefs are untouched.
func TestWarmStartEmptyDirtySetIsNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, X, xref, labelled := warmProblem(rng, 50, 4)
	before := append([]float64(nil), X...)
	res, err := RunWarmFlat(g, X, xref, labelled, Config{Mu: 0.2, Nu: 0.05, Workers: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sweeps != 0 || res.Updates != 0 || !res.Converged {
		t.Fatalf("empty dirty set ran %d sweeps, %d updates", res.Sweeps, res.Updates)
	}
	for i := range X {
		if X[i] != before[i] { // lint:checked no-op must be bit-exact
			t.Fatal("beliefs changed with empty dirty set")
		}
	}
}

// TestWarmStartConvergesToFullFixedPoint is the documented-tolerance bar:
// after a localized graph change, warm-start frontier propagation from the
// previous converged beliefs must land within the documented bound —
// 2·Tolerance·ρ/(1−ρ) — of a fully converged from-scratch sweep on the
// new graph. Mu/Nu here give contraction modulus ρ ≤ μK/(ν+μK) ≈ 0.952,
// so with Tolerance 1e-9 the bound is ≈ 4e-8; we assert 1e-6 for slack.
func TestWarmStartConvergesToFullFixedPoint(t *testing.T) {
	const Y = corpus.NumTags
	const tol = 1e-9
	rng := rand.New(rand.NewSource(7))
	cfg := Config{Mu: 0.2, Nu: 0.05, Tolerance: tol, Iterations: 100000, Workers: 3}

	for trial := 0; trial < 5; trial++ {
		g, X, xref, labelled := warmProblem(rng, 80, 5)
		if _, err := RunFlat(g, X, xref, labelled, cfg); err != nil {
			t.Fatal(err)
		}

		// Localized change: rewire a handful of rows and append two new
		// vertices, mimicking an incremental graph update.
		n := g.NumVertices()
		dirty := []int32{int32(rng.Intn(n)), int32(rng.Intn(n)), int32(n), int32(n + 1)}
		for _, v := range dirty[:2] {
			g.Neighbors[v] = []graph.Edge{{To: int32(rng.Intn(n)), Weight: 0.9}}
		}
		for i := 0; i < 2; i++ {
			g.Vertices = append(g.Vertices, corpus.NGram("new"+string(rune('a'+i))+string(rune('a'+trial))))
			g.Neighbors = append(g.Neighbors, []graph.Edge{{To: int32(rng.Intn(n)), Weight: 0.8}})
		}
		g.BuildCSR()
		n = g.NumVertices()
		labelled = append(labelled, false, false)
		xref = append(xref, nil, nil)
		warmX := append(append([]float64(nil), X...), flatUniform(2)...)

		res, err := RunWarmFlat(g, warmX, xref, labelled, cfg, dirty)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("trial %d: warm start hit the sweep cap (%d sweeps)", trial, res.Sweeps)
		}

		fullX := flatUniform(n)
		if _, err := RunFlat(g, fullX, xref, labelled, cfg); err != nil {
			t.Fatal(err)
		}
		for i := range fullX {
			if d := math.Abs(warmX[i] - fullX[i]); d > 1e-6 {
				t.Fatalf("trial %d: entry %d differs by %g (warm %v vs full %v)", trial, i, d, warmX[i], fullX[i])
			}
		}
		// Touched rows must cover every entry that actually moved.
		for v := 0; v < n; v++ {
			if res.Touched[v] {
				continue
			}
			for y := 0; y < Y; y++ {
				idx := v*Y + y
				orig := 1.0 / Y
				if v < len(X)/Y {
					orig = X[idx]
				}
				if warmX[idx] != orig { // lint:checked untouched rows must be bit-identical
					t.Fatalf("trial %d: vertex %d changed but not marked touched", trial, v)
				}
			}
		}
	}
}

// TestWarmStartTouchesFractionOnly: on a localized change, warm-start
// visits far fewer rows than sweeps × vertices — the point of the
// frontier. A ring lattice gives the graph enough diameter for locality
// to be observable (deltas decay below tolerance before the frontier can
// wrap around), unlike small-diameter random graphs.
func TestWarmStartTouchesFractionOnly(t *testing.T) {
	const n = 400
	g := &graph.Graph{K: 2, Neighbors: make([][]graph.Edge, n)}
	for v := 0; v < n; v++ {
		g.Vertices = append(g.Vertices, corpus.NGram("r"+string(rune('a'+v%26))+string(rune('a'+v/26))))
		g.Neighbors[v] = []graph.Edge{
			{To: int32((v + 1) % n), Weight: 0.7},
			{To: int32((v + 2) % n), Weight: 0.3},
		}
	}
	g.EnsureCSR()
	X := flatUniform(n)
	xref := make([][]float64, n)
	labelled := make([]bool, n)
	for v := 0; v < n; v += 5 {
		labelled[v] = true
		xref[v] = []float64{0.8, 0.1, 0.1}
	}
	cfg := Config{Mu: 0.05, Nu: 0.2, Tolerance: 1e-10, Iterations: 100000, Workers: 2}
	if _, err := RunFlat(g, X, xref, labelled, cfg); err != nil {
		t.Fatal(err)
	}
	dirty := []int32{3}
	g.Neighbors[3] = []graph.Edge{{To: 200, Weight: 0.99}}
	g.BuildCSR()
	res, err := RunWarmFlat(g, X, xref, labelled, cfg, dirty)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("warm start did not converge")
	}
	if full := res.Sweeps * g.NumVertices(); res.Updates >= full/4 {
		t.Fatalf("warm start updated %d rows over %d sweeps; full sweeps would do %d — frontier not localized",
			res.Updates, res.Sweeps, full)
	}
}

// TestRunFlatToleranceEarlyStop: with Tolerance set, RunFlat stops before
// the iteration cap once sweeps stop changing beliefs, and reports the
// per-sweep loss history it actually ran.
func TestRunFlatToleranceEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, X, xref, labelled := warmProblem(rng, 60, 4)
	res, err := RunFlat(g, X, xref, labelled, Config{Mu: 0.2, Nu: 0.05, Tolerance: 1e-8, Iterations: 100000, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Loss) - 1; got >= 100000 || got < 1 {
		t.Fatalf("ran %d sweeps, expected early stop", got)
	}
	if res.MaxDelta > 1e-8 {
		t.Fatalf("stopped at MaxDelta %g > tolerance", res.MaxDelta)
	}
}
