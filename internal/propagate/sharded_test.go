package propagate

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/corpus"
	"repro/internal/graph"
)

// shardedProblem builds a random propagation problem with non-uniform
// starting beliefs, so every sweep moves every row and any divergence
// between the flat and sharded kernels shows up in the bits.
func shardedProblem(rng *rand.Rand, n, k int) (*graph.Graph, []float64, [][]float64, []bool) {
	const Y = corpus.NumTags
	g, X, xref, labelled := warmProblem(rng, n, k)
	for v := 0; v < n; v++ {
		a, b := rng.Float64(), rng.Float64()
		if a > b {
			a, b = b, a
		}
		row := X[v*Y : v*Y+Y]
		row[0], row[1], row[2] = a, b-a, 1-b
	}
	return g, X, xref, labelled
}

// TestRunShardedFlatMatchesRunFlat is the propagation half of the
// sharding equivalence bar: for every shard count and configuration, the
// sharded SPMD kernel must reproduce RunFlat bit for bit — final
// beliefs, every recorded loss, and the final MaxDelta.
func TestRunShardedFlatMatchesRunFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g, X0, xref, labelled := shardedProblem(rng, 240, 6)
	configs := []Config{
		{Mu: 1e-6, Nu: 1e-6, Iterations: 2, Workers: 2},
		{Mu: 0.2, Nu: 0.05, Iterations: 4, Workers: 3},
		{Mu: 0.2, Nu: 0.05, Iterations: 0, Workers: 1},
		{Mu: 0.5, Nu: 0.01, Iterations: 50, Tolerance: 1e-7, Workers: 2},
		{Mu: 0.2, Nu: 0.05, Iterations: 4, Workers: 2, LossEvery: -1},
		{Mu: 0.2, Nu: 0.05, Iterations: 5, Workers: 2, LossEvery: 2},
	}
	for ci, cfg := range configs {
		want := append([]float64(nil), X0...)
		wantRes, err := RunFlat(g, want, xref, labelled, cfg)
		if err != nil {
			t.Fatalf("config %d: RunFlat: %v", ci, err)
		}
		for _, s := range []int{1, 2, 3, 8} {
			sg, err := graph.ShardGraph(g, s)
			if err != nil {
				t.Fatalf("config %d S=%d: ShardGraph: %v", ci, s, err)
			}
			got := append([]float64(nil), X0...)
			gotRes, err := RunShardedFlat(sg, got, xref, labelled, cfg)
			if err != nil {
				t.Fatalf("config %d S=%d: RunShardedFlat: %v", ci, s, err)
			}
			tag := fmt.Sprintf("config=%d/S=%d", ci, s)
			assertSameResult(t, tag, gotRes, wantRes)
			for i := range want {
				if got[i] != want[i] { // lint:checked sharded kernel must be bit-exact
					t.Fatalf("%s: belief entry %d is %v, flat kernel has %v", tag, i, got[i], want[i])
				}
			}
		}
	}
}

// TestRunShardedMatchesRun covers the slice-of-rows adapter, including
// nil-row materialization.
func TestRunShardedMatchesRun(t *testing.T) {
	const Y = corpus.NumTags
	rng := rand.New(rand.NewSource(29))
	g, flat, xref, labelled := shardedProblem(rng, 90, 4)
	n := g.NumVertices()
	rows := func() [][]float64 {
		X := make([][]float64, n)
		for v := 0; v < n; v++ {
			if v%7 == 3 {
				continue // nil row: adapter materializes it as uniform
			}
			X[v] = append([]float64(nil), flat[v*Y:v*Y+Y]...)
		}
		return X
	}
	cfg := Config{Mu: 0.2, Nu: 0.05, Iterations: 3, Workers: 2}
	want := rows()
	wantRes, err := Run(g, want, xref, labelled, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []int{2, 5} {
		sg, err := graph.ShardGraph(g, s)
		if err != nil {
			t.Fatal(err)
		}
		got := rows()
		gotRes, err := RunSharded(sg, got, xref, labelled, cfg)
		if err != nil {
			t.Fatal(err)
		}
		tag := fmt.Sprintf("adapter/S=%d", s)
		assertSameResult(t, tag, gotRes, wantRes)
		for v := range want {
			for y := 0; y < Y; y++ {
				if got[v][y] != want[v][y] { // lint:checked adapter must be bit-exact
					t.Fatalf("%s: row %d entry %d differs", tag, v, y)
				}
			}
		}
	}
}

// TestRunShardedFlatRejectsSymmetrize: the shard CSR mirrors the directed
// graph only; asking for the symmetrized ablation must fail loudly, not
// silently propagate over the wrong adjacency.
func TestRunShardedFlatRejectsSymmetrize(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g, X, xref, labelled := shardedProblem(rng, 40, 3)
	sg, err := graph.ShardGraph(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunShardedFlat(sg, X, xref, labelled, Config{Mu: 0.1, Nu: 0.1, Iterations: 1, Symmetrize: true}); err == nil {
		t.Fatal("RunShardedFlat accepted Symmetrize")
	}
}

// TestLossEverySchedule pins the LossEvery contract on the flat path: -1
// records nothing, N records the initial point, every Nth sweep, and the
// final sweep, and every recorded value matches the legacy every-sweep
// schedule bit for bit.
func TestLossEverySchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	g, X0, xref, labelled := shardedProblem(rng, 80, 4)
	base := Config{Mu: 0.2, Nu: 0.05, Iterations: 5, Workers: 2}
	full := append([]float64(nil), X0...)
	fullRes, err := RunFlat(g, full, xref, labelled, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(fullRes.Loss) != base.Iterations+1 {
		t.Fatalf("legacy schedule recorded %d losses, want %d", len(fullRes.Loss), base.Iterations+1)
	}

	never := base
	never.LossEvery = -1
	X := append([]float64(nil), X0...)
	res, err := RunFlat(g, X, xref, labelled, never)
	if err != nil {
		t.Fatal(err)
	}
	if res.Loss != nil {
		t.Fatalf("LossEvery=-1 recorded %d losses", len(res.Loss))
	}
	for i := range X {
		if X[i] != full[i] { // lint:checked loss schedule must not change beliefs
			t.Fatal("LossEvery=-1 changed the propagation result")
		}
	}

	periodic := base
	periodic.LossEvery = 2
	X = append([]float64(nil), X0...)
	res, err = RunFlat(g, X, xref, labelled, periodic)
	if err != nil {
		t.Fatal(err)
	}
	// Iterations=5, N=2: recorded after sweeps 0, 2, 4, and the final 5th.
	wantAt := []int{0, 2, 4, 5}
	if len(res.Loss) != len(wantAt) {
		t.Fatalf("LossEvery=2 recorded %d losses, want %d", len(res.Loss), len(wantAt))
	}
	for i, at := range wantAt {
		if res.Loss[i] != fullRes.Loss[at] { // lint:checked recorded losses must be bit-exact
			t.Fatalf("LossEvery=2 loss %d (after sweep %d) is %v, legacy has %v",
				i, at, res.Loss[i], fullRes.Loss[at])
		}
	}
}

// assertSameResult compares two propagation Results bit for bit.
func assertSameResult(t *testing.T, tag string, got, want Result) {
	t.Helper()
	if got.MaxDelta != want.MaxDelta { // lint:checked equivalence check is exact by design
		t.Fatalf("%s: MaxDelta %v, want %v", tag, got.MaxDelta, want.MaxDelta)
	}
	if len(got.Loss) != len(want.Loss) {
		t.Fatalf("%s: %d losses, want %d", tag, len(got.Loss), len(want.Loss))
	}
	for i := range got.Loss {
		if got.Loss[i] != want.Loss[i] { // lint:checked equivalence check is exact by design
			t.Fatalf("%s: loss %d is %v, want %v", tag, i, got.Loss[i], want.Loss[i])
		}
	}
}
