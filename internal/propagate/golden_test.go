package propagate

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/graph"
)

// This file pins the flat CSR kernel to the seed implementation:
// referenceRun and referenceLoss below are verbatim copies of the original
// row-slice Jacobi sweep (modulo identifier renames), and the tests demand
// bit-identical Loss histories, MaxDelta, and final beliefs. Any change to
// the kernel's arithmetic order shows up here as an exact-float mismatch.

// referenceRun is the seed Run implementation (pre-CSR).
func referenceRun(g *graph.Graph, X, xref [][]float64, labelled []bool, cfg Config) (Result, error) {
	n := g.NumVertices()
	if len(X) != n || len(xref) != n || len(labelled) != n {
		panic("referenceRun: length mismatch")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	const Y = corpus.NumTags
	uniform := 1.0 / Y

	for v := range X {
		if X[v] == nil {
			X[v] = []float64{uniform, uniform, uniform}
		}
	}

	neigh := g.Neighbors
	if cfg.Symmetrize {
		neigh = symmetrized(g)
	}

	res := Result{Loss: make([]float64, 0, cfg.Iterations+1)}
	res.Loss = append(res.Loss, referenceLoss(neigh, X, xref, labelled, cfg))

	cur := X
	next := make([][]float64, n)
	flat := make([]float64, n*Y)
	for v := range next {
		next[v] = flat[v*Y : (v+1)*Y]
	}

	for it := 0; it < cfg.Iterations; it++ {
		var wg sync.WaitGroup
		deltas := make([]float64, cfg.Workers)
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var maxDelta float64
				for v := w; v < n; v += cfg.Workers {
					kappa := cfg.Nu
					if labelled[v] {
						kappa++
					}
					var gamma [Y]float64
					for y := 0; y < Y; y++ {
						gamma[y] = cfg.Nu * uniform
						if labelled[v] {
							gamma[y] += xref[v][y]
						}
					}
					for _, e := range neigh[v] {
						kappa += cfg.Mu * e.Weight
						xe := cur[e.To]
						for y := 0; y < Y; y++ {
							gamma[y] += cfg.Mu * e.Weight * xe[y]
						}
					}
					if kappa == 0 {
						copy(next[v], cur[v])
						continue
					}
					for y := 0; y < Y; y++ {
						nv := gamma[y] / kappa
						if d := math.Abs(nv - cur[v][y]); d > maxDelta {
							maxDelta = d
						}
						next[v][y] = nv
					}
				}
				deltas[w] = maxDelta
			}(w)
		}
		wg.Wait()
		res.MaxDelta = 0
		for _, d := range deltas {
			if d > res.MaxDelta {
				res.MaxDelta = d
			}
		}
		for v := range cur {
			copy(cur[v], next[v])
		}
		res.Loss = append(res.Loss, referenceLoss(neigh, X, xref, labelled, cfg))
	}
	return res, nil
}

// referenceLoss is the seed Loss implementation over explicit lists.
func referenceLoss(neigh [][]graph.Edge, X, xref [][]float64, labelled []bool, cfg Config) float64 {
	const Y = corpus.NumTags
	uniform := 1.0 / Y
	var c float64
	for v := range X {
		if X[v] == nil {
			continue
		}
		if labelled[v] {
			for y := 0; y < Y; y++ {
				d := X[v][y] - xref[v][y]
				c += d * d
			}
		}
		for _, e := range neigh[v] {
			if X[e.To] == nil {
				continue
			}
			var s float64
			for y := 0; y < Y; y++ {
				d := X[v][y] - X[e.To][y]
				s += d * d
			}
			c += cfg.Mu * e.Weight * s
		}
		for y := 0; y < Y; y++ {
			d := X[v][y] - uniform
			c += cfg.Nu * d * d
		}
	}
	return c
}

// randomProblem builds a random directed k-NN-like graph with beliefs,
// references, and a labelled mask. Some X rows are nil (uniform).
func randomProblem(rng *rand.Rand, n, k int) (*graph.Graph, [][]float64, [][]float64, []bool) {
	g := &graph.Graph{
		Vertices:  make([]corpus.NGram, n),
		Neighbors: make([][]graph.Edge, n),
		K:         k,
	}
	for v := 0; v < n; v++ {
		deg := rng.Intn(k + 1)
		seen := map[int32]bool{int32(v): true}
		for len(g.Neighbors[v]) < deg {
			to := int32(rng.Intn(n))
			if seen[to] {
				continue
			}
			seen[to] = true
			g.Neighbors[v] = append(g.Neighbors[v], graph.Edge{To: to, Weight: rng.Float64()})
		}
	}
	dist := func() []float64 {
		a, b := rng.Float64(), rng.Float64()
		if a > b {
			a, b = b, a
		}
		return []float64{a, b - a, 1 - b}
	}
	X := make([][]float64, n)
	xref := make([][]float64, n)
	labelled := make([]bool, n)
	for v := 0; v < n; v++ {
		if rng.Float64() < 0.8 {
			X[v] = dist()
		}
		if rng.Float64() < 0.4 {
			labelled[v] = true
			xref[v] = dist()
		}
	}
	return g, X, xref, labelled
}

func deepCopy(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, r := range X {
		if r != nil {
			out[i] = append([]float64(nil), r...)
		}
	}
	return out
}

func TestRunMatchesSeedBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	configs := []Config{
		{Mu: 1e-4, Nu: 1e-6, Iterations: 3, Workers: 1},
		{Mu: 1e-4, Nu: 1e-6, Iterations: 2, Workers: 4},
		{Mu: 0.5, Nu: 0, Iterations: 4, Workers: 3}, // kappa==0 on isolated unlabelled vertices
		{Mu: 1e-6, Nu: 1e-4, Iterations: 2, Workers: 2, Symmetrize: true},
	}
	for trial := 0; trial < 6; trial++ {
		g, X, xref, labelled := randomProblem(rng, 40+trial*17, 5)
		for ci, cfg := range configs {
			for _, withCSR := range []bool{false, true} {
				gotX := deepCopy(X)
				refX := deepCopy(X)
				gRun := g
				if withCSR {
					cp := *g
					cp.BuildCSR()
					gRun = &cp
				}
				got, err := Run(gRun, gotX, xref, labelled, cfg)
				if err != nil {
					t.Fatalf("trial %d cfg %d: %v", trial, ci, err)
				}
				want, _ := referenceRun(g, refX, xref, labelled, cfg)
				if len(got.Loss) != len(want.Loss) {
					t.Fatalf("trial %d cfg %d csr=%v: loss history length %d vs %d",
						trial, ci, withCSR, len(got.Loss), len(want.Loss))
				}
				for i := range got.Loss {
					if got.Loss[i] != want.Loss[i] {
						t.Errorf("trial %d cfg %d csr=%v: Loss[%d] = %v, seed %v",
							trial, ci, withCSR, i, got.Loss[i], want.Loss[i])
					}
				}
				if got.MaxDelta != want.MaxDelta {
					t.Errorf("trial %d cfg %d csr=%v: MaxDelta = %v, seed %v",
						trial, ci, withCSR, got.MaxDelta, want.MaxDelta)
				}
				for v := range gotX {
					for y := range gotX[v] {
						if gotX[v][y] != refX[v][y] {
							t.Fatalf("trial %d cfg %d csr=%v: X[%d][%d] = %v, seed %v",
								trial, ci, withCSR, v, y, gotX[v][y], refX[v][y])
						}
					}
				}
			}
		}
	}
}

// TestRunWorkerCountInvariant pins the kernel's determinism across worker
// counts: the per-vertex update reads only the previous sweep, and the loss
// is accumulated sequentially, so parallelism must not change a single bit.
func TestRunWorkerCountInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g, X, xref, labelled := randomProblem(rng, 120, 6)
	cfg := Config{Mu: 1e-3, Nu: 1e-5, Iterations: 3}

	var base Result
	var baseX [][]float64
	for i, w := range []int{1, 2, 5, 16, 1000} {
		cfg.Workers = w
		Xw := deepCopy(X)
		res, err := Run(g, Xw, xref, labelled, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			base, baseX = res, Xw
			continue
		}
		for j := range res.Loss {
			if res.Loss[j] != base.Loss[j] {
				t.Errorf("workers=%d: Loss[%d] = %v, want %v", w, j, res.Loss[j], base.Loss[j])
			}
		}
		if res.MaxDelta != base.MaxDelta {
			t.Errorf("workers=%d: MaxDelta = %v, want %v", w, res.MaxDelta, base.MaxDelta)
		}
		for v := range Xw {
			for y := range Xw[v] {
				if Xw[v][y] != baseX[v][y] {
					t.Fatalf("workers=%d: X[%d][%d] differs", w, v, y)
				}
			}
		}
	}
}
