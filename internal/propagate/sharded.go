// SPMD propagation over a sharded graph.
//
// RunShardedFlat sweeps each shard's CSR slice independently: a shard's
// belief buffer holds its owned rows followed by a halo region — copies
// of the remote rows its edges read — so the row kernel indexes one flat
// local buffer with no branch on edge locality. Buffers are
// double-buffered per shard (cur/next); after the sweep barrier a halo
// exchange copies every shard's freshly written owned rows into the halo
// regions that mirror them, and the spawner swaps the buffer pairs.
//
// Determinism: the per-row update is the same Jacobi kernel RunFlat
// uses, reading the same neighbour values in the same edge order (the
// shard CSR preserves flat row order, and halo copies are bit-exact), so
// the beliefs after every sweep — and the converged result — are
// bit-identical to RunFlat for every shard count. The loss is evaluated
// by gathering the owned regions into a global scratch matrix and running
// the flat loss kernel verbatim, in global vertex order, so Result is
// bit-identical too.
package propagate

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/analysis/assert"
	"repro/internal/corpus"
	"repro/internal/graph"
)

// shardState is one shard's working set: its CSR slice, the per-shard
// views of the reference distributions and the labelled mask, the
// double-buffered belief matrices (owned rows then halo rows), and the
// shard's max per-entry delta of the current sweep.
type shardState struct {
	adj       adjacency // local CSR; targets >= nLocal index the halo
	verts     []int32   // local id -> global vertex id
	xref      [][]float64
	labelled  []bool
	nLocal    int
	haloOwner []int32
	haloLocal []int32
	cur, next []float64 // (nLocal + len(haloOwner)) × NumTags
	delta     float64
}

// RunSharded performs propagation in place on slice-of-rows beliefs X
// over a sharded graph, exactly as Run does over a flat one. It is the
// same thin adapter: materialize nil rows, flatten, run the sharded flat
// kernel, copy back.
func RunSharded(sg *graph.ShardedGraph, X, xref [][]float64, labelled []bool, cfg Config) (Result, error) {
	n := sg.NumVertices()
	if len(X) != n || len(xref) != n || len(labelled) != n {
		return Result{}, fmt.Errorf("propagate: slice lengths (%d,%d,%d) != vertex count %d",
			len(X), len(xref), len(labelled), n)
	}
	const Y = corpus.NumTags
	uniform := 1.0 / Y
	nilRows := 0
	for v := range X {
		if X[v] == nil {
			nilRows++
		}
	}
	if nilRows > 0 {
		backing := make([]float64, nilRows*Y)
		bi := 0
		for v := range X {
			if X[v] != nil {
				continue
			}
			row := backing[bi : bi+Y : bi+Y]
			for y := 0; y < Y; y++ {
				row[y] = uniform
			}
			X[v] = row
			bi += Y
		}
	}
	flat := make([]float64, n*Y)
	for v := range X {
		copy(flat[v*Y:(v+1)*Y], X[v])
	}
	res, err := RunShardedFlat(sg, flat, xref, labelled, cfg)
	if err != nil {
		return res, err
	}
	for v := range X {
		copy(X[v], flat[v*Y:(v+1)*Y])
	}
	return res, nil
}

// RunShardedFlat performs propagation in place on the flat belief matrix
// X over a sharded graph. For every shard count the returned Result and
// the final X are bit-identical to RunFlat over the flat graph with the
// same Config. Symmetrize is not supported on the sharded layout (the
// shard CSR mirrors the directed graph); use RunFlat for that ablation.
//
//graphner:noalloc per-shard working sets are built once per call, justified inline; TestShardedSweepAllocGuard pins the sweeps
func RunShardedFlat(sg *graph.ShardedGraph, X []float64, xref [][]float64, labelled []bool, cfg Config) (Result, error) {
	const Y = corpus.NumTags
	n := sg.NumVertices()
	if len(X) != n*Y {
		return Result{}, fmt.Errorf("propagate: flat matrix length %d != %d vertices × %d tags", len(X), n, Y) // lint:checked noalloc: cold validation failure path
	}
	if len(xref) != n || len(labelled) != n {
		// lint:checked noalloc: cold validation failure path
		return Result{}, fmt.Errorf("propagate: slice lengths (%d,%d) != vertex count %d",
			len(xref), len(labelled), n)
	}
	if cfg.Iterations < 0 {
		return Result{}, fmt.Errorf("propagate: negative iterations") // lint:checked noalloc: cold validation failure path
	}
	if cfg.Mu < 0 || cfg.Nu < 0 {
		return Result{}, fmt.Errorf("propagate: negative hyper-parameter (mu=%g nu=%g)", cfg.Mu, cfg.Nu) // lint:checked noalloc: cold validation failure path
	}
	if cfg.Symmetrize {
		return Result{}, fmt.Errorf("propagate: sharded propagation does not support Symmetrize") // lint:checked noalloc: cold validation failure path
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	uniform := 1.0 / Y

	// Per-shard working sets.
	S := sg.NumShards()
	states := make([]shardState, S) // lint:checked noalloc: per-call shard table, built once
	for s := 0; s < S; s++ {
		sh := &sg.Shards[s]
		st := &states[s]
		nL, nH := len(sh.Verts), sh.NumHalo()
		st.adj = adjacency{off: sh.Off, to: sh.To, w: sh.W}
		st.verts = sh.Verts
		st.nLocal = nL
		st.haloOwner, st.haloLocal = sh.HaloOwner, sh.HaloLocal
		st.xref = make([][]float64, nL)      // lint:checked noalloc: per-call shard view of the reference rows
		st.labelled = make([]bool, nL)       // lint:checked noalloc: per-call shard view of the label mask
		st.cur = make([]float64, (nL+nH)*Y)  // lint:checked noalloc: per-call owned+halo belief buffer, reused every sweep
		st.next = make([]float64, (nL+nH)*Y) // lint:checked noalloc: per-call ping-pong partner of cur
		for li, gi := range sh.Verts {
			st.xref[li] = xref[gi]
			st.labelled[li] = labelled[gi]
			copy(st.cur[li*Y:(li+1)*Y], X[int(gi)*Y:(int(gi)+1)*Y])
		}
		if assert.Enabled {
			assert.CSRMonotonic(sh.Off, len(sh.To), "sharded propagate adjacency")
		}
	}
	// Initial halo fill: cur halo regions mirror the owners' initial rows.
	for s := range states {
		st := &states[s]
		base := st.nLocal * Y
		for i := range st.haloOwner {
			src := states[st.haloOwner[i]].cur
			o := int(st.haloLocal[i]) * Y
			copy(st.cur[base+i*Y:base+(i+1)*Y], src[o:o+Y])
		}
	}

	checkRows := false
	if assert.Enabled {
		checkRows = assert.Stochastic(X, Y)
		for v := 0; checkRows && v < n; v++ {
			if labelled[v] && !assert.Stochastic(xref[v], Y) {
				checkRows = false
			}
		}
	}

	// The loss runs the flat kernel over a gathered global matrix, so it
	// accumulates in global vertex order — bit-identical to RunFlat. Both
	// scratch pieces are skipped entirely under LossEvery < 0.
	var glob []float64
	var gadj adjacency
	if cfg.LossEvery >= 0 {
		glob = make([]float64, n*Y)        // lint:checked noalloc: opt-in loss scratch, skipped entirely under LossEvery < 0
		gadj = adjacencyOf(sg.G, n, false) // lint:checked noalloc: opt-in loss CSR, built once per call
	}
	gatherLoss := func() float64 { // lint:checked noalloc: one closure per call
		for s := range states {
			st := &states[s]
			for li, gi := range st.verts {
				copy(glob[int(gi)*Y:int(gi)*Y+Y], st.cur[li*Y:li*Y+Y])
			}
		}
		return lossFlat(gadj, glob, xref, labelled, n, cfg.Mu, cfg.Nu)
	}

	var res Result
	if cfg.lossWanted(0, cfg.Iterations == 0) {
		res.Loss = make([]float64, 0, cfg.Iterations+1) // lint:checked noalloc: opt-in loss history, sized once up front
		res.Loss = append(res.Loss, gatherLoss())       // lint:checked noalloc: append stays within the capacity reserved above
	}
	if cfg.Iterations == 0 {
		return res, nil
	}

	workers := cfg.Workers
	if workers > S {
		workers = S
	}
	var sweepGuard assert.SweepGuard
	for it := 0; it < cfg.Iterations; it++ {
		var sweepToken uint64
		if assert.Enabled {
			sweepToken = sweepGuard.BeginSweep("sharded propagate belief matrix")
		}
		// Update pass: every shard sweeps its owned rows, reading cur
		// (owned + halo) and writing its own next. Writes are disjoint by
		// construction — worker w owns shards [lo,hi) and touches only
		// states[s] for s in its block.
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(lo, hi int) { // lint:checked noalloc: sweep-pass goroutines + closure are per-sweep runtime cost accepted by design; TestShardedSweepAllocGuard bounds the total
				defer wg.Done()
				if assert.Enabled {
					sweepGuard.CheckSweep(sweepToken, "sharded propagate belief matrix")
				}
				for s := lo; s < hi; s++ {
					adj := states[s].adj
					cur, next := states[s].cur, states[s].next
					xr, lab := states[s].xref, states[s].labelled
					var maxDelta float64
					for li, nL := 0, states[s].nLocal; li < nL; li++ {
						row := li * Y
						d := updateRow(adj, cur, xr, lab, li, cfg.Mu, cfg.Nu, uniform, next[row:row+Y])
						if d > maxDelta {
							maxDelta = d
						}
					}
					states[s].delta = maxDelta
				}
			}(S*w/workers, S*(w+1)/workers)
		}
		wg.Wait()
		// Halo exchange: each shard refreshes its own next-buffer halo
		// region from the owners' freshly written owned rows. Reads cross
		// shards; writes stay within the worker's own shard block.
		var xg sync.WaitGroup
		for w := 0; w < workers; w++ {
			xg.Add(1)
			go func(lo, hi int) { // lint:checked noalloc: halo-exchange goroutines + closure, same per-sweep cost as the update pass
				defer xg.Done()
				if assert.Enabled {
					sweepGuard.CheckSweep(sweepToken, "sharded propagate belief matrix")
				}
				for s := lo; s < hi; s++ {
					dst := states[s].next
					base := states[s].nLocal * Y
					ho, hl := states[s].haloOwner, states[s].haloLocal
					for i := range ho {
						src := states[ho[i]].next
						o := int(hl[i]) * Y
						copy(dst[base+i*Y:base+(i+1)*Y], src[o:o+Y])
					}
				}
			}(S*w/workers, S*(w+1)/workers)
		}
		xg.Wait()
		if assert.Enabled {
			sweepGuard.EndSweep(sweepToken, "sharded propagate belief matrix")
		}
		// Buffer swap belongs to the spawner: swapping slice headers
		// inside the exchange goroutines would race with readers of the
		// neighbouring shards' states.
		res.MaxDelta = 0
		for s := range states {
			states[s].cur, states[s].next = states[s].next, states[s].cur
			if states[s].delta > res.MaxDelta {
				res.MaxDelta = states[s].delta
			}
		}
		if assert.Enabled {
			for s := range states {
				assert.NoNaN(states[s].cur, "sharded propagate beliefs after sweep")
				if checkRows {
					assert.RowsSumToOne(states[s].cur, Y, "sharded propagate beliefs after sweep")
				}
			}
		}
		stop := cfg.Tolerance > 0 && res.MaxDelta <= cfg.Tolerance
		if cfg.lossWanted(it+1, stop || it == cfg.Iterations-1) {
			res.Loss = append(res.Loss, gatherLoss()) // lint:checked noalloc: loss history append within the capacity reserved up front
		}
		if stop {
			break
		}
	}

	// Scatter the owned regions back into the caller's flat matrix.
	for s := range states {
		st := &states[s]
		for li, gi := range st.verts {
			copy(X[int(gi)*Y:int(gi)*Y+Y], st.cur[li*Y:li*Y+Y])
		}
	}
	return res, nil
}
