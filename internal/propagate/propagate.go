// Package propagate implements GraphNER's iterative graph propagation
// (Equation 2 of the paper): label distributions attached to 3-gram
// vertices are pushed toward (a) their reference distributions when the
// vertex occurs in labelled data, (b) the distributions of their graph
// neighbours weighted by edge similarity (coefficient μ), and (c) the
// uniform distribution (coefficient ν), by iterating the closed-form
// coordinate update that zeroes the gradient of the loss in Equation 1.
//
// The hot path is allocation-free: beliefs live in one flat row-major
// matrix (n × corpus.NumTags), the adjacency is walked in the graph's CSR
// layout (graph.Graph.EdgeOffsets / EdgeTo / EdgeWeight), and the two
// sweep buffers ping-pong instead of being copied. The slice-of-rows Run
// entry point is a thin adapter over RunFlat kept for existing callers.
package propagate

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/analysis/assert"
	"repro/internal/corpus"
	"repro/internal/graph"
)

// Config carries the propagation hyper-parameters of the paper's Table IV.
type Config struct {
	// Mu weights the neighbour-smoothness term (paper: 1e-6).
	Mu float64
	// Nu weights the uniform-prior term (paper: 1e-6 or 1e-4).
	Nu float64
	// Iterations is the fixed number of sweeps (paper: 2 or 3). With
	// Tolerance set it caps the sweep count instead of fixing it; in
	// RunWarmFlat a zero value means the default warm sweep cap.
	Iterations int
	// Tolerance, when positive, stops sweeping early once the largest
	// per-entry belief change of a sweep is at most Tolerance. Zero keeps
	// the paper's fixed-sweep behaviour, bit for bit. The coordinate
	// update is a contraction toward the unique fixed point of Equation 1
	// (its diagonal strictly dominates: κ = ν + μΣw + 1 on labelled
	// vertices), so a converged run lands within Tolerance·ρ/(1−ρ) of
	// that fixed point, where ρ < 1 is the contraction modulus μΣw/κ.
	Tolerance float64
	// Symmetrize, when true, propagates over the union of in- and
	// out-edges rather than the directed out-neighbour lists. The paper
	// uses the directed k-NN graph; symmetrization is provided for
	// ablation.
	Symmetrize bool
	// Workers bounds parallelism (default GOMAXPROCS).
	Workers int
	// LossEvery controls how often the Equation-1 objective is evaluated.
	// The loss is diagnostic — no control flow reads it — but costs a full
	// pass over the edges, comparable to a sweep itself. 0 (the default)
	// keeps the legacy schedule: before the first sweep and after every
	// sweep, bit for bit. A negative value skips the loss entirely
	// (Result.Loss stays nil). N > 0 evaluates before the first sweep,
	// after every Nth sweep, and after the final sweep.
	LossEvery int
}

// Result reports what propagation did.
type Result struct {
	// Loss holds the Equation-1 objective at the evaluation points
	// Config.LossEvery selects — with the default schedule, before the
	// first sweep and after every sweep (length Iterations+1).
	Loss []float64
	// MaxDelta is the largest per-entry change of the final sweep.
	MaxDelta float64
}

// lossWanted reports whether the loss schedule evaluates the objective
// after `done` completed sweeps (done == 0 is the pre-sweep evaluation);
// final marks the last sweep of the run, which N-periodic schedules
// always record.
func (cfg Config) lossWanted(done int, final bool) bool {
	switch {
	case cfg.LossEvery < 0:
		return false
	case cfg.LossEvery == 0:
		return true
	default:
		return final || done%cfg.LossEvery == 0
	}
}

// adjacency is a CSR view of the propagation graph: the out-edges of
// vertex v are to[off[v]:off[v+1]] with weights w over the same range.
type adjacency struct {
	off []int32
	to  []int32
	w   []float64
}

// adjacencyOf returns the CSR adjacency to propagate over, honouring
// cfg.Symmetrize. It never mutates g (so concurrent Runs over a shared
// graph stay race-free): graphs built by graph.Build or graph.ReadFrom
// already carry CSR arrays; hand-assembled graphs get a local flattening.
func adjacencyOf(g *graph.Graph, n int, symmetrize bool) adjacency {
	if symmetrize {
		return csrOfLists(symmetrized(g), n)
	}
	if len(g.EdgeOffsets) == n+1 && int(g.EdgeOffsets[n]) == len(g.EdgeTo) {
		return adjacency{off: g.EdgeOffsets, to: g.EdgeTo, w: g.EdgeWeight}
	}
	return csrOfLists(g.Neighbors, n)
}

// csrOfLists flattens slice-of-slices adjacency into a CSR view with n
// rows (rows beyond len(lists) are empty), preserving edge order.
func csrOfLists(lists [][]graph.Edge, n int) adjacency {
	if n < len(lists) {
		n = len(lists)
	}
	total := 0
	for _, es := range lists {
		total += len(es)
	}
	a := adjacency{
		off: make([]int32, n+1),
		to:  make([]int32, total),
		w:   make([]float64, total),
	}
	pos := int32(0)
	for v, es := range lists {
		a.off[v] = pos
		for _, e := range es {
			a.to[pos] = e.To
			a.w[pos] = e.Weight
			pos++
		}
	}
	for v := len(lists); v <= n; v++ {
		a.off[v] = pos
	}
	return a
}

// Run performs propagation in place on X. X[v] is the current label
// distribution of vertex v (length corpus.NumTags); xref[v] is its
// reference distribution, consulted only where labelled[v] is true. All
// three slices must be indexed like g.Vertices. Vertices whose X row is
// nil are treated as uniform and materialized.
//
// Run is an adapter over RunFlat: it copies the rows into a flat working
// matrix, runs the CSR kernel, and copies the result back into the
// caller's rows, so callers holding [][]float64 beliefs are untouched by
// the flat-layout refactor.
func Run(g *graph.Graph, X, xref [][]float64, labelled []bool, cfg Config) (Result, error) {
	n := g.NumVertices()
	if len(X) != n || len(xref) != n || len(labelled) != n {
		return Result{}, fmt.Errorf("propagate: slice lengths (%d,%d,%d) != vertex count %d",
			len(X), len(xref), len(labelled), n)
	}
	if cfg.Iterations < 0 {
		return Result{}, fmt.Errorf("propagate: negative iterations")
	}
	if cfg.Mu < 0 || cfg.Nu < 0 {
		return Result{}, fmt.Errorf("propagate: negative hyper-parameter (mu=%g nu=%g)", cfg.Mu, cfg.Nu)
	}
	const Y = corpus.NumTags
	uniform := 1.0 / Y

	// Materialize nil rows out of one shared backing array (one
	// allocation instead of one per vertex).
	nilRows := 0
	for v := range X {
		if X[v] == nil {
			nilRows++
		}
	}
	if nilRows > 0 {
		backing := make([]float64, nilRows*Y)
		bi := 0
		for v := range X {
			if X[v] != nil {
				continue
			}
			row := backing[bi : bi+Y : bi+Y]
			for y := 0; y < Y; y++ {
				row[y] = uniform
			}
			X[v] = row
			bi += Y
		}
	}

	flat := make([]float64, n*Y)
	for v := range X {
		copy(flat[v*Y:(v+1)*Y], X[v])
	}
	res, err := RunFlat(g, flat, xref, labelled, cfg)
	if err != nil {
		return res, err
	}
	for v := range X {
		copy(X[v], flat[v*Y:(v+1)*Y])
	}
	return res, nil
}

// RunFlat performs propagation in place on the flat row-major belief
// matrix X, where X[v*corpus.NumTags+y] is vertex v's probability of tag
// y and len(X) must be g.NumVertices()·corpus.NumTags. xref and labelled
// are as in Run. This is the allocation-free entry point: besides the
// ping-pong sweep buffer and the loss history it allocates nothing per
// sweep.
//
//graphner:noalloc per-call setup is justified inline; TestSweepAllocGuard pins the sweep loop at zero
func RunFlat(g *graph.Graph, X []float64, xref [][]float64, labelled []bool, cfg Config) (Result, error) {
	const Y = corpus.NumTags
	n := g.NumVertices()
	if len(X) != n*Y {
		return Result{}, fmt.Errorf("propagate: flat matrix length %d != %d vertices × %d tags", len(X), n, Y) // lint:checked noalloc: cold validation failure path
	}
	if len(xref) != n || len(labelled) != n {
		// lint:checked noalloc: cold validation failure path
		return Result{}, fmt.Errorf("propagate: slice lengths (%d,%d) != vertex count %d",
			len(xref), len(labelled), n)
	}
	if cfg.Iterations < 0 {
		return Result{}, fmt.Errorf("propagate: negative iterations") // lint:checked noalloc: cold validation failure path
	}
	if cfg.Mu < 0 || cfg.Nu < 0 {
		return Result{}, fmt.Errorf("propagate: negative hyper-parameter (mu=%g nu=%g)", cfg.Mu, cfg.Nu) // lint:checked noalloc: cold validation failure path
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers > n && n > 0 {
		cfg.Workers = n
	}
	uniform := 1.0 / Y

	adj := adjacencyOf(g, n, cfg.Symmetrize) // lint:checked noalloc: CSR built once per call, not per sweep; TestSweepAllocGuard measures the sweeps

	// Debug-build invariants (no-ops otherwise): the adjacency must be a
	// well-formed CSR, and when the inputs are row-stochastic the Jacobi
	// update keeps every belief row summing to 1, sweep after sweep.
	checkRows := false
	if assert.Enabled {
		assert.CSRMonotonic(adj.off, len(adj.to), "propagate adjacency")
		checkRows = assert.Stochastic(X, Y)
		for v := 0; checkRows && v < n; v++ {
			if labelled[v] && !assert.Stochastic(xref[v], Y) {
				checkRows = false
			}
		}
	}

	var res Result
	if cfg.lossWanted(0, cfg.Iterations == 0) {
		res.Loss = make([]float64, 0, cfg.Iterations+1)                                  // lint:checked noalloc: opt-in loss history, sized once up front
		res.Loss = append(res.Loss, lossFlat(adj, X, xref, labelled, n, cfg.Mu, cfg.Nu)) // lint:checked noalloc: append stays within the capacity reserved above
	}
	if cfg.Iterations == 0 {
		return res, nil
	}

	cur := X
	next := make([]float64, n*Y)           // lint:checked noalloc: the ping-pong buffer, one per call; the sweep loop reuses it
	inX := true                            // whether cur aliases the caller's X
	deltas := make([]float64, cfg.Workers) // lint:checked noalloc: one word per worker, allocated once per call

	// Debug builds version-stamp each sweep: workers assert mid-shard
	// that no other sweep epoch started or finished underneath them, so
	// any future caller that overlaps sweeps on shared buffers panics
	// instead of silently corrupting beliefs. Zero cost otherwise.
	var sweepGuard assert.SweepGuard

	for it := 0; it < cfg.Iterations; it++ {
		var sweepToken uint64
		if assert.Enabled {
			sweepToken = sweepGuard.BeginSweep("propagate belief matrix")
		}
		var wg sync.WaitGroup
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			// Contiguous block ranges rather than a strided v += Workers
			// walk: each worker streams a dense span of the belief matrix
			// and the CSR arrays, so adjacent rows share cache lines
			// within one worker instead of bouncing between all of them.
			// The partition only regroups which worker computes which
			// row; every row update reads and writes the same values, so
			// the sweep is bit-identical to the strided schedule.
			go func(w, lo, hi int) { // lint:checked noalloc: worker goroutines + closure are per-sweep runtime cost accepted by design; TestSweepAllocGuard bounds the total
				defer wg.Done()
				if assert.Enabled {
					sweepGuard.CheckSweep(sweepToken, "propagate belief matrix")
				}
				var maxDelta float64
				for v := lo; v < hi; v++ {
					row := v * Y
					d := updateRow(adj, cur, xref, labelled, v, cfg.Mu, cfg.Nu, uniform, next[row:row+Y])
					if d > maxDelta {
						maxDelta = d
					}
				}
				deltas[w] = maxDelta
			}(w, n*w/cfg.Workers, n*(w+1)/cfg.Workers)
		}
		wg.Wait()
		if assert.Enabled {
			sweepGuard.EndSweep(sweepToken, "propagate belief matrix")
		}
		res.MaxDelta = 0
		for _, d := range deltas {
			if d > res.MaxDelta {
				res.MaxDelta = d
			}
		}
		// Ping-pong instead of copying next back into cur: the swap makes
		// each sweep read memory once (the update pass), with the loss
		// evaluation below reading the freshly written buffer.
		cur, next = next, cur
		inX = !inX
		if assert.Enabled {
			assert.NoNaN(cur, "propagate beliefs after sweep")
			if checkRows {
				assert.RowsSumToOne(cur, Y, "propagate beliefs after sweep")
			}
		}
		stop := cfg.Tolerance > 0 && res.MaxDelta <= cfg.Tolerance
		if cfg.lossWanted(it+1, stop || it == cfg.Iterations-1) {
			res.Loss = append(res.Loss, lossFlat(adj, cur, xref, labelled, n, cfg.Mu, cfg.Nu)) // lint:checked noalloc: loss history append within the capacity reserved up front
		}
		if stop {
			break
		}
	}
	// The final beliefs must land in the caller's X; after an odd number
	// of swaps they live in the scratch buffer.
	if !inX {
		copy(X, cur)
	}
	return res, nil
}

// updateRow applies the Equation-2 Jacobi coordinate update to vertex v:
// it reads the beliefs of v's out-neighbours from cur, writes v's new
// distribution into out (length corpus.NumTags), and returns the largest
// per-entry change. RunFlat's full sweeps and RunWarmFlat's frontier
// sweeps share this kernel, so a warm-started sweep computes exactly the
// update a full sweep would for the same vertex and beliefs.
//
//graphner:noalloc
//graphner:nonblocking
func updateRow(adj adjacency, cur []float64, xref [][]float64, labelled []bool, v int, mu, nu, uniform float64, out []float64) float64 {
	const Y = corpus.NumTags
	if Y == 3 {
		// Constant condition: the dead branch is eliminated at compile
		// time, so the tag-width change that would invalidate the
		// unrolled kernel also stops selecting it.
		return updateRow3(adj, cur, xref, labelled, v, mu, nu, uniform, out)
	}
	kappa := nu
	if labelled[v] {
		kappa++
	}
	var gamma [Y]float64
	for y := 0; y < Y; y++ {
		gamma[y] = nu * uniform
		if labelled[v] {
			gamma[y] += xref[v][y]
		}
	}
	for e, end := adj.off[v], adj.off[v+1]; e < end; e++ {
		mw := mu * adj.w[e]
		kappa += mw
		xe := cur[int(adj.to[e])*Y : int(adj.to[e])*Y+Y]
		for y := 0; y < Y; y++ {
			gamma[y] += mw * xe[y]
		}
	}
	row := v * Y
	if kappa == 0 {
		// Isolated unlabelled vertex with ν=0: keep as is.
		copy(out, cur[row:row+Y])
		return 0
	}
	var maxDelta float64
	for y := 0; y < Y; y++ {
		nv := gamma[y] / kappa
		if d := math.Abs(nv - cur[row+y]); d > maxDelta {
			maxDelta = d
		}
		out[y] = nv
	}
	return maxDelta
}

// updateRow3 is updateRow unrolled for the three-tag alphabet the corpus
// package fixes at compile time. Bit-identity with the generic loop is
// load-bearing: every accumulator (kappa, the three gamma components,
// maxDelta) sees exactly the same sequence of floating-point operations
// in the same order — the unrolling only renames gamma[y] to three
// scalars and peels the constant-bound loops, it never reassociates a
// sum or hoists a division.
//
//graphner:noalloc
//graphner:nonblocking
func updateRow3(adj adjacency, cur []float64, xref [][]float64, labelled []bool, v int, mu, nu, uniform float64, out []float64) float64 {
	kappa := nu
	u := nu * uniform
	g0, g1, g2 := u, u, u
	if labelled[v] {
		kappa++
		xr := xref[v]
		g0 += xr[0]
		g1 += xr[1]
		g2 += xr[2]
	}
	to, wt := adj.to, adj.w
	for e, end := adj.off[v], adj.off[v+1]; e < end; e++ {
		mw := mu * wt[e]
		kappa += mw
		o := int(to[e]) * 3
		xe := cur[o : o+3 : o+3]
		g0 += mw * xe[0]
		g1 += mw * xe[1]
		g2 += mw * xe[2]
	}
	row := v * 3
	if kappa == 0 {
		// Isolated unlabelled vertex with ν=0: keep as is.
		copy(out, cur[row:row+3])
		return 0
	}
	cr := cur[row : row+3 : row+3]
	var maxDelta float64
	nv := g0 / kappa
	if d := math.Abs(nv - cr[0]); d > maxDelta {
		maxDelta = d
	}
	out[0] = nv
	nv = g1 / kappa
	if d := math.Abs(nv - cr[1]); d > maxDelta {
		maxDelta = d
	}
	out[1] = nv
	nv = g2 / kappa
	if d := math.Abs(nv - cr[2]); d > maxDelta {
		maxDelta = d
	}
	out[2] = nv
	return maxDelta
}

// Loss evaluates the Equation-1 objective:
//
//	C(X) = Σ_{u∈V_l} ‖X(u)−X_ref(u)‖² + μ Σ_u Σ_{k∈N(u)} w_{u,k}‖X(u)−X(k)‖²
//	       + ν Σ_u ‖X(u)−U‖²
//
// over slice-of-rows beliefs (nil rows are skipped, matching Run's
// pre-materialization semantics).
func Loss(g *graph.Graph, X, xref [][]float64, labelled []bool, cfg Config) float64 {
	const Y = corpus.NumTags
	uniform := 1.0 / Y
	var c float64
	neigh := g.Neighbors
	if cfg.Symmetrize {
		neigh = symmetrized(g)
	}
	for v := range X {
		if X[v] == nil {
			continue
		}
		if labelled[v] {
			for y := 0; y < Y; y++ {
				d := X[v][y] - xref[v][y]
				c += d * d
			}
		}
		if v < len(neigh) {
			for _, e := range neigh[v] {
				if X[e.To] == nil {
					continue
				}
				var s float64
				for y := 0; y < Y; y++ {
					d := X[v][y] - X[e.To][y]
					s += d * d
				}
				c += cfg.Mu * e.Weight * s
			}
		}
		for y := 0; y < Y; y++ {
			d := X[v][y] - uniform
			c += cfg.Nu * d * d
		}
	}
	return c
}

// lossFlat is Loss over the flat belief matrix and a CSR adjacency. The
// accumulation order matches Loss term for term (sequential over vertices,
// labelled → edges → uniform within each vertex), so losses reported by
// RunFlat are bit-identical to the slice-of-rows implementation.
//
//graphner:noalloc
//graphner:nonblocking
func lossFlat(adj adjacency, X []float64, xref [][]float64, labelled []bool, n int, mu, nu float64) float64 {
	const Y = corpus.NumTags
	if Y == 3 {
		// Same compile-time dispatch as updateRow: the unrolled kernel
		// is only selected while the tag alphabet stays three-wide.
		return lossFlat3(adj, X, xref, labelled, n, mu, nu)
	}
	uniform := 1.0 / Y
	var c float64
	for v := 0; v < n; v++ {
		row := v * Y
		if labelled[v] {
			for y := 0; y < Y; y++ {
				d := X[row+y] - xref[v][y]
				c += d * d
			}
		}
		for e, end := adj.off[v], adj.off[v+1]; e < end; e++ {
			other := int(adj.to[e]) * Y
			var s float64
			for y := 0; y < Y; y++ {
				d := X[row+y] - X[other+y]
				s += d * d
			}
			c += mu * adj.w[e] * s
		}
		for y := 0; y < Y; y++ {
			d := X[row+y] - uniform
			c += nu * d * d
		}
	}
	return c
}

// lossFlat3 is lossFlat unrolled for the three-tag alphabet, with the
// same bit-identity contract as updateRow3: the global accumulator c and
// each per-edge partial sum s receive the same floating-point operations
// in the same order as the generic loops (s starts from d0·d0 rather
// than 0+d0·d0 — identical bits, squares are never negative zero).
//
//graphner:noalloc
//graphner:nonblocking
func lossFlat3(adj adjacency, X []float64, xref [][]float64, labelled []bool, n int, mu, nu float64) float64 {
	const uniform = 1.0 / 3
	var c float64
	for v := 0; v < n; v++ {
		row := v * 3
		x := X[row : row+3 : row+3]
		if labelled[v] {
			xr := xref[v]
			d := x[0] - xr[0]
			c += d * d
			d = x[1] - xr[1]
			c += d * d
			d = x[2] - xr[2]
			c += d * d
		}
		to, wt := adj.to, adj.w
		for e, end := adj.off[v], adj.off[v+1]; e < end; e++ {
			o := int(to[e]) * 3
			xo := X[o : o+3 : o+3]
			d0 := x[0] - xo[0]
			d1 := x[1] - xo[1]
			d2 := x[2] - xo[2]
			s := d0 * d0
			s += d1 * d1
			s += d2 * d2
			c += mu * wt[e] * s
		}
		d := x[0] - uniform
		c += nu * d * d
		d = x[1] - uniform
		c += nu * d * d
		d = x[2] - uniform
		c += nu * d * d
	}
	return c
}

// symmetrized returns neighbour lists over the union of in- and out-edges.
// When both directions exist between two vertices the weights are averaged.
func symmetrized(g *graph.Graph) [][]graph.Edge {
	n := g.NumVertices()
	type key struct{ a, b int32 }
	seen := make(map[key]float64)
	for v, es := range g.Neighbors {
		for _, e := range es {
			k := key{int32(v), e.To}
			rk := key{e.To, int32(v)}
			if w, ok := seen[rk]; ok {
				seen[rk] = (w + e.Weight) / 2
				continue
			}
			seen[k] = e.Weight
		}
	}
	out := make([][]graph.Edge, n)
	for k, w := range seen {
		out[k.a] = append(out[k.a], graph.Edge{To: k.b, Weight: w})
		out[k.b] = append(out[k.b], graph.Edge{To: k.a, Weight: w})
	}
	// Map iteration is randomized; sort for deterministic float summation.
	for v := range out {
		es := out[v]
		sort.Slice(es, func(i, j int) bool { return es[i].To < es[j].To })
	}
	return out
}
