// Package propagate implements GraphNER's iterative graph propagation
// (Equation 2 of the paper): label distributions attached to 3-gram
// vertices are pushed toward (a) their reference distributions when the
// vertex occurs in labelled data, (b) the distributions of their graph
// neighbours weighted by edge similarity (coefficient μ), and (c) the
// uniform distribution (coefficient ν), by iterating the closed-form
// coordinate update that zeroes the gradient of the loss in Equation 1.
package propagate

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/corpus"
	"repro/internal/graph"
)

// Config carries the propagation hyper-parameters of the paper's Table IV.
type Config struct {
	// Mu weights the neighbour-smoothness term (paper: 1e-6).
	Mu float64
	// Nu weights the uniform-prior term (paper: 1e-6 or 1e-4).
	Nu float64
	// Iterations is the fixed number of sweeps (paper: 2 or 3).
	Iterations int
	// Symmetrize, when true, propagates over the union of in- and
	// out-edges rather than the directed out-neighbour lists. The paper
	// uses the directed k-NN graph; symmetrization is provided for
	// ablation.
	Symmetrize bool
	// Workers bounds parallelism (default GOMAXPROCS).
	Workers int
}

// Result reports what propagation did.
type Result struct {
	// Loss holds the Equation-1 objective before the first sweep and
	// after every sweep (length Iterations+1).
	Loss []float64
	// MaxDelta is the largest per-entry change of the final sweep.
	MaxDelta float64
}

// Run performs propagation in place on X. X[v] is the current label
// distribution of vertex v (length corpus.NumTags); xref[v] is its
// reference distribution, consulted only where labelled[v] is true. All
// three slices must be indexed like g.Vertices. Vertices whose X row is
// nil are treated as uniform and materialized.
//
// Each sweep is a Jacobi update: every vertex's new distribution is
// computed from the previous sweep's values, which makes the result
// deterministic and the sweep parallelizable.
func Run(g *graph.Graph, X, xref [][]float64, labelled []bool, cfg Config) (Result, error) {
	n := g.NumVertices()
	if len(X) != n || len(xref) != n || len(labelled) != n {
		return Result{}, fmt.Errorf("propagate: slice lengths (%d,%d,%d) != vertex count %d",
			len(X), len(xref), len(labelled), n)
	}
	if cfg.Iterations < 0 {
		return Result{}, fmt.Errorf("propagate: negative iterations")
	}
	if cfg.Mu < 0 || cfg.Nu < 0 {
		return Result{}, fmt.Errorf("propagate: negative hyper-parameter (mu=%g nu=%g)", cfg.Mu, cfg.Nu)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	const Y = corpus.NumTags
	uniform := 1.0 / Y

	for v := range X {
		if X[v] == nil {
			X[v] = []float64{uniform, uniform, uniform}
		}
	}

	neigh := g.Neighbors
	if cfg.Symmetrize {
		neigh = symmetrized(g)
	}

	res := Result{Loss: make([]float64, 0, cfg.Iterations+1)}
	res.Loss = append(res.Loss, Loss(g, X, xref, labelled, cfg))

	cur := X
	next := make([][]float64, n)
	flat := make([]float64, n*Y)
	for v := range next {
		next[v] = flat[v*Y : (v+1)*Y]
	}

	for it := 0; it < cfg.Iterations; it++ {
		var wg sync.WaitGroup
		deltas := make([]float64, cfg.Workers)
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var maxDelta float64
				for v := w; v < n; v += cfg.Workers {
					kappa := cfg.Nu
					if labelled[v] {
						kappa++
					}
					var gamma [Y]float64
					for y := 0; y < Y; y++ {
						gamma[y] = cfg.Nu * uniform
						if labelled[v] {
							gamma[y] += xref[v][y]
						}
					}
					for _, e := range neigh[v] {
						kappa += cfg.Mu * e.Weight
						xe := cur[e.To]
						for y := 0; y < Y; y++ {
							gamma[y] += cfg.Mu * e.Weight * xe[y]
						}
					}
					if kappa == 0 {
						// Isolated unlabelled vertex with ν=0: keep as is.
						copy(next[v], cur[v])
						continue
					}
					for y := 0; y < Y; y++ {
						nv := gamma[y] / kappa
						if d := math.Abs(nv - cur[v][y]); d > maxDelta {
							maxDelta = d
						}
						next[v][y] = nv
					}
				}
				deltas[w] = maxDelta
			}(w)
		}
		wg.Wait()
		res.MaxDelta = 0
		for _, d := range deltas {
			if d > res.MaxDelta {
				res.MaxDelta = d
			}
		}
		// Swap buffers; copy next into X's rows on the final sweep so the
		// caller's backing storage is updated.
		for v := range cur {
			copy(cur[v], next[v])
		}
		res.Loss = append(res.Loss, Loss(g, X, xref, labelled, cfg))
	}
	return res, nil
}

// Loss evaluates the Equation-1 objective:
//
//	C(X) = Σ_{u∈V_l} ‖X(u)−X_ref(u)‖² + μ Σ_u Σ_{k∈N(u)} w_{u,k}‖X(u)−X(k)‖²
//	       + ν Σ_u ‖X(u)−U‖²
func Loss(g *graph.Graph, X, xref [][]float64, labelled []bool, cfg Config) float64 {
	const Y = corpus.NumTags
	uniform := 1.0 / Y
	var c float64
	neigh := g.Neighbors
	if cfg.Symmetrize {
		neigh = symmetrized(g)
	}
	for v := range X {
		if X[v] == nil {
			continue
		}
		if labelled[v] {
			for y := 0; y < Y; y++ {
				d := X[v][y] - xref[v][y]
				c += d * d
			}
		}
		for _, e := range neigh[v] {
			if X[e.To] == nil {
				continue
			}
			var s float64
			for y := 0; y < Y; y++ {
				d := X[v][y] - X[e.To][y]
				s += d * d
			}
			c += cfg.Mu * e.Weight * s
		}
		for y := 0; y < Y; y++ {
			d := X[v][y] - uniform
			c += cfg.Nu * d * d
		}
	}
	return c
}

// symmetrized returns neighbour lists over the union of in- and out-edges.
// When both directions exist between two vertices the weights are averaged.
func symmetrized(g *graph.Graph) [][]graph.Edge {
	n := g.NumVertices()
	type key struct{ a, b int32 }
	seen := make(map[key]float64)
	for v, es := range g.Neighbors {
		for _, e := range es {
			k := key{int32(v), e.To}
			rk := key{e.To, int32(v)}
			if w, ok := seen[rk]; ok {
				seen[rk] = (w + e.Weight) / 2
				continue
			}
			seen[k] = e.Weight
		}
	}
	out := make([][]graph.Edge, n)
	for k, w := range seen {
		out[k.a] = append(out[k.a], graph.Edge{To: k.b, Weight: w})
		out[k.b] = append(out[k.b], graph.Edge{To: k.a, Weight: w})
	}
	// Map iteration is randomized; sort for deterministic float summation.
	for v := range out {
		es := out[v]
		sort.Slice(es, func(i, j int) bool { return es[i].To < es[j].To })
	}
	return out
}
