package sigf

import (
	"math/rand"
	"testing"

	"repro/internal/eval"
)

func TestIdenticalSystemsNotSignificant(t *testing.T) {
	a := make([]eval.Counts, 50)
	for i := range a {
		a[i] = eval.Counts{TP: 2, FP: 1, FN: 1}
	}
	b := append([]eval.Counts(nil), a...)
	r, err := Test(a, b, FScore, Options{Repetitions: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Observed != 0 {
		t.Errorf("observed difference %g for identical systems", r.Observed)
	}
	if r.PValue < 0.99 {
		t.Errorf("p = %g, want ~1 for identical systems", r.PValue)
	}
}

func TestClearlyBetterSystemIsSignificant(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 300
	a := make([]eval.Counts, n)
	b := make([]eval.Counts, n)
	for i := range a {
		// System A is right on ~95% of sentences, B on ~70%.
		if rng.Float64() < 0.95 {
			a[i] = eval.Counts{TP: 1}
		} else {
			a[i] = eval.Counts{FP: 1, FN: 1}
		}
		if rng.Float64() < 0.70 {
			b[i] = eval.Counts{TP: 1}
		} else {
			b[i] = eval.Counts{FP: 1, FN: 1}
		}
	}
	r, err := Test(a, b, FScore, Options{Repetitions: 2000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.PValue > 0.01 {
		t.Errorf("p = %g, want < 0.01 for a clearly better system", r.PValue)
	}
	if r.Observed <= 0 {
		t.Error("no observed difference")
	}
}

func TestNearIdenticalSystemsNotSignificant(t *testing.T) {
	// Two systems differing on a single sentence out of many: the
	// difference should not be significant.
	n := 200
	a := make([]eval.Counts, n)
	b := make([]eval.Counts, n)
	for i := range a {
		a[i] = eval.Counts{TP: 1}
		b[i] = eval.Counts{TP: 1}
	}
	b[0] = eval.Counts{FP: 1, FN: 1}
	r, err := Test(a, b, FScore, Options{Repetitions: 2000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.PValue < 0.05 {
		t.Errorf("p = %g, want not significant for a one-sentence difference", r.PValue)
	}
}

func TestPValueBounds(t *testing.T) {
	// Property: p is always within (0, 1].
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(50)
		a := make([]eval.Counts, n)
		b := make([]eval.Counts, n)
		for i := range a {
			a[i] = eval.Counts{TP: rng.Intn(3), FP: rng.Intn(2), FN: rng.Intn(2)}
			b[i] = eval.Counts{TP: rng.Intn(3), FP: rng.Intn(2), FN: rng.Intn(2)}
		}
		for _, m := range []Metric{FScore, Precision, Recall} {
			r, err := Test(a, b, m, Options{Repetitions: 200, Seed: int64(trial)})
			if err != nil {
				t.Fatal(err)
			}
			if r.PValue <= 0 || r.PValue > 1 {
				t.Fatalf("p = %g out of bounds", r.PValue)
			}
		}
	}
}

func TestMetricSelection(t *testing.T) {
	c := eval.Counts{TP: 6, FP: 2, FN: 6}
	if v := Precision.value(c); v != 0.75 {
		t.Errorf("precision = %g", v)
	}
	if v := Recall.value(c); v != 0.5 {
		t.Errorf("recall = %g", v)
	}
	if v := FScore.value(c); v != 0.6 {
		t.Errorf("f = %g", v)
	}
	if FScore.String() != "F-score" || Precision.String() != "Precision" || Recall.String() != "Recall" {
		t.Error("metric names")
	}
}

func TestErrors(t *testing.T) {
	if _, err := Test(nil, nil, FScore, Options{}); err == nil {
		t.Error("want error for empty input")
	}
	if _, err := Test(make([]eval.Counts, 2), make([]eval.Counts, 3), FScore, Options{}); err == nil {
		t.Error("want error for mismatched lengths")
	}
}

func TestFromResults(t *testing.T) {
	r := &eval.Result{PerSentence: []eval.SentenceResult{
		{ID: "a", Counts: eval.Counts{TP: 1}},
		{ID: "b", Counts: eval.Counts{FP: 2}},
	}}
	cs := FromResults(r)
	if len(cs) != 2 || cs[0].TP != 1 || cs[1].FP != 2 {
		t.Errorf("FromResults = %+v", cs)
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 50
	a := make([]eval.Counts, n)
	b := make([]eval.Counts, n)
	for i := range a {
		a[i] = eval.Counts{TP: rng.Intn(3), FP: rng.Intn(2)}
		b[i] = eval.Counts{TP: rng.Intn(3), FN: rng.Intn(2)}
	}
	r1, _ := Test(a, b, FScore, Options{Repetitions: 300, Seed: 7})
	r2, _ := Test(a, b, FScore, Options{Repetitions: 300, Seed: 7})
	if r1.PValue != r2.PValue {
		t.Error("same seed produced different p-values")
	}
}
