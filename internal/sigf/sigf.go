// Package sigf reimplements the approximate randomization significance
// test of Yeh (2000), popularized by Padó's sigf tool, which the GraphNER
// paper uses for Table V. Two systems' per-sentence outcomes are repeatedly
// and randomly swapped between two pseudo-systems; the p-value is the
// fraction of shuffles whose metric difference is at least as large as the
// observed one. The test is assumption-free: it never models the metric's
// distribution.
package sigf

import (
	"fmt"
	"math/rand"

	"repro/internal/eval"
)

// Metric selects which score the test compares.
type Metric int

// The three metrics of the paper's Table V.
const (
	FScore Metric = iota
	Precision
	Recall
)

func (m Metric) String() string {
	switch m {
	case Precision:
		return "Precision"
	case Recall:
		return "Recall"
	}
	return "F-score"
}

func (m Metric) value(c eval.Counts) float64 {
	mt := c.Metrics()
	switch m {
	case Precision:
		return mt.Precision
	case Recall:
		return mt.Recall
	}
	return mt.F1
}

// Options configures the test.
type Options struct {
	// Repetitions (paper: 10 000).
	Repetitions int
	// Seed for the shuffling RNG.
	Seed int64
}

// TestResult reports one significance test.
type TestResult struct {
	Metric      Metric
	Observed    float64 // |metric(A) − metric(B)|
	PValue      float64
	Repetitions int
}

// Test runs the approximate randomization test on two systems'
// per-sentence counts (parallel slices: entry i of each is the same
// sentence). It returns the two-sided p-value for the null hypothesis that
// the systems have the same value of the metric.
func Test(a, b []eval.Counts, metric Metric, opts Options) (TestResult, error) {
	if len(a) != len(b) {
		return TestResult{}, fmt.Errorf("sigf: mismatched lengths %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return TestResult{}, fmt.Errorf("sigf: no sentences")
	}
	reps := opts.Repetitions
	if reps <= 0 {
		reps = 10000
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	totalA, totalB := total(a), total(b)
	observed := abs(metric.value(totalA) - metric.value(totalB))

	// Only sentences where the two systems differ matter; identical
	// sentences contribute the same counts to both sides regardless of
	// assignment. Separating them makes each shuffle O(#differing).
	var diffIdx []int
	baseA, baseB := eval.Counts{}, eval.Counts{}
	for i := range a {
		if a[i] == b[i] {
			baseA.Add(a[i])
			baseB.Add(b[i])
		} else {
			diffIdx = append(diffIdx, i)
		}
	}

	atLeast := 0
	for r := 0; r < reps; r++ {
		ca, cb := baseA, baseB
		for _, i := range diffIdx {
			if rng.Intn(2) == 0 {
				ca.Add(a[i])
				cb.Add(b[i])
			} else {
				ca.Add(b[i])
				cb.Add(a[i])
			}
		}
		if abs(metric.value(ca)-metric.value(cb)) >= observed-1e-15 {
			atLeast++
		}
	}
	// The +1 smoothing of Yeh (2000): the identity shuffle always
	// reproduces the observed difference.
	p := float64(atLeast+1) / float64(reps+1)
	return TestResult{Metric: metric, Observed: observed, PValue: p, Repetitions: reps}, nil
}

// FromResults extracts the per-sentence counts of an evaluation for use
// with Test.
func FromResults(r *eval.Result) []eval.Counts {
	out := make([]eval.Counts, len(r.PerSentence))
	for i, sr := range r.PerSentence {
		out[i] = sr.Counts
	}
	return out
}

func total(cs []eval.Counts) eval.Counts {
	var t eval.Counts
	for _, c := range cs {
		t.Add(c)
	}
	return t
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
