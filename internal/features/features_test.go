package features

import (
	"strings"
	"testing"
	"testing/quick"
)

func contains(feats []string, f string) bool {
	for _, x := range feats {
		if x == f {
			return true
		}
	}
	return false
}

func TestPositionBasics(t *testing.T) {
	e := NewExtractor(nil)
	words := []string{"the", "LNK", "gene"}
	feats := e.Position(words, 1)
	for _, want := range []string{
		"w=lnk", "lemma=lnk", "shape=AAA", "brief=A",
		"pre2=ln", "suf2=nk", "pre3=lnk", "suf3=lnk",
		"ALLCAPS",
		"w-1=the", "w+1=gene",
		"bg-1=the_lnk", "bg+1=lnk_gene",
	} {
		if !contains(feats, want) {
			t.Errorf("missing feature %q in %v", want, feats)
		}
	}
}

func TestWindowBoundaries(t *testing.T) {
	e := NewExtractor(nil)
	feats := e.Position([]string{"only"}, 0)
	if !contains(feats, "w-1=<s>") || !contains(feats, "w+1=</s>") {
		t.Errorf("boundary window features missing: %v", feats)
	}
	if !contains(feats, "w-2=<s>") || !contains(feats, "w+2=</s>") {
		t.Errorf("boundary window features missing at distance 2: %v", feats)
	}
}

func TestOrthoPredicates(t *testing.T) {
	cases := []struct {
		word string
		want []string
		not  []string
	}{
		{"LNK", []string{"ALLCAPS"}, []string{"NUMBER", "MIXEDCASE"}},
		{"p53", []string{"HASDIGIT"}, []string{"NUMBER", "ALLCAPS"}},
		{"42", []string{"NUMBER"}, []string{"HASDIGIT"}},
		{"Abl", []string{"MIXEDCASE"}, []string{"ALLCAPS"}},
		{"SH2", []string{"ALPHANUMERIC", "HASDIGIT"}, nil},
		{"-", []string{"PUNCT", "punct=-"}, nil},
		{"alpha", []string{"GREEK"}, nil},
		{"II", []string{"ROMAN", "ALLCAPS"}, nil},
		{"X", []string{"SINGLEUPPER", "ROMAN"}, []string{"ALLCAPS"}},
	}
	for _, c := range cases {
		got := appendOrthoPredicates(nil, c.word)
		for _, w := range c.want {
			if !contains(got, w) {
				t.Errorf("%q: missing %q in %v", c.word, w, got)
			}
		}
		for _, n := range c.not {
			if contains(got, n) {
				t.Errorf("%q: unwanted %q in %v", c.word, n, got)
			}
		}
	}
}

func TestCharNGrams(t *testing.T) {
	e := &Extractor{CharNGrams: true, WindowSize: 1}
	feats := e.Position([]string{"abc"}, 0)
	for _, want := range []string{"cg2=ab", "cg2=bc", "cg3=abc"} {
		if !contains(feats, want) {
			t.Errorf("missing %q", want)
		}
	}
	e2 := &Extractor{CharNGrams: false, WindowSize: 1}
	feats2 := e2.Position([]string{"abc"}, 0)
	if contains(feats2, "cg2=ab") {
		t.Error("char n-grams present despite being disabled")
	}
}

type fakeClasser struct{}

func (fakeClasser) Classes(word string) []string {
	if word == "LNK" {
		return []string{"brown4=0110", "w2v=17"}
	}
	return nil
}

func TestWordClasser(t *testing.T) {
	e := NewExtractor(fakeClasser{})
	words := []string{"the", "LNK", "gene"}
	feats := e.Position(words, 1)
	if !contains(feats, "brown4=0110") || !contains(feats, "w2v=17") {
		t.Errorf("classer features missing: %v", feats)
	}
	// Neighbour classes carry positional suffixes.
	feats0 := e.Position(words, 0)
	if !contains(feats0, "brown4=0110@+1") {
		t.Errorf("neighbour classer feature missing: %v", feats0)
	}
	feats2 := e.Position(words, 2)
	if !contains(feats2, "w2v=17@-1") {
		t.Errorf("neighbour classer feature missing: %v", feats2)
	}
}

func TestLexiconClasser(t *testing.T) {
	l := NewLexiconClasser([]string{"FLT3", "lymphocyte adaptor protein"})
	cases := []struct {
		word string
		want []string
	}{
		{"FLT3", []string{"LEX", "LEXFULL"}},
		{"flt3", []string{"LEX", "LEXFULL"}},
		{"adaptor", []string{"LEX"}},
		{"Lymphocyte", []string{"LEX"}},
		{"unrelated", nil},
	}
	for _, c := range cases {
		got := l.Classes(c.word)
		if len(got) != len(c.want) {
			t.Errorf("Classes(%q) = %v, want %v", c.word, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Classes(%q)[%d] = %q, want %q", c.word, i, got[i], c.want[i])
			}
		}
	}
}

func TestMultiClasser(t *testing.T) {
	a := NewLexiconClasser([]string{"FLT3"})
	m := MultiClasser{a, fakeClasser{}}
	got := m.Classes("LNK")
	if len(got) != 2 || got[0] != "brown4=0110" {
		t.Errorf("MultiClasser.Classes = %v", got)
	}
	if m.Classes("nothing") != nil {
		t.Error("want nil for unknown word")
	}
	got = m.Classes("FLT3")
	if len(got) != 2 || got[0] != "LEX" {
		t.Errorf("MultiClasser.Classes(FLT3) = %v", got)
	}
}

func TestSentence(t *testing.T) {
	e := NewExtractor(nil)
	words := []string{"a", "b", "c"}
	all := e.Sentence(words)
	if len(all) != 3 {
		t.Fatalf("got %d positions", len(all))
	}
	for i := range all {
		if len(all[i]) == 0 {
			t.Errorf("position %d has no features", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	e := NewExtractor(nil)
	words := strings.Fields("mutation of the FLT3 gene in AML patients")
	a := e.Position(words, 3)
	b := e.Position(words, 3)
	if len(a) != len(b) {
		t.Fatal("nondeterministic feature count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic feature order at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestAlphabet(t *testing.T) {
	a := NewAlphabet()
	x := a.Lookup("x")
	y := a.Lookup("y")
	if x == y {
		t.Error("distinct strings share an id")
	}
	if a.Lookup("x") != x {
		t.Error("lookup not stable")
	}
	if a.Len() != 2 {
		t.Errorf("Len = %d", a.Len())
	}
	if a.Name(x) != "x" || a.Name(y) != "y" {
		t.Error("Name mismatch")
	}
	a.Freeze()
	if !a.Frozen() {
		t.Error("not frozen")
	}
	if got := a.Lookup("z"); got != -1 {
		t.Errorf("frozen lookup of unknown = %d, want -1", got)
	}
	if a.Lookup("x") != x {
		t.Error("frozen lookup of known string broken")
	}
	if a.Len() != 2 {
		t.Error("frozen alphabet grew")
	}
}

func TestAlphabetPropertyDenseIDs(t *testing.T) {
	// IDs are assigned densely 0..n-1 in first-seen order.
	f := func(keys []string) bool {
		a := NewAlphabet()
		for _, k := range keys {
			id := a.Lookup(k)
			if id < 0 || id >= a.Len() {
				return false
			}
			if a.Name(id) != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkPosition(b *testing.B) {
	e := NewExtractor(nil)
	words := strings.Fields("Recently the mutation of lymphocyte adaptor protein LNK was detected in MPN")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Position(words, 5)
	}
}

func TestAppendPositionMatchesPosition(t *testing.T) {
	e := NewExtractor(fakeClasser{})
	words := strings.Fields("Recently the mutation of LNK was detected in MPN patients")
	for i := range words {
		want := e.Position(words, i)
		// Appending onto a non-empty buffer must leave the prefix intact
		// and append exactly Position's features, in order.
		dst := []string{"sentinel-a", "sentinel-b"}
		got := e.AppendPosition(dst, words, i)
		if got[0] != "sentinel-a" || got[1] != "sentinel-b" {
			t.Fatalf("position %d: prefix clobbered: %v", i, got[:2])
		}
		tail := got[2:]
		if len(tail) != len(want) {
			t.Fatalf("position %d: appended %d features, Position yields %d", i, len(tail), len(want))
		}
		for j := range want {
			if tail[j] != want[j] {
				t.Fatalf("position %d feature %d: %q vs Position's %q", i, j, tail[j], want[j])
			}
		}
		// Reusing the same buffer (the compile loop's pattern) is stable.
		reused := e.AppendPosition(got[:0], words, i)
		if len(reused) != len(want) {
			t.Fatalf("position %d: reused buffer yields %d features, want %d", i, len(reused), len(want))
		}
		for j := range want {
			if reused[j] != want[j] {
				t.Fatalf("position %d reused feature %d: %q vs %q", i, j, reused[j], want[j])
			}
		}
	}
}
