// Package features implements BANNER-style feature extraction for
// biomedical named entity recognition. Each token position in a sentence is
// mapped to a set of string feature instances (orthographic, lexical,
// character-level, and windowed context features). The same feature
// instances serve two purposes in GraphNER:
//
//   - conjoined with BIO tags they become the binary indicator features of
//     the linear-chain CRF (the BANNER base model);
//   - aggregated per 3-gram they become the PMI vector components from
//     which the similarity graph is built ("All-features" mode in the
//     paper's Table III).
//
// Distributional features in the style of BANNER-ChemDNER — Brown cluster
// bit-path prefixes and word-embedding cluster identities — are plugged in
// through the WordClasser interface, keeping this package independent of
// the packages that learn them.
package features

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/tokenize"
)

// WordClasser supplies distributional word classes learned from unlabelled
// text: Brown cluster paths and/or embedding cluster IDs. Implementations
// must be safe for concurrent use after construction.
type WordClasser interface {
	// Classes returns feature strings for the word, e.g.
	// ["brown4=0110", "brown6=011010", "w2v=17"]. It returns nil for
	// unknown words.
	Classes(word string) []string
}

// MultiClasser combines several WordClassers; the feature lists are
// concatenated. It is how the BANNER-ChemDNER configuration stacks Brown
// cluster paths and word2vec cluster identities.
type MultiClasser []WordClasser

// Classes implements WordClasser.
func (m MultiClasser) Classes(word string) []string {
	var out []string
	for _, c := range m {
		out = append(out, c.Classes(word)...)
	}
	return out
}

// LexiconClasser emits dictionary-membership features, the gene-lexicon
// features BANNER optionally uses: a word contained in any known entity
// surface yields "LEX" plus "LEXFULL" when the word alone is a complete
// entry. Matching is case-insensitive.
type LexiconClasser struct {
	full  map[string]bool
	parts map[string]bool
}

// NewLexiconClasser builds a classer from entity surface forms
// (multi-word surfaces contribute their individual words to partial
// matching).
func NewLexiconClasser(surfaces []string) *LexiconClasser {
	l := &LexiconClasser{full: make(map[string]bool), parts: make(map[string]bool)}
	for _, s := range surfaces {
		low := strings.ToLower(s)
		l.full[low] = true
		for _, w := range strings.Fields(low) {
			l.parts[w] = true
		}
	}
	return l
}

// Classes implements WordClasser.
func (l *LexiconClasser) Classes(word string) []string {
	low := strings.ToLower(word)
	switch {
	case l.full[low]:
		return []string{"LEX", "LEXFULL"}
	case l.parts[low]:
		return []string{"LEX"}
	}
	return nil
}

// Extractor generates feature instances for sentence positions.
// The zero value is a plain BANNER-style extractor; attach a WordClasser
// for BANNER-ChemDNER-style distributional features.
type Extractor struct {
	// Classer, if non-nil, contributes distributional features.
	Classer WordClasser
	// WindowSize is the half-width of the context window (default 2).
	WindowSize int
	// CharNGrams enables character 2- and 3-gram features.
	CharNGrams bool
}

// NewExtractor returns the configuration used for the experiments: window
// of 2, char n-grams on.
func NewExtractor(classer WordClasser) *Extractor {
	return &Extractor{Classer: classer, WindowSize: 2, CharNGrams: true}
}

// offsetLabels caches the "%+d" renderings of small window offsets so the
// window features below are built by string concatenation (one allocation
// per feature) instead of fmt.Sprintf.
var offsetLabels = [...]string{"-8", "-7", "-6", "-5", "-4", "-3", "-2", "-1", "+0", "+1", "+2", "+3", "+4", "+5", "+6", "+7", "+8"}

// offsetLabel renders a relative window offset as in fmt.Sprintf("%+d", d).
func offsetLabel(d int) string {
	if d >= -8 && d <= 8 {
		return offsetLabels[d+8]
	}
	return fmt.Sprintf("%+d", d)
}

// Position computes the feature instances for token index i of words.
// The returned strings are unique per instance kind (prefixed) and stable
// across calls.
func (e *Extractor) Position(words []string, i int) []string {
	return e.AppendPosition(make([]string, 0, 48), words, i)
}

// AppendPosition appends the feature instances for token index i of words
// to dst and returns the extended slice — the allocation-aware variant of
// Position for callers that extract features in a loop and can reuse one
// buffer (compilation, graph construction). The appended strings are
// identical, in content and order, to Position's.
func (e *Extractor) AppendPosition(dst []string, words []string, i int) []string {
	w := words[i]
	window := e.WindowSize
	if window == 0 {
		window = 2
	}
	feats := dst
	add := func(f string) { feats = append(feats, f) }

	lower := strings.ToLower(w)
	add("w=" + lower)
	add("lemma=" + tokenize.Lemma(w))
	add("shape=" + tokenize.Shape(w))
	add("brief=" + tokenize.BriefShape(w))

	// Prefixes and suffixes (2..4 characters).
	r := []rune(lower)
	for n := 2; n <= 4 && n <= len(r); n++ {
		add("pre" + strconv.Itoa(n) + "=" + string(r[:n]))
		add("suf" + strconv.Itoa(n) + "=" + string(r[len(r)-n:]))
	}

	// Orthographic predicates.
	feats = appendOrthoPredicates(feats, w)

	// Character n-grams (2 and 3) over the lowercased word.
	if e.CharNGrams {
		for n := 2; n <= 3; n++ {
			for j := 0; j+n <= len(r); j++ {
				add("cg" + strconv.Itoa(n) + "=" + string(r[j:j+n]))
			}
		}
	}

	// Window features: surrounding words and lemmas with relative offsets.
	for d := -window; d <= window; d++ {
		if d == 0 {
			continue
		}
		j := i + d
		var wj string
		if j < 0 {
			wj = "<s>"
		} else if j >= len(words) {
			wj = "</s>"
		} else {
			wj = strings.ToLower(words[j])
		}
		off := offsetLabel(d)
		add("w" + off + "=" + wj)
		if j >= 0 && j < len(words) {
			add("lem" + off + "=" + tokenize.Lemma(words[j]))
			add("shape" + off + "=" + tokenize.BriefShape(words[j]))
		}
	}

	// Adjacent-word bigrams.
	if i > 0 {
		add("bg-1=" + strings.ToLower(words[i-1]) + "_" + lower)
	}
	if i+1 < len(words) {
		add("bg+1=" + lower + "_" + strings.ToLower(words[i+1]))
	}

	// Distributional word classes for the token and its neighbours.
	if e.Classer != nil {
		for _, c := range e.Classer.Classes(w) {
			add(c)
		}
		if i > 0 {
			for _, c := range e.Classer.Classes(words[i-1]) {
				add(c + "@-1")
			}
		}
		if i+1 < len(words) {
			for _, c := range e.Classer.Classes(words[i+1]) {
				add(c + "@+1")
			}
		}
	}
	return feats
}

// Sentence computes Position for every index, reusing tokenization work.
func (e *Extractor) Sentence(words []string) [][]string {
	out := make([][]string, len(words))
	for i := range words {
		out[i] = e.Position(words, i)
	}
	return out
}

// appendOrthoPredicates appends the boolean orthographic features that
// hold for w.
func appendOrthoPredicates(out []string, w string) []string {
	var (
		hasUpper, hasLower, hasDigit, hasPunct, hasGreek bool
		allUpper, allDigit                               = true, true
	)
	for _, r := range w {
		switch {
		case unicode.IsUpper(r):
			hasUpper = true
			allDigit = false
		case unicode.IsLower(r):
			hasLower = true
			allUpper, allDigit = false, false
		case unicode.IsDigit(r):
			hasDigit = true
			allUpper = false
		default:
			hasPunct = true
			allUpper, allDigit = false, false
		}
	}
	if isGreekName(w) {
		hasGreek = true
	}
	if hasUpper && allUpper && len(w) > 1 {
		out = append(out, "ALLCAPS")
	}
	if hasUpper && hasLower {
		out = append(out, "MIXEDCASE")
	}
	if hasUpper && hasDigit {
		out = append(out, "ALPHANUMERIC")
	}
	if allDigit && len(w) > 0 {
		out = append(out, "NUMBER")
	}
	if hasDigit && !allDigit {
		out = append(out, "HASDIGIT")
	}
	if hasPunct && len(w) == 1 {
		out = append(out, "PUNCT", "punct="+w)
	}
	if hasGreek {
		out = append(out, "GREEK")
	}
	if len([]rune(w)) == 1 && hasUpper {
		out = append(out, "SINGLEUPPER")
	}
	if romanNumeral(w) {
		out = append(out, "ROMAN")
	}
	return out
}

var greekNames = map[string]bool{
	"alpha": true, "beta": true, "gamma": true, "delta": true,
	"epsilon": true, "zeta": true, "eta": true, "theta": true,
	"kappa": true, "lambda": true, "sigma": true, "omega": true,
}

func isGreekName(w string) bool { return greekNames[strings.ToLower(w)] }

func romanNumeral(w string) bool {
	if w == "" {
		return false
	}
	for _, r := range w {
		switch r {
		case 'I', 'V', 'X', 'L', 'C':
		default:
			return false
		}
	}
	return len(w) <= 4
}

// Alphabet interns feature strings to dense integer identifiers. It grows
// while unfrozen; after Freeze, unknown strings map to -1. Alphabet is not
// safe for concurrent mutation; freeze it before sharing across goroutines.
type Alphabet struct {
	index  map[string]int
	names  []string
	frozen bool
}

// NewAlphabet returns an empty, unfrozen alphabet.
func NewAlphabet() *Alphabet {
	return &Alphabet{index: make(map[string]int)}
}

// Lookup returns the id of s, adding it if the alphabet is unfrozen.
// It returns -1 for unknown strings on a frozen alphabet.
func (a *Alphabet) Lookup(s string) int {
	if id, ok := a.index[s]; ok {
		return id
	}
	if a.frozen {
		return -1
	}
	id := len(a.names)
	a.index[s] = id
	a.names = append(a.names, s)
	return id
}

// Name returns the string for id. It panics on out-of-range ids.
func (a *Alphabet) Name(id int) string { return a.names[id] }

// Len returns the number of interned strings.
func (a *Alphabet) Len() int { return len(a.names) }

// Freeze stops the alphabet from growing; subsequent unknown lookups
// return -1. Freezing an already-frozen alphabet is a no-op.
func (a *Alphabet) Freeze() { a.frozen = true }

// Frozen reports whether the alphabet is frozen.
func (a *Alphabet) Frozen() bool { return a.frozen }

// Names returns the interned strings in id order. The returned slice is a
// copy and safe to retain; it is the serialized form of the alphabet.
func (a *Alphabet) Names() []string {
	return append([]string(nil), a.names...)
}

// NewAlphabetFromNames reconstructs a frozen alphabet from a Names()
// snapshot, preserving ids.
func NewAlphabetFromNames(names []string) *Alphabet {
	a := NewAlphabet()
	for _, n := range names {
		a.Lookup(n)
	}
	a.Freeze()
	return a
}
