package eval

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/corpus"
	"repro/internal/tokenize"
)

func sentence(id, text string, tags []corpus.Tag) *corpus.Sentence {
	return &corpus.Sentence{ID: id, Text: text, Tokens: tokenize.Sentence(text), Tags: tags}
}

func TestCountsMetrics(t *testing.T) {
	m := Counts{TP: 8, FP: 2, FN: 2}.Metrics()
	if math.Abs(m.Precision-0.8) > 1e-12 || math.Abs(m.Recall-0.8) > 1e-12 {
		t.Errorf("metrics = %+v", m)
	}
	if math.Abs(m.F1-0.8) > 1e-12 {
		t.Errorf("F1 = %g", m.F1)
	}
	z := Counts{}.Metrics()
	if z.Precision != 0 || z.Recall != 0 || z.F1 != 0 {
		t.Error("zero counts must give zero metrics")
	}
}

func TestFScoreIsHarmonicMean(t *testing.T) {
	f := func(tp, fp, fn uint8) bool {
		c := Counts{TP: int(tp), FP: int(fp), FN: int(fn)}
		m := c.Metrics()
		return ApproxEqual(m.F1, HarmonicMean(m.Precision, m.Recall), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvaluateExactMatch(t *testing.T) {
	gold := corpus.New()
	gold.Sentences = append(gold.Sentences,
		sentence("S1", "the LNK gene", []corpus.Tag{corpus.O, corpus.B, corpus.O}),
	)
	// Perfect prediction.
	preds := []Prediction{{ID: "S1", Mentions: []corpus.Mention{{Start: 3, End: 5, Text: "LNK"}}}}
	r, err := Evaluate(gold, preds)
	if err != nil {
		t.Fatal(err)
	}
	if r.Counts != (Counts{TP: 1}) {
		t.Errorf("counts = %+v", r.Counts)
	}
	// Wrong boundary: FP + FN.
	preds = []Prediction{{ID: "S1", Mentions: []corpus.Mention{{Start: 3, End: 9, Text: "LNKgene"}}}}
	r, err = Evaluate(gold, preds)
	if err != nil {
		t.Fatal(err)
	}
	if r.Counts != (Counts{FP: 1, FN: 1}) {
		t.Errorf("counts = %+v", r.Counts)
	}
	// No prediction: FN only.
	preds = []Prediction{{ID: "S1"}}
	r, err = Evaluate(gold, preds)
	if err != nil {
		t.Fatal(err)
	}
	if r.Counts != (Counts{FN: 1}) {
		t.Errorf("counts = %+v", r.Counts)
	}
}

func TestEvaluateAlternatives(t *testing.T) {
	// Primary is "wilms tumor - 1" (tokens 0-3); alternative drops the
	// first word.
	text := "wilms tumor - 1 positive"
	gold := corpus.New()
	gold.Sentences = append(gold.Sentences,
		sentence("S1", text, []corpus.Tag{corpus.B, corpus.I, corpus.I, corpus.I, corpus.O}),
	)
	prim := gold.Sentences[0].Mentions()[0]
	alt := corpus.Mention{Start: 5, End: prim.End, Text: "tumor - 1"}
	gold.Alternatives["S1"] = []corpus.Mention{alt}

	// Detecting the alternative span counts as a TP and consumes the
	// primary.
	preds := []Prediction{{ID: "S1", Mentions: []corpus.Mention{alt}}}
	r, err := Evaluate(gold, preds)
	if err != nil {
		t.Fatal(err)
	}
	if r.Counts != (Counts{TP: 1}) {
		t.Errorf("counts = %+v", r.Counts)
	}

	// Detecting both primary and its alternative yields one TP, one FP.
	preds = []Prediction{{ID: "S1", Mentions: []corpus.Mention{prim, alt}}}
	r, err = Evaluate(gold, preds)
	if err != nil {
		t.Fatal(err)
	}
	if r.Counts != (Counts{TP: 1, FP: 1}) {
		t.Errorf("counts = %+v", r.Counts)
	}
}

func TestEvaluateDuplicateDetection(t *testing.T) {
	gold := corpus.New()
	gold.Sentences = append(gold.Sentences,
		sentence("S1", "the LNK gene", []corpus.Tag{corpus.O, corpus.B, corpus.O}),
	)
	m := corpus.Mention{Start: 3, End: 5, Text: "LNK"}
	preds := []Prediction{{ID: "S1", Mentions: []corpus.Mention{m, m}}}
	r, err := Evaluate(gold, preds)
	if err != nil {
		t.Fatal(err)
	}
	if r.Counts != (Counts{TP: 1, FP: 1}) {
		t.Errorf("duplicate detection: %+v", r.Counts)
	}
}

func TestEvaluateErrors(t *testing.T) {
	gold := corpus.New()
	gold.Sentences = append(gold.Sentences, sentence("S1", "x", []corpus.Tag{corpus.O}))
	if _, err := Evaluate(gold, nil); err == nil {
		t.Error("want error for prediction count mismatch")
	}
	if _, err := Evaluate(gold, []Prediction{{ID: "WRONG"}}); err == nil {
		t.Error("want error for ID mismatch")
	}
}

func TestPredictionsFromTags(t *testing.T) {
	c := corpus.New()
	c.Sentences = append(c.Sentences, sentence("S1", "the LNK gene", nil))
	preds, err := PredictionsFromTags(c, [][]corpus.Tag{{corpus.O, corpus.B, corpus.O}})
	if err != nil {
		t.Fatal(err)
	}
	if len(preds[0].Mentions) != 1 || preds[0].Mentions[0].Text != "LNK" {
		t.Errorf("preds = %+v", preds)
	}
	if _, err := PredictionsFromTags(c, nil); err == nil {
		t.Error("want error for row count mismatch")
	}
	if _, err := PredictionsFromTags(c, [][]corpus.Tag{{corpus.O}}); err == nil {
		t.Error("want error for tag length mismatch")
	}
}

func TestCategorizer(t *testing.T) {
	cat := NewCategorizer([]string{"FLT3", "lymphocyte adaptor protein", "WT1"})
	cases := []struct {
		text string
		want ErrorCategory
	}{
		{"FLT3", GeneRelated},
		{"flt3", GeneRelated},            // case-insensitive
		{"adaptor protein", GeneRelated}, // words of a known gene name
		{"the lymphocyte", GeneRelated},  // boundary error around a gene
		{"Ann Arbor", Spurious},
		{"MPN", Spurious},
		{"confidence interval", Spurious},
	}
	for _, c := range cases {
		got := cat.Categorize(corpus.Mention{Text: c.text})
		if got != c.want {
			t.Errorf("Categorize(%q) = %v, want %v", c.text, got, c.want)
		}
	}
	g, s := cat.CategoryCounts([]corpus.Mention{{Text: "FLT3"}, {Text: "Ann Arbor"}, {Text: "WT1"}})
	if g != 2 || s != 1 {
		t.Errorf("counts = %d,%d", g, s)
	}
}

func TestUpset(t *testing.T) {
	mk := func(id string, fps ...corpus.Mention) *Result {
		return &Result{PerSentence: []SentenceResult{{ID: id, FalsePositives: fps}}}
	}
	mA := corpus.Mention{Start: 0, End: 3, Text: "FLT3"}
	mB := corpus.Mention{Start: 5, End: 7, Text: "MPN"}
	mC := corpus.Mention{Start: 9, End: 11, Text: "WT1"}
	a := mk("S1", mA, mB)
	b := mk("S1", mB, mC)
	cat := NewCategorizer([]string{"FLT3", "WT1"})
	rows := Upset(a, b, cat)
	if len(rows) != 3 {
		t.Fatalf("rows = %+v", rows)
	}
	var onlyA, onlyB, both UpsetRow
	for _, r := range rows {
		switch {
		case r.InA && r.InB:
			both = r
		case r.InA:
			onlyA = r
		default:
			onlyB = r
		}
	}
	if onlyA.GeneRelated != 1 || onlyA.Spurious != 0 {
		t.Errorf("onlyA = %+v", onlyA)
	}
	if onlyB.GeneRelated != 1 || onlyB.Spurious != 0 {
		t.Errorf("onlyB = %+v", onlyB)
	}
	if both.Spurious != 1 || both.GeneRelated != 0 {
		t.Errorf("both = %+v", both)
	}
	if FormatUpset(rows, "GraphNER", "BANNER") == "" {
		t.Error("empty render")
	}
}

func TestEvaluatePropertyConservation(t *testing.T) {
	// Property: TP+FN equals the number of primary mentions; TP+FP equals
	// the number of detections (each detection is TP or FP exactly once).
	gold := corpus.New()
	gold.Sentences = append(gold.Sentences,
		sentence("S1", "wilms tumor - 1 positive LNK", []corpus.Tag{corpus.B, corpus.I, corpus.I, corpus.I, corpus.O, corpus.B}),
	)
	f := func(spans []uint8) bool {
		var dets []corpus.Mention
		for i := 0; i+1 < len(spans) && i < 10; i += 2 {
			s := int(spans[i]) % 20
			e := s + int(spans[i+1])%5
			dets = append(dets, corpus.Mention{Start: s, End: e})
		}
		r, err := Evaluate(gold, []Prediction{{ID: "S1", Mentions: dets}})
		if err != nil {
			return false
		}
		if r.Counts.TP+r.Counts.FP != len(dets) {
			return false
		}
		return r.Counts.TP+r.Counts.FN == 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
