// Package eval reimplements the scoring rules of the BioCreative II gene
// mention evaluation script, as described in §III of the GraphNER paper:
// detections are compared against primary gene mentions and their
// alternative annotations by exact space-free character offsets; exact
// matches are true positives; false negatives are primary mentions left
// unmatched; false positives are detections that match nothing. Per-sentence
// tallies are retained for the approximate-randomization significance test
// (package sigf), and error lists feed the qualitative false-positive
// analysis of Figures 4 and 5.
package eval

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/corpus"
)

// Metrics is a precision/recall/F-score triple, in [0,1].
type Metrics struct {
	Precision, Recall, F1 float64
}

// String renders the metrics as percentages, paper style.
func (m Metrics) String() string {
	return fmt.Sprintf("P=%.2f%% R=%.2f%% F=%.2f%%", 100*m.Precision, 100*m.Recall, 100*m.F1)
}

// Counts are raw match tallies.
type Counts struct {
	TP, FP, FN int
}

// Add accumulates other into c.
func (c *Counts) Add(other Counts) {
	c.TP += other.TP
	c.FP += other.FP
	c.FN += other.FN
}

// Metrics converts counts to precision/recall/F1. Empty denominators give
// zero (and F1 is zero when P+R is zero).
func (c Counts) Metrics() Metrics {
	var m Metrics
	if d := c.TP + c.FP; d > 0 {
		m.Precision = float64(c.TP) / float64(d)
	}
	if d := c.TP + c.FN; d > 0 {
		m.Recall = float64(c.TP) / float64(d)
	}
	if s := m.Precision + m.Recall; s > 0 {
		m.F1 = 2 * m.Precision * m.Recall / s
	}
	return m
}

// SentenceResult records the outcome on one sentence.
type SentenceResult struct {
	ID     string
	Counts Counts
	// FalsePositives are detected mentions that matched nothing.
	FalsePositives []corpus.Mention
	// FalseNegatives are primary mentions never matched.
	FalseNegatives []corpus.Mention
}

// Result is a full evaluation.
type Result struct {
	Counts      Counts
	PerSentence []SentenceResult
}

// Metrics returns the corpus-level metrics.
func (r *Result) Metrics() Metrics { return r.Counts.Metrics() }

// Prediction carries one system's output for one sentence.
type Prediction struct {
	ID       string
	Mentions []corpus.Mention
}

// Evaluate scores predictions against the gold corpus. Predictions must be
// parallel to gold.Sentences (match by index; IDs are cross-checked).
// Alternative annotations from gold.Alternatives are honoured: a detection
// exactly matching an alternative counts as a true positive and consumes
// the primary mention the alternative overlaps.
func Evaluate(gold *corpus.Corpus, preds []Prediction) (*Result, error) {
	if len(preds) != len(gold.Sentences) {
		return nil, fmt.Errorf("eval: %d predictions for %d sentences", len(preds), len(gold.Sentences))
	}
	res := &Result{PerSentence: make([]SentenceResult, len(preds))}
	for i, s := range gold.Sentences {
		p := preds[i]
		if p.ID != "" && p.ID != s.ID {
			return nil, fmt.Errorf("eval: prediction %d has ID %q, sentence is %q", i, p.ID, s.ID)
		}
		sr := scoreSentence(s, gold.Alternatives[s.ID], p.Mentions)
		res.PerSentence[i] = sr
		res.Counts.Add(sr.Counts)
	}
	return res, nil
}

// spanKey is an exact-offset match key.
type spanKey struct{ start, end int }

func scoreSentence(s *corpus.Sentence, alts []corpus.Mention, detected []corpus.Mention) SentenceResult {
	sr := SentenceResult{ID: s.ID}
	primary := s.Mentions()

	// Index primaries and alternatives.
	primUsed := make([]bool, len(primary))
	primIdx := make(map[spanKey]int, len(primary))
	for i, m := range primary {
		primIdx[spanKey{m.Start, m.End}] = i
	}
	// altOwner maps an alternative span to the overlapping primary (-1 if
	// none overlaps).
	altOwner := make(map[spanKey]int, len(alts))
	for _, a := range alts {
		owner := -1
		for i, m := range primary {
			if a.Start <= m.End && m.Start <= a.End {
				owner = i
				break
			}
		}
		altOwner[spanKey{a.Start, a.End}] = owner
	}

	for _, d := range detected {
		k := spanKey{d.Start, d.End}
		if i, ok := primIdx[k]; ok && !primUsed[i] {
			primUsed[i] = true
			sr.Counts.TP++
			continue
		}
		if owner, ok := altOwner[k]; ok {
			if owner >= 0 && primUsed[owner] {
				// The primary was already credited; an extra detection of
				// its alternative is a false positive.
				sr.Counts.FP++
				sr.FalsePositives = append(sr.FalsePositives, d)
				continue
			}
			if owner >= 0 {
				primUsed[owner] = true
			}
			sr.Counts.TP++
			continue
		}
		sr.Counts.FP++
		sr.FalsePositives = append(sr.FalsePositives, d)
	}
	for i, m := range primary {
		if !primUsed[i] {
			sr.Counts.FN++
			sr.FalseNegatives = append(sr.FalseNegatives, m)
		}
	}
	return sr
}

// PredictionsFromTags converts decoded tag sequences (parallel to the
// corpus sentences) into Prediction values.
func PredictionsFromTags(c *corpus.Corpus, tags [][]corpus.Tag) ([]Prediction, error) {
	if len(tags) != len(c.Sentences) {
		return nil, fmt.Errorf("eval: %d tag rows for %d sentences", len(tags), len(c.Sentences))
	}
	out := make([]Prediction, len(tags))
	for i, s := range c.Sentences {
		if len(tags[i]) != len(s.Tokens) {
			return nil, fmt.Errorf("eval: sentence %s: %d tags for %d tokens", s.ID, len(tags[i]), len(s.Tokens))
		}
		out[i] = Prediction{
			ID:       s.ID,
			Mentions: corpus.MentionsFromTags(s.Tokens, tags[i], s.Text),
		}
	}
	return out, nil
}

// ErrorCategory partitions erroneous mentions for the paper's qualitative
// analysis (§III-E): gene-related errors involve actual genes, gene
// families, or protein domains; spurious errors are thematically unrelated
// to genes.
type ErrorCategory int

// The two categories of §III-E.
const (
	GeneRelated ErrorCategory = iota
	Spurious
)

func (c ErrorCategory) String() string {
	if c == Spurious {
		return "spurious"
	}
	return "gene-related"
}

// Categorizer classifies error mentions given a lexicon of known gene
// surfaces (for the synthetic corpora, the generator's full nomenclature).
type Categorizer struct {
	lexicon map[string]bool
	words   map[string]bool // individual words of multi-word gene names
}

// NewCategorizer builds a categorizer from known gene surface forms.
func NewCategorizer(surfaces []string) *Categorizer {
	c := &Categorizer{lexicon: make(map[string]bool), words: make(map[string]bool)}
	for _, s := range surfaces {
		c.lexicon[strings.ToLower(s)] = true
		for _, w := range strings.Fields(s) {
			c.words[strings.ToLower(w)] = true
		}
	}
	return c
}

// Categorize labels one error mention. A mention is gene-related when its
// full text is a known gene surface, or when any of its words appears in a
// known gene name (catching boundary errors around real genes).
func (c *Categorizer) Categorize(m corpus.Mention) ErrorCategory {
	t := strings.ToLower(m.Text)
	if c.lexicon[t] {
		return GeneRelated
	}
	for _, w := range strings.Fields(t) {
		if c.words[w] {
			return GeneRelated
		}
	}
	return Spurious
}

// CategoryCounts tallies error mentions by category.
func (c *Categorizer) CategoryCounts(mentions []corpus.Mention) (geneRelated, spurious int) {
	for _, m := range mentions {
		if c.Categorize(m) == GeneRelated {
			geneRelated++
		} else {
			spurious++
		}
	}
	return geneRelated, spurious
}

// FalsePositiveSets extracts the distinct false-positive mention keys of a
// result, for UpSet-style intersection analysis between two systems.
func FalsePositiveSets(r *Result) map[string]corpus.Mention {
	out := make(map[string]corpus.Mention)
	for _, sr := range r.PerSentence {
		for _, m := range sr.FalsePositives {
			out[fmt.Sprintf("%s|%d %d", sr.ID, m.Start, m.End)] = m
		}
	}
	return out
}

// UpsetRow is one bar of an UpSet plot: which systems share the errors and
// how many errors per category.
type UpsetRow struct {
	InA, InB              bool
	GeneRelated, Spurious int
}

// Upset computes the UpSet intersection table of false positives between
// two systems (the paper's Figures 4 and 5).
func Upset(a, b *Result, cat *Categorizer) []UpsetRow {
	sa, sb := FalsePositiveSets(a), FalsePositiveSets(b)
	rows := map[[2]bool]*UpsetRow{
		{true, false}: {InA: true},
		{false, true}: {InB: true},
		{true, true}:  {InA: true, InB: true},
	}
	classify := func(m corpus.Mention, inA, inB bool) {
		r := rows[[2]bool{inA, inB}]
		if cat.Categorize(m) == GeneRelated {
			r.GeneRelated++
		} else {
			r.Spurious++
		}
	}
	for k, m := range sa {
		if _, both := sb[k]; both {
			classify(m, true, true)
		} else {
			classify(m, true, false)
		}
	}
	for k, m := range sb {
		if _, both := sa[k]; !both {
			classify(m, false, true)
		}
	}
	out := []UpsetRow{*rows[[2]bool{true, false}], *rows[[2]bool{false, true}], *rows[[2]bool{true, true}]}
	sort.Slice(out, func(i, j int) bool {
		ti := out[i].GeneRelated + out[i].Spurious
		tj := out[j].GeneRelated + out[j].Spurious
		return ti > tj
	})
	return out
}

// FormatUpset renders the intersection table as text, with labels naming
// the two systems.
func FormatUpset(rows []UpsetRow, nameA, nameB string) string {
	var bldr strings.Builder
	fmt.Fprintf(&bldr, "%-24s %12s %10s %8s\n", "set", "gene-related", "spurious", "total")
	for _, r := range rows {
		var set string
		switch {
		case r.InA && r.InB:
			set = nameA + " ∩ " + nameB
		case r.InA:
			set = nameA + " only"
		default:
			set = nameB + " only"
		}
		fmt.Fprintf(&bldr, "%-24s %12d %10d %8d\n", set, r.GeneRelated, r.Spurious, r.GeneRelated+r.Spurious)
	}
	return bldr.String()
}

// HarmonicMean is exposed for tests of the F-score identity.
func HarmonicMean(p, r float64) float64 {
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// ApproxEqual reports |a−b| ≤ eps, for test helpers.
func ApproxEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }
