// Package floats holds the tolerance-based float comparison helpers that
// graphnerlint's floatcmp analyzer points code at: exact ==/!= on computed
// floating-point values is flaky under reassociation and accumulation-order
// changes, which is exactly what GraphNER's determinism guarantees cannot
// tolerate going unnoticed. Comparisons against exact constants (sentinels,
// zero guards) stay as ==; everything else goes through EpsEq.
package floats

import "math"

// DefaultEps is the tolerance Eq uses: loose enough to absorb one or two
// ulps of reassociation drift at magnitude 1, tight enough that genuinely
// different probabilities or losses never compare equal.
const DefaultEps = 1e-9

// EpsEq reports whether a and b are equal within eps, absolutely for small
// magnitudes and relatively for large ones. Infinities of the same sign
// compare equal; NaN compares equal to nothing (including itself).
func EpsEq(a, b, eps float64) bool {
	if a == b { // lint:checked exact match short-circuits equal infinities
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false // unequal infinities (or Inf vs finite) are never close
	}
	d := math.Abs(a - b)
	if d <= eps {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return d <= eps*scale
}

// Eq is EpsEq at DefaultEps.
func Eq(a, b float64) bool { return EpsEq(a, b, DefaultEps) }
