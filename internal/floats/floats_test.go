package floats

import (
	"math"
	"testing"
)

func TestEpsEq(t *testing.T) {
	cases := []struct {
		a, b, eps float64
		want      bool
	}{
		{1, 1, 1e-9, true},
		{1, 1 + 1e-12, 1e-9, true},
		{1, 1 + 1e-6, 1e-9, false},
		{0, 1e-10, 1e-9, true},
		{0, 1e-8, 1e-9, false},
		{1e12, 1e12 * (1 + 1e-12), 1e-9, true}, // relative tolerance at scale
		{1e12, 1e12 * (1 + 1e-6), 1e-9, false},
		{math.Inf(1), math.Inf(1), 1e-9, true},
		{math.Inf(1), math.Inf(-1), 1e-9, false},
		{math.Inf(1), 1e300, 1e-9, false},
		{math.NaN(), math.NaN(), 1e-9, false},
		{math.NaN(), 0, 1e-9, false},
		{-2, -2, 0, true},
	}
	for _, c := range cases {
		if got := EpsEq(c.a, c.b, c.eps); got != c.want {
			t.Errorf("EpsEq(%g, %g, %g) = %v, want %v", c.a, c.b, c.eps, got, c.want)
		}
	}
	if !Eq(0.1+0.2, 0.3) {
		t.Error("Eq(0.1+0.2, 0.3) = false, want true")
	}
	if Eq(0.1, 0.2) {
		t.Error("Eq(0.1, 0.2) = true, want false")
	}
}
