package corpus

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/tokenize"
)

func TestTagString(t *testing.T) {
	if B.String() != "B" || I.String() != "I" || O.String() != "O" {
		t.Error("tag string mismatch")
	}
	if got := Tag(9).String(); got != "Tag(9)" {
		t.Errorf("got %q", got)
	}
}

func TestParseTag(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Tag
		ok   bool
	}{
		{"B", B, true}, {"I", I, true}, {"O", O, true},
		{"B-GENE", B, true}, {"I-Gene", I, true},
		{"Q", O, false}, {"", O, false},
	} {
		got, err := ParseTag(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseTag(%q) err = %v", c.in, err)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseTag(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func makeSentence(text string, tags []Tag) *Sentence {
	return &Sentence{ID: "S1", Text: text, Tokens: tokenize.Sentence(text), Tags: tags}
}

func TestMentionsRoundTrip(t *testing.T) {
	// "the LNK gene" with LNK annotated.
	s := makeSentence("the LNK gene", []Tag{O, B, O})
	ms := s.Mentions()
	if len(ms) != 1 {
		t.Fatalf("got %d mentions", len(ms))
	}
	if ms[0].Start != 3 || ms[0].End != 5 || ms[0].Text != "LNK" {
		t.Errorf("mention = %+v", ms[0])
	}
	// Round trip through TagsFromMentions.
	tags := TagsFromMentions(s.Tokens, ms)
	if !reflect.DeepEqual(tags, s.Tags) {
		t.Errorf("round trip tags = %v, want %v", tags, s.Tags)
	}
}

func TestMultiTokenMention(t *testing.T) {
	// "wilms tumor - 1 positive" -> B I I I O (5 tokens).
	s := makeSentence("wilms tumor - 1 positive", []Tag{B, I, I, I, O})
	ms := s.Mentions()
	if len(ms) != 1 {
		t.Fatalf("got %d mentions: %+v", len(ms), ms)
	}
	if ms[0].Text != "wilms tumor - 1" {
		t.Errorf("mention text = %q", ms[0].Text)
	}
	tags := TagsFromMentions(s.Tokens, ms)
	if !reflect.DeepEqual(tags, s.Tags) {
		t.Errorf("round trip = %v, want %v", tags, s.Tags)
	}
}

func TestOrphanITag(t *testing.T) {
	// An I with no preceding B opens a mention (tolerant decoding).
	s := makeSentence("the LNK gene", []Tag{O, I, O})
	ms := s.Mentions()
	if len(ms) != 1 || ms[0].Text != "LNK" {
		t.Errorf("mentions = %+v", ms)
	}
}

func TestAdjacentMentions(t *testing.T) {
	// "LNK SH2B3" as two separate mentions: B B.
	s := makeSentence("LNK WT1", []Tag{B, B, I})
	// tokens: LNK, WT, 1
	ms := s.Mentions()
	if len(ms) != 2 {
		t.Fatalf("got %d mentions: %+v", len(ms), ms)
	}
	if ms[0].Text != "LNK" || ms[1].Text != "WT1" {
		t.Errorf("mentions = %+v", ms)
	}
}

func TestReadSentences(t *testing.T) {
	in := "S1 the LNK gene\nS2 no genes here\n\n"
	c, err := ReadSentences(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Sentences) != 2 {
		t.Fatalf("got %d sentences", len(c.Sentences))
	}
	if c.Sentences[0].ID != "S1" || c.Sentences[0].Text != "the LNK gene" {
		t.Errorf("sentence = %+v", c.Sentences[0])
	}
	if len(c.Sentences[0].Tokens) != 3 {
		t.Errorf("tokens = %v", c.Sentences[0].Tokens)
	}
}

func TestReadSentencesMalformed(t *testing.T) {
	if _, err := ReadSentences(strings.NewReader("JUSTANID\n")); err == nil {
		t.Error("want error for line without text")
	}
}

func TestReadAnnotations(t *testing.T) {
	in := "S1|3 5|LNK\nS1|0 2|the\nS2|0 4|wilms\n"
	anns, err := ReadAnnotations(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(anns["S1"]) != 2 || len(anns["S2"]) != 1 {
		t.Fatalf("anns = %+v", anns)
	}
	if anns["S1"][0] != (Mention{3, 5, "LNK"}) {
		t.Errorf("mention = %+v", anns["S1"][0])
	}
}

func TestReadAnnotationsMalformed(t *testing.T) {
	for _, bad := range []string{
		"S1|3 5",       // missing text field
		"S1|3|LNK",     // one offset
		"S1|x y|LNK",   // non-numeric
		"S1|5 3|LNK",   // end < start
		"S1|-1 3|LNK",  // negative
		"S1|3 5 7|LNK", // three offsets
	} {
		if _, err := ReadAnnotations(strings.NewReader(bad + "\n")); err == nil {
			t.Errorf("want error for %q", bad)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	c := New()
	c.Sentences = append(c.Sentences,
		makeSentence("the LNK gene", []Tag{O, B, O}),
		makeSentence("wilms tumor - 1 positive", []Tag{B, I, I, I, O}),
	)
	c.Sentences[1].ID = "S2"

	var sbuf, abuf bytes.Buffer
	if err := c.WriteSentences(&sbuf); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteAnnotations(&abuf); err != nil {
		t.Fatal(err)
	}
	c2, err := ReadSentences(&sbuf)
	if err != nil {
		t.Fatal(err)
	}
	anns, err := ReadAnnotations(&abuf)
	if err != nil {
		t.Fatal(err)
	}
	c2.ApplyAnnotations(anns, nil)
	for i, s := range c2.Sentences {
		if !reflect.DeepEqual(s.Tags, c.Sentences[i].Tags) {
			t.Errorf("sentence %d tags = %v, want %v", i, s.Tags, c.Sentences[i].Tags)
		}
	}
}

func TestSplit(t *testing.T) {
	c := New()
	for i := 0; i < 10; i++ {
		s := makeSentence("the LNK gene", []Tag{O, B, O})
		s.ID = string(rune('A' + i))
		c.Sentences = append(c.Sentences, s)
	}
	c.Alternatives["A"] = []Mention{{0, 2, "the"}}
	c.Alternatives["J"] = []Mention{{0, 2, "the"}}
	head, tail := c.Split(7)
	if len(head.Sentences) != 7 || len(tail.Sentences) != 3 {
		t.Fatalf("split sizes %d/%d", len(head.Sentences), len(tail.Sentences))
	}
	if _, ok := head.Alternatives["A"]; !ok {
		t.Error("head lost alternative A")
	}
	if _, ok := tail.Alternatives["J"]; !ok {
		t.Error("tail lost alternative J")
	}
	if _, ok := head.Alternatives["J"]; ok {
		t.Error("head has foreign alternative")
	}
}

func TestSplitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	New().Split(1)
}

func TestStripLabels(t *testing.T) {
	c := New()
	c.Sentences = append(c.Sentences, makeSentence("the LNK gene", []Tag{O, B, O}))
	u := c.StripLabels()
	if u.Sentences[0].Tags != nil {
		t.Error("labels not stripped")
	}
	if c.Sentences[0].Tags == nil {
		t.Error("original mutated")
	}
}

func TestTrigram(t *testing.T) {
	words := []string{"wilms", "tumor", "-", "1"}
	g := Trigram(words, 0)
	a, b, c := g.Parts()
	if a != BoundaryPad || b != "wilms" || c != "tumor" {
		t.Errorf("parts = %q %q %q", a, b, c)
	}
	g = Trigram(words, 3)
	a, b, c = g.Parts()
	if a != "-" || b != "1" || c != BoundaryPad {
		t.Errorf("parts = %q %q %q", a, b, c)
	}
	if g.String() != "[- 1 <S>]" {
		t.Errorf("String = %q", g.String())
	}
}

func TestUniqueTrigrams(t *testing.T) {
	c := New()
	c.Sentences = append(c.Sentences,
		makeSentence("a b c", nil),
		makeSentence("a b c", nil), // duplicate sentence: same trigrams
		makeSentence("a b d", nil),
	)
	grams := c.UniqueTrigrams()
	// "a b c": [<S> a b], [a b c], [b c <S>] ; "a b d" adds [a b d], [b d <S>].
	if len(grams) != 5 {
		t.Fatalf("got %d unique trigrams: %v", len(grams), grams)
	}
	for i := 1; i < len(grams); i++ {
		if grams[i-1] >= grams[i] {
			t.Error("trigrams not sorted")
		}
	}
}

func TestNumTokensMentions(t *testing.T) {
	c := New()
	c.Sentences = append(c.Sentences,
		makeSentence("the LNK gene", []Tag{O, B, O}),
		makeSentence("wilms tumor - 1 positive", []Tag{B, I, I, I, O}),
	)
	if c.NumTokens() != 8 {
		t.Errorf("NumTokens = %d", c.NumTokens())
	}
	if c.NumMentions() != 2 {
		t.Errorf("NumMentions = %d", c.NumMentions())
	}
}
