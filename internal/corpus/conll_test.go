package corpus

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestCoNLLRoundTrip(t *testing.T) {
	c := New()
	c.Sentences = append(c.Sentences,
		makeSentence("the LNK gene", []Tag{O, B, O}),
		makeSentence("wilms tumor - 1 positive", []Tag{B, I, I, I, O}),
	)
	var buf bytes.Buffer
	if err := c.WriteCoNLL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCoNLL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Sentences) != 2 {
		t.Fatalf("got %d sentences", len(got.Sentences))
	}
	for i := range got.Sentences {
		if !reflect.DeepEqual(got.Sentences[i].Tags, c.Sentences[i].Tags) {
			t.Errorf("sentence %d tags: %v, want %v", i, got.Sentences[i].Tags, c.Sentences[i].Tags)
		}
		if got.Sentences[i].Text != c.Sentences[i].Text {
			t.Errorf("sentence %d text: %q, want %q", i, got.Sentences[i].Text, c.Sentences[i].Text)
		}
	}
	// Decoded mentions must survive the format conversion.
	m := got.Sentences[1].Mentions()
	if len(m) != 1 || m[0].Text != "wilms tumor - 1" {
		t.Errorf("mentions = %+v", m)
	}
}

func TestWriteCoNLLFormat(t *testing.T) {
	c := New()
	c.Sentences = append(c.Sentences, makeSentence("the LNK gene", []Tag{O, B, O}))
	var buf bytes.Buffer
	if err := c.WriteCoNLL(&buf); err != nil {
		t.Fatal(err)
	}
	want := "the O\nLNK B-GENE\ngene O\n"
	if buf.String() != want {
		t.Errorf("output:\n%q\nwant:\n%q", buf.String(), want)
	}
}

func TestWriteCoNLLUnlabelled(t *testing.T) {
	c := New()
	c.Sentences = append(c.Sentences, makeSentence("a b", nil))
	var buf bytes.Buffer
	if err := c.WriteCoNLL(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "a O") {
		t.Errorf("unlabelled output: %q", buf.String())
	}
}

func TestReadCoNLLVariants(t *testing.T) {
	// Extra columns (POS etc.) are tolerated: first is token, last is tag.
	in := "LNK NN B-GENE\nbinds VB O\n\nSTAT5 NN B\n"
	c, err := ReadCoNLL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Sentences) != 2 {
		t.Fatalf("got %d sentences", len(c.Sentences))
	}
	if c.Sentences[0].Tags[0] != B || c.Sentences[0].Tags[1] != O {
		t.Errorf("tags = %v", c.Sentences[0].Tags)
	}
}

func TestReadCoNLLMalformed(t *testing.T) {
	for _, bad := range []string{
		"token\n",          // missing tag
		"token Q\n",        // unknown tag
		"with space X B\n", // fine actually (3 columns) — ensure last col rules
	} {
		_, err := ReadCoNLL(strings.NewReader(bad))
		if strings.HasPrefix(bad, "with") {
			if err != nil {
				t.Errorf("unexpected error for %q: %v", bad, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("want error for %q", bad)
		}
	}
	// CoNLL tokenization is authoritative: an alphanumeric symbol stays
	// one token even though our own tokenizer would split it.
	c, err := ReadCoNLL(strings.NewReader("SH2B3 B\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Sentences[0].Tokens) != 1 || c.Sentences[0].Tokens[0].Text != "SH2B3" {
		t.Errorf("tokens = %+v", c.Sentences[0].Tokens)
	}
	m := c.Sentences[0].Mentions()
	if len(m) != 1 || m[0].Start != 0 || m[0].End != 4 {
		t.Errorf("mentions = %+v", m)
	}
}

func TestReadCoNLLEmpty(t *testing.T) {
	c, err := ReadCoNLL(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Sentences) != 0 {
		t.Error("phantom sentences")
	}
}
