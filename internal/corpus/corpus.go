// Package corpus models BIO-tagged named-entity corpora and reads and
// writes the on-disk format of the BioCreative II gene mention (BC2GM)
// shared task: a sentence file of "ID<space>text" lines, a GENE.eval file
// of "ID|start end|mention" annotations with character offsets counted over
// non-space characters, and an optional ALTGENE.eval file of alternative
// annotations accepted by the evaluation script.
package corpus

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/tokenize"
)

// Tag is a BIO tag. The task in the paper is single-type (gene mentions),
// so the tag set is exactly {B, I, O}.
type Tag uint8

// The three BIO tags. Their numeric values index probability distributions
// throughout the system, so they are fixed and exported.
const (
	B       Tag = iota // beginning of a gene mention
	I                  // inside a gene mention
	O                  // outside any mention
	NumTags = 3
)

// String returns "B", "I" or "O".
func (t Tag) String() string {
	switch t {
	case B:
		return "B"
	case I:
		return "I"
	case O:
		return "O"
	}
	return fmt.Sprintf("Tag(%d)", uint8(t))
}

// ParseTag converts "B"/"I"/"O" (optionally with a "-GENE" suffix) to a Tag.
func ParseTag(s string) (Tag, error) {
	switch strings.SplitN(s, "-", 2)[0] {
	case "B":
		return B, nil
	case "I":
		return I, nil
	case "O":
		return O, nil
	}
	return O, fmt.Errorf("corpus: unknown tag %q", s)
}

// Mention is a gene mention located by inclusive space-free character
// offsets, the coordinate system of the BC2GM evaluation.
type Mention struct {
	Start, End int    // inclusive offsets over non-space characters
	Text       string // surface text of the mention (spaces preserved)
}

// Sentence is one tokenized, optionally annotated sentence.
type Sentence struct {
	ID     string
	Text   string
	Tokens []tokenize.Token
	Tags   []Tag // parallel to Tokens; nil for unlabelled sentences
}

// Words returns the token surface forms.
func (s *Sentence) Words() []string {
	out := make([]string, len(s.Tokens))
	for i, t := range s.Tokens {
		out[i] = t.Text
	}
	return out
}

// Mentions decodes the BIO tag sequence into mentions with space-free
// offsets. An I tag following an O (an inconsistent sequence a decoder
// should not emit, but tolerated) opens a new mention.
func (s *Sentence) Mentions() []Mention {
	return MentionsFromTags(s.Tokens, s.Tags, s.Text)
}

// MentionsFromTags decodes an arbitrary tag sequence over the sentence's
// tokens into mentions. tags must be the same length as tokens.
func MentionsFromTags(tokens []tokenize.Token, tags []Tag, text string) []Mention {
	var out []Mention
	var cur *Mention
	var curEndByte int
	for i, tag := range tags {
		tok := tokens[i]
		switch {
		case tag == B, tag == I && cur == nil:
			out = append(out, Mention{Start: tok.SFStart, End: tok.SFEnd})
			cur = &out[len(out)-1]
			curEndByte = tok.End
		case tag == I:
			cur.End = tok.SFEnd
			curEndByte = tok.End
		default:
			cur = nil
		}
		if cur != nil {
			// Track the byte span so Text can be recovered from the
			// original sentence, preserving interior spaces.
			startByte := tokens[i].Start
			for j := i; j >= 0; j-- {
				if tokens[j].SFStart == cur.Start {
					startByte = tokens[j].Start
					break
				}
			}
			cur.Text = text[startByte:curEndByte]
		}
	}
	return out
}

// TagsFromMentions converts mention offsets into a BIO tag sequence over
// tokens. A token is part of a mention when its space-free span lies within
// the mention's span. Mentions that do not align with token boundaries are
// clipped to the tokens they cover.
func TagsFromMentions(tokens []tokenize.Token, mentions []Mention) []Tag {
	tags := make([]Tag, len(tokens))
	for i := range tags {
		tags[i] = O
	}
	for _, m := range mentions {
		inMention := false
		for i, tok := range tokens {
			if tok.SFStart >= m.Start && tok.SFEnd <= m.End {
				if inMention {
					tags[i] = I
				} else {
					tags[i] = B
					inMention = true
				}
			} else {
				inMention = false
			}
		}
	}
	return tags
}

// Corpus is a set of sentences with primary annotations plus, optionally,
// alternative annotations per sentence (the ALTGENE file of BC2GM). Each
// alternative is itself a mention; the evaluation accepts a detection that
// exactly matches either a primary mention or any alternative.
type Corpus struct {
	Sentences []*Sentence
	// Alternatives maps sentence ID to acceptable alternative mentions.
	Alternatives map[string][]Mention
}

// New creates an empty corpus.
func New() *Corpus {
	return &Corpus{Alternatives: make(map[string][]Mention)}
}

// NumTokens returns the total token count.
func (c *Corpus) NumTokens() int {
	n := 0
	for _, s := range c.Sentences {
		n += len(s.Tokens)
	}
	return n
}

// NumMentions returns the total primary mention count.
func (c *Corpus) NumMentions() int {
	n := 0
	for _, s := range c.Sentences {
		n += len(s.Mentions())
	}
	return n
}

// Split partitions the corpus into a head of n sentences and the remainder.
// It does not copy sentences. It panics if n is out of range.
func (c *Corpus) Split(n int) (head, tail *Corpus) {
	if n < 0 || n > len(c.Sentences) {
		panic(fmt.Sprintf("corpus: split %d out of range [0,%d]", n, len(c.Sentences)))
	}
	head, tail = New(), New()
	head.Sentences = c.Sentences[:n]
	tail.Sentences = c.Sentences[n:]
	for _, s := range head.Sentences {
		if alts, ok := c.Alternatives[s.ID]; ok {
			head.Alternatives[s.ID] = alts
		}
	}
	for _, s := range tail.Sentences {
		if alts, ok := c.Alternatives[s.ID]; ok {
			tail.Alternatives[s.ID] = alts
		}
	}
	return head, tail
}

// StripLabels returns a copy of the corpus with all tags removed, for use
// as unlabelled data. Sentences are shallow-copied; token slices are shared.
func (c *Corpus) StripLabels() *Corpus {
	out := New()
	for _, s := range c.Sentences {
		cp := &Sentence{ID: s.ID, Text: s.Text, Tokens: s.Tokens}
		out.Sentences = append(out.Sentences, cp)
	}
	return out
}

// ReadSentences parses the BC2GM sentence format: one sentence per line,
// "ID text...". Sentences are tokenized; tags are left nil.
func ReadSentences(r io.Reader) (*Corpus, error) {
	c := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.TrimSpace(text) == "" {
			continue
		}
		id, rest, ok := strings.Cut(text, " ")
		if !ok {
			return nil, fmt.Errorf("corpus: line %d: missing sentence text", line)
		}
		c.Sentences = append(c.Sentences, &Sentence{
			ID:     id,
			Text:   rest,
			Tokens: tokenize.Sentence(rest),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("corpus: reading sentences: %w", err)
	}
	return c, nil
}

// ReadAnnotations parses a GENE.eval-format stream ("ID|start end|text")
// and returns the mentions grouped by sentence ID.
func ReadAnnotations(r io.Reader) (map[string][]Mention, error) {
	out := make(map[string][]Mention)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.TrimSpace(text) == "" {
			continue
		}
		parts := strings.SplitN(text, "|", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("corpus: annotation line %d: want 3 |-separated fields, got %d", line, len(parts))
		}
		var start, end int
		offs := strings.Fields(parts[1])
		if len(offs) != 2 {
			return nil, fmt.Errorf("corpus: annotation line %d: bad offsets %q", line, parts[1])
		}
		var err error
		if start, err = strconv.Atoi(offs[0]); err != nil {
			return nil, fmt.Errorf("corpus: annotation line %d: %w", line, err)
		}
		if end, err = strconv.Atoi(offs[1]); err != nil {
			return nil, fmt.Errorf("corpus: annotation line %d: %w", line, err)
		}
		if start < 0 || end < start {
			return nil, fmt.Errorf("corpus: annotation line %d: invalid span %d..%d", line, start, end)
		}
		out[parts[0]] = append(out[parts[0]], Mention{Start: start, End: end, Text: parts[2]})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("corpus: reading annotations: %w", err)
	}
	return out, nil
}

// ApplyAnnotations sets the BIO tags of every sentence from primary
// mentions, and records alternatives if given (alternatives do not affect
// tags; they matter only to evaluation).
func (c *Corpus) ApplyAnnotations(primary, alternatives map[string][]Mention) {
	for _, s := range c.Sentences {
		s.Tags = TagsFromMentions(s.Tokens, primary[s.ID])
	}
	if alternatives != nil {
		c.Alternatives = alternatives
	}
}

// WriteSentences emits the corpus in BC2GM sentence format.
func (c *Corpus) WriteSentences(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, s := range c.Sentences {
		if _, err := fmt.Fprintf(bw, "%s %s\n", s.ID, s.Text); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteAnnotations emits primary annotations in GENE.eval format, sorted by
// sentence ID then offset for determinism.
func (c *Corpus) WriteAnnotations(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, s := range c.Sentences {
		for _, m := range s.Mentions() {
			if _, err := fmt.Fprintf(bw, "%s|%d %d|%s\n", s.ID, m.Start, m.End, m.Text); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// NGram is the key type for 3-gram vertices: three token surface forms
// joined canonically. Sentence boundaries are padded so every token w has a
// well-defined context (w-1, w, w+1).
type NGram string

// BoundaryPad is the pseudo-token used for positions outside the sentence
// when forming 3-grams at the edges.
const BoundaryPad = "<S>"

// Trigram builds the NGram key for position i of words, padding with
// BoundaryPad outside the sentence.
func Trigram(words []string, i int) NGram {
	get := func(j int) string {
		if j < 0 || j >= len(words) {
			return BoundaryPad
		}
		return words[j]
	}
	return NGram(get(i-1) + "\x00" + get(i) + "\x00" + get(i+1))
}

// Parts splits an NGram back into its three tokens.
func (g NGram) Parts() (prev, mid, next string) {
	p := strings.SplitN(string(g), "\x00", 3)
	for len(p) < 3 {
		p = append(p, "")
	}
	return p[0], p[1], p[2]
}

// String renders the NGram human-readably, e.g. "[wilms tumor -]".
func (g NGram) String() string {
	a, b, c := g.Parts()
	return "[" + a + " " + b + " " + c + "]"
}

// Trigrams returns the NGram at every position of the sentence.
func (s *Sentence) Trigrams() []NGram {
	words := s.Words()
	out := make([]NGram, len(words))
	for i := range words {
		out[i] = Trigram(words, i)
	}
	return out
}

// UniqueTrigrams returns the set of distinct 3-grams in the corpus, sorted
// for determinism.
func (c *Corpus) UniqueTrigrams() []NGram {
	set := make(map[NGram]struct{})
	for _, s := range c.Sentences {
		for _, g := range s.Trigrams() {
			set[g] = struct{}{}
		}
	}
	out := make([]NGram, 0, len(set))
	for g := range set {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
