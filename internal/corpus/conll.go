package corpus

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/tokenize"
)

// The CoNLL column format is the lingua franca of NER corpora outside the
// BioCreative ecosystem: one token per line as "TOKEN TAG", sentences
// separated by blank lines. These converters let GraphNER exchange data
// with the rest of the sequence-labelling world (including the BC2GM
// corpus's popular CoNLL conversion used by neural-NER papers).

// WriteCoNLL emits the corpus in two-column CoNLL format. Gene tags are
// written as B-GENE/I-GENE/O. Unlabelled sentences are written with O
// throughout.
func (c *Corpus) WriteCoNLL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for si, s := range c.Sentences {
		if si > 0 {
			if _, err := fmt.Fprintln(bw); err != nil {
				return err
			}
		}
		for i, tok := range s.Tokens {
			tag := O
			if s.Tags != nil {
				tag = s.Tags[i]
			}
			label := "O"
			switch tag {
			case B:
				label = "B-GENE"
			case I:
				label = "I-GENE"
			}
			if _, err := fmt.Fprintf(bw, "%s %s\n", tok.Text, label); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadCoNLL parses a two-column CoNLL stream into a corpus. Sentence text
// is reconstructed by joining tokens with single spaces (offsets are
// relative to that reconstruction). Sentence IDs are generated as
// "conll<N>". Tags accept the bare B/I/O and any B-*/I-* type suffix.
func ReadCoNLL(r io.Reader) (*Corpus, error) {
	c := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var words []string
	var tags []Tag
	line := 0
	flush := func() error {
		if len(words) == 0 {
			return nil
		}
		text := strings.Join(words, " ")
		// CoNLL's tokenization is authoritative: take the tokens as given
		// rather than re-tokenizing (which would split alphanumeric gene
		// symbols such as "STAT5" and misalign the per-token tags).
		toks := make([]tokenize.Token, len(words))
		byteOff, sfOff := 0, 0
		for i, w := range words {
			n := len([]rune(w))
			toks[i] = tokenize.Token{
				Text:    w,
				Start:   byteOff,
				End:     byteOff + len(w),
				SFStart: sfOff,
				SFEnd:   sfOff + n - 1,
			}
			byteOff += len(w) + 1 // the joining space
			sfOff += n
		}
		s := &Sentence{
			ID:     fmt.Sprintf("conll%d", len(c.Sentences)),
			Text:   text,
			Tokens: toks,
			Tags:   append([]Tag(nil), tags...),
		}
		c.Sentences = append(c.Sentences, s)
		words, tags = words[:0], tags[:0]
		return nil
	}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			if err := flush(); err != nil {
				return nil, err
			}
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("corpus: conll line %d: want 'TOKEN TAG', got %q", line, text)
		}
		tag, err := ParseTag(fields[len(fields)-1])
		if err != nil {
			return nil, fmt.Errorf("corpus: conll line %d: %w", line, err)
		}
		words = append(words, fields[0])
		tags = append(tags, tag)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return c, nil
}
